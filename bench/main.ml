(* Benchmark harness.

   Running with no arguments regenerates every table and figure of the
   paper over one pipeline instance (the trace-driven experiments of
   Sections 4 and 7) and then times the computational kernels behind each
   table with Bechamel (one Test.make cluster per table).

   Arguments:
     table1 | figure2 | reuse | table2 | figure3 | table3 | table4
       | ablation | fetch | stream | fused | store | layout | micro
       — run a single part
     --quick                   — reduced kernel and scale factor
     --scale SF                — override the TPC-D scale factor
     --seed N                  — master seed (Pipeline.seeded derivation)
     --jobs N                  — domains for the simulation grid; with
                                 N > 1 the grid is also timed serially
                                 and the speedup reported
     --naive                   — fetch part: replay through the
                                 pre-packed (View-per-cell) engine path
                                 only, instead of packed + naive baseline
     --metrics FILE            — export run metrics as JSONL to FILE
     --trace FILE              — record per-domain timeline events and
                                 write Chrome trace_event JSON to FILE
                                 (Perfetto / tools/trace_report)
     --progress                — rate/ETA progress lines on stderr
     --store DIR               — artifact store for the pipeline and the
                                 simulation grids (see Stc_store)

   The [fetch] part is the fetch-replay microbench: it times the same
   simulation cells through Engine.run_packed and Engine.run_naive,
   checks the results are identical, prints blocks/sec and the packed
   speedup (plus a --jobs N parallel replay), and writes the numbers to
   BENCH_fetch.json. Both BENCH_*.json artifacts carry a "provenance"
   record (Meta.provenance: git commit, OCaml version, hostname, jobs)
   so perf numbers stay attributable.

   The [stream] part is the segment-pipeline macrobench: it replays the
   same cell slice through Engine.run_stream (bounded off-heap segments,
   Source -> Stream -> engine), serially and on a --jobs domain pool,
   asserts the results identical to the materialized packed replay, and
   appends a provenance-stamped record to BENCH_fetch.json (one JSON
   object per line).

   The [fused] part is the fused-replay macrobench: it rebuilds the full
   Table 3/4 grid shape, compiles each layout's packed image once, and
   times the replay per-cell (one Engine.run_packed sweep per cell)
   against the fused path (one Engine.Bank sweep per layout, serially
   and with whole groups on a --jobs pool), asserts all result arrays
   identical and the better fused configuration >= 2x the per-cell
   baseline, and appends a provenance-stamped record to
   BENCH_fetch.json.

   The [store] part is the artifact-store macrobench: it runs the full
   pipeline + Table 3/4 grid twice against the same store — once cold,
   once warm — checks the rows are identical, prints the cold/warm wall
   times and writes them to BENCH_store.json. Without --store it uses a
   fresh temporary store (removed afterwards) so the cold pass really is
   cold.

   The [layout] part times plan construction for every algorithm in the
   Stc_layout.Algo registry (cold and warm, at the 16KB/4KB check
   geometry) and writes one provenance-stamped record per algorithm to
   BENCH_layout.json. *)

module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module L = Stc_layout
module F = Stc_fetch
module P = Stc_profile

let parse_args () =
  let quick = ref false
  and scale = ref None
  and seed = ref None
  and jobs = ref (max 1 (Domain.recommended_domain_count () - 1))
  and metrics = ref None
  and trace = ref None
  and progress = ref false
  and naive = ref false
  and store = ref None
  and parts = ref [] in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--naive" :: rest ->
      naive := true;
      go rest
    | "--scale" :: v :: rest ->
      scale := Some (float_of_string v);
      go rest
    | "--seed" :: v :: rest ->
      seed := Some (int_of_string v);
      go rest
    | "--jobs" :: v :: rest ->
      jobs := int_of_string v;
      go rest
    | "--metrics" :: v :: rest ->
      metrics := Some v;
      go rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      go rest
    | "--progress" :: rest ->
      progress := true;
      go rest
    | "--store" :: v :: rest ->
      store := Some v;
      go rest
    | part :: rest ->
      parts := part :: !parts;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  ( !quick,
    !scale,
    !seed,
    !jobs,
    !metrics,
    !trace,
    !progress,
    !naive,
    !store,
    List.rev !parts )

let ( quick,
      scale,
      seed,
      jobs,
      metrics_file,
      trace_file,
      progress,
      naive,
      store,
      parts ) =
  parse_args ()

(* Fail on unwritable --metrics/--trace paths before the run. *)
let () =
  List.iter
    (fun (what, file) ->
      match file with
      | None -> ()
      | Some path -> (
        try close_out (open_out path)
        with Sys_error e ->
          Printf.eprintf "bench: cannot write %s file: %s\n" what e;
          exit 1))
    [ ("metrics", metrics_file); ("trace", trace_file) ]

let wants part = parts = [] || List.mem part parts

let registry = Stc_obs.Registry.create ()

(* Only built when --trace was given: an absent tracer is one branch per
   instrumentation site, so untraced bench numbers stay untouched. *)
let tracer =
  match trace_file with Some _ -> Some (Stc_obs.Trace.create ()) | None -> None

module Run = Stc_core.Run

let ctx =
  let c =
    Run.default |> Run.with_metrics registry |> Run.with_progress progress
    |> Run.with_jobs jobs
  in
  let c = match seed with Some s -> Run.with_seed s c | None -> c in
  let c = match store with Some dir -> Run.with_store dir c | None -> c in
  match tracer with Some t -> Run.with_trace t c | None -> c

let pipeline =
  lazy
    (let config =
       if quick then Pipeline.quick_config else Pipeline.default_config
     in
     let config =
       match scale with Some sf -> { config with Pipeline.sf } | None -> config
     in
     Printf.printf "[setup] building kernel and traces (sf=%.4g)...\n%!"
       config.Pipeline.sf;
     let t0 = Unix.gettimeofday () in
     let pl = Pipeline.run ~ctx ~config () in
     Printf.printf "[setup] done in %.1fs (test trace: %d blocks)\n\n%!"
       (Unix.gettimeofday () -. t0)
       (Stc_trace.Recorder.length pl.Pipeline.test);
     pl)

let section title = Printf.printf "==== %s ====\n%!" title

(* ---------- Figure 3: the trace-building worked example ---------- *)

let print_figure3 () =
  section "Figure 3 (trace building example)";
  let prog, profile, seeds = Stc_core.Figure3.graph () in
  ignore prog;
  let seqs =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = 4; branch_threshold = 0.4 }
      ~seeds
  in
  List.iteri
    (fun i seq ->
      Printf.printf "  %s trace: %s\n"
        (if i = 0 then "Main     " else "Secondary")
        (String.concat " -> " (List.map (Stc_core.Figure3.label) seq)))
    seqs

(* ---------- table reproductions ---------- *)

let run_tables () =
  let pl = lazy (Lazy.force pipeline) in
  let pl () = Lazy.force pl in
  if wants "table1" then begin
    section "Table 1";
    E.print_table1 (E.table1 (pl ()));
    print_newline ()
  end;
  if wants "figure2" then begin
    section "Figure 2";
    E.print_figure2 (pl ());
    print_newline ()
  end;
  if wants "reuse" then begin
    section "Reuse (Section 4.1)";
    E.print_reuse (E.reuse (pl ()));
    print_newline ()
  end;
  if wants "table2" then begin
    section "Table 2";
    E.print_table2 (E.table2 (pl ()));
    print_newline ()
  end;
  if wants "figure3" then begin
    print_figure3 ();
    print_newline ()
  end;
  if wants "table3" || wants "table4" then begin
    section "Tables 3 and 4 (trace-driven simulation)";
    let p = pl () in
    let rows =
      if ctx.Run.jobs <= 1 then begin
        let t0 = Unix.gettimeofday () in
        let rows = E.simulate ~ctx p in
        Printf.printf "(%d simulations in %.1fs, 1 job)\n\n%!"
          (List.length rows)
          (Unix.gettimeofday () -. t0);
        rows
      end
      else begin
        (* serial baseline without metrics, then the recorded parallel run:
           same cells, so the wall-clock ratio is the pool speedup *)
        let t0 = Unix.gettimeofday () in
        let baseline = E.simulate ~ctx:{ ctx with Run.metrics = None; jobs = 1 } p in
        let t_serial = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let rows = E.simulate ~ctx p in
        let t_par = Unix.gettimeofday () -. t1 in
        Printf.printf
          "(%d simulations: %.1fs serial, %.1fs on %d jobs -> %.2fx speedup; \
           rows %s)\n\n%!"
          (List.length rows) t_serial t_par ctx.Run.jobs (t_serial /. t_par)
          (if rows = baseline then "identical" else "DIFFER (BUG)");
        rows
      end
    in
    if wants "table3" then begin
      E.print_table3 rows;
      print_newline ()
    end;
    if wants "table4" then begin
      E.print_table4 rows;
      print_newline ();
      E.print_sequentiality rows;
      print_newline ()
    end
  end;
  if wants "ablation" && parts <> [] then begin
    section "Ablation";
    E.print_ablation (E.ablation ~ctx (pl ()));
    print_newline ()
  end;
  if wants "extensions" then begin
    section "Extensions (Section 8 future work)";
    let p = pl () in
    Stc_core.Extensions.print_inlining (Stc_core.Extensions.inlining ~ctx p);
    print_newline ();
    Stc_core.Extensions.print_oltp (Stc_core.Extensions.oltp ~ctx p);
    print_newline ();
    Stc_core.Extensions.print_prediction
      (Stc_core.Extensions.prediction ~ctx p);
    print_newline ();
    Stc_core.Extensions.print_tuning ~ctx p;
    print_newline ();
    Stc_core.Extensions.print_per_query (Stc_core.Extensions.per_query ~ctx p);
    print_newline ();
    Stc_core.Extensions.print_fetch_units
      (Stc_core.Extensions.fetch_units ~ctx p);
    print_newline ();
    Stc_core.Extensions.print_associativity
      (Stc_core.Extensions.associativity ~ctx p);
    print_newline ()
  end

(* ---------- fetch-replay microbench (packed vs naive engine) ---------- *)

module J = Stc_obs.Json

(* Replays the test trace through a representative slice of the Table 3/4
   grid (two layouts x {ideal, direct 16KB, direct 16KB + trace cache})
   with both engine paths, asserts the results are identical, and records
   the throughput in BENCH_fetch.json. With [--naive] only the pre-packed
   path runs (with metrics), so @perf-smoke can diff the two exports. *)
(* The representative Table 3/4 slice the [fetch] and [stream] parts
   replay: two layouts x {ideal, direct 16KB, direct 16KB + TC}. *)
let bench_slice pl =
  let prog = pl.Pipeline.program in
  let profile = pl.Pipeline.profile in
  let params =
    L.Stc.params ~exec_threshold:20 ~branch_threshold:0.3 ~cache_bytes:16384
      ~cfa_bytes:4096 ()
  in
  let layouts =
    [
      ("orig", L.Original.layout prog);
      ( "ops",
        L.Stc.layout profile ~name:"ops" ~params
          ~seeds:(L.Stc.ops_seeds profile) );
    ]
  in
  let variants =
    [
      ("ideal", fun () -> (None, None));
      ( "direct-16k",
        fun () -> (Some (Stc_cachesim.Icache.create ~size_bytes:16384 ()), None)
      );
      ( "tc-16k",
        fun () ->
          ( Some (Stc_cachesim.Icache.create ~size_bytes:16384 ()),
            Some (F.Tracecache.create ()) ) );
    ]
  in
  let cells =
    List.concat_map
      (fun (_lname, layout) -> List.map (fun (_v, mk) -> (layout, mk)) variants)
      layouts
  in
  (prog, layouts, variants, cells)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fetch_bench () =
  section
    (if naive then "Fetch replay (naive engine path)"
     else "Fetch replay (packed vs naive engine)");
  let pl = Lazy.force pipeline in
  let trace = pl.Pipeline.test in
  let blocks = Stc_trace.Recorder.length trace in
  let prog, layouts, variants, cells = bench_slice pl in
  let n_cells = List.length cells in
  let total_blocks = n_cells * blocks in
  let bps wall = float_of_int total_blocks /. wall in
  let run_all_naive ?ctx () =
    List.map
      (fun (layout, mk) ->
        let icache, tc = mk () in
        let view =
          F.View.create prog layout (Stc_trace.Source.of_recorder trace)
        in
        F.Engine.run_naive ?ctx ?icache ?trace_cache:tc view)
      cells
  in
  let run_all_packed ?ctx compiled =
    List.map
      (fun (layout, mk) ->
        let icache, tc = mk () in
        F.Engine.run_packed ?ctx ?icache ?trace_cache:tc
          (List.assq layout compiled))
      cells
  in
  Printf.printf "  %d cells (%d layouts x %d variants), %d blocks each\n%!"
    n_cells (List.length layouts) (List.length variants) blocks;
  let fields =
    if naive then begin
      let _rs, wall = time (fun () -> run_all_naive ~ctx ()) in
      Printf.printf "  naive : %6.2fs  %11.0f blocks/s\n%!" wall (bps wall);
      [
        ("mode", J.Str "naive");
        ("blocks_per_sec", J.Float (bps wall));
        ("jobs", J.Int 1);
        ("cells", J.Int n_cells);
        ("wall_s", J.Float wall);
        ("blocks", J.Int total_blocks);
      ]
    end
    else begin
      let naive_rs, naive_wall = time (fun () -> run_all_naive ()) in
      (* the packed wall clock includes compiling both layouts: the honest
         end-to-end cost of the fast path *)
      let (compiled, packed_rs), packed_wall =
        time (fun () ->
            let compiled =
              List.map
                (fun (_n, layout) ->
                  ( layout,
                    F.Packed.compile prog layout
                      (Stc_trace.Source.of_recorder trace) ))
                layouts
            in
            (compiled, run_all_packed ~ctx compiled))
      in
      let identical = naive_rs = packed_rs in
      let speedup = naive_wall /. packed_wall in
      Printf.printf "  naive : %6.2fs  %11.0f blocks/s\n%!" naive_wall
        (bps naive_wall);
      Printf.printf "  packed: %6.2fs  %11.0f blocks/s  (%.2fx, results %s)\n%!"
        packed_wall (bps packed_wall) speedup
        (if identical then "identical" else "DIFFER (BUG)");
      if not identical then begin
        Printf.eprintf "bench fetch: packed results differ from naive\n";
        exit 1
      end;
      let base =
        [
          ("mode", J.Str "packed");
          ("cells", J.Int n_cells);
          ("blocks", J.Int total_blocks);
          ("naive_blocks_per_sec", J.Float (bps naive_wall));
          ("naive_wall_s", J.Float naive_wall);
          ("speedup", J.Float speedup);
        ]
      in
      if jobs > 1 then begin
        let par_rs, par_wall =
          time (fun () ->
              Stc_par.Pool.with_pool ~domains:jobs ?trace:tracer
              @@ fun pool ->
              Array.to_list
                (Stc_par.Pool.map ~chunk:1 pool
                   (fun (layout, mk) ->
                     let icache, tc = mk () in
                     F.Engine.run_packed ?icache ?trace_cache:tc
                       (List.assq layout compiled))
                   (Array.of_list cells)))
        in
        Printf.printf
          "  packed --jobs %d: %6.2fs  %11.0f blocks/s  (results %s)\n%!" jobs
          par_wall (bps par_wall)
          (if par_rs = packed_rs then "identical" else "DIFFER (BUG)");
        if par_rs <> packed_rs then begin
          Printf.eprintf "bench fetch: parallel results differ from serial\n";
          exit 1
        end;
        base
        @ [
            ("blocks_per_sec", J.Float (bps par_wall));
            ("jobs", J.Int jobs);
            ("wall_s", J.Float par_wall);
            ("serial_blocks_per_sec", J.Float (bps packed_wall));
            ("serial_wall_s", J.Float packed_wall);
          ]
      end
      else
        base
        @ [
            ("blocks_per_sec", J.Float (bps packed_wall));
            ("jobs", J.Int 1);
            ("wall_s", J.Float packed_wall);
          ]
    end
  in
  let oc = open_out "BENCH_fetch.json" in
  output_string oc
    (J.to_string (J.Obj (fields @ [ ("provenance", Meta.provenance ~jobs) ])));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [fetch] BENCH_fetch.json written\n\n%!"

(* ---------- streamed-replay macrobench (segment pipeline) ---------- *)

(* Replays the bench slice through the segment pipeline
   (Source -> Stream -> Engine.run_stream): once serially as the
   materialized packed baseline, once streamed serially, and once
   streamed on a --jobs domain pool. All three result lists must be
   identical — streaming is an evaluation strategy, not an
   approximation. Appends one provenance-stamped JSON object to
   BENCH_fetch.json (the [fetch] part writes the first line). *)
let stream_bench () =
  section "Streamed replay (segment pipeline vs packed)";
  let pl = Lazy.force pipeline in
  let trace = pl.Pipeline.test in
  let blocks = Stc_trace.Recorder.length trace in
  let prog, layouts, variants, cells = bench_slice pl in
  let n_cells = List.length cells in
  let total_blocks = n_cells * blocks in
  let bps wall = float_of_int total_blocks /. wall in
  Printf.printf "  %d cells (%d layouts x %d variants), %d blocks each\n%!"
    n_cells (List.length layouts) (List.length variants) blocks;
  (* single-domain materialized baseline: compile once per layout, then
     replay every cell from the resident packed image *)
  let (packed_rs : F.Engine.result list), packed_wall =
    time (fun () ->
        let compiled =
          List.map
            (fun (_n, layout) ->
              ( layout,
                F.Packed.compile prog layout
                  (Stc_trace.Source.of_recorder trace) ))
            layouts
        in
        List.map
          (fun (layout, mk) ->
            let icache, tc = mk () in
            F.Engine.run_packed ?icache ?trace_cache:tc
              (List.assq layout compiled))
          cells)
  in
  let tables =
    List.map (fun (_n, layout) -> (layout, F.Packed.tables prog layout)) layouts
  in
  let run_streamed_cell (layout, mk) =
    let icache, tc = mk () in
    let stream =
      F.Stream.create (List.assq layout tables)
        (Stc_trace.Source.of_recorder trace)
    in
    F.Engine.run_stream ?icache ?trace_cache:tc stream
  in
  let stream_rs, stream_wall =
    time (fun () -> List.map run_streamed_cell cells)
  in
  let par_rs, par_wall =
    time (fun () ->
        Stc_par.Pool.with_pool ~domains:jobs ?trace:tracer @@ fun pool ->
        Array.to_list
          (Stc_par.Pool.map ~chunk:1 pool run_streamed_cell
             (Array.of_list cells)))
  in
  Printf.printf "  packed (1 domain) : %6.2fs  %11.0f blocks/s\n%!" packed_wall
    (bps packed_wall);
  Printf.printf "  stream (1 domain) : %6.2fs  %11.0f blocks/s  (results %s)\n%!"
    stream_wall (bps stream_wall)
    (if stream_rs = packed_rs then "identical" else "DIFFER (BUG)");
  Printf.printf
    "  stream --jobs %-3d : %6.2fs  %11.0f blocks/s  (%.2fx packed, results \
     %s)\n%!"
    jobs par_wall (bps par_wall)
    (bps par_wall /. bps packed_wall)
    (if par_rs = packed_rs then "identical" else "DIFFER (BUG)");
  if stream_rs <> packed_rs || par_rs <> packed_rs then begin
    Printf.eprintf "bench stream: streamed results differ from packed\n";
    exit 1
  end;
  let speedup = bps par_wall /. bps packed_wall in
  if jobs >= 4 && speedup < 2.0 then begin
    Printf.eprintf
      "bench stream: pooled streamed replay only %.2fx the packed baseline \
       on %d jobs (expected >= 2)\n"
      speedup jobs;
    exit 1
  end
  else if speedup < 2.0 then
    Printf.eprintf
      "bench stream: warning: %.2fx packed baseline on %d jobs (assertion \
       needs --jobs >= 4)\n"
      speedup jobs;
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
      "BENCH_fetch.json"
  in
  output_string oc
    (J.to_string
       (J.Obj
          [
            ("mode", J.Str "stream");
            ("cells", J.Int n_cells);
            ("blocks", J.Int total_blocks);
            ("packed_blocks_per_sec", J.Float (bps packed_wall));
            ("packed_wall_s", J.Float packed_wall);
            ("stream_blocks_per_sec", J.Float (bps stream_wall));
            ("stream_wall_s", J.Float stream_wall);
            ("blocks_per_sec", J.Float (bps par_wall));
            ("jobs", J.Int jobs);
            ("wall_s", J.Float par_wall);
            ("pool_speedup_vs_packed", J.Float speedup);
            ("provenance", Meta.provenance ~jobs);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [stream] appended to BENCH_fetch.json\n\n%!"

(* ---------- fused-replay macrobench (per-cell vs Engine.Bank) ---------- *)

(* The full Table 3/4 grid shape (the same cells Experiments.simulate
   plans on the default grid), rebuilt through the public layout API so
   the bench can time the replay alone: each distinct layout's packed
   image is compiled once, outside both timed regions — compilation is
   identical work on both paths (once per layout under the plan cache,
   once per group fused). Per-cell replays every cell through its own
   Engine.run_packed sweep; fused replays each layout's cells as one
   Engine.Bank sweep, serially and then with whole groups
   self-scheduled on a --jobs pool (the Experiments.simulate default
   configuration). All result arrays must be identical — fusing is a
   scheduling strategy, not an approximation. *)
let grid_cells pl =
  let sc = E.default_sim_config in
  let profile = pl.Pipeline.profile in
  let mk_icache ?assoc ?victim_lines kb () =
    Stc_cachesim.Icache.create ?assoc ?victim_lines ~size_bytes:(kb * 1024) ()
  in
  let mk_tc () = F.Tracecache.create ~entries:sc.E.tc_entries () in
  let ideal () = (None, None) in
  let direct kb () = (Some (mk_icache kb ()), None) in
  let two_way kb () = (Some (mk_icache ~assoc:2 kb ()), None) in
  let victim kb () = (Some (mk_icache ~victim_lines:16 kb ()), None) in
  let tc kb () = (Some (mk_icache kb ()), Some (mk_tc ())) in
  let tc_ideal () = (None, Some (mk_tc ())) in
  let algo name =
    match L.Algo.find name with Ok a -> a | Error msg -> invalid_arg msg
  in
  let baseline_params = L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 () in
  let orig = L.Algo.layout (algo "orig") profile baseline_params in
  let ph = L.Algo.layout (algo "P&H") profile baseline_params in
  let cells = ref [] in
  let add layout mk = cells := (layout, mk) :: !cells in
  add orig ideal;
  add ph ideal;
  add orig tc_ideal;
  List.iter
    (fun (kb, cfas) ->
      add orig (direct kb);
      add orig (two_way kb);
      add orig (victim kb);
      add orig (tc kb);
      add ph (direct kb);
      List.iter
        (fun cfa ->
          let params =
            L.Algo.params ~exec_threshold:sc.E.exec_threshold
              ~branch_threshold:sc.E.branch_threshold
              ~cache_bytes:(kb * 1024) ~cfa_bytes:(cfa * 1024) ()
          in
          let torr = L.Algo.layout (algo "Torr") profile params in
          let auto = L.Algo.layout (algo "auto") profile params in
          let ops = L.Algo.layout (algo "ops") profile params in
          List.iter
            (fun l ->
              add l (direct kb);
              add l ideal)
            [ torr; auto; ops ];
          add ops (tc kb);
          add ops tc_ideal)
        cfas)
    sc.E.grid;
  let cells = Array.of_list (List.rev !cells) in
  (* fused groups: cells sharing a physical layout, first appearance
     order — the same plan Experiments.simulate executes *)
  let groups = ref [] in
  Array.iteri
    (fun i (l, _) ->
      match List.assq_opt l !groups with
      | Some r -> r := i :: !r
      | None -> groups := !groups @ [ (l, ref [ i ]) ])
    cells;
  (cells, List.map (fun (l, r) -> (l, Array.of_list (List.rev !r))) !groups)

let fused_bench () =
  section "Fused replay (per-cell vs Engine.Bank)";
  let pl = Lazy.force pipeline in
  let blocks = Stc_trace.Recorder.length pl.Pipeline.test in
  let sc = E.default_sim_config in
  let cfg =
    F.Engine.Config.make ~line_bytes:sc.E.line_bytes
      ~miss_penalty:sc.E.miss_penalty ()
  in
  let cells, groups = grid_cells pl in
  let n_cells = Array.length cells in
  let n_groups = List.length groups in
  let total_blocks = n_cells * blocks in
  let bps wall = float_of_int total_blocks /. wall in
  Printf.printf "  %d cells in %d fused groups (%.1f cells/sweep), %d blocks each\n%!"
    n_cells n_groups
    (float_of_int n_cells /. float_of_int n_groups)
    blocks;
  let compiled =
    List.map
      (fun (l, _) ->
        (l, F.Packed.compile pl.Pipeline.program l (Pipeline.test_source pl)))
      groups
  in
  let solo_rs, solo_wall =
    time (fun () ->
        Array.map
          (fun (l, mk) ->
            let icache, tc = mk () in
            F.Engine.run_packed ~config:cfg ?icache ?trace_cache:tc
              (List.assq l compiled))
          cells)
  in
  let run_group (l, idxs) =
    let specs =
      Array.map
        (fun i ->
          let _, mk = cells.(i) in
          let icache, tc = mk () in
          F.Engine.Bank.spec ~config:cfg ?icache ?trace_cache:tc ())
        idxs
    in
    (idxs, F.Engine.Bank.run_packed specs (List.assq l compiled))
  in
  let scatter per_group =
    let out = Array.make n_cells None in
    List.iter
      (fun (idxs, rs) -> Array.iteri (fun k i -> out.(i) <- Some rs.(k)) idxs)
      per_group;
    Array.map Option.get out
  in
  let fused_rs, fused_wall =
    time (fun () -> scatter (List.map run_group groups))
  in
  let par_rs, par_wall =
    time (fun () ->
        scatter
          (Stc_par.Pool.with_pool ~domains:jobs ?trace:tracer @@ fun pool ->
           Array.to_list
             (Stc_par.Pool.map ~chunk:1 pool run_group (Array.of_list groups))))
  in
  let fused_speedup = solo_wall /. fused_wall in
  let pool_speedup = solo_wall /. par_wall in
  Printf.printf "  per-cell          : %6.2fs  %11.0f blocks/s\n%!" solo_wall
    (bps solo_wall);
  Printf.printf
    "  fused (1 domain)  : %6.2fs  %11.0f blocks/s  (%.2fx, results %s)\n%!"
    fused_wall (bps fused_wall) fused_speedup
    (if fused_rs = solo_rs then "identical" else "DIFFER (BUG)");
  Printf.printf
    "  fused --jobs %-4d : %6.2fs  %11.0f blocks/s  (%.2fx per-cell, results \
     %s)\n%!"
    jobs par_wall (bps par_wall) pool_speedup
    (if par_rs = solo_rs then "identical" else "DIFFER (BUG)");
  if fused_rs <> solo_rs || par_rs <> solo_rs then begin
    Printf.eprintf "bench fused: fused results differ from per-cell\n";
    exit 1
  end;
  (* the serial sweep already halves the grid's replay time; a pool can
     only widen the gap, so the better of the two must clear 2x on any
     machine — single-core included *)
  let best = max fused_speedup pool_speedup in
  if best < 2.0 then begin
    Printf.eprintf
      "bench fused: fused replay only %.2fx the per-cell baseline \
       (expected >= 2)\n"
      best;
    exit 1
  end;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
      "BENCH_fetch.json"
  in
  output_string oc
    (J.to_string
       (J.Obj
          [
            ("mode", J.Str "fused");
            ("cells", J.Int n_cells);
            ("groups", J.Int n_groups);
            ("blocks", J.Int total_blocks);
            ("percell_blocks_per_sec", J.Float (bps solo_wall));
            ("percell_wall_s", J.Float solo_wall);
            ("fused_blocks_per_sec", J.Float (bps fused_wall));
            ("fused_wall_s", J.Float fused_wall);
            ("fused_speedup", J.Float fused_speedup);
            ("blocks_per_sec", J.Float (bps par_wall));
            ("jobs", J.Int jobs);
            ("wall_s", J.Float par_wall);
            ("pool_speedup_vs_percell", J.Float pool_speedup);
            ("provenance", Meta.provenance ~jobs);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [fused] appended to BENCH_fetch.json\n\n%!"

(* ---------- artifact-store macrobench (cold vs warm) ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Runs the whole pipeline + Table 3/4 grid twice against one store
   directory and reports the warm/cold wall-clock ratio. The rows must be
   identical — the store is a cache, not an approximation. Without
   --store the pass uses (and then removes) a private temporary store, so
   the first run is guaranteed cold and the ratio is asserted >= 2. *)
let store_bench () =
  section "Artifact store (cold vs warm)";
  let dir, fresh =
    match store with
    | Some d -> (d, false)
    | None -> (Printf.sprintf "_bench_store.%d" (Unix.getpid ()), true)
  in
  let config =
    let c = if quick then Pipeline.quick_config else Pipeline.default_config in
    match scale with Some sf -> { c with Pipeline.sf } | None -> c
  in
  (* each pass gets its own metrics-free ctx so the global registry (and
     any --metrics export) is not polluted with a duplicate run *)
  let run_once () =
    let c =
      Run.default |> Run.with_progress progress |> Run.with_jobs jobs
      |> Run.with_store dir
    in
    let c = match seed with Some s -> Run.with_seed s c | None -> c in
    let t0 = Unix.gettimeofday () in
    let pl = Pipeline.run ~ctx:c ~config () in
    let rows = E.simulate ~ctx:c pl in
    (rows, Unix.gettimeofday () -. t0)
  in
  let cold_rows, cold_wall = run_once () in
  let warm_rows, warm_wall = run_once () in
  let identical = cold_rows = warm_rows in
  let speedup = cold_wall /. warm_wall in
  Printf.printf "  cold: %6.2fs\n%!" cold_wall;
  Printf.printf "  warm: %6.2fs  (%.1fx, rows %s)\n%!" warm_wall speedup
    (if identical then "identical" else "DIFFER (BUG)");
  if not identical then begin
    Printf.eprintf "bench store: warm rows differ from cold rows\n";
    exit 1
  end;
  if fresh && speedup < 2.0 then begin
    Printf.eprintf "bench store: warm run only %.2fx faster (expected >= 2)\n"
      speedup;
    exit 1
  end;
  let oc = open_out "BENCH_store.json" in
  output_string oc
    (J.to_string
       (J.Obj
          [
            ("cold_wall_s", J.Float cold_wall);
            ("warm_wall_s", J.Float warm_wall);
            ("speedup", J.Float speedup);
            ("rows", J.Int (List.length cold_rows));
            ("jobs", J.Int jobs);
            ("fresh_store", J.Bool fresh);
            ("provenance", Meta.provenance ~jobs);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [store] BENCH_store.json written\n\n%!";
  if fresh then rm_rf dir

(* ---------- layout-algorithm plan construction ---------- *)

(* Times Algo.plan for every registered algorithm at the check-bundle
   geometry (16KB cache / 4KB CFA, grid thresholds) and writes one
   provenance-stamped record per algorithm to BENCH_layout.json. The
   cold time is what the simulation grid's serial prefix actually pays;
   a warm repeat is reported too so memoizing algorithms (codestitcher,
   exttsp cache their chains per profile) are visible as such. *)
let layout_bench () =
  section "Layout algorithms (plan construction)";
  let pl = Lazy.force pipeline in
  let profile = pl.Pipeline.profile in
  let params =
    L.Algo.params ~exec_threshold:50 ~branch_threshold:0.3
      ~cache_bytes:(16 * 1024) ~cfa_bytes:(4 * 1024) ()
  in
  let rows =
    List.map
      (fun algo ->
        let t0 = Unix.gettimeofday () in
        let plan = L.Algo.plan algo profile params in
        let cold = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let plan' = L.Algo.plan algo profile params in
        let warm = Unix.gettimeofday () -. t1 in
        ignore plan';
        let seqs = List.length plan.L.Mapping.cfa_seqs
        and others = List.length plan.L.Mapping.other_seqs in
        Printf.printf
          "  %-14s cold %8.3f ms  warm %8.3f ms  (%d CFA seqs, %d others)\n%!"
          algo.L.Algo.name (cold *. 1e3) (warm *. 1e3) seqs others;
        J.Obj
          [
            ("algo", J.Str algo.L.Algo.name);
            ("slug", J.Str algo.L.Algo.slug);
            ("uses_cfa", J.Bool algo.L.Algo.uses_cfa);
            ("cold_plan_s", J.Float cold);
            ("warm_plan_s", J.Float warm);
            ("cfa_seqs", J.Int seqs);
            ("other_seqs", J.Int others);
          ])
      (L.Algo.all ())
  in
  let oc = open_out "BENCH_layout.json" in
  output_string oc
    (J.to_string
       (J.Obj
          [
            ("part", J.Str "layout");
            ("rows", J.List rows);
            ("provenance", Meta.provenance ~jobs);
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  [layout] BENCH_layout.json written\n\n%!"

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  section "Bechamel micro-benchmarks (kernels behind each table)";
  let open Bechamel in
  let open Toolkit in
  (* small fixed inputs so each run is a few milliseconds at most *)
  let config = { Pipeline.quick_config with Pipeline.sf = 0.0003 } in
  let pl = Pipeline.run ~config () in
  let prog = pl.Pipeline.program in
  let profile = pl.Pipeline.profile in
  let params =
    L.Stc.params ~exec_threshold:20 ~branch_threshold:0.3 ~cache_bytes:16384
      ~cfa_bytes:4096 ()
  in
  let ops_layout =
    L.Stc.layout profile ~name:"ops" ~params ~seeds:(L.Stc.ops_seeds profile)
  in
  let view = F.View.create prog ops_layout (Pipeline.test_source pl) in
  let tests =
    [
      (* Table 1 / Figure 2 / Table 2: profiling throughput *)
      Test.make ~name:"table1-2/profile-trace"
        (Staged.stage (fun () ->
             let p = P.Profile.create prog in
             Pipeline.replay_training pl (P.Profile.sink p)));
      Test.make ~name:"table2/determinism"
        (Staged.stage (fun () -> ignore (P.Determinism.compute profile)));
      (* Figure 3 / Tables 3-4 layout side: sequence building + mapping *)
      Test.make ~name:"fig3/seqbuild"
        (Staged.stage (fun () ->
             ignore
               (L.Seqbuild.build profile ~params:params.L.Stc.seq
                  ~seeds:(L.Stc.ops_seeds profile))));
      Test.make ~name:"table3-4/stc-layout"
        (Staged.stage (fun () ->
             ignore
               (L.Stc.layout profile ~name:"ops" ~params
                  ~seeds:(L.Stc.ops_seeds profile))));
      Test.make ~name:"table3-4/pettis-hansen"
        (Staged.stage (fun () ->
             match L.Algo.find "P&H" with
             | Ok a ->
               ignore
                 (L.Algo.layout a profile
                    (L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 ()))
             | Error msg -> invalid_arg msg));
      (* Table 3: cache simulation throughput *)
      Test.make ~name:"table3/icache-sim"
        (Staged.stage (fun () ->
             let c = Stc_cachesim.Icache.create ~size_bytes:16384 () in
             let r = F.Engine.run ~icache:c view in
             ignore r.F.Engine.icache_misses));
      (* Table 4: fetch + trace cache simulation throughput *)
      Test.make ~name:"table4/fetch-tc-sim"
        (Staged.stage (fun () ->
             let c = Stc_cachesim.Icache.create ~size_bytes:16384 () in
             let tc = F.Tracecache.create () in
             let r = F.Engine.run ~icache:c ~trace_cache:tc view in
             ignore r.F.Engine.tc_hits));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let grouped = Test.make_grouped ~name:"stc" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.0f ns/run" t
        | Some [] | None -> "(no estimate)"
      in
      Printf.printf "  %-28s %s\n%!" name est)
    (List.sort compare rows)

let () =
  run_tables ();
  if wants "fetch" && parts <> [] then fetch_bench ();
  if wants "stream" && parts <> [] then stream_bench ();
  if wants "fused" && parts <> [] then fused_bench ();
  if wants "store" && parts <> [] then store_bench ();
  if wants "layout" && parts <> [] then layout_bench ();
  if wants "micro" then micro ();
  (match metrics_file with
  | Some path ->
    Stc_obs.Export.write_file registry path;
    Printf.printf "[metrics] written to %s\n%!" path
  | None -> ());
  match (tracer, trace_file) with
  | Some t, Some path ->
    Stc_obs.Trace.write_file t path;
    Printf.printf "[trace] %d events written to %s%s\n%!"
      (Stc_obs.Trace.events t) path
      (match Stc_obs.Trace.dropped t with
      | 0 -> ""
      | d -> Printf.sprintf " (%d dropped: ring full)" d)
  | _ -> ()
