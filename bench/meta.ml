(* Shared provenance record stamped into every BENCH_*.json artifact, so
   a perf-trajectory number can always be traced back to the code and
   machine that produced it.

   The git commit is best-effort: the bench must keep working from an
   export tarball or a dirty checkout, so any failure to ask git — no
   binary, not a repository, odd exit — degrades to "unknown" rather
   than aborting a benchmark run. *)

module J = Stc_obs.Json

let schema = 1

let git_commit () =
  match
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    (line, status)
  with
  | exception _ -> "unknown"
  | line, Unix.WEXITED 0 when String.trim line <> "" -> String.trim line
  | _ -> "unknown"

let hostname () = try Unix.gethostname () with _ -> "unknown"

let provenance ~jobs =
  J.Obj
    [
      ("schema", J.Int schema);
      ("git_commit", J.Str (git_commit ()));
      ("ocaml_version", J.Str Sys.ocaml_version);
      ("hostname", J.Str (hostname ()));
      ("jobs", J.Int jobs);
    ]
