(* Bring-your-own program: build a small CFG by hand with the Builder and
   the skeleton DSL, run your own instrumented workload over it, and
   compare all the layout algorithms on it.

   This is the path a user would take to apply the library to a program
   that is not the bundled database kernel.

   Run with:  dune exec examples/custom_layout.exe *)

module Builder = Stc_cfg.Builder
module Skeleton = Stc_trace.Skeleton
module Bytecode = Stc_trace.Bytecode
module Probe = Stc_trace.Probe
module L = Stc_layout
module F = Stc_fetch

(* A toy interpreter: a dispatch loop calling one of three handlers, with a
   helper used by two of them. *)

let k_main = Probe.key "interp_main"

let k_add = Probe.key "op_add"

let k_mul = Probe.key "op_mul"

let k_jmp = Probe.key "op_jmp"

let skeletons =
  [
    ( "interp_main",
      Skeleton.
        [
          straight 4;
          while_ "fetch"
            [
              straight 3;
              icall "dispatch" [ "op_add"; "op_mul"; "op_jmp" ];
              straight 2;
            ];
          straight 2;
        ] );
    ("op_add", Skeleton.[ straight 3; helper "spill_check"; straight 2 ]);
    ( "op_mul",
      Skeleton.
        [ straight 2; if_ "overflow" [ straight 4 ]; helper "spill_check" ] );
    ( "op_jmp",
      Skeleton.[ straight 2; if_else "fwd" [ straight 3 ] [ straight 2 ] ] );
  ]

let helper_skeleton =
  Skeleton.[ straight 3; if_ ~p:0.1 "slow_path" [ straight 6 ]; straight 1 ]

(* The instrumented interpreter itself. *)
let op_add () = Probe.routine k_add (fun () -> ())

let op_mul x = Probe.routine k_mul (fun () -> ignore (Probe.cond "overflow" (x > 1000)))

let op_jmp x = Probe.routine k_jmp (fun () -> ignore (Probe.cond "fwd" (x mod 3 = 0)))

let interp program_input =
  Probe.routine k_main @@ fun () ->
  let rest = ref program_input in
  while Probe.cond "fetch" (!rest <> []) do
    (match !rest with
    | op :: _ -> (
      match op mod 3 with
      | 0 -> op_add ()
      | 1 -> op_mul op
      | _ -> op_jmp op)
    | [] -> assert false);
    rest := List.tl !rest
  done

let () =
  (* assemble the program *)
  let b = Builder.create () in
  List.iter
    (fun (name, _) ->
      ignore (Builder.declare_proc b ~name ~subsystem:Stc_cfg.Proc.Other))
    skeletons;
  ignore
    (Builder.declare_proc b ~name:"spill_check" ~subsystem:Stc_cfg.Proc.Utility);
  let resolve = Builder.pid_of_name b in
  let code = ref [] in
  List.iter
    (fun (name, skel) ->
      let pid = resolve name in
      code := (pid, Bytecode.compile b ~pid ~resolve skel) :: !code)
    (("spill_check", helper_skeleton) :: skeletons);
  let program = Builder.build b in
  let code_arr = Array.make (Array.length program.Stc_cfg.Program.procs) None in
  List.iter (fun (pid, bc) -> code_arr.(pid) <- Some bc) !code;

  (* trace a synthetic instruction stream *)
  let recorder = Stc_trace.Recorder.create () in
  let walker =
    Stc_trace.Walker.create ~program ~code:code_arr ~seed:7L
      ~sink:(Stc_trace.Recorder.sink recorder)
  in
  let input = List.init 20_000 (fun i -> (i * 7919) mod 2048) in
  Probe.with_walker walker (fun () -> interp input);
  Printf.printf "traced %d blocks\n" (Stc_trace.Recorder.length recorder);

  (* profile it and compare layouts *)
  let profile = Stc_profile.Profile.create program in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder recorder)
    (Stc_profile.Profile.sink profile);
  let params =
    L.Algo.params ~exec_threshold:10 ~branch_threshold:0.3 ~cache_bytes:1024
      ~cfa_bytes:256 ()
  in
  (* every placement algorithm comes out of the registry — a new one
     registered in Stc_layout.Algo would appear here by name too *)
  let algo name =
    match L.Algo.find name with Ok a -> a | Error msg -> failwith msg
  in
  let layouts =
    List.map
      (fun name -> L.Algo.layout (algo name) profile params)
      [ "orig"; "P&H"; "Torr"; "auto"; "codestitcher"; "exttsp" ]
  in
  Printf.printf "%-14s %12s %8s %10s\n" "layout" "miss/100instr" "IPC"
    "seq-run";
  List.iter
    (fun layout ->
      let view =
        F.View.create program layout
          (Stc_trace.Source.of_recorder recorder)
      in
      let icache = Stc_cachesim.Icache.create ~size_bytes:1024 () in
      let r = F.Engine.run ~icache view in
      Printf.printf "%-14s %13.2f %8.2f %10.1f\n" layout.L.Layout.name
        (F.Engine.miss_rate_pct r) (F.Engine.bandwidth r)
        r.F.Engine.instrs_between_taken)
    layouts
