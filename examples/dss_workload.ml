(* Run decision-support queries through the instrumented engine and print
   the Section 4 characterization: footprint, popularity, reuse,
   determinism — plus per-query result summaries and buffer-pool stats.

   Run with:  dune exec examples/dss_workload.exe [-- SF] *)

module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Database = Stc_db.Database
module Queries = Stc_workload.Queries

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.001 in
  let config = { Pipeline.quick_config with Pipeline.sf } in

  (* Execute every TPC-D query untraced on the B-tree database and show
     the result sizes, as a user of the engine library would. *)
  let data = Stc_dbdata.Datagen.generate ~sf () in
  let db = Database.load data ~kind:Database.Btree_db in
  Printf.printf "Query results on the B-tree database (sf=%.4g):\n" sf;
  List.iter
    (fun q ->
      let t0 = Unix.gettimeofday () in
      let rows = Stc_db.Exec.run db (Queries.plan db q) in
      Printf.printf "  Q%-2d -> %5d rows   (%.0f ms)\n" q (List.length rows)
        (1000.0 *. (Unix.gettimeofday () -. t0)))
    Queries.all;
  let bm = Database.bufmgr db in
  Printf.printf "Buffer manager: %d hits, %d misses (%.1f%% hit rate)\n\n"
    (Stc_db.Bufmgr.hits bm) (Stc_db.Bufmgr.misses bm)
    (100.0
    *. float_of_int (Stc_db.Bufmgr.hits bm)
    /. float_of_int (max 1 (Stc_db.Bufmgr.hits bm + Stc_db.Bufmgr.misses bm)));

  (* The paper's characterization over the Training trace. *)
  let pl = Pipeline.run ~config () in
  E.print_table1 (E.table1 pl);
  print_newline ();
  E.print_figure2 pl;
  print_newline ();
  E.print_reuse (E.reuse pl);
  print_newline ();
  E.print_table2 (E.table2 pl)
