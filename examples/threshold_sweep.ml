(* Ablation of the STC parameters (Section 5.1 / the paper's future-work
   note on automating threshold selection): sweep the Exec Threshold, the
   Branch Threshold and the CFA size, and watch the interior optimum in
   the CFA dimension that Section 7.2 describes.

   Run with:  dune exec examples/threshold_sweep.exe [-- SF] *)

module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.001 in
  let config = { Pipeline.quick_config with Pipeline.sf } in
  let pl = Pipeline.run ~config () in
  let rows =
    E.ablation ~cache_kb:16
      ~exec_thresholds:[ 1; 20; 100; 1000 ]
      ~branch_thresholds:[ 0.1; 0.4 ]
      ~cfa_kbs:[ 1; 2; 4; 8; 12 ] pl
  in
  E.print_ablation rows;
  (* Locate the best configuration. *)
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.E.a_bandwidth >= r.E.a_bandwidth -> acc
        | _ -> Some r)
      None rows
  in
  match best with
  | Some b ->
    Printf.printf
      "\nBest bandwidth %.2f IPC at ExecThresh=%d BranchThresh=%.2f CFA=%dKB\n"
      b.E.a_bandwidth b.E.a_exec b.E.a_branch b.E.a_cfa_kb
  | None -> ()
