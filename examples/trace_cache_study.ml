(* The software-vs-hardware trace cache study of Section 7.3: compare the
   SEQ.3 fetch unit alone, the hardware trace cache, the software layout,
   and the combination, all over the same Test trace.

   Run with:  dune exec examples/trace_cache_study.exe [-- SF] *)

module Pipeline = Stc_core.Pipeline
module L = Stc_layout
module F = Stc_fetch

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.001 in
  let config = { Pipeline.quick_config with Pipeline.sf } in
  let pl = Pipeline.run ~config () in
  let orig = L.Original.layout pl.Pipeline.program in
  let params =
    L.Stc.params ~exec_threshold:20 ~branch_threshold:0.3 ~cache_bytes:16384
      ~cfa_bytes:4096 ()
  in
  let ops =
    L.Stc.layout pl.Pipeline.profile ~name:"ops" ~params
      ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile)
  in
  let run layout ~tc =
    let view =
      F.View.create pl.Pipeline.program layout (Pipeline.test_source pl)
    in
    let icache = Stc_cachesim.Icache.create ~size_bytes:16384 () in
    let trace_cache = if tc then Some (F.Tracecache.create ()) else None in
    let r = F.Engine.run ~icache ?trace_cache view in
    let hit_rate =
      if r.F.Engine.tc_lookups = 0 then 0.0
      else
        100.0 *. float_of_int r.F.Engine.tc_hits
        /. float_of_int r.F.Engine.tc_lookups
    in
    (F.Engine.bandwidth r, hit_rate)
  in
  let show name (bw, tc_rate) =
    if tc_rate > 0.0 then
      Printf.printf "  %-28s %5.2f IPC   (trace cache hit rate %.0f%%)\n" name
        bw tc_rate
    else Printf.printf "  %-28s %5.2f IPC\n" name bw
  in
  print_endline "Fetch bandwidth, 16KB i-cache, 256-entry trace cache:";
  show "SEQ.3, original layout" (run orig ~tc:false);
  show "SEQ.3 + trace cache" (run orig ~tc:true);
  show "SEQ.3, STC (ops) layout" (run ops ~tc:false);
  show "SEQ.3 + trace cache + STC" (run ops ~tc:true);
  print_endline
    "\nThe software layout keeps helping on trace-cache misses: the\n\
     combination is the best configuration, as in the paper's Table 4."
