(* Quickstart: profile a workload, build a Software Trace Cache layout,
   and measure the i-cache miss rate and fetch bandwidth before and after.

   Run with:  dune exec examples/quickstart.exe *)

module Pipeline = Stc_core.Pipeline
module L = Stc_layout
module F = Stc_fetch

let () =
  (* 1. Build the synthetic DBMS kernel, load TPC-D data, trace the
        Training queries (for the profile) and the Test queries. *)
  let pl = Pipeline.run ~config:Pipeline.quick_config () in
  Printf.printf "Test trace: %d basic blocks, %d instructions\n\n"
    (Stc_trace.Recorder.length pl.Pipeline.test)
    (Stc_profile.Profile.total_instrs pl.Pipeline.profile);

  (* 2. Two layouts: the original compiler layout, and the Software Trace
        Cache layout seeded at the Executor operations. *)
  let orig = L.Original.layout pl.Pipeline.program in
  let params =
    L.Stc.params ~exec_threshold:20 ~branch_threshold:0.3 ~cache_bytes:16384
      ~cfa_bytes:4096 ()
  in
  let stc =
    L.Stc.layout pl.Pipeline.profile ~name:"ops" ~params
      ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile)
  in

  (* 3. Replay the Test trace through a 16 KB direct-mapped i-cache and
        the SEQ.3 fetch unit under each layout. *)
  List.iter
    (fun layout ->
      let view =
        F.View.create pl.Pipeline.program layout (Pipeline.test_source pl)
      in
      let icache = Stc_cachesim.Icache.create ~size_bytes:16384 () in
      let r = F.Engine.run ~icache view in
      Printf.printf
        "%-5s layout: %5.2f misses per 100 instructions, %4.2f instructions \
         per cycle, %5.1f instructions between taken branches\n"
        layout.L.Layout.name (F.Engine.miss_rate_pct r) (F.Engine.bandwidth r)
        r.F.Engine.instrs_between_taken)
    [ orig; stc ]
