let () =
  Alcotest.run "stc_repro"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("obs-trace", Test_obs_trace.suite);
      ("par", Test_par.suite);
      ("cfg", Test_cfg.suite);
      ("trace", Test_trace.suite);
      ("profile", Test_profile.suite);
      ("db", Test_db.suite);
      ("dbdata", Test_dbdata.suite);
      ("queries", Test_queries.suite);
      ("workload", Test_workload.suite);
      ("layout", Test_layout.suite);
      ("cachesim", Test_cachesim.suite);
      ("fetch", Test_fetch.suite);
      ("stream", Test_stream.suite);
      ("fused", Test_fused.suite);
      ("core", Test_core.suite);
      ("store", Test_store.suite);
      ("extensions", Test_extensions.suite);
      ("check", Test_check.suite);
      ("prefetch", Test_prefetch.suite);
    ]
