open Stc_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_named_independent () =
  let r = Rng.create 42L in
  let a = Rng.named r "alpha" and b = Rng.named r "beta" in
  Alcotest.(check bool) "different streams" true (Rng.int64 a <> Rng.int64 b);
  let a' = Rng.named r "alpha" in
  Alcotest.(check int64) "named is stable" (Rng.int64 (Rng.named r "alpha")) (Rng.int64 a');
  ignore b

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 10_000 do
    let x = Rng.float r 3.0 in
    Alcotest.(check bool) "float in range" true (x >= 0.0 && x < 3.0)
  done

let test_rng_bernoulli () =
  let r = Rng.create 9L in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "about 0.3" true (abs_float (p -. 0.3) < 0.01)

let test_zipf_skew () =
  let r = Rng.create 11L in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let k = Rng.zipf r ~n:100 ~s:1.0 in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 > rank 90" true (counts.(10) > counts.(90))

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 9_999 do
    Vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 10_000 (Vec.length v);
  Alcotest.(check int) "get" 299 (Vec.get v 99 / 3 * 3 + 299 - 297);
  Alcotest.(check int) "get exact" (99 * 3) (Vec.get v 99);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 10_000))

let test_vec_iter_fold () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int)))
    "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !acc);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "median" 50.0 (Stats.percentile xs 0.5);
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p100" 100.0 (Stats.percentile xs 1.0)

let test_stats_cumulative () =
  let counts = [| 50; 30; 15; 5 |] in
  let shares = Stats.cumulative_share counts in
  check_float "first" 0.5 shares.(0);
  check_float "second" 0.8 shares.(1);
  check_float "all" 1.0 shares.(3);
  Alcotest.(check int) "items for 80%" 2 (Stats.items_for_share counts 0.8);
  Alcotest.(check int) "items for 81%" 3 (Stats.items_for_share counts 0.81)

let test_stats_median_geomean () =
  check_float "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "median even" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |]);
  check_float "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  check_float "geomean singleton" 7.0 (Stats.geomean [| 7.0 |]);
  Alcotest.check_raises "median rejects empty"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.median [||]));
  Alcotest.check_raises "geomean rejects nonpositive"
    (Invalid_argument "Stats.geomean: nonpositive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_histo () =
  let h = Histo.create () in
  Histo.add h 0;
  Histo.add h 10;
  Histo.add h ~weight:2 1000;
  Alcotest.(check int) "total" 4 (Histo.total h);
  check_float "below 1" 0.25 (Histo.mass_below h 1);
  check_float "below 2000" 1.0 (Histo.mass_below h 2048);
  Alcotest.(check bool) "below 100 excludes the 1000s" true
    (abs_float (Histo.mass_below h 128 -. 0.5) < 1e-9)

let test_bits () =
  Alcotest.(check int) "log2 1024" 10 (Bits.log2_exact 1024);
  Alcotest.(check int) "log2_ceil 1000" 10 (Bits.log2_ceil 1000);
  Alcotest.(check bool) "pow2" true (Bits.is_pow2 4096);
  Alcotest.(check bool) "not pow2" false (Bits.is_pow2 4095);
  Alcotest.check_raises "log2_exact rejects"
    (Invalid_argument "Bits.log2_exact: not a power of two") (fun () ->
      ignore (Bits.log2_exact 3))

let test_tbl_render () =
  let t = Tbl.create ~headers:[ ("name", Tbl.Left); ("value", Tbl.Right) ] in
  Tbl.add_row t [ "x"; "1" ];
  Tbl.add_row t [ "longer"; "23" ];
  let s = Tbl.render t in
  Alcotest.(check bool) "contains header" true
    (Astring_like.contains s "name");
  Alcotest.(check bool) "right aligned" true (Astring_like.contains s "    1")

let qcheck_tests =
  [
    QCheck.Test.make ~name:"vec roundtrip" ~count:200
      QCheck.(array small_nat)
      (fun a -> Vec.to_array (Vec.of_array a) = a);
    QCheck.Test.make ~name:"items_for_share monotone" ~count:200
      QCheck.(pair (array_of_size Gen.(int_range 1 50) (int_range 0 1000)) (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
      (fun (counts, (s1, s2)) ->
        let lo = min s1 s2 and hi = max s1 s2 in
        Stats.items_for_share counts lo <= Stats.items_for_share counts hi);
    QCheck.Test.make ~name:"median = percentile 0.5" ~count:200
      QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1000.0) 1000.0))
      (fun xs ->
        abs_float (Stats.median xs -. Stats.percentile xs 0.5) <= 1e-9);
    QCheck.Test.make ~name:"median within sample range" ~count:200
      QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1000.0) 1000.0))
      (fun xs ->
        let m = Stats.median xs in
        Array.exists (fun x -> x <= m) xs && Array.exists (fun x -> x >= m) xs);
    QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
      QCheck.(array_of_size Gen.(int_range 1 40) (float_range 0.001 1000.0))
      (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-6);
    QCheck.Test.make ~name:"geomean of constant array" ~count:200
      QCheck.(pair (int_range 1 30) (float_range 0.001 1000.0))
      (fun (n, v) ->
        abs_float (Stats.geomean (Array.make n v) -. v) <= 1e-6 *. v);
    QCheck.Test.make ~name:"histo mass_below monotone" ~count:200
      QCheck.(pair (list (int_range 0 100000)) (pair (int_range 0 200000) (int_range 0 200000)))
      (fun (vs, (a, b)) ->
        let h = Histo.create () in
        List.iter (Histo.add h) vs;
        let lo = min a b and hi = max a b in
        Histo.mass_below h lo <= Histo.mass_below h hi +. 1e-9);
  ]

let test_crc32 () =
  (* the standard CRC-32/IEEE check value *)
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "sub agrees with string" (Crc32.string "456")
    (Crc32.sub "123456789" ~pos:3 ~len:3);
  Alcotest.check_raises "sub bounds"
    (Invalid_argument "Crc32.sub") (fun () ->
      ignore (Crc32.sub "abc" ~pos:2 ~len:5));
  (* a single flipped bit always changes the checksum *)
  let s = String.init 64 Char.chr in
  let flipped i =
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c)
      s
  in
  for i = 0 to 63 do
    Alcotest.(check bool) "bit flip detected" true
      (Crc32.string (flipped i) <> Crc32.string s)
  done

let test_fnv () =
  Alcotest.(check int64) "offset basis" 0xCBF29CE484222325L Fnv.empty;
  Alcotest.(check int) "hex length" 16 (String.length (Fnv.to_hex Fnv.empty));
  (* string absorbs bytes; empty string is the identity *)
  Alcotest.(check int64) "empty string is identity" Fnv.empty
    (Fnv.string Fnv.empty "");
  Alcotest.(check bool) "order matters" true
    (Fnv.string (Fnv.string Fnv.empty "a") "b"
    <> Fnv.string (Fnv.string Fnv.empty "b") "a");
  Alcotest.(check bool) "floats hash by bits" true
    (Fnv.float Fnv.empty 0.0 <> Fnv.float Fnv.empty (-0.0));
  let arr = [| 5; 7; 11; 13 |] in
  Alcotest.(check int64) "ints = fold int"
    (Array.fold_left Fnv.int Fnv.empty arr)
    (Fnv.ints Fnv.empty arr);
  Alcotest.(check int64) "ints ~len prefix"
    (Fnv.ints Fnv.empty [| 5; 7 |])
    (Fnv.ints ~len:2 Fnv.empty arr)

let suite =
  [
    Alcotest.test_case "crc32" `Quick test_crc32;
    Alcotest.test_case "fnv" `Quick test_fnv;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng named" `Quick test_rng_named_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng bernoulli" `Quick test_rng_bernoulli;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats cumulative" `Quick test_stats_cumulative;
    Alcotest.test_case "stats median/geomean" `Quick test_stats_median_geomean;
    Alcotest.test_case "histo" `Quick test_histo;
    Alcotest.test_case "bits" `Quick test_bits;
    Alcotest.test_case "tbl render" `Quick test_tbl_render;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
