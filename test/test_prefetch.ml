(* Properties of the post-paper prefetch/replacement mechanisms.

   Three families:

   - the RRIP replacement policies (SRRIP and temperature-seeded TRRIP)
     never diverge from Stc_check's shared-nothing reference stack on
     random access streams, across associativities and victim-buffer
     geometries;
   - Fdip's structural bounds hold under random configurations and
     address streams: observed FTQ occupancy never exceeds ftq_depth
     and in-flight prefetches never exceed mshrs;
   - the FDIP-off engine configuration is exactly the historical
     engine: a config built without ~fdip equals Config.default result
     for result, and every new counter stays zero (the committed golden
     snapshots pin the same fact against the pre-PR tree). *)

module C = Stc_check
module F = Stc_fetch
module Icache = Stc_cachesim.Icache

let trace_of_skeleton = Test_fetch.trace_of_skeleton
let gen_skeleton = Test_fetch.gen_skeleton

(* --- RRIP/TRRIP vs the oracle reference stack ------------------- *)

(* Geometry generator shared by the policy differentials: small caches
   so sets churn, associativity from direct-mapped to 8-way, with and
   without a victim buffer. *)
let gen_geometry =
  QCheck.Gen.(
    let* assoc = oneofl [ 1; 2; 4; 8 ] in
    let* sets_pow = int_range 3 6 in
    let* victim_lines = oneofl [ 0; 4 ] in
    let* seed = int_bound 1_000_000 in
    let size_bytes = assoc * (1 lsl sets_pow) * 32 in
    return (assoc, victim_lines, size_bytes, seed))

let check_stream ~policy ~name (assoc, victim_lines, size_bytes, seed) =
  match
    C.diff_icache_stream ~accesses:4_000 ~policy ~seed ~assoc ~victim_lines
      ~size_bytes ()
  with
  | None -> true
  | Some msg ->
    QCheck.Test.fail_reportf
      "%s diverged (assoc=%d victim=%d size=%d seed=%d): %s" name assoc
      victim_lines size_bytes seed msg

let prop_srrip_matches_oracle =
  QCheck.Test.make ~name:"SRRIP never evicts differently from the oracle"
    ~count:50
    QCheck.(make gen_geometry)
    (check_stream ~policy:Icache.Srrip ~name:"srrip")

let prop_trrip_matches_oracle =
  QCheck.Test.make ~name:"TRRIP never evicts differently from the oracle"
    ~count:50
    QCheck.(pair (make gen_geometry) (int_bound 1000))
    (fun (geometry, tseed) ->
      (* Temperatures deliberately cover out-of-range values (3): the
         policy must treat unknown lines as cold, identically on both
         sides. The table is shorter than the address space, so lookups
         past its end are exercised too. *)
      let temps = Array.init 128 (fun i -> (i + tseed) mod 4) in
      check_stream ~policy:(Icache.Trrip temps) ~name:"trrip" geometry)

(* --- FDIP structural bounds -------------------------------------- *)

let gen_fdip_run =
  QCheck.Gen.(
    let* ftq_depth = int_range 1 16 in
    let* mshrs = int_range 1 16 in
    let* degree = int_range 1 4 in
    let* latency = int_range 0 8 in
    let* lines_pow = int_range 3 5 in
    let* addrs = array_size (int_range 20 400) (int_bound 4095) in
    return
      ( F.Fdip.config ~ftq_depth ~mshrs ~degree ~latency (),
        1 lsl lines_pow,
        addrs ))

let prop_ftq_bounds =
  QCheck.Test.make
    ~name:"FTQ occupancy and in-flight prefetches stay within bounds"
    ~count:100
    QCheck.(make gen_fdip_run)
    (fun (cfg, cache_lines, addrs) ->
      let ic = Icache.create ~assoc:2 ~size_bytes:(cache_lines * 32) () in
      let fd = F.Fdip.create cfg ic in
      let n = Array.length addrs in
      Array.iteri
        (fun i addr ->
          let now = i + 1 in
          F.Fdip.begin_cycle fd ~now;
          ignore (F.Fdip.demand fd ~now ~miss_penalty:5 (addr / 32 * 32));
          F.Fdip.advance fd ~now ~nth:(fun k ->
              if i + k < n then Some addrs.(i + k) else None);
          if F.Fdip.in_flight fd > cfg.F.Fdip.mshrs then
            QCheck.Test.fail_reportf "cycle %d: %d in flight > mshrs %d" now
              (F.Fdip.in_flight fd) cfg.F.Fdip.mshrs)
        addrs;
      if F.Fdip.occupancy_hwm fd > cfg.F.Fdip.ftq_depth then
        QCheck.Test.fail_reportf "FTQ occupancy hwm %d > depth %d"
          (F.Fdip.occupancy_hwm fd)
          cfg.F.Fdip.ftq_depth;
      if F.Fdip.inflight_hwm fd > cfg.F.Fdip.mshrs then
        QCheck.Test.fail_reportf "in-flight hwm %d > mshrs %d"
          (F.Fdip.inflight_hwm fd)
          cfg.F.Fdip.mshrs;
      (* Every issue either completed or is still in flight. *)
      if
        F.Fdip.completed fd + F.Fdip.in_flight fd <> F.Fdip.issued fd
      then
        QCheck.Test.fail_reportf "issued %d <> completed %d + in flight %d"
          (F.Fdip.issued fd) (F.Fdip.completed fd) (F.Fdip.in_flight fd);
      true)

(* --- FDIP-off is the historical engine --------------------------- *)

let prop_fdip_off_identical =
  QCheck.Test.make
    ~name:"config without ~fdip is bit-identical to the default engine"
    ~count:25
    QCheck.(pair (make gen_skeleton) (int_bound 10_000))
    (fun (skel, layout_seed) ->
      let prog, rec_ = trace_of_skeleton skel in
      let layout = Test_fetch.random_layout prog layout_seed in
      let source () = Stc_trace.Source.of_recorder rec_ in
      let view = F.View.create prog layout (source ()) in
      let run config =
        F.Engine.run_packed ~config
          ~icache:(Icache.create ~size_bytes:1024 ())
          (F.Packed.compile prog layout (source ()))
      in
      let base = run F.Engine.Config.default in
      let explicit = run (F.Engine.Config.make ()) in
      if base <> explicit then
        QCheck.Test.fail_reportf
          "Config.make () result differs from Config.default";
      let naive =
        F.Engine.run_naive ~config:F.Engine.Config.default
          ~icache:(Icache.create ~size_bytes:1024 ())
          view
      in
      if base <> naive then
        QCheck.Test.fail_reportf "packed result differs from naive";
      if
        base.F.Engine.prefetch_issued <> 0
        || base.F.Engine.prefetch_completed <> 0
        || base.F.Engine.prefetch_late <> 0
        || base.F.Engine.prefetch_useful <> 0
        || base.F.Engine.icache_evictions <> 0
      then
        QCheck.Test.fail_reportf
          "FDIP-off run has non-zero prefetch/eviction counters";
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_srrip_matches_oracle;
    QCheck_alcotest.to_alcotest prop_trrip_matches_oracle;
    QCheck_alcotest.to_alcotest prop_ftq_bounds;
    QCheck_alcotest.to_alcotest prop_fdip_off_identical;
  ]
