module Pool = Stc_par.Pool
module Run = Stc_core.Run
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Registry = Stc_obs.Registry
module Json = Stc_obs.Json

(* ---------- pool basics ---------- *)

let test_map_ordering () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun x -> x * x) xs in
  Alcotest.(check (array int))
    "chunk 1" expected
    (Pool.map ~chunk:1 pool (fun x -> x * x) xs);
  Alcotest.(check (array int))
    "default chunk" expected
    (Pool.map pool (fun x -> x * x) xs);
  Alcotest.(check (array int))
    "oversized chunk" expected
    (Pool.map ~chunk:1000 pool (fun x -> x * x) xs);
  (* reuse: the same pool serves many calls *)
  for _ = 1 to 5 do
    Alcotest.(check (array int))
      "reused" expected
      (Pool.map ~chunk:3 pool (fun x -> x * x) xs)
  done

let test_map_empty_and_serial () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  Alcotest.(check (array int)) "empty input" [||] (Pool.map pool (fun x -> x) [||]);
  Pool.with_pool ~domains:1 @@ fun serial ->
  Alcotest.(check int) "domains 1" 1 (Pool.domains serial);
  Alcotest.(check (array int))
    "inline path" [| 0; 2; 4 |]
    (Pool.map serial (fun x -> 2 * x) (Array.init 3 (fun i -> i)))

let test_iter_chunks_coverage () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let n = 1037 in
  let hits = Array.make n 0 in
  (* chunks are disjoint, so these writes race on nothing *)
  Pool.iter_chunks ~chunk:16 pool n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = Array.init 64 (fun i -> i) in
  (* a raising task must not hang the pool, and the exception reaches the
     caller *)
  (match Pool.map ~chunk:1 pool (fun x -> if x = 17 then raise (Boom x) else x) xs with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom 17 -> ());
  (* ... and the pool is still usable afterwards *)
  Alcotest.(check (array int))
    "pool alive after failure" (Array.map (fun x -> x + 1) xs)
    (Pool.map ~chunk:1 pool (fun x -> x + 1) xs)

let test_shutdown () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  ignore (Pool.map pool (fun x -> x) [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Stc_par.Pool: pool is shut down") (fun () ->
      ignore (Pool.map pool (fun x -> x) [| 1 |]))

let test_ctx_builders () =
  let ctx = Run.default |> Run.with_jobs 0 in
  Alcotest.(check int) "jobs clamped to 1" 1 ctx.Run.jobs;
  let ctx = Run.default |> Run.with_jobs 4 |> Run.with_seed 7 in
  Alcotest.(check int) "jobs kept" 4 ctx.Run.jobs;
  Alcotest.(check bool) "seed set" true (ctx.Run.seed = Some 7);
  Alcotest.(check bool) "no metrics by default" true (ctx.Run.metrics = None)

(* ---------- jobs-invariance of the simulation grid ---------- *)

let tiny_config = { Pipeline.quick_config with Pipeline.sf = 0.0003 }

let tiny_grid = { E.default_sim_config with E.grid = [ (8, [ 2; 4 ]) ] }

let strip_seconds records =
  List.map
    (function
      | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "seconds") fields)
      | v -> v)
    records

let grid_run jobs =
  let reg = Registry.create () in
  let ctx = Run.default |> Run.with_metrics reg |> Run.with_jobs jobs in
  let pl = Pipeline.run ~ctx ~config:tiny_config () in
  let rows = E.simulate ~ctx ~config:tiny_grid pl in
  let ab =
    E.ablation ~ctx ~cache_kb:8 ~exec_thresholds:[ 10; 50 ]
      ~branch_thresholds:[ 0.3 ] ~cfa_kbs:[ 2 ] pl
  in
  (rows, ab, strip_seconds (Json.lines (Stc_obs.Export.to_jsonl reg)))

let test_jobs_invariance () =
  let rows1, ab1, export1 = grid_run 1 in
  let rows3, ab3, export3 = grid_run 3 in
  Alcotest.(check bool) "simulate rows identical" true (rows1 = rows3);
  Alcotest.(check bool) "ablation rows identical" true (ab1 = ab3);
  Alcotest.(check int) "same export length" (List.length export1)
    (List.length export3);
  List.iter2
    (fun x y ->
      if x <> y then
        Alcotest.failf "export drift between jobs=1 and jobs=3:\n%s\n%s"
          (Json.to_string x) (Json.to_string y))
    export1 export3

let suite =
  [
    Alcotest.test_case "map ordering and reuse" `Quick test_map_ordering;
    Alcotest.test_case "map empty + domains=1" `Quick test_map_empty_and_serial;
    Alcotest.test_case "iter_chunks coverage" `Quick test_iter_chunks_coverage;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "Run.ctx builders" `Quick test_ctx_builders;
    Alcotest.test_case "jobs-invariant grid" `Slow test_jobs_invariance;
  ]
