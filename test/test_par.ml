module Pool = Stc_par.Pool
module Run = Stc_core.Run
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Registry = Stc_obs.Registry
module Json = Stc_obs.Json

(* ---------- pool basics ---------- *)

let test_map_ordering () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun x -> x * x) xs in
  Alcotest.(check (array int))
    "chunk 1" expected
    (Pool.map ~chunk:1 pool (fun x -> x * x) xs);
  Alcotest.(check (array int))
    "default chunk" expected
    (Pool.map pool (fun x -> x * x) xs);
  Alcotest.(check (array int))
    "oversized chunk" expected
    (Pool.map ~chunk:1000 pool (fun x -> x * x) xs);
  (* reuse: the same pool serves many calls *)
  for _ = 1 to 5 do
    Alcotest.(check (array int))
      "reused" expected
      (Pool.map ~chunk:3 pool (fun x -> x * x) xs)
  done

let test_map_empty_and_serial () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  Alcotest.(check (array int)) "empty input" [||] (Pool.map pool (fun x -> x) [||]);
  Pool.with_pool ~domains:1 @@ fun serial ->
  Alcotest.(check int) "domains 1" 1 (Pool.domains serial);
  Alcotest.(check (array int))
    "inline path" [| 0; 2; 4 |]
    (Pool.map serial (fun x -> 2 * x) (Array.init 3 (fun i -> i)))

let test_iter_chunks_coverage () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let n = 1037 in
  let hits = Array.make n 0 in
  (* chunks are disjoint, so these writes race on nothing *)
  Pool.iter_chunks ~chunk:16 pool n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = Array.init 64 (fun i -> i) in
  (* a raising task must not hang the pool, and the exception reaches the
     caller *)
  (match Pool.map ~chunk:1 pool (fun x -> if x = 17 then raise (Boom x) else x) xs with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom 17 -> ());
  (* ... and the pool is still usable afterwards *)
  Alcotest.(check (array int))
    "pool alive after failure" (Array.map (fun x -> x + 1) xs)
    (Pool.map ~chunk:1 pool (fun x -> x + 1) xs)

let test_shutdown () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  ignore (Pool.map pool (fun x -> x) [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Stc_par.Pool: pool is shut down") (fun () ->
      ignore (Pool.map pool (fun x -> x) [| 1 |]))

let test_ctx_builders () =
  let ctx = Run.default |> Run.with_jobs 0 in
  Alcotest.(check int) "jobs clamped to 1" 1 ctx.Run.jobs;
  let ctx = Run.default |> Run.with_jobs 4 |> Run.with_seed 7 in
  Alcotest.(check int) "jobs kept" 4 ctx.Run.jobs;
  Alcotest.(check bool) "seed set" true (ctx.Run.seed = Some 7);
  Alcotest.(check bool) "no metrics by default" true (ctx.Run.metrics = None)

(* ---------- per-domain accounting and tracing ---------- *)

let busy_work () =
  (* a few hundred microseconds of real work per item, so busy times are
     comfortably non-zero without slowing the suite *)
  let acc = ref 0 in
  for i = 1 to 100_000 do
    acc := (!acc * 31) + i
  done;
  !acc

let test_stats_accounting () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let n = 64 in
  ignore (Pool.map ~chunk:1 pool (fun _ -> busy_work ()) (Array.init n Fun.id));
  ignore (Pool.map ~chunk:1 pool (fun _ -> busy_work ()) (Array.init n Fun.id));
  let s = Pool.stats pool in
  Alcotest.(check int) "domains" 3 s.Pool.s_domains;
  Alcotest.(check int) "submits" 2 s.Pool.s_submits;
  Alcotest.(check int) "slots sized to domains" 3 (Array.length s.Pool.s_busy);
  Alcotest.(check int) "chunks sum to items" (2 * n)
    (Array.fold_left ( + ) 0 s.Pool.s_chunks);
  Alcotest.(check bool) "wall positive" true (s.Pool.s_wall > 0.0);
  (* busy + idle = wall per slot, by construction of idle *)
  Array.iteri
    (fun i b ->
      let sum = b +. s.Pool.s_idle.(i) in
      if abs_float (sum -. s.Pool.s_wall) > 1e-9 *. Float.max 1.0 s.Pool.s_wall
      then
        Alcotest.failf "slot %d: busy %.6f + idle %.6f <> wall %.6f" i b
          s.Pool.s_idle.(i) s.Pool.s_wall;
      if b < 0.0 then Alcotest.failf "slot %d: negative busy" i)
    s.Pool.s_busy;
  (* every domain claimed at least one of the 128 single-item chunks *)
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.failf "slot %d claimed no chunks" i)
    s.Pool.s_chunks

let test_pool_tracing () =
  let tr = Stc_obs.Trace.create () in
  (Pool.with_pool ~domains:2 ~trace:tr @@ fun pool ->
   ignore (Pool.map ~chunk:4 pool (fun _ -> busy_work ()) (Array.init 32 Fun.id)));
  (* 8 chunks, each a queue-depth counter plus a begin/end pair *)
  Alcotest.(check int) "3 events per chunk" 24 (Stc_obs.Trace.events tr);
  let evs =
    match Json.of_string (Stc_obs.Trace.to_string tr) with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "trace not an array"
  in
  let ph e =
    match Json.member "ph" e with Some (Json.Str s) -> s | _ -> "?" in
  let count p = List.length (List.filter (fun e -> ph e = p) evs) in
  Alcotest.(check int) "balanced begins" 8 (count "B");
  Alcotest.(check int) "balanced ends" 8 (count "E");
  Alcotest.(check int) "queue counters" 8 (count "C")

let test_untraced_pool_silent () =
  (* no ?trace: the pool must not touch any tracer; a tracer created on
     the side sees zero events either way *)
  let tr = Stc_obs.Trace.create () in
  (Pool.with_pool ~domains:2 @@ fun pool ->
   ignore (Pool.map pool (fun x -> x + 1) (Array.init 100 Fun.id)));
  Alcotest.(check int) "no events without ?trace" 0 (Stc_obs.Trace.events tr);
  Alcotest.(check int) "no drops either" 0 (Stc_obs.Trace.dropped tr)

(* ---------- jobs-invariance of the simulation grid ---------- *)

let tiny_config = { Pipeline.quick_config with Pipeline.sf = 0.0003 }

let tiny_grid = { E.default_sim_config with E.grid = [ (8, [ 2; 4 ]) ] }

let strip_seconds records =
  List.map
    (function
      | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "seconds") fields)
      | v -> v)
    records

let grid_run jobs =
  let reg = Registry.create () in
  let ctx = Run.default |> Run.with_metrics reg |> Run.with_jobs jobs in
  let pl = Pipeline.run ~ctx ~config:tiny_config () in
  let rows = E.simulate ~ctx ~config:tiny_grid pl in
  let ab =
    E.ablation ~ctx ~cache_kb:8 ~exec_thresholds:[ 10; 50 ]
      ~branch_thresholds:[ 0.3 ] ~cfa_kbs:[ 2 ] pl
  in
  (rows, ab, strip_seconds (Json.lines (Stc_obs.Export.to_jsonl reg)))

let test_jobs_invariance () =
  let rows1, ab1, export1 = grid_run 1 in
  let rows3, ab3, export3 = grid_run 3 in
  Alcotest.(check bool) "simulate rows identical" true (rows1 = rows3);
  Alcotest.(check bool) "ablation rows identical" true (ab1 = ab3);
  Alcotest.(check int) "same export length" (List.length export1)
    (List.length export3);
  List.iter2
    (fun x y ->
      if x <> y then
        Alcotest.failf "export drift between jobs=1 and jobs=3:\n%s\n%s"
          (Json.to_string x) (Json.to_string y))
    export1 export3

let suite =
  [
    Alcotest.test_case "map ordering and reuse" `Quick test_map_ordering;
    Alcotest.test_case "map empty + domains=1" `Quick test_map_empty_and_serial;
    Alcotest.test_case "iter_chunks coverage" `Quick test_iter_chunks_coverage;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "Run.ctx builders" `Quick test_ctx_builders;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "pool chunk tracing" `Quick test_pool_tracing;
    Alcotest.test_case "untraced pool emits nothing" `Quick
      test_untraced_pool_silent;
    Alcotest.test_case "jobs-invariant grid" `Slow test_jobs_invariance;
  ]
