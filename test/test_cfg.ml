open Stc_cfg

(* A tiny hand-built two-procedure program:
   p0: b0 (cond) -> b1 (call p1) -> b2 (ret), taken edge b0 -> b2
   p1: b3 (ret) *)
let tiny () =
  let b = Builder.create () in
  let p0 = Builder.declare_proc b ~name:"main" ~subsystem:Proc.Executor in
  let p1 = Builder.declare_proc b ~name:"leaf" ~subsystem:Proc.Utility in
  let b0 = Builder.new_block b ~pid:p0 ~size:3 in
  let b1 = Builder.new_block b ~pid:p0 ~size:2 in
  let b2 = Builder.new_block b ~pid:p0 ~size:1 in
  let b3 = Builder.new_block b ~pid:p1 ~size:4 in
  Builder.set_term b b0 (Terminator.Cond { taken = b2; fallthru = b1 });
  Builder.set_term b b1 (Terminator.Call { callee = p1; next = b2 });
  Builder.set_term b b2 Terminator.Ret;
  Builder.set_term b b3 Terminator.Ret;
  Builder.finish_proc b ~pid:p0 ~entry:b0 ~blocks:[| b0; b1; b2 |];
  Builder.finish_proc b ~pid:p1 ~entry:b3 ~blocks:[| b3 |];
  Builder.build b

let test_static_counts () =
  let p = tiny () in
  let c = Program.static_counts p in
  Alcotest.(check int) "procs" 2 c.Program.n_procs;
  Alcotest.(check int) "blocks" 4 c.Program.n_blocks;
  Alcotest.(check int) "instrs" 10 c.Program.n_instrs

let test_validate_ok () =
  let p = tiny () in
  match Program.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_classification () =
  let p = tiny () in
  let kind i = Block.kind p.Program.blocks.(i) in
  Alcotest.(check string) "b0 branch" "Branch" (Terminator.kind_name (kind 0));
  Alcotest.(check string) "b1 call" "Subroutine call"
    (Terminator.kind_name (kind 1));
  Alcotest.(check string) "b2 ret" "Subroutine return"
    (Terminator.kind_name (kind 2))

let test_builder_rejects_unreachable () =
  let b = Builder.create () in
  let p0 = Builder.declare_proc b ~name:"p" ~subsystem:Proc.Other in
  let b0 = Builder.new_block b ~pid:p0 ~size:1 in
  let b1 = Builder.new_block b ~pid:p0 ~size:1 in
  Builder.set_term b b0 Terminator.Ret;
  Builder.set_term b b1 Terminator.Ret;
  Builder.finish_proc b ~pid:p0 ~entry:b0 ~blocks:[| b0; b1 |];
  match Builder.build b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected unreachable-block failure"

let test_builder_rejects_cross_proc_edge () =
  let b = Builder.create () in
  let p0 = Builder.declare_proc b ~name:"p" ~subsystem:Proc.Other in
  let p1 = Builder.declare_proc b ~name:"q" ~subsystem:Proc.Other in
  let b0 = Builder.new_block b ~pid:p0 ~size:1 in
  let b1 = Builder.new_block b ~pid:p1 ~size:1 in
  Builder.set_term b b0 (Terminator.Jump b1);
  Builder.set_term b b1 Terminator.Ret;
  Builder.finish_proc b ~pid:p0 ~entry:b0 ~blocks:[| b0 |];
  Builder.finish_proc b ~pid:p1 ~entry:b1 ~blocks:[| b1 |];
  match Builder.build b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected cross-procedure edge failure"

let test_builder_rejects_unfinished () =
  let b = Builder.create () in
  let _p0 = Builder.declare_proc b ~name:"p" ~subsystem:Proc.Other in
  match Builder.build b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected unfinished-procedure failure"

let test_find_proc () =
  let p = tiny () in
  (match Program.find_proc p "leaf" with
  | Some pr -> Alcotest.(check string) "name" "leaf" pr.Proc.name
  | None -> Alcotest.fail "leaf not found");
  Alcotest.(check bool) "missing" true (Program.find_proc p "nope" = None)

let suite =
  [
    Alcotest.test_case "static counts" `Quick test_static_counts;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "rejects unreachable" `Quick
      test_builder_rejects_unreachable;
    Alcotest.test_case "rejects cross-proc edge" `Quick
      test_builder_rejects_cross_proc_edge;
    Alcotest.test_case "rejects unfinished" `Quick test_builder_rejects_unfinished;
    Alcotest.test_case "find proc" `Quick test_find_proc;
  ]
