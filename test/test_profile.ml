module P = Stc_profile
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator

(* A 3-block program: b0 (cond) -> b1 -> b2, taken edge b0 -> b2. *)
let prog3 () =
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Executor in
  let b0 = Builder.new_block b ~pid:p ~size:2 in
  let b1 = Builder.new_block b ~pid:p ~size:3 in
  let b2 = Builder.new_block b ~pid:p ~size:4 in
  Builder.set_term b b0 (Terminator.Cond { taken = b2; fallthru = b1 });
  Builder.set_term b b1 (Terminator.Fall b2);
  Builder.set_term b b2 Terminator.Ret;
  Builder.finish_proc b ~pid:p ~entry:b0 ~blocks:[| b0; b1; b2 |];
  (Builder.build b, b0, b1, b2)

let test_counts_and_edges () =
  let prog, b0, b1, b2 = prog3 () in
  let p = P.Profile.create prog in
  List.iter (P.Profile.sink p) [ b0; b1; b2 ];
  P.Profile.note_boundary p;
  List.iter (P.Profile.sink p) [ b0; b2 ];
  Alcotest.(check int) "b0 count" 2 (P.Profile.block_count p b0);
  Alcotest.(check int) "b1 count" 1 (P.Profile.block_count p b1);
  Alcotest.(check int) "edge b0->b1" 1 (P.Profile.edge_count p ~src:b0 ~dst:b1);
  Alcotest.(check int) "edge b0->b2" 1 (P.Profile.edge_count p ~src:b0 ~dst:b2);
  Alcotest.(check int) "no boundary edge" 0
    (P.Profile.edge_count p ~src:b2 ~dst:b0);
  Alcotest.(check int) "total blocks" 5 (P.Profile.total_blocks p);
  Alcotest.(check int) "total instrs" (2 + 3 + 4 + 2 + 4)
    (P.Profile.total_instrs p);
  Alcotest.(check (list (pair int int)))
    "successors sorted"
    [ (b1, 1); (b2, 1) ]
    (P.Profile.successors p b0)

let test_footprint () =
  let prog, b0, b1, _ = prog3 () in
  let p = P.Profile.create prog in
  List.iter (P.Profile.sink p) [ b0; b1 ];
  let fp = P.Footprint.compute p in
  Alcotest.(check int) "blocks executed" 2 fp.P.Footprint.blocks_executed;
  Alcotest.(check int) "instrs executed" 5 fp.P.Footprint.instrs_executed;
  Alcotest.(check int) "procs executed" 1 fp.P.Footprint.procs_executed

let test_popularity () =
  let prog, b0, b1, b2 = prog3 () in
  let p = P.Profile.create prog in
  for _ = 1 to 90 do
    P.Profile.sink p b0
  done;
  for _ = 1 to 9 do
    P.Profile.sink p b1
  done;
  P.Profile.sink p b2;
  let pop = P.Popularity.compute p in
  Alcotest.(check int) "1 block for 90%" 1 (P.Popularity.blocks_for_share pop 0.9);
  Alcotest.(check int) "2 blocks for 99%" 2 (P.Popularity.blocks_for_share pop 0.99);
  Alcotest.(check (float 1e-9)) "top-1 share" 0.9 (P.Popularity.share_of_top pop 1)

let test_reuse_distance () =
  let prog, b0, b1, b2 = prog3 () in
  let member = Array.make 3 false in
  member.(b0) <- true;
  let r = P.Reuse.create prog ~member in
  (* b0 (2) b1 (3) b0 : distance 5 instructions *)
  List.iter (P.Reuse.sink r) [ b0; b1; b0 ];
  Alcotest.(check int) "one interval" 1 (P.Reuse.samples r);
  Alcotest.(check (float 1e-9)) "below 6" 1.0 (P.Reuse.mass_below r 8);
  Alcotest.(check (float 1e-9)) "not below 4" 0.0 (P.Reuse.mass_below r 4);
  ignore b2

let test_determinism_classifies () =
  let prog, b0, b1, b2 = prog3 () in
  let p = P.Profile.create prog in
  (* b0 goes to b1 90% of the time -> fixed at threshold 0.9 *)
  for _ = 1 to 9 do
    List.iter (P.Profile.sink p) [ b0; b1; b2 ];
    P.Profile.note_boundary p
  done;
  List.iter (P.Profile.sink p) [ b0; b2 ];
  let d = P.Determinism.compute ~threshold:0.9 p in
  let branch_row =
    List.find
      (fun r -> r.P.Determinism.kind = Terminator.Branch)
      d.P.Determinism.rows
  in
  Alcotest.(check (float 0.01)) "branch fixed" 100.0
    branch_row.P.Determinism.predictable_pct;
  let d2 = P.Determinism.compute ~threshold:0.95 p in
  let branch_row2 =
    List.find
      (fun r -> r.P.Determinism.kind = Terminator.Branch)
      d2.P.Determinism.rows
  in
  Alcotest.(check (float 0.01)) "not fixed at 0.95" 0.0
    branch_row2.P.Determinism.predictable_pct

let test_call_edges () =
  let b = Builder.create () in
  let p0 = Builder.declare_proc b ~name:"caller" ~subsystem:Stc_cfg.Proc.Executor in
  let p1 = Builder.declare_proc b ~name:"callee" ~subsystem:Stc_cfg.Proc.Utility in
  let c0 = Builder.new_block b ~pid:p0 ~size:2 in
  let c1 = Builder.new_block b ~pid:p0 ~size:1 in
  let e0 = Builder.new_block b ~pid:p1 ~size:2 in
  Builder.set_term b c0 (Terminator.Call { callee = p1; next = c1 });
  Builder.set_term b c1 Terminator.Ret;
  Builder.set_term b e0 Terminator.Ret;
  Builder.finish_proc b ~pid:p0 ~entry:c0 ~blocks:[| c0; c1 |];
  Builder.finish_proc b ~pid:p1 ~entry:e0 ~blocks:[| e0 |];
  let prog = Builder.build b in
  let p = P.Profile.create prog in
  List.iter (P.Profile.sink p) [ c0; e0; c1 ];
  Alcotest.(check (list (triple int int int)))
    "call edge" [ (p0, p1, 1) ] (P.Profile.call_edges p)

let suite =
  [
    Alcotest.test_case "counts and edges" `Quick test_counts_and_edges;
    Alcotest.test_case "footprint" `Quick test_footprint;
    Alcotest.test_case "popularity" `Quick test_popularity;
    Alcotest.test_case "reuse distance" `Quick test_reuse_distance;
    Alcotest.test_case "determinism threshold" `Quick test_determinism_classifies;
    Alcotest.test_case "call edges" `Quick test_call_edges;
  ]
