(* Fused replay: Engine.Bank must be an evaluation strategy, never an
   approximation.

   - property: over random traces and random config banks (mixed
     ideal/direct/2-way/victim/trace-cache variants, mixed engine
     configs, occasional direction prediction), Bank.run_packed and
     Bank.run_stream reproduce each spec's solo run_packed result,
     cache counters and trace-cache statistics exactly — at every
     stride and at segment sizes down to 1 block;
   - metric exports: a bank run with a metrics registry publishes
     byte-identical engine.* counters to the per-cell runs sharing one
     registry;
   - Experiments: a store-warm subset (some cells cached from an
     earlier smaller grid, the rest fused in one sweep) produces the
     same rows, counters and events as an unfused run. *)

module F = Stc_fetch
module L = Stc_layout
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator
module Source = Stc_trace.Source
module Registry = Stc_obs.Registry
module Run = Stc_obs.Run
module Bank = F.Engine.Bank

(* Same random-program shape as test_stream: a linear chain whose
   replay semantics exercise every packed-word shape. *)
let random_program seed n =
  let st = Random.State.make [| seed; n |] in
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let ids =
    Array.init n (fun _ ->
        Builder.new_block b ~pid:p ~size:(1 + Random.State.int st 12))
  in
  Array.iteri
    (fun i bid ->
      let term =
        if i = n - 1 then Terminator.Ret
        else
          let next = ids.(i + 1) in
          let other = ids.(Random.State.int st n) in
          match Random.State.int st 3 with
          | 0 -> Terminator.Cond { taken = other; fallthru = next }
          | 1 -> Terminator.Jump next
          | _ -> Terminator.Fall next
      in
      Builder.set_term b bid term)
    ids;
  Builder.finish_proc b ~pid:p ~entry:ids.(0) ~blocks:ids;
  (Builder.build b, ids)

let random_trace st ids len =
  Array.init len (fun _ -> ids.(Random.State.int st (Array.length ids)))

(* One random spec; cache state is created here, so regenerating from
   the same seed yields an identical-but-fresh bank (fused and solo
   replays must never share mutable cache state). *)
let random_spec st =
  let line_bytes = if Random.State.bool st then 16 else 32 in
  let max_branches = 2 + Random.State.int st 2 in
  let miss_penalty = 1 + Random.State.int st 9 in
  let config =
    F.Engine.Config.make ~line_bytes ~max_branches ~miss_penalty ()
  in
  let icache =
    match Random.State.int st 4 with
    | 0 -> None
    | 1 ->
      Some
        (Stc_cachesim.Icache.create
           ~size_bytes:(1024 lsl Random.State.int st 3)
           ())
    | 2 -> Some (Stc_cachesim.Icache.create ~assoc:2 ~size_bytes:2048 ())
    | _ ->
      Some
        (Stc_cachesim.Icache.create
           ~victim_lines:(1 + Random.State.int st 8)
           ~size_bytes:1024 ())
  in
  let trace_cache =
    match Random.State.int st 3 with
    | 0 -> None
    | 1 -> Some (F.Tracecache.create ~entries:16 ())
    | _ -> Some (F.Tracecache.create ~entries:64 ~width:8 ())
  in
  let prediction =
    if Random.State.int st 5 = 0 then
      Some
        {
          F.Engine.pred = F.Predictor.create (F.Predictor.Bimodal 256);
          redirect_penalty = 1 + Random.State.int st 4;
        }
    else None
  in
  Bank.spec ~config ?icache ?trace_cache ?prediction ()

let mk_specs seed k () =
  let st = Random.State.make [| seed; k; 77 |] in
  Array.init k (fun _ -> random_spec st)

(* Everything a solo replay leaves behind: the result record plus the
   final cache statistics. *)
let snapshot sp r =
  ( r,
    Option.map Stc_cachesim.Icache.stats sp.Bank.icache,
    Option.map
      (fun tc -> (F.Tracecache.lookups tc, F.Tracecache.hits tc))
      sp.Bank.trace_cache )

let solo_reference seed k packed =
  let specs = mk_specs seed k () in
  Array.map
    (fun sp ->
      let r =
        F.Engine.run_packed ~config:sp.Bank.config ?icache:sp.Bank.icache
          ?trace_cache:sp.Bank.trace_cache ?prediction:sp.Bank.prediction
          packed
      in
      snapshot sp r)
    specs

let prop_fused_equals_solo =
  QCheck.Test.make
    ~name:"fused bank == per-cell replay (packed and streamed)" ~count:60
    QCheck.(triple (int_bound 10_000) (int_bound 300) (int_bound 1_000))
    (fun (seed, len, aux) ->
      let st = Random.State.make [| seed; aux |] in
      let prog, ids = random_program seed (2 + Random.State.int st 40) in
      let trace = random_trace st ids len in
      let layout = L.Original.layout prog in
      let k = 1 + Random.State.int st 7 in
      let packed = F.Packed.compile prog layout (Source.of_array trace) in
      let solo = solo_reference seed k packed in
      let stride_words = [| 1; 7; 64; 16384 |].(Random.State.int st 4) in
      let fspecs = mk_specs seed k () in
      let frs = Bank.run_packed ~stride_words fspecs packed in
      let fused = Array.mapi (fun i r -> snapshot fspecs.(i) r) frs in
      if fused <> solo then
        QCheck.Test.fail_reportf "fused packed differs (k=%d len=%d stride=%d)"
          k len stride_words;
      (* segment sizes stressing every boundary shape, including 1-block
         segments and a 1-block final segment *)
      List.for_all
        (fun segment_blocks ->
          let sspecs = mk_specs seed k () in
          let stream =
            F.Stream.create (F.Packed.tables prog layout)
              (Source.of_array ~segment_blocks trace)
          in
          let srs = Bank.run_stream ~stride_words sspecs stream in
          let streamed = Array.mapi (fun i r -> snapshot sspecs.(i) r) srs in
          if streamed <> solo then
            QCheck.Test.fail_reportf "fused stream differs (k=%d len=%d seg=%d)"
              k len segment_blocks
          else true)
        [ 1; max 1 (len - 1); len + 1; 2 + Random.State.int st 97 ])

let test_empty_bank_and_trace () =
  let prog, ids = random_program 7 5 in
  let layout = L.Original.layout prog in
  let st = Random.State.make [| 3 |] in
  let trace = random_trace st ids 500 in
  let packed = F.Packed.compile prog layout (Source.of_array trace) in
  Alcotest.(check int) "empty bank" 0 (Array.length (Bank.run_packed [||] packed));
  let empty = F.Packed.compile prog layout (Source.of_array [||]) in
  let solo = solo_reference 7 3 empty in
  let specs = mk_specs 7 3 () in
  let rs = Bank.run_packed specs empty in
  Alcotest.(check bool) "empty trace fused == solo" true
    (Array.mapi (fun i r -> snapshot specs.(i) r) rs = solo)

(* The streamed bank's resident window is bounded by the segment size
   plus lookahead, not by the trace: the window compacts below the
   slowest cohort. *)
let test_fused_resident_bound () =
  let prog, ids = random_program 21 48 in
  let layout = L.Original.layout prog in
  let st = Random.State.make [| 42 |] in
  let len = 50_000 and segment_blocks = 64 in
  let trace = random_trace st ids len in
  let packed = F.Packed.compile prog layout (Source.of_array trace) in
  let solo = solo_reference 21 5 packed in
  let hwm = ref 0 in
  let specs = mk_specs 21 5 () in
  let stream =
    F.Stream.create (F.Packed.tables prog layout)
      (Source.of_array ~segment_blocks trace)
  in
  let rs = Bank.run_stream ~resident_hwm:hwm specs stream in
  Alcotest.(check bool) "bounded run fused == solo" true
    (Array.mapi (fun i r -> snapshot specs.(i) r) rs = solo);
  Alcotest.(check bool)
    (Printf.sprintf "resident %d words bounded by segments, not trace" !hwm)
    true
    (!hwm <= (4 * segment_blocks) + 64 && !hwm < len / 10)

(* A bank run with metrics publishes the same engine.* counters, in the
   same order, as the per-cell runs sharing one registry. *)
let test_fused_metrics_identical () =
  let prog, ids = random_program 11 30 in
  let st = Random.State.make [| 9 |] in
  let trace = random_trace st ids 4_000 in
  let layout = L.Original.layout prog in
  let packed = F.Packed.compile prog layout (Source.of_array trace) in
  let k = 6 in
  let reg_solo = Registry.create ~clock:(fun () -> 0.0) () in
  let ctx_solo = Run.default |> Run.with_metrics reg_solo in
  Array.iter
    (fun sp ->
      ignore
        (F.Engine.run_packed ~ctx:ctx_solo ~config:sp.Bank.config
           ?icache:sp.Bank.icache ?trace_cache:sp.Bank.trace_cache
           ?prediction:sp.Bank.prediction packed))
    (mk_specs 11 k ());
  let reg_fused = Registry.create ~clock:(fun () -> 0.0) () in
  let ctx_fused = Run.default |> Run.with_metrics reg_fused in
  ignore (Bank.run_packed ~ctx:ctx_fused (mk_specs 11 k ()) packed);
  Alcotest.(check string) "exports identical"
    (Stc_obs.Export.to_jsonl reg_solo)
    (Stc_obs.Export.to_jsonl reg_fused)

(* ---------- Experiments: store-warm subset ---------- *)

let with_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stc_fused_test.%d.%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let r = f dir in
  rm_rf dir;
  r

let tiny_config = { Pipeline.quick_config with Pipeline.sf = 0.0004 }
let small_grid = { E.default_sim_config with E.grid = [ (8, [ 2 ]) ] }
let bigger_grid = { E.default_sim_config with E.grid = [ (8, [ 2; 4 ]) ] }

let non_store_counters reg =
  List.filter
    (fun (name, _) -> not (String.starts_with ~prefix:"store." name))
    (Registry.counters reg)

let non_store_events reg =
  List.filter
    (fun (kind, _) -> not (String.starts_with ~prefix:"store." kind))
    (Registry.events reg)

let store_counter reg name =
  Option.value ~default:0 (List.assoc_opt name (Registry.counters reg))

(* Warm a subset of the grid's cells from a smaller grid sharing their
   store keys, then run the bigger grid fused: warm cells short-circuit
   out of their groups, the rest fuse — rows, counters and events must
   match the unfused reference exactly. *)
let test_store_warm_subset () =
  with_dir @@ fun dir ->
  let run ?store ~fused grid =
    let reg = Registry.create ~clock:(fun () -> 0.0) () in
    let ctx = Stc_core.Run.default |> Stc_core.Run.with_metrics reg in
    let ctx =
      match store with
      | Some d -> Stc_core.Run.with_store d ctx
      | None -> ctx
    in
    let pl = Pipeline.run ~ctx ~config:tiny_config () in
    let rows = E.simulate ~ctx ~config:grid ~fused pl in
    (reg, rows)
  in
  (* cold small grid populates the store with a strict subset of the
     bigger grid's cell keys *)
  let _, small_rows = run ~store:dir ~fused:true small_grid in
  let warm_reg, warm_rows = run ~store:dir ~fused:true bigger_grid in
  Alcotest.(check bool) "some cells were warm" true
    (store_counter warm_reg "store.hits" > 0);
  Alcotest.(check bool) "some cells were cold" true
    (store_counter warm_reg "store.misses" > 0);
  (* unfused reference without a store *)
  let ref_reg, ref_rows = run ~fused:false bigger_grid in
  Alcotest.(check bool) "rows identical" true (warm_rows = ref_rows);
  Alcotest.(check bool) "counters identical" true
    (non_store_counters warm_reg = non_store_counters ref_reg);
  Alcotest.(check bool) "events identical" true
    (non_store_events warm_reg = non_store_events ref_reg);
  (* the small grid's rows are a subset of the bigger grid's *)
  Alcotest.(check bool) "subset rows consistent" true
    (List.for_all (fun r -> List.mem r ref_rows) small_rows)

(* Fused and unfused grids agree without any store, in both materialized
   and streamed modes, at jobs 1 and 2. *)
let test_fused_grid_identical () =
  let run ~fused ~streamed ~jobs =
    let reg = Registry.create ~clock:(fun () -> 0.0) () in
    let ctx =
      Stc_core.Run.default |> Stc_core.Run.with_metrics reg
      |> Stc_core.Run.with_jobs jobs
    in
    let pl = Pipeline.run ~ctx ~config:tiny_config () in
    let rows = E.simulate ~ctx ~config:small_grid ~streamed ~fused pl in
    (Stc_obs.Export.to_jsonl reg, rows)
  in
  let ref_export, ref_rows = run ~fused:false ~streamed:false ~jobs:1 in
  List.iter
    (fun (fused, streamed, jobs) ->
      let export, rows = run ~fused ~streamed ~jobs in
      let what = Printf.sprintf "fused=%b streamed=%b jobs=%d" fused streamed jobs in
      Alcotest.(check bool) (what ^ " rows") true (rows = ref_rows);
      Alcotest.(check string) (what ^ " export") ref_export export)
    [
      (true, false, 1);
      (true, true, 1);
      (true, false, 2);
      (true, true, 2);
      (false, true, 1);
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fused_equals_solo;
    Alcotest.test_case "empty bank and empty trace" `Quick
      test_empty_bank_and_trace;
    Alcotest.test_case "fused streamed residency is segment-bounded" `Quick
      test_fused_resident_bound;
    Alcotest.test_case "fused metrics export identical" `Quick
      test_fused_metrics_identical;
    Alcotest.test_case "store-warm subset fuses the rest" `Slow
      test_store_warm_subset;
    Alcotest.test_case "fused grid identical (modes x jobs)" `Slow
      test_fused_grid_identical;
  ]
