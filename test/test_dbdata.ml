module S = Stc_dbdata.Schema
module Datagen = Stc_dbdata.Datagen

let data = lazy (Datagen.generate ~sf:0.002 ())

let test_row_counts_scale () =
  let d = Lazy.force data in
  Alcotest.(check int) "region" 5 (Datagen.row_count d "region");
  Alcotest.(check int) "nation" 25 (Datagen.row_count d "nation");
  Alcotest.(check int) "supplier" 20 (Datagen.row_count d "supplier");
  Alcotest.(check int) "customer" 300 (Datagen.row_count d "customer");
  Alcotest.(check int) "part" 400 (Datagen.row_count d "part");
  Alcotest.(check int) "partsupp" 1600 (Datagen.row_count d "partsupp");
  Alcotest.(check int) "orders" 3000 (Datagen.row_count d "orders");
  (* lineitem: 1-7 lines per order, ~4 on average *)
  let li = Datagen.row_count d "lineitem" in
  Alcotest.(check bool) "lineitem in range" true (li > 3000 && li < 21000)

let test_schema_widths () =
  let d = Lazy.force data in
  List.iter
    (fun tbl ->
      Array.iter
        (fun row ->
          if Array.length row <> tbl.S.width then
            Alcotest.failf "%s: row width %d <> %d" tbl.S.name
              (Array.length row) tbl.S.width)
        (Datagen.table d tbl.S.name))
    S.all

let test_keys_dense () =
  let d = Lazy.force data in
  let orders = Datagen.table d "orders" in
  Array.iteri
    (fun i row ->
      Alcotest.(check int) "o_orderkey dense" (i + 1) row.(S.O.orderkey))
    orders

let test_foreign_keys_valid () =
  let d = Lazy.force data in
  let n_cust = Datagen.row_count d "customer" in
  let n_part = Datagen.row_count d "part" in
  let n_supp = Datagen.row_count d "supplier" in
  Array.iter
    (fun o ->
      let c = o.(S.O.custkey) in
      if c < 1 || c > n_cust then Alcotest.failf "bad o_custkey %d" c)
    (Datagen.table d "orders");
  Array.iter
    (fun l ->
      let p = l.(S.L.partkey) and s = l.(S.L.suppkey) in
      if p < 1 || p > n_part then Alcotest.failf "bad l_partkey %d" p;
      if s < 1 || s > n_supp then Alcotest.failf "bad l_suppkey %d" s)
    (Datagen.table d "lineitem")

let test_lineitem_dates_ordered () =
  let d = Lazy.force data in
  Array.iter
    (fun l ->
      let ship = l.(S.L.shipdate) and receipt = l.(S.L.receiptdate) in
      if receipt <= ship then
        Alcotest.failf "receipt %d <= ship %d" receipt ship)
    (Datagen.table d "lineitem")

let test_deterministic () =
  let a = Datagen.generate ~seed:9L ~sf:0.001 () in
  let b = Datagen.generate ~seed:9L ~sf:0.001 () in
  Alcotest.(check bool) "same data" true
    (Datagen.table a "lineitem" = Datagen.table b "lineitem");
  let c = Datagen.generate ~seed:10L ~sf:0.001 () in
  Alcotest.(check bool) "different seed differs" true
    (Datagen.table a "lineitem" <> Datagen.table c "lineitem")

let test_schema_lookup () =
  Alcotest.(check int) "column index" S.L.shipdate
    (S.column S.lineitem "l_shipdate");
  Alcotest.(check string) "find" "orders" (S.find "orders").S.name;
  Alcotest.check_raises "unknown table" Not_found (fun () ->
      ignore (S.find "nope"))

let test_date_encoding () =
  Alcotest.(check int) "epoch" 0 (S.date 1992 1 1);
  Alcotest.(check bool) "monotone" true (S.date 1995 6 15 < S.date 1996 1 1);
  Alcotest.(check int) "one year" 360 (S.date 1993 1 1)

let suite =
  [
    Alcotest.test_case "row counts scale" `Quick test_row_counts_scale;
    Alcotest.test_case "schema widths" `Quick test_schema_widths;
    Alcotest.test_case "dense keys" `Quick test_keys_dense;
    Alcotest.test_case "foreign keys valid" `Quick test_foreign_keys_valid;
    Alcotest.test_case "lineitem dates ordered" `Quick test_lineitem_dates_ordered;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
    Alcotest.test_case "date encoding" `Quick test_date_encoding;
  ]
