(* Stc_check: the checkers must accept every real layout algorithm's
   output on randomized profiled programs, reject hand-corrupted
   layouts/plans, and the reference oracles must agree with the
   optimized simulators. *)

module C = Stc_check
module L = Stc_layout
module F = Stc_fetch
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator
module Profile = Stc_profile.Profile
module Recorder = Stc_trace.Recorder

(* Random (program, trace) pairs: the skeleton recipe of Test_fetch. *)
let trace_of_skeleton = Test_fetch.trace_of_skeleton

let gen_skeleton = Test_fetch.gen_skeleton

let profile_of prog rec_ =
  let p = Profile.create prog in
  for i = 0 to Recorder.length rec_ - 1 do
    Profile.sink p (Recorder.get rec_ i)
  done;
  p

let check_cache_bytes = 512

let check_cfa_bytes = 128

let fail_violations name = function
  | [] -> ()
  | v :: _ as vs ->
    QCheck.Test.fail_reportf "%s: %d violation(s), first: %s" name
      (List.length vs)
      (C.Layouts.violation_to_string v)

let check_params =
  L.Algo.params ~cache_bytes:check_cache_bytes ~cfa_bytes:check_cfa_bytes ()

(* Every registered layout algorithm round-trips name -> plan -> clean
   validation on randomized programs: registering a new algorithm makes
   it subject to this property without touching the test. *)
let prop_layouts_valid =
  QCheck.Test.make ~name:"registered algorithms produce zero violations"
    ~count:40
    QCheck.(make gen_skeleton)
    (fun skel ->
      let prog, rec_ = trace_of_skeleton skel in
      let profile = profile_of prog rec_ in
      List.iter
        (fun algo ->
          match L.Algo.find algo.L.Algo.name with
          | Error msg ->
            QCheck.Test.fail_reportf "%s not found by name: %s"
              algo.L.Algo.name msg
          | Ok algo ->
            let plan = L.Algo.plan algo profile check_params in
            let cfa_bytes = L.Algo.effective_cfa_bytes algo check_params in
            let layout =
              L.Mapping.map_plan prog ~name:algo.L.Algo.name
                ~cache_bytes:check_cache_bytes ~cfa_bytes plan
            in
            fail_violations algo.L.Algo.name
              (C.Layouts.all
                 ~cfa_plan:(plan, check_cache_bytes, cfa_bytes)
                 profile layout))
        (L.Algo.all ());
      true)

(* The imported comparators' plans must partition the whole program:
   every block placed exactly once across CFA sequences, second-pass
   sequences and the cold tail. *)
let prop_new_algos_place_all =
  QCheck.Test.make
    ~name:"codestitcher and exttsp place every block exactly once" ~count:40
    QCheck.(make gen_skeleton)
    (fun skel ->
      let prog, rec_ = trace_of_skeleton skel in
      let profile = profile_of prog rec_ in
      let check name (plan : L.Mapping.plan) =
        let n = Array.length prog.Stc_cfg.Program.blocks in
        let times = Array.make n 0 in
        List.iter
          (List.iter (fun b -> times.(b) <- times.(b) + 1))
          (plan.L.Mapping.cfa_seqs @ plan.L.Mapping.other_seqs
         @ [ plan.L.Mapping.cold ]);
        Array.iteri
          (fun b t ->
            if t <> 1 then
              QCheck.Test.fail_reportf "%s: block %d placed %d times" name b
                t)
          times
      in
      check "codestitcher"
        (L.Codestitcher.plan profile ~cfa_bytes:check_cfa_bytes);
      check "exttsp" (L.Exttsp.plan profile ~cfa_bytes:check_cfa_bytes);
      true)

(* ---------- the registry itself ---------- *)

let test_registry_find () =
  (* names, slugs and aliases all resolve, case-insensitively *)
  List.iter
    (fun (query, expect) ->
      match L.Algo.find query with
      | Ok a -> Alcotest.(check string) query expect a.L.Algo.name
      | Error msg -> Alcotest.failf "find %S: %s" query msg)
    [
      ("orig", "orig");
      ("ORIG", "orig");
      ("original", "orig");
      ("P&H", "P&H");
      ("ph", "P&H");
      ("pettis-hansen", "P&H");
      ("Torr", "Torr");
      ("stc", "ops");
      ("stc-auto", "auto");
      ("Codestitcher", "codestitcher");
      ("cs", "codestitcher");
      ("ext-tsp", "exttsp");
    ];
  (* an unknown name fails with the valid names spelled out *)
  match L.Algo.find "hotcold9000" with
  | Ok a -> Alcotest.failf "bogus name resolved to %s" a.L.Algo.name
  | Error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    List.iter
      (fun name ->
        Alcotest.(check bool)
          (Printf.sprintf "error lists %s" name)
          true (contains msg name))
      (L.Algo.names ())

(* ---------- corruption is detected ---------- *)

let straight_prog n =
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let blocks = Array.init n (fun _ -> Builder.new_block b ~pid:p ~size:4) in
  Array.iteri
    (fun i bid ->
      if i < n - 1 then Builder.set_term b bid (Terminator.Fall blocks.(i + 1))
      else Builder.set_term b bid Terminator.Ret)
    blocks;
  Builder.finish_proc b ~pid:p ~entry:blocks.(0) ~blocks;
  Builder.build b

let has pred vs = List.exists pred vs

let test_detects_corruption () =
  let prog = straight_prog 8 in
  let good = L.Original.layout prog in
  let corrupt f =
    let addr = Array.copy good.L.Layout.addr in
    f addr;
    { L.Layout.name = "corrupt"; addr }
  in
  (* overlapping placement *)
  let vs =
    C.Layouts.structure prog (corrupt (fun a -> a.(3) <- a.(2)))
  in
  Alcotest.(check bool)
    "overlap detected" true
    (has (function C.Layouts.Overlap _ -> true | _ -> false) vs);
  (* misalignment *)
  let vs =
    C.Layouts.structure prog (corrupt (fun a -> a.(5) <- a.(5) + 2))
  in
  Alcotest.(check bool)
    "misalignment detected" true
    (has (function C.Layouts.Misaligned _ -> true | _ -> false) vs);
  (* wrong block count *)
  let truncated =
    { L.Layout.name = "short"; addr = Array.sub good.L.Layout.addr 0 4 }
  in
  Alcotest.(check bool)
    "wrong count detected" true
    (has
       (function C.Layouts.Wrong_block_count _ -> true | _ -> false)
       (C.Layouts.structure prog truncated));
  (* executed block without a valid placement *)
  let profile = Profile.create prog in
  Profile.inject_block profile 2 ~count:7;
  let vs = C.Layouts.coverage profile (corrupt (fun a -> a.(2) <- -64)) in
  Alcotest.(check bool)
    "unplaced executed block detected" true
    (has
       (function
         | C.Layouts.Unplaced { block = 2; count = 7 } -> true | _ -> false)
       vs);
  Alcotest.(check (list bool))
    "good layout is clean" []
    (List.map (fun _ -> true) (C.Layouts.all profile good))

let test_detects_bad_plan () =
  let prog = straight_prog 8 in
  let cache_bytes = 64 and cfa_bytes = 32 in
  (* blocks are 16 bytes each: 0-1 fit the CFA, 2..5 second pass, 6-7
     cold — a valid partition the mapping lays out cleanly *)
  let plan =
    {
      L.Mapping.cfa_seqs = [ [ 0; 1 ] ];
      other_seqs = [ [ 2; 3 ]; [ 4; 5 ] ];
      cold = [ 6; 7 ];
    }
  in
  let layout =
    L.Mapping.map_plan prog ~name:"plan" ~cache_bytes ~cfa_bytes plan
  in
  Alcotest.(check (list string))
    "valid plan is clean" []
    (List.map C.Layouts.violation_to_string
       (C.Layouts.cfa prog layout ~cache_bytes ~cfa_bytes plan));
  (* a block mentioned twice / a block missing *)
  let bad =
    { plan with L.Mapping.cold = [ 6; 6 ] (* 7 missing, 6 twice *) }
  in
  let vs = C.Layouts.cfa prog layout ~cache_bytes ~cfa_bytes bad in
  Alcotest.(check bool)
    "duplicate detected" true
    (has
       (function
         | C.Layouts.Plan_not_partition { block = 6; times = 2 } -> true
         | _ -> false)
       vs);
  Alcotest.(check bool)
    "missing block detected" true
    (has
       (function
         | C.Layouts.Plan_not_partition { block = 7; times = 0 } -> true
         | _ -> false)
       vs);
  (* a "CFA" block that actually sits past the CFA boundary *)
  let claims_more =
    { plan with L.Mapping.cfa_seqs = [ [ 0; 1 ]; [ 2 ] ]; other_seqs = [ [ 3 ]; [ 4; 5 ] ] }
  in
  let vs = C.Layouts.cfa prog layout ~cache_bytes ~cfa_bytes claims_more in
  Alcotest.(check bool)
    "CFA overflow detected" true
    (has (function C.Layouts.Cfa_overflow { block = 2; _ } -> true | _ -> false) vs);
  (* a second-pass block placed inside a CFA window *)
  let intruding =
    {
      L.Layout.name = "intrude";
      addr = (let a = Array.copy layout.L.Layout.addr in
              (* logical cache 1 starts at 64; its CFA window is 64..96 *)
              a.(3) <- 64 + 16;
              a)
    }
  in
  let vs = C.Layouts.cfa prog intruding ~cache_bytes ~cfa_bytes plan in
  Alcotest.(check bool)
    "CFA intrusion detected" true
    (has
       (function
         | C.Layouts.Cfa_intrusion { block = 3; window = 1; _ } -> true
         | _ -> false)
       vs)

(* ---------- oracles vs optimized implementations ---------- *)

let test_oracle_icache_stream () =
  List.iter
    (fun (assoc, victim_lines, size_bytes) ->
      match
        C.diff_icache_stream ~accesses:50_000 ~seed:7 ~assoc ~victim_lines
          ~size_bytes ()
      with
      | None -> ()
      | Some msg ->
        Alcotest.failf "icache oracle diverged (assoc=%d victim=%d): %s"
          assoc victim_lines msg)
    [ (1, 0, 1024); (1, 8, 1024); (2, 0, 2048); (4, 16, 4096); (2, 2, 512) ]

let case ?(kb = 1) ?(assoc = 1) ?(victim_lines = 0) ?(tc = false)
    ?(policy = C.P_lru) ?fdip name =
  { C.case_name = name; kb; assoc; victim_lines; tc; policy; fdip }

let small_cases =
  [
    case "1kb-direct";
    case "1kb-victim4" ~victim_lines:4;
    case "1kb-2way-tc" ~assoc:2 ~tc:true;
    case "ideal-tc" ~kb:0 ~tc:true;
    (* tiny caches under the post-paper mechanisms: RRIP aging and FDIP
       prefetch traffic both churn constantly at this size *)
    case "1kb-4way-srrip" ~assoc:4 ~policy:C.P_srrip;
    case "1kb-4way-trrip" ~assoc:4 ~policy:C.P_trrip;
    case "1kb-direct-fdip" ~fdip:Stc_fetch.Fdip.default;
    case "1kb-4way-trrip-fdip" ~assoc:4 ~policy:C.P_trrip
      ~fdip:Stc_fetch.Fdip.default;
    case "1kb-fdip-tc" ~tc:true ~fdip:Stc_fetch.Fdip.default;
  ]

let prop_oracle_engines_agree =
  QCheck.Test.make ~name:"oracle fetch agrees with naive and packed engines"
    ~count:25
    QCheck.(pair (make gen_skeleton) (int_bound 10_000))
    (fun (skel, layout_seed) ->
      let prog, rec_ = trace_of_skeleton skel in
      let layout = Test_fetch.random_layout prog layout_seed in
      let view =
        F.View.create prog layout (Stc_trace.Source.of_recorder rec_)
      in
      List.iter
        (fun r ->
          (match r.C.er_mismatches with
          | [] -> ()
          | m :: _ ->
            QCheck.Test.fail_reportf
              "%s: %s differs (oracle %.1f, naive %.1f, packed %.1f, \
               fused %.1f)"
              r.C.er_case m.C.field m.C.m_oracle m.C.m_naive m.C.m_packed
              m.C.m_fused);
          match r.C.er_divergence with
          | None -> ()
          | Some d ->
            QCheck.Test.fail_reportf "%s: icache diverged: %s" r.C.er_case d)
        (C.diff_cases
           ~temperature:(Array.init 64 (fun i -> i mod 3))
           ~layout_name:"rand" view small_cases);
      true)

let suite =
  [
    Alcotest.test_case "detects corrupted layouts" `Quick
      test_detects_corruption;
    Alcotest.test_case "detects malformed plans" `Quick test_detects_bad_plan;
    Alcotest.test_case "oracle icache matches real icache" `Quick
      test_oracle_icache_stream;
    Alcotest.test_case "algorithm registry lookup" `Quick test_registry_find;
    QCheck_alcotest.to_alcotest prop_layouts_valid;
    QCheck_alcotest.to_alcotest prop_new_algos_place_all;
    QCheck_alcotest.to_alcotest prop_oracle_engines_agree;
  ]
