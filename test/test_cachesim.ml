module Icache = Stc_cachesim.Icache

(* A naive reference cache model: per-set association lists with explicit
   LRU ordering, plus an LRU victim list. Deliberately simple and slow. *)
module Ref = struct
  type t = {
    assoc : int;
    line_bytes : int;
    n_sets : int;
    sets : int list array; (* most recent first *)
    mutable victim : int list; (* most recent first *)
    victim_lines : int;
  }

  let create ?(assoc = 1) ?(line_bytes = 32) ?(victim_lines = 0) ~size_bytes () =
    let n_sets = size_bytes / (assoc * line_bytes) in
    {
      assoc;
      line_bytes;
      n_sets;
      sets = Array.make n_sets [];
      victim = [];
      victim_lines;
    }

  let access t addr =
    let line = addr / t.line_bytes in
    let set = line mod t.n_sets in
    let contents = t.sets.(set) in
    if List.mem line contents then begin
      t.sets.(set) <- line :: List.filter (fun l -> l <> line) contents;
      true
    end
    else begin
      let contents = line :: contents in
      let evicted =
        if List.length contents > t.assoc then
          Some (List.nth contents t.assoc)
        else None
      in
      t.sets.(set) <-
        (match evicted with
        | Some e -> List.filter (fun l -> l <> e) contents
        | None -> contents);
      (* victim buffer *)
      if t.victim_lines = 0 then false
      else if List.mem line t.victim then begin
        (* swap: the probed line leaves the victim buffer, the evicted
           line enters it *)
        t.victim <- List.filter (fun l -> l <> line) t.victim;
        (match evicted with
        | Some e -> t.victim <- e :: t.victim
        | None -> ());
        true
      end
      else begin
        (match evicted with
        | Some e ->
          t.victim <- e :: t.victim;
          if List.length t.victim > t.victim_lines then
            t.victim <-
              List.filteri (fun i _ -> i < t.victim_lines) t.victim
        | None -> ());
        false
      end
    end
end

let run_both ~assoc ~victim_lines ~size_bytes addrs =
  let c = Icache.create ~assoc ~victim_lines ~size_bytes () in
  let r = Ref.create ~assoc ~victim_lines ~size_bytes () in
  List.iteri
    (fun i addr ->
      let hc = Icache.access c addr and hr = Ref.access r addr in
      if hc <> hr then
        Alcotest.failf
          "divergence at access %d (addr %d): sim=%b ref=%b (assoc=%d victim=%d)"
          i addr hc hr assoc victim_lines)
    addrs

let gen_addrs seed n =
  let rng = Stc_util.Rng.create (Int64.of_int seed) in
  (* mix of sequential runs and jumps within a 64 KB region *)
  let addr = ref 0 in
  List.init n (fun _ ->
      if Stc_util.Rng.bernoulli rng 0.7 then addr := !addr + 4
      else addr := Stc_util.Rng.int rng 65536 land lnot 3;
      !addr)

let test_direct_mapped () = run_both ~assoc:1 ~victim_lines:0 ~size_bytes:1024 (gen_addrs 1 20_000)

let test_two_way () = run_both ~assoc:2 ~victim_lines:0 ~size_bytes:2048 (gen_addrs 2 20_000)

let test_four_way () = run_both ~assoc:4 ~victim_lines:0 ~size_bytes:4096 (gen_addrs 3 20_000)

let test_victim () = run_both ~assoc:1 ~victim_lines:16 ~size_bytes:1024 (gen_addrs 4 20_000)

let test_counters () =
  let c = Icache.create ~size_bytes:1024 () in
  ignore (Icache.access c 0);
  ignore (Icache.access c 0);
  ignore (Icache.access c 4096);
  Alcotest.(check int) "accesses" 3 (Icache.accesses c);
  (* 0 miss, 0 hit, 4096 misses (conflicts with 0 in a 1KB cache) *)
  Alcotest.(check int) "misses" 2 (Icache.misses c)

let test_flush () =
  let c = Icache.create ~size_bytes:1024 () in
  ignore (Icache.access c 0);
  Icache.flush c;
  Alcotest.(check int) "stats reset" 0 (Icache.accesses c);
  Alcotest.(check bool) "cold after flush" false (Icache.access c 0)

let test_create_validation () =
  Alcotest.check_raises "bad line size"
    (Invalid_argument "Icache.create: line_bytes must be a power of two")
    (fun () -> ignore (Icache.create ~line_bytes:33 ~size_bytes:1024 ()));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Icache.create: size must be a multiple of assoc * line")
    (fun () -> ignore (Icache.create ~size_bytes:1000 ()))

let prop_vs_reference =
  QCheck.Test.make ~name:"cache simulator matches reference model" ~count:60
    QCheck.(
      triple (int_bound 10_000) (oneofl [ 1; 2; 4 ]) (oneofl [ 0; 4; 16 ]))
    (fun (seed, assoc, victim_lines) ->
      run_both ~assoc ~victim_lines ~size_bytes:(assoc * 1024)
        (gen_addrs seed 5_000);
      true)

let suite =
  [
    Alcotest.test_case "direct mapped vs reference" `Quick test_direct_mapped;
    Alcotest.test_case "2-way vs reference" `Quick test_two_way;
    Alcotest.test_case "4-way vs reference" `Quick test_four_way;
    Alcotest.test_case "victim cache vs reference" `Quick test_victim;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_vs_reference ]
