open Stc_cfg
open Stc_trace

(* A small instrumented "engine": two probed routines and one auto helper.

   outer(n, flag):
     if n > 0 then inner(flag);
     while i > 0 do i-- done;
     helper_log()                      (auto-walked)

   inner(flag): if flag then ... else ... *)

module Eng = struct
  let k_outer = Probe.key "outer"

  let k_inner = Probe.key "inner"

  let skel_inner =
    Skeleton.
      [
        straight 2;
        if_else "flag" [ straight 4 ] [ straight 1 ];
      ]

  let skel_helper =
    Skeleton.
      [
        straight 1;
        if_ ~p:0.5 "h_cond" [ straight 2 ];
        while_ ~p:0.4 "h_loop" [ straight 1 ];
      ]

  let skel_outer =
    Skeleton.
      [
        straight 3;
        if_ "positive" [ straight 1; call "inner" ];
        while_ "more" [ straight 2 ];
        helper "helper_log";
        straight 1;
      ]

  let inner flag =
    Probe.routine k_inner @@ fun () ->
    if Probe.cond "flag" flag then ignore (1 + 1)

  let outer n flag =
    Probe.routine k_outer @@ fun () ->
    if Probe.cond "positive" (n > 0) then inner flag;
    let i = ref n in
    while Probe.cond "more" (!i > 0) do
      decr i
    done
end

let build () =
  let b = Builder.create () in
  let p_outer = Builder.declare_proc b ~name:"outer" ~subsystem:Proc.Executor in
  let p_inner = Builder.declare_proc b ~name:"inner" ~subsystem:Proc.Utility in
  let p_helper =
    Builder.declare_proc b ~name:"helper_log" ~subsystem:Proc.Utility
  in
  let resolve = Builder.pid_of_name b in
  let c_inner = Bytecode.compile b ~pid:p_inner ~resolve Eng.skel_inner in
  let c_helper = Bytecode.compile b ~pid:p_helper ~resolve Eng.skel_helper in
  let c_outer = Bytecode.compile b ~pid:p_outer ~resolve Eng.skel_outer in
  let program = Builder.build b in
  let code = Array.make (Array.length program.Program.procs) None in
  code.(p_outer) <- Some c_outer;
  code.(p_inner) <- Some c_inner;
  code.(p_helper) <- Some c_helper;
  (program, code)

let run_workload ~seed =
  let program, code = build () in
  let rec_ = Recorder.create () in
  let w = Walker.create ~program ~code ~seed ~sink:(Recorder.sink rec_) in
  Probe.with_walker w (fun () ->
      Eng.outer 3 true;
      Eng.outer 0 false;
      Eng.outer 5 false);
  (program, rec_, w)

let test_trace_legal () =
  let program, rec_, _ = run_workload ~seed:1L in
  match Check.check_all program (fun f -> Stc_trace.Source.iter (Stc_trace.Source.of_recorder rec_) f) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_trace_counts () =
  let _, rec_, w = run_workload ~seed:1L in
  Alcotest.(check bool) "nonempty" true (Recorder.length rec_ > 10);
  Alcotest.(check int) "walker count matches sink" (Recorder.length rec_)
    (Walker.blocks_emitted w);
  Alcotest.(check bool) "instrs counted" true (Walker.instrs_emitted w > 0);
  Alcotest.(check int) "idle stack" 0 (Walker.depth w)

let test_trace_deterministic () =
  let _, r1, _ = run_workload ~seed:7L in
  let _, r2, _ = run_workload ~seed:7L in
  Alcotest.(check int64) "same hash" (Recorder.hash r1) (Recorder.hash r2)

let test_trace_seed_changes_helper_walk () =
  let _, r1, _ = run_workload ~seed:7L in
  let _, r2, _ = run_workload ~seed:8L in
  (* The probed part is identical; the helper sampling should eventually
     differ. (It is astronomically unlikely that 3 helper walks coincide
     across seeds AND have the same length.) *)
  Alcotest.(check bool) "different traces" true
    (Recorder.hash r1 <> Recorder.hash r2 || Recorder.length r1 = Recorder.length r2)

let test_desync_wrong_site () =
  let program, code = build () in
  let w =
    Walker.create ~program ~code ~seed:1L ~sink:(fun _ -> ())
  in
  let raised = ref false in
  (try
     Probe.with_walker w (fun () ->
         Probe.routine Eng.k_outer (fun () ->
             ignore (Probe.cond "wrong_site" true)))
   with Walker.Desync _ -> raised := true);
  Alcotest.(check bool) "desync raised" true !raised

let test_desync_unexpected_enter () =
  let program, code = build () in
  let w = Walker.create ~program ~code ~seed:1L ~sink:(fun _ -> ()) in
  let raised = ref false in
  (try
     Probe.with_walker w (fun () ->
         Probe.routine Eng.k_outer (fun () ->
             (* inner may only be entered after the "positive" cond *)
             Eng.inner true))
   with Walker.Desync _ -> raised := true);
  Alcotest.(check bool) "desync raised" true !raised

let test_probes_inert_without_walker () =
  (* The same engine code must run untraced. *)
  Eng.outer 4 true;
  Eng.outer 0 false;
  Alcotest.(check bool) "no walker" false (Probe.active ())

let test_compiled_program_valid () =
  let program, _ = build () in
  match Program.validate program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* Property: random skeletons compile to valid programs, and auto-walking
   them yields legal traces. *)
let gen_skeleton : Skeleton.t QCheck.Gen.t =
  let open QCheck.Gen in
  let site_counter = ref 0 in
  let fresh_site () =
    incr site_counter;
    Printf.sprintf "s%d" !site_counter
  in
  let rec gen_stmt depth =
    let base =
      [
        (3, map (fun n -> Skeleton.straight (1 + n)) (int_bound 6));
        ( 1,
          let* p = float_range 0.01 0.2 in
          return
            (Skeleton.if_ ~p (fresh_site ())
               [ Skeleton.straight 2; Skeleton.return ]) );
      ]
    in
    let nested =
      if depth <= 0 then []
      else
        [
          ( 2,
            let* p = float_range 0.05 0.95 in
            let* body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            return (Skeleton.if_ ~p (fresh_site ()) body) );
          ( 1,
            let* p = float_range 0.05 0.6 in
            let* body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            return (Skeleton.while_ ~p (fresh_site ()) body) );
          ( 1,
            let* p = float_range 0.05 0.6 in
            let* body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            return (Skeleton.do_while ~p (fresh_site ()) body) );
          ( 1,
            let* p = float_range 0.05 0.95 in
            let* t = list_size (int_range 1 2) (gen_stmt (depth - 1)) in
            let* e = list_size (int_range 1 2) (gen_stmt (depth - 1)) in
            return (Skeleton.if_else ~p (fresh_site ()) t e) );
        ]
    in
    frequency (base @ nested)
  in
  list_size (int_range 1 6) (gen_stmt 2)

let prop_random_skeleton_walks =
  QCheck.Test.make ~name:"random auto skeletons walk legally" ~count:100
    (QCheck.make gen_skeleton) (fun skel ->
      let b = Builder.create () in
      let pid = Builder.declare_proc b ~name:"auto" ~subsystem:Proc.Other in
      let code_auto =
        Bytecode.compile b ~pid ~resolve:(Builder.pid_of_name b) skel
      in
      let program = Builder.build b in
      (match Program.validate program with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let rec_ = Recorder.create () in
      let code = Array.make 1 (Some code_auto) in
      let w = Walker.create ~program ~code ~seed:3L ~sink:(Recorder.sink rec_) in
      for _ = 1 to 5 do
        Walker.auto_run w pid
      done;
      match Check.check_all program (fun f -> Stc_trace.Source.iter (Stc_trace.Source.of_recorder rec_) f) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* Compiler invariants over random skeletons: every allocated block is
   emitted by exactly one Emit op, every branch target pc is in range, and
   the ops array ends every path with Finish. *)
let prop_bytecode_invariants =
  QCheck.Test.make ~name:"bytecode compiler invariants" ~count:100
    (QCheck.make gen_skeleton) (fun skel ->
      let b = Builder.create () in
      let pid = Builder.declare_proc b ~name:"auto" ~subsystem:Proc.Other in
      let code = Bytecode.compile b ~pid ~resolve:(Builder.pid_of_name b) skel in
      let program = Builder.build b in
      let nops = Array.length code.Bytecode.ops in
      let emitted = Hashtbl.create 16 in
      Array.iter
        (fun op ->
          match op with
          | Bytecode.Emit bid ->
            if Hashtbl.mem emitted bid then
              QCheck.Test.fail_reportf "block %d emitted twice" bid;
            Hashtbl.replace emitted bid ()
          | Bytecode.Expect_cond { then_pc; else_pc; _ } ->
            if then_pc < 0 || then_pc >= nops || else_pc < 0 || else_pc >= nops
            then QCheck.Test.fail_report "cond pc out of range"
          | Bytecode.Goto { target } ->
            if target < 0 || target >= nops then
              QCheck.Test.fail_report "goto pc out of range"
          | Bytecode.Expect_enter _ | Bytecode.Auto_call _ | Bytecode.Finish
            ->
            ())
        code.Bytecode.ops;
      (* every block of the procedure has an Emit *)
      Array.iter
        (fun bid ->
          if not (Hashtbl.mem emitted bid) then
            QCheck.Test.fail_reportf "block %d never emitted" bid)
        program.Program.procs.(pid).Proc.blocks;
      (* entry is the procedure's entry block *)
      code.Bytecode.entry = program.Program.procs.(pid).Proc.entry)

let suite =
  [
    Alcotest.test_case "trace legal" `Quick test_trace_legal;
    Alcotest.test_case "trace counts" `Quick test_trace_counts;
    Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "seed variation" `Quick test_trace_seed_changes_helper_walk;
    Alcotest.test_case "desync wrong site" `Quick test_desync_wrong_site;
    Alcotest.test_case "desync unexpected enter" `Quick
      test_desync_unexpected_enter;
    Alcotest.test_case "probes inert" `Quick test_probes_inert_without_walker;
    Alcotest.test_case "compiled program valid" `Quick
      test_compiled_program_valid;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_random_skeleton_walks; prop_bytecode_invariants ]
