module L = Stc_layout
module E = Stc_core.Extensions
module Pipeline = Stc_core.Pipeline
module Recorder = Stc_trace.Recorder

let pl =
  lazy (Pipeline.run ~config:{ Pipeline.quick_config with Pipeline.sf = 0.0004 } ())

(* ---------- inlining ---------- *)

let transform () =
  let pl = Lazy.force pl in
  L.Inline.transform
    ~config:
      { L.Inline.min_call_count = 100; max_callee_blocks = 24; max_clones = 32 }
    pl.Pipeline.profile

let test_inline_program_valid () =
  let tr = transform () in
  match Stc_cfg.Program.validate (L.Inline.program tr) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_inline_finds_sites () =
  let tr = transform () in
  Alcotest.(check bool) "some sites inlined" true (L.Inline.inlined_sites tr > 0);
  Alcotest.(check bool) "code grows" true (L.Inline.code_growth_pct tr > 0.0)

let test_inline_remap_is_legal_walk () =
  let pl = Lazy.force pl in
  let tr = transform () in
  let remapped = L.Inline.remap_trace tr pl.Pipeline.test in
  Alcotest.(check int) "same length" (Recorder.length pl.Pipeline.test)
    (Recorder.length remapped);
  match
    Stc_trace.Check.check_all (L.Inline.program tr) (fun f ->
        Stc_trace.Source.iter (Stc_trace.Source.of_recorder remapped) f)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_inline_preserves_instr_count_modulo_calls () =
  (* Each inlined activation drops exactly one instruction (the call); the
     remapped trace must otherwise preserve dynamic instructions. *)
  let pl = Lazy.force pl in
  let tr = transform () in
  let prog = pl.Pipeline.program and prog' = L.Inline.program tr in
  let count prog rec_ =
    let total = ref 0 in
    Stc_trace.Source.iter (Stc_trace.Source.of_recorder rec_) (fun b ->
        total := !total + prog.Stc_cfg.Program.blocks.(b).Stc_cfg.Block.size);
    !total
  in
  let base = count prog pl.Pipeline.test in
  let remapped = count prog' (L.Inline.remap_trace tr pl.Pipeline.test) in
  Alcotest.(check bool) "at most one instr per block dropped" true
    (remapped <= base && remapped > base * 9 / 10)

let test_inline_improves_original_layout () =
  let pl = Lazy.force pl in
  let report = E.inlining ~cache_kb:16 ~cfa_kb:4 pl in
  let find variant layout =
    List.find
      (fun r -> r.E.i_variant = variant && r.E.i_layout = layout)
      report.E.inl_rows
  in
  let base = find "base" "orig" and inl = find "inlined" "orig" in
  Alcotest.(check bool) "sequentiality no worse" true
    (inl.E.i_ibt >= base.E.i_ibt -. 0.2);
  Alcotest.(check bool) "ipc no worse" true (inl.E.i_ipc >= base.E.i_ipc -. 0.05)

(* ---------- OLTP ---------- *)

let test_oltp_plans_match_oracle () =
  let pl = Lazy.force pl in
  let db = pl.Pipeline.db_btree in
  let data =
    Stc_dbdata.Datagen.generate ~seed:pl.Pipeline.config.Pipeline.data_seed
      ~sf:pl.Pipeline.config.Pipeline.sf ()
  in
  let oracle = Stc_workload.Oracle.of_data data in
  List.iter
    (fun txn ->
      let plan = Stc_workload.Oltp.plan txn in
      let engine = Stc_db.Exec.run db plan in
      let expected = Stc_workload.Oracle.run oracle plan in
      Alcotest.(check int) "row count" (List.length expected)
        (List.length engine);
      Alcotest.(check bool) "rows equal" true
        (List.sort compare (List.map Array.to_list engine)
        = List.sort compare (List.map Array.to_list expected)))
    (Stc_workload.Oltp.mix db ~seed:99L ~n:25)

let test_oltp_trace_legal () =
  let pl = Lazy.force pl in
  let txns = Stc_workload.Oltp.mix pl.Pipeline.db_btree ~seed:5L ~n:20 in
  let rec_ =
    Stc_workload.Oltp.record ~kernel:pl.Pipeline.kernel ~walker_seed:3L
      ~db:pl.Pipeline.db_btree ~txns
  in
  Alcotest.(check int) "marks per txn" 20 (List.length (Recorder.marks rec_));
  match
    Stc_trace.Check.check_all pl.Pipeline.program (fun f ->
        Stc_trace.Source.iter (Stc_trace.Source.of_recorder rec_) f)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_oltp_report () =
  let pl = Lazy.force pl in
  let r = E.oltp ~train_txns:40 ~test_txns:60 pl in
  Alcotest.(check int) "four layouts" 4 (List.length r.E.oltp_rows);
  let find name = List.find (fun row -> row.E.o_layout = name) r.E.oltp_rows in
  Alcotest.(check bool) "ops beats orig on OLTP" true
    ((find "ops").E.o_ipc > (find "orig").E.o_ipc)

(* ---------- predictor ---------- *)

let test_predictor_learns_bias () =
  let p = Stc_fetch.Predictor.create (Stc_fetch.Predictor.Bimodal 64) in
  for _ = 1 to 100 do
    ignore (Stc_fetch.Predictor.predict_and_update p ~pc:64 ~taken:true)
  done;
  Alcotest.(check bool) "high accuracy on a fixed branch" true
    (Stc_fetch.Predictor.accuracy_pct p > 95.0)

let test_predictor_alternating_gshare () =
  (* gshare learns an alternating pattern through its history *)
  let g = Stc_fetch.Predictor.create (Stc_fetch.Predictor.Gshare (1024, 4)) in
  for i = 1 to 2000 do
    ignore (Stc_fetch.Predictor.predict_and_update g ~pc:128 ~taken:(i mod 2 = 0))
  done;
  Alcotest.(check bool) "gshare learns alternation" true
    (Stc_fetch.Predictor.accuracy_pct g > 90.0);
  let b = Stc_fetch.Predictor.create (Stc_fetch.Predictor.Bimodal 1024) in
  for i = 1 to 2000 do
    ignore (Stc_fetch.Predictor.predict_and_update b ~pc:128 ~taken:(i mod 2 = 0))
  done;
  Alcotest.(check bool) "bimodal cannot" true
    (Stc_fetch.Predictor.accuracy_pct b < 60.0)

let test_prediction_penalty_reduces_ipc () =
  let pl = Lazy.force pl in
  let rows = E.prediction ~cache_kb:16 ~cfa_kb:4 pl in
  let perfect =
    List.find (fun r -> r.E.p_layout = "orig" && r.E.p_predictor = "perfect") rows
  in
  List.iter
    (fun r ->
      if r.E.p_layout = "orig" && r.E.p_predictor <> "perfect" then begin
        Alcotest.(check bool) "imperfect is slower" true
          (r.E.p_ipc <= perfect.E.p_ipc);
        Alcotest.(check bool) "accuracy below 100" true (r.E.p_accuracy < 100.0)
      end)
    rows

(* ---------- tuner ---------- *)

let test_tuner_beats_or_matches_origin () =
  let pl = Lazy.force pl in
  let outcome = Stc_core.Tuner.tune ~cache_kb:16 pl in
  Alcotest.(check bool) "evaluated all" true (outcome.Stc_core.Tuner.evaluated = 36);
  (* the tuned layout must beat the original layout on the test trace *)
  let layout =
    Stc_core.Tuner.layout_of pl ~cache_kb:16 outcome.Stc_core.Tuner.chosen
  in
  let run l =
    let view =
      Stc_fetch.View.create pl.Pipeline.program l (Pipeline.test_source pl)
    in
    let icache = Stc_cachesim.Icache.create ~size_bytes:16384 () in
    Stc_fetch.Engine.bandwidth
      (Stc_fetch.Engine.run ~icache view)
  in
  Alcotest.(check bool) "tuned beats original on Test" true
    (run layout > run (L.Original.layout pl.Pipeline.program))

let suite =
  [
    Alcotest.test_case "inlined program valid" `Quick test_inline_program_valid;
    Alcotest.test_case "inlining finds sites" `Quick test_inline_finds_sites;
    Alcotest.test_case "remapped trace is a legal walk" `Quick
      test_inline_remap_is_legal_walk;
    Alcotest.test_case "remap preserves instructions" `Quick
      test_inline_preserves_instr_count_modulo_calls;
    Alcotest.test_case "inlining helps the original layout" `Slow
      test_inline_improves_original_layout;
    Alcotest.test_case "oltp plans vs oracle" `Quick test_oltp_plans_match_oracle;
    Alcotest.test_case "oltp trace legal" `Quick test_oltp_trace_legal;
    Alcotest.test_case "oltp report" `Slow test_oltp_report;
    Alcotest.test_case "predictor learns bias" `Quick test_predictor_learns_bias;
    Alcotest.test_case "gshare vs bimodal" `Quick test_predictor_alternating_gshare;
    Alcotest.test_case "prediction penalty reduces IPC" `Slow
      test_prediction_penalty_reduces_ipc;
    Alcotest.test_case "tuner beats original" `Slow test_tuner_beats_or_matches_origin;
  ]
