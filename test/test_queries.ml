module Q = Stc_workload.Queries
module Plan = Stc_db.Plan
module Database = Stc_db.Database

let data = lazy (Stc_dbdata.Datagen.generate ~sf:0.0005 ())

let db_btree = lazy (Database.load (Lazy.force data) ~kind:Database.Btree_db)

let db_hash = lazy (Database.load (Lazy.force data) ~kind:Database.Hash_db)

(* structural helpers *)
let rec count_nodes pred plan =
  let self = if pred plan then 1 else 0 in
  let children =
    match plan with
    | Plan.Seq_scan _ | Plan.Index_scan _ -> []
    | Plan.Nest_loop { outer; inner; _ }
    | Plan.Hash_join { outer; inner; _ }
    | Plan.Merge_join { outer; inner; _ } ->
      [ outer; inner ]
    | Plan.Sort { child; _ }
    | Plan.Agg { child; _ }
    | Plan.Group { child; _ }
    | Plan.Limit { child; _ }
    | Plan.Material { child; _ }
    | Plan.Result { child; _ } ->
      [ child ]
  in
  List.fold_left (fun acc c -> acc + count_nodes pred c) self children

let is_range_index_scan = function
  | Plan.Index_scan { key = Plan.Key_range _; _ } -> true
  | _ -> false

let is_index_scan = function Plan.Index_scan _ -> true | _ -> false

let test_range_scans_adapt_to_db () =
  (* queries with date ranges use B-tree range index scans on the B-tree
     database and none on the hash database *)
  List.iter
    (fun q ->
      let pb = Q.plan (Lazy.force db_btree) q in
      let ph = Q.plan (Lazy.force db_hash) q in
      Alcotest.(check bool)
        (Printf.sprintf "Q%d uses a range scan on btree" q)
        true
        (count_nodes is_range_index_scan pb > 0);
      Alcotest.(check int)
        (Printf.sprintf "Q%d has no range scan on hash" q)
        0
        (count_nodes is_range_index_scan ph))
    [ 4; 6; 14; 15 ]

let test_equality_index_scans_on_both () =
  (* parameterized nest-loop index paths exist on both databases *)
  List.iter
    (fun q ->
      List.iter
        (fun db ->
          let p = Q.plan (Lazy.force db) q in
          Alcotest.(check bool)
            (Printf.sprintf "Q%d uses index scans" q)
            true
            (count_nodes is_index_scan p > 0))
        [ db_btree; db_hash ])
    [ 2; 5; 9; 17 ]

let test_operator_coverage () =
  (* across the 17 plans, every executor operator appears *)
  let db = Lazy.force db_btree in
  let plans = List.map (Q.plan db) Q.all in
  let has name =
    List.exists (fun p -> count_nodes (fun n -> Plan.node_name n = name) p > 0) plans
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " used by some query") true (has name))
    [
      "ExecSeqScan";
      "ExecIndexScan";
      "ExecNestLoop";
      "ExecHashJoin";
      "ExecSort";
      "ExecAgg";
      "ExecGroup";
      "ExecLimit";
      "ExecResult";
    ]

let test_mergejoin_and_material_execute () =
  (* not exercised by the 17 TPC-D plans directly; run dedicated plans so
     both operators and their oracle semantics are covered end to end *)
  let db = Lazy.force db_btree in
  let oracle = Stc_workload.Oracle.of_data (Lazy.force data) in
  let mj =
    Plan.Merge_join
      {
        outer = Plan.Sort { child = Plan.Seq_scan { table = "orders"; quals = [] }; cols = [ (Stc_dbdata.Schema.O.custkey, false); (0, false) ] };
        inner = Plan.Sort { child = Plan.Seq_scan { table = "customer"; quals = [] }; cols = [ (0, false) ] };
        outer_col = Stc_dbdata.Schema.O.custkey;
        inner_col = 0;
        quals = [];
      }
  in
  let engine = Stc_db.Exec.run db mj in
  let expected = Stc_workload.Oracle.run oracle mj in
  Alcotest.(check int) "merge join rows" (List.length expected) (List.length engine);
  Alcotest.(check bool) "merge join content" true
    (List.sort compare (List.map Array.to_list engine)
    = List.sort compare (List.map Array.to_list expected));
  let mat =
    Plan.Nest_loop
      {
        outer = Plan.Seq_scan { table = "region"; quals = [] };
        inner =
          Plan.Material { child = Plan.Seq_scan { table = "nation"; quals = [] } };
        quals = [ Stc_db.Expr.Eq (Stc_db.Expr.Col 0, Stc_db.Expr.Col (2 + Stc_dbdata.Schema.N.regionkey)) ];
      }
  in
  let engine = Stc_db.Exec.run db mat in
  let expected = Stc_workload.Oracle.run oracle mat in
  Alcotest.(check int) "material NL rows" (List.length expected)
    (List.length engine);
  Alcotest.(check bool) "material NL content" true
    (List.sort compare (List.map Array.to_list engine)
    = List.sort compare (List.map Array.to_list expected))

let test_training_and_test_sets () =
  Alcotest.(check (list int)) "training" [ 3; 4; 5; 6; 9 ] Q.training_set;
  Alcotest.(check (list int)) "test" [ 2; 3; 4; 6; 11; 12; 13; 14; 15; 17 ] Q.test_set;
  Alcotest.(check int) "17 queries" 17 (List.length Q.all);
  Alcotest.check_raises "bad query"
    (Invalid_argument "Queries.plan: query number must be in 1..17") (fun () ->
      ignore (Q.plan (Lazy.force db_btree) 18))

let test_driver_jobs () =
  let db = Lazy.force db_btree in
  let jobs =
    Stc_workload.Driver.jobs
      ~dbs:[ ("a", db); ("b", db) ]
      ~queries:[ 1; 2; 3 ]
  in
  Alcotest.(check int) "6 jobs" 6 (List.length jobs);
  Alcotest.(check string) "name" "a/Q1"
    (Stc_workload.Driver.job_name (List.hd jobs))

let suite =
  [
    Alcotest.test_case "range scans adapt to db kind" `Quick
      test_range_scans_adapt_to_db;
    Alcotest.test_case "index scans on both dbs" `Quick
      test_equality_index_scans_on_both;
    Alcotest.test_case "operator coverage" `Quick test_operator_coverage;
    Alcotest.test_case "merge join and material vs oracle" `Quick
      test_mergejoin_and_material_execute;
    Alcotest.test_case "query sets" `Quick test_training_and_test_sets;
    Alcotest.test_case "driver jobs" `Quick test_driver_jobs;
  ]
