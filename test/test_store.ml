module Store = Stc_store
module Registry = Stc_obs.Registry
module Run = Stc_core.Run
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module F = Stc_fetch
module Recorder = Stc_trace.Recorder

(* Every test gets its own throwaway store directory under the system
   temp dir, removed on success (a failed test leaves it for autopsy). *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "stc_store_test.%d.%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  let r = f dir in
  rm_rf dir;
  r

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let warnings reg =
  List.filter (fun (kind, _) -> kind = "store.warning") (Registry.events reg)

(* ---------- keys ---------- *)

let test_key () =
  let k parts = Store.Key.hex (Store.Key.of_parts parts) in
  Alcotest.(check int) "16 hex digits" 16 (String.length (k [ "a"; "b" ]));
  Alcotest.(check string) "deterministic" (k [ "a"; "b" ]) (k [ "a"; "b" ]);
  Alcotest.(check bool) "part boundaries matter" true
    (k [ "ab"; "c" ] <> k [ "a"; "bc" ]);
  Alcotest.(check bool) "empty parts matter" true (k [ "a"; "" ] <> k [ "a" ])

(* ---------- raw container ---------- *)

let test_raw_roundtrip () =
  with_dir @@ fun dir ->
  let reg = Registry.create () in
  let st = Store.open_ ~metrics:reg dir in
  let key = Store.Key.of_parts [ "raw"; "roundtrip" ] in
  let payload = "the quick brown payload \x00\xff with binary bytes" in
  Store.write st ~kind:"x" ~version:3 key payload;
  (match Store.read st ~kind:"x" ~version:3 key with
  | Some p -> Alcotest.(check string) "payload back" payload p
  | None -> Alcotest.fail "entry not found after write");
  (* a missing key is a silent miss *)
  Alcotest.(check bool) "missing key" true
    (Store.read st ~kind:"x" ~version:3 (Store.Key.of_parts [ "other" ])
    = None);
  Alcotest.(check int) "cold misses are silent" 0 (List.length (warnings reg));
  (* a version mismatch is a miss plus a warning, but not corruption *)
  Alcotest.(check bool) "version mismatch" true
    (Store.read st ~kind:"x" ~version:4 key = None);
  let s = Store.stats st in
  Alcotest.(check int) "hits" 1 s.Store.hits;
  Alcotest.(check int) "misses" 2 s.Store.misses;
  Alcotest.(check int) "writes" 1 s.Store.writes;
  Alcotest.(check int) "corrupt" 0 s.Store.corrupt;
  Alcotest.(check int) "stale entry warns" 1 (List.length (warnings reg));
  Alcotest.(check bool) "bytes accounted" true
    (s.Store.bytes_read > 0 && s.Store.bytes_written > 0)

let entry_path dir =
  match Store.scan dir with
  | [ e ] -> e.Store.e_path
  | es -> Alcotest.failf "expected exactly one entry, found %d" (List.length es)

let test_corruption_detected () =
  with_dir @@ fun dir ->
  let reg = Registry.create () in
  let st = Store.open_ ~metrics:reg dir in
  let key = Store.Key.of_parts [ "corruption" ] in
  let payload = String.init 256 (fun i -> Char.chr (i mod 256)) in
  Store.write st ~kind:"x" ~version:1 key payload;
  let path = entry_path dir in
  let good = read_file path in
  (* bit-flip inside the payload: CRC must catch it *)
  let flipped = Bytes.of_string good in
  let pos = String.length good - 10 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 1));
  write_file path (Bytes.to_string flipped);
  Alcotest.(check bool) "bit flip rejected" true
    (Store.read st ~kind:"x" ~version:1 key = None);
  (match Store.inspect_file path with
  | { Store.e_ok = false; e_reason = Some _; _ } -> ()
  | _ -> Alcotest.fail "inspect_file accepted a bit-flipped entry");
  (* truncation *)
  write_file path (String.sub good 0 (String.length good / 2));
  Alcotest.(check bool) "truncation rejected" true
    (Store.read st ~kind:"x" ~version:1 key = None);
  (* garbage magic *)
  write_file path ("GARB" ^ String.sub good 4 (String.length good - 4));
  Alcotest.(check bool) "bad magic rejected" true
    (Store.read st ~kind:"x" ~version:1 key = None);
  let s = Store.stats st in
  Alcotest.(check int) "three corruptions counted" 3 s.Store.corrupt;
  Alcotest.(check int) "all warned" 3 (List.length (warnings reg));
  (* and the run carries on: rewrite, read back *)
  Store.write st ~kind:"x" ~version:1 key payload;
  Alcotest.(check bool) "recovered" true
    (Store.read st ~kind:"x" ~version:1 key = Some payload)

let test_cached_repairs () =
  with_dir @@ fun dir ->
  let reg = Registry.create () in
  let st = Store.open_ ~metrics:reg dir in
  let key = Store.Key.of_parts [ "trace"; "repair" ] in
  let rec_ = Recorder.of_ids [| 3; 1; 4; 1; 5; 9; 2; 6 |] ~marks:[ ("q1", 2) ] in
  let computed = ref 0 in
  let compute () =
    incr computed;
    rec_
  in
  (* miss -> compute -> write *)
  let r1 = Store.Trace.cached (Some st) ~key compute in
  Alcotest.(check int) "computed once" 1 !computed;
  Alcotest.(check int) "round-tripped length" (Recorder.length rec_)
    (Recorder.length r1);
  (* hit -> no recompute *)
  ignore (Store.Trace.cached (Some st) ~key compute);
  Alcotest.(check int) "served from store" 1 !computed;
  (* corrupt the entry: cached recomputes and repairs it *)
  let path = entry_path dir in
  write_file path (String.sub (read_file path) 0 8);
  let r2 = Store.Trace.cached (Some st) ~key compute in
  Alcotest.(check int) "recomputed after damage" 2 !computed;
  Alcotest.(check bool) "ids intact" true
    (Array.init (Recorder.length r2) (Recorder.get r2)
    = Array.init (Recorder.length rec_) (Recorder.get rec_));
  Alcotest.(check bool) "damage warned" true (warnings reg <> []);
  (* the rewrite healed the entry *)
  (match Store.Trace.load st ~key with
  | Some r -> Alcotest.(check int) "healed" (Recorder.length rec_) (Recorder.length r)
  | None -> Alcotest.fail "entry not repaired");
  (* a None store computes every time *)
  ignore (Store.Trace.cached None ~key compute);
  Alcotest.(check int) "no store, no cache" 3 !computed

(* ---------- codec round-trip properties ---------- *)

let ids_of r = Array.init (Recorder.length r) (Recorder.get r)

let prop_trace_codec =
  QCheck.Test.make ~name:"trace codec roundtrip" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 0 200) (int_bound 10_000))
        (small_list (pair printable_string (int_bound 200))))
    (fun (ids, marks) ->
      let r = Recorder.of_ids ids ~marks in
      let r' = Store.Trace.decode (Store.Trace.encode r) in
      ids_of r' = ids && Recorder.marks r' = marks)

let prop_layout_codec =
  QCheck.Test.make ~name:"layout codec roundtrip" ~count:100
    QCheck.(
      pair printable_string
        (array_of_size Gen.(int_range 0 200) (int_bound 1_000_000)))
    (fun (name, addr) ->
      let l = { Stc_layout.Layout.name; addr } in
      Store.Layout.decode (Store.Layout.encode l) = l)

let prop_packed_codec =
  QCheck.Test.make ~name:"packed codec roundtrip" ~count:100
    QCheck.(
      triple
        (array_of_size Gen.(int_range 0 200) (int_bound max_int))
        small_nat (float_range 0.0 1.0))
    (fun (words, total_instrs, frac) ->
      let len = Array.length words in
      let taken_branches = int_of_float (frac *. float_of_int len) in
      let p = F.Packed.of_raw ~words ~len ~total_instrs ~taken_branches in
      let p' = Store.Packed.decode (Store.Packed.encode p) in
      F.Packed.length p' = len
      && Array.for_all2 ( = )
           (Array.sub (F.Packed.raw p') 0 len)
           (Array.sub words 0 len)
      && F.Packed.total_instrs p' = total_instrs
      && F.Packed.taken_branches p' = taken_branches)

let prop_result_codec =
  QCheck.Test.make ~name:"result codec roundtrip" ~count:100
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 18) (int_bound 1_000_000_000))
        pos_float)
    (fun (f, instrs_between_taken) ->
      let r =
        {
          F.Engine.instrs = f.(0);
          cycles = f.(1);
          fetch_cycles = f.(2);
          seq_cycles = f.(3);
          tc_cycles = f.(4);
          icache_accesses = f.(5);
          icache_misses = f.(6);
          icache_victim_hits = f.(7);
          tc_lookups = f.(8);
          tc_hits = f.(9);
          taken_branches = f.(10);
          instrs_between_taken;
          cond_branches = f.(11);
          mispredictions = f.(12);
          icache_evictions = f.(13);
          prefetch_issued = f.(14);
          prefetch_completed = f.(15);
          prefetch_late = f.(16);
          prefetch_useful = f.(17);
        }
      in
      Store.Result.decode (Store.Result.encode r) = r)

let prop_decode_rejects_junk =
  QCheck.Test.make ~name:"decoders never accept trailing junk" ~count:100
    QCheck.(
      pair
        (array_of_size Gen.(int_range 0 50) (int_bound 10_000))
        printable_string)
    (fun (ids, junk) ->
      QCheck.assume (junk <> "");
      let bytes = Store.Trace.encode (Recorder.of_ids ids ~marks:[]) ^ junk in
      match Store.Trace.decode bytes with
      | _ -> false
      | exception Store.Corrupt _ -> true)

(* ---------- end to end: cold vs warm ---------- *)

let tiny_config = { Pipeline.quick_config with Pipeline.sf = 0.0004 }
let tiny_grid = { E.default_sim_config with E.grid = [ (8, [ 2 ]) ] }

let run_grid dir =
  let reg = Registry.create ~clock:(fun () -> 0.0) () in
  let ctx = Run.default |> Run.with_metrics reg |> Run.with_store dir in
  let pl = Pipeline.run ~ctx ~config:tiny_config () in
  let rows = E.simulate ~ctx ~config:tiny_grid pl in
  (reg, rows)

let non_store_counters reg =
  List.filter
    (fun (name, _) -> not (String.starts_with ~prefix:"store." name))
    (Registry.counters reg)

let non_store_events reg =
  List.filter
    (fun (kind, _) -> not (String.starts_with ~prefix:"store." kind))
    (Registry.events reg)

let store_counter reg name =
  Option.value ~default:0 (List.assoc_opt name (Registry.counters reg))

let test_cold_warm_identical () =
  with_dir @@ fun dir ->
  let cold_reg, cold_rows = run_grid dir in
  let warm_reg, warm_rows = run_grid dir in
  Alcotest.(check bool) "rows identical" true (cold_rows = warm_rows);
  Alcotest.(check bool) "warm run hit the store" true
    (store_counter warm_reg "store.hits" > 0);
  Alcotest.(check bool) "no corruption" true
    (store_counter warm_reg "store.corrupt" = 0);
  (* everything observable except the store's own counters matches *)
  Alcotest.(check bool) "counters identical" true
    (non_store_counters cold_reg = non_store_counters warm_reg);
  Alcotest.(check bool) "events identical" true
    (non_store_events cold_reg = non_store_events warm_reg)

let test_corrupt_store_survives () =
  with_dir @@ fun dir ->
  let _, cold_rows = run_grid dir in
  (* damage every cached engine result; the run must recompute and agree *)
  let results =
    List.filter (fun e -> e.Store.e_kind = "result") (Store.scan dir)
  in
  Alcotest.(check bool) "results were cached" true (results <> []);
  List.iter
    (fun e ->
      let s = read_file e.Store.e_path in
      write_file e.Store.e_path (String.sub s 0 (String.length s - 2)))
    results;
  let warm_reg, warm_rows = run_grid dir in
  Alcotest.(check bool) "rows identical despite damage" true
    (cold_rows = warm_rows);
  Alcotest.(check bool) "damage counted" true
    (store_counter warm_reg "store.corrupt" >= List.length results);
  Alcotest.(check bool) "damage warned" true (warnings warm_reg <> []);
  (* the warm run repaired the store *)
  Alcotest.(check bool) "store repaired" true
    (List.for_all (fun e -> e.Store.e_ok) (Store.scan dir))

(* ---------- ctx plumbing ---------- *)

let test_with_store () =
  Alcotest.(check bool) "default has no store" true (Run.default.Run.store = None);
  let ctx = Run.default |> Run.with_store "/tmp/somewhere" in
  Alcotest.(check bool) "with_store sets it" true
    (ctx.Run.store = Some "/tmp/somewhere");
  Alcotest.(check bool) "of_ctx on default" true
    (Store.of_ctx Run.default = None);
  with_dir @@ fun dir ->
  match Store.of_ctx (Run.default |> Run.with_store dir) with
  | Some st -> Alcotest.(check string) "of_ctx opens the dir" dir (Store.dir st)
  | None -> Alcotest.fail "of_ctx ignored ctx.store"

let suite =
  [
    Alcotest.test_case "key hashing" `Quick test_key;
    Alcotest.test_case "raw write/read/version" `Quick test_raw_roundtrip;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "cached repairs damage" `Quick test_cached_repairs;
    Alcotest.test_case "Run.with_store / of_ctx" `Quick test_with_store;
    Alcotest.test_case "cold vs warm identical" `Slow test_cold_warm_identical;
    Alcotest.test_case "corrupt store survives" `Slow test_corrupt_store_survives;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_trace_codec;
        prop_layout_codec;
        prop_packed_codec;
        prop_result_codec;
        prop_decode_rejects_junk;
      ]
