module Kernel = Stc_synth.Kernel
module Database = Stc_db.Database
module Datagen = Stc_dbdata.Datagen
module Recorder = Stc_trace.Recorder
module Check = Stc_trace.Check
module Walker = Stc_trace.Walker
module Probe = Stc_trace.Probe

(* Shared fixtures: tiny kernel config (fast to build) and a small data
   set; computed once. *)
let small_config =
  {
    Kernel.default_config with
    Kernel.n_l2 = 40;
    n_l3 = 60;
    n_l4 = 30;
    n_parser = 40;
    n_optimizer = 30;
    n_filler = 120;
  }

let kernel = lazy (Kernel.build ~config:small_config ())

let data = lazy (Datagen.generate ~sf:0.001 ())

let db_btree = lazy (Database.load (Lazy.force data) ~kind:Database.Btree_db)

let db_hash = lazy (Database.load (Lazy.force data) ~kind:Database.Hash_db)

let oracle = lazy (Stc_workload.Oracle.of_data (Lazy.force data))

let sorted_rows rows = List.sort compare rows

let run_query_untraced db q =
  Stc_db.Exec.run db (Stc_workload.Queries.plan db q)

let check_query_against_oracle db_lazy label q () =
  let db = Lazy.force db_lazy in
  let plan = Stc_workload.Queries.plan db q in
  let engine = Stc_db.Exec.run db plan in
  let reference = Stc_workload.Oracle.run (Lazy.force oracle) plan in
  Alcotest.(check int)
    (Printf.sprintf "%s Q%d row count" label q)
    (List.length reference) (List.length engine);
  let pp_rows rows =
    String.concat "; "
      (List.map
         (fun r ->
           "[" ^ String.concat "," (List.map string_of_int (Array.to_list r)) ^ "]")
         rows)
  in
  let e = sorted_rows (List.map Array.to_list engine) in
  let r = sorted_rows (List.map Array.to_list reference) in
  if e <> r then
    Alcotest.failf "%s Q%d rows differ\nengine:    %s\nreference: %s" label q
      (pp_rows engine) (pp_rows reference)

let test_all_queries_btree () =
  List.iter
    (fun q -> check_query_against_oracle db_btree "btree" q ())
    Stc_workload.Queries.all

let test_all_queries_hash () =
  List.iter
    (fun q -> check_query_against_oracle db_hash "hash" q ())
    Stc_workload.Queries.all

let test_traced_run_legal () =
  let kernel = Lazy.force kernel in
  let db = Lazy.force db_btree in
  let recorder =
    Stc_workload.Driver.record ~kernel ~walker_seed:11L
      ~dbs:[ ("btree", db) ]
      ~queries:[ 3; 6 ] ()
  in
  Alcotest.(check bool) "trace nonempty" true (Recorder.length recorder > 1000);
  match
    Check.check_all kernel.Kernel.program (fun f ->
        Stc_trace.Source.iter (Stc_trace.Source.of_recorder recorder) f)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_traced_matches_untraced () =
  (* Tracing must not change query results. *)
  let kernel = Lazy.force kernel in
  let db = Lazy.force db_btree in
  let plan = Stc_workload.Queries.plan db 3 in
  let untraced = Stc_db.Exec.run db plan in
  let walker = Kernel.make_walker kernel ~seed:5L ~sink:(fun _ -> ()) in
  let traced = Probe.with_walker walker (fun () -> Stc_db.Exec.run db plan) in
  Alcotest.(check bool) "same results" true (untraced = traced)

let test_trace_deterministic () =
  let kernel = Lazy.force kernel in
  let db = Lazy.force db_btree in
  let record () =
    Stc_workload.Driver.record ~kernel ~walker_seed:42L
      ~dbs:[ ("btree", db) ]
      ~queries:[ 6; 12 ] ()
  in
  let r1 = record () and r2 = record () in
  Alcotest.(check int64) "same trace" (Recorder.hash r1) (Recorder.hash r2)

let test_kernel_program_valid () =
  let kernel = Lazy.force kernel in
  match Stc_cfg.Program.validate kernel.Kernel.program with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_all_queries_traced_both_dbs () =
  (* every query runs to completion under tracing on both databases and
     yields a legal walk *)
  let kernel = Lazy.force kernel in
  let dbs = [ ("btree", Lazy.force db_btree); ("hash", Lazy.force db_hash) ] in
  let recorder =
    Stc_workload.Driver.record ~kernel ~walker_seed:3L ~dbs
      ~queries:Stc_workload.Queries.all ()
  in
  Alcotest.(check int) "all jobs marked" 34
    (List.length (Recorder.marks recorder));
  match
    Check.check_all kernel.Kernel.program (fun f ->
        Stc_trace.Source.iter (Stc_trace.Source.of_recorder recorder) f)
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_bufmgr_traffic () =
  let db = Lazy.force db_btree in
  ignore (run_query_untraced db 1);
  let bm = Database.bufmgr db in
  Alcotest.(check bool) "buffer manager saw traffic" true
    (Stc_db.Bufmgr.hits bm + Stc_db.Bufmgr.misses bm > 0)

let suite =
  [
    Alcotest.test_case "kernel program valid" `Quick test_kernel_program_valid;
    Alcotest.test_case "all queries vs oracle (btree)" `Slow
      test_all_queries_btree;
    Alcotest.test_case "all queries vs oracle (hash)" `Slow
      test_all_queries_hash;
    Alcotest.test_case "traced run is a legal walk" `Quick
      test_traced_run_legal;
    Alcotest.test_case "tracing preserves results" `Quick
      test_traced_matches_untraced;
    Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
    Alcotest.test_case "all queries traced on both dbs" `Slow
      test_all_queries_traced_both_dbs;
    Alcotest.test_case "buffer manager traffic" `Quick test_bufmgr_traffic;
  ]
