(* Stc_obs.Trace: the per-domain event tracer and its Chrome trace_event
   serialization. The emitter is exercised against a hand-stepped clock
   (exact timestamps), a QCheck structural round-trip (any op tree
   serializes to a well-formed, balanced, per-domain-monotone event
   array), and real Domain.spawn parallelism. *)

module Trace = Stc_obs.Trace
module Json = Stc_obs.Json

(* A tracer on a hand-stepped clock: epoch is the clock's value at
   create, so the first [tick] puts "now" at exactly [step] seconds. *)
let stepped ?capacity () =
  let t = ref 0.0 in
  let tr = Trace.create ?capacity ~clock:(fun () -> !t) () in
  (tr, fun dt -> t := !t +. dt)

let parse tr =
  match Json.of_string (Trace.to_string tr) with
  | Json.List evs -> evs
  | _ -> Alcotest.fail "trace did not serialize to a JSON array"

let field name ev =
  match Json.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "event lacks %S: %s" name (Json.to_string ev)

let str name ev =
  match field name ev with
  | Json.Str s -> s
  | v -> Alcotest.failf "%S not a string: %s" name (Json.to_string v)

let num name ev =
  match Json.to_float (field name ev) with
  | Some f -> f
  | None -> Alcotest.failf "%S not numeric" name

let int name ev =
  match field name ev with
  | Json.Int i -> i
  | v -> Alcotest.failf "%S not an int: %s" name (Json.to_string v)

let non_meta evs = List.filter (fun e -> str "ph" e <> "M") evs

(* ---------- exact serialization on a stepped clock ---------- *)

let test_span_slices () =
  let tr, tick = stepped () in
  Trace.span tr "outer" (fun () ->
      tick 0.001;
      Trace.span tr "inner" (fun () -> tick 0.002);
      tick 0.003);
  Trace.instant tr (Trace.intern tr "mark");
  Trace.counter tr (Trace.intern tr "depth") 7;
  Alcotest.(check int) "events counted" 6 (Trace.events tr);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  let evs = parse tr in
  (* one thread_name metadata record for the lone domain *)
  (match List.filter (fun e -> str "ph" e = "M") evs with
  | [ m ] ->
    Alcotest.(check string) "meta name" "thread_name" (str "name" m)
  | ms -> Alcotest.failf "expected 1 metadata event, got %d" (List.length ms));
  let phases =
    List.map (fun e -> (str "ph" e, str "name" e, num "ts" e)) (non_meta evs)
  in
  Alcotest.(check (list (triple string string (float 1e-6))))
    "exact event sequence"
    [
      ("B", "outer", 0.0);
      ("B", "inner", 1000.0);
      ("E", "inner", 3000.0);
      ("E", "outer", 6000.0);
      ("i", "mark", 6000.0);
      ("C", "depth", 6000.0);
    ]
    phases;
  (* the counter carries its value in args.value *)
  let c = List.find (fun e -> str "ph" e = "C") evs in
  (match Json.member "args" c with
  | Some args -> Alcotest.(check int) "counter value" 7 (int "value" args)
  | None -> Alcotest.fail "counter event lacks args")

let test_complete_and_end_args () =
  let tr, tick = stepped () in
  let name = Trace.intern tr "op" in
  let t0 = Trace.now tr in
  tick 0.004;
  Trace.complete ~arg:512 tr name ~start:t0;
  Trace.end_ ~arg:64 tr name;
  let evs = non_meta (parse tr) in
  let x = List.find (fun e -> str "ph" e = "X") evs in
  Alcotest.(check (float 1e-6)) "X starts at start" 0.0 (num "ts" x);
  Alcotest.(check (float 1e-6)) "X duration in us" 4000.0 (num "dur" x);
  let bytes e =
    match Json.member "args" e with Some a -> int "bytes" a | None -> -1
  in
  Alcotest.(check int) "X byte arg" 512 (bytes x);
  let e = List.find (fun e -> str "ph" e = "E") evs in
  Alcotest.(check int) "E byte arg" 64 (bytes e)

let test_ring_full_drops () =
  let tr, _tick = stepped ~capacity:4 () in
  let name = Trace.intern tr "i" in
  for _ = 1 to 10 do
    Trace.instant tr name
  done;
  Alcotest.(check int) "ring kept capacity" 4 (Trace.events tr);
  Alcotest.(check int) "overflow counted" 6 (Trace.dropped tr);
  Alcotest.(check int) "serialized = kept + meta" 5 (List.length (parse tr))

let test_backwards_clock_clamped () =
  let t = ref 10.0 in
  let tr = Trace.create ~clock:(fun () -> !t) () in
  let name = Trace.intern tr "e" in
  Trace.instant tr name;
  t := 5.0 (* NTP step backwards *);
  Trace.instant tr name;
  t := 12.0;
  Trace.instant tr name;
  let ts = List.map (num "ts") (non_meta (parse tr)) in
  Alcotest.(check (list (float 1e-6)))
    "timestamps clamped monotone"
    [ 0.0; 0.0; 2e6 ]
    ts

(* ---------- QCheck: structural round-trip of random op trees ---------- *)

type op =
  | Span of int * op list
  | Instant of int
  | Count of int * int
  | Complete of int

let op_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Instant i) (int_bound 3);
              map2 (fun i v -> Count (i, v)) (int_bound 3) (int_bound 1000);
              map (fun i -> Complete i) (int_bound 3);
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 3,
                map2
                  (fun i ops -> Span (i, ops))
                  (int_bound 3)
                  (list_size (int_bound 4) (self (n / 2))) );
            ]))

let rec op_str = function
  | Span (i, ops) ->
    Printf.sprintf "s%d[%s]" i (String.concat ";" (List.map op_str ops))
  | Instant i -> Printf.sprintf "i%d" i
  | Count (i, v) -> Printf.sprintf "c%d=%d" i v
  | Complete i -> Printf.sprintf "x%d" i

let rec apply tr tick = function
  | Span (i, ops) ->
    Trace.span tr (Printf.sprintf "s%d" i) (fun () ->
        tick 0.001;
        List.iter (apply tr tick) ops)
  | Instant i -> Trace.instant tr (Trace.intern tr (Printf.sprintf "i%d" i))
  | Count (i, v) ->
    Trace.counter tr (Trace.intern tr (Printf.sprintf "c%d" i)) v
  | Complete i ->
    let t0 = Trace.now tr in
    tick 0.001;
    Trace.complete tr (Trace.intern tr (Printf.sprintf "x%d" i)) ~start:t0

(* Group an event list by tid, preserving order within each group. *)
let by_tid evs =
  let tbl = Hashtbl.create 4 and tids = ref [] in
  List.iter
    (fun e ->
      let tid = int "tid" e in
      match Hashtbl.find_opt tbl tid with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.replace tbl tid (ref [ e ]);
        tids := tid :: !tids)
    evs;
  List.rev_map (fun tid -> (tid, List.rev !(Hashtbl.find tbl tid))) !tids

(* The three structural invariants any Stc_obs.Trace export satisfies,
   shared by the QCheck property and the multi-domain test below. *)
let check_wellformed evs =
  List.iter
    (fun e ->
      let ph = str "ph" e in
      if
        not (List.mem ph [ "B"; "E"; "i"; "C"; "X" ])
      then QCheck.Test.fail_reportf "unknown ph %S" ph;
      ignore (str "name" e);
      ignore (num "ts" e);
      ignore (int "pid" e);
      ignore (int "tid" e))
    evs;
  List.iter
    (fun (tid, evs) ->
      (* begin/end balance with stack discipline *)
      let stack =
        List.fold_left
          (fun stack e ->
            match str "ph" e with
            | "B" -> str "name" e :: stack
            | "E" -> (
              match stack with
              | top :: rest when top = str "name" e -> rest
              | _ ->
                QCheck.Test.fail_reportf "tid %d: E %S without matching B" tid
                  (str "name" e))
            | _ -> stack)
          [] evs
      in
      if stack <> [] then
        QCheck.Test.fail_reportf "tid %d: %d unclosed B event(s)" tid
          (List.length stack);
      (* timestamps monotone non-decreasing in emission order *)
      ignore
        (List.fold_left
           (fun last e ->
             let ts = num "ts" e in
             if ts < last then
               QCheck.Test.fail_reportf "tid %d: ts %.1f after %.1f" tid ts
                 last;
             ts)
           neg_infinity evs))
    (by_tid evs)

let prop_roundtrip =
  QCheck.Test.make ~name:"Trace export is balanced, monotone, well-formed"
    ~count:200
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map op_str ops))
       QCheck.Gen.(list_size (int_bound 20) op_gen))
    (fun ops ->
      let tr, tick = stepped () in
      List.iter (apply tr tick) ops;
      let evs = non_meta (parse tr) in
      if List.length evs <> Trace.events tr then
        QCheck.Test.fail_reportf "serialized %d events, tracer counted %d"
          (List.length evs) (Trace.events tr);
      check_wellformed evs;
      true)

(* ---------- real parallelism ---------- *)

let test_multi_domain () =
  let tr = Trace.create () in
  let spans_per_domain = 50 in
  let work () =
    for i = 1 to spans_per_domain do
      Trace.span tr "work" (fun () ->
          Trace.counter tr (Trace.intern tr "i") i)
    done
  in
  let doms = Array.init 3 (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join doms;
  Alcotest.(check int) "all events recorded"
    (4 * spans_per_domain * 3)
    (Trace.events tr);
  let evs = non_meta (parse tr) in
  let groups = by_tid evs in
  Alcotest.(check int) "one track per domain" 4 (List.length groups);
  check_wellformed evs;
  (* tracks come out sorted by domain id *)
  let tids = List.map fst groups in
  Alcotest.(check (list int)) "tracks sorted" (List.sort compare tids) tids

let suite =
  [
    Alcotest.test_case "span slices on a stepped clock" `Quick test_span_slices;
    Alcotest.test_case "complete and end args" `Quick test_complete_and_end_args;
    Alcotest.test_case "ring full drops, never grows" `Quick test_ring_full_drops;
    Alcotest.test_case "backwards clock clamped" `Quick
      test_backwards_clock_clamped;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "multi-domain tracks" `Quick test_multi_domain;
  ]
