(* The segment-streamed trace pipeline: streamed replay must be an
   evaluation strategy, never an approximation.

   - property: over random programs, random traces and random segment
     sizes (1-block segments, a 1-block final segment, segment = trace
     length, empty trace), Engine.run_stream reproduces run_packed's
     result record and cache counters exactly;
   - memory boundedness: the streamed engine's resident high-water mark
     is a function of the segment size, not the trace length;
   - chunked store: save/load round-trips ids and marks (marks on
     segment boundaries included), a damaged segment is detected and
     repaired, and a warm replay straight off the chunked entry
     reproduces identical engine rows. *)

module F = Stc_fetch
module L = Stc_layout
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder
module Source = Stc_trace.Source
module Segment = Stc_trace.Segment
module Store = Stc_store

(* ---------- random programs and traces ---------- *)

(* A linear-chain program of [n] blocks with seeded random sizes and
   terminators. The engine's replay semantics depend only on each
   block's address, size and flags — the trace need not follow the
   terminators — so a random id sequence exercises every packed-word
   shape (taken/not-taken, cond/uncond, branchy/fallthrough). *)
let random_program seed n =
  let st = Random.State.make [| seed; n |] in
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let ids =
    Array.init n (fun _ -> Builder.new_block b ~pid:p ~size:(1 + Random.State.int st 12))
  in
  Array.iteri
    (fun i bid ->
      (* every terminator keeps an edge to the next block, so the chain
         stays reachable from the entry whatever the dice say *)
      let term =
        if i = n - 1 then Terminator.Ret
        else
          let next = ids.(i + 1) in
          let other = ids.(Random.State.int st n) in
          match Random.State.int st 3 with
          | 0 -> Terminator.Cond { taken = other; fallthru = next }
          | 1 -> Terminator.Jump next
          | _ -> Terminator.Fall next
      in
      Builder.set_term b bid term)
    ids;
  Builder.finish_proc b ~pid:p ~entry:ids.(0) ~blocks:ids;
  (Builder.build b, ids)

let random_trace st ids len =
  Array.init len (fun _ -> ids.(Random.State.int st (Array.length ids)))

(* Fresh simulation state per replay: shared caches would leak state
   from one replay into the next and mask nothing. *)
let mk_state () =
  ( Stc_cachesim.Icache.create ~size_bytes:2048 (),
    F.Tracecache.create ~entries:64 () )

let run_materialized prog layout trace =
  let icache, tc = mk_state () in
  let packed = F.Packed.compile prog layout (Source.of_array trace) in
  let r = F.Engine.run_packed ~icache ~trace_cache:tc packed in
  (r, Stc_cachesim.Icache.stats icache, F.Tracecache.lookups tc, F.Tracecache.hits tc)

let run_streamed ?resident_hwm prog layout trace ~segment_blocks =
  let icache, tc = mk_state () in
  let tables = F.Packed.tables prog layout in
  let stream =
    F.Stream.create tables (Source.of_array ~segment_blocks trace)
  in
  let r = F.Engine.run_stream ~icache ~trace_cache:tc ?resident_hwm stream in
  (r, Stc_cachesim.Icache.stats icache, F.Tracecache.lookups tc, F.Tracecache.hits tc)

(* ---------- streamed == materialized ---------- *)

let check_equal ~what (rm, im, lm, hm) (rs, is_, ls, hs) =
  if rm <> rs then QCheck.Test.fail_reportf "%s: engine result differs" what;
  if im <> is_ then QCheck.Test.fail_reportf "%s: icache counters differ" what;
  if (lm, hm) <> (ls, hs) then
    QCheck.Test.fail_reportf "%s: trace-cache counters differ" what;
  true

let prop_streamed_equals_materialized =
  QCheck.Test.make ~name:"streamed replay == materialized replay" ~count:80
    QCheck.(triple (int_bound 10_000) (int_bound 400) (int_bound 1_000))
    (fun (seed, len, seg_seed) ->
      let st = Random.State.make [| seed; seg_seed |] in
      let prog, ids = random_program seed (2 + Random.State.int st 40) in
      let trace = random_trace st ids len in
      let layout = L.Original.layout prog in
      let reference = run_materialized prog layout trace in
      (* the interesting segmentations: single-block segments, a
         one-block final segment, one segment spanning everything, and a
         couple of random interior sizes *)
      let sizes =
        [ 1; max 1 (len - 1); max 1 len; len + 1; 2 + Random.State.int st 97 ]
      in
      List.for_all
        (fun segment_blocks ->
          check_equal
            ~what:(Printf.sprintf "len=%d seg=%d" len segment_blocks)
            reference
            (run_streamed prog layout trace ~segment_blocks))
        sizes)

let test_empty_trace () =
  let prog, _ids = random_program 7 5 in
  let layout = L.Original.layout prog in
  let (rm, _, _, _) = run_materialized prog layout [||] in
  let (rs, _, _, _) = run_streamed prog layout [||] ~segment_blocks:4 in
  Alcotest.(check bool) "empty trace streams" true (rm = rs);
  Alcotest.(check int) "no instrs" 0 rs.F.Engine.instrs

(* ---------- memory boundedness ---------- *)

let test_resident_bound () =
  let prog, ids = random_program 21 48 in
  let layout = L.Original.layout prog in
  let st = Random.State.make [| 42 |] in
  let len = 50_000 and segment_blocks = 64 in
  let trace = random_trace st ids len in
  let hwm = ref 0 in
  let streamed =
    run_streamed ~resident_hwm:hwm prog layout trace ~segment_blocks
  in
  ignore (check_equal ~what:"hwm run" (run_materialized prog layout trace) streamed);
  (* the buffer never holds more than the live lookahead window plus two
     segments' worth of blocks — in particular it is a small constant
     multiple of the segment size, not of the trace *)
  Alcotest.(check bool)
    (Printf.sprintf "resident %d words bounded by segments, not trace" !hwm)
    true
    (!hwm <= (4 * segment_blocks) + 64 && !hwm < len / 10);
  (* whole-image replay borrows the caller's packed image: same bound
     machinery reports the full trace as resident *)
  let full = ref 0 in
  let icache, tc = mk_state () in
  let stream =
    F.Stream.of_packed (F.Packed.compile prog layout (Source.of_array trace))
  in
  ignore
    (F.Engine.run_stream ~icache ~trace_cache:tc ~resident_hwm:full stream);
  Alcotest.(check int) "single borrowed segment is the whole trace" len !full

(* ---------- chunked store ---------- *)

let with_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stc_stream_test.%d.%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let r = f dir in
  rm_rf dir;
  r

let ids_of r = Array.init (Recorder.length r) (Recorder.get r)

let test_chunked_roundtrip () =
  with_dir @@ fun dir ->
  let st = Store.open_ dir in
  let seg = 8 in
  (* marks at 0, on a segment boundary, inside a segment, and at the very
     end of the trace *)
  let rec_ =
    Recorder.of_ids
      (Array.init 50 (fun i -> (i * 13) mod 29))
      ~marks:[ ("start", 0); ("boundary", 2 * seg); ("interior", 19); ("end", 50) ]
  in
  let key = Store.Key.of_parts [ "chunked"; "roundtrip" ] in
  Store.Chunked.save ~segment_blocks:seg st ~key rec_;
  (match Store.Chunked.load_manifest st ~key with
  | None -> Alcotest.fail "manifest missing after save"
  | Some m ->
    Alcotest.(check int) "blocks" 50 m.Store.Chunked.m_total_blocks;
    Alcotest.(check int) "segments" 7 (Array.length m.Store.Chunked.m_seg_lens);
    Alcotest.(check int) "last segment short" 2
      m.Store.Chunked.m_seg_lens.(6));
  match Store.Chunked.load st ~key with
  | None -> Alcotest.fail "chunked entry did not load"
  | Some r2 ->
    Alcotest.(check bool) "ids round-trip" true (ids_of r2 = ids_of rec_);
    Alcotest.(check bool) "marks round-trip" true
      (Recorder.marks r2 = Recorder.marks rec_);
    Alcotest.(check bool) "hash preserved" true
      (Recorder.hash r2 = Recorder.hash rec_)

let test_chunked_damage_and_repair () =
  with_dir @@ fun dir ->
  let st = Store.open_ dir in
  let rec_ = Recorder.of_ids (Array.init 40 (fun i -> i mod 11)) ~marks:[] in
  let key = Store.Key.of_parts [ "chunked"; "damage" ] in
  Store.Chunked.save ~segment_blocks:8 st ~key rec_;
  (* truncate one interior segment's container *)
  let seg_path i =
    Filename.concat dir
      (Filename.concat Store.Chunked.segment_kind
         (Store.Key.hex (Store.Chunked.seg_key key i) ^ ".bin"))
  in
  let whole = seg_path 2 in
  let ic = open_in_bin whole in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin whole in
  output_string oc (String.sub contents 0 (String.length contents / 2));
  close_out oc;
  Alcotest.(check bool) "damaged entry misses" true
    (Store.Chunked.load st ~key = None);
  Alcotest.(check bool) "damaged entry has no source" true
    (Store.Chunked.source st ~key = None);
  (* cached recomputes and the re-save repairs the broken segment *)
  let computed = ref 0 in
  let r =
    Store.Chunked.cached ~segment_blocks:8 (Some st) ~key (fun () ->
        incr computed;
        rec_)
  in
  Alcotest.(check int) "recomputed once" 1 !computed;
  Alcotest.(check bool) "repaired ids" true (ids_of r = ids_of rec_);
  match Store.Chunked.load st ~key with
  | None -> Alcotest.fail "entry not healed by re-save"
  | Some r2 -> Alcotest.(check bool) "healed" true (ids_of r2 = ids_of rec_)

(* A warm replay served from the chunked entry — Source straight off the
   store, one segment resident at a time — must produce the same engine
   rows as replaying the recorder it was saved from. *)
let test_chunked_warm_replay_identical () =
  with_dir @@ fun dir ->
  let st = Store.open_ dir in
  let prog, ids = random_program 3 30 in
  let layout = L.Original.layout prog in
  let rst = Random.State.make [| 5 |] in
  let trace = random_trace rst ids 5_000 in
  let rec_ = Recorder.of_ids trace ~marks:[] in
  let key = Store.Key.of_parts [ "chunked"; "warm-replay" ] in
  Store.Chunked.save ~segment_blocks:256 st ~key rec_;
  let cold = run_materialized prog layout trace in
  match Store.Chunked.source st ~key with
  | None -> Alcotest.fail "chunked source missing"
  | Some (m, source) ->
    Alcotest.(check int) "manifest blocks" 5_000 m.Store.Chunked.m_total_blocks;
    let icache, tc = mk_state () in
    let stream = F.Stream.create (F.Packed.tables prog layout) source in
    let r = F.Engine.run_stream ~icache ~trace_cache:tc stream in
    let warm =
      (r, Stc_cachesim.Icache.stats icache, F.Tracecache.lookups tc,
       F.Tracecache.hits tc)
    in
    ignore (check_equal ~what:"warm chunked replay" cold warm)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_streamed_equals_materialized;
    Alcotest.test_case "empty trace streams" `Quick test_empty_trace;
    Alcotest.test_case "streamed residency is segment-bounded" `Quick
      test_resident_bound;
    Alcotest.test_case "chunked store round-trips ids and marks" `Quick
      test_chunked_roundtrip;
    Alcotest.test_case "chunked damage is detected and repaired" `Quick
      test_chunked_damage_and_repair;
    Alcotest.test_case "warm chunked replay row-identical" `Quick
      test_chunked_warm_replay_identical;
  ]
