module Db = Stc_db
module Storage = Db.Storage
module Bufmgr = Db.Bufmgr
module Page = Db.Page
module Heap = Db.Heap
module Btree = Db.Btree
module Hashidx = Db.Hashidx
module Expr = Db.Expr

(* ---------- pages and storage ---------- *)

let test_page_roundtrip () =
  let p = Page.create ~width:3 in
  Page.append p [| 1; 2; 3 |];
  Page.append p [| 4; 5; 6 |];
  Alcotest.(check int) "items" 2 (Page.n_items p);
  Alcotest.(check int) "get" 5 (Page.get p ~slot:1 ~col:1);
  let row = Array.make 3 0 in
  Page.read_row p ~slot:0 ~into:row;
  Alcotest.(check (array int)) "read_row" [| 1; 2; 3 |] row;
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Page.append: width mismatch") (fun () ->
      Page.append p [| 1 |])

let test_page_capacity () =
  let p = Page.create ~width:512 in
  Alcotest.(check int) "capacity" 2 (Page.capacity ~width:512);
  Page.append p (Array.make 512 0);
  Page.append p (Array.make 512 1);
  Alcotest.(check bool) "full" true (Page.full p);
  Alcotest.check_raises "overflow" (Invalid_argument "Page.append: page full")
    (fun () -> Page.append p (Array.make 512 2))

let test_storage_append_tids () =
  let s = Storage.create () in
  let f = Storage.new_file s ~name:"t" ~width:500 in
  (* capacity 2 per page: tids go (0,0) (0,1) (1,0) ... *)
  let tids = List.init 5 (fun i -> Storage.append_row f (Array.make 500 i)) in
  Alcotest.(check (list (pair int int)))
    "tids" [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 0) ] tids;
  Alcotest.(check int) "pages" 3 (Storage.n_pages f)

(* ---------- heap scans ---------- *)

let mk_heap rows width =
  let s = Storage.create () in
  let bm = Bufmgr.create ~frames:4 () in
  (Heap.load s bm ~name:"t" ~rows ~width, bm)

let test_heap_scan_all () =
  let rows = Array.init 999 (fun i -> [| i; i * 2 |]) in
  let heap, _ = mk_heap rows 2 in
  let scan = Heap.begin_scan heap in
  let rec collect acc =
    match Heap.getnext scan with
    | Some t -> collect (t :: acc)
    | None -> List.rev acc
  in
  let out = collect [] in
  Alcotest.(check int) "all rows" 999 (List.length out);
  Alcotest.(check (array int)) "first" [| 0; 0 |] (List.hd out);
  (* rescan restarts *)
  Heap.rescan scan;
  Alcotest.(check bool) "rescan yields rows" true (Heap.getnext scan <> None)

let test_heap_fetch () =
  let rows = Array.init 100 (fun i -> [| i; i + 1000 |]) in
  let heap, _ = mk_heap rows 2 in
  (* row i's tid: capacity = 1024/2 = 512/row... width 2 -> 512 rows/page *)
  Alcotest.(check (array int)) "fetch" [| 42; 1042 |] (Heap.fetch heap (0, 42))

let test_bufmgr_eviction_accounting () =
  let rows = Array.init 4000 (fun i -> [| i |]) in
  (* width 1 -> 1024 rows per page -> 4 pages; 2 frames *)
  let s = Storage.create () in
  let bm = Bufmgr.create ~frames:2 () in
  let heap = Heap.load s bm ~name:"t" ~rows ~width:1 in
  let scan = Heap.begin_scan heap in
  let rec drain () = match Heap.getnext scan with Some _ -> drain () | None -> () in
  drain ();
  Alcotest.(check int) "4 page misses" 4 (Bufmgr.misses bm);
  Heap.rescan scan;
  drain ();
  (* the pool only holds 2 frames: rescanning misses again *)
  Alcotest.(check bool) "rescan misses again" true (Bufmgr.misses bm > 4)

(* ---------- b-tree ---------- *)

let mk_btree entries =
  let s = Storage.create () in
  let bm = Bufmgr.create () in
  Btree.build s bm ~name:"i" ~entries

let drain_bt scan =
  let rec go acc =
    match Btree.getnext scan with Some t -> go (t :: acc) | None -> List.rev acc
  in
  go []

let test_btree_eq_lookup () =
  let entries = Array.init 10_000 (fun i -> (i mod 100, (i / 100, i mod 100))) in
  let t = mk_btree entries in
  Alcotest.(check int) "entries" 10_000 (Btree.n_entries t);
  let hits = drain_bt (Btree.begin_eq t 37) in
  Alcotest.(check int) "100 duplicates found" 100 (List.length hits);
  Alcotest.(check bool) "all match" true
    (List.for_all (fun (_, slot) -> slot = 37) hits)

let test_btree_missing_key () =
  let entries = Array.init 100 (fun i -> (i * 2, (i, 0))) in
  let t = mk_btree entries in
  Alcotest.(check int) "odd key absent" 0 (List.length (drain_bt (Btree.begin_eq t 31)))

let test_btree_range () =
  let entries = Array.init 1000 (fun i -> (i, (i, 0))) in
  let t = mk_btree entries in
  let hits = drain_bt (Btree.begin_range t ~lo:(Some 100) ~hi:(Some 199)) in
  Alcotest.(check int) "inclusive range" 100 (List.length hits);
  let open_lo = drain_bt (Btree.begin_range t ~lo:None ~hi:(Some 9)) in
  Alcotest.(check int) "open low end" 10 (List.length open_lo);
  let open_hi = drain_bt (Btree.begin_range t ~lo:(Some 995) ~hi:None) in
  Alcotest.(check int) "open high end" 5 (List.length open_hi)

let test_btree_empty () =
  let t = mk_btree [||] in
  Alcotest.(check int) "empty eq" 0 (List.length (drain_bt (Btree.begin_eq t 1)));
  Alcotest.(check int) "empty range" 0
    (List.length (drain_bt (Btree.begin_range t ~lo:None ~hi:None)))

let prop_btree_vs_list =
  QCheck.Test.make ~name:"btree range scan matches naive filter" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 500) (int_bound 200))
        (pair (int_bound 220) (int_bound 220)))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let entries = Array.of_list (List.mapi (fun i k -> (k, (i, 0))) keys) in
      let t = mk_btree entries in
      let got = drain_bt (Btree.begin_range t ~lo:(Some lo) ~hi:(Some hi)) in
      let expected =
        List.filter (fun (k, _) -> k >= lo && k <= hi) (Array.to_list entries)
        |> List.map snd
      in
      List.sort compare got = List.sort compare expected)

let prop_btree_eq_vs_list =
  QCheck.Test.make ~name:"btree equality scan matches naive filter" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 500) (int_bound 50)) (int_bound 55))
    (fun (keys, probe) ->
      let entries = Array.of_list (List.mapi (fun i k -> (k, (i, 0))) keys) in
      let t = mk_btree entries in
      let got = drain_bt (Btree.begin_eq t probe) in
      let expected =
        List.filter (fun (k, _) -> k = probe) (Array.to_list entries)
        |> List.map snd
      in
      List.sort compare got = List.sort compare expected)

(* ---------- hash index ---------- *)

let mk_hash entries =
  let s = Storage.create () in
  let bm = Bufmgr.create () in
  Hashidx.build s bm ~name:"h" ~entries

let drain_hx scan =
  let rec go acc =
    match Hashidx.getnext scan with Some t -> go (t :: acc) | None -> List.rev acc
  in
  go []

let test_hash_eq () =
  let entries = Array.init 5_000 (fun i -> (i mod 50, (i, 0))) in
  let h = mk_hash entries in
  let hits = drain_hx (Hashidx.begin_eq h 7) in
  Alcotest.(check int) "100 duplicates" 100 (List.length hits)

let prop_hash_vs_list =
  QCheck.Test.make ~name:"hash equality scan matches naive filter" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 500) (int_bound 50)) (int_bound 55))
    (fun (keys, probe) ->
      let entries = Array.of_list (List.mapi (fun i k -> (k, (i, 0))) keys) in
      let h = mk_hash entries in
      let got = drain_hx (Hashidx.begin_eq h probe) in
      let expected =
        List.filter (fun (k, _) -> k = probe) (Array.to_list entries)
        |> List.map snd
      in
      List.sort compare got = List.sort compare expected)

(* ---------- expressions ---------- *)

let test_expr_eval () =
  let tuple = [| 10; 20; 0 |] in
  let e = Expr.Add (Expr.Col 0, Expr.Mul (Expr.Col 1, Expr.Const 3)) in
  Alcotest.(check int) "arith" 70 (Expr.eval e tuple);
  Alcotest.(check int) "div by zero is 0" 0
    (Expr.eval (Expr.Div (Expr.Col 0, Expr.Col 2)) tuple);
  Alcotest.(check bool) "between" true
    (Expr.eval_bool (Expr.col_between 1 15 25) tuple);
  Alcotest.(check bool) "in list" true
    (Expr.eval_bool (Expr.In_list (Expr.Col 0, [ 5; 10 ])) tuple);
  Alcotest.(check bool) "not" false
    (Expr.eval_bool (Expr.Not (Expr.Const 1)) tuple)

let test_expr_short_circuit () =
  (* And/Or short-circuit: the right side of And is skipped when the left
     is false. Observable through division (rhs would not matter anyway —
     instead check semantics truth table). *)
  let t = [| 1; 0 |] in
  let cases =
    [
      (Expr.And (Expr.Col 0, Expr.Col 1), 0);
      (Expr.And (Expr.Col 0, Expr.Col 0), 1);
      (Expr.Or (Expr.Col 1, Expr.Col 0), 1);
      (Expr.Or (Expr.Col 1, Expr.Col 1), 0);
    ]
  in
  List.iter
    (fun (e, expected) -> Alcotest.(check int) "bool op" expected (Expr.eval e t))
    cases

let test_qual_early_exit () =
  let quals = [ Expr.Const 0; Expr.Div (Expr.Const 1, Expr.Const 0) ] in
  (* second qual never matters; conjunction is false *)
  Alcotest.(check bool) "qual false" false (Expr.qual quals [||])

let test_project () =
  let out = Expr.project [ Expr.Col 1; Expr.Const 9 ] [| 5; 6 |] in
  Alcotest.(check (array int)) "project" [| 6; 9 |] out

let suite =
  [
    Alcotest.test_case "page roundtrip" `Quick test_page_roundtrip;
    Alcotest.test_case "page capacity" `Quick test_page_capacity;
    Alcotest.test_case "storage tids" `Quick test_storage_append_tids;
    Alcotest.test_case "heap scan all" `Quick test_heap_scan_all;
    Alcotest.test_case "heap fetch" `Quick test_heap_fetch;
    Alcotest.test_case "bufmgr eviction accounting" `Quick
      test_bufmgr_eviction_accounting;
    Alcotest.test_case "btree eq lookup" `Quick test_btree_eq_lookup;
    Alcotest.test_case "btree missing key" `Quick test_btree_missing_key;
    Alcotest.test_case "btree range" `Quick test_btree_range;
    Alcotest.test_case "btree empty" `Quick test_btree_empty;
    Alcotest.test_case "hash eq" `Quick test_hash_eq;
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr bool ops" `Quick test_expr_short_circuit;
    Alcotest.test_case "qual early exit" `Quick test_qual_early_exit;
    Alcotest.test_case "project" `Quick test_project;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_btree_vs_list; prop_btree_eq_vs_list; prop_hash_vs_list ]
