module F = Stc_fetch
module L = Stc_layout
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder

(* ---------- a tiny hand-built stream with known answers ---------- *)

(* One procedure, three blocks laid out contiguously:
     b0: 4 instrs, cond (taken -> b2 / fallthru -> b1)
     b1: 4 instrs, fall -> b2
     b2: 8 instrs, ret
   Addresses (orig): b0 @0, b1 @16, b2 @32. *)
let tiny () =
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let b0 = Builder.new_block b ~pid:p ~size:4 in
  let b1 = Builder.new_block b ~pid:p ~size:4 in
  let b2 = Builder.new_block b ~pid:p ~size:8 in
  Builder.set_term b b0 (Terminator.Cond { taken = b2; fallthru = b1 });
  Builder.set_term b b1 (Terminator.Fall b2);
  Builder.set_term b b2 Terminator.Ret;
  Builder.finish_proc b ~pid:p ~entry:b0 ~blocks:[| b0; b1; b2 |];
  (Builder.build b, b0, b1, b2)

let record blocks =
  let r = Recorder.create () in
  List.iter (Recorder.sink r) blocks;
  r

let test_ideal_single_window () =
  (* b0,b1,b2 = 16 sequential instructions starting at 0: exactly one
     16-wide aligned fetch (2 branches: the not-taken cond of b0, the
     final ret) *)
  let prog, b0, b1, b2 = tiny () in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record [ b0; b1; b2 ])) in
  let r = F.Engine.run view in
  Alcotest.(check int) "instrs" 16 r.F.Engine.instrs;
  Alcotest.(check int) "cycles" 1 r.F.Engine.cycles

let test_taken_branch_splits_fetch () =
  (* b0 jumps to b2 (skipping b1): two fetch cycles (the taken branch ends
     the first) *)
  let prog, b0, _b1, b2 = tiny () in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record [ b0; b2 ])) in
  let r = F.Engine.run view in
  Alcotest.(check int) "instrs" 12 r.F.Engine.instrs;
  Alcotest.(check int) "cycles" 2 r.F.Engine.cycles

let test_branch_limit () =
  (* Six 1-instruction cond blocks, all not-taken, in 6 sequential
     instructions: the 3-branch limit forces a second fetch cycle. *)
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let ids = Array.init 6 (fun _ -> Builder.new_block b ~pid:p ~size:1) in
  Array.iteri
    (fun i bid ->
      if i < 5 then
        Builder.set_term b bid
          (Terminator.Cond { taken = ids.(5); fallthru = ids.(i + 1) })
      else Builder.set_term b bid Terminator.Ret)
    ids;
  Builder.finish_proc b ~pid:p ~entry:ids.(0) ~blocks:ids;
  let prog = Builder.build b in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record (Array.to_list ids))) in
  let r = F.Engine.run view in
  Alcotest.(check int) "instrs" 6 r.F.Engine.instrs;
  Alcotest.(check int) "cycles" 2 r.F.Engine.cycles

let test_miss_penalty () =
  let prog, b0, b1, b2 = tiny () in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record [ b0; b1; b2 ])) in
  let icache = Stc_cachesim.Icache.create ~size_bytes:1024 () in
  let r = F.Engine.run ~icache view in
  (* one fetch cycle + one 5-cycle compulsory-miss penalty *)
  Alcotest.(check int) "cycles with penalty" 6 r.F.Engine.cycles;
  Alcotest.(check bool) "some miss" true (r.F.Engine.icache_misses > 0)

let test_window_alignment () =
  (* a block starting mid-window limits the first fetch *)
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let big = Builder.new_block b ~pid:p ~size:40 in
  Builder.set_term b big Terminator.Ret;
  Builder.finish_proc b ~pid:p ~entry:big ~blocks:[| big |];
  let prog = Builder.build b in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record [ big ])) in
  let r = F.Engine.run view in
  (* 40 instrs from address 0: 16 + 16 + 8 = 3 cycles *)
  Alcotest.(check int) "cycles" 3 r.F.Engine.cycles;
  Alcotest.(check int) "instrs" 40 r.F.Engine.instrs

(* ---------- conservation properties over the real pipeline ---------- *)

let fixture =
  lazy
    (let config =
       { Stc_core.Pipeline.quick_config with Stc_core.Pipeline.sf = 0.0003 }
     in
     Stc_core.Pipeline.run ~config ())

let test_instr_conservation () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
  let expected = F.View.total_instrs view in
  List.iter
    (fun (icache, tc) ->
      let r =
        F.Engine.run ?icache ?trace_cache:tc view
      in
      Alcotest.(check int) "every instruction fetched exactly once" expected
        r.F.Engine.instrs;
      Alcotest.(check bool) "bandwidth <= 16" true (F.Engine.bandwidth r <= 16.0);
      Alcotest.(check bool) "cycles >= instrs/16" true
        (r.F.Engine.cycles * 16 >= r.F.Engine.instrs))
    [
      (None, None);
      (Some (Stc_cachesim.Icache.create ~size_bytes:8192 ()), None);
      ( Some (Stc_cachesim.Icache.create ~size_bytes:8192 ()),
        Some (F.Tracecache.create ()) );
    ]

let test_penalty_only_adds_cycles () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
  let ideal = F.Engine.run view in
  let icache = Stc_cachesim.Icache.create ~size_bytes:8192 () in
  let real = F.Engine.run ~icache view in
  Alcotest.(check int) "same fetch cycles" ideal.F.Engine.fetch_cycles
    real.F.Engine.fetch_cycles;
  Alcotest.(check bool) "penalties only add" true
    (real.F.Engine.cycles >= ideal.F.Engine.cycles)

let test_bigger_cache_fewer_misses () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
  let misses size =
    let icache = Stc_cachesim.Icache.create ~size_bytes:size () in
    (F.Engine.run ~icache view).F.Engine.icache_misses
  in
  let m8 = misses 8192 and m64 = misses 65536 in
  Alcotest.(check bool) "64KB <= 8KB misses" true (m64 <= m8)

let test_trace_cache_improves () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
  let without =
    F.Engine.run
      ~icache:(Stc_cachesim.Icache.create ~size_bytes:16384 ())
      view
  in
  let with_tc =
    F.Engine.run
      ~icache:(Stc_cachesim.Icache.create ~size_bytes:16384 ())
      ~trace_cache:(F.Tracecache.create ()) view
  in
  Alcotest.(check bool) "trace cache helps bandwidth" true
    (F.Engine.bandwidth with_tc > F.Engine.bandwidth without);
  Alcotest.(check bool) "some trace cache hits" true
    (with_tc.F.Engine.tc_hits > 0)

let test_tc_build_trace_deterministic () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
  let pos = { F.View.idx = 0; off = 0 } in
  let a = F.Tracecache.build_trace view pos in
  let b = F.Tracecache.build_trace view pos in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "within limits" true
    (a.F.Tracecache.n_instrs <= 16 && a.F.Tracecache.n_branches <= 3)

(* ---------- packed view: agreement with the naive View ---------- *)

(* Random programs: skeletons compiled and auto-walked (the same recipe
   as test_trace), paired with a random permutation layout. *)
module Skeleton = Stc_trace.Skeleton
module Bytecode = Stc_trace.Bytecode
module Walker = Stc_trace.Walker

let gen_skeleton : Skeleton.t QCheck.Gen.t =
  let open QCheck.Gen in
  let site_counter = ref 0 in
  let fresh_site () =
    incr site_counter;
    Printf.sprintf "pk%d" !site_counter
  in
  let rec gen_stmt depth =
    let base =
      [
        (3, map (fun n -> Skeleton.straight (1 + n)) (int_bound 6));
        ( 1,
          let* p = float_range 0.05 0.5 in
          return
            (Skeleton.if_ ~p (fresh_site ())
               [ Skeleton.straight 2; Skeleton.return ]) );
      ]
    in
    let nested =
      if depth <= 0 then []
      else
        [
          ( 2,
            let* p = float_range 0.05 0.95 in
            let* body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            return (Skeleton.if_ ~p (fresh_site ()) body) );
          ( 1,
            let* p = float_range 0.05 0.6 in
            let* body = list_size (int_range 1 3) (gen_stmt (depth - 1)) in
            return (Skeleton.while_ ~p (fresh_site ()) body) );
        ]
    in
    frequency (base @ nested)
  in
  list_size (int_range 1 5) (gen_stmt 2)

(* Compile and walk a skeleton into a (program, recorded trace) pair. *)
let trace_of_skeleton skel =
  let b = Builder.create () in
  let pid = Builder.declare_proc b ~name:"auto" ~subsystem:Stc_cfg.Proc.Other in
  let code_auto = Bytecode.compile b ~pid ~resolve:(Builder.pid_of_name b) skel in
  let prog = Builder.build b in
  let rec_ = Recorder.create () in
  let code = Array.make 1 (Some code_auto) in
  let w =
    Walker.create ~program:prog ~code ~seed:11L ~sink:(Recorder.sink rec_)
  in
  for _ = 1 to 3 do
    Walker.auto_run w pid
  done;
  (prog, rec_)

let random_layout prog seed =
  let n = Array.length prog.Stc_cfg.Program.blocks in
  let order = Array.init n (fun i -> i) in
  let st = Random.State.make [| seed |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  L.Layout.of_block_order prog ~name:"shuffled" order

let prop_packed_agrees_with_view =
  QCheck.Test.make ~name:"packed view agrees with naive view" ~count:60
    QCheck.(pair (make gen_skeleton) (int_bound 10_000))
    (fun (skel, layout_seed) ->
      let prog, rec_ = trace_of_skeleton skel in
      List.iter
        (fun layout ->
          let view =
            F.View.create prog layout (Stc_trace.Source.of_recorder rec_)
          in
          (* both compilation routes must agree with the view *)
          List.iter
            (fun packed ->
              let len = F.View.length view in
              if F.Packed.length packed <> len then
                QCheck.Test.fail_report "length mismatch";
              for i = 0 to len - 1 do
                if F.Packed.block_addr packed i <> F.View.block_addr view i
                then QCheck.Test.fail_reportf "addr mismatch at %d" i;
                if F.Packed.block_size packed i <> F.View.block_size view i
                then QCheck.Test.fail_reportf "size mismatch at %d" i;
                if F.Packed.taken packed i <> F.View.taken view i then
                  QCheck.Test.fail_reportf "taken mismatch at %d" i;
                if F.Packed.has_branch packed i <> F.View.has_branch view i
                then QCheck.Test.fail_reportf "branch mismatch at %d" i;
                if F.Packed.is_cond packed i <> F.View.is_cond view i then
                  QCheck.Test.fail_reportf "cond mismatch at %d" i
              done;
              if F.Packed.total_instrs packed <> F.View.total_instrs view then
                QCheck.Test.fail_report "total_instrs mismatch";
              if F.Packed.taken_branches packed <> F.View.taken_branches view
              then QCheck.Test.fail_report "taken_branches mismatch")
            [
              F.View.pack view;
              F.Packed.compile prog layout
                (Stc_trace.Source.of_recorder rec_);
            ])
        [ L.Original.layout prog; random_layout prog layout_seed ];
      true)

(* Packed and naive replay must be result-identical — engine results and
   i-cache statistics — on every hardware variant of Table 3/4. *)
let test_packed_naive_engine_equal () =
  let pl = Lazy.force fixture in
  let prog = pl.Stc_core.Pipeline.program in
  List.iter
    (fun layout ->
      let view = F.View.create prog layout (Stc_core.Pipeline.test_source pl) in
      let packed = F.View.pack view in
      let variants =
        [
          ("ideal", None, false);
          ("direct", Some (fun () -> Stc_cachesim.Icache.create ~size_bytes:8192 ()), false);
          ("2-way", Some (fun () -> Stc_cachesim.Icache.create ~assoc:2 ~size_bytes:8192 ()), false);
          ("victim", Some (fun () -> Stc_cachesim.Icache.create ~victim_lines:16 ~size_bytes:8192 ()), false);
          ("trace-cache", Some (fun () -> Stc_cachesim.Icache.create ~size_bytes:8192 ()), true);
        ]
      in
      List.iter
        (fun (name, mk_icache, with_tc) ->
          let ic_naive = Option.map (fun mk -> mk ()) mk_icache in
          let ic_packed = Option.map (fun mk -> mk ()) mk_icache in
          let tc_naive = if with_tc then Some (F.Tracecache.create ()) else None in
          let tc_packed = if with_tc then Some (F.Tracecache.create ()) else None in
          let mk_pred () =
            { F.Engine.pred = F.Predictor.create (F.Predictor.Bimodal 256);
              redirect_penalty = 3 }
          in
          let naive =
            F.Engine.run_naive ?icache:ic_naive ?trace_cache:tc_naive
              ~prediction:(mk_pred ()) view
          in
          let packed_r =
            F.Engine.run_packed ?icache:ic_packed ?trace_cache:tc_packed
              ~prediction:(mk_pred ()) packed
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: results equal" layout.L.Layout.name name)
            true (naive = packed_r);
          (match (ic_naive, ic_packed) with
          | Some a, Some b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: icache stats equal" layout.L.Layout.name
                 name)
              true
              (Stc_cachesim.Icache.stats a = Stc_cachesim.Icache.stats b)
          | _ -> ());
          match (tc_naive, tc_packed) with
          | Some a, Some b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: tc stats equal" layout.L.Layout.name name)
              true
              (F.Tracecache.lookups a = F.Tracecache.lookups b
              && F.Tracecache.hits a = F.Tracecache.hits b)
          | _ -> ())
        variants)
    [
      L.Original.layout prog;
      (match L.Algo.find "P&H" with
      | Ok a ->
        L.Algo.layout a pl.Stc_core.Pipeline.profile
          (L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 ())
      | Error msg -> Alcotest.fail msg);
    ]

let test_engine_run_equals_run_packed () =
  (* the convenience [run view] must be the packed path, byte for byte *)
  let prog, b0, b1, b2 = tiny () in
  let layout = L.Original.layout prog in
  let view = F.View.create prog layout (Stc_trace.Source.of_recorder (record [ b0; b1; b2; b0; b2 ])) in
  let a = F.Engine.run view in
  let b = F.Engine.run_packed (F.View.pack view) in
  Alcotest.(check bool) "equal" true (a = b)

let suite =
  [
    Alcotest.test_case "ideal single window" `Quick test_ideal_single_window;
    Alcotest.test_case "taken branch splits fetch" `Quick
      test_taken_branch_splits_fetch;
    Alcotest.test_case "3-branch limit" `Quick test_branch_limit;
    Alcotest.test_case "miss penalty" `Quick test_miss_penalty;
    Alcotest.test_case "window alignment" `Quick test_window_alignment;
    Alcotest.test_case "instruction conservation" `Quick test_instr_conservation;
    Alcotest.test_case "penalty only adds cycles" `Quick
      test_penalty_only_adds_cycles;
    Alcotest.test_case "bigger cache fewer misses" `Quick
      test_bigger_cache_fewer_misses;
    Alcotest.test_case "trace cache improves bandwidth" `Quick
      test_trace_cache_improves;
    Alcotest.test_case "trace construction deterministic" `Quick
      test_tc_build_trace_deterministic;
    Alcotest.test_case "packed = naive engine (5 variants)" `Quick
      test_packed_naive_engine_equal;
    Alcotest.test_case "run = run_packed" `Quick test_engine_run_equals_run_packed;
    QCheck_alcotest.to_alcotest prop_packed_agrees_with_view;
  ]
