module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline

let pl =
  lazy
    (Pipeline.run
       ~config:
         { Pipeline.quick_config with Pipeline.sf = 0.0004 }
       ())

let test_pipeline_smoke () =
  let pl = Lazy.force pl in
  Alcotest.(check bool) "training nonempty" true
    (Stc_trace.Recorder.length pl.Pipeline.training > 10_000);
  Alcotest.(check bool) "test nonempty" true
    (Stc_trace.Recorder.length pl.Pipeline.test > 10_000);
  Alcotest.(check int) "training jobs marked" 5
    (List.length (Stc_trace.Recorder.marks pl.Pipeline.training));
  Alcotest.(check int) "test jobs marked" 20
    (List.length (Stc_trace.Recorder.marks pl.Pipeline.test))

let test_table1_consistent () =
  let pl = Lazy.force pl in
  let fp = E.table1 pl in
  let sc = Stc_cfg.Program.static_counts pl.Pipeline.program in
  Alcotest.(check int) "totals from program" sc.Stc_cfg.Program.n_blocks
    fp.Stc_profile.Footprint.blocks_total;
  Alcotest.(check bool) "executed <= total" true
    (fp.Stc_profile.Footprint.blocks_executed
    <= fp.Stc_profile.Footprint.blocks_total);
  Alcotest.(check bool) "something executed" true
    (fp.Stc_profile.Footprint.procs_executed > 50)

let test_figure2_monotone () =
  let pl = Lazy.force pl in
  let pts = E.figure2 ~max_blocks:2000 ~step:100 pl in
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "monotone" true (b >= a -. 1e-9);
      check rest
    | _ -> ()
  in
  check pts;
  Alcotest.(check bool) "last below or equal 1" true
    (snd (List.nth pts (List.length pts - 1)) <= 1.0 +. 1e-9)

let test_table2_shares_sum () =
  let pl = Lazy.force pl in
  let d = E.table2 pl in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 d.Stc_profile.Determinism.rows in
  Alcotest.(check (float 0.1)) "static sums to 100"
    100.0 (sum (fun r -> r.Stc_profile.Determinism.static_pct));
  Alcotest.(check (float 0.1)) "dynamic sums to 100"
    100.0 (sum (fun r -> r.Stc_profile.Determinism.dynamic_pct))

let small_grid =
  { E.default_sim_config with E.grid = [ (8, [ 2 ]); (16, [ 4 ]) ] }

let test_simulate_shapes () =
  let pl = Lazy.force pl in
  let rows = E.simulate ~config:small_grid pl in
  let get layout cache_kb variant =
    match
      List.find_opt
        (fun (r : E.row) ->
          String.equal r.E.layout layout
          && r.E.cache_kb = cache_kb && r.E.variant = variant)
        rows
    with
    | Some r -> r
    | None -> Alcotest.failf "row %s/%d missing" layout cache_kb
  in
  (* every layout beats the original at both sizes *)
  List.iter
    (fun cache_kb ->
      let orig = get "orig" cache_kb E.Direct in
      List.iter
        (fun layout ->
          let r = get layout cache_kb E.Direct in
          Alcotest.(check bool)
            (Printf.sprintf "%s misses <= orig at %dKB" layout cache_kb)
            true
            (r.E.miss_pct <= orig.E.miss_pct))
        [ "P&H"; "Torr"; "auto"; "ops" ];
      (* bandwidth improves for STC *)
      let ops = get "ops" cache_kb E.Direct in
      Alcotest.(check bool) "ops bandwidth better" true
        (ops.E.bandwidth > orig.E.bandwidth))
    [ 8; 16 ];
  (* trace cache on top of ops beats both alone *)
  let tc = get "orig" 16 E.Trace_cache in
  let tc_ops = get "ops" 16 E.Trace_cache in
  let ops = get "ops" 16 E.Direct in
  Alcotest.(check bool) "tc+ops >= tc" true (tc_ops.E.bandwidth >= tc.E.bandwidth);
  Alcotest.(check bool) "tc+ops >= ops" true (tc_ops.E.bandwidth >= ops.E.bandwidth);
  (* ideal rows have no misses *)
  List.iter
    (fun (r : E.row) ->
      if r.E.variant = E.Ideal then
        Alcotest.(check (float 1e-9)) "ideal has no misses" 0.0 r.E.miss_pct)
    rows

let test_sequentiality_improves () =
  let pl = Lazy.force pl in
  let rows = E.simulate ~config:small_grid pl in
  let ibt layout =
    match
      List.find_opt
        (fun (r : E.row) -> String.equal r.E.layout layout && r.E.variant = E.Ideal)
        rows
    with
    | Some r -> r.E.instrs_between_taken
    | None -> Alcotest.failf "no ideal row for %s" layout
  in
  Alcotest.(check bool) "ops roughly doubles the run length" true
    (ibt "ops" > 1.5 *. ibt "orig")

let test_ablation_rows () =
  let pl = Lazy.force pl in
  let rows =
    E.ablation ~cache_kb:8 ~exec_thresholds:[ 5; 100 ]
      ~branch_thresholds:[ 0.3 ] ~cfa_kbs:[ 2; 4 ] pl
  in
  Alcotest.(check int) "2x1x2 rows" 4 (List.length rows);
  List.iter
    (fun (r : E.ablation_row) ->
      Alcotest.(check bool) "sane bandwidth" true
        (r.E.a_bandwidth > 0.5 && r.E.a_bandwidth <= 16.0))
    rows

let test_determinism_of_pipeline () =
  (* same config -> identical traces *)
  let config = { Pipeline.quick_config with Pipeline.sf = 0.0003 } in
  let a = Pipeline.run ~config () and b = Pipeline.run ~config () in
  Alcotest.(check int64) "training equal"
    (Stc_trace.Recorder.hash a.Pipeline.training)
    (Stc_trace.Recorder.hash b.Pipeline.training);
  Alcotest.(check int64) "test equal"
    (Stc_trace.Recorder.hash a.Pipeline.test)
    (Stc_trace.Recorder.hash b.Pipeline.test)

let suite =
  [
    Alcotest.test_case "pipeline smoke" `Quick test_pipeline_smoke;
    Alcotest.test_case "table1 consistent" `Quick test_table1_consistent;
    Alcotest.test_case "figure2 monotone" `Quick test_figure2_monotone;
    Alcotest.test_case "table2 shares sum" `Quick test_table2_shares_sum;
    Alcotest.test_case "simulate shapes" `Slow test_simulate_shapes;
    Alcotest.test_case "sequentiality improves" `Slow test_sequentiality_improves;
    Alcotest.test_case "ablation rows" `Slow test_ablation_rows;
    Alcotest.test_case "pipeline deterministic" `Slow test_determinism_of_pipeline;
  ]
