module L = Stc_layout
module P = Stc_profile
module Program = Stc_cfg.Program
module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator

(* ---------- Figure 3 golden test ---------- *)

let test_figure3 () =
  let _prog, profile, seeds = Stc_core.Figure3.graph () in
  let seqs =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = 4; branch_threshold = 0.4 }
      ~seeds
  in
  let got = List.map (List.map Stc_core.Figure3.label) seqs in
  Alcotest.(check (list (list string)))
    "sequences" Stc_core.Figure3.expected_sequences got

let test_figure3_thresholds_matter () =
  let _prog, profile, seeds = Stc_core.Figure3.graph () in
  (* With a permissive branch threshold the main trace absorbs A5 via the
     noted transition... it still cannot, since A2's best successor is A3;
     but B1 (weight 1) enters no sequence even at branch threshold 0. *)
  let seqs =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = 1; branch_threshold = 0.0 }
      ~seeds
  in
  let all = List.concat_map (List.map Stc_core.Figure3.label) seqs in
  Alcotest.(check bool) "B1 placed at exec threshold 1" true
    (List.mem "B1" all);
  let seqs4 =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = 4; branch_threshold = 0.0 }
      ~seeds
  in
  let all4 = List.concat_map (List.map Stc_core.Figure3.label) seqs4 in
  Alcotest.(check bool) "B1 excluded by exec threshold 4" false
    (List.mem "B1" all4);
  Alcotest.(check bool) "A6 excluded by exec threshold 4" false
    (List.mem "A6" all4)

(* ---------- shared fixtures: a profiled random program ---------- *)

let fixture =
  lazy
    (let config =
       {
         Stc_core.Pipeline.quick_config with
         Stc_core.Pipeline.sf = 0.0003;
       }
     in
     Stc_core.Pipeline.run ~config ())

let profile () = (Lazy.force fixture).Stc_core.Pipeline.profile

let program () = (Lazy.force fixture).Stc_core.Pipeline.program

let check_valid prog layout =
  match L.Layout.validate layout prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" layout.L.Layout.name e

let test_original_valid () =
  let prog = program () in
  check_valid prog (L.Original.layout prog)

let test_original_is_textual () =
  let prog = program () in
  let layout = L.Original.layout prog in
  (* within each procedure, textual successors are adjacent *)
  Array.iter
    (fun p ->
      let blocks = p.Stc_cfg.Proc.blocks in
      for i = 0 to Array.length blocks - 2 do
        let a = blocks.(i) and b = blocks.(i + 1) in
        if not (L.Layout.is_sequential layout prog ~src:a ~dst:b) then
          Alcotest.failf "proc %s: blocks %d,%d not adjacent"
            p.Stc_cfg.Proc.name a b
      done)
    prog.Program.procs

let registry_algo name =
  match L.Algo.find name with Ok a -> a | Error msg -> Alcotest.fail msg

let ph_layout profile =
  L.Algo.layout (registry_algo "P&H") profile
    (L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 ())

let test_ph_valid () = check_valid (program ()) (ph_layout (profile ()))

let test_ph_fluff_last () =
  let profile = profile () in
  let layout = ph_layout profile in
  let counts = P.Profile.counts profile in
  (* every never-executed block sits above every executed block *)
  let max_hot = ref 0 and min_cold = ref max_int in
  Array.iteri
    (fun bid c ->
      let a = L.Layout.address layout bid in
      if c > 0 then max_hot := max !max_hot a
      else min_cold := min !min_cold a)
    counts;
  Alcotest.(check bool) "fluff after hot code" true (!min_cold > !max_hot)

let stc_params ~cache_bytes ~cfa_bytes =
  L.Stc.params ~exec_threshold:10 ~branch_threshold:0.3 ~cache_bytes ~cfa_bytes ()

let test_stc_valid () =
  let prog = program () and profile = profile () in
  List.iter
    (fun (cache_bytes, cfa_bytes) ->
      let params = stc_params ~cache_bytes ~cfa_bytes in
      check_valid prog
        (L.Stc.layout profile ~name:"ops" ~params
           ~seeds:(L.Stc.ops_seeds profile));
      check_valid prog
        (L.Stc.layout profile ~name:"auto" ~params
           ~seeds:(L.Stc.auto_seeds profile)))
    [ (8192, 2048); (16384, 4096); (16384, 0); (65536, 16384) ]

let test_torrellas_valid () =
  let prog = program () and profile = profile () in
  let params = stc_params ~cache_bytes:16384 ~cfa_bytes:4096 in
  check_valid prog (L.Algo.layout (registry_algo "Torr") profile params)

(* CFA exclusivity: only first-pass (CFA) code may live below cfa_bytes in
   cache-offset space, except cold filler allowed in later logical
   caches. We verify a weaker but meaningful invariant: all blocks of the
   CFA sequences map to cache offsets < cfa_bytes of logical cache 0. *)
let test_stc_cfa_exclusive () =
  let prog = program () and profile = profile () in
  let cache_bytes = 16384 and cfa_bytes = 4096 in
  let params = stc_params ~cache_bytes ~cfa_bytes in
  let layout =
    L.Stc.layout profile ~name:"ops" ~params ~seeds:(L.Stc.ops_seeds profile)
  in
  (* hottest block must live in the CFA region of the first logical cache *)
  let counts = P.Profile.counts profile in
  let hottest = ref 0 in
  Array.iteri (fun bid c -> if c > counts.(!hottest) then hottest := bid) counts;
  let addr = L.Layout.address layout !hottest in
  Alcotest.(check bool) "hottest block inside the CFA" true
    (addr < cfa_bytes);
  ignore prog

let test_seqbuild_no_duplicates () =
  let profile = profile () in
  let seqs =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = 5; branch_threshold = 0.2 }
      ~seeds:(L.Stc.auto_seeds profile)
  in
  let seen = Hashtbl.create 1024 in
  List.iter
    (List.iter (fun b ->
         if Hashtbl.mem seen b then
           Alcotest.failf "block %d appears in two sequences" b;
         Hashtbl.replace seen b ()))
    seqs

let test_seqbuild_respects_exec_threshold () =
  let profile = profile () in
  let counts = P.Profile.counts profile in
  let threshold = 100 in
  let seqs =
    L.Seqbuild.build profile
      ~params:{ L.Seqbuild.exec_threshold = threshold; branch_threshold = 0.2 }
      ~seeds:(L.Stc.auto_seeds profile)
  in
  List.iter
    (List.iter (fun b ->
         if counts.(b) < threshold then
           Alcotest.failf "block %d (count %d) below the exec threshold" b
             counts.(b)))
    seqs

let test_mapping_skips_cfa_windows () =
  (* hand-rolled tiny program: 40 blocks of 8 instructions (32 bytes) *)
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"p" ~subsystem:Stc_cfg.Proc.Other in
  let blocks = Array.init 40 (fun _ -> Builder.new_block b ~pid:p ~size:8) in
  Array.iteri
    (fun i bid ->
      if i < 39 then Builder.set_term b bid (Terminator.Fall blocks.(i + 1))
      else Builder.set_term b bid Terminator.Ret)
    blocks;
  Builder.finish_proc b ~pid:p ~entry:blocks.(0) ~blocks;
  let prog = Builder.build b in
  let cache_bytes = 256 and cfa_bytes = 64 in
  (* CFA: blocks 0,1 (64 bytes); others as one long sequence; no cold *)
  let cfa = [ [ blocks.(0); blocks.(1) ] ] in
  let others = [ Array.to_list (Array.sub blocks 2 30) ] in
  let cold = Array.to_list (Array.sub blocks 32 8) in
  let layout =
    L.Mapping.map prog ~name:"m" ~cache_bytes ~cfa_bytes ~cfa_seqs:cfa
      ~other_seqs:others ~cold
  in
  check_valid prog layout;
  (* no non-CFA sequence block may occupy offsets [0, 64) of any logical
     cache *)
  List.iter
    (fun bid ->
      let a = L.Layout.address layout bid in
      if a mod cache_bytes < cfa_bytes then
        Alcotest.failf "sequence block %d in a CFA window (addr %d)" bid a)
    (List.concat others);
  (* cold code is allowed there, and the windows of later logical caches
     should indeed receive some cold code (hole filling) *)
  let cold_in_windows =
    List.exists
      (fun bid ->
        let a = L.Layout.address layout bid in
        a mod cache_bytes < cfa_bytes && a >= cache_bytes)
      cold
  in
  Alcotest.(check bool) "cold code fills the windows" true cold_in_windows

let prop_layout_permutation =
  QCheck.Test.make ~name:"random order layouts are valid" ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let prog = program () in
      let n = Array.length prog.Program.blocks in
      let rng = Stc_util.Rng.create (Int64.of_int seed) in
      let order = Array.init n (fun i -> i) in
      Stc_util.Rng.shuffle rng order;
      let layout = L.Layout.of_block_order prog ~name:"rand" order in
      match L.Layout.validate layout prog with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "figure 3 worked example" `Quick test_figure3;
    Alcotest.test_case "figure 3 thresholds" `Quick test_figure3_thresholds_matter;
    Alcotest.test_case "original valid" `Quick test_original_valid;
    Alcotest.test_case "original is textual" `Quick test_original_is_textual;
    Alcotest.test_case "P&H valid" `Quick test_ph_valid;
    Alcotest.test_case "P&H fluff last" `Quick test_ph_fluff_last;
    Alcotest.test_case "STC valid across grid" `Quick test_stc_valid;
    Alcotest.test_case "Torrellas valid" `Quick test_torrellas_valid;
    Alcotest.test_case "hottest block in CFA" `Quick test_stc_cfa_exclusive;
    Alcotest.test_case "seqbuild no duplicates" `Quick test_seqbuild_no_duplicates;
    Alcotest.test_case "seqbuild exec threshold" `Quick
      test_seqbuild_respects_exec_threshold;
    Alcotest.test_case "mapping CFA windows" `Quick test_mapping_skips_cfa_windows;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_layout_permutation ]
