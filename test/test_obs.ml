module Obs = Stc_obs
module Json = Stc_obs.Json
module Registry = Stc_obs.Registry
module Counter = Stc_obs.Metric.Counter
module Gauge = Stc_obs.Metric.Gauge
module Histogram = Stc_obs.Metric.Histogram
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline

let contains = Astring_like.contains

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.Str "a \"quoted\"\nline\twith\\stuff";
      Json.List [ Json.Int 1; Json.Str "x"; Json.List [] ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Float 0.25 ]) ]);
          ("empty", Json.Obj []);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (Json.of_string s = v))
    samples;
  Alcotest.(check bool) "whitespace tolerated" true
    (Json.of_string " { \"a\" : [ 1 , 2 ] } "
    = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ])

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Failure _ -> ()
      | v ->
        Alcotest.failf "parsed garbage %S as %s" s (Json.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "nul" ]

(* ---------- registry ---------- *)

let test_registry_roundtrip () =
  let reg = Registry.create ~clock:(fun () -> 0.0) () in
  let c = Registry.counter reg "sim.runs" in
  Counter.add c 7;
  Alcotest.(check bool) "interned" true (Registry.counter reg "sim.runs" == c);
  Gauge.set (Registry.gauge reg "sim.sf") 0.5;
  let free = Counter.make "hits" in
  Counter.incr free;
  Registry.attach_counter ~prefix:"icache." reg free;
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Stc_obs.Registry: duplicate metric \"icache.hits\"")
    (fun () -> Registry.attach_counter ~prefix:"icache." reg (Counter.make "hits"));
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Stc_obs.Registry: \"sim.runs\" is not a gauge")
    (fun () -> ignore (Registry.gauge reg "sim.runs"));
  (* export -> parse -> values survive *)
  let records = Json.lines (Obs.Export.to_jsonl reg) in
  let find name =
    List.find_opt
      (fun r -> Json.member "name" r = Some (Json.Str name))
      records
  in
  (match find "sim.runs" with
  | Some r -> Alcotest.(check bool) "counter value" true (Json.member "value" r = Some (Json.Int 7))
  | None -> Alcotest.fail "sim.runs not exported");
  (match find "icache.hits" with
  | Some r -> Alcotest.(check bool) "attached value" true (Json.member "value" r = Some (Json.Int 1))
  | None -> Alcotest.fail "icache.hits not exported");
  match find "sim.sf" with
  | Some r ->
    Alcotest.(check bool) "gauge value" true
      (Json.member "value" r = Some (Json.Float 0.5))
  | None -> Alcotest.fail "sim.sf not exported"

let test_histogram_buckets () =
  let h = Histogram.make "reuse" in
  List.iter (Histogram.add h ?weight:None) [ 0; 1; 2; 3; 4; 7; 8 ];
  (* buckets: [0,1)->1  [1,2)->1  [2,4)->2  [4,8)->2  [8,16)->1 *)
  Alcotest.(check (list (triple int int int)))
    "bucket boundaries"
    [ (0, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 2); (8, 16, 1) ]
    (Histogram.buckets h);
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check (float 1e-9)) "mass below 2" (2.0 /. 7.0)
    (Histogram.mass_below h 2)

(* ---------- spans ---------- *)

let test_span_nesting () =
  let t = ref 0.0 in
  let reg = Registry.create ~clock:(fun () -> !t) () in
  let tick d = t := !t +. d in
  Registry.span reg "build" (fun () ->
      tick 0.5;
      Registry.span reg "inner" (fun () -> tick 0.5);
      Registry.span reg "inner" (fun () -> tick 0.5);
      Registry.span reg "other" (fun () ->
          Registry.span reg "deep" (fun () -> tick 0.25));
      tick 0.25);
  (try
     Registry.span reg "failing" (fun () ->
         tick 1.0;
         failwith "boom")
   with Failure _ -> ());
  let spans = Registry.spans reg in
  let find path =
    match
      List.find_opt (fun i -> String.equal i.Registry.Span.path path) spans
    with
    | Some i -> i
    | None -> Alcotest.failf "span %s missing" path
  in
  Alcotest.(check int) "preorder count" 5 (List.length spans);
  Alcotest.(check (list string))
    "preorder paths"
    [ "build"; "build/inner"; "build/other"; "build/other/deep"; "failing" ]
    (List.map (fun i -> i.Registry.Span.path) spans);
  let check_span path calls seconds depth =
    let i = find path in
    Alcotest.(check int) (path ^ " calls") calls i.Registry.Span.calls;
    Alcotest.(check (float 1e-9)) (path ^ " seconds") seconds i.Registry.Span.seconds;
    Alcotest.(check int) (path ^ " depth") depth i.Registry.Span.depth
  in
  check_span "build" 1 2.0 0;
  check_span "build/inner" 2 1.0 1;
  check_span "build/other" 1 0.25 1;
  check_span "build/other/deep" 1 0.25 2;
  (* the exception-unwound span still accumulated its time *)
  check_span "failing" 1 1.0 0

(* ---------- golden export ---------- *)

let test_export_golden () =
  let t = ref 0.0 in
  let reg = Registry.create ~clock:(fun () -> !t) () in
  Counter.add (Registry.counter reg "a.hits") 3;
  Gauge.set (Registry.gauge reg "g") 1.5;
  let h = Registry.histogram reg "h" in
  Histogram.add h 0;
  Histogram.add h ~weight:2 10;
  Registry.span reg "build" (fun () ->
      t := !t +. 0.5;
      Registry.span reg "inner" (fun () -> t := !t +. 0.5);
      Registry.span reg "inner" (fun () -> t := !t +. 0.5);
      t := !t +. 0.5);
  Registry.event reg ~kind:"cell"
    [ ("layout", Json.Str "ops"); ("miss_pct", Json.Float 1.25) ];
  let expected =
    String.concat "\n"
      [
        {|{"type":"meta","schema":3}|};
        {|{"type":"counter","name":"a.hits","value":3}|};
        {|{"type":"gauge","name":"g","value":1.5}|};
        (* quantiles are bucket lower bounds: the weighted median of
           {0, 10, 10} lands in the [8,16) bucket *)
        {|{"type":"histo","name":"h","total":3,"p50":8,"p90":8,"p99":8,"buckets":[[0,1,1],[8,16,2]]}|};
        {|{"type":"span","path":"build","depth":0,"calls":1,"seconds":2}|};
        {|{"type":"span","path":"build/inner","depth":1,"calls":2,"seconds":1}|};
        {|{"type":"event","kind":"cell","layout":"ops","miss_pct":1.25}|};
        "";
      ]
  in
  Alcotest.(check string) "golden JSONL" expected (Obs.Export.to_jsonl reg);
  (* the summary renderer accepts the same registry *)
  let summary = Obs.Export.summary reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("summary mentions " ^ needle) true
        (contains summary needle))
    [ "a.hits"; "build"; "inner"; "cell"; "miss_pct" ]

(* ---------- merge ---------- *)

(* A random registry workload: kind-namespaced names (c./g./h./s.) so an
   operation never hits a same-named metric of another kind. *)
type mop =
  | Add_counter of int * int
  | Set_gauge of int * float
  | Add_histo of int * int * int  (* name idx, value, weight *)
  | Emit_event of int
  | Time_span of int

let apply_mop reg = function
  | Add_counter (i, v) ->
    Counter.add (Registry.counter reg (Printf.sprintf "c.%d" i)) v
  | Set_gauge (i, v) -> Gauge.set (Registry.gauge reg (Printf.sprintf "g.%d" i)) v
  | Add_histo (i, v, w) ->
    Histogram.add (Registry.histogram reg (Printf.sprintf "h.%d" i)) ~weight:w v
  | Emit_event i -> Registry.event reg ~kind:"e" [ ("i", Json.Int i) ]
  | Time_span i ->
    Registry.span reg (Printf.sprintf "s.%d" i) (fun () -> ())

let mop_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun i v -> Add_counter (i, v)) (int_bound 2) (int_bound 100);
        map2
          (fun i v -> Set_gauge (i, float_of_int v))
          (int_bound 1) (int_bound 50);
        map3
          (fun i v w -> Add_histo (i, v, 1 + w))
          (int_bound 1) (int_bound 1000) (int_bound 3);
        map (fun i -> Emit_event i) (int_bound 9);
        map (fun i -> Time_span i) (int_bound 1);
      ])

let mop_str = function
  | Add_counter (i, v) -> Printf.sprintf "c.%d+=%d" i v
  | Set_gauge (i, v) -> Printf.sprintf "g.%d:=%g" i v
  | Add_histo (i, v, w) -> Printf.sprintf "h.%d<-%d(w%d)" i v w
  | Emit_event i -> Printf.sprintf "e(%d)" i
  | Time_span i -> Printf.sprintf "s.%d" i

let zero_clock_reg () = Registry.create ~clock:(fun () -> 0.0) ()

let strip_seconds records =
  List.map
    (function
      | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "seconds") fields)
      | v -> v)
    records

let export reg = strip_seconds (Json.lines (Obs.Export.to_jsonl reg))

(* Merging N shards (in order) must be indistinguishable from applying
   every shard's operations sequentially to one registry: counters sum,
   gauges keep the last write, histogram buckets union, span calls sum,
   events concatenate in shard order. *)
let prop_merge_sequential =
  QCheck.Test.make ~name:"Registry.merge = sequential accumulation" ~count:200
    (QCheck.make
       ~print:(fun shards ->
         String.concat " | "
           (List.map
              (fun ops -> String.concat "," (List.map mop_str ops))
              shards))
       QCheck.Gen.(list_size (int_bound 4) (list_size (int_bound 20) mop_gen)))
    (fun shards ->
      let seq = zero_clock_reg () in
      List.iter (fun ops -> List.iter (apply_mop seq) ops) shards;
      let main = zero_clock_reg () in
      List.iter
        (fun ops ->
          let shard = zero_clock_reg () in
          List.iter (apply_mop shard) ops;
          Registry.merge ~into:main shard)
        shards;
      if export main <> export seq then
        QCheck.Test.fail_reportf "merged export differs:\n%s\nvs sequential:\n%s"
          (String.concat "\n" (List.map Json.to_string (export main)))
          (String.concat "\n" (List.map Json.to_string (export seq)));
      true)

let test_merge_mismatch () =
  let a = Registry.create () and b = Registry.create () in
  Counter.incr (Registry.counter a "m");
  Gauge.set (Registry.gauge b "m") 1.0;
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Stc_obs.Registry.merge: \"m\" is not a counter")
    (fun () -> Registry.merge ~into:b a);
  Alcotest.check_raises "self-merge rejected"
    (Invalid_argument "Stc_obs.Registry.merge: cannot merge a registry into itself")
    (fun () -> Registry.merge ~into:a a)

(* ---------- progress ---------- *)

let test_progress () =
  let t = ref 0.0 in
  let lines = ref [] in
  let p =
    Obs.Progress.create ~interval:10 ~total:100
      ~clock:(fun () ->
        t := !t +. 0.01;
        !t)
      ~emit:(fun s -> lines := s :: !lines)
      ~label:"trace" ()
  in
  for _ = 1 to 25 do
    Obs.Progress.step p
  done;
  Alcotest.(check int) "reports every interval" 2 (List.length !lines);
  Obs.Progress.add p 100;
  Alcotest.(check int) "bulk add reports once" 3 (List.length !lines);
  Alcotest.(check int) "count" 125 (Obs.Progress.count p);
  Obs.Progress.finish p;
  Obs.Progress.finish p;
  Alcotest.(check int) "finish reports once" 4 (List.length !lines);
  Alcotest.(check bool) "final line shows count/total" true
    (contains (List.hd !lines) "trace: 125/100 (125%)")

(* ---------- determinism over the real pipeline ---------- *)

let tiny_config = { Pipeline.quick_config with Pipeline.sf = 0.0003 }

let tiny_grid = { E.default_sim_config with E.grid = [ (8, [ 2 ]) ] }

let run_with_metrics () =
  let reg = Registry.create () in
  let ctx = Stc_core.Run.(with_metrics reg default) in
  let pl = Pipeline.run ~ctx ~config:tiny_config () in
  ignore (E.simulate ~ctx ~config:tiny_grid pl);
  reg

let test_determinism () =
  let a = run_with_metrics () and b = run_with_metrics () in
  let ra = strip_seconds (Json.lines (Obs.Export.to_jsonl a)) in
  let rb = strip_seconds (Json.lines (Obs.Export.to_jsonl b)) in
  Alcotest.(check int) "same record count" (List.length ra) (List.length rb);
  List.iter2
    (fun x y ->
      if x <> y then
        Alcotest.failf "metric drift between same-seed runs:\n%s\n%s"
          (Json.to_string x) (Json.to_string y))
    ra rb;
  (* the export contains what the acceptance criteria ask for *)
  let has pred = List.exists pred ra in
  Alcotest.(check bool) "has spans" true
    (has (fun r -> Json.member "type" r = Some (Json.Str "span")));
  Alcotest.(check bool) "has record-test span" true
    (has (fun r -> Json.member "path" r = Some (Json.Str "record-test")));
  Alcotest.(check bool) "has table34 cells" true
    (has (fun r -> Json.member "kind" r = Some (Json.Str "table34.cell")));
  Alcotest.(check bool) "cells carry icache counters" true
    (has (fun r ->
         Json.member "kind" r = Some (Json.Str "table34.cell")
         && Json.member "icache_accesses" r <> None))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects;
    Alcotest.test_case "registry roundtrip" `Quick test_registry_roundtrip;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "export golden" `Quick test_export_golden;
    QCheck_alcotest.to_alcotest prop_merge_sequential;
    Alcotest.test_case "merge rejects mismatches" `Quick test_merge_mismatch;
    Alcotest.test_case "progress reporter" `Quick test_progress;
    Alcotest.test_case "same-seed determinism" `Slow test_determinism;
  ]
