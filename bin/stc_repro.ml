(* Command-line driver: regenerate the paper's tables and figures. *)

open Cmdliner
module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Run = Stc_core.Run
module Obs = Stc_obs

let pipeline_config quick sf frames =
  let base = if quick then Pipeline.quick_config else Pipeline.default_config in
  let base = match sf with Some sf -> { base with Pipeline.sf } | None -> base in
  { base with Pipeline.frames }

(* --seed is applied by Pipeline.run through Run.ctx (Pipeline.seeded);
   --jobs parallelizes the simulation grids without changing any output,
   --store makes reruns consult the artifact cache, and --trace records
   per-domain timeline events. *)
let make_ctx reg progress seed jobs store tracer =
  let ctx =
    Run.default |> Run.with_metrics reg |> Run.with_progress progress
    |> Run.with_jobs jobs
  in
  let ctx = match seed with Some s -> Run.with_seed s ctx | None -> ctx in
  let ctx =
    match store with Some dir -> Run.with_store dir ctx | None -> ctx
  in
  match tracer with Some t -> Run.with_trace t ctx | None -> ctx

let default_jobs = max 1 (Domain.recommended_domain_count () - 1)

let sim_config exec_threshold branch_threshold =
  {
    E.default_sim_config with
    E.exec_threshold;
    branch_threshold;
  }

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced kernel and scale factor (fast).")

let sf_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "scale" ] ~docv:"SF" ~doc:"TPC-D scale factor (default 0.002).")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N" ~doc:"Master seed for kernel, data and walker.")

let jobs_arg =
  Arg.(
    value & opt int default_jobs
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run simulation cells on $(docv) OCaml domains. 1 selects the \
           exact serial path; any value produces byte-identical metric \
           exports. Defaults to the recommended domain count minus one.")

let frames_arg =
  Arg.(
    value & opt int 256
    & info [ "frames" ] ~docv:"N" ~doc:"Buffer-pool frames per database.")

let exec_arg =
  Arg.(
    value & opt int 50
    & info [ "exec-threshold" ] ~docv:"N" ~doc:"STC Exec Threshold (pass 2).")

let branch_arg =
  Arg.(
    value & opt float 0.3
    & info [ "branch-threshold" ] ~docv:"P" ~doc:"STC Branch Threshold.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export run metrics (counters, per-phase timing spans, \
           experiment-cell records) to $(docv) as JSONL; see README \
           'Observability'. Compare two runs with tools/metrics_diff.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-domain timeline events (phases, grid cells, pool \
           chunks, store operations) and write them to $(docv) as Chrome \
           trace_event JSON — load it in Perfetto (ui.perfetto.dev) or \
           summarize with tools/trace_report. Without this flag the \
           tracer is entirely absent and the run's outputs are \
           byte-identical to an untraced run.")

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Replay each simulation cell through the bounded segment \
           pipeline (Stc_trace.Source → Stc_fetch.Stream → \
           Engine.run_stream) instead of a fully materialized packed \
           trace image. Results, tables and metric exports are \
           byte-identical; only the peak resident trace footprint \
           changes.")

let no_fuse_arg =
  Arg.(
    value & flag
    & info [ "no-fuse" ]
        ~doc:
          "Replay each simulation cell with its own engine sweep instead \
           of the default fused replay (one Engine.Bank sweep per layout, \
           decoding the packed trace once for every cell that shares \
           it). Rows, tables, metric exports and store keys are \
           byte-identical either way; fusing only changes wall-clock \
           time. This flag keeps the per-cell reference path exercised \
           for differential comparison.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Report event rate (and ETA where known) on stderr.")

let layouts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "layouts" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated layout algorithms for the per-CFA grid rows \
           (default: every registered one). Names, slugs and aliases from \
           the algorithm registry are accepted, case-insensitively — see \
           $(b,stc_repro layouts) for the list. The orig and P&H \
           baseline rows are always simulated.")

(* Split, trim and resolve a --layouts value against the registry;
   exit 1 with the valid names spelled out on any unknown entry. *)
let parse_layouts = function
  | None -> None
  | Some csv ->
    let names =
      String.split_on_char ',' csv
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (match E.resolve_layouts names with
    | Ok _ -> Some names
    | Error msg ->
      Printf.eprintf "stc_repro: %s\n" msg;
      exit 1)

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Cache recorded traces, layouts and simulation results in \
           $(docv) (created if missing), keyed by content, and reuse them \
           on later runs. A warm rerun prints the same tables and exports \
           the same metrics (minus store.* counters) in a fraction of the \
           time; stale or damaged entries are recomputed, never trusted. \
           Inspect with tools/store_inspect.")

(* Fail on an unwritable --metrics/--trace path before the run, not
   after it. *)
let check_out_path what = function
  | None -> ()
  | Some path -> (
    try close_out (open_out path)
    with Sys_error e ->
      Printf.eprintf "stc_repro: cannot write %s file: %s\n" what e;
      exit 1)

let check_metrics_path = check_out_path "metrics"

(* The tracer exists only when --trace was given: with None in the ctx
   every instrumentation site is a single branch and the run is
   untouched. *)
let make_tracer = function None -> None | Some _ -> Some (Obs.Trace.create ())

let finish_trace tracer trace_file =
  match (tracer, trace_file) with
  | Some t, Some path ->
    Obs.Trace.write_file t path;
    let dropped =
      match Obs.Trace.dropped t with
      | 0 -> ""
      | d -> Printf.sprintf " (%d dropped: ring full)" d
    in
    Printf.printf "Trace: %d events written to %s%s\n%!" (Obs.Trace.events t)
      path dropped
  | _ -> ()

(* Every command carries one registry; spans and counters are collected
   unconditionally (the cost is nil next to the simulation) and exported
   only when --metrics was given. *)
let setup ~ctx quick sf frames =
  let config = pipeline_config quick sf frames in
  Printf.printf
    "Building kernel, loading TPC-D data (sf=%.4g), tracing Training and Test sets...\n%!"
    config.Pipeline.sf;
  let t0 = Unix.gettimeofday () in
  let pl = Pipeline.run ~ctx ~config () in
  Printf.printf "Setup done in %.1fs: test trace has %d basic blocks.\n\n%!"
    (Unix.gettimeofday () -. t0)
    (Stc_trace.Recorder.length pl.Pipeline.test);
  pl

(* One-line cache summary, only when --store was given. *)
let report_store reg store =
  match store with
  | None -> ()
  | Some dir ->
    let counters = Obs.Registry.counters reg in
    let get name = Option.value ~default:0 (List.assoc_opt name counters) in
    Printf.printf
      "\nStore %s: %d hits, %d misses, %d writes (%d corrupt, %d KB read, %d \
       KB written)\n\
       %!"
      dir (get "store.hits") (get "store.misses") (get "store.writes")
      (get "store.corrupt")
      (get "store.bytes_read" / 1024)
      (get "store.bytes_written" / 1024)

let finish_metrics reg metrics_file =
  match metrics_file with
  | None -> ()
  | Some path ->
    Obs.Export.write_file reg path;
    Printf.printf "\nMetrics: %d JSONL records written to %s\n%!"
      (List.length (String.split_on_char '\n' (Obs.Export.to_jsonl reg)) - 1)
      path

let characterize_cmd =
  let run quick sf seed frames jobs store metrics trace progress =
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    E.print_table1 (E.table1 pl);
    print_newline ();
    E.print_figure2 pl;
    print_newline ();
    E.print_reuse (E.reuse pl);
    print_newline ();
    E.print_table2 (E.table2 pl);
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Section 4: Table 1, Figure 2, reuse, Table 2.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ metrics_arg $ trace_arg $ progress_arg)

let simulate_run quick sf seed frames jobs store exec branch streamed no_fuse
    layouts metrics trace progress =
  let layouts = parse_layouts layouts in
  let reg = Obs.Registry.create () in
  check_metrics_path metrics;
  check_out_path "trace" trace;
  let tracer = make_tracer trace in
  let ctx = make_ctx reg progress seed jobs store tracer in
  let pl = setup ~ctx quick sf frames in
  Printf.printf "Simulating the full Table 3 / Table 4 grid (%d jobs)...\n%!"
    ctx.Run.jobs;
  let t0 = Unix.gettimeofday () in
  let rows =
    E.simulate ~ctx ~config:(sim_config exec branch) ~streamed
      ~fused:(not no_fuse) ?layouts pl
  in
  Printf.printf "%d simulations in %.1fs.\n\n%!" (List.length rows)
    (Unix.gettimeofday () -. t0);
  E.print_table3 rows;
  print_newline ();
  E.print_table4 rows;
  print_newline ();
  E.print_sequentiality rows;
  report_store reg store;
  finish_metrics reg metrics;
  finish_trace tracer trace

let simulate_term =
  Term.(
    const simulate_run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
    $ store_arg $ exec_arg $ branch_arg $ stream_arg $ no_fuse_arg
    $ layouts_arg $ metrics_arg $ trace_arg $ progress_arg)

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Section 7: Table 3 and Table 4.") simulate_term

let extended_cmd =
  let run quick sf seed frames jobs store exec branch streamed no_fuse layouts
      metrics trace progress =
    let layouts = parse_layouts layouts in
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    Printf.printf
      "Simulating the extended policy/prefetch grid (%d jobs)...\n%!"
      ctx.Run.jobs;
    let t0 = Unix.gettimeofday () in
    let rows =
      E.extended ~ctx ~config:(sim_config exec branch) ~streamed
        ~fused:(not no_fuse) ?layouts pl
    in
    Printf.printf "%d simulations in %.1fs.\n\n%!" (List.length rows)
      (Unix.gettimeofday () -. t0);
    E.print_extended rows;
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace
  in
  Cmd.v
    (Cmd.info "extended"
       ~doc:
         "Post-paper hardware grid: replacement policy (LRU, SRRIP, \
          TRRIP) crossed with fetch-directed prefetching over the first \
          two cache sizes, 4-way set-associative, per layout. TRRIP's \
          per-line temperatures come from each layout's own hotness.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ exec_arg $ branch_arg $ stream_arg $ no_fuse_arg
      $ layouts_arg $ metrics_arg $ trace_arg $ progress_arg)

let ablation_cmd =
  let run quick sf seed frames jobs store streamed no_fuse metrics trace
      progress =
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    E.print_ablation (E.ablation ~ctx ~streamed ~fused:(not no_fuse) pl);
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"STC threshold and CFA-size sweep.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ stream_arg $ no_fuse_arg $ metrics_arg $ trace_arg
      $ progress_arg)

let extensions_cmd =
  let run quick sf seed frames jobs store metrics trace progress =
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    Stc_core.Extensions.print_inlining (Stc_core.Extensions.inlining ~ctx pl);
    print_newline ();
    Stc_core.Extensions.print_oltp (Stc_core.Extensions.oltp ~ctx pl);
    print_newline ();
    Stc_core.Extensions.print_prediction
      (Stc_core.Extensions.prediction ~ctx pl);
    print_newline ();
    Stc_core.Extensions.print_tuning ~ctx pl;
    print_newline ();
    Stc_core.Extensions.print_per_query (Stc_core.Extensions.per_query ~ctx pl);
    print_newline ();
    Stc_core.Extensions.print_fetch_units
      (Stc_core.Extensions.fetch_units ~ctx pl);
    print_newline ();
    Stc_core.Extensions.print_associativity
      (Stc_core.Extensions.associativity ~ctx pl);
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace
  in
  Cmd.v
    (Cmd.info "extensions"
       ~doc:
         "Section 8 future work: inlining, OLTP, branch prediction,           auto-tuning.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ metrics_arg $ trace_arg $ progress_arg)

let check_cmd =
  let run quick sf seed frames jobs store metrics trace progress =
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    Printf.printf "Running layout validators and differential oracles...\n%!";
    let t0 = Unix.gettimeofday () in
    let report = Stc_check.run_all ~ctx pl in
    Printf.printf "Checks done in %.1fs.\n\n%!" (Unix.gettimeofday () -. t0);
    Stc_check.print_report report;
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace;
    if not (Stc_check.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Correctness checks: validate every layout algorithm's output \
          (overlap, alignment, coverage, CFA containment) and replay the \
          test trace through reference cache/fetch oracles, diffing them \
          against the naive and packed engines. Exits non-zero on any \
          violation or divergence.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ metrics_arg $ trace_arg $ progress_arg)

let layouts_cmd =
  let run () =
    Printf.printf "Registered layout algorithms (in grid order):\n\n";
    List.iter
      (fun a ->
        let open Stc_layout.Algo in
        Printf.printf "  %-14s %s%s\n" a.name
          (if a.uses_cfa then "[CFA] " else "[baseline] ")
          (match a.aliases with
          | [] -> ""
          | l -> Printf.sprintf "(also: %s)" (String.concat ", " l));
        Printf.printf "    %s\n\n" a.describe)
      (Stc_layout.Algo.all ());
    Printf.printf
      "Baselines are always simulated; select CFA algorithms for the \
       grid\nwith, e.g., --layouts ops,codestitcher,exttsp.\n"
  in
  Cmd.v
    (Cmd.info "layouts"
       ~doc:
         "List the registered layout algorithms — names, aliases and a \
          one-paragraph description each — in the order they appear in \
          the comparison grid. Use the names with $(b,simulate \
          --layouts).")
    Term.(const run $ const ())

let all_cmd =
  let run quick sf seed frames jobs store exec branch metrics trace progress =
    let reg = Obs.Registry.create () in
    check_metrics_path metrics;
    check_out_path "trace" trace;
    let tracer = make_tracer trace in
    let ctx = make_ctx reg progress seed jobs store tracer in
    let pl = setup ~ctx quick sf frames in
    E.print_table1 (E.table1 pl);
    print_newline ();
    E.print_figure2 pl;
    print_newline ();
    E.print_reuse (E.reuse pl);
    print_newline ();
    E.print_table2 (E.table2 pl);
    print_newline ();
    let rows = E.simulate ~ctx ~config:(sim_config exec branch) pl in
    E.print_table3 rows;
    print_newline ();
    E.print_table4 rows;
    print_newline ();
    E.print_sequentiality rows;
    report_store reg store;
    finish_metrics reg metrics;
    finish_trace tracer trace
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table and figure.")
    Term.(
      const run $ quick_arg $ sf_arg $ seed_arg $ frames_arg $ jobs_arg
      $ store_arg $ exec_arg $ branch_arg $ metrics_arg $ trace_arg $ progress_arg)

let () =
  let info =
    Cmd.info "stc_repro"
      ~doc:
        "Reproduction of 'Optimization of Instruction Fetch for Decision \
         Support Workloads' (Ramirez et al., ICPP 1999). With no \
         subcommand, runs $(b,simulate)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:simulate_term info
          [
            characterize_cmd;
            simulate_cmd;
            extended_cmd;
            ablation_cmd;
            extensions_cmd;
            check_cmd;
            layouts_cmd;
            all_cmd;
          ]))
