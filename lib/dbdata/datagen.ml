module Rng = Stc_util.Rng

type t = { sf : float; rows : (string * int array array) list }

let scaled sf base = max 1 (int_of_float (float_of_int base *. sf))

let gen_region () =
  Array.init 5 (fun i -> [| i; i |])

let gen_nation () =
  Array.init 25 (fun i -> [| i; i; Schema.nation_region i |])

let gen_supplier rng n =
  Array.init n (fun i ->
      [| i + 1; Rng.int rng 25; Rng.int_in rng (-99999) 999999 |])

let gen_customer rng n =
  Array.init n (fun i ->
      [|
        i + 1;
        Rng.int rng 25;
        Rng.int rng (Array.length Schema.segments);
        Rng.int_in rng (-99999) 999999;
      |])

let gen_part rng n =
  Array.init n (fun i ->
      [|
        i + 1;
        Rng.int rng Schema.n_brands;
        Rng.int rng Schema.n_types;
        Rng.int_in rng 1 50;
        Rng.int rng Schema.n_containers;
        90000 + Rng.int rng 100000;
      |])

let gen_partsupp rng ~n_parts ~n_suppliers =
  (* four suppliers per part, as in TPC-D *)
  let rows = ref [] in
  for p = 1 to n_parts do
    for k = 0 to 3 do
      let s = 1 + ((p + (k * ((n_suppliers / 4) + 1))) mod n_suppliers) in
      rows := [| p; s; 100 + Rng.int rng 99900; Rng.int_in rng 1 9999 |] :: !rows
    done
  done;
  Array.of_list (List.rev !rows)

let max_date = Schema.date 1998 12 2

let gen_orders rng n ~n_customers =
  Array.init n (fun i ->
      let odate = Rng.int rng (max_date - 150) in
      [|
        i + 1;
        1 + Rng.int rng n_customers;
        odate;
        Rng.int rng 2;
        Rng.int rng (Array.length Schema.priorities);
      |])

let gen_lineitem rng orders ~n_parts ~n_suppliers =
  let rows = ref [] in
  Array.iter
    (fun o ->
      let okey = o.(Schema.O.orderkey) and odate = o.(Schema.O.orderdate) in
      let n_lines = 1 + Rng.int rng 7 in
      for ln = 1 to n_lines do
        let partkey = 1 + Rng.int rng n_parts in
        let suppkey = 1 + Rng.int rng n_suppliers in
        let qty = 1 + Rng.int rng 50 in
        let price = (90000 + Rng.int rng 100000) * qty / 10 in
        let ship = odate + 1 + Rng.int rng 121 in
        let commit = odate + 30 + Rng.int rng 61 in
        let receipt = ship + 1 + Rng.int rng 30 in
        let shipped_past = ship <= max_date - 90 in
        let returnflag =
          if shipped_past then Rng.int rng 2 (* A or N *) else 1
        in
        let linestatus = if shipped_past then 0 else Rng.int rng 2 in
        rows :=
          [|
            okey;
            partkey;
            suppkey;
            ln;
            qty;
            price;
            Rng.int rng 11 (* discount 0.00-0.10 in % *);
            Rng.int rng 9 (* tax 0.00-0.08 *);
            returnflag;
            linestatus;
            ship;
            commit;
            receipt;
            Rng.int rng (Array.length Schema.shipmodes);
            Rng.int rng 4;
          |]
          :: !rows
      done)
    orders;
  Array.of_list (List.rev !rows)

let generate ?(seed = 0x7C0DL) ~sf () =
  let root = Rng.create seed in
  let rng name = Rng.named root ("datagen." ^ name) in
  let n_suppliers = scaled sf 10_000 in
  let n_customers = scaled sf 150_000 in
  let n_parts = scaled sf 200_000 in
  let n_orders = scaled sf 1_500_000 in
  let supplier = gen_supplier (rng "supplier") n_suppliers in
  let customer = gen_customer (rng "customer") n_customers in
  let part = gen_part (rng "part") n_parts in
  let partsupp = gen_partsupp (rng "partsupp") ~n_parts ~n_suppliers in
  let orders = gen_orders (rng "orders") n_orders ~n_customers in
  let lineitem = gen_lineitem (rng "lineitem") orders ~n_parts ~n_suppliers in
  {
    sf;
    rows =
      [
        ("region", gen_region ());
        ("nation", gen_nation ());
        ("supplier", supplier);
        ("customer", customer);
        ("part", part);
        ("partsupp", partsupp);
        ("orders", orders);
        ("lineitem", lineitem);
      ];
  }

let table t name = List.assoc name t.rows

let row_count t name = Array.length (table t name)
