(** Deterministic, scaled TPC-D data generation (the dbgen substitute).

    Row counts follow the TPC-D proportions: at scale factor [sf],
    supplier has [10_000 · sf] rows, customer [150_000 · sf],
    part [200_000 · sf], partsupp [800_000 · sf], orders [1_500_000 · sf]
    and lineitem 1–7 lines per order (≈ 4 on average). Region and nation
    are fixed. Value distributions mirror dbgen's in shape: uniform keys,
    uniform dates over 1992–1998, skewed-enough categorical columns. *)

type t = {
  sf : float;
  rows : (string * int array array) list;
      (** Table name → rows (each row an [int array] per the schema). *)
}

val generate : ?seed:int64 -> sf:float -> unit -> t

val table : t -> string -> int array array

val row_count : t -> string -> int
