type table = { name : string; columns : string array; width : int }

let mk name columns =
  { name; columns = Array.of_list columns; width = List.length columns }

let region = mk "region" [ "r_regionkey"; "r_name" ]

let nation = mk "nation" [ "n_nationkey"; "n_name"; "n_regionkey" ]

let supplier = mk "supplier" [ "s_suppkey"; "s_nationkey"; "s_acctbal" ]

let customer =
  mk "customer" [ "c_custkey"; "c_nationkey"; "c_mktsegment"; "c_acctbal" ]

let part =
  mk "part"
    [ "p_partkey"; "p_brand"; "p_type"; "p_size"; "p_container"; "p_retailprice" ]

let partsupp =
  mk "partsupp" [ "ps_partkey"; "ps_suppkey"; "ps_supplycost"; "ps_availqty" ]

let orders =
  mk "orders"
    [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_shippriority"; "o_orderpriority" ]

let lineitem =
  mk "lineitem"
    [
      "l_orderkey";
      "l_partkey";
      "l_suppkey";
      "l_linenumber";
      "l_quantity";
      "l_extendedprice";
      "l_discount";
      "l_tax";
      "l_returnflag";
      "l_linestatus";
      "l_shipdate";
      "l_commitdate";
      "l_receiptdate";
      "l_shipmode";
      "l_shipinstruct";
    ]

let all =
  [ region; nation; supplier; customer; part; partsupp; orders; lineitem ]

let find name = List.find (fun t -> String.equal t.name name) all

let column t name =
  let found = ref (-1) in
  Array.iteri (fun i c -> if String.equal c name then found := i) t.columns;
  if !found < 0 then raise Not_found else !found

module R = struct
  let regionkey = 0
  let name = 1
end

module N = struct
  let nationkey = 0
  let name = 1
  let regionkey = 2
end

module S = struct
  let suppkey = 0
  let nationkey = 1
  let acctbal = 2
end

module C = struct
  let custkey = 0
  let nationkey = 1
  let mktsegment = 2
  let acctbal = 3
end

module P = struct
  let partkey = 0
  let brand = 1
  let typ = 2
  let size = 3
  let container = 4
  let retailprice = 5
end

module PS = struct
  let partkey = 0
  let suppkey = 1
  let supplycost = 2
  let availqty = 3
end

module O = struct
  let orderkey = 0
  let custkey = 1
  let orderdate = 2
  let shippriority = 3
  let orderpriority = 4
end

module L = struct
  let orderkey = 0
  let partkey = 1
  let suppkey = 2
  let linenumber = 3
  let quantity = 4
  let extendedprice = 5
  let discount = 6
  let tax = 7
  let returnflag = 8
  let linestatus = 9
  let shipdate = 10
  let commitdate = 11
  let receiptdate = 12
  let shipmode = 13
  let shipinstruct = 14
end

(* Simplified calendar: 12 months of 30 days, 360-day years, 1992..1998. *)
let date y m d = ((y - 1992) * 360) + ((m - 1) * 30) + (d - 1)

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]

let shipmodes = [| "AIR"; "FOB"; "MAIL"; "RAIL"; "REG AIR"; "SHIP"; "TRUCK" |]

let returnflags = [| "A"; "N"; "R" |]

let linestatuses = [| "F"; "O" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let n_brands = 25

let n_types = 150

let n_containers = 40

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
    "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN"; "KENYA";
    "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA"; "SAUDI ARABIA";
    "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]

let nation_region n =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3; 3; 1 |].(n)
