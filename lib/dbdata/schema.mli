(** The TPC-D schema (simplified): the 8 tables with the columns the
    benchmark queries touch. Every attribute is encoded as an [int]:
    dates as days since 1992-01-01, monetary values in cents, categorical
    strings as dictionary codes (the dictionaries are exposed for
    printing). *)

type table = {
  name : string;
  columns : string array;
  width : int;  (** Number of columns. *)
}

val region : table
val nation : table
val supplier : table
val customer : table
val part : table
val partsupp : table
val orders : table
val lineitem : table

val all : table list

val find : string -> table
(** Raises [Not_found]. *)

val column : table -> string -> int
(** Index of a column by name. Raises [Not_found]. *)

(** Column-index shorthands, named after the TPC-D attributes. *)

module R : sig
  val regionkey : int
  val name : int
end

module N : sig
  val nationkey : int
  val name : int
  val regionkey : int
end

module S : sig
  val suppkey : int
  val nationkey : int
  val acctbal : int
end

module C : sig
  val custkey : int
  val nationkey : int
  val mktsegment : int
  val acctbal : int
end

module P : sig
  val partkey : int
  val brand : int
  val typ : int
  val size : int
  val container : int
  val retailprice : int
end

module PS : sig
  val partkey : int
  val suppkey : int
  val supplycost : int
  val availqty : int
end

module O : sig
  val orderkey : int
  val custkey : int
  val orderdate : int
  val shippriority : int
  val orderpriority : int
end

module L : sig
  val orderkey : int
  val partkey : int
  val suppkey : int
  val linenumber : int
  val quantity : int
  val extendedprice : int
  val discount : int
  val tax : int
  val returnflag : int
  val linestatus : int
  val shipdate : int
  val commitdate : int
  val receiptdate : int
  val shipmode : int
  val shipinstruct : int
end

(** {2 Value dictionaries and encodings} *)

val date : int -> int -> int -> int
(** [date y m d] → days since 1992-01-01 (a simplified 365-day calendar
    with 30/31-day months is used consistently on both ends). *)

val segments : string array
(** Market segments; [c_mktsegment] indexes into this. *)

val shipmodes : string array

val returnflags : string array

val linestatuses : string array

val priorities : string array

val n_brands : int
val n_types : int
val n_containers : int

val region_names : string array
val nation_names : string array

val nation_region : int -> int
(** Region of a nation code. *)
