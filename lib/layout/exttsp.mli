(** ExtTSP-style block reordering (Newell & Pupyrev, IEEE TC 2020 — the
    score behind LLVM BOLT's basic-block layout).

    An edge scores its full weight when the destination falls through
    from the source, a decaying tenth of it for short forward
    (≤ 1024 B) or backward (≤ 640 B) jumps, and nothing otherwise.
    Executed blocks start as singleton chains; each greedy round merges
    the connected chain pair (in its better orientation) with the
    largest positive score gain — the gain of a concatenation is exactly
    the score of the cross edges, since intra-chain distances are
    invariant — until no merge improves the score. The hottest finished
    chains are pinned into the Conflict-Free Area. *)

val edge_score : src_end:int -> dst:int -> int -> float
(** Score of one edge of the given weight, with the source's end byte
    and the destination's start byte (exposed for tests). *)

val chains : Stc_profile.Profile.t -> int list list
(** The finished chains, hottest first (exposed for tests). Memoized for
    the profile last seen; call only from serial code. *)

val plan : Stc_profile.Profile.t -> cfa_bytes:int -> Mapping.plan
(** Hot chains split into CFA residents and the rest ({!Mapping.fit_cfa});
    never-executed blocks in original textual order as the cold part. *)

val layout :
  Stc_profile.Profile.t -> cache_bytes:int -> cfa_bytes:int -> Layout.t
(** {!plan} → {!Mapping.map_plan}. *)
