module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Proc = Stc_cfg.Proc
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder

type config = { min_call_count : int; max_callee_blocks : int; max_clones : int }

let default_config =
  { min_call_count = 1000; max_callee_blocks = 24; max_clones = 64 }

type site = {
  site_block : int;
  callee : int;
  continuation : int;
  clone_of : (int, int) Hashtbl.t; (* original callee block -> clone id *)
}

type t = {
  base : Program.t;
  expanded : Program.t;
  sites : site list;
  site_of_block : (int, site) Hashtbl.t;
  is_ret : bool array; (* original callee blocks ending an activation *)
  growth_pct : float;
}

(* A callee is inlinable when it is a leaf routine: no calls of any kind
   (this also rules out recursion), so an inlined activation is a
   contiguous run of its own blocks. *)
let leaf_callee prog pid =
  let p = prog.Program.procs.(pid) in
  Array.for_all
    (fun bid ->
      match prog.Program.blocks.(bid).Block.term with
      | Terminator.Call _ | Terminator.Icall _ -> false
      | Terminator.Fall _ | Terminator.Jump _ | Terminator.Cond _
      | Terminator.Ret ->
        true)
    p.Proc.blocks

let pick_sites config profile =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let candidates = ref [] in
  Array.iter
    (fun blk ->
      match blk.Block.term with
      | Terminator.Call { callee; next } ->
        let c = counts.(blk.Block.id) in
        let callee_blocks =
          Array.length prog.Program.procs.(callee).Proc.blocks
        in
        if
          c >= config.min_call_count
          && callee_blocks <= config.max_callee_blocks
          && leaf_callee prog callee
        then candidates := (c, blk.Block.id, callee, next) :: !candidates
      | _ -> ())
    prog.Program.blocks;
  let sorted =
    List.sort (fun (c1, b1, _, _) (c2, b2, _, _) ->
        if c1 <> c2 then compare c2 c1 else compare b1 b2)
      !candidates
  in
  List.filteri (fun i _ -> i < config.max_clones) sorted

let transform ?(config = default_config) profile =
  let base = Profile.program profile in
  let n_blocks = Array.length base.Program.blocks in
  let picked = pick_sites config profile in
  (* allocate clone ids *)
  let next_id = ref n_blocks in
  let clones = ref [] in
  (* mutable copies of original blocks (site terminators change) *)
  let new_blocks = Array.map (fun b -> b) base.Program.blocks in
  let extra_per_proc : (int, (int * int list) list) Hashtbl.t =
    (* caller pid -> (site block, clone ids in callee textual order) *)
    Hashtbl.create 64
  in
  let sites =
    List.map
      (fun (_, site_block, callee, continuation) ->
        let callee_proc = base.Program.procs.(callee) in
        let caller_pid = base.Program.blocks.(site_block).Block.proc in
        let clone_of = Hashtbl.create 16 in
        Array.iter
          (fun bid ->
            Hashtbl.replace clone_of bid !next_id;
            incr next_id)
          callee_proc.Proc.blocks;
        let remap bid = Hashtbl.find clone_of bid in
        let clone_ids = ref [] in
        Array.iter
          (fun bid ->
            let b = base.Program.blocks.(bid) in
            let term =
              match b.Block.term with
              | Terminator.Fall x -> Terminator.Fall (remap x)
              | Terminator.Jump x -> Terminator.Jump (remap x)
              | Terminator.Cond { taken; fallthru } ->
                Terminator.Cond { taken = remap taken; fallthru = remap fallthru }
              | Terminator.Ret ->
                (* the return instruction becomes a jump to the
                   continuation *)
                Terminator.Jump continuation
              | Terminator.Call _ | Terminator.Icall _ -> assert false
            in
            let id = remap bid in
            clone_ids := id :: !clone_ids;
            clones :=
              { Block.id; proc = caller_pid; size = b.Block.size; term }
              :: !clones)
          callee_proc.Proc.blocks;
        (* the call instruction disappears; the site falls through into
           its private copy of the callee *)
        let sb = new_blocks.(site_block) in
        new_blocks.(site_block) <-
          {
            sb with
            Block.size = max 1 (sb.Block.size - 1);
            term = Terminator.Fall (remap callee_proc.Proc.entry);
          };
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt extra_per_proc caller_pid)
        in
        Hashtbl.replace extra_per_proc caller_pid
          ((site_block, List.rev !clone_ids) :: cur);
        { site_block; callee; continuation; clone_of })
      picked
  in
  let all_blocks =
    Array.append new_blocks (Array.of_list (List.rev !clones))
  in
  (* rebuild procedure block lists, inserting clones after their site *)
  let procs =
    Array.map
      (fun p ->
        match Hashtbl.find_opt extra_per_proc p.Proc.pid with
        | None -> p
        | Some insertions ->
          let blocks =
            Array.to_list p.Proc.blocks
            |> List.concat_map (fun bid ->
                   match List.assoc_opt bid insertions with
                   | Some clone_ids -> bid :: clone_ids
                   | None -> [ bid ])
          in
          { p with Proc.blocks = Array.of_list blocks })
      base.Program.procs
  in
  let expanded = { Program.procs; blocks = all_blocks } in
  (match Program.validate expanded with
  | Ok () -> ()
  | Error e -> failwith ("Inline.transform: invalid expanded program: " ^ e));
  let site_of_block = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace site_of_block s.site_block s) sites;
  let is_ret =
    Array.map
      (fun b -> b.Block.term = Terminator.Ret)
      base.Program.blocks
  in
  let old_instrs = (Program.static_counts base).Program.n_instrs in
  let new_instrs = (Program.static_counts expanded).Program.n_instrs in
  {
    base;
    expanded;
    sites;
    site_of_block;
    is_ret;
    growth_pct =
      100.0 *. float_of_int (new_instrs - old_instrs) /. float_of_int old_instrs;
  }

let program t = t.expanded

let inlined_sites t = List.length t.sites

let code_growth_pct t = t.growth_pct

let remap_trace t rec_ =
  let out = Recorder.create () in
  let active = ref None in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder rec_)
    (fun b ->
      match !active with
      | Some site ->
        (* inside an inlined activation: every block belongs to the leaf
           callee *)
        let cb = Hashtbl.find site.clone_of b in
        Recorder.sink out cb;
        if t.is_ret.(b) then active := None
      | None ->
        Recorder.sink out b;
        (match Hashtbl.find_opt t.site_of_block b with
        | Some site -> active := Some site
        | None -> ()));
  out

let remap_profile t rec_ =
  let remapped = remap_trace t rec_ in
  let p = Profile.create t.expanded in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder remapped)
    (Profile.sink p);
  p
