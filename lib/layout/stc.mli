(** The paper's contribution: the Software Trace Cache layout.

    Builds greedy sequences from seeds (Section 5.2), packs the most
    popular whole sequences into the Conflict-Free Area, maps everything
    else around it (Section 5.3). *)

type params = {
  seq : Seqbuild.params;
  cache_bytes : int;
  cfa_bytes : int;
}

val params :
  ?exec_threshold:int ->
  ?branch_threshold:float ->
  cache_bytes:int ->
  cfa_bytes:int ->
  unit ->
  params
(** Thresholds default to {!Seqbuild.default_params}. *)

val auto_seeds : Stc_profile.Profile.t -> int list
(** The "auto" seed selection: entry points of {e all} procedures, in
    decreasing order of invocation count (unexecuted procedures excluded). *)

val ops_seeds : ?names:string list -> Stc_profile.Profile.t -> int list
(** The "ops" seed selection: entry points of the Executor operations only
    (knowledge-based). With [names], exactly the named procedures (in
    decreasing popularity); otherwise every procedure whose subsystem is
    [Executor]. *)

val sequences :
  Stc_profile.Profile.t -> params:params -> seeds:int list -> int list list
(** The raw greedy sequences (exposed for tests and ablations). *)

val plan :
  Stc_profile.Profile.t ->
  params:params ->
  seeds:int list ->
  Mapping.plan
(** The two-pass partition {!layout} maps: first-pass whole sequences
    fitted into the CFA, the second-pass sequences (plus first-pass
    spill), and the cold remainder. Exposed so checkers can verify the
    resulting layout against the exact intended block sets. *)

val layout :
  Stc_profile.Profile.t ->
  name:string ->
  params:params ->
  seeds:int list ->
  Layout.t
(** Full pipeline: {!plan} → {!Mapping.map_plan}; blocks not in any
    sequence are laid out in original textual order after the sequences. *)
