(** The layout-algorithm registry: every block-placement algorithm as a
    named [Profile.t -> params -> Mapping.plan] entry.

    The simulation grid ({!Stc_core.Experiments}), the correctness bundle
    ([Stc_check.run_all]) and the CLIs enumerate and select algorithms
    through this registry instead of hard-coded per-module calls, so a
    new algorithm registered here appears in the comparison tables, the
    validators and [--layouts] without touching any of them.

    Built-ins, in registration (= presentation) order: [orig], [P&H],
    [Torr], [auto], [ops], [codestitcher], [exttsp]. The first two are
    fixed baselines ([uses_cfa = false]): their plans ignore the cache
    geometry and map with a zero-byte CFA, which reproduces their
    classic [of_block_order] addresses exactly. *)

type params = Stc.params = {
  seq : Seqbuild.params;  (** Exec/Branch thresholds for sequence builders. *)
  cache_bytes : int;  (** Target i-cache size, for the mapping. *)
  cfa_bytes : int;  (** Conflict-Free Area budget. *)
}
(** One uniform parameter record for every algorithm; entries that need
    less (P&H needs nothing, Codestitcher only the CFA budget) ignore
    the rest. *)

val params :
  ?exec_threshold:int ->
  ?branch_threshold:float ->
  cache_bytes:int ->
  cfa_bytes:int ->
  unit ->
  params
(** Thresholds default to {!Seqbuild.default_params}. *)

type t = {
  name : string;  (** Display name; the [Layout.t] name and the row label. *)
  slug : string;
      (** Stable kebab-case identifier for store keys and span names. *)
  aliases : string list;  (** Extra names {!find} accepts. *)
  describe : string;  (** One paragraph for [stc_repro layouts]. *)
  uses_cfa : bool;
      (** Whether the plan populates the Conflict-Free Area. [false]
          algorithms are mapped with [cfa_bytes = 0] regardless of the
          params and appear in the grid as fixed baselines. *)
  plan : Stc_profile.Profile.t -> params -> Mapping.plan;
}

val register : t -> unit
(** Append to the registry. Raises [Invalid_argument] if the name or
    slug (case-insensitively) is already taken. *)

val all : unit -> t list
(** Every registered algorithm, in registration order. *)

val names : unit -> string list

val find : string -> (t, string) result
(** Case-insensitive lookup over names, slugs and aliases. The error
    message lists the valid names. *)

val effective_cfa_bytes : t -> params -> int
(** [params.cfa_bytes], or 0 when the algorithm does not use the CFA. *)

val plan : t -> Stc_profile.Profile.t -> params -> Mapping.plan

val layout : t -> Stc_profile.Profile.t -> params -> Layout.t
(** {!plan} → {!Mapping.map_plan} with {!effective_cfa_bytes} and the
    algorithm's display name. *)
