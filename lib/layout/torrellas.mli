(** The layout of Torrellas, Xia & Daigle (HPCA 1995), as characterized in
    the paper: code is reordered as sequences of basic blocks spanning
    functions, but the Conflict-Free Area is filled with the most popular
    {e individual basic blocks} — pulled out of their sequences — rather
    than with whole sequences. With a small CFA this behaves much like the
    STC; with a large CFA the pulled-out blocks break sequentiality
    (execution keeps jumping in and out of the CFA), which is exactly the
    contrast Table 4 of the paper exhibits. *)

val plan :
  Stc_profile.Profile.t ->
  seq_params:Seqbuild.params ->
  cfa_bytes:int ->
  Mapping.plan
(** The partition {!layout} maps: the pulled-out popular blocks as one
    CFA "sequence", the thinned-out sequences, and the cold remainder
    (independent of [cache_bytes], which only affects the mapping). *)

val layout :
  Stc_profile.Profile.t ->
  seq_params:Seqbuild.params ->
  cache_bytes:int ->
  cfa_bytes:int ->
  Layout.t
(** {!plan} → {!Mapping.map_plan}. *)
