(** Pettis & Hansen (PLDI 1990) profile-guided code positioning:

    - basic-block chaining inside each procedure (heaviest edges first,
      merging a chain tail to a chain head), with never-executed blocks
      ("fluff") split away into a global cold section;
    - procedure ordering over the weighted call graph with the
      "closest-is-best" heuristic, orienting merged chains so the two
      procedures of the heaviest edge end up as close as possible.

    As the paper notes, the algorithm does not use the target cache
    geometry. *)

val plan : Stc_profile.Profile.t -> Mapping.plan
(** The hot chain order as one sequence, the fluff as the cold section,
    no CFA; mapped with [cfa_bytes = 0] it reproduces {!layout}'s
    addresses exactly (the registry route used by {!Algo}). *)

val layout : Stc_profile.Profile.t -> Layout.t

val proc_order : Stc_profile.Profile.t -> int array
(** The procedure order chosen by the call-graph heuristic (exposed for
    tests). *)

val block_order_within : Stc_profile.Profile.t -> pid:int -> int list * int list
(** [(hot, fluff)] intra-procedure block order for one procedure. *)
