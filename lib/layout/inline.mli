(** Function inlining — the code-expanding technique the paper's Section 8
    singles out as future work ("it is worth studying if the controlled
    use of code expanding techniques like function inlining and code
    replication can increase the potential fetch bandwidth ... while
    keeping the miss rate under control").

    [transform] clones the bodies of small, hot, non-recursive callees
    into their call sites: the call block falls through into a private
    copy of the callee, whose return blocks jump to the continuation — so
    the call/return pair stops breaking the sequential run. Because the
    simulators are trace-driven, the transformation also provides
    [remap_trace], which rewrites a recorded dynamic trace onto the new
    program by replaying it with a shadow call stack (blocks executed
    under an inlined activation map to that site's clones; nested calls
    from the clone are untouched). *)

type config = {
  min_call_count : int;  (** Only call sites at least this hot. *)
  max_callee_blocks : int;  (** Only callees at most this large. *)
  max_clones : int;  (** Global budget on inlined call sites. *)
}

val default_config : config
(** 1000 calls, 24 blocks, 64 sites. *)

type t

val transform :
  ?config:config -> Stc_profile.Profile.t -> t
(** Decide the sites from the profile (hottest first) and build the
    expanded program. Recursive callees, indirect calls and callees
    containing further calls/helper calls are skipped (one-level inlining
    of leaf-ish routines, the "controlled use" of the paper). *)

val program : t -> Stc_cfg.Program.t
(** The expanded program (original blocks keep their ids; clones get
    fresh ids). *)

val inlined_sites : t -> int
(** Number of call sites actually inlined. *)

val code_growth_pct : t -> float
(** Static instruction growth over the original program, in percent. *)

val remap_trace : t -> Stc_trace.Recorder.t -> Stc_trace.Recorder.t
(** Rewrite a dynamic trace of the original program into the expanded
    program's block ids. *)

val remap_profile : t -> Stc_trace.Recorder.t -> Stc_profile.Profile.t
(** Convenience: remap a trace and profile it against the new program. *)
