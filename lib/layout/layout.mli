(** Code layouts: an assignment of a byte address to every basic block.

    As in the paper's methodology, the code itself is never modified — all
    blocks keep their sizes — only the addresses change ("we generated a
    new address for each basic block, feeding the simulators with this
    faked address instead of the original PC"). *)

type t = {
  name : string;
  addr : int array;  (** Byte address of each block, indexed by block id. *)
}

val of_block_order : Stc_cfg.Program.t -> name:string -> int array -> t
(** Pack the given permutation of all block ids contiguously from address
    0. Raises [Invalid_argument] if the array is not a permutation of all
    block ids. *)

val of_placements : Stc_cfg.Program.t -> name:string -> (int * int) list -> t
(** [of_placements prog ~name placements] with explicit [(block, addr)]
    pairs for every block. Raises [Invalid_argument] on missing blocks,
    misaligned addresses or overlaps. *)

val address : t -> int -> int

val end_address : t -> Stc_cfg.Program.t -> int
(** One past the last byte of the highest-placed block. *)

val is_sequential : t -> Stc_cfg.Program.t -> src:int -> dst:int -> bool
(** Whether [dst] starts exactly where [src] ends — i.e. the transition
    [src → dst] needs no taken branch under this layout. *)

val validate : t -> Stc_cfg.Program.t -> (unit, string) result
(** Alignment to instruction size, no overlapping blocks. *)
