module Profile = Stc_profile.Profile

type params = { exec_threshold : int; branch_threshold : float }

let default_params = { exec_threshold = 1; branch_threshold = 0.1 }

let build ?visited profile ~params ~seeds =
  let prog = Profile.program profile in
  let n = Array.length prog.Stc_cfg.Program.blocks in
  let visited =
    match visited with
    | Some v -> v
    | None -> Array.make n false
  in
  let counts = Profile.counts profile in
  let sequences = ref [] in
  let queued = Array.make n false in
  let acceptable bid =
    (not visited.(bid)) && counts.(bid) >= params.exec_threshold
  in
  let hot bid = counts.(bid) >= params.exec_threshold in
  let build_from start =
    (* Noted transitions for this seed, FIFO: secondary traces explore the
       paths rejected while building earlier traces of the same seed. A
       candidate that is already placed (e.g. by an earlier CFA pass)
       instead propagates exploration to its own successors, so code
       adjacent to already-placed hot paths still enters a sequence. *)
    let pending = Queue.create () in
    let enqueue bid =
      if (not queued.(bid)) && hot bid then begin
        queued.(bid) <- true;
        Queue.add bid pending
      end
    in
    enqueue start;
    while not (Queue.is_empty pending) do
      let s = Queue.take pending in
      if visited.(s) then
        List.iter (fun (dst, _) -> enqueue dst) (Profile.successors profile s)
      else if acceptable s then begin
        let trace = ref [] in
        let cur = ref (Some s) in
        while !cur <> None do
          let b = Option.get !cur in
          visited.(b) <- true;
          trace := b :: !trace;
          let succs = Profile.successors profile b in
          let total =
            List.fold_left (fun acc (_, c) -> acc + c) 0 succs
          in
          (* Following a transition requires both thresholds; noting one
             for a secondary trace requires only the Exec Threshold (in
             Figure 3, B1 is cut from the main trace by the Branch
             Threshold yet still heads a later sequence). *)
          let noteworthy = List.filter (fun (dst, _) -> hot dst) succs in
          let followable =
            List.filter
              (fun (dst, c) ->
                acceptable dst
                && float_of_int c
                   >= params.branch_threshold *. float_of_int total)
              noteworthy
          in
          match followable with
          | [] ->
            List.iter (fun (dst, _) -> enqueue dst) noteworthy;
            cur := None
          | (best, _) :: _ ->
            List.iter
              (fun (dst, _) -> if dst <> best then enqueue dst)
              noteworthy;
            cur := Some best
        done;
        sequences := List.rev !trace :: !sequences
      end
    done
  in
  List.iter (fun seed -> if acceptable seed then build_from seed) seeds;
  List.rev !sequences

let covered seqs mark =
  List.iter (fun seq -> List.iter (fun b -> mark.(b) <- true) seq) seqs
