(** The original ("orig") layout: procedures in program order, blocks in
    textual order — the addresses the compiler produced. *)

val layout : Stc_cfg.Program.t -> Layout.t
