(** The original ("orig") layout: procedures in program order, blocks in
    textual order — the addresses the compiler produced. *)

val plan : Stc_cfg.Program.t -> Mapping.plan
(** The same textual order as one sequence and no CFA; mapped with
    [cfa_bytes = 0] it reproduces {!layout}'s addresses exactly (the
    registry route used by {!Algo}). *)

val layout : Stc_cfg.Program.t -> Layout.t
