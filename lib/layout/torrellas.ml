module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Block = Stc_cfg.Block

let plan profile ~seq_params ~cfa_bytes =
  let prog = Profile.program profile in
  let n = Array.length prog.Program.blocks in
  let counts = Profile.counts profile in
  let seqs =
    Seqbuild.build profile ~params:seq_params ~seeds:(Stc.auto_seeds profile)
  in
  (* Most popular individual blocks, by weight, until the CFA is full. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if counts.(a) <> counts.(b) then compare counts.(b) counts.(a)
      else compare a b)
    order;
  let in_cfa = Array.make n false in
  let used = ref 0 in
  (try
     Array.iter
       (fun bid ->
         if counts.(bid) = 0 then raise Exit;
         let b = Block.byte_size prog.Program.blocks.(bid) in
         if !used + b <= cfa_bytes then begin
           in_cfa.(bid) <- true;
           used := !used + b
         end
         else raise Exit)
       order
   with Exit -> ());
  (* CFA content in popularity-rank order: the blocks are preserved
     {e individually}, pulled out of their sequences — which is exactly
     what breaks sequential execution when the CFA grows (Section 7.3's
     critique of this layout). *)
  let covered = Array.make n false in
  Seqbuild.covered seqs covered;
  let cfa_blocks =
    Array.to_list order |> List.filter (fun bid -> in_cfa.(bid))
  in
  (* Sequences with the pulled-out blocks removed. *)
  let other_seqs =
    List.filter_map
      (fun seq ->
        match List.filter (fun bid -> not in_cfa.(bid)) seq with
        | [] -> None
        | s -> Some s)
      seqs
  in
  let cold = ref [] in
  Array.iter
    (fun p ->
      Array.iter
        (fun bid ->
          if (not covered.(bid)) && not in_cfa.(bid) then cold := bid :: !cold)
        p.Stc_cfg.Proc.blocks)
    prog.Program.procs;
  { Mapping.cfa_seqs = [ cfa_blocks ]; other_seqs; cold = List.rev !cold }

let layout profile ~seq_params ~cache_bytes ~cfa_bytes =
  Mapping.map_plan (Profile.program profile) ~name:"Torr" ~cache_bytes
    ~cfa_bytes
    (plan profile ~seq_params ~cfa_bytes)
