(** Greedy basic-block sequence (trace) building — Section 5.2 and
    Figure 3 of the paper.

    Starting from each seed, the builder follows the most frequently
    executed transition out of the current block — including following
    calls into subroutines and dominant return transitions — while every
    candidate passes two thresholds:

    - {e Exec Threshold}: the successor's execution count must reach it;
    - {e Branch Threshold}: the transition's probability (edge count over
      the block's total outgoing count) must reach it.

    All other valid transitions are noted, and once the current trace
    cannot be extended, secondary traces are started from the noted
    transitions of the same seed; then the algorithm proceeds to the next
    seed. A block is placed in at most one sequence. *)

type params = {
  exec_threshold : int;
  branch_threshold : float;
}

val default_params : params
(** [exec_threshold = 1], [branch_threshold = 0.1] — permissive defaults
    that let the seed priority dominate. *)

val build :
  ?visited:bool array ->
  Stc_profile.Profile.t ->
  params:params ->
  seeds:int list ->
  int list list
(** Sequences of block ids, in construction order (first seed's main trace
    first). Every block appears in at most one sequence; blocks whose
    execution count is below the exec threshold never appear. Seeds that
    were already absorbed by earlier sequences start none. [?visited]
    carries exclusions in and coverage out, so several passes with
    successively relaxed thresholds can be chained (Section 5.3 maps the
    sequences "one pass at a time"). *)

val covered : int list list -> bool array -> unit
(** Mark (in the given array) every block contained in the sequences. *)
