(** Sequence mapping into the address space with a Conflict-Free Area —
    Section 5.3 / Figure 4 of the paper.

    The address space is viewed as a logical array of caches, each
    [cache_bytes] long. The most popular sequences ([cfa_seqs]) occupy the
    start of the first logical cache; the region they use — the first
    [cfa_bytes] of {e every} logical cache — is then kept free of all other
    sequences, so nothing can evict them. The remaining sequences fill the
    rest, skipping the CFA window of each logical cache, and finally the
    cold blocks fill everything left, including the skipped windows (the
    rarely executed code is the only thing allowed to conflict with the
    CFA). *)

type plan = {
  cfa_seqs : int list list;
      (** Whole sequences for the Conflict-Free Area, in placement order. *)
  other_seqs : int list list;
      (** Remaining sequences, mapped around the CFA windows. *)
  cold : int list;  (** Everything else; fills the holes last. *)
}
(** The partition a mapping consumes — exposed (and returned by
    {!Stc.plan} / {!Torrellas.plan}) so that checkers like
    [Stc_check.Layouts] can verify CFA containment against the exact
    block sets the algorithm intended, not a reconstruction. *)

val map_plan :
  Stc_cfg.Program.t ->
  name:string ->
  cache_bytes:int ->
  cfa_bytes:int ->
  plan ->
  Layout.t
(** The plan's three parts must partition all blocks. Raises
    [Invalid_argument] if the CFA sequences exceed [cfa_bytes], or on a
    malformed partition (via layout validation). *)

val map :
  Stc_cfg.Program.t ->
  name:string ->
  cache_bytes:int ->
  cfa_bytes:int ->
  cfa_seqs:int list list ->
  other_seqs:int list list ->
  cold:int list ->
  Layout.t
(** {!map_plan} with the partition spread over labelled arguments. *)

val fit_cfa :
  Stc_cfg.Program.t ->
  cfa_bytes:int ->
  int list list ->
  int list list * int list list
(** [fit_cfa prog ~cfa_bytes seqs] splits the ordered sequences into the
    longest prefix of whole sequences fitting in [cfa_bytes] and the
    rest. A sequence that does not fit is skipped (later, shorter ones may
    still fit), preserving order. *)
