module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc

type params = { seq : Seqbuild.params; cache_bytes : int; cfa_bytes : int }

let params ?exec_threshold ?branch_threshold ~cache_bytes ~cfa_bytes () =
  let d = Seqbuild.default_params in
  {
    seq =
      {
        Seqbuild.exec_threshold =
          Option.value ~default:d.Seqbuild.exec_threshold exec_threshold;
        branch_threshold =
          Option.value ~default:d.Seqbuild.branch_threshold branch_threshold;
      };
    cache_bytes;
    cfa_bytes;
  }

let entries_by_popularity profile procs =
  let weighted =
    List.filter_map
      (fun p ->
        let c = Profile.proc_entry_count profile p.Proc.pid in
        if c > 0 then Some (p.Proc.entry, c) else None)
      procs
  in
  let sorted =
    List.sort
      (fun (e1, c1) (e2, c2) ->
        if c1 <> c2 then compare c2 c1 else compare e1 e2)
      weighted
  in
  List.map fst sorted

let auto_seeds profile =
  let prog = Profile.program profile in
  entries_by_popularity profile (Array.to_list prog.Program.procs)

let ops_seeds ?names profile =
  let prog = Profile.program profile in
  let selected =
    match names with
    | Some names ->
      List.filter
        (fun p -> List.mem p.Proc.name names)
        (Array.to_list prog.Program.procs)
    | None ->
      List.filter
        (fun p -> p.Proc.subsystem = Proc.Executor)
        (Array.to_list prog.Program.procs)
  in
  entries_by_popularity profile selected

let sequences profile ~params ~seeds =
  Seqbuild.build profile ~params:params.seq ~seeds

let cold_blocks prog covered =
  let cold = ref [] in
  Array.iter
    (fun p ->
      Array.iter
        (fun bid -> if not covered.(bid) then cold := bid :: !cold)
        p.Proc.blocks)
    prog.Program.procs;
  List.rev !cold

let seq_bytes prog seqs =
  List.fold_left
    (fun acc seq ->
      List.fold_left
        (fun acc bid ->
          acc + Stc_cfg.Block.byte_size prog.Program.blocks.(bid))
        acc seq)
    0 seqs

(* The paper sizes the CFA by the thresholds of the first pass; we go the
   other way round: given the CFA size, find (by bisection on the Exec
   Threshold, with a stricter Branch Threshold) the first-pass sequences
   that just fill it. *)
let first_pass profile ~seeds ~params =
  if params.cfa_bytes = 0 then []
  else begin
    let prog = Profile.program profile in
    let branch = Float.max params.seq.Seqbuild.branch_threshold 0.4 in
    let try_threshold t =
      Seqbuild.build profile
        ~params:{ Seqbuild.exec_threshold = t; branch_threshold = branch }
        ~seeds
    in
    let rec bisect lo hi best =
      (* invariant: threshold [hi] produces sequences that fit *)
      if lo >= hi then best
      else begin
        let mid = (lo + hi) / 2 in
        let seqs = try_threshold mid in
        if seq_bytes prog seqs <= params.cfa_bytes then
          bisect lo mid seqs
        else bisect (mid + 1) hi best
      end
    in
    let max_count =
      Array.fold_left max 1 (Profile.counts profile)
    in
    bisect 1 (max_count + 1) []
  end

let plan profile ~params ~seeds =
  let prog = Profile.program profile in
  let n = Array.length prog.Program.blocks in
  (* pass 1: hot, whole sequences for the Conflict-Free Area *)
  let pass1 = first_pass profile ~seeds ~params in
  let cfa_seqs, spill =
    Mapping.fit_cfa prog ~cfa_bytes:params.cfa_bytes pass1
  in
  let visited = Array.make n false in
  Seqbuild.covered cfa_seqs visited;
  (* pass 2: the remaining sequences, with the base thresholds *)
  let other_seqs =
    spill @ Seqbuild.build ~visited profile ~params:params.seq ~seeds
  in
  let covered = Array.make n false in
  Seqbuild.covered cfa_seqs covered;
  Seqbuild.covered other_seqs covered;
  let cold = cold_blocks prog covered in
  { Mapping.cfa_seqs; other_seqs; cold }

let layout profile ~name ~params ~seeds =
  Mapping.map_plan (Profile.program profile) ~name
    ~cache_bytes:params.cache_bytes ~cfa_bytes:params.cfa_bytes
    (plan profile ~params ~seeds)
