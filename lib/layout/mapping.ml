module Program = Stc_cfg.Program
module Block = Stc_cfg.Block

let seq_bytes prog seq =
  List.fold_left
    (fun acc bid -> acc + Block.byte_size prog.Program.blocks.(bid))
    0 seq

let fit_cfa prog ~cfa_bytes seqs =
  let rec go used acc_in acc_out = function
    | [] -> (List.rev acc_in, List.rev acc_out)
    | seq :: rest ->
      let b = seq_bytes prog seq in
      if used + b <= cfa_bytes then go (used + b) (seq :: acc_in) acc_out rest
      else go used acc_in (seq :: acc_out) rest
  in
  go 0 [] [] seqs

type plan = {
  cfa_seqs : int list list;
  other_seqs : int list list;
  cold : int list;
}

let map prog ~name ~cache_bytes ~cfa_bytes ~cfa_seqs ~other_seqs ~cold =
  if cfa_bytes < 0 || cfa_bytes > cache_bytes then
    invalid_arg "Mapping.map: cfa_bytes out of range";
  let placements = ref [] in
  let place bid addr = placements := (bid, addr) :: !placements in
  let size bid = Block.byte_size prog.Program.blocks.(bid) in
  (* 1. CFA sequences from address 0. *)
  let cursor = ref 0 in
  List.iter
    (fun seq ->
      List.iter
        (fun bid ->
          place bid !cursor;
          cursor := !cursor + size bid)
        seq)
    cfa_seqs;
  if !cursor > cfa_bytes then
    invalid_arg "Mapping.map: CFA sequences exceed the CFA size";
  (* 2. Remaining sequences, skipping the CFA window of every logical
     cache. Skipped windows become holes for the cold code. *)
  let holes = ref [] in
  cursor := max !cursor cfa_bytes;
  (* If the CFA content did not fill the window, the leftover of window 0
     stays reserved (empty): the paper keeps the first-pass area free in
     all logical caches. *)
  let skip_cfa_window () =
    if cfa_bytes > 0 then begin
      let offset = !cursor mod cache_bytes in
      if offset < cfa_bytes then begin
        let window_start = !cursor - offset in
        if !cursor < window_start + cfa_bytes then begin
          holes := (!cursor, window_start + cfa_bytes - !cursor) :: !holes;
          cursor := window_start + cfa_bytes
        end
      end
    end
  in
  let place_seq seq =
    List.iter
      (fun bid ->
        skip_cfa_window ();
        (* A block must not straddle into a CFA window: if it would, move
           past the window. *)
        (if cfa_bytes > 0 then
           let next_window =
             ((!cursor / cache_bytes) + 1) * cache_bytes
           in
           if !cursor + size bid > next_window then begin
             holes := (!cursor, next_window - !cursor) :: !holes;
             cursor := next_window;
             skip_cfa_window ()
           end);
        place bid !cursor;
        cursor := !cursor + size bid)
      seq
  in
  List.iter place_seq other_seqs;
  (* 3. Cold code: fill the holes first, then grow past the end freely. *)
  let holes = ref (List.rev !holes) in
  let place_cold bid =
    let b = size bid in
    let rec try_holes acc = function
      | [] ->
        holes := List.rev acc;
        place bid !cursor;
        cursor := !cursor + b
      | (start, len) :: rest when len >= b ->
        place bid start;
        let rest' =
          if len = b then rest else (start + b, len - b) :: rest
        in
        holes := List.rev_append acc rest'
      | hole :: rest -> try_holes (hole :: acc) rest
    in
    try_holes [] !holes
  in
  List.iter place_cold cold;
  Layout.of_placements prog ~name !placements

let map_plan prog ~name ~cache_bytes ~cfa_bytes { cfa_seqs; other_seqs; cold } =
  map prog ~name ~cache_bytes ~cfa_bytes ~cfa_seqs ~other_seqs ~cold
