(** Codestitcher-style hierarchical inter-procedural collocation (Lavaee,
    Criswell & Ding, CC 2019).

    Executed blocks start as singleton chains and are stitched together
    in granularity levels: the hottest fallthrough transitions merge
    tail-to-head while the chain fits a 64-byte cache line, then chain
    pairs with any profiled affinity merge (heaviest aggregate first)
    while the result fits a 4096-byte page. The profile's edges are
    trace adjacencies — inherently inter-procedural — so callers and
    callees stitch across procedure boundaries exactly as the original
    algorithm lays out whole functions. The hottest finished chains are
    finally pinned into the Conflict-Free Area, the plan's innermost
    locality layer. *)

val line_bytes : int
(** First-level granule: 64. *)

val page_bytes : int
(** Second-level granule: 4096. *)

val chains : Stc_profile.Profile.t -> int list list
(** The finished chains, hottest first (exposed for tests). Memoized for
    the profile last seen; call only from serial code. *)

val plan : Stc_profile.Profile.t -> cfa_bytes:int -> Mapping.plan
(** Hot chains split into CFA residents and the rest ({!Mapping.fit_cfa});
    never-executed blocks in original textual order as the cold part. *)

val layout :
  Stc_profile.Profile.t -> cache_bytes:int -> cfa_bytes:int -> Layout.t
(** {!plan} → {!Mapping.map_plan}. *)
