module Program = Stc_cfg.Program
module Block = Stc_cfg.Block

type t = { name : string; addr : int array }

let of_block_order prog ~name order =
  let n = Array.length prog.Program.blocks in
  if Array.length order <> n then
    invalid_arg "Layout.of_block_order: not a permutation (wrong length)";
  let seen = Array.make n false in
  Array.iter
    (fun bid ->
      if bid < 0 || bid >= n || seen.(bid) then
        invalid_arg "Layout.of_block_order: not a permutation";
      seen.(bid) <- true)
    order;
  let addr = Array.make n 0 in
  let cursor = ref 0 in
  Array.iter
    (fun bid ->
      addr.(bid) <- !cursor;
      cursor := !cursor + Block.byte_size prog.Program.blocks.(bid))
    order;
  { name; addr }

let of_placements prog ~name placements =
  let n = Array.length prog.Program.blocks in
  let addr = Array.make n (-1) in
  List.iter
    (fun (bid, a) ->
      if bid < 0 || bid >= n then invalid_arg "Layout.of_placements: bad block";
      if a < 0 || a mod Block.instr_bytes <> 0 then
        invalid_arg "Layout.of_placements: bad address";
      if addr.(bid) >= 0 then
        invalid_arg "Layout.of_placements: block placed twice";
      addr.(bid) <- a)
    placements;
  Array.iteri
    (fun bid a ->
      if a < 0 then
        invalid_arg
          (Printf.sprintf "Layout.of_placements: block %d not placed" bid))
    addr;
  (* overlap check via sorted intervals *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare addr.(a) addr.(b)) order;
  Array.iteri
    (fun i bid ->
      if i + 1 < n then begin
        let next = order.(i + 1) in
        if addr.(bid) + Block.byte_size prog.Program.blocks.(bid) > addr.(next)
        then
          invalid_arg
            (Printf.sprintf "Layout.of_placements: blocks %d and %d overlap"
               bid next)
      end)
    order;
  { name; addr }

let address t bid = t.addr.(bid)

let end_address t prog =
  let last = ref 0 in
  Array.iteri
    (fun bid a ->
      let e = a + Block.byte_size prog.Program.blocks.(bid) in
      if e > !last then last := e)
    t.addr;
  !last

let is_sequential t prog ~src ~dst =
  t.addr.(dst) = t.addr.(src) + Block.byte_size prog.Program.blocks.(src)

let validate t prog =
  let n = Array.length prog.Program.blocks in
  if Array.length t.addr <> n then Error "layout covers wrong block count"
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare t.addr.(a) t.addr.(b)) order;
    let rec go i =
      if i >= n then Ok ()
      else
        let bid = order.(i) in
        if t.addr.(bid) < 0 then Error (Printf.sprintf "block %d unplaced" bid)
        else if t.addr.(bid) mod Block.instr_bytes <> 0 then
          Error (Printf.sprintf "block %d misaligned" bid)
        else if
          i + 1 < n
          && t.addr.(bid) + Block.byte_size prog.Program.blocks.(bid)
             > t.addr.(order.(i + 1))
        then
          Error
            (Printf.sprintf "blocks %d and %d overlap" bid (order.(i + 1)))
        else go (i + 1)
    in
    go 0
  end
