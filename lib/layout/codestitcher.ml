module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Block = Stc_cfg.Block

(* Codestitcher-style hierarchical basic-block collocation (Lavaee,
   Criswell & Ding, "Codestitcher: inter-procedural basic block layout",
   CC 2019), adapted to this reproduction's plan/mapping split.

   The key idea is {e distance-sensitive} collocation: merging two code
   chains only pays off while the merged chain still fits inside the
   locality granule being optimized, so the merge proceeds in levels —
   first within a cache line, then within a page — before the hottest
   chains are pinned into the Conflict-Free Area (the CFA plays the role
   of Codestitcher's innermost "free" layer here). All chain building is
   inter-procedural from the start: the profile's edges are trace
   adjacencies, so a call-heavy DSS kernel stitches callers and callees
   together exactly as the original algorithm stitches functions. *)

let line_bytes = 64

let page_bytes = 4096

type chain = {
  mutable blocks : int list;  (* placement order *)
  mutable last : int;  (* last block, for O(1) tail checks *)
  mutable bytes : int;
  mutable weight : int;
  mutable anchor : int;  (* smallest block id ever merged in: tie-break *)
}

(* Chains keyed by a representative root; [chain_of] maps a block to its
   chain's current root. Roots are block ids, so everything is
   deterministic given a deterministic merge order. *)
type state = {
  chain_of : int array;
  chains : (int, chain) Hashtbl.t;
}

(* All profiled transitions between distinct executed blocks, heaviest
   first; ties broken on (src, dst) so the order is independent of the
   profile's internal hash-table iteration order. *)
let sorted_edges profile =
  let counts = Profile.counts profile in
  let edges = ref [] in
  Profile.iter_edges profile (fun ~src ~dst ~count ->
      if count > 0 && src <> dst && counts.(src) > 0 && counts.(dst) > 0 then
        edges := (src, dst, count) :: !edges);
  List.sort
    (fun (s1, d1, c1) (s2, d2, c2) ->
      if c1 <> c2 then compare c2 c1 else compare (s1, d1) (s2, d2))
    !edges

let init_state profile =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let n = Array.length prog.Program.blocks in
  let st = { chain_of = Array.make n (-1); chains = Hashtbl.create 256 } in
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        st.chain_of.(b) <- b;
        Hashtbl.replace st.chains b
          {
            blocks = [ b ];
            last = b;
            bytes = Block.byte_size prog.Program.blocks.(b);
            weight = c;
            anchor = b;
          }
      end)
    counts;
  st

let merge_chains st ~into:ra rb =
  let a = Hashtbl.find st.chains ra and b = Hashtbl.find st.chains rb in
  a.blocks <- a.blocks @ b.blocks;
  a.last <- b.last;
  a.bytes <- a.bytes + b.bytes;
  a.weight <- a.weight + b.weight;
  a.anchor <- min a.anchor b.anchor;
  List.iter (fun blk -> st.chain_of.(blk) <- ra) b.blocks;
  Hashtbl.remove st.chains rb

(* Level 0: strict fallthrough stitching. Merge tail-to-head along the
   hottest transitions while the result stays within one cache line, so
   the most frequent successor pairs share a line fetch. *)
let stitch_lines st edges =
  List.iter
    (fun (src, dst, _w) ->
      let ra = st.chain_of.(src) and rb = st.chain_of.(dst) in
      if ra >= 0 && rb >= 0 && ra <> rb then begin
        let a = Hashtbl.find st.chains ra and b = Hashtbl.find st.chains rb in
        if
          a.last = src
          && (match b.blocks with h :: _ -> h = dst | [] -> false)
          && a.bytes + b.bytes <= line_bytes
        then merge_chains st ~into:ra rb
      end)
    edges

(* Coarser levels: collocation no longer requires fallthrough adjacency —
   any profiled affinity between two chains justifies packing them into
   the same granule. Affinities are aggregated per chain pair once per
   level, then consumed heaviest-first (greedy, like the original's
   per-layer maximum-weight matching relaxed to a sweep). *)
let stitch_level st edges ~granule =
  let pair_weight = Hashtbl.create 256 in
  List.iter
    (fun (src, dst, w) ->
      let ra = st.chain_of.(src) and rb = st.chain_of.(dst) in
      if ra >= 0 && rb >= 0 && ra <> rb then begin
        let key = (min ra rb, max ra rb) in
        let cur = Option.value ~default:0 (Hashtbl.find_opt pair_weight key) in
        (* remember the dominant direction so the merged order follows
           the control flow: positive means (fst -> snd) is heavier *)
        let dir = if fst key = ra then w else -w in
        Hashtbl.replace pair_weight key (cur + dir)
      end)
    edges;
  let pairs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) pair_weight []
    |> List.sort (fun ((a1, b1), w1) ((a2, b2), w2) ->
           let m1 = abs w1 and m2 = abs w2 in
           if m1 <> m2 then compare m2 m1 else compare (a1, b1) (a2, b2))
  in
  List.iter
    (fun ((ra, rb), dir) ->
      (* the recorded roots may have been merged away earlier this sweep *)
      let ra = if Hashtbl.mem st.chains ra then ra else -1
      and rb = if Hashtbl.mem st.chains rb then rb else -1 in
      if ra >= 0 && rb >= 0 && ra <> rb then begin
        let a = Hashtbl.find st.chains ra and b = Hashtbl.find st.chains rb in
        if a.bytes + b.bytes <= granule then
          if dir >= 0 then merge_chains st ~into:ra rb
          else merge_chains st ~into:rb ra
      end)
    pairs

(* Hot chains in execution-weight order (density would starve long hot
   chains out of the CFA prefix; the paper's own CFA fill is
   popularity-ordered whole sequences, which this mirrors). *)
let ordered_chains st =
  Hashtbl.fold (fun _ c acc -> c :: acc) st.chains []
  |> List.sort (fun c1 c2 ->
         if c1.weight <> c2.weight then compare c2.weight c1.weight
         else compare c1.anchor c2.anchor)
  |> List.map (fun c -> c.blocks)

(* The hierarchical merge depends only on the profile, not on the CFA
   budget, and the simulation grid asks for one plan per (cache, CFA)
   point — memoize the chains for the profile last seen. Layout
   construction runs in the grid's serial prefix, so a single slot
   without locking is enough. *)
let memo : (Profile.t * int list list) option ref = ref None

let chains profile =
  match !memo with
  | Some (p, chains) when p == profile -> chains
  | _ ->
    let st = init_state profile in
    let edges = sorted_edges profile in
    stitch_lines st edges;
    stitch_level st edges ~granule:page_bytes;
    let result = ordered_chains st in
    memo := Some (profile, result);
    result

let plan profile ~cfa_bytes =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let chains = chains profile in
  let cfa_seqs, other_seqs = Mapping.fit_cfa prog ~cfa_bytes chains in
  let cold = ref [] in
  Array.iter
    (fun p ->
      Array.iter
        (fun bid -> if counts.(bid) = 0 then cold := bid :: !cold)
        p.Stc_cfg.Proc.blocks)
    prog.Program.procs;
  { Mapping.cfa_seqs; other_seqs; cold = List.rev !cold }

let layout profile ~cache_bytes ~cfa_bytes =
  Mapping.map_plan (Profile.program profile) ~name:"codestitcher"
    ~cache_bytes ~cfa_bytes
    (plan profile ~cfa_bytes)
