module Profile = Stc_profile.Profile

type params = Stc.params = {
  seq : Seqbuild.params;
  cache_bytes : int;
  cfa_bytes : int;
}

let params = Stc.params

type t = {
  name : string;
  slug : string;
  aliases : string list;
  describe : string;
  uses_cfa : bool;
  plan : Profile.t -> params -> Mapping.plan;
}

(* Registration order is presentation order: the grid, the check report
   and the CLI listing all enumerate [all ()] as-is. *)
let registry : t list ref = ref []

let all () = !registry

let names () = List.map (fun a -> a.name) !registry

let register algo =
  let clash b =
    String.lowercase_ascii b.name = String.lowercase_ascii algo.name
    || String.lowercase_ascii b.slug = String.lowercase_ascii algo.slug
  in
  if List.exists clash !registry then
    invalid_arg ("Algo.register: duplicate algorithm " ^ algo.name);
  registry := !registry @ [ algo ]

let find name =
  let want = String.lowercase_ascii (String.trim name) in
  let answers a =
    List.exists
      (fun n -> String.lowercase_ascii n = want)
      (a.name :: a.slug :: a.aliases)
  in
  match List.find_opt answers !registry with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown layout algorithm %S (valid: %s)" name
         (String.concat ", " (names ())))

let effective_cfa_bytes algo (p : params) =
  if algo.uses_cfa then p.cfa_bytes else 0

let plan algo profile p = algo.plan profile p

let layout algo profile (p : params) =
  Mapping.map_plan (Profile.program profile) ~name:algo.name
    ~cache_bytes:p.cache_bytes
    ~cfa_bytes:(effective_cfa_bytes algo p)
    (algo.plan profile p)

(* ---------- built-in algorithms ---------- *)

let () =
  register
    {
      name = "orig";
      slug = "original";
      aliases = [];
      describe =
        "Original textual order: procedures and basic blocks exactly as \
         the compiler emitted them (the baseline every table starts from).";
      uses_cfa = false;
      plan = (fun profile _ -> Original.plan (Profile.program profile));
    };
  register
    {
      name = "P&H";
      slug = "pettis-hansen";
      aliases = [ "ph" ];
      describe =
        "Pettis & Hansen (PLDI 1990): heaviest-edge basic-block chaining \
         per procedure, fluff split away, closest-is-best procedure \
         ordering over the call graph; oblivious to the cache geometry.";
      uses_cfa = false;
      plan = (fun profile _ -> Pettis_hansen.plan profile);
    };
  register
    {
      name = "Torr";
      slug = "torrellas";
      aliases = [ "torrellas" ];
      describe =
        "Torrellas, Xia & Daigle (HPCA 1995): greedy sequences with the \
         most popular individual blocks — pulled out of their sequences — \
         pinned in the Conflict-Free Area.";
      uses_cfa = true;
      plan =
        (fun profile p ->
          Torrellas.plan profile ~seq_params:p.seq ~cfa_bytes:p.cfa_bytes);
    };
  register
    {
      name = "auto";
      slug = "stc-auto";
      aliases = [ "stc-auto" ];
      describe =
        "Software Trace Cache with automatic seeds (every procedure entry \
         by popularity): two-pass greedy sequences, whole hot sequences \
         fill the Conflict-Free Area.";
      uses_cfa = true;
      plan =
        (fun profile p ->
          Stc.plan profile ~params:p ~seeds:(Stc.auto_seeds profile));
    };
  register
    {
      name = "ops";
      slug = "stc-ops";
      aliases = [ "stc"; "stc-ops" ];
      describe =
        "Software Trace Cache with knowledge-based seeds (the executor \
         operations) — the paper's headline layout, and the one the \
         hardware-trace-cache rows combine with.";
      uses_cfa = true;
      plan =
        (fun profile p ->
          Stc.plan profile ~params:p ~seeds:(Stc.ops_seeds profile));
    };
  register
    {
      name = "codestitcher";
      slug = "codestitcher";
      aliases = [ "cs" ];
      describe =
        "Codestitcher-style hierarchical inter-procedural collocation \
         (Lavaee et al., CC 2019): fallthrough chains stitched within \
         64-byte lines, affine chains packed within 4 KB pages, hottest \
         chains pinned in the Conflict-Free Area.";
      uses_cfa = true;
      plan = (fun profile p -> Codestitcher.plan profile ~cfa_bytes:p.cfa_bytes);
    };
  register
    {
      name = "exttsp";
      slug = "exttsp";
      aliases = [ "ext-tsp" ];
      describe =
        "ExtTSP-style greedy chain merging (Newell & Pupyrev, 2020; the \
         BOLT model): fallthrough/forward/backward-weighted score \
         maximized by best-gain concatenations, hottest chains pinned in \
         the Conflict-Free Area.";
      uses_cfa = true;
      plan = (fun profile p -> Exttsp.plan profile ~cfa_bytes:p.cfa_bytes);
    }
