module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator

(* ---------- intra-procedure basic-block chaining ---------- *)

(* Weighted intra-procedure edges. Call blocks connect to their return
   continuation with the call block's own weight (the call comes back);
   other blocks use the observed transition counts. *)
let intra_edges profile p =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let edges = ref [] in
  Array.iter
    (fun bid ->
      if counts.(bid) > 0 then
        let blk = prog.Program.blocks.(bid) in
        match blk.Block.term with
        | Terminator.Call { next; _ } | Terminator.Icall { next; _ } ->
          edges := (bid, next, counts.(bid)) :: !edges
        | Terminator.Fall t | Terminator.Jump t ->
          let c = Profile.edge_count profile ~src:bid ~dst:t in
          if c > 0 then edges := (bid, t, c) :: !edges
        | Terminator.Cond { taken; fallthru } ->
          let ct = Profile.edge_count profile ~src:bid ~dst:taken in
          let cf = Profile.edge_count profile ~src:bid ~dst:fallthru in
          if ct > 0 then edges := (bid, taken, ct) :: !edges;
          if cf > 0 && fallthru <> taken then
            edges := (bid, fallthru, cf) :: !edges
        | Terminator.Ret -> ())
    p.Proc.blocks;
  List.sort
    (fun (a1, b1, c1) (a2, b2, c2) ->
      if c1 <> c2 then compare c2 c1 else compare (a1, b1) (a2, b2))
    !edges

(* Chains as doubly-linked structure emulated with maps: every block knows
   its chain id; every chain knows its blocks in order. *)
let chain_blocks profile p =
  let counts = Profile.counts (* weights *) profile in
  let hot = Array.to_list p.Proc.blocks |> List.filter (fun b -> counts.(b) > 0) in
  let fluff =
    Array.to_list p.Proc.blocks |> List.filter (fun b -> counts.(b) = 0)
  in
  let chain_of = Hashtbl.create 16 in
  let chains = Hashtbl.create 16 in
  List.iteri
    (fun i bid ->
      Hashtbl.replace chain_of bid i;
      Hashtbl.replace chains i [ bid ])
    hot;
  List.iter
    (fun (a, b, _w) ->
      match (Hashtbl.find_opt chain_of a, Hashtbl.find_opt chain_of b) with
      | Some ca, Some cb when ca <> cb ->
        let la = Hashtbl.find chains ca and lb = Hashtbl.find chains cb in
        (* merge only tail-of-ca with head-of-cb *)
        let tail_a = List.nth la (List.length la - 1) in
        let head_b = match lb with h :: _ -> h | [] -> assert false in
        if tail_a = a && head_b = b then begin
          let merged = la @ lb in
          Hashtbl.replace chains ca merged;
          Hashtbl.remove chains cb;
          List.iter (fun bid -> Hashtbl.replace chain_of bid ca) lb
        end
      | _ -> ())
    (intra_edges profile p);
  (* Order chains: the entry's chain first, the rest by total weight. *)
  let chain_list = Hashtbl.fold (fun _ l acc -> l :: acc) chains [] in
  let weight l = List.fold_left (fun acc b -> acc + counts.(b)) 0 l in
  let entry_chain, rest =
    List.partition (fun l -> List.mem p.Proc.entry l) chain_list
  in
  let rest =
    List.sort
      (fun l1 l2 ->
        let w1 = weight l1 and w2 = weight l2 in
        if w1 <> w2 then compare w2 w1 else compare l1 l2)
      rest
  in
  (List.concat (entry_chain @ rest), fluff)

let block_order_within profile ~pid =
  let prog = Profile.program profile in
  chain_blocks profile prog.Program.procs.(pid)

(* ---------- procedure ordering ("closest is best") ---------- *)

let proc_order profile =
  let prog = Profile.program profile in
  let np = Array.length prog.Program.procs in
  (* undirected call-graph weights *)
  let pair_weight = Hashtbl.create 256 in
  List.iter
    (fun (p, q, c) ->
      let key = (min p q, max p q) in
      let cur = Option.value ~default:0 (Hashtbl.find_opt pair_weight key) in
      Hashtbl.replace pair_weight key (cur + c))
    (Profile.call_edges profile);
  let edges =
    Hashtbl.fold (fun (p, q) c acc -> (p, q, c) :: acc) pair_weight []
    |> List.sort (fun (p1, q1, c1) (p2, q2, c2) ->
           if c1 <> c2 then compare c2 c1 else compare (p1, q1) (p2, q2))
  in
  let chain_of = Array.init np (fun i -> i) in
  let chains = Hashtbl.create 64 in
  for i = 0 to np - 1 do
    Hashtbl.replace chains i [ i ]
  done;
  let find_chain p = chain_of.(p) in
  let merge (u, v, _w) =
    let cu = find_chain u and cv = find_chain v in
    if cu <> cv then begin
      let lu = Hashtbl.find chains cu and lv = Hashtbl.find chains cv in
      (* Four orientations; pick the one bringing u and v closest. *)
      let dist l =
        let arr = Array.of_list l in
        let iu = ref 0 and iv = ref 0 in
        Array.iteri
          (fun i p ->
            if p = u then iu := i;
            if p = v then iv := i)
          arr;
        abs (!iu - !iv)
      in
      let candidates =
        [
          lu @ lv;
          lu @ List.rev lv;
          List.rev lu @ lv;
          List.rev lu @ List.rev lv;
        ]
      in
      let best =
        List.fold_left
          (fun acc cand ->
            match acc with
            | None -> Some (cand, dist cand)
            | Some (_, d) ->
              let d' = dist cand in
              if d' < d then Some (cand, d') else acc)
          None candidates
      in
      let merged = match best with Some (l, _) -> l | None -> assert false in
      Hashtbl.replace chains cu merged;
      Hashtbl.remove chains cv;
      List.iter (fun p -> chain_of.(p) <- cu) lv
    end
  in
  List.iter merge edges;
  (* Executed chains by weight, then never-called procedures in original
     order. *)
  let counts pid = Profile.proc_entry_count profile pid in
  let chain_list = Hashtbl.fold (fun _ l acc -> l :: acc) chains [] in
  let weight l = List.fold_left (fun acc p -> acc + counts p) 0 l in
  let hot, cold =
    List.partition (fun l -> weight l > 0) chain_list
  in
  let hot =
    List.sort
      (fun l1 l2 ->
        let w1 = weight l1 and w2 = weight l2 in
        if w1 <> w2 then compare w2 w1 else compare l1 l2)
      hot
  in
  let cold =
    List.sort compare (List.concat cold) |> List.map (fun p -> [ p ])
  in
  Array.of_list (List.concat (hot @ cold))

(* ---------- full layout ---------- *)

let hot_and_fluff profile =
  let prog = Profile.program profile in
  let order = proc_order profile in
  let hot_blocks = ref [] and fluff_blocks = ref [] in
  Array.iter
    (fun pid ->
      let hot, fluff = chain_blocks profile prog.Program.procs.(pid) in
      hot_blocks := List.rev_append hot !hot_blocks;
      fluff_blocks := List.rev_append fluff !fluff_blocks)
    order;
  (List.rev !hot_blocks, List.rev !fluff_blocks)

let plan profile =
  let hot, fluff = hot_and_fluff profile in
  { Mapping.cfa_seqs = []; other_seqs = [ hot ]; cold = fluff }

let layout profile =
  let prog = Profile.program profile in
  let hot, fluff = hot_and_fluff profile in
  (* hot code first, then the split-away fluff section *)
  Layout.of_block_order prog ~name:"P&H" (Array.of_list (hot @ fluff))
