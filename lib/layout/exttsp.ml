module Profile = Stc_profile.Profile
module Program = Stc_cfg.Program
module Block = Stc_cfg.Block

(* ExtTSP-style block reordering (Ottoni & Maher, "Optimizing function
   placement for large-scale data-center applications"; Newell & Pupyrev,
   "Improved basic block reordering", IEEE TC 2020 — the model behind
   LLVM's BOLT). The layout score of an edge src -> dst with weight w is

     w               if dst falls through from src,
     w * 0.1 * (1 - d / 1024)   for a forward jump of d <= 1024 bytes,
     w * 0.1 * (1 - d / 640)    for a backward jump of d <= 640 bytes,
     0               otherwise,

   and chains merge greedily by the score gain of concatenation. Scores
   of edges internal to a chain are invariant under concatenation (only
   relative distances matter), so a merge's gain is exactly the score of
   the cross edges between the two chains — edges between unmerged
   chains have no defined distance and score 0. *)

let fallthrough_weight = 1.0

let jump_weight = 0.1

let forward_window = 1024

let backward_window = 640

let edge_score ~src_end ~dst w =
  if dst = src_end then fallthrough_weight *. float_of_int w
  else if dst > src_end then begin
    let d = dst - src_end in
    if d <= forward_window then
      jump_weight *. float_of_int w
      *. (1.0 -. (float_of_int d /. float_of_int forward_window))
    else 0.0
  end
  else begin
    let d = src_end - dst in
    if d <= backward_window then
      jump_weight *. float_of_int w
      *. (1.0 -. (float_of_int d /. float_of_int backward_window))
    else 0.0
  end

type chain = {
  mutable blocks : int list;
  mutable bytes : int;
  mutable weight : int;
  mutable anchor : int;  (* smallest block id: deterministic tie-break *)
}

type state = {
  prog : Program.t;
  chain_of : int array;  (* block -> chain root, -1 for cold blocks *)
  chains : (int, chain) Hashtbl.t;
  offset : int array;  (* block -> byte offset within its chain *)
}

let block_bytes st b = Block.byte_size st.prog.Program.blocks.(b)

(* Offsets of [root]'s blocks are kept current so cross-edge distances
   are O(1) per edge during gain evaluation. *)
let refresh_offsets st root =
  let c = Hashtbl.find st.chains root in
  let cursor = ref 0 in
  List.iter
    (fun b ->
      st.offset.(b) <- !cursor;
      cursor := !cursor + block_bytes st b)
    c.blocks

(* Score of the cross edges when [ra]'s chain is laid out immediately
   before [rb]'s. [edges] are the cross edges between the two chains, in
   a canonical order so the float sum is reproducible. *)
let orientation_gain st ra edges =
  let a = Hashtbl.find st.chains ra in
  List.fold_left
    (fun acc (src, dst, w) ->
      let src_in_a = st.chain_of.(src) = ra in
      let src_pos =
        if src_in_a then st.offset.(src) else a.bytes + st.offset.(src)
      in
      let dst_pos =
        if st.chain_of.(dst) = ra then st.offset.(dst)
        else a.bytes + st.offset.(dst)
      in
      acc +. edge_score ~src_end:(src_pos + block_bytes st src) ~dst:dst_pos w)
    0.0 edges

let merge st ~into:ra rb =
  let a = Hashtbl.find st.chains ra and b = Hashtbl.find st.chains rb in
  a.blocks <- a.blocks @ b.blocks;
  a.bytes <- a.bytes + b.bytes;
  a.weight <- a.weight + b.weight;
  a.anchor <- min a.anchor b.anchor;
  List.iter (fun blk -> st.chain_of.(blk) <- ra) b.blocks;
  Hashtbl.remove st.chains rb;
  refresh_offsets st ra

let init_state profile =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let n = Array.length prog.Program.blocks in
  let st =
    {
      prog;
      chain_of = Array.make n (-1);
      chains = Hashtbl.create 256;
      offset = Array.make n 0;
    }
  in
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        st.chain_of.(b) <- b;
        Hashtbl.replace st.chains b
          {
            blocks = [ b ];
            bytes = Block.byte_size prog.Program.blocks.(b);
            weight = c;
            anchor = b;
          }
      end)
    counts;
  st

(* Profiled transitions between distinct executed blocks in canonical
   (src, dst) order — the one order every float accumulation below uses. *)
let sorted_edges profile =
  let counts = Profile.counts profile in
  let edges = ref [] in
  Profile.iter_edges profile (fun ~src ~dst ~count ->
      if count > 0 && src <> dst && counts.(src) > 0 && counts.(dst) > 0 then
        edges := (src, dst, count) :: !edges);
  List.sort compare !edges

(* One greedy round: group the surviving cross edges by chain pair,
   evaluate both orientations of every connected pair, and take the best
   positive-gain merge. Returns [false] once no merge improves the
   score. *)
let merge_round st edges =
  let by_pair = Hashtbl.create 256 in
  let pair_order = ref [] in
  List.iter
    (fun (src, dst, w) ->
      let ra = st.chain_of.(src) and rb = st.chain_of.(dst) in
      if ra >= 0 && rb >= 0 && ra <> rb then begin
        let key = (min ra rb, max ra rb) in
        match Hashtbl.find_opt by_pair key with
        | Some l -> l := (src, dst, w) :: !l
        | None ->
          Hashtbl.replace by_pair key (ref [ (src, dst, w) ]);
          pair_order := key :: !pair_order
      end)
    edges;
  let best = ref None in
  let consider gain ra rb =
    (* strict improvement on ties keeps the first (canonically smallest)
       candidate, making the choice order-independent *)
    match !best with
    | Some (g, _, _) when g >= gain -> ()
    | _ -> if gain > 0.0 then best := Some (gain, ra, rb)
  in
  List.iter
    (fun (ra, rb) ->
      let cross = List.rev !(Hashtbl.find by_pair (ra, rb)) in
      consider (orientation_gain st ra cross) ra rb;
      consider (orientation_gain st rb cross) rb ra)
    (List.rev !pair_order);
  match !best with
  | None -> false
  | Some (_, ra, rb) ->
    merge st ~into:ra rb;
    true

let ordered_chains st =
  Hashtbl.fold (fun _ c acc -> c :: acc) st.chains []
  |> List.sort (fun c1 c2 ->
         if c1.weight <> c2.weight then compare c2.weight c1.weight
         else compare c1.anchor c2.anchor)
  |> List.map (fun c -> c.blocks)

(* Chain construction depends only on the profile; the grid asks for one
   plan per (cache, CFA) point, so memoize for the profile last seen.
   Runs in the grid's serial prefix — no locking needed. *)
let memo : (Profile.t * int list list) option ref = ref None

let chains profile =
  match !memo with
  | Some (p, chains) when p == profile -> chains
  | _ ->
    let st = init_state profile in
    let edges = sorted_edges profile in
    while merge_round st edges do
      ()
    done;
    let result = ordered_chains st in
    memo := Some (profile, result);
    result

let plan profile ~cfa_bytes =
  let prog = Profile.program profile in
  let counts = Profile.counts profile in
  let chains = chains profile in
  let cfa_seqs, other_seqs = Mapping.fit_cfa prog ~cfa_bytes chains in
  let cold = ref [] in
  Array.iter
    (fun p ->
      Array.iter
        (fun bid -> if counts.(bid) = 0 then cold := bid :: !cold)
        p.Stc_cfg.Proc.blocks)
    prog.Program.procs;
  { Mapping.cfa_seqs; other_seqs; cold = List.rev !cold }

let layout profile ~cache_bytes ~cfa_bytes =
  Mapping.map_plan (Profile.program profile) ~name:"exttsp" ~cache_bytes
    ~cfa_bytes
    (plan profile ~cfa_bytes)
