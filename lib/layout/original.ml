module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc

let layout prog =
  let order =
    Array.concat
      (Array.to_list (Array.map (fun p -> p.Proc.blocks) prog.Program.procs))
  in
  Layout.of_block_order prog ~name:"orig" order
