module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc

let block_order prog =
  Array.concat
    (Array.to_list (Array.map (fun p -> p.Proc.blocks) prog.Program.procs))

let plan prog =
  {
    Mapping.cfa_seqs = [];
    other_seqs = [ Array.to_list (block_order prog) ];
    cold = [];
  }

let layout prog = Layout.of_block_order prog ~name:"orig" (block_order prog)
