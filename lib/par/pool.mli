(** A fixed-size domain pool with chunked, self-scheduling work queues —
    the substrate for the embarrassingly parallel simulation grids
    (Tables 3/4, the ablation sweep, and any future parameter sweep).

    Design points:

    - {b Fixed size.} [create ~domains:n] provides a parallelism of [n]:
      [n - 1] worker domains are spawned once and reused across calls;
      the calling domain is the [n]-th worker while a {!map} or
      {!iter_chunks} call is in flight. [~domains:1] spawns nothing and
      runs every task inline — the exact serial path.
    - {b Chunked queues.} Each call shares one atomic cursor; workers
      claim [chunk] consecutive indices at a time (self-scheduling), so
      uneven task costs balance without a scheduler thread.
    - {b Deterministic results.} {!map} writes the result of input [i]
      into slot [i]: the output array is ordered by input index, never by
      completion order.
    - {b Exception propagation.} A raising task never hangs the pool: the
      remaining work is cancelled (already-claimed chunks finish), the
      workers return to idle, and the exception of the lowest-indexed
      failing chunk is re-raised in the caller with its backtrace.

    A pool must be driven from one domain at a time (calls do not nest
    and are not thread-safe); tasks must not themselves call into the
    same pool. *)

type t

val create : ?domains:int -> ?trace:Stc_obs.Trace.t -> unit -> t
(** [create ~domains:n ()] spawns [n - 1] worker domains ([n] is clamped
    to at least 1). Default: [Domain.recommended_domain_count () - 1],
    leaving one core for the rest of the system. With [~trace], every
    claimed chunk emits a [pool.chunk] slice on the domain that ran it
    and a [pool.queue] counter sample of the items still unclaimed — the
    per-domain utilization timeline [tools/trace_report] digests. *)

val domains : t -> int
(** The parallelism (worker domains + the calling domain), i.e. the
    [~domains] the pool was created with. *)

(** Cumulative scheduling account, kept whether or not tracing is on
    (two clock reads per chunk — noise next to any simulation cell).
    Arrays are indexed by domain slot: 0 is the calling domain, [1..n-1]
    the spawned workers. *)
type stats = {
  s_domains : int;
  s_submits : int;  (** {!map}/{!iter_chunks} calls served so far *)
  s_wall : float;  (** total seconds inside those calls *)
  s_busy : float array;  (** per slot, seconds spent running chunks *)
  s_idle : float array;  (** per slot, [s_wall - s_busy] clamped at 0 *)
  s_chunks : int array;  (** per slot, chunks executed *)
}

val stats : t -> stats
(** Snapshot of the account. Call between jobs (not from inside a task):
    the join in [submit] publishes every worker's writes. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] computes [Array.map f xs] using every domain of the
    pool. Results land by input index. [~chunk] is the number of
    consecutive indices a worker claims at a time (default: a heuristic
    giving each domain several chunks; pass [~chunk:1] when tasks are
    few and individually heavy, as simulation cells are). *)

val iter_chunks : ?chunk:int -> t -> int -> (lo:int -> hi:int -> unit) -> unit
(** [iter_chunks pool n f] partitions [0..n-1] into chunks and calls
    [f ~lo ~hi] (half-open range) for each, in parallel. [f] must only
    touch state disjoint per index. This is the primitive {!map} is
    built on; use it directly to avoid materializing an input array. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. The pool must be idle. Calling
    {!map} after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?domains:int -> ?trace:Stc_obs.Trace.t -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards
    (also on exception). *)
