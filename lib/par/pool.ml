module Trace = Stc_obs.Trace

type job = {
  total : int;
  chunk : int;
  next : int Atomic.t;
  work : int -> int -> unit;  (* work lo hi, half-open; must not raise *)
}

(* Accounting slots: the calling domain is slot 0, spawned workers are
   slots 1..n_workers. Each slot is written by exactly one domain while a
   job is in flight; readers ({!stats}) run between jobs, after the
   mutex hand-off in [submit] has published the writes. *)
type t = {
  n_workers : int;  (* spawned domains; the caller is one more *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  have_job : Condition.t;
  job_done : Condition.t;
  mutable gen : int;  (* job generation; bumped on submit *)
  mutable job : job option;  (* the job of generation [gen] *)
  mutable finished : int;  (* workers done with the current generation *)
  mutable stopping : bool;
  busy : float array;
  chunks_done : int array;
  mutable wall : float;  (* seconds spent inside [submit], summed *)
  mutable submits : int;
  trace : Trace.t option;
  tr_chunk : int;  (* interned ids; 0 when [trace = None] *)
  tr_queue : int;
}

let run_chunks t job ~slot =
  let rec go () =
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo < job.total then begin
      let t0 = Unix.gettimeofday () in
      (match t.trace with
      | None -> ()
      | Some tr ->
        (* items still unclaimed after this grab: the queue depth *)
        Trace.counter tr t.tr_queue (max 0 (job.total - lo - job.chunk));
        Trace.begin_ tr t.tr_chunk);
      job.work lo (min (lo + job.chunk) job.total);
      (match t.trace with
      | None -> ()
      | Some tr -> Trace.end_ tr t.tr_chunk);
      t.busy.(slot) <- t.busy.(slot) +. (Unix.gettimeofday () -. t0);
      t.chunks_done.(slot) <- t.chunks_done.(slot) + 1;
      go ()
    end
  in
  go ()

let worker t ~slot =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stopping) && t.gen = !last do
      Condition.wait t.have_job t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      last := t.gen;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      run_chunks t job ~slot;
      Mutex.lock t.m;
      t.finished <- t.finished + 1;
      if t.finished = t.n_workers then Condition.signal t.job_done;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ?domains ?trace () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let tr_chunk, tr_queue =
    match trace with
    | None -> (0, 0)
    | Some tr -> (Trace.intern tr "pool.chunk", Trace.intern tr "pool.queue")
  in
  let t =
    {
      n_workers = domains - 1;
      workers = [||];
      m = Mutex.create ();
      have_job = Condition.create ();
      job_done = Condition.create ();
      gen = 0;
      job = None;
      finished = 0;
      stopping = false;
      busy = Array.make domains 0.0;
      chunks_done = Array.make domains 0;
      wall = 0.0;
      submits = 0;
      trace;
      tr_chunk;
      tr_queue;
    }
  in
  t.workers <-
    Array.init t.n_workers (fun i ->
        Domain.spawn (fun () -> worker t ~slot:(i + 1)));
  t

let domains t = t.n_workers + 1

(* Run [job] to completion using the whole pool; the calling domain
   participates. Returns once every worker has left the job, so the
   workers' writes happen-before the caller's reads (mutex hand-off). *)
let submit t job =
  if t.stopping then invalid_arg "Stc_par.Pool: pool is shut down";
  let t0 = Unix.gettimeofday () in
  if t.n_workers = 0 then run_chunks t job ~slot:0
  else begin
    Mutex.lock t.m;
    t.job <- Some job;
    t.finished <- 0;
    t.gen <- t.gen + 1;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    run_chunks t job ~slot:0;
    Mutex.lock t.m;
    while t.finished < t.n_workers do
      Condition.wait t.job_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end;
  t.wall <- t.wall +. (Unix.gettimeofday () -. t0);
  t.submits <- t.submits + 1

type stats = {
  s_domains : int;
  s_submits : int;
  s_wall : float;
  s_busy : float array;
  s_idle : float array;
  s_chunks : int array;
}

let stats t =
  let busy = Array.copy t.busy in
  {
    s_domains = t.n_workers + 1;
    s_submits = t.submits;
    s_wall = t.wall;
    s_busy = busy;
    s_idle = Array.map (fun b -> Float.max 0.0 (t.wall -. b)) busy;
    s_chunks = Array.copy t.chunks_done;
  }

let default_chunk ~total ~domains =
  (* several chunks per domain so uneven costs balance *)
  max 1 (total / (domains * 8))

let iter_chunks ?chunk t n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~total:n ~domains:(t.n_workers + 1)
    in
    (* A failed chunk records (lo, exn, backtrace); unclaimed chunks are
       skipped once a failure is seen. After the join the lowest-indexed
       failure is re-raised in the caller. *)
    let errors = Atomic.make [] in
    let cancelled = Atomic.make false in
    let work lo hi =
      if not (Atomic.get cancelled) then
        try f ~lo ~hi
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set cancelled true;
          let rec push () =
            let old = Atomic.get errors in
            if not (Atomic.compare_and_set errors old ((lo, e, bt) :: old))
            then push ()
          in
          push ()
    in
    submit t { total = n; chunk; next = Atomic.make 0; work };
    match Atomic.get errors with
    | [] -> ()
    | errs ->
      let lo0, e, bt =
        List.fold_left
          (fun ((lo0, _, _) as acc) ((lo, _, _) as c) ->
            if lo < lo0 then c else acc)
          (List.hd errs) (List.tl errs)
      in
      ignore lo0;
      Printexc.raise_with_backtrace e bt
  end

let map ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    iter_chunks ?chunk t n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          results.(i) <- Some (f xs.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* iter_chunks raised *))
      results
  end

let shutdown t =
  if not t.stopping then begin
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains ?trace f =
  let t = create ?domains ?trace () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
