type job = {
  total : int;
  chunk : int;
  next : int Atomic.t;
  work : int -> int -> unit;  (* work lo hi, half-open; must not raise *)
}

type t = {
  n_workers : int;  (* spawned domains; the caller is one more *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  have_job : Condition.t;
  job_done : Condition.t;
  mutable gen : int;  (* job generation; bumped on submit *)
  mutable job : job option;  (* the job of generation [gen] *)
  mutable finished : int;  (* workers done with the current generation *)
  mutable stopping : bool;
}

let run_chunks job =
  let rec go () =
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo < job.total then begin
      job.work lo (min (lo + job.chunk) job.total);
      go ()
    end
  in
  go ()

let worker t =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stopping) && t.gen = !last do
      Condition.wait t.have_job t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      last := t.gen;
      let job = Option.get t.job in
      Mutex.unlock t.m;
      run_chunks job;
      Mutex.lock t.m;
      t.finished <- t.finished + 1;
      if t.finished = t.n_workers then Condition.signal t.job_done;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      n_workers = domains - 1;
      workers = [||];
      m = Mutex.create ();
      have_job = Condition.create ();
      job_done = Condition.create ();
      gen = 0;
      job = None;
      finished = 0;
      stopping = false;
    }
  in
  t.workers <- Array.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.n_workers + 1

(* Run [job] to completion using the whole pool; the calling domain
   participates. Returns once every worker has left the job, so the
   workers' writes happen-before the caller's reads (mutex hand-off). *)
let submit t job =
  if t.stopping then invalid_arg "Stc_par.Pool: pool is shut down";
  if t.n_workers = 0 then run_chunks job
  else begin
    Mutex.lock t.m;
    t.job <- Some job;
    t.finished <- 0;
    t.gen <- t.gen + 1;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    run_chunks job;
    Mutex.lock t.m;
    while t.finished < t.n_workers do
      Condition.wait t.job_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
  end

let default_chunk ~total ~domains =
  (* several chunks per domain so uneven costs balance *)
  max 1 (total / (domains * 8))

let iter_chunks ?chunk t n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> default_chunk ~total:n ~domains:(t.n_workers + 1)
    in
    (* A failed chunk records (lo, exn, backtrace); unclaimed chunks are
       skipped once a failure is seen. After the join the lowest-indexed
       failure is re-raised in the caller. *)
    let errors = Atomic.make [] in
    let cancelled = Atomic.make false in
    let work lo hi =
      if not (Atomic.get cancelled) then
        try f ~lo ~hi
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set cancelled true;
          let rec push () =
            let old = Atomic.get errors in
            if not (Atomic.compare_and_set errors old ((lo, e, bt) :: old))
            then push ()
          in
          push ()
    in
    submit t { total = n; chunk; next = Atomic.make 0; work };
    match Atomic.get errors with
    | [] -> ()
    | errs ->
      let lo0, e, bt =
        List.fold_left
          (fun ((lo0, _, _) as acc) ((lo, _, _) as c) ->
            if lo < lo0 then c else acc)
          (List.hd errs) (List.tl errs)
      in
      ignore lo0;
      Printexc.raise_with_backtrace e bt
  end

let map ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    iter_chunks ?chunk t n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          results.(i) <- Some (f xs.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* iter_chunks raised *))
      results
  end

let shutdown t =
  if not t.stopping then begin
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
