module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

let op_names =
  [
    "ExecSeqScan";
    "ExecIndexScan";
    "ExecNestLoop";
    "ExecHashJoin";
    "ExecMergeJoin";
    "ExecSort";
    "ExecAgg";
    "ExecGroup";
    "ExecLimit";
    "ExecMaterial";
    "ExecResult";
  ]

(* ------------------------------------------------------------------ *)
(* Executor node representation                                        *)
(* ------------------------------------------------------------------ *)

type node = { mutable next_fn : unit -> int array option; rescan_fn : int array option -> unit }

let k_procnode = Probe.key "ExecProcNode"

let proc_node node = Probe.routine k_procnode @@ fun () -> node.next_fn ()

(* ------------------------------------------------------------------ *)
(* Index scan glue                                                     *)
(* ------------------------------------------------------------------ *)

type iscan = Bt_scan of Btree.scan | Hx_scan of Hashidx.scan

let iscan_begin idx key =
  match (idx, key) with
  | Database.Bt bt, `Eq k -> Bt_scan (Btree.begin_eq bt k)
  | Database.Bt bt, `Range (lo, hi) -> Bt_scan (Btree.begin_range bt ~lo ~hi)
  | Database.Hx hx, `Eq k -> Hx_scan (Hashidx.begin_eq hx k)
  | Database.Hx _, `Range _ ->
    invalid_arg "Exec: range scan over a hash index"

let iscan_next = function
  | Bt_scan s -> Btree.getnext s
  | Hx_scan s -> Hashidx.getnext s

(* ------------------------------------------------------------------ *)
(* Operator states and next functions                                  *)
(* ------------------------------------------------------------------ *)

let k_seqscan = Probe.key "ExecSeqScan"

let seqscan_next scan quals () =
  Probe.routine k_seqscan @@ fun () ->
  let result = ref None and done_ = ref false in
  while Probe.cond "ss_loop" (!result = None && not !done_) do
    let t = Heap.getnext scan in
    if Probe.cond "ss_got" (t <> None) then begin
      let tu = Option.get t in
      if Probe.cond "ss_pass" (Expr.qual quals tu) then result := Some tu
    end
    else done_ := true
  done;
  !result

let k_indexscan = Probe.key "ExecIndexScan"

type indexscan_state = {
  is_heap : Heap.t;
  is_index : Database.index;
  is_key : Plan.key;
  is_quals : Expr.t list;
  mutable is_scan : iscan option;
  mutable is_param : int array option;
  mutable is_done : bool;
}

let indexscan_start st =
  let key =
    match st.is_key with
    | Plan.Key_const_eq v -> `Eq v
    | Plan.Key_outer_eq c -> (
      match st.is_param with
      | Some outer -> `Eq outer.(c)
      | None -> invalid_arg "Exec: parameterized index scan without a param")
    | Plan.Key_range (lo, hi) -> `Range (lo, hi)
  in
  st.is_scan <- Some (iscan_begin st.is_index key)

let indexscan_next st () =
  Probe.routine k_indexscan @@ fun () ->
  if Probe.cond "is_need_start" (st.is_scan = None && not st.is_done) then
    indexscan_start st;
  let result = ref None and done_ = ref false in
  while Probe.cond "is_loop" (!result = None && not !done_ && not st.is_done) do
    let tid = iscan_next (Option.get st.is_scan) in
    if Probe.cond "is_got" (tid <> None) then begin
      let tu = Heap.fetch st.is_heap (Option.get tid) in
      if Probe.cond "is_pass" (Expr.qual st.is_quals tu) then result := Some tu
    end
    else done_ := true
  done;
  !result

let k_nestloop = Probe.key "ExecNestLoop"

type nestloop_state = {
  nl_outer : node;
  nl_inner : node;
  nl_quals : Expr.t list;
  mutable nl_outer_tuple : int array option;
  mutable nl_done : bool;
}

let nestloop_next st () =
  Probe.routine k_nestloop @@ fun () ->
  let result = ref None in
  while Probe.cond "nl_loop" (!result = None && not st.nl_done) do
    if Probe.cond "nl_need_outer" (st.nl_outer_tuple = None) then begin
      let ot = proc_node st.nl_outer in
      if Probe.cond "nl_outer_got" (ot <> None) then begin
        st.nl_outer_tuple <- ot;
        st.nl_inner.rescan_fn ot
      end
      else st.nl_done <- true
    end
    else begin
      let it = proc_node st.nl_inner in
      if Probe.cond "nl_inner_got" (it <> None) then begin
        let joined = Tuple.concat (Option.get st.nl_outer_tuple) (Option.get it) in
        if Probe.cond "nl_pass" (Expr.qual st.nl_quals joined) then
          result := Some joined
      end
      else st.nl_outer_tuple <- None
    end
  done;
  !result

let k_hashjoin = Probe.key "ExecHashJoin"

type hashjoin_state = {
  hj_outer : node;
  hj_inner : node;
  hj_outer_col : int;
  hj_inner_col : int;
  hj_quals : Expr.t list;
  hj_table : (int, int array) Hashtbl.t;
  mutable hj_built : bool;
  mutable hj_outer_tuple : int array option;
  mutable hj_chain : int array list;
  mutable hj_done : bool;
}

let hashjoin_next st () =
  Probe.routine k_hashjoin @@ fun () ->
  if Probe.cond "hj_need_build" (not st.hj_built) then begin
    let filling = ref true in
    while Probe.cond "hj_build_loop" !filling do
      let t = proc_node st.hj_inner in
      if Probe.cond "hj_build_got" (t <> None) then begin
        let tu = Option.get t in
        Hashtbl.add st.hj_table tu.(st.hj_inner_col) tu
      end
      else filling := false
    done;
    st.hj_built <- true
  end;
  let result = ref None in
  while Probe.cond "hj_probe_loop" (!result = None && not st.hj_done) do
    if Probe.cond "hj_have_chain" (st.hj_chain <> []) then begin
      match st.hj_chain with
      | inner :: rest ->
        st.hj_chain <- rest;
        let joined = Tuple.concat (Option.get st.hj_outer_tuple) inner in
        if Probe.cond "hj_pass" (Expr.qual st.hj_quals joined) then
          result := Some joined
      | [] -> assert false
    end
    else begin
      let ot = proc_node st.hj_outer in
      if Probe.cond "hj_outer_got" (ot <> None) then begin
        let otu = Option.get ot in
        st.hj_outer_tuple <- ot;
        st.hj_chain <- Hashtbl.find_all st.hj_table otu.(st.hj_outer_col)
      end
      else st.hj_done <- true
    end
  done;
  !result

let k_mergejoin = Probe.key "ExecMergeJoin"

type mergejoin_state = {
  mj_outer : node;
  mj_inner : node;
  mj_outer_col : int;
  mj_inner_col : int;
  mj_quals : Expr.t list;
  mutable mj_outer_tuple : int array option;
  mutable mj_lookahead : int array option;
  mutable mj_inner_done : bool;
  mutable mj_inner_started : bool;
  mutable mj_group : int array array;
  mutable mj_group_key : int option;
  mutable mj_group_complete : bool;
  mutable mj_group_pos : int;
  mutable mj_group_acc : int array list; (* reversed accumulation *)
  mutable mj_done : bool;
}

let mergejoin_next st () =
  Probe.routine k_mergejoin @@ fun () ->
  let result = ref None in
  let outer_key () =
    match st.mj_outer_tuple with
    | Some t -> t.(st.mj_outer_col)
    | None -> assert false
  in
  let lookahead_key () =
    match st.mj_lookahead with
    | Some t -> Some t.(st.mj_inner_col)
    | None -> None
  in
  let pull_inner () =
    let t = proc_node st.mj_inner in
    (match t with None -> st.mj_inner_done <- true | Some _ -> ());
    st.mj_lookahead <- t;
    st.mj_inner_started <- true
  in
  while Probe.cond "mj_loop" (!result = None && not st.mj_done) do
    if Probe.cond "mj_need_outer" (st.mj_outer_tuple = None) then begin
      let ot = proc_node st.mj_outer in
      if Probe.cond "mj_outer_got" (ot <> None) then begin
        st.mj_outer_tuple <- ot;
        st.mj_group_pos <- 0
      end
      else st.mj_done <- true
    end
    else if
      Probe.cond "mj_group_ready"
        (st.mj_group_complete && st.mj_group_key = Some (outer_key ()))
    then begin
      if Probe.cond "mj_group_more" (st.mj_group_pos < Array.length st.mj_group)
      then begin
        let joined =
          Tuple.concat
            (Option.get st.mj_outer_tuple)
            st.mj_group.(st.mj_group_pos)
        in
        st.mj_group_pos <- st.mj_group_pos + 1;
        if Probe.cond "mj_pass" (Expr.qual st.mj_quals joined) then
          result := Some joined
      end
      else st.mj_outer_tuple <- None
    end
    else if
      Probe.cond "mj_inner_behind"
        ((not st.mj_inner_started)
        || match lookahead_key () with
           | Some k -> k < outer_key ()
           | None -> false)
    then pull_inner ()
    else if
      Probe.cond "mj_keys_equal" (lookahead_key () = Some (outer_key ()))
    then begin
      (* absorb the lookahead into the (possibly new) inner group *)
      if st.mj_group_key <> Some (outer_key ()) || st.mj_group_complete then begin
        st.mj_group_acc <- [];
        st.mj_group_key <- Some (outer_key ());
        st.mj_group_complete <- false
      end;
      st.mj_group_acc <- Option.get st.mj_lookahead :: st.mj_group_acc;
      pull_inner ();
      if lookahead_key () <> st.mj_group_key then begin
        st.mj_group <- Array.of_list (List.rev st.mj_group_acc);
        st.mj_group_complete <- true;
        st.mj_group_pos <- 0
      end
    end
    else begin
      (* inner side is ahead (or exhausted): this outer tuple matches
         nothing *)
      st.mj_outer_tuple <- None
    end
  done;
  !result

let k_sort = Probe.key "ExecSort"

let k_performsort = Probe.key "tuplesort_performsort"

let k_sortcmp = Probe.key "tuplesort_cmp"

type sort_state = {
  so_child : node;
  so_cols : (int * bool) list;
  mutable so_rows : int array array;
  mutable so_acc : int array list;
  mutable so_filled : bool;
  mutable so_pos : int;
}

let tuplesort_cmp cols a b =
  Probe.routine k_sortcmp @@ fun () ->
  let res = ref 0 in
  let remaining = ref cols in
  while Probe.cond "cmp_col" (!res = 0 && !remaining <> []) do
    match !remaining with
    | (c, desc) :: rest ->
      let d = compare a.(c) b.(c) in
      res := (if desc then -d else d);
      remaining := rest
    | [] -> assert false
  done;
  !res

(* Merge sort with a probe-visible comparison step, so the comparator call
   count is the "sort_step" loop of the tuplesort_performsort skeleton. *)
let performsort st =
  Probe.routine k_performsort @@ fun () ->
  let cmp a b =
    ignore (Probe.cond "sort_step" true);
    tuplesort_cmp st.so_cols a b
  in
  let arr = st.so_rows in
  let n = Array.length arr in
  let tmp = Array.copy arr in
  let rec msort lo hi =
    if hi - lo > 1 then begin
      let mid = (lo + hi) / 2 in
      msort lo mid;
      msort mid hi;
      Array.blit arr lo tmp lo (hi - lo);
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || cmp tmp.(!i) tmp.(!j) <= 0) then begin
          arr.(k) <- tmp.(!i);
          incr i
        end
        else begin
          arr.(k) <- tmp.(!j);
          incr j
        end
      done
    end
  in
  msort 0 n;
  ignore (Probe.cond "sort_step" false)

let sort_next st () =
  Probe.routine k_sort @@ fun () ->
  if Probe.cond "sort_need_fill" (not st.so_filled) then begin
    let filling = ref true in
    while Probe.cond "sort_fill" !filling do
      let t = proc_node st.so_child in
      if Probe.cond "sort_stored" (t <> None) then
        st.so_acc <- Option.get t :: st.so_acc
      else filling := false
    done;
    st.so_rows <- Array.of_list (List.rev st.so_acc);
    st.so_acc <- [];
    performsort st;
    st.so_filled <- true
  end;
  if Probe.cond "sort_emit" (st.so_pos < Array.length st.so_rows) then begin
    let r = st.so_rows.(st.so_pos) in
    st.so_pos <- st.so_pos + 1;
    Some r
  end
  else None

(* --- aggregation --- *)

type agg_acc = {
  spec : Plan.agg;
  mutable count : int;
  mutable sum : int;
  mutable minv : int;
  mutable maxv : int;
}

let fresh_acc spec = { spec; count = 0; sum = 0; minv = max_int; maxv = min_int }

let agg_expr spec =
  match spec with
  | Plan.Count -> Expr.Const 1
  | Plan.Sum e | Plan.Min e | Plan.Max e | Plan.Avg e -> e

let k_advance = Probe.key "advance_aggregates"

let advance_aggregates accs tuple =
  Probe.routine k_advance @@ fun () ->
  let remaining = ref accs in
  while Probe.cond "agg_adv" (!remaining <> []) do
    match !remaining with
    | acc :: rest ->
      let v = Expr.eval (agg_expr acc.spec) tuple in
      acc.count <- acc.count + 1;
      acc.sum <- acc.sum + v;
      if v < acc.minv then acc.minv <- v;
      if v > acc.maxv then acc.maxv <- v;
      remaining := rest
    | [] -> assert false
  done

let finalize_acc acc =
  match acc.spec with
  | Plan.Count -> acc.count
  | Plan.Sum _ -> acc.sum
  | Plan.Min _ -> if acc.count = 0 then 0 else acc.minv
  | Plan.Max _ -> if acc.count = 0 then 0 else acc.maxv
  | Plan.Avg _ -> if acc.count = 0 then 0 else acc.sum / acc.count

let k_agg = Probe.key "ExecAgg"

type agg_state = {
  ag_child : node;
  ag_specs : Plan.agg list;
  mutable ag_done : bool;
}

let agg_next st () =
  Probe.routine k_agg @@ fun () ->
  if Probe.cond "agg_done" st.ag_done then None
  else begin
    let accs = List.map fresh_acc st.ag_specs in
    let filling = ref true in
    while Probe.cond "agg_fill" !filling do
      let t = proc_node st.ag_child in
      if Probe.cond "agg_got" (t <> None) then
        advance_aggregates accs (Option.get t)
      else filling := false
    done;
    st.ag_done <- true;
    Some (Array.of_list (List.map finalize_acc accs))
  end

let k_group = Probe.key "ExecGroup"

type group_state = {
  gr_child : node;
  gr_cols : int list;
  gr_specs : Plan.agg list;
  mutable gr_lookahead : int array option;
  mutable gr_input_done : bool;
  mutable gr_key : int array option;
  mutable gr_accs : agg_acc list;
  mutable gr_done : bool;
}

let group_key_of st tuple = Array.of_list (List.map (fun c -> tuple.(c)) st.gr_cols)

let group_next st () =
  Probe.routine k_group @@ fun () ->
  let result = ref None in
  while Probe.cond "grp_loop" (!result = None && not st.gr_done) do
    if
      Probe.cond "grp_need_tuple"
        (st.gr_lookahead = None && not st.gr_input_done)
    then begin
      let t = proc_node st.gr_child in
      if Probe.cond "grp_got" (t <> None) then st.gr_lookahead <- t
      else st.gr_input_done <- true
    end
    else if
      Probe.cond "grp_flush"
        (match (st.gr_key, st.gr_lookahead) with
        | Some _, None -> st.gr_input_done
        | Some key, Some la -> group_key_of st la <> key
        | None, _ -> false)
    then begin
      let key = Option.get st.gr_key in
      let aggs = List.map finalize_acc st.gr_accs in
      result := Some (Array.append key (Array.of_list aggs));
      st.gr_key <- None;
      st.gr_accs <- []
    end
    else if Probe.cond "grp_absorb" (st.gr_lookahead <> None) then begin
      let tu = Option.get st.gr_lookahead in
      if st.gr_key = None then begin
        st.gr_key <- Some (group_key_of st tu);
        st.gr_accs <- List.map fresh_acc st.gr_specs
      end;
      advance_aggregates st.gr_accs tu;
      st.gr_lookahead <- None
    end
    else st.gr_done <- true
  done;
  !result

let k_limit = Probe.key "ExecLimit"

type limit_state = { li_child : node; li_limit : int; mutable li_count : int }

let limit_next st () =
  Probe.routine k_limit @@ fun () ->
  if Probe.cond "lim_more" (st.li_count < st.li_limit) then begin
    let t = proc_node st.li_child in
    if Probe.cond "lim_got" (t <> None) then begin
      st.li_count <- st.li_count + 1;
      t
    end
    else begin
      st.li_count <- st.li_limit;
      None
    end
  end
  else None

let k_material = Probe.key "ExecMaterial"

type material_state = {
  ma_child : node;
  mutable ma_buf : int array array;
  mutable ma_n : int;
  mutable ma_input_done : bool;
  mutable ma_pos : int;
}

let material_append st t =
  if st.ma_n = Array.length st.ma_buf then begin
    let buf = Array.make (max 16 (2 * st.ma_n)) [||] in
    Array.blit st.ma_buf 0 buf 0 st.ma_n;
    st.ma_buf <- buf
  end;
  st.ma_buf.(st.ma_n) <- t;
  st.ma_n <- st.ma_n + 1

let material_next st () =
  Probe.routine k_material @@ fun () ->
  let result = ref None and done_ = ref false in
  while Probe.cond "mat_loop" (!result = None && not !done_) do
    if Probe.cond "mat_have_buf" (st.ma_pos < st.ma_n) then begin
      result := Some st.ma_buf.(st.ma_pos);
      st.ma_pos <- st.ma_pos + 1
    end
    else if Probe.cond "mat_can_fill" (not st.ma_input_done) then begin
      let t = proc_node st.ma_child in
      if Probe.cond "mat_got" (t <> None) then material_append st (Option.get t)
      else st.ma_input_done <- true
    end
    else done_ := true
  done;
  !result

let k_result = Probe.key "ExecResult"

let result_next child exprs () =
  Probe.routine k_result @@ fun () ->
  let t = proc_node child in
  if Probe.cond "res_got" (t <> None) then
    Some (Expr.project exprs (Option.get t))
  else None

(* ------------------------------------------------------------------ *)
(* Init (plan -> node tree)                                            *)
(* ------------------------------------------------------------------ *)

let k_initnode = Probe.key "ExecInitNode"

let k_executor_start = Probe.key "ExecutorStart"

let k_executor_run = Probe.key "ExecutorRun"

let dummy_rescan _ = ()

let rec init_node db (plan : Plan.t) : node =
  Probe.routine k_initnode @@ fun () ->
  let children_left = ref (match plan with
    | Plan.Seq_scan _ | Plan.Index_scan _ -> 0
    | Plan.Nest_loop _ | Plan.Hash_join _ | Plan.Merge_join _ -> 2
    | _ -> 1)
  in
  let inited = ref [] in
  let child_plans =
    match plan with
    | Plan.Seq_scan _ | Plan.Index_scan _ -> []
    | Plan.Nest_loop { outer; inner; _ }
    | Plan.Hash_join { outer; inner; _ }
    | Plan.Merge_join { outer; inner; _ } ->
      [ outer; inner ]
    | Plan.Sort { child; _ }
    | Plan.Agg { child; _ }
    | Plan.Group { child; _ }
    | Plan.Limit { child; _ }
    | Plan.Material { child; _ }
    | Plan.Result { child; _ } ->
      [ child ]
  in
  let remaining = ref child_plans in
  while Probe.cond "init_children" (!children_left > 0) do
    match !remaining with
    | p :: rest ->
      inited := init_node db p :: !inited;
      remaining := rest;
      decr children_left
    | [] -> assert false
  done;
  let children = List.rev !inited in
  (* Sequential scans open their heap scan at init time; the probe fires
     for every node so the ExecInitNode walk stays in step. *)
  let pre_scan =
    if
      Probe.cond "init_scan"
        (match plan with Plan.Seq_scan _ -> true | _ -> false)
    then
      match plan with
      | Plan.Seq_scan { table; _ } ->
        Some (Heap.begin_scan (Database.heap db table))
      | _ -> assert false
    else None
  in
  build_node db plan children ~pre_scan

and build_node db plan children ~pre_scan =
  match (plan, children) with
  | Plan.Seq_scan { quals; _ }, [] ->
    let scan = Option.get pre_scan in
    {
      next_fn = seqscan_next scan quals;
      rescan_fn = (fun _ -> Heap.rescan scan);
    }
  | Plan.Index_scan { table; index; key; quals }, [] ->
    let st =
      {
        is_heap = Database.heap db table;
        is_index = Database.index db index;
        is_key = key;
        is_quals = quals;
        is_scan = None;
        is_param = None;
        is_done = false;
      }
    in
    {
      next_fn = indexscan_next st;
      rescan_fn =
        (fun param ->
          st.is_param <- param;
          st.is_scan <- None;
          st.is_done <- false);
    }
  | Plan.Nest_loop { quals; _ }, [ outer; inner ] ->
    let st =
      {
        nl_outer = outer;
        nl_inner = inner;
        nl_quals = quals;
        nl_outer_tuple = None;
        nl_done = false;
      }
    in
    {
      next_fn = nestloop_next st;
      rescan_fn =
        (fun param ->
          st.nl_outer_tuple <- None;
          st.nl_done <- false;
          outer.rescan_fn param);
    }
  | Plan.Hash_join { outer_col; inner_col; quals; _ }, [ outer; inner ] ->
    let st =
      {
        hj_outer = outer;
        hj_inner = inner;
        hj_outer_col = outer_col;
        hj_inner_col = inner_col;
        hj_quals = quals;
        hj_table = Hashtbl.create 1024;
        hj_built = false;
        hj_outer_tuple = None;
        hj_chain = [];
        hj_done = false;
      }
    in
    {
      next_fn = hashjoin_next st;
      rescan_fn =
        (fun param ->
          st.hj_outer_tuple <- None;
          st.hj_chain <- [];
          st.hj_done <- false;
          outer.rescan_fn param);
    }
  | Plan.Merge_join { outer_col; inner_col; quals; _ }, [ outer; inner ] ->
    let st =
      {
        mj_outer = outer;
        mj_inner = inner;
        mj_outer_col = outer_col;
        mj_inner_col = inner_col;
        mj_quals = quals;
        mj_outer_tuple = None;
        mj_lookahead = None;
        mj_inner_done = false;
        mj_inner_started = false;
        mj_group = [||];
        mj_group_key = None;
        mj_group_complete = false;
        mj_group_pos = 0;
        mj_group_acc = [];
        mj_done = false;
      }
    in
    { next_fn = mergejoin_next st; rescan_fn = dummy_rescan }
  | Plan.Sort { cols; _ }, [ child ] ->
    let st =
      {
        so_child = child;
        so_cols = cols;
        so_rows = [||];
        so_acc = [];
        so_filled = false;
        so_pos = 0;
      }
    in
    { next_fn = sort_next st; rescan_fn = (fun _ -> st.so_pos <- 0) }
  | Plan.Agg { aggs; _ }, [ child ] ->
    let st = { ag_child = child; ag_specs = aggs; ag_done = false } in
    {
      next_fn = agg_next st;
      rescan_fn =
        (fun param ->
          st.ag_done <- false;
          child.rescan_fn param);
    }
  | Plan.Group { cols; aggs; _ }, [ child ] ->
    let st =
      {
        gr_child = child;
        gr_cols = cols;
        gr_specs = aggs;
        gr_lookahead = None;
        gr_input_done = false;
        gr_key = None;
        gr_accs = [];
        gr_done = false;
      }
    in
    { next_fn = group_next st; rescan_fn = dummy_rescan }
  | Plan.Limit { limit; _ }, [ child ] ->
    let st = { li_child = child; li_limit = limit; li_count = 0 } in
    {
      next_fn = limit_next st;
      rescan_fn =
        (fun param ->
          st.li_count <- 0;
          child.rescan_fn param);
    }
  | Plan.Material _, [ child ] ->
    let st =
      { ma_child = child; ma_buf = [||]; ma_n = 0; ma_input_done = false; ma_pos = 0 }
    in
    { next_fn = material_next st; rescan_fn = (fun _ -> st.ma_pos <- 0) }
  | Plan.Result { exprs; _ }, [ child ] ->
    { next_fn = result_next child exprs; rescan_fn = child.rescan_fn }
  | _ -> invalid_arg "Exec.build_node: arity mismatch"

let init db plan =
  Probe.routine k_executor_start @@ fun () -> init_node db plan

let next node = proc_node node

let run db plan =
  let root = init db plan in
  Probe.routine k_executor_run @@ fun () ->
  let out = ref [] in
  let running = ref true in
  while Probe.cond "run_loop" !running do
    let t = proc_node root in
    if Probe.cond "run_got" (t <> None) then out := Option.get t :: !out
    else running := false
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Skeletons                                                           *)
(* ------------------------------------------------------------------ *)

let e = Stc_cfg.Proc.Executor

let skeletons =
  [
    ( "ExecProcNode",
      e,
      Skeleton.[ straight 2; icall "dispatch" op_names; straight 1 ] );
    ( "ExecSeqScan",
      e,
      Skeleton.
        [
          straight 3;
          while_ "ss_loop"
            [
              call "heap_getnext";
              if_else "ss_got"
                [ call "ExecQual"; if_ "ss_pass" [ straight 2 ] ]
                [ straight 1 ];
            ];
          straight 1;
        ] );
    ( "ExecIndexScan",
      e,
      Skeleton.
        [
          straight 3;
          if_ "is_need_start"
            [ straight 2; icall "am_begin" [ "btbeginscan"; "hash_search" ] ];
          while_ "is_loop"
            [
              icall "am_gettuple" [ "btgettuple"; "hashgettuple" ];
              if_else "is_got"
                [
                  call "heap_fetch";
                  call "ExecQual";
                  if_ "is_pass" [ straight 2 ];
                ]
                [ straight 1 ];
            ];
          straight 1;
        ] );
    ( "ExecNestLoop",
      e,
      Skeleton.
        [
          straight 3;
          while_ "nl_loop"
            [
              if_else "nl_need_outer"
                [
                  call "ExecProcNode";
                  if_else "nl_outer_got" [ straight 3 ] [ straight 1 ];
                ]
                [
                  call "ExecProcNode";
                  if_else "nl_inner_got"
                    [
                      straight 3;
                      helper "palloc";
                      call "ExecQual";
                      if_ "nl_pass" [ straight 2 ];
                    ]
                    [ straight 1 ];
                ];
            ];
          straight 1;
        ] );
    ( "ExecHashJoin",
      e,
      Skeleton.
        [
          straight 3;
          if_ "hj_need_build"
            [
              straight 3;
              helper "palloc";
              while_ "hj_build_loop"
                [
                  call "ExecProcNode";
                  if_else "hj_build_got"
                    [ straight 2; helper "hash_any"; straight 2 ]
                    [ straight 1 ];
                ];
              straight 2;
            ];
          while_ "hj_probe_loop"
            [
              if_else "hj_have_chain"
                [
                  straight 3;
                  helper "palloc";
                  call "ExecQual";
                  if_ "hj_pass" [ straight 2 ];
                ]
                [
                  call "ExecProcNode";
                  if_else "hj_outer_got"
                    [ straight 2; helper "hash_any"; straight 1 ]
                    [ straight 1 ];
                ];
            ];
          straight 1;
        ] );
    ( "ExecMergeJoin",
      e,
      Skeleton.
        [
          straight 4;
          while_ "mj_loop"
            [
              if_else "mj_need_outer"
                [
                  call "ExecProcNode";
                  if_else "mj_outer_got" [ straight 2 ] [ straight 1 ];
                ]
                [
                  if_else "mj_group_ready"
                    [
                      if_else "mj_group_more"
                        [
                          straight 3;
                          helper "palloc";
                          call "ExecQual";
                          if_ "mj_pass" [ straight 2 ];
                        ]
                        [ straight 2 ];
                    ]
                    [
                      if_else "mj_inner_behind"
                        [ call "ExecProcNode"; straight 2 ]
                        [
                          if_else "mj_keys_equal"
                            [
                              straight 4;
                              call "ExecProcNode";
                              straight 3;
                            ]
                            [ straight 2 ];
                        ];
                    ];
                ];
            ];
          straight 1;
        ] );
    ( "tuplesort_cmp",
      e,
      Skeleton.[ straight 2; while_ "cmp_col" [ straight 4 ]; straight 1 ] );
    ( "tuplesort_performsort",
      e,
      Skeleton.
        [
          straight 5;
          helper "palloc";
          while_ "sort_step" [ call "tuplesort_cmp"; straight 2 ];
          straight 2;
        ] );
    ( "ExecSort",
      e,
      Skeleton.
        [
          straight 3;
          if_ "sort_need_fill"
            [
              straight 2;
              helper "palloc";
              while_ "sort_fill"
                [
                  call "ExecProcNode";
                  if_else "sort_stored" [ straight 2 ] [ straight 1 ];
                ];
              straight 2;
              call "tuplesort_performsort";
              straight 1;
            ];
          if_else "sort_emit" [ straight 3 ] [ straight 1 ];
        ] );
    ( "advance_aggregates",
      e,
      Skeleton.
        [
          straight 2;
          while_ "agg_adv" [ call "ExecEvalExpr"; straight 4 ];
          helper "datumCopy";
          straight 1;
        ] );
    ( "ExecAgg",
      e,
      Skeleton.
        [
          straight 2;
          if_else "agg_done" [ straight 1 ]
            [
              straight 3;
              helper "palloc";
              while_ "agg_fill"
                [
                  call "ExecProcNode";
                  if_else "agg_got" [ call "advance_aggregates" ]
                    [ straight 1 ];
                ];
              straight 3;
            ];
          straight 1;
        ] );
    ( "ExecGroup",
      e,
      Skeleton.
        [
          straight 3;
          while_ "grp_loop"
            [
              if_else "grp_need_tuple"
                [
                  call "ExecProcNode";
                  if_else "grp_got" [ straight 1 ] [ straight 1 ];
                ]
                [
                  if_else "grp_flush"
                    [ straight 4; helper "palloc"; straight 2 ]
                    [
                      if_else "grp_absorb"
                        [ straight 3; call "advance_aggregates"; straight 1 ]
                        [ straight 1 ];
                    ];
                ];
            ];
          straight 1;
        ] );
    ( "ExecLimit",
      e,
      Skeleton.
        [
          straight 2;
          if_else "lim_more"
            [
              call "ExecProcNode";
              if_else "lim_got" [ straight 2 ] [ straight 2 ];
            ]
            [ straight 1 ];
          straight 1;
        ] );
    ( "ExecMaterial",
      e,
      Skeleton.
        [
          straight 3;
          while_ "mat_loop"
            [
              if_else "mat_have_buf" [ straight 3 ]
                [
                  if_else "mat_can_fill"
                    [
                      call "ExecProcNode";
                      if_else "mat_got"
                        [ straight 2; helper "list_cons" ]
                        [ straight 1 ];
                    ]
                    [ straight 1 ];
                ];
            ];
          straight 1;
        ] );
    ( "ExecResult",
      e,
      Skeleton.
        [
          straight 2;
          call "ExecProcNode";
          if_else "res_got" [ call "ExecProject"; straight 1 ] [ straight 1 ];
          straight 1;
        ] );
    ( "ExecInitNode",
      e,
      Skeleton.
        [
          straight 6;
          helper "palloc";
          helper "fmgr_info_lookup";
          helper "strncmp_pg";
          helper "oidcmp";
          while_ "init_children" [ call "ExecInitNode"; straight 2 ];
          if_ "init_scan" [ call "heap_beginscan"; straight 1 ];
          straight 4;
          helper "lookup_tupdesc";
          straight 2;
        ] );
    ( "ExecutorStart",
      e,
      Skeleton.
        [
          straight 8;
          helper "palloc";
          helper "MemoryContextSwitchTo";
          helper "errstack_push";
          helper "elog_check";
          straight 4;
          call "ExecInitNode";
          straight 3;
          helper "ResourceOwnerRemember";
        ] );
    ( "ExecutorRun",
      e,
      Skeleton.
        [
          straight 5;
          helper "MemoryContextSwitchTo";
          while_ "run_loop"
            [
              call "ExecProcNode";
              if_else "run_got"
                [ straight 3; helper "list_cons" ]
                [ straight 1 ];
            ];
          straight 3;
          helper "MemoryContextSwitchTo";
        ] );
  ]
