(** Scalar expressions over executor tuples, with an instrumented recursive
    evaluator ([ExecEvalExpr]). Booleans are 0/1 integers; [And]/[Or]
    short-circuit, giving the evaluator real data-dependent branches. *)

type t =
  | Col of int  (** Attribute of the current (possibly joined) tuple. *)
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** Integer division; division by zero yields 0. *)
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | In_list of t * int list

val eval : t -> int array -> int
(** Instrumented evaluation against a tuple. *)

val eval_bool : t -> int array -> bool

val qual : t list -> int array -> bool
(** Instrumented [ExecQual]: conjunction with early exit. *)

val project : t list -> int array -> int array
(** Instrumented [ExecProject]. *)

val col_between : int -> int -> int -> t
(** [col_between c lo hi] = [lo <= col c <= hi], inclusive. *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
