module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

type t = {
  name : string;
  file : Storage.file;
  bufmgr : Bufmgr.t;
  width : int;
  mutable rows : int;
}

let load storage bufmgr ~name ~rows ~width =
  let file = Storage.new_file storage ~name ~width in
  Array.iter (fun row -> ignore (Storage.append_row file row)) rows;
  { name; file; bufmgr; width; rows = Array.length rows }

let name t = t.name

let width t = t.width

let n_rows t = t.rows

let file t = t.file

type scan = {
  heap : t;
  mutable page_no : int;
  mutable slot : int;
  mutable page_pinned : bool;
}

let k_beginscan = Probe.key "heap_beginscan"

let k_getnext = Probe.key "heap_getnext"

let k_fetch = Probe.key "heap_fetch"

let begin_scan heap =
  Probe.routine k_beginscan @@ fun () ->
  { heap; page_no = 0; slot = 0; page_pinned = false }

let rescan scan =
  scan.page_no <- 0;
  scan.slot <- 0;
  scan.page_pinned <- false

let getnext scan =
  Probe.routine k_getnext @@ fun () ->
  let heap = scan.heap in
  let result = ref None in
  while
    Probe.cond "next_slot"
      (!result = None && scan.page_no < Storage.n_pages heap.file)
  do
    if Probe.cond "need_page" (not scan.page_pinned) then begin
      Bufmgr.read_buffer heap.bufmgr heap.file scan.page_no;
      scan.page_pinned <- true
    end;
    let page = Storage.page heap.file scan.page_no in
    if Probe.cond "slot_valid" (scan.slot < Page.n_items page) then begin
      let tuple = Tuple.deform page ~slot:scan.slot in
      scan.slot <- scan.slot + 1;
      result := Some tuple
    end
    else begin
      Bufmgr.release_buffer heap.bufmgr heap.file scan.page_no;
      scan.page_pinned <- false;
      scan.page_no <- scan.page_no + 1;
      scan.slot <- 0
    end
  done;
  !result

let fetch heap (pageno, slot) =
  Probe.routine k_fetch @@ fun () ->
  Bufmgr.read_buffer heap.bufmgr heap.file pageno;
  let page = Storage.page heap.file pageno in
  let tuple = Tuple.deform page ~slot in
  Bufmgr.release_buffer heap.bufmgr heap.file pageno;
  tuple

let skeletons =
  [
    ( "heap_beginscan",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [ straight 6; helper "palloc"; straight 4; helper "SnapshotCheck" ] );
    ( "heap_getnext",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 4;
          while_ "next_slot"
            [
              if_ "need_page" [ call "ReadBuffer"; straight 2 ];
              if_else "slot_valid"
                [ call "heap_deform_tuple"; straight 3 ]
                [ call "ReleaseBuffer"; straight 3 ];
            ];
          straight 2;
        ] );
    ( "heap_fetch",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 5;
          call "ReadBuffer";
          straight 2;
          call "heap_deform_tuple";
          straight 2;
          call "ReleaseBuffer";
          straight 2;
        ] );
  ]
