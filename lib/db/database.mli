(** A loaded database instance: heaps plus either the B-tree-indexed or the
    Hash-indexed variant of Section 3 of the paper (unique indexes on
    primary keys, multi-entry indexes on foreign keys, and — on the B-tree
    variant only — date indexes usable for range scans). *)

type index_kind = Btree_db | Hash_db

type index = Bt of Btree.t | Hx of Hashidx.t

type t

val load :
  ?frames:int -> Stc_dbdata.Datagen.t -> kind:index_kind -> t
(** Build heaps and indexes from generated data (not traced: run it before
    installing a walker). [frames] sizes the buffer pool. *)

val kind : t -> index_kind

val bufmgr : t -> Bufmgr.t

val heap : t -> string -> Heap.t
(** Raises [Not_found]. *)

val index : t -> string -> index
(** By name, e.g. ["lineitem.l_orderkey"]. Raises [Not_found]. *)

val has_index : t -> string -> bool

val index_names : t -> string list
