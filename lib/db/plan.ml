type key =
  | Key_const_eq of int
  | Key_outer_eq of int
  | Key_range of int option * int option

type agg = Count | Sum of Expr.t | Min of Expr.t | Max of Expr.t | Avg of Expr.t

type t =
  | Seq_scan of { table : string; quals : Expr.t list }
  | Index_scan of {
      table : string;
      index : string;
      key : key;
      quals : Expr.t list;
    }
  | Nest_loop of { outer : t; inner : t; quals : Expr.t list }
  | Hash_join of {
      outer : t;
      inner : t;
      outer_col : int;
      inner_col : int;
      quals : Expr.t list;
    }
  | Merge_join of {
      outer : t;
      inner : t;
      outer_col : int;
      inner_col : int;
      quals : Expr.t list;
    }
  | Sort of { child : t; cols : (int * bool) list }
  | Agg of { child : t; aggs : agg list }
  | Group of { child : t; cols : int list; aggs : agg list }
  | Limit of { child : t; limit : int }
  | Material of { child : t }
  | Result of { child : t; exprs : Expr.t list }

let node_name = function
  | Seq_scan _ -> "ExecSeqScan"
  | Index_scan _ -> "ExecIndexScan"
  | Nest_loop _ -> "ExecNestLoop"
  | Hash_join _ -> "ExecHashJoin"
  | Merge_join _ -> "ExecMergeJoin"
  | Sort _ -> "ExecSort"
  | Agg _ -> "ExecAgg"
  | Group _ -> "ExecGroup"
  | Limit _ -> "ExecLimit"
  | Material _ -> "ExecMaterial"
  | Result _ -> "ExecResult"

let rec iter f t =
  f t;
  match t with
  | Seq_scan _ | Index_scan _ -> ()
  | Nest_loop { outer; inner; _ }
  | Hash_join { outer; inner; _ }
  | Merge_join { outer; inner; _ } ->
    iter f outer;
    iter f inner
  | Sort { child; _ }
  | Agg { child; _ }
  | Group { child; _ }
  | Limit { child; _ }
  | Material { child; _ }
  | Result { child; _ } ->
    iter f child
