(** The buffer manager: a fixed pool of page frames over (file, page)
    coordinates with LRU replacement.

    Because the underlying pages are memory-resident, the pool is an
    accounting structure: what matters for the reproduction is the {e code
    path} each access takes (hash-table hit; miss with a free frame; miss
    with an eviction — each a different probe path, driven by the actual
    access pattern of the queries) plus the [mdread] calls it induces. *)

type t

val create : ?frames:int -> unit -> t
(** Default 256 frames (2 MB of 8 KB pages). *)

val read_buffer : t -> Storage.file -> int -> unit
(** Instrumented [ReadBuffer]: registers an access to the page, faulting
    it in (and evicting) as needed. *)

val release_buffer : t -> Storage.file -> int -> unit
(** Instrumented [ReleaseBuffer] (unpin). *)

val reset : t -> unit
(** Empty the pool and zero the counters — restores a cold, reproducible
    starting state before recording a trace. *)

val hits : t -> int

val misses : t -> int

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
