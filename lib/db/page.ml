type t = { width : int; data : int array; mutable n_items : int; cap : int }

let page_ints = 1024

let capacity ~width = max 1 (page_ints / width)

let create ~width =
  let cap = capacity ~width in
  { width; data = Array.make (cap * width) 0; n_items = 0; cap }

let width t = t.width

let n_items t = t.n_items

let full t = t.n_items >= t.cap

let append t row =
  if full t then invalid_arg "Page.append: page full";
  if Array.length row <> t.width then invalid_arg "Page.append: width mismatch";
  Array.blit row 0 t.data (t.n_items * t.width) t.width;
  t.n_items <- t.n_items + 1

let get t ~slot ~col =
  if slot < 0 || slot >= t.n_items || col < 0 || col >= t.width then
    invalid_arg "Page.get: out of range";
  t.data.((slot * t.width) + col)

let read_row t ~slot ~into =
  if slot < 0 || slot >= t.n_items then invalid_arg "Page.read_row: bad slot";
  if Array.length into <> t.width then invalid_arg "Page.read_row: bad width";
  Array.blit t.data (slot * t.width) into 0 t.width
