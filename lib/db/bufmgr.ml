module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

type t = {
  frames : int;
  table : (int * int, int) Hashtbl.t; (* (file, page) -> stamp *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(frames = 256) () =
  { frames; table = Hashtbl.create 512; clock = 0; hits = 0; misses = 0 }

let k_read_buffer = Probe.key "ReadBuffer"

let k_release_buffer = Probe.key "ReleaseBuffer"

let evict t =
  (* LRU: smallest stamp *)
  let victim = ref None in
  Hashtbl.iter
    (fun key stamp ->
      match !victim with
      | Some (_, s) when s <= stamp -> ()
      | _ -> victim := Some (key, stamp))
    t.table;
  match !victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let read_buffer t file pageno =
  Probe.routine k_read_buffer @@ fun () ->
  t.clock <- t.clock + 1;
  let key = (Storage.file_id file, pageno) in
  if Probe.cond "buf_hit" (Hashtbl.mem t.table key) then begin
    t.hits <- t.hits + 1;
    Hashtbl.replace t.table key t.clock
  end
  else begin
    t.misses <- t.misses + 1;
    if Probe.cond "need_evict" (Hashtbl.length t.table >= t.frames) then
      evict t;
    Storage.mdread file pageno;
    Hashtbl.replace t.table key t.clock
  end

let release_buffer t file pageno =
  Probe.routine k_release_buffer @@ fun () ->
  ignore t;
  ignore file;
  ignore pageno

let reset t =
  Hashtbl.reset t.table;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits

let misses t = t.misses

let skeletons =
  [
    ( "ReadBuffer",
      Stc_cfg.Proc.Buffer_manager,
      Skeleton.
        [
          straight 5;
          helper "LockBufHdr";
          if_else "buf_hit"
            [ straight 4; helper "pgstat_count" ]
            [
              if_ "need_evict"
                [ straight 8; helper "StrategyClockTick"; straight 3 ];
              call "mdread";
              straight 5;
              helper "ResourceOwnerRemember";
            ];
          straight 2;
        ] );
    ( "ReleaseBuffer",
      Stc_cfg.Proc.Buffer_manager,
      Skeleton.
        [ straight 4; helper "LWLockRelease"; straight 2; helper "pfree" ] );
  ]
