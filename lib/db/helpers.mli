(** Names of the generated utility procedures that engine skeletons call
    (memory allocator, lightweight locks, error machinery, list and string
    primitives — the support code a C database kernel leans on). The
    synthetic-program builder generates a procedure for each name, plus the
    deeper layers of utility code those procedures call in turn. *)

val names : string list

val is_helper : string -> bool
