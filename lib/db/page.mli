(** Fixed-size slotted pages holding rows of one table.

    A page models an 8 KB disk page: with 8-byte attributes, a page of a
    [width]-column table holds [1024 / width] tuples. *)

type t

val page_ints : int
(** Attribute slots per page (1024). *)

val capacity : width:int -> int

val create : width:int -> t

val width : t -> int

val n_items : t -> int

val full : t -> bool

val append : t -> int array -> unit
(** Raises [Invalid_argument] if full or the row width mismatches. *)

val get : t -> slot:int -> col:int -> int

val read_row : t -> slot:int -> into:int array -> unit
(** Copy one tuple into a caller-provided array of the right width. *)
