module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

let page_entries = 224 (* (key, page, slot) triples per bucket page *)

type bucket_page = {
  keys : int array;
  tids : (int * int) array;
  next : bucket_page option;
  page_no : int;
}

type t = {
  idx_name : string;
  file : Storage.file;
  bufmgr : Bufmgr.t;
  buckets : bucket_page option array;
  count : int;
}

(* Multiplicative hashing; only the engine uses this (the trace walker's
   [hash_any] helper models its cost). *)
let hash_key k = (k * 0x9E3779B1) land max_int

let build storage bufmgr ~name ~entries =
  let file = Storage.new_virtual_file storage ~name in
  let n = Array.length entries in
  let nbuckets = max 8 (1 lsl Stc_util.Bits.log2_ceil (max 1 (n / 64))) in
  let tmp = Array.make nbuckets [] in
  Array.iter
    (fun (k, tid) ->
      let b = hash_key k mod nbuckets in
      tmp.(b) <- (k, tid) :: tmp.(b))
    entries;
  let buckets =
    Array.map
      (fun lst ->
        let lst = List.rev lst in
        let rec pages = function
          | [] -> None
          | l ->
            let rec take k acc rest =
              match (k, rest) with
              | 0, _ | _, [] -> (List.rev acc, rest)
              | k, x :: tl -> take (k - 1) (x :: acc) tl
            in
            let chunk, rest = take page_entries [] l in
            let keys = Array.of_list (List.map fst chunk) in
            let tids = Array.of_list (List.map snd chunk) in
            let page_no = Storage.alloc_virtual_page file in
            let next = pages rest in
            Some { keys; tids; next; page_no }
        in
        pages lst)
      tmp
  in
  { idx_name = name; file; bufmgr; buckets; count = n }

let name t = t.idx_name

let n_buckets t = Array.length t.buckets

let n_entries t = t.count

type scan = {
  idx : t;
  key : int;
  mutable page : bucket_page option;
  mutable pos : int;
}

let k_search = Probe.key "hash_search"

let begin_eq t key =
  Probe.routine k_search @@ fun () ->
  let b = hash_key key mod Array.length t.buckets in
  let page = t.buckets.(b) in
  (if Probe.cond "bucket_nonempty" (page <> None) then
     match page with
     | Some p -> Bufmgr.read_buffer t.bufmgr t.file p.page_no
     | None -> assert false);
  { idx = t; key; page; pos = 0 }

let k_getnext = Probe.key "hashgettuple"

let getnext scan =
  Probe.routine k_getnext @@ fun () ->
  let result = ref None in
  let continue_ = ref true in
  while Probe.cond "h_adv" !continue_ do
    if Probe.cond "h_have_page" (scan.page <> None) then begin
      let p = Option.get scan.page in
      if Probe.cond "h_page_end" (scan.pos >= Array.length p.keys) then begin
        if Probe.cond "h_has_next" (p.next <> None) then begin
          let np = Option.get p.next in
          Bufmgr.read_buffer scan.idx.bufmgr scan.idx.file np.page_no;
          scan.page <- Some np;
          scan.pos <- 0
        end
        else scan.page <- None
      end
      else begin
        let matches = p.keys.(scan.pos) = scan.key in
        if Probe.cond "h_match" matches then begin
          result := Some p.tids.(scan.pos);
          scan.pos <- scan.pos + 1;
          continue_ := false
        end
        else scan.pos <- scan.pos + 1
      end
    end
    else continue_ := false
  done;
  !result

let skeletons =
  [
    ( "hash_search",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 4;
          helper "hash_any";
          straight 3;
          if_ "bucket_nonempty" [ call "ReadBuffer"; straight 1 ];
          straight 2;
        ] );
    ( "hashgettuple",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 3;
          while_ "h_adv"
            [
              if_else "h_have_page"
                [
                  if_else "h_page_end"
                    [
                      if_else "h_has_next"
                        [ straight 2; call "ReadBuffer"; straight 2 ]
                        [ straight 2 ];
                    ]
                    [ if_else "h_match" [ straight 4 ] [ straight 2 ] ];
                ]
                [ straight 1 ];
            ];
          straight 2;
        ] );
  ]
