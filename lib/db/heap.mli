(** Heap files: table storage with sequential scans and tuple fetch by
    tuple id — the access methods under Sequential Scan and Index Scan. *)

type t

val load : Storage.t -> Bufmgr.t -> name:string -> rows:int array array -> width:int -> t
(** Create a heap file and bulk-load the rows (load time is not traced). *)

val name : t -> string

val width : t -> int

val n_rows : t -> int

val file : t -> Storage.file

type scan

val begin_scan : t -> scan
(** Instrumented [heap_beginscan]. *)

val getnext : scan -> int array option
(** Instrumented [heap_getnext]: advance the scan, going through the
    buffer manager page by page. *)

val rescan : scan -> unit

val fetch : t -> int * int -> int array
(** Instrumented [heap_fetch]: fetch one tuple by (page, slot). *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
