(** The Query Execution kernel: Volcano-style (open/next) pipelined
    operators, each an instrumented routine, dispatched through the
    instrumented [ExecProcNode] indirect call, exactly the pipelined regime
    the paper attributes PostgreSQL's long call chains to.

    [run] executes a plan to completion and returns the result rows. *)

type node

val init : Database.t -> Plan.t -> node
(** Instrumented [ExecutorStart]/[ExecInitNode]: build the executor node
    tree. *)

val next : node -> int array option
(** Instrumented [ExecProcNode]: pull the next tuple. *)

val run : Database.t -> Plan.t -> int array list
(** Instrumented [ExecutorRun]: init then pull to completion. *)

val op_names : string list
(** All executor operator routine names (the [ExecProcNode] dispatch
    targets). *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
