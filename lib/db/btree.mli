(** B+tree index over an integer key column, bulk-loaded at database build
    time. Nodes are assigned virtual page numbers so that descents and
    leaf-chain walks produce buffer-manager traffic; search, binary search
    within a node, and the scan advance are the instrumented access-method
    routines. *)

type t

val build :
  Storage.t ->
  Bufmgr.t ->
  name:string ->
  entries:(int * (int * int)) array ->
  t
(** [entries] are (key, tid) pairs, not necessarily sorted; duplicates are
    allowed (multi-entry indexes on foreign keys). *)

val name : t -> string

val height : t -> int

val n_entries : t -> int

type scan

val begin_eq : t -> int -> scan
(** Instrumented: descend and position on the first entry with the key. *)

val begin_range : t -> lo:int option -> hi:int option -> scan
(** Instrumented: position on the first entry ≥ [lo] (or the leftmost). *)

val getnext : scan -> (int * int) option
(** Instrumented [btgettuple]: next matching tid, advancing through the
    leaf chain; [None] once past the bound. *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
