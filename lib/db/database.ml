module Schema = Stc_dbdata.Schema
module Datagen = Stc_dbdata.Datagen

type index_kind = Btree_db | Hash_db

type index = Bt of Btree.t | Hx of Hashidx.t

type t = {
  kind : index_kind;
  storage : Storage.t;
  bufmgr : Bufmgr.t;
  heaps : (string, Heap.t) Hashtbl.t;
  indexes : (string, index) Hashtbl.t;
}

(* (table, column) pairs carrying an index; mirrors Section 3: unique
   indexes on primary keys, multi-entry on foreign keys, plus date columns
   on the B-tree variant. *)
let index_specs =
  [
    ("region", "r_regionkey");
    ("nation", "n_nationkey");
    ("supplier", "s_suppkey");
    ("customer", "c_custkey");
    ("part", "p_partkey");
    ("partsupp", "ps_partkey");
    ("orders", "o_orderkey");
    ("orders", "o_custkey");
    ("lineitem", "l_orderkey");
    ("lineitem", "l_partkey");
  ]

let btree_only_specs = [ ("orders", "o_orderdate"); ("lineitem", "l_shipdate") ]

let entries_of_heap heap ~col =
  let file = Heap.file heap in
  let out = ref [] in
  for pno = Storage.n_pages file - 1 downto 0 do
    let page = Storage.page file pno in
    for slot = Page.n_items page - 1 downto 0 do
      out := (Page.get page ~slot ~col, (pno, slot)) :: !out
    done
  done;
  Array.of_list !out

let load ?(frames = 256) data ~kind =
  let storage = Storage.create () in
  let bufmgr = Bufmgr.create ~frames () in
  let heaps = Hashtbl.create 16 in
  List.iter
    (fun tbl ->
      let rows = Datagen.table data tbl.Schema.name in
      let heap =
        Heap.load storage bufmgr ~name:tbl.Schema.name ~rows
          ~width:tbl.Schema.width
      in
      Hashtbl.replace heaps tbl.Schema.name heap)
    Schema.all;
  let indexes = Hashtbl.create 16 in
  let build_index (table, colname) =
    let tbl = Schema.find table in
    let col = Schema.column tbl colname in
    let heap = Hashtbl.find heaps table in
    let entries = entries_of_heap heap ~col in
    let name = table ^ "." ^ colname in
    let idx =
      match kind with
      | Btree_db -> Bt (Btree.build storage bufmgr ~name ~entries)
      | Hash_db -> Hx (Hashidx.build storage bufmgr ~name ~entries)
    in
    Hashtbl.replace indexes name idx
  in
  List.iter build_index index_specs;
  (match kind with
  | Btree_db ->
    (* Range-scannable date indexes only exist on the B-tree variant. *)
    List.iter
      (fun (table, colname) ->
        let tbl = Schema.find table in
        let col = Schema.column tbl colname in
        let heap = Hashtbl.find heaps table in
        let entries = entries_of_heap heap ~col in
        let name = table ^ "." ^ colname in
        Hashtbl.replace indexes name
          (Bt (Btree.build storage bufmgr ~name ~entries)))
      btree_only_specs
  | Hash_db -> ());
  { kind; storage; bufmgr; heaps; indexes }

let kind t = t.kind

let bufmgr t = t.bufmgr

let heap t name = Hashtbl.find t.heaps name

let index t name = Hashtbl.find t.indexes name

let has_index t name = Hashtbl.mem t.indexes name

let index_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes []
