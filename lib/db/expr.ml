module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

type t =
  | Col of int
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | In_list of t * int list

let k_eval = Probe.key "ExecEvalExpr"

let b2i b = if b then 1 else 0

(* The evaluator's probe structure (must match the skeleton):
   is_leaf? -> is_sc (short-circuit and/or)? [lhs; sc_rhs? rhs]
            -> is_binary? [lhs; rhs] -> unary [sub]. *)
let rec eval e tuple =
  Probe.routine k_eval @@ fun () ->
  if Probe.cond "is_leaf" (match e with Col _ | Const _ -> true | _ -> false)
  then
    match e with
    | Col i -> tuple.(i)
    | Const v -> v
    | _ -> assert false
  else if
    Probe.cond "is_sc" (match e with And _ | Or _ -> true | _ -> false)
  then begin
    match e with
    | And (l, r) ->
      let lv = eval l tuple in
      if Probe.cond "sc_rhs" (lv <> 0) then b2i (eval r tuple <> 0) else 0
    | Or (l, r) ->
      let lv = eval l tuple in
      if Probe.cond "sc_rhs" (lv = 0) then b2i (eval r tuple <> 0) else 1
    | _ -> assert false
  end
  else if
    Probe.cond "is_binary"
      (match e with
      | Add _ | Sub _ | Mul _ | Div _ | Eq _ | Ne _ | Lt _ | Le _ | Gt _
      | Ge _ ->
        true
      | _ -> false)
  then begin
    let l, r =
      match e with
      | Add (l, r)
      | Sub (l, r)
      | Mul (l, r)
      | Div (l, r)
      | Eq (l, r)
      | Ne (l, r)
      | Lt (l, r)
      | Le (l, r)
      | Gt (l, r)
      | Ge (l, r) ->
        (l, r)
      | _ -> assert false
    in
    let lv = eval l tuple in
    let rv = eval r tuple in
    match e with
    | Add _ -> lv + rv
    | Sub _ -> lv - rv
    | Mul _ -> lv * rv
    | Div _ -> if rv = 0 then 0 else lv / rv
    | Eq _ -> b2i (lv = rv)
    | Ne _ -> b2i (lv <> rv)
    | Lt _ -> b2i (lv < rv)
    | Le _ -> b2i (lv <= rv)
    | Gt _ -> b2i (lv > rv)
    | Ge _ -> b2i (lv >= rv)
    | _ -> assert false
  end
  else begin
    match e with
    | Not s -> b2i (eval s tuple = 0)
    | In_list (s, vs) ->
      let v = eval s tuple in
      b2i (List.mem v vs)
    | _ -> assert false
  end

let eval_bool e tuple = eval e tuple <> 0

let k_qual = Probe.key "ExecQual"

let qual quals tuple =
  Probe.routine k_qual @@ fun () ->
  let remaining = ref quals in
  let ok = ref true in
  while Probe.cond "qual_loop" (!ok && !remaining <> []) do
    match !remaining with
    | q :: rest ->
      ok := eval_bool q tuple;
      remaining := rest
    | [] -> assert false
  done;
  !ok

let k_project = Probe.key "ExecProject"

let project exprs tuple =
  Probe.routine k_project @@ fun () ->
  let out = Array.make (List.length exprs) 0 in
  let i = ref 0 in
  let remaining = ref exprs in
  while Probe.cond "proj_loop" (!remaining <> []) do
    match !remaining with
    | e :: rest ->
      out.(!i) <- eval e tuple;
      incr i;
      remaining := rest
    | [] -> assert false
  done;
  out

let col_between c lo hi = And (Ge (Col c, Const lo), Le (Col c, Const hi))

let skeletons =
  [
    ( "ExecEvalExpr",
      Stc_cfg.Proc.Executor,
      Skeleton.
        [
          straight 3;
          if_else "is_leaf" [ straight 3 ]
            [
              if_else "is_sc"
                [
                  call "ExecEvalExpr";
                  if_ "sc_rhs" [ call "ExecEvalExpr"; straight 1 ];
                  straight 1;
                ]
                [
                  if_else "is_binary"
                    [ call "ExecEvalExpr"; call "ExecEvalExpr"; straight 4 ]
                    [ call "ExecEvalExpr"; straight 3 ];
                ];
            ];
          straight 1;
        ] );
    ( "ExecQual",
      Stc_cfg.Proc.Executor,
      Skeleton.
        [
          straight 3;
          while_ "qual_loop" [ call "ExecEvalExpr"; straight 2 ];
          straight 1;
        ] );
    ( "ExecProject",
      Stc_cfg.Proc.Executor,
      Skeleton.
        [
          straight 4;
          helper "palloc";
          helper "list_nth_cell";
          while_ "proj_loop" [ call "ExecEvalExpr"; straight 2 ];
          straight 1;
        ] );
  ]
