module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

let leaf_fanout = 228 (* (key, page, slot) triples in a 1024-int page *)

let internal_fanout = 128

type node =
  | Internal of { keys : int array; children : node array; page_no : int }
  | Leaf of {
      keys : int array;
      tids : (int * int) array;
      mutable next_leaf : node option;
      page_no : int;
    }

type t = {
  idx_name : string;
  file : Storage.file;
  bufmgr : Bufmgr.t;
  root : node;
  height : int;
  count : int;
}

let page_no = function
  | Internal { page_no; _ } | Leaf { page_no; _ } -> page_no

let build storage bufmgr ~name ~entries =
  let file = Storage.new_virtual_file storage ~name in
  let entries = Array.copy entries in
  Array.sort
    (fun (k1, t1) (k2, t2) -> if k1 <> k2 then compare k1 k2 else compare t1 t2)
    entries;
  let n = Array.length entries in
  (* leaves *)
  let leaves = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min leaf_fanout (n - !i) in
    let keys = Array.init len (fun j -> fst entries.(!i + j)) in
    let tids = Array.init len (fun j -> snd entries.(!i + j)) in
    leaves :=
      Leaf
        { keys; tids; next_leaf = None; page_no = Storage.alloc_virtual_page file }
      :: !leaves;
    i := !i + len
  done;
  let leaves = Array.of_list (List.rev !leaves) in
  (if n = 0 then ()
   else
     for j = 0 to Array.length leaves - 2 do
       match leaves.(j) with
       | Leaf l -> l.next_leaf <- Some leaves.(j + 1)
       | Internal _ -> assert false
     done);
  let lowest_key = function
    | Leaf { keys; _ } -> if Array.length keys = 0 then min_int else keys.(0)
    | Internal { keys; _ } -> if Array.length keys = 0 then min_int else keys.(0)
  in
  (* build internal levels until a single root remains *)
  let rec up level height =
    if Array.length level <= 1 then
      ( (if Array.length level = 1 then level.(0)
         else
           Leaf
             {
               keys = [||];
               tids = [||];
               next_leaf = None;
               page_no = Storage.alloc_virtual_page file;
             }),
        height )
    else begin
      let groups = ref [] in
      let i = ref 0 in
      let m = Array.length level in
      while !i < m do
        let len = min internal_fanout (m - !i) in
        let children = Array.sub level !i len in
        let keys = Array.map lowest_key children in
        groups :=
          Internal { keys; children; page_no = Storage.alloc_virtual_page file }
          :: !groups;
        i := !i + len
      done;
      up (Array.of_list (List.rev !groups)) (height + 1)
    end
  in
  let root, height = up leaves 1 in
  { idx_name = name; file; bufmgr; root; height; count = n }

let name t = t.idx_name

let height t = t.height

let n_entries t = t.count

(* --- instrumented search --- *)

let k_binsrch = Probe.key "_bt_binsrch"

(* First index in [keys] with keys.(i) >= key (or > key when [upper]). *)
let binsrch keys key ~upper =
  Probe.routine k_binsrch @@ fun () ->
  let lo = ref 0 and hi = ref (Array.length keys) in
  while Probe.cond "bin_step" (!lo < !hi) do
    let mid = (!lo + !hi) / 2 in
    let above = if upper then keys.(mid) > key else keys.(mid) >= key in
    if above then hi := mid else lo := mid + 1
  done;
  !lo

type scan = {
  tree : t;
  mutable leaf : node option;
  mutable pos : int;
  hi_bound : int option; (* inclusive upper bound *)
  eq_key : int option;
}

let k_search = Probe.key "_bt_search"

(* Descend to the leaf that may contain [key]; returns (leaf, pos) with pos
   = first entry >= key. *)
let search t key =
  Probe.routine k_search @@ fun () ->
  let cur = ref t.root in
  let result = ref None in
  while Probe.cond "descend" (!result = None) do
    Bufmgr.read_buffer t.bufmgr t.file (page_no !cur);
    match !cur with
    | Leaf l ->
      let pos = binsrch l.keys key ~upper:false in
      ignore (Probe.cond "at_leaf" true);
      result := Some (Leaf l, pos)
    | Internal n ->
      (* lower-bound descent: duplicates of [key] may end the previous
         child, so step to the child before the first separator >= key *)
      let idx = binsrch n.keys key ~upper:false in
      ignore (Probe.cond "at_leaf" false);
      cur := n.children.(max 0 (idx - 1))
  done;
  Option.get !result

let k_beginscan = Probe.key "btbeginscan"

let begin_at t key ~hi_bound ~eq_key =
  Probe.routine k_beginscan @@ fun () ->
  let leaf, pos = search t key in
  let s = { tree = t; leaf = Some leaf; pos; hi_bound; eq_key } in
  s

let begin_eq t key = begin_at t key ~hi_bound:None ~eq_key:(Some key)

let begin_range t ~lo ~hi =
  let key = match lo with Some k -> k | None -> min_int in
  begin_at t key ~hi_bound:hi ~eq_key:None

let k_getnext = Probe.key "btgettuple"

let getnext scan =
  Probe.routine k_getnext @@ fun () ->
  let result = ref None in
  let continue_ = ref true in
  while Probe.cond "adv_loop" !continue_ do
    if Probe.cond "have_leaf" (scan.leaf <> None) then begin
      let l, keys, tids, next_leaf =
        match scan.leaf with
        | Some (Leaf l) -> (Leaf l, l.keys, l.tids, l.next_leaf)
        | Some (Internal _) | None -> assert false
      in
      ignore l;
      if Probe.cond "leaf_end" (scan.pos >= Array.length keys) then begin
        if Probe.cond "has_next" (next_leaf <> None) then begin
          let nl = Option.get next_leaf in
          Bufmgr.read_buffer scan.tree.bufmgr scan.tree.file (page_no nl);
          scan.leaf <- Some nl;
          scan.pos <- 0
        end
        else scan.leaf <- None
      end
      else begin
        let key = keys.(scan.pos) in
        let in_range =
          match (scan.eq_key, scan.hi_bound) with
          | Some k, _ -> key = k
          | None, Some hi -> key <= hi
          | None, None -> true
        in
        if Probe.cond "in_range" in_range then begin
          result := Some tids.(scan.pos);
          scan.pos <- scan.pos + 1;
          continue_ := false
        end
        else scan.leaf <- None
      end
    end
    else continue_ := false
  done;
  !result

let skeletons =
  [
    ( "_bt_binsrch",
      Stc_cfg.Proc.Access_methods,
      Skeleton.[ straight 4; while_ "bin_step" [ straight 5 ]; straight 2 ] );
    ( "_bt_search",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 3;
          while_ "descend"
            [
              call "ReadBuffer";
              straight 2;
              call "_bt_binsrch";
              if_else "at_leaf" [ straight 2 ] [ straight 3 ];
            ];
          helper "memcmp_chunk";
          straight 2;
        ] );
    ( "btbeginscan",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 4;
          helper "palloc";
          helper "int4cmp_fmgr";
          call "_bt_search";
          straight 3;
        ] );
    ( "btgettuple",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 3;
          while_ "adv_loop"
            [
              if_else "have_leaf"
                [
                  if_else "leaf_end"
                    [
                      if_else "has_next"
                        [ straight 2; call "ReadBuffer"; straight 2 ]
                        [ straight 2 ];
                    ]
                    [ if_else "in_range" [ straight 5 ] [ straight 2 ] ];
                ]
                [ straight 1 ];
            ];
          straight 2;
        ] );
  ]
