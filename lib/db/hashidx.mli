(** Static hash index: a directory of buckets, each a chain of entry pages
    — the Hash-indexed variant of the database. Supports equality scans
    only (plans fall back to sequential scans for range predicates on the
    hash database, as a real optimizer would). *)

type t

val build :
  Storage.t ->
  Bufmgr.t ->
  name:string ->
  entries:(int * (int * int)) array ->
  t

val name : t -> string

val n_buckets : t -> int

val n_entries : t -> int

type scan

val begin_eq : t -> int -> scan
(** Instrumented [hash_search]: hash the key and position on the bucket's
    first page. *)

val getnext : scan -> (int * int) option
(** Instrumented [hashgettuple]: next entry with the key, walking the
    bucket's overflow chain. *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
