let names =
  [
    "palloc";
    "pfree";
    "memcpy_chunk";
    "memcmp_chunk";
    "strncmp_pg";
    "hash_any";
    "LWLockAcquire";
    "LWLockRelease";
    "elog_check";
    "list_cons";
    "list_nth_cell";
    "datumCopy";
    "fmgr_info_lookup";
    "lookup_tupdesc";
    "ResourceOwnerRemember";
    "SnapshotCheck";
    "LockBufHdr";
    "StrategyClockTick";
    "pgstat_count";
    "errstack_push";
    "MemoryContextSwitchTo";
    "oidcmp";
    "int4cmp_fmgr";
    "AllocSetCheck";
  ]

let is_helper n = List.mem n names
