(** The storage manager: files of pages, and the [mdread] routine the
    buffer manager calls on a miss.

    Heap files carry real {!Page.t} pages. Index files are {e virtual}:
    B-tree and hash nodes live in their own OCaml structures, but each node
    is assigned a (file, page) coordinate so that index accesses produce
    the same buffer-manager and storage traffic a page-based DBMS would. *)

type t

type file

val create : unit -> t

val new_file : t -> name:string -> width:int -> file
(** A heap file for rows of [width] columns. *)

val new_virtual_file : t -> name:string -> file
(** An index file: pages are allocated with [alloc_virtual_page]. *)

val file_id : file -> int

val file_name : file -> string

val n_pages : file -> int

val append_row : file -> int array -> int * int
(** Append to the last page (allocating pages as needed); returns the
    (page, slot) tuple id. *)

val page : file -> int -> Page.t
(** The real page of a heap file. Raises [Invalid_argument] for virtual
    files or out-of-range numbers. *)

val alloc_virtual_page : file -> int
(** Reserve the next page number of a virtual file. *)

val mdread : file -> int -> unit
(** Instrumented: the disk-read path, called by the buffer manager on a
    miss. Validates the page number. *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
