module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

type file = {
  id : int;
  name : string;
  width : int; (* 0 for virtual files *)
  mutable pages : Page.t array;
  mutable n_pages : int;
}

type t = { mutable next_id : int; mutable files : file list }

let create () = { next_id = 0; files = [] }

let add t f =
  t.files <- f :: t.files;
  t.next_id <- t.next_id + 1;
  f

let new_file t ~name ~width =
  add t { id = t.next_id; name; width; pages = [||]; n_pages = 0 }

let new_virtual_file t ~name =
  add t { id = t.next_id; name; width = 0; pages = [||]; n_pages = 0 }

let file_id f = f.id

let file_name f = f.name

let n_pages f = f.n_pages

let grow f p =
  if f.n_pages = Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let pages = Array.make cap p in
    Array.blit f.pages 0 pages 0 f.n_pages;
    f.pages <- pages
  end;
  f.pages.(f.n_pages) <- p;
  f.n_pages <- f.n_pages + 1

let append_row f row =
  if f.width = 0 then invalid_arg "Storage.append_row: virtual file";
  let need_new =
    f.n_pages = 0 || Page.full f.pages.(f.n_pages - 1)
  in
  if need_new then grow f (Page.create ~width:f.width);
  let pno = f.n_pages - 1 in
  let p = f.pages.(pno) in
  let slot = Page.n_items p in
  Page.append p row;
  (pno, slot)

let page f n =
  if f.width = 0 then invalid_arg "Storage.page: virtual file";
  if n < 0 || n >= f.n_pages then invalid_arg "Storage.page: out of range";
  f.pages.(n)

let alloc_virtual_page f =
  if f.width <> 0 then invalid_arg "Storage.alloc_virtual_page: heap file";
  f.n_pages <- f.n_pages + 1;
  f.n_pages - 1

let k_mdread = Probe.key "mdread"

let mdread f n =
  Probe.routine k_mdread @@ fun () ->
  if n < 0 || n >= f.n_pages then
    invalid_arg
      (Printf.sprintf "Storage.mdread: page %d of %s out of range" n f.name)

let skeletons =
  [
    ( "mdread",
      Stc_cfg.Proc.Storage_manager,
      Skeleton.
        [
          straight 6;
          helper "AllocSetCheck";
          straight 4;
          helper "LWLockAcquire";
          straight 5;
          helper "pgstat_count";
          straight 3;
        ] );
  ]
