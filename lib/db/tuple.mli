(** Tuple materialization: the hot [heap_deform_tuple] path that copies a
    slotted page row into an executor tuple. *)

val deform : Page.t -> slot:int -> int array
(** Instrumented: one probe-visible loop iteration per attribute, like the
    attribute-walking loop of a real [heap_deform_tuple]. *)

val concat : int array -> int array -> int array
(** Join two tuples (outer @ inner) — plain code, no probes. *)

val skeletons : (string * Stc_cfg.Proc.subsystem * Stc_trace.Skeleton.t) list
