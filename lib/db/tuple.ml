module Probe = Stc_trace.Probe
module Skeleton = Stc_trace.Skeleton

let k_deform = Probe.key "heap_deform_tuple"

(* The attribute-walking loop is unrolled by four, as an optimizing
   compiler does to this small fixed-stride loop: one probe-visible
   iteration copies up to four attributes. *)
let deform page ~slot =
  Probe.routine k_deform @@ fun () ->
  let w = Page.width page in
  let out = Array.make w 0 in
  let i = ref 0 in
  while Probe.cond "attr_loop" (!i < w) do
    let stop = min w (!i + 4) in
    while !i < stop do
      out.(!i) <- Page.get page ~slot ~col:!i;
      incr i
    done
  done;
  out

let concat a b =
  let out = Array.make (Array.length a + Array.length b) 0 in
  Array.blit a 0 out 0 (Array.length a);
  Array.blit b 0 out (Array.length a) (Array.length b);
  out

let skeletons =
  [
    ( "heap_deform_tuple",
      Stc_cfg.Proc.Access_methods,
      Skeleton.
        [
          straight 5;
          while_ "attr_loop" [ straight 11 ];
          helper "memcpy_chunk";
          straight 2;
        ] );
  ]
