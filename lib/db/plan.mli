(** Query execution plans — the tree the Parsing-Optimization kernel would
    hand to the Executor (we hand-write the plans for the TPC-D queries, as
    the paper notes that parse/optimize time is negligible).

    Tuples flowing out of a join are the concatenation (outer @ inner) of
    the input tuples; column indices in expressions and sort keys refer to
    that concatenated layout. *)

type key =
  | Key_const_eq of int  (** Index equality with a constant. *)
  | Key_outer_eq of int
      (** Index equality with a column of the enclosing nest-loop's outer
          tuple (a parameterized index path). *)
  | Key_range of int option * int option
      (** Inclusive range; B-tree indexes only. *)

type agg =
  | Count
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Seq_scan of { table : string; quals : Expr.t list }
  | Index_scan of {
      table : string;
      index : string;  (** Index name, e.g. ["lineitem.l_orderkey"]. *)
      key : key;
      quals : Expr.t list;  (** Residual quals on the fetched tuple. *)
    }
  | Nest_loop of { outer : t; inner : t; quals : Expr.t list }
  | Hash_join of {
      outer : t;
      inner : t;
      outer_col : int;
      inner_col : int;
      quals : Expr.t list;
    }
  | Merge_join of {
      outer : t;
      inner : t;
      outer_col : int;
      inner_col : int;
      quals : Expr.t list;
    }  (** Both inputs must be sorted ascending on their join column. *)
  | Sort of { child : t; cols : (int * bool) list }
      (** [(column, descending)] sort keys. *)
  | Agg of { child : t; aggs : agg list }
  | Group of { child : t; cols : int list; aggs : agg list }
      (** Input must arrive sorted by [cols]; output rows are the group
          columns followed by the aggregate values. *)
  | Limit of { child : t; limit : int }
  | Material of { child : t }
  | Result of { child : t; exprs : Expr.t list }  (** Final projection. *)

val node_name : t -> string
(** The executor routine implementing the node ("ExecSeqScan", …). *)

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal. *)
