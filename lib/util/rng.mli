(** Deterministic pseudo-random number generation.

    All stochastic choices in the reproduction flow through this module so
    that a single 64-bit seed pins the synthetic kernel, the database
    contents and therefore every trace and every table, bit for bit.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny
    state, excellent statistical quality for simulation purposes, and a
    well-defined [split] operation that derives independent child streams —
    which we use to give every procedure, branch site and table column its
    own stream, so adding a consumer never perturbs the values seen by
    existing ones. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val named : t -> string -> t
(** [named t s] derives a child generator from [t]'s {e original seed} and
    the name [s], without advancing [t]. Two distinct names yield
    independent streams; the same name always yields the same stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; mean [(1-p)/p]. [p] must be in (0, 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[0, n)] from a Zipf distribution with
    exponent [s] (rank 0 most popular), by inverting the empirical CDF.
    Intended for modest [n]; cost O(log n) after an O(n) table is built
    lazily per (n, s) pair. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val seed_of_string : string -> int64
(** FNV-1a hash of a string, for deriving seeds from names. *)
