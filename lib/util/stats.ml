let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int n
    in
    sqrt var

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 0.5

let geomean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.geomean: empty array";
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive value")
    xs;
  exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)

let sorted_desc counts =
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  sorted

let cumulative_share counts =
  let sorted = sorted_desc counts in
  let total = Array.fold_left ( + ) 0 sorted in
  let totalf = float_of_int (max total 1) in
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      float_of_int !acc /. totalf)
    sorted

let items_for_share counts s =
  let sorted = sorted_desc counts in
  let total = Array.fold_left ( + ) 0 sorted in
  if total = 0 then 0
  else
    let target = s *. float_of_int total in
    let rec go i acc =
      if i >= Array.length sorted then i
      else
        let acc = acc + sorted.(i) in
        if float_of_int acc >= target then i + 1 else go (i + 1) acc
    in
    go 0 0

let weighted_percentile pairs p =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Stats.weighted_percentile: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Stats.weighted_percentile: no weight";
  let target = p *. float_of_int total in
  let rec go i acc =
    let v, w = pairs.(i) in
    let acc = acc + w in
    if float_of_int acc >= target || i = n - 1 then float_of_int v
    else go (i + 1) acc
  in
  go 0 0
