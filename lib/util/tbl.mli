(** Plain-text table rendering for the experiment harness, so that
    [bench/main.exe] prints rows directly comparable to the paper's
    tables. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** A table with the given column headers and per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many cells as there are headers. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render with column widths fitted to contents. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fpct : float -> string
(** Fixed 1-decimal percentage-style number, e.g. [12.7]. *)

val f2 : float -> string
(** Fixed 2-decimal number. *)

val fmiss : float -> string
(** Miss-rate style: 2 decimals above 0.1, 3 decimals below (the paper
    prints [0.09], [0.05], [0.02] for the small rates). *)
