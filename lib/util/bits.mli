(** Bit-twiddling helpers for the cache simulators. *)

val clz : int -> int
(** Count of leading zero bits of a positive [int] (of [Sys.int_size] bits).
    Undefined for non-positive arguments. *)

val log2_ceil : int -> int
(** Least [k] with [1 lsl k >= n]; [n] must be positive. *)

val log2_exact : int -> int
(** [log2_exact n] for [n] a positive power of two; raises
    [Invalid_argument] otherwise. *)

val is_pow2 : int -> bool
