(* Buckets: [0,1), [1,2), [2,4), [4,8), ... doubling. Bucket index for v>0 is
   1 + floor(log2 v); bucket 0 holds the value 0. *)

type t = { counts : int array; mutable total : int; nbuckets : int }

let bucket_of v = if v <= 0 then 0 else 1 + (Sys.int_size - 1 - Bits.clz v)

let create ?(max_value = 1 lsl 40) () =
  let nbuckets = bucket_of max_value + 1 in
  { counts = Array.make nbuckets 0; total = 0; nbuckets }

let add h ?(weight = 1) v =
  let b = min (bucket_of v) (h.nbuckets - 1) in
  h.counts.(b) <- h.counts.(b) + weight;
  h.total <- h.total + weight

let total h = h.total

let bounds b = if b = 0 then (0, 1) else (1 lsl (b - 1), 1 lsl b)

let mass_below h v =
  if h.total = 0 then 0.0
  else begin
    let vb = min (bucket_of v) (h.nbuckets - 1) in
    let below = ref 0 in
    for b = 0 to vb - 1 do
      below := !below + h.counts.(b)
    done;
    (* interpolate within bucket vb *)
    let lo, hi = bounds vb in
    let frac =
      if v <= lo then 0.0
      else if v >= hi then 1.0
      else float_of_int (v - lo) /. float_of_int (hi - lo)
    in
    (float_of_int !below +. (frac *. float_of_int h.counts.(vb)))
    /. float_of_int h.total
  end

let buckets h =
  let out = ref [] in
  for b = h.nbuckets - 1 downto 0 do
    if h.counts.(b) > 0 then begin
      let lo, hi = bounds b in
      out := (lo, hi, h.counts.(b)) :: !out
    end
  done;
  !out
