(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    The artifact store appends this checksum to every entry so that a
    torn write or bit rot is detected on read and degrades to a
    recomputation instead of corrupt results. Unlike {!Fnv} (fast
    fingerprinting of trusted inputs), the CRC exists to catch {e
    accidental} corruption of untrusted bytes. *)

val string : string -> int
(** CRC over a whole string; in [0, 2^32). [string "123456789"] is
    [0xCBF43926], the standard check value. *)

val sub : string -> pos:int -> len:int -> int
(** CRC over a substring. Raises [Invalid_argument] if the range is
    outside the string. *)
