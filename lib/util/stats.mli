(** Small statistics helpers shared by the profiler and the experiment
    harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]]: linear-interpolation percentile
    of an array that is {e not} required to be sorted (a sorted copy is
    taken). Raises [Invalid_argument] on the empty array. *)

val median : float array -> float
(** [median xs] is [percentile xs 0.5]. Raises [Invalid_argument] on the
    empty array. *)

val geomean : float array -> float
(** Geometric mean of a strictly positive sample (the natural mean for
    ratios such as fetch bandwidth). Raises [Invalid_argument] on the
    empty array or on any nonpositive element. *)

val cumulative_share : int array -> float array
(** [cumulative_share counts] sorts [counts] descending and returns the
    running share of the total: element [i] is the fraction of the sum
    captured by the [i+1] largest counts. Used for the Figure 2 curve. *)

val items_for_share : int array -> float -> int
(** [items_for_share counts s] is the least number of the largest elements
    of [counts] whose sum reaches share [s] of the total (0 if total is 0). *)

val weighted_percentile : (int * int) array -> float -> float
(** [weighted_percentile pairs p] over [(value, weight)] pairs sorted
    ascending by value: the smallest value whose cumulative weight
    reaches share [p] of the total, as a float. No interpolation — the
    answer is always one of the given values, so it is exact under
    histogram-bucket merging. Raises [Invalid_argument] on an empty
    array or nonpositive total weight. *)
