let clz n =
  assert (n > 0);
  let rec go k mask =
    if n land mask <> 0 then k else go (k + 1) (mask lsr 1)
  in
  go 0 (1 lsl (Sys.int_size - 1))

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_ceil n =
  assert (n > 0);
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Bits.log2_exact: not a power of two";
  log2_ceil n
