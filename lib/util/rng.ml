type t = { mutable state : int64; seed : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed; seed }

let copy t = { state = t.state; seed = t.seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  create (mix64 s)

let seed_of_string s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let named t name = create (mix64 (Int64.logxor t.seed (seed_of_string name)))

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits a non-negative OCaml int *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(* 53 uniformly distributed mantissa bits. *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

(* Zipf via cached cumulative tables keyed by (n, s). *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_table n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some tbl -> tbl
  | None ->
    let tbl = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
      tbl.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      tbl.(i) <- tbl.(i) /. total
    done;
    Hashtbl.replace zipf_tables (n, s) tbl;
    tbl

let zipf t ~n ~s =
  assert (n > 0);
  let tbl = zipf_table n s in
  let u = float t 1.0 in
  (* first index whose cumulative mass is >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if tbl.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
