type t = int64

let empty = 0xCBF29CE484222325L

let prime = 0x100000001B3L

let int h v = Int64.mul (Int64.logxor h (Int64.of_int v)) prime

let int64 h v = Int64.mul (Int64.logxor h v) prime

let float h v = int64 h (Int64.bits_of_float v)

let string h s =
  let h = ref h in
  String.iter (fun c -> h := int !h (Char.code c)) s;
  !h

let ints ?len h a =
  let n = match len with Some n -> n | None -> Array.length a in
  let h = ref h in
  for i = 0 to n - 1 do
    h := int !h (Array.unsafe_get a i)
  done;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
