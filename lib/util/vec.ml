type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let grow v needed =
  let cap = Array.length v.data in
  let cap' = max needed (max 16 (2 * cap)) in
  let data' = Array.make cap' 0 in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let unsafe_get v i = Array.unsafe_get v.data i

let raw v = v.data
