(** Growable arrays of unboxed integers.

    Used for dynamic basic-block traces (tens of millions of entries), so
    the representation is a plain [int array] with amortized-doubling
    growth and no per-element boxing. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty vector. *)

val length : t -> int

val push : t -> int -> unit
(** Append one element, growing the backing store if needed. *)

val get : t -> int -> int
(** [get v i] is the [i]th element; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> unit

val clear : t -> unit
(** Reset length to zero; keeps the backing store. *)

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_array : t -> int array
(** Fresh array copy of the live prefix. *)

val of_array : int array -> t

val unsafe_get : t -> int -> int
(** No bounds check; for the hot replay loops. *)

val raw : t -> int array
(** The backing store itself — {e no copy}. Only the first {!length}
    entries are meaningful, the array must be treated as read-only, and
    the reference is invalidated by the next growing {!push}. For
    tight compiled loops ([Array.unsafe_get] over a local binding); use
    {!to_array} when a stable snapshot is needed. *)
