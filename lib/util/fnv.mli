(** FNV-1a hashing, 64-bit.

    The repo's one fingerprinting primitive: cheap, dependency-free, and
    stable across runs and platforms (unlike [Hashtbl.hash], which is
    documented to vary). Used by {!Stc_trace.Recorder.hash} and by the
    artifact-store keys, which must agree between the process that wrote
    an artifact and the one that reads it.

    A hash is folded left-to-right: start from {!empty} and feed values.
    Integers are absorbed whole (one xor/multiply per [int], matching the
    historical [Recorder.hash] behaviour); strings byte-by-byte (the
    classic FNV-1a definition). *)

type t = int64

val empty : t
(** The FNV-1a 64-bit offset basis, [0xCBF29CE484222325]. *)

val int : t -> int -> t
(** Absorb one integer in a single xor/multiply step. *)

val int64 : t -> int64 -> t

val float : t -> float -> t
(** Absorbs the IEEE-754 bit pattern, so [-0.] and [0.] differ. *)

val string : t -> string -> t
(** Absorb every byte. Note [string h ""] is [h]: when hashing a list of
    strings, absorb each length (or a separator) too, so that the
    concatenation boundary matters. *)

val ints : ?len:int -> t -> int array -> t
(** Absorb the first [len] (default: all) elements with {!int}. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)
