(* Reflected CRC-32, polynomial 0xEDB88320, one table lookup per byte. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = sub s ~pos:0 ~len:(String.length s)
