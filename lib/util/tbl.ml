type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tbl.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells c -> measure c | Rule -> ()) t.rows;
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let aligns = List.map snd t.headers in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i c -> pad (List.nth aligns i) widths.(i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_cells (List.map fst t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with
      | Cells c -> Buffer.add_string buf (render_cells c)
      | Rule -> Buffer.add_string buf rule);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_endline (render t)

let fpct x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let fmiss x = if x >= 0.1 then Printf.sprintf "%.2f" x else Printf.sprintf "%.3f" x
