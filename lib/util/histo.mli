(** Weighted histograms over non-negative integer values, with geometric
    buckets. Used for temporal-reuse distances, where values span seven
    orders of magnitude and only coarse shape matters. *)

type t

val create : ?max_value:int -> unit -> t
(** [create ~max_value ()] builds a histogram able to record values in
    [\[0, max_value\]]; larger values are clamped into the last bucket.
    Default [max_value] is [1 lsl 40]. *)

val add : t -> ?weight:int -> int -> unit
(** [add h ~weight v] records [weight] occurrences of value [v]. *)

val total : t -> int
(** Total recorded weight. *)

val mass_below : t -> int -> float
(** [mass_below h v] is the fraction of total weight recorded at values
    strictly less than [v]. The answer is exact at bucket boundaries and
    linearly interpolated inside a bucket. 0 when the histogram is empty. *)

val buckets : t -> (int * int * int) list
(** [(lo, hi, weight)] triples for all non-empty buckets, ascending; the
    bucket covers values in [\[lo, hi)]. *)
