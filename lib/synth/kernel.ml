module Rng = Stc_util.Rng
module Builder = Stc_cfg.Builder
module Proc = Stc_cfg.Proc
module Skeleton = Stc_trace.Skeleton
module Bytecode = Stc_trace.Bytecode
module Walker = Stc_trace.Walker

type config = {
  seed : int64;
  n_l2 : int;
  n_l3 : int;
  n_l4 : int;
  n_parser : int;
  n_optimizer : int;
  n_filler : int;
  filler_instrs : int;
}

let default_config =
  {
    seed = 0x57C0FFEEL;
    n_l2 = 300;
    n_l3 = 760;
    n_l4 = 280;
    n_parser = 380;
    n_optimizer = 300;
    n_filler = 5150;
    filler_instrs = 95;
  }

type t = {
  program : Stc_cfg.Program.t;
  code : Bytecode.t option array;
  executor_ops : string list;
  parser_root : string;
  optimizer_root : string;
}

let engine_skeletons () =
  Stc_db.Storage.skeletons @ Stc_db.Bufmgr.skeletons @ Stc_db.Tuple.skeletons
  @ Stc_db.Heap.skeletons @ Stc_db.Btree.skeletons @ Stc_db.Hashidx.skeletons
  @ Stc_db.Expr.skeletons @ Stc_db.Exec.skeletons

(* Partition [pool] round-robin over [n_groups] callers: every member of
   the pool gets exactly one caller, guaranteeing the whole layer is
   reachable. The first [common] members of a group sit on the caller's
   main path; the rest hide behind rare branches. *)
let partition_callees pool ~n_groups ~common =
  Array.init n_groups (fun g ->
      let mine =
        Array.to_list pool
        |> List.filteri (fun i _ -> i mod n_groups = g)
      in
      List.mapi
        (fun i name ->
          { Gen.name; placement = (if i < common then `Common else `Rare) })
        mine)

let build ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let b = Builder.create () in
  let engine = engine_skeletons () in
  (* ---- declare every procedure first (names resolve forward) ---- *)
  List.iter
    (fun (name, subsystem, _) -> ignore (Builder.declare_proc b ~name ~subsystem))
    engine;
  let declare_many prefix n subsystem =
    Array.init n (fun i ->
        let name = Printf.sprintf "%s_%d" prefix i in
        ignore (Builder.declare_proc b ~name ~subsystem);
        name)
  in
  List.iter
    (fun name ->
      ignore (Builder.declare_proc b ~name ~subsystem:Proc.Utility))
    Stc_db.Helpers.names;
  let l2 = declare_many "util2" config.n_l2 Proc.Utility in
  let l3 = declare_many "util3" config.n_l3 Proc.Utility in
  let l4 = declare_many "util4" config.n_l4 Proc.Utility in
  let parser_root = "raw_parser" in
  let optimizer_root = "planner" in
  ignore (Builder.declare_proc b ~name:parser_root ~subsystem:Proc.Parser);
  ignore (Builder.declare_proc b ~name:optimizer_root ~subsystem:Proc.Optimizer);
  let parser_procs = declare_many "parse_node" config.n_parser Proc.Parser in
  let optimizer_procs =
    declare_many "plan_node" config.n_optimizer Proc.Optimizer
  in
  (* filler spread over subsystems, biased to parser/optimizer/utility *)
  let filler_subsystem i =
    match i mod 10 with
    | 0 | 1 -> Proc.Parser
    | 2 | 3 | 4 -> Proc.Optimizer
    | 5 | 6 -> Proc.Utility
    | 7 -> Proc.Storage_manager
    | 8 -> Proc.Access_methods
    | _ -> Proc.Other
  in
  let filler =
    Array.init config.n_filler (fun i ->
        let name = Printf.sprintf "cold_%d" i in
        ignore (Builder.declare_proc b ~name ~subsystem:(filler_subsystem i));
        name)
  in
  let resolve = Builder.pid_of_name b in
  let code = ref [] in
  let add_code pid bc = code := (pid, bc) :: !code in
  let compile name skel =
    let pid = resolve name in
    add_code pid (Bytecode.compile b ~pid ~resolve skel)
  in
  (* ---- engine ---- *)
  List.iter (fun (name, _, skel) -> compile name skel) engine;
  (* ---- generated utility layers (L1 calls L2 calls L3 calls L4) ----
     Every layer is partitioned over the layer above, so all of it is
     reachable; only one callee per L1 helper sits on the common path,
     keeping the hot helper walks short. *)
  let gen_layer names pool ~budget ~common ~loop_p =
    let groups =
      partition_callees pool ~n_groups:(max 1 (Array.length names)) ~common
    in
    Array.iteri
      (fun i name ->
        let r = Rng.named rng name in
        let callees = if Array.length pool = 0 then [] else groups.(i) in
        let skel = Gen.body r ~instr_budget:budget ~callees ~loop_p in
        compile name skel)
      names
  in
  (* L1 helpers are the hottest generated code (called per tuple): keep
     their bodies small and put all their fan-out behind rare branches so
     the common helper walk stays a handful of blocks. *)
  gen_layer
    (Array.of_list Stc_db.Helpers.names)
    l2 ~budget:22 ~common:0 ~loop_p:(0.15, 0.4);
  gen_layer l2 l3 ~budget:60 ~common:0 ~loop_p:(0.1, 0.4);
  gen_layer l3 l4 ~budget:60 ~common:0 ~loop_p:(0.1, 0.4);
  gen_layer l4 [||] ~budget:55 ~common:0 ~loop_p:(0.1, 0.35);
  (* ---- parser / optimizer ---- *)
  let gen_tree root procs ~budget =
    (* Four index layers; each deeper procedure is assigned to exactly one
       caller in the previous layer (acyclic, fully reachable). The root
       calls the whole first layer — a parser's dispatch table. *)
    let n = Array.length procs in
    let layer_of i = i * 4 / max 1 n in
    let layer k =
      Array.of_list
        (Array.to_list procs |> List.filteri (fun j _ -> layer_of j = k))
    in
    for k = 0 to 3 do
      let callers = layer k in
      let deeper = if k = 3 then [||] else layer (k + 1) in
      let groups =
        partition_callees deeper ~n_groups:(max 1 (Array.length callers))
          ~common:1
      in
      Array.iteri
        (fun i name ->
          let r = Rng.named rng name in
          let callees = if Array.length deeper = 0 then [] else groups.(i) in
          compile name
            (Gen.body r ~instr_budget:budget ~callees ~loop_p:(0.1, 0.5)))
        callers
    done;
    let r = Rng.named rng root in
    let callees =
      Array.to_list (layer 0)
      |> List.mapi (fun i name ->
             {
               Gen.name;
               placement = (if i mod 5 < 3 then `Common else `Rare);
             })
    in
    compile root (Gen.body r ~instr_budget:120 ~callees ~loop_p:(0.3, 0.6))
  in
  gen_tree parser_root parser_procs ~budget:70;
  gen_tree optimizer_root optimizer_procs ~budget:70;
  (* ---- cold filler ---- *)
  Array.iteri
    (fun i name ->
      let r = Rng.named rng name in
      (* occasional calls to other (later) filler procs *)
      let callees =
        (* a couple of rare calls to later filler procedures *)
        let n = Array.length filler in
        List.filter_map
          (fun off ->
            if i + off < n then
              Some { Gen.name = filler.(i + off); placement = `Rare }
            else None)
          [ 7; 23 ]
      in
      let budget =
        (config.filler_instrs / 2) + Rng.int r (max 1 config.filler_instrs)
      in
      compile name (Gen.body r ~instr_budget:budget ~callees ~loop_p:(0.1, 0.5)))
    filler;
  let program = Builder.build b in
  let code_arr = Array.make (Array.length program.Stc_cfg.Program.procs) None in
  List.iter (fun (pid, bc) -> code_arr.(pid) <- Some bc) !code;
  {
    program;
    code = code_arr;
    executor_ops = Stc_db.Exec.op_names;
    parser_root;
    optimizer_root;
  }

let make_walker t ~seed ~sink =
  Walker.create ~program:t.program ~code:t.code ~seed ~sink

let query_setup t walker =
  Walker.auto_run walker (Walker.pid_of_name walker t.parser_root);
  Walker.auto_run walker (Walker.pid_of_name walker t.optimizer_root)
