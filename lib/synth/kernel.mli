(** Assembly of the complete synthetic database kernel: the instrumented
    engine routines (hand-written skeletons from [Stc_db]), the layered
    generated utility helpers they call, parser/optimizer code walked at
    query-setup time, and the cold filler that gives the program its
    paper-scale static footprint (Table 1: ~6.8 K procedures, ~127 K basic
    blocks, ~594 K instructions, of which only ~13 % are ever touched). *)

type config = {
  seed : int64;
  n_l2 : int;  (** Utility helpers called by the named (L1) helpers. *)
  n_l3 : int;
  n_l4 : int;
  n_parser : int;  (** Parser sub-procedures (auto-walked per query). *)
  n_optimizer : int;
  n_filler : int;  (** Never-executed procedures. *)
  filler_instrs : int;  (** Mean instruction budget of a filler body. *)
}

val default_config : config

type t = {
  program : Stc_cfg.Program.t;
  code : Stc_trace.Bytecode.t option array;
      (** Bytecode per procedure id ([None] only for procedures that can
          never be walked — none, in the default assembly). *)
  executor_ops : string list;
      (** The Executor operation entry points (the "ops" seed selection). *)
  parser_root : string;
  optimizer_root : string;
}

val build : ?config:config -> unit -> t

val make_walker :
  t -> seed:int64 -> sink:(int -> unit) -> Stc_trace.Walker.t

val query_setup : t -> Stc_trace.Walker.t -> unit
(** Auto-walk the parser and optimizer roots — the (cheap) parse/optimize
    phase preceding each query's execution. *)
