(** Generation of synthetic procedure bodies (skeletons) for the parts of
    the database kernel we do not hand-write: utility helpers, parser and
    optimizer code, and the cold mass of rarely-or-never executed
    procedures.

    Generated bodies are auto-walked (every decision site carries a
    probability), use [Helper] calls exclusively, and call only procedures
    passed in [callees] — the caller guarantees acyclicity by layering. *)

type callee = {
  name : string;
  placement : [ `Common | `Rare ];
      (** [`Common] call sites sit on the main path (possibly inside a
          moderately likely branch); [`Rare] ones hide behind a
          low-probability branch (error paths, cold subroutines). *)
}

val body :
  Stc_util.Rng.t ->
  instr_budget:int ->
  callees:callee list ->
  loop_p:float * float ->
  Stc_trace.Skeleton.t
(** Generate a body of roughly [instr_budget] static instructions. Branch
    sites get mostly-deterministic probabilities (the paper's ~80 %
    fixed-transition behaviour); loop sites get a continue-probability
    drawn from the given range. *)
