module Rng = Stc_util.Rng
module Skeleton = Stc_trace.Skeleton

type callee = { name : string; placement : [ `Common | `Rare ] }

(* Branch probabilities: mostly fixed (near 0 or 1), occasionally mixed —
   mirrors Table 2, where ~59 % of dynamic branch executions come from
   blocks that behave in a fixed way. *)
let branch_p rng =
  let r = Rng.float rng 1.0 in
  if r < 0.47 then 0.008 +. Rng.float rng 0.03 (* almost never taken *)
  else if r < 0.79 then 0.958 +. Rng.float rng 0.04 (* almost always *)
  else 0.2 +. Rng.float rng 0.6 (* data-dependent *)

let site =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "g%d" !counter

(* Small blocks: the paper's kernel averages ~4.7 instructions per basic
   block. *)
let straight rng = Skeleton.straight (1 + Rng.int rng 4)

let body rng ~instr_budget ~callees ~loop_p =
  let lo_p, hi_p = loop_p in
  let budget = ref instr_budget in
  let spend n = budget := !budget - n in
  let rec stmts depth pending_callees =
    if !budget <= 0 && pending_callees = [] then []
    else begin
      let choice = Rng.float rng 1.0 in
      match pending_callees with
      | c :: rest when choice < 0.4 ->
        (* place the next callee *)
        spend 3;
        let call_stmt = Skeleton.helper c.name in
        let stmt =
          match c.placement with
          | `Common ->
            if Rng.bernoulli rng 0.5 then
              Skeleton.if_
                ~p:(0.5 +. Rng.float rng 0.45)
                (site ())
                [ call_stmt; straight rng ]
            else call_stmt
          | `Rare ->
            Skeleton.if_
              ~p:(0.01 +. Rng.float rng 0.06)
              (site ())
              [ call_stmt; straight rng ]
        in
        stmt :: stmts depth rest
      | _ when !budget <= 0 ->
        (* only pending callees remain *)
        (match pending_callees with
        | [] -> []
        | c :: rest -> Skeleton.helper c.name :: stmts depth rest)
      | _ when choice < 0.5 ->
        let s = straight rng in
        spend 3;
        s :: stmts depth pending_callees
      | _ when choice < 0.72 && depth > 0 ->
        spend 2;
        let p = branch_p rng in
        (* never-taken branches guard small error exits; likely branches
           carry real code, so the executed fraction of a touched
           procedure stays high (Table 1) *)
        let inner =
          if p < 0.06 then
            (* error exits: small, and often an early return — DB code is
               full of them (the paper's executed code is ~25 % return
               blocks) *)
            if Rng.bernoulli rng 0.5 then [ straight rng; Skeleton.return ]
            else [ straight rng ]
          else
            match stmts (depth - 1) [] with
            | [] -> [ straight rng ]
            | l -> l
        in
        let stmt =
          if Rng.bernoulli rng 0.3 then
            Skeleton.if_else ~p (site ()) inner [ straight rng ]
          else Skeleton.if_ ~p (site ()) inner
        in
        stmt :: stmts depth pending_callees
      | _ when choice < 0.82 && depth > 0 ->
        spend 3;
        let inner = stmts (depth - 1) [] in
        let inner = if inner = [] then [ straight rng ] else inner in
        let p = lo_p +. Rng.float rng (hi_p -. lo_p) in
        Skeleton.while_ ~p (site ()) inner :: stmts depth pending_callees
      | _ ->
        let s = straight rng in
        spend 3;
        s :: stmts depth pending_callees
    end
  in
  let b = stmts 3 callees in
  if b = [] then [ straight rng ] else b
