module Icache = Stc_cachesim.Icache

module Config = struct
  type t = {
    max_branches : int;
    line_bytes : int;
    miss_penalty : int;
    fdip : Fdip.config option;
  }

  let default =
    { max_branches = 3; line_bytes = 32; miss_penalty = 5; fdip = None }

  let make ?(max_branches = 3) ?(line_bytes = 32) ?(miss_penalty = 5) ?fdip ()
      =
    { max_branches; line_bytes; miss_penalty; fdip }
end

type config = Config.t = {
  max_branches : int;
  line_bytes : int;
  miss_penalty : int;
  fdip : Fdip.config option;
}

type prediction = { pred : Predictor.t; redirect_penalty : int }

type result = {
  instrs : int;
  cycles : int;
  fetch_cycles : int;
  seq_cycles : int;
  tc_cycles : int;
  icache_accesses : int;
  icache_misses : int;
  icache_victim_hits : int;
  tc_lookups : int;
  tc_hits : int;
  taken_branches : int;
  instrs_between_taken : float;
  cond_branches : int;
  mispredictions : int;
  icache_evictions : int;
  prefetch_issued : int;
  prefetch_completed : int;
  prefetch_late : int;
  prefetch_useful : int;
}

let bandwidth r =
  if r.cycles = 0 then 0.0 else float_of_int r.instrs /. float_of_int r.cycles

let miss_rate_pct r =
  if r.instrs = 0 then 0.0
  else 100.0 *. float_of_int r.icache_misses /. float_of_int r.instrs

let result_fields r =
  [
    ("instrs", float_of_int r.instrs);
    ("cycles", float_of_int r.cycles);
    ("fetch_cycles", float_of_int r.fetch_cycles);
    ("seq_cycles", float_of_int r.seq_cycles);
    ("tc_cycles", float_of_int r.tc_cycles);
    ("icache_accesses", float_of_int r.icache_accesses);
    ("icache_misses", float_of_int r.icache_misses);
    ("icache_victim_hits", float_of_int r.icache_victim_hits);
    ("tc_lookups", float_of_int r.tc_lookups);
    ("tc_hits", float_of_int r.tc_hits);
    ("taken_branches", float_of_int r.taken_branches);
    ("instrs_between_taken", r.instrs_between_taken);
    ("cond_branches", float_of_int r.cond_branches);
    ("mispredictions", float_of_int r.mispredictions);
    ("icache_evictions", float_of_int r.icache_evictions);
    ("prefetch_issued", float_of_int r.prefetch_issued);
    ("prefetch_completed", float_of_int r.prefetch_completed);
    ("prefetch_late", float_of_int r.prefetch_late);
    ("prefetch_useful", float_of_int r.prefetch_useful);
  ]

let publish reg r =
  let module Reg = Stc_obs.Registry in
  let module C = Stc_obs.Metric.Counter in
  let add name v = C.add (Reg.counter reg ("engine." ^ name)) v in
  add "instrs" r.instrs;
  add "cycles" r.cycles;
  add "fetch_cycles" r.fetch_cycles;
  add "seq_cycles" r.seq_cycles;
  add "tc_cycles" r.tc_cycles;
  add "icache_accesses" r.icache_accesses;
  add "icache_misses" r.icache_misses;
  add "icache_victim_hits" r.icache_victim_hits;
  add "tc_lookups" r.tc_lookups;
  add "tc_hits" r.tc_hits;
  add "cond_branches" r.cond_branches;
  add "mispredictions" r.mispredictions;
  (* the prefetch/replacement family is published only when live, so an
     export containing only pre-PR configurations stays byte-identical;
     results are deterministic, hence so is the condition *)
  let addnz name v = if v <> 0 then add name v in
  addnz "icache.replacement.evictions" r.icache_evictions;
  addnz "prefetch.issued" r.prefetch_issued;
  addnz "prefetch.completed" r.prefetch_completed;
  addnz "prefetch.late" r.prefetch_late;
  addnz "prefetch.useful" r.prefetch_useful;
  C.incr (Reg.counter reg "engine.runs")

(* The packed fast path: one unsafe word read per block, all statistics
   accumulated in local ints and flushed to the caches' shared counters
   at segment boundaries. Cycle accounting is line-for-line the model of
   [run_naive] below; the two must stay result-identical (the equality
   is property-tested and asserted by @perf-smoke). *)
(* Timeline slices are one per replay plus one per consumed segment —
   never per block: at millions of blocks per second even a no-op
   emission call in the inner loop would dominate the engine. *)
let traced ctx name f =
  match Option.bind ctx (fun c -> c.Stc_obs.Run.trace) with
  | None -> f ()
  | Some tr -> Stc_obs.Trace.span tr name f

(* The one engine core, driven by a pull of packed segments whose
   concatenation is the trace. A bounded sliding buffer keeps at least
   [need] words of lookahead ahead of the current index (except at true
   end of stream), where [need] covers the engine's maximal forward
   reach within one fetch cycle:

   - a sequential cycle completes at most [2 * line_bytes / instr_bytes]
     blocks (every block is >= 1 instruction, the window is two lines)
     and then peeks one block past the last completion;
   - a trace-cache build/lookup walks at most [width] completed blocks
     from the cycle's start.

   Refills happen only between fetch cycles, so inner loops never see a
   segment boundary — which is why the streamed replay is bit-identical
   to a whole-trace replay at any segment size. The first segment is
   borrowed (never copied or mutated): a single-segment stream — i.e.
   [run_packed] — runs zero-copy over the caller's image. *)
let run_segments ?ctx ?(config = Config.default) ?icache ?trace_cache
    ?prediction ?resident_hwm ~name pull =
  traced ctx name @@ fun () ->
  let metrics = Option.bind ctx (fun c -> c.Stc_obs.Run.metrics) in
  let tracer = Option.bind ctx (fun c -> c.Stc_obs.Run.trace) in
  let seg_slice_id =
    match tracer with
    | Some tr -> Stc_obs.Trace.intern tr "engine.segment"
    | None -> 0
  in
  let line = config.line_bytes in
  let max_branches = config.max_branches in
  let miss_penalty = config.miss_penalty in
  let instr_bytes = Stc_cfg.Block.instr_bytes in
  (* FDIP is live only when there is an i-cache to prefetch into *)
  let fdip =
    match (config.fdip, icache) with
    | Some fc, Some c -> Some (Fdip.create fc c)
    | _ -> None
  in
  let need =
    let tc_width =
      match trace_cache with Some tc -> Tracecache.width tc | None -> 0
    in
    let base = max tc_width (2 * line / instr_bytes) + 2 in
    (* the FTQ walk peeks [ftq_depth] blocks past the cycle start; the
       refill guarantee then makes its window identical in streamed and
       materialized replay *)
    match config.fdip with
    | Some fc when Option.is_some fdip -> max base (fc.Fdip.ftq_depth + 2)
    | _ -> base
  in
  let cycles = ref 0 and penalties = ref 0 and instrs = ref 0 in
  let seq_cycles = ref 0 and tc_cycles = ref 0 in
  let cond_branches = ref 0 in
  let ic_accesses = ref 0 and ic_misses = ref 0 and ic_vhits = ref 0 in
  let tc_lookups = ref 0 and tc_hits = ref 0 in
  (* sliding buffer state; [idx] is buffer-local, [dropped] is the count
     of words retired from the buffer, so [dropped + idx] is the global
     trace index *)
  let buf = ref [||] and avail = ref 0 in
  let owned = ref false and eos = ref false in
  let dropped = ref 0 in
  let bview =
    ref (Packed.of_raw ~words:[||] ~len:0 ~total_instrs:0 ~taken_branches:0)
  in
  let sum_instrs = ref 0 and sum_taken = ref 0 in
  let hwm = ref 0 in
  let pulled = ref 0 in
  let idx = ref 0 and off = ref 0 in
  let seg_start =
    ref (match tracer with Some tr -> Stc_obs.Trace.now tr | None -> 0.0)
  in
  let seg_mark = ref 0 in
  let seg_slice () =
    match tracer with
    | None -> ()
    | Some tr ->
      let gpos = !dropped + !idx in
      Stc_obs.Trace.complete ~arg:(gpos - !seg_mark) tr seg_slice_id
        ~start:!seg_start;
      seg_mark := gpos;
      seg_start := Stc_obs.Trace.now tr
  in
  let flush_stats () =
    (match icache with
    | Some c ->
      Icache.add_stats c ~accesses:!ic_accesses ~misses:!ic_misses
        ~victim_hits:!ic_vhits;
      ic_accesses := 0;
      ic_misses := 0;
      ic_vhits := 0
    | None -> ());
    match trace_cache with
    | Some tc ->
      Tracecache.add_stats tc ~lookups:!tc_lookups ~hits:!tc_hits;
      tc_lookups := 0;
      tc_hits := 0
    | None -> ()
  in
  let append p =
    sum_instrs := !sum_instrs + Packed.total_instrs p;
    sum_taken := !sum_taken + Packed.taken_branches p;
    let plen = Packed.length p in
    if (not !owned) && !avail - !idx = 0 then begin
      (* nothing live: borrow the segment's own array, no copy *)
      dropped := !dropped + !idx;
      buf := Packed.raw p;
      idx := 0;
      avail := plen;
      bview := p
    end
    else begin
      (if not !owned then begin
         (* first spill past a borrowed segment: switch to an owned
            buffer holding the live tail plus the new segment *)
         let live = !avail - !idx in
         let nb = Array.make (max (live + plen) (need + plen)) 0 in
         Array.blit !buf !idx nb 0 live;
         dropped := !dropped + !idx;
         buf := nb;
         owned := true;
         avail := live;
         idx := 0
       end
       else begin
         if !idx > 0 then begin
           (* compact the consumed prefix *)
           Array.blit !buf !idx !buf 0 (!avail - !idx);
           dropped := !dropped + !idx;
           avail := !avail - !idx;
           idx := 0
         end;
         if !avail + plen > Array.length !buf then begin
           let nb = Array.make (max (!avail + plen) (need + plen)) 0 in
           Array.blit !buf 0 nb 0 !avail;
           buf := nb
         end
       end);
      Array.blit (Packed.raw p) 0 !buf !avail plen;
      avail := !avail + plen;
      bview :=
        Packed.of_raw ~words:!buf ~len:!avail ~total_instrs:0
          ~taken_branches:0
    end;
    if Array.length !buf > !hwm then hwm := Array.length !buf
  in
  let refill () =
    match pull () with
    | None -> eos := true
    | Some p ->
      if !pulled > 0 then begin
        seg_slice ();
        flush_stats ()
      end;
      incr pulled;
      append p
  in
  (* direction prediction per executed conditional branch, as in the
     naive path; [w] is the block's packed word *)
  let check_prediction w =
    if Packed.w_cond w then begin
      incr cond_branches;
      match prediction with
      | None -> ()
      | Some { pred; redirect_penalty } ->
        let pc = Packed.w_addr w + ((Packed.w_size w - 1) * 4) in
        if
          not
            (Predictor.predict_and_update pred ~pc ~taken:(Packed.w_taken w))
        then penalties := !penalties + redirect_penalty
    end
  in
  let access_line a =
    match icache with
    | None -> true
    | Some c -> (
      incr ic_accesses;
      match Icache.access_uncounted c a with
      | Icache.Hit -> true
      | Icache.Victim_hit ->
        incr ic_vhits;
        true
      | Icache.Miss ->
        incr ic_misses;
        false)
  in
  (* the FDIP demand probe of one line: same local-counter batching as
     [access_line], but the charge (not a hit bool) feeds the penalty *)
  let demand_fdip f ~now a =
    incr ic_accesses;
    let o, charge = Fdip.demand f ~now ~miss_penalty a in
    (match o with
    | Icache.Hit -> ()
    | Icache.Victim_hit -> incr ic_vhits
    | Icache.Miss -> incr ic_misses);
    charge
  in
  while (not !eos) || !idx < !avail do
    if (not !eos) && !avail - !idx < need then refill ()
    else begin
      (* one fetch cycle, entirely within the buffered lookahead *)
      let words = !buf in
      let len = !avail in
      let packed = !bview in
      let start_idx = !idx and start_off = !off in
      (* FDIP step 1: prefetches whose latency elapsed land in L1i.
         [fnow] is the number this cycle is about to get; the frontend
         runs on every cycle, trace-cache hits included. *)
      let fnow = !cycles + 1 in
      (match fdip with Some f -> Fdip.begin_cycle f ~now:fnow | None -> ());
      (* FDIP step 3: after the cycle's fetch, the run-ahead FTQ walk
         issues prefetches for the blocks from the cycle-start index *)
      let fdip_advance () =
        match fdip with
        | None -> ()
        | Some f ->
          Fdip.advance f ~now:fnow ~nth:(fun k ->
              let i = start_idx + k in
              if i < len then Some (Packed.w_addr (Array.unsafe_get words i))
              else None)
      in
      let tc_hit =
        match trace_cache with
        | None -> None
        | Some tc ->
          incr tc_lookups;
          let r =
            Tracecache.lookup_uncounted tc packed ~idx:start_idx
              ~off:start_off
          in
          (match r with Some _ -> incr tc_hits | None -> ());
          r
      in
      match tc_hit with
      | Some info when info.Tracecache.n_instrs > 0 ->
        incr cycles;
        incr tc_cycles;
        instrs := !instrs + info.Tracecache.n_instrs;
        let stop = info.Tracecache.end_pos.View.idx in
        (* every block whose final instruction lies inside the trace has
           its branch resolved here *)
        for i = !idx to stop - 1 do
          check_prediction (Array.unsafe_get words i)
        done;
        idx := stop;
        off := info.Tracecache.end_pos.View.off;
        fdip_advance ()
      | Some _ | None ->
        (* sequential cycle *)
        incr cycles;
        incr seq_cycles;
        let a =
          Packed.w_addr (Array.unsafe_get words start_idx)
          + (start_off * instr_bytes)
        in
        let line_no = a / line in
        (* FDIP step 2: the demand pair, each probe returning its cycle
           charge; the cycle pays the larger one, which degenerates to
           the historical one-penalty-if-either-line-misses rule when no
           prefetches are in flight *)
        (match fdip with
        | Some f ->
          let c1 = demand_fdip f ~now:fnow (line_no * line) in
          let c2 = demand_fdip f ~now:fnow ((line_no + 1) * line) in
          penalties := !penalties + (if c1 > c2 then c1 else c2)
        | None ->
          let hit1 = access_line (line_no * line) in
          let hit2 = access_line ((line_no + 1) * line) in
          if not (hit1 && hit2) then penalties := !penalties + miss_penalty);
        let window_end = (line_no + 2) * line in
        let branches = ref 0 in
        let stop = ref false in
        while not !stop do
          let w = Array.unsafe_get words !idx in
          let size = Packed.w_size w in
          let cur_addr = Packed.w_addr w + (!off * instr_bytes) in
          let space = (window_end - cur_addr) / instr_bytes in
          let remaining = size - !off in
          let take = if remaining <= space then remaining else space in
          instrs := !instrs + take;
          if take < remaining then begin
            off := !off + take;
            stop := true
          end
          else begin
            let was_branch = Packed.w_branch w in
            let taken = Packed.w_taken w in
            if was_branch then incr branches;
            check_prediction w;
            incr idx;
            off := 0;
            if
              taken
              || (was_branch && !branches >= max_branches)
              || !idx >= len
            then stop := true
            else if Packed.w_addr (Array.unsafe_get words !idx) >= window_end
            then stop := true
          end
        done;
        (* the fill unit builds a new trace at the missed fetch address *)
        (match trace_cache with
        | Some tc ->
          Tracecache.fill_packed tc packed ~idx:start_idx ~off:start_off
        | None -> ());
        fdip_advance ()
    end
  done;
  if !pulled > 0 then seg_slice ();
  (* flush the locally-batched statistics before anything snapshots the
     caches, so the shared counters end exactly where the per-access
     counting of the naive path would leave them *)
  flush_stats ();
  (match resident_hwm with Some r -> r := !hwm | None -> ());
  let icache_accesses, icache_misses, icache_victim_hits =
    match icache with
    | None -> (0, 0, 0)
    | Some c ->
      let s = Icache.stats c in
      (s.Icache.s_accesses, s.Icache.s_misses, s.Icache.s_victim_hits)
  in
  let r =
    {
      instrs = !instrs;
      cycles = !cycles + !penalties;
      fetch_cycles = !cycles;
      seq_cycles = !seq_cycles;
      tc_cycles = !tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups =
        (match trace_cache with
        | None -> 0
        | Some tc -> Tracecache.lookups tc);
      tc_hits =
        (match trace_cache with None -> 0 | Some tc -> Tracecache.hits tc);
      taken_branches = !sum_taken;
      instrs_between_taken =
        (if !sum_taken = 0 then float_of_int !sum_instrs
         else float_of_int !sum_instrs /. float_of_int !sum_taken);
      cond_branches = !cond_branches;
      mispredictions =
        (match prediction with
        | Some { pred; _ } -> Predictor.mispredictions pred
        | None -> 0);
      icache_evictions =
        (match icache with Some c -> Icache.evictions c | None -> 0);
      prefetch_issued = (match fdip with Some f -> Fdip.issued f | None -> 0);
      prefetch_completed =
        (match fdip with Some f -> Fdip.completed f | None -> 0);
      prefetch_late = (match fdip with Some f -> Fdip.late f | None -> 0);
      prefetch_useful = (match fdip with Some f -> Fdip.useful f | None -> 0);
    }
  in
  (match (tracer, fdip) with
  | Some tr, Some f ->
    (* one slice per replay summarizing the frontend's work *)
    Stc_obs.Trace.complete ~arg:(Fdip.issued f) tr
      (Stc_obs.Trace.intern tr "engine.prefetch")
      ~start:!seg_start
  | _ -> ());
  (match metrics with Some reg -> publish reg r | None -> ());
  r

(* Fused replay: one sweep over the trace drives a bank of independent
   per-config engine states, so N cells over the same layout decode and
   pull each packed word once instead of N times.

   The key structural fact (asserted bit-identical by Stc_check, the
   QCheck fused properties and the golden harness): without direction
   prediction, SEQ.3 cycle boundaries depend only on the block stream,
   [line_bytes], [max_branches] and the trace-cache contents — never on
   i-cache outcomes, which contribute penalties but cannot change what
   the cycle fetches. And two empty trace caches of equal geometry
   evolve identical contents over the same cycle sequence. So slots
   sharing (line_bytes, max_branches, trace-cache geometry) form a
   *cohort* advancing one shared walk; per slot, each sequential cycle
   costs only the two i-cache probes plus penalty accrual, and the
   cohort's lead trace cache stands in for every member's (their
   statistics are batched in cohort locals and flushed to each member,
   so counter values match a solo replay; member trace-cache *contents*
   are not materialized — nothing observes them).

   Slots with prediction still join a cohort (prediction adds redirect
   penalties per slot without touching the walk). Cohorts advance
   round-robin over a shared sliding window, each bounded to at most
   [stride_words] past the laggard, so the words being re-walked stay
   cache-resident even over a fully materialized image; the window
   compacts below the minimum cohort position, keeping streamed
   residency O(largest segment + lookahead) exactly as in
   [run_segments]. Every cycle step is a verbatim transcription of the
   cycle body above — same arithmetic, same stop conditions — which is
   what makes per-slot results bit-identical to [run_packed]. *)
module Bank = struct
  type spec = {
    config : Config.t;
    icache : Icache.t option;
    trace_cache : Tracecache.t option;
    prediction : prediction option;
  }

  let spec ?(config = Config.default) ?icache ?trace_cache ?prediction () =
    { config; icache; trace_cache; prediction }

  (* the i-cache probe strategy is picked once per slot *)
  type probe = No_cache | Direct of Icache.t | Generic of Icache.t

  type slot = {
    sp : spec;
    ix : int; (* input index, for result placement *)
    probe : probe;
    penalty : int;
    s_fdip : Fdip.t option; (* per-slot decoupled frontend, if any *)
    mutable s_penalties : int;
    mutable s_acc : int;
    mutable s_miss : int;
    mutable s_vhit : int;
  }

  (* slots whose cycle structure is identical share one walk *)
  type cohort = {
    line : int;
    cmax_branches : int;
    tc : Tracecache.t option; (* the lead: drives lookups and fills *)
    members : slot array;
    actives : slot array; (* members with an i-cache to probe *)
    preds : slot array; (* members with direction prediction *)
    fdips : slot array; (* members with a live FDIP frontend *)
    need : int;
    mutable pos : int; (* global block index *)
    mutable coff : int; (* intra-block offset *)
    mutable ccycles : int;
    mutable cseq : int;
    mutable ctc : int;
    mutable cinstrs : int;
    mutable ccond : int;
    mutable clookups : int;
    mutable chits : int;
  }

  let default_stride_words = 16384

  let run_segments ?ctx ?(stride_words = default_stride_words) ?resident_hwm
      ~name specs pull =
    let n = Array.length specs in
    if n = 0 then [||]
    else
      traced ctx name @@ fun () ->
      let metrics = Option.bind ctx (fun c -> c.Stc_obs.Run.metrics) in
      let tracer = Option.bind ctx (fun c -> c.Stc_obs.Run.trace) in
      let fused_id =
        match tracer with
        | Some tr -> Stc_obs.Trace.intern tr "engine.fused"
        | None -> 0
      in
      let t0 =
        match tracer with Some tr -> Stc_obs.Trace.now tr | None -> 0.0
      in
      let instr_bytes = Stc_cfg.Block.instr_bytes in
      let stride = max 1 stride_words in
      let slots =
        Array.mapi
          (fun ix sp ->
            let s_fdip =
              match (sp.config.fdip, sp.icache) with
              | Some fc, Some c -> Some (Fdip.create fc c)
              | _ -> None
            in
            let probe =
              match sp.icache with
              | None -> No_cache
              | Some c when Icache.plain_direct c && Option.is_none s_fdip ->
                Direct c
              | Some c -> Generic c
            in
            {
              sp;
              ix;
              probe;
              penalty = sp.config.miss_penalty;
              s_fdip;
              s_penalties = 0;
              s_acc = 0;
              s_miss = 0;
              s_vhit = 0;
            })
          specs
      in
      let cohorts =
        let key s =
          ( s.sp.config.line_bytes,
            s.sp.config.max_branches,
            Option.map Tracecache.geometry s.sp.trace_cache )
        in
        let acc = ref [] in
        (* first-appearance order, so walks are deterministic *)
        Array.iter
          (fun s ->
            let k = key s in
            match List.assoc_opt k !acc with
            | Some r -> r := s :: !r
            | None -> acc := !acc @ [ (k, ref [ s ]) ])
          slots;
        Array.of_list
          (List.map
             (fun ((line, mb, _), r) ->
               let members = Array.of_list (List.rev !r) in
               let tc = members.(0).sp.trace_cache in
               let actives =
                 Array.of_list
                   (List.filter
                      (fun s ->
                        match s.probe with No_cache -> false | _ -> true)
                      (Array.to_list members))
               in
               let preds =
                 Array.of_list
                   (List.filter
                      (fun s -> Option.is_some s.sp.prediction)
                      (Array.to_list members))
               in
               let fdips =
                 Array.of_list
                   (List.filter
                      (fun s -> Option.is_some s.s_fdip)
                      (Array.to_list members))
               in
               let tc_width =
                 match tc with Some tc -> Tracecache.width tc | None -> 0
               in
               let need =
                 let base = max tc_width (2 * line / instr_bytes) + 2 in
                 (* the deepest member FTQ bounds the cohort's forward
                    reach within one cycle, as in the solo engine *)
                 Array.fold_left
                   (fun m s ->
                     match s.sp.config.fdip with
                     | Some fc when Option.is_some s.s_fdip ->
                       max m (fc.Fdip.ftq_depth + 2)
                     | _ -> m)
                   base members
               in
               {
                 line;
                 cmax_branches = mb;
                 tc;
                 members;
                 actives;
                 preds;
                 fdips;
                 need;
                 pos = 0;
                 coff = 0;
                 ccycles = 0;
                 cseq = 0;
                 ctc = 0;
                 cinstrs = 0;
                 ccond = 0;
                 clookups = 0;
                 chits = 0;
               })
             !acc)
      in
      let gneed = Array.fold_left (fun m h -> max m h.need) 0 cohorts in
      (* shared sliding buffer, as in [run_segments]: [dropped] counts
         words retired below every cohort's position *)
      let buf = ref [||] and avail = ref 0 in
      let owned = ref false and eos = ref false in
      let dropped = ref 0 in
      let bview =
        ref
          (Packed.of_raw ~words:[||] ~len:0 ~total_instrs:0 ~taken_branches:0)
      in
      let sum_instrs = ref 0 and sum_taken = ref 0 in
      let hwm = ref 0 in
      let min_pos () =
        Array.fold_left (fun m h -> if h.pos < m then h.pos else m) max_int
          cohorts
      in
      let append p =
        sum_instrs := !sum_instrs + Packed.total_instrs p;
        sum_taken := !sum_taken + Packed.taken_branches p;
        let plen = Packed.length p in
        let keep = min_pos () - !dropped in
        if (not !owned) && !avail - keep = 0 then begin
          (* nothing live: borrow the segment's own array, no copy *)
          dropped := !dropped + !avail;
          buf := Packed.raw p;
          avail := plen;
          bview := p
        end
        else begin
          (if not !owned then begin
             let live = !avail - keep in
             let nb = Array.make (max (live + plen) (gneed + plen)) 0 in
             Array.blit !buf keep nb 0 live;
             dropped := !dropped + keep;
             buf := nb;
             owned := true;
             avail := live
           end
           else begin
             if keep > 0 then begin
               Array.blit !buf keep !buf 0 (!avail - keep);
               dropped := !dropped + keep;
               avail := !avail - keep
             end;
             if !avail + plen > Array.length !buf then begin
               let nb = Array.make (max (!avail + plen) (gneed + plen)) 0 in
               Array.blit !buf 0 nb 0 !avail;
               buf := nb
             end
           end);
          Array.blit (Packed.raw p) 0 !buf !avail plen;
          avail := !avail + plen;
          bview :=
            Packed.of_raw ~words:!buf ~len:!avail ~total_instrs:0
              ~taken_branches:0
        end;
        if Array.length !buf > !hwm then hwm := Array.length !buf
      in
      let refill () =
        match pull () with None -> eos := true | Some p -> append p
      in
      let probe_slot s ~now a1 a2 =
        match s.s_fdip with
        | Some f ->
          (* demand pair through the slot's frontend; the cycle pays the
             larger charge, as in the solo engine *)
          s.s_acc <- s.s_acc + 2;
          let count (o : Icache.outcome) =
            match o with
            | Icache.Hit -> ()
            | Icache.Victim_hit -> s.s_vhit <- s.s_vhit + 1
            | Icache.Miss -> s.s_miss <- s.s_miss + 1
          in
          let o1, c1 = Fdip.demand f ~now ~miss_penalty:s.penalty a1 in
          count o1;
          let o2, c2 = Fdip.demand f ~now ~miss_penalty:s.penalty a2 in
          count o2;
          s.s_penalties <- s.s_penalties + (if c1 > c2 then c1 else c2)
        | None -> (
          match s.probe with
          | No_cache -> ()
          | Direct c ->
          s.s_acc <- s.s_acc + 2;
          let h1 = Icache.probe_direct c a1 in
          let h2 = Icache.probe_direct c a2 in
          if not (h1 && h2) then begin
            s.s_miss <- s.s_miss + (if h1 then 0 else 1)
                        + (if h2 then 0 else 1);
            s.s_penalties <- s.s_penalties + s.penalty
          end
        | Generic c ->
          s.s_acc <- s.s_acc + 2;
          let probe a =
            match Icache.access_uncounted c a with
            | Icache.Hit -> true
            | Icache.Victim_hit ->
              s.s_vhit <- s.s_vhit + 1;
              true
            | Icache.Miss ->
              s.s_miss <- s.s_miss + 1;
              false
          in
          let h1 = probe a1 in
          let h2 = probe a2 in
          if not (h1 && h2) then s.s_penalties <- s.s_penalties + s.penalty)
      in
      (* per conditional branch (callers test [w_cond] first, so the
         common all-sequential block costs no call): count it once for
         the cohort, then charge each predicting member its own
         redirects *)
      let cond_block h w =
        h.ccond <- h.ccond + 1;
        let preds = h.preds in
        for i = 0 to Array.length preds - 1 do
          let s = Array.unsafe_get preds i in
          match s.sp.prediction with
          | Some { pred; redirect_penalty } ->
            let pc = Packed.w_addr w + ((Packed.w_size w - 1) * 4) in
            if
              not
                (Predictor.predict_and_update pred ~pc
                   ~taken:(Packed.w_taken w))
            then s.s_penalties <- s.s_penalties + redirect_penalty
          | None -> ()
        done
      in
      (* one fetch cycle for cohort [h] — a verbatim transcription of the
         [run_segments] cycle body over the shared buffer *)
      let step_cohort h =
        let words = !buf in
        let len = !avail in
        let packed = !bview in
        let start_idx = h.pos - !dropped and start_off = h.coff in
        (* FDIP steps 1 and 3 bracket the cycle for every frontend-bearing
           member, exactly as in the solo engine: land elapsed prefetches
           first, walk the FTQ from the cycle-start index last *)
        let fnow = h.ccycles + 1 in
        let fdips = h.fdips in
        for i = 0 to Array.length fdips - 1 do
          match (Array.unsafe_get fdips i).s_fdip with
          | Some f -> Fdip.begin_cycle f ~now:fnow
          | None -> ()
        done;
        let fdip_advance () =
          for i = 0 to Array.length fdips - 1 do
            match (Array.unsafe_get fdips i).s_fdip with
            | Some f ->
              Fdip.advance f ~now:fnow ~nth:(fun k ->
                  let i = start_idx + k in
                  if i < len then
                    Some (Packed.w_addr (Array.unsafe_get words i))
                  else None)
            | None -> ()
          done
        in
        let tc_hit =
          match h.tc with
          | None -> None
          | Some tc ->
            h.clookups <- h.clookups + 1;
            let r =
              Tracecache.lookup_uncounted tc packed ~idx:start_idx
                ~off:start_off
            in
            (match r with Some _ -> h.chits <- h.chits + 1 | None -> ());
            r
        in
        match tc_hit with
        | Some info when info.Tracecache.n_instrs > 0 ->
          h.ccycles <- h.ccycles + 1;
          h.ctc <- h.ctc + 1;
          h.cinstrs <- h.cinstrs + info.Tracecache.n_instrs;
          let stop = info.Tracecache.end_pos.View.idx in
          for i = start_idx to stop - 1 do
            let w = Array.unsafe_get words i in
            if Packed.w_cond w then cond_block h w
          done;
          h.pos <- !dropped + stop;
          h.coff <- info.Tracecache.end_pos.View.off;
          fdip_advance ()
        | Some _ | None ->
          h.ccycles <- h.ccycles + 1;
          h.cseq <- h.cseq + 1;
          let a =
            Packed.w_addr (Array.unsafe_get words start_idx)
            + (start_off * instr_bytes)
          in
          let line_no = a / h.line in
          let a1 = line_no * h.line and a2 = (line_no + 1) * h.line in
          let actives = h.actives in
          for i = 0 to Array.length actives - 1 do
            probe_slot (Array.unsafe_get actives i) ~now:fnow a1 a2
          done;
          let window_end = (line_no + 2) * h.line in
          let idx = ref start_idx and off = ref start_off in
          let branches = ref 0 in
          let stop = ref false in
          while not !stop do
            let w = Array.unsafe_get words !idx in
            let size = Packed.w_size w in
            let cur_addr = Packed.w_addr w + (!off * instr_bytes) in
            let space = (window_end - cur_addr) / instr_bytes in
            let remaining = size - !off in
            let take = if remaining <= space then remaining else space in
            h.cinstrs <- h.cinstrs + take;
            if take < remaining then begin
              off := !off + take;
              stop := true
            end
            else begin
              let was_branch = Packed.w_branch w in
              let taken = Packed.w_taken w in
              if was_branch then incr branches;
              if Packed.w_cond w then cond_block h w;
              incr idx;
              off := 0;
              if
                taken
                || (was_branch && !branches >= h.cmax_branches)
                || !idx >= len
              then stop := true
              else if
                Packed.w_addr (Array.unsafe_get words !idx) >= window_end
              then stop := true
            end
          done;
          (match h.tc with
          | Some tc ->
            Tracecache.fill_packed tc packed ~idx:start_idx ~off:start_off
          | None -> ());
          h.pos <- !dropped + !idx;
          h.coff <- !off;
          fdip_advance ()
      in
      let finished () =
        Array.for_all (fun h -> h.pos - !dropped >= !avail) cohorts
      in
      while (not !eos) || not (finished ()) do
        let mn_lp = min_pos () - !dropped in
        if (not !eos) && !avail - mn_lp < gneed then refill ()
        else begin
          (* one round: every cohort advances to at most [stride] words
             past the laggard (or as far as its lookahead allows) *)
          let limit = min !avail (mn_lp + stride) in
          Array.iter
            (fun h ->
              let hneed = h.need in
              let cont = ref true in
              while !cont do
                let lp = h.pos - !dropped in
                if lp >= limit || ((not !eos) && !avail - lp < hneed) then
                  cont := false
                else step_cohort h
              done)
            cohorts
        end
      done;
      (match resident_hwm with Some r -> r := !hwm | None -> ());
      let out = Array.make n None in
      Array.iter
        (fun h ->
          Array.iter
            (fun s ->
              (* flush the batched statistics into each member's caches,
                 exactly where a solo replay would leave them *)
              (match s.sp.icache with
              | Some c ->
                Icache.add_stats c ~accesses:s.s_acc ~misses:s.s_miss
                  ~victim_hits:s.s_vhit
              | None -> ());
              (match s.sp.trace_cache with
              | Some tc ->
                Tracecache.add_stats tc ~lookups:h.clookups ~hits:h.chits
              | None -> ());
              let icache_accesses, icache_misses, icache_victim_hits =
                match s.sp.icache with
                | None -> (0, 0, 0)
                | Some c ->
                  let st = Icache.stats c in
                  (st.Icache.s_accesses, st.Icache.s_misses,
                   st.Icache.s_victim_hits)
              in
              let r =
                {
                  instrs = h.cinstrs;
                  cycles = h.ccycles + s.s_penalties;
                  fetch_cycles = h.ccycles;
                  seq_cycles = h.cseq;
                  tc_cycles = h.ctc;
                  icache_accesses;
                  icache_misses;
                  icache_victim_hits;
                  tc_lookups =
                    (match s.sp.trace_cache with
                    | None -> 0
                    | Some tc -> Tracecache.lookups tc);
                  tc_hits =
                    (match s.sp.trace_cache with
                    | None -> 0
                    | Some tc -> Tracecache.hits tc);
                  taken_branches = !sum_taken;
                  instrs_between_taken =
                    (if !sum_taken = 0 then float_of_int !sum_instrs
                     else
                       float_of_int !sum_instrs /. float_of_int !sum_taken);
                  cond_branches = h.ccond;
                  mispredictions =
                    (match s.sp.prediction with
                    | Some { pred; _ } -> Predictor.mispredictions pred
                    | None -> 0);
                  icache_evictions =
                    (match s.sp.icache with
                    | Some c -> Icache.evictions c
                    | None -> 0);
                  prefetch_issued =
                    (match s.s_fdip with
                    | Some f -> Fdip.issued f
                    | None -> 0);
                  prefetch_completed =
                    (match s.s_fdip with
                    | Some f -> Fdip.completed f
                    | None -> 0);
                  prefetch_late =
                    (match s.s_fdip with Some f -> Fdip.late f | None -> 0);
                  prefetch_useful =
                    (match s.s_fdip with
                    | Some f -> Fdip.useful f
                    | None -> 0);
                }
              in
              out.(s.ix) <- Some r)
            h.members)
        cohorts;
      let results =
        Array.map (function Some r -> r | None -> assert false) out
      in
      (match metrics with
      | Some reg -> Array.iter (publish reg) results
      | None -> ());
      (match tracer with
      | Some tr -> Stc_obs.Trace.complete ~arg:n tr fused_id ~start:t0
      | None -> ());
      results

  let run_packed ?ctx ?stride_words specs packed =
    let first = ref (Some packed) in
    run_segments ?ctx ?stride_words ~name:"engine.fused_packed" specs
      (fun () ->
        let p = !first in
        first := None;
        p)

  let run_stream ?ctx ?stride_words ?resident_hwm specs stream =
    run_segments ?ctx ?stride_words ?resident_hwm
      ~name:"engine.fused_stream" specs (fun () -> Stream.next stream)
end

let run_packed ?ctx ?config ?icache ?trace_cache ?prediction packed =
  let first = ref (Some packed) in
  run_segments ?ctx ?config ?icache ?trace_cache ?prediction
    ~name:"engine.run_packed" (fun () ->
      let p = !first in
      first := None;
      p)

let run_stream ?ctx ?config ?icache ?trace_cache ?prediction ?resident_hwm
    stream =
  run_segments ?ctx ?config ?icache ?trace_cache ?prediction ?resident_hwm
    ~name:"engine.run_stream" (fun () -> Stream.next stream)

let run ?ctx ?config ?icache ?trace_cache ?prediction view =
  run_packed ?ctx ?config ?icache ?trace_cache ?prediction (View.pack view)

let run_naive ?ctx ?(config = Config.default) ?icache ?trace_cache ?prediction
    view =
  traced ctx "engine.run_naive" @@ fun () ->
  let metrics = Option.bind ctx (fun c -> c.Stc_obs.Run.metrics) in
  let len = View.length view in
  let line = config.line_bytes in
  let instr_bytes = Stc_cfg.Block.instr_bytes in
  let cycles = ref 0 and penalties = ref 0 and instrs = ref 0 in
  let seq_cycles = ref 0 and tc_cycles = ref 0 in
  let cond_branches = ref 0 in
  let idx = ref 0 and off = ref 0 in
  (* Direction prediction applies to every executed conditional branch,
     whether the window came from the sequential engine or the trace
     cache; we account for it per block as the stream advances. *)
  let check_prediction i =
    if View.is_cond view i then begin
      incr cond_branches;
      match prediction with
      | None -> ()
      | Some { pred; redirect_penalty } ->
        let pc =
          View.block_addr view i + ((View.block_size view i - 1) * 4)
        in
        if not (Predictor.predict_and_update pred ~pc ~taken:(View.taken view i))
        then penalties := !penalties + redirect_penalty
    end
  in
  let access_line a =
    match icache with
    | None -> true
    | Some c -> Icache.access c a
  in
  (* FDIP is live only when there is an i-cache to prefetch into *)
  let fdip =
    match (config.fdip, icache) with
    | Some fc, Some c -> Some (Fdip.create fc c)
    | _ -> None
  in
  (* naive counts per access, so each frontend demand flushes its single
     outcome into the shared counters immediately *)
  let demand_fdip f ~now c a =
    let o, charge = Fdip.demand f ~now ~miss_penalty:config.miss_penalty a in
    (match o with
    | Icache.Hit -> Icache.add_stats c ~accesses:1 ~misses:0 ~victim_hits:0
    | Icache.Victim_hit ->
      Icache.add_stats c ~accesses:1 ~misses:0 ~victim_hits:1
    | Icache.Miss -> Icache.add_stats c ~accesses:1 ~misses:1 ~victim_hits:0);
    charge
  in
  while !idx < len do
    let pos = { View.idx = !idx; off = !off } in
    let start_idx = !idx in
    (* FDIP steps 1 and 3 bracket the cycle, as in the packed engine *)
    let fnow = !cycles + 1 in
    (match fdip with Some f -> Fdip.begin_cycle f ~now:fnow | None -> ());
    let fdip_advance () =
      match fdip with
      | None -> ()
      | Some f ->
        Fdip.advance f ~now:fnow ~nth:(fun k ->
            let i = start_idx + k in
            if i < len then Some (View.block_addr view i) else None)
    in
    let tc_hit =
      match trace_cache with
      | None -> None
      | Some tc -> Tracecache.lookup tc view pos
    in
    match tc_hit with
    | Some info when info.Tracecache.n_instrs > 0 ->
      incr cycles;
      incr tc_cycles;
      instrs := !instrs + info.Tracecache.n_instrs;
      let stop = info.Tracecache.end_pos.View.idx in
      (* every block whose final instruction lies inside the trace has its
         branch resolved here *)
      for i = !idx to stop - 1 do
        check_prediction i
      done;
      idx := stop;
      off := info.Tracecache.end_pos.View.off;
      fdip_advance ()
    | Some _ | None ->
      (* sequential cycle *)
      incr cycles;
      incr seq_cycles;
      let a = View.addr view pos in
      let line_no = a / line in
      (match fdip with
      | Some f ->
        let c = Option.get icache in
        let c1 = demand_fdip f ~now:fnow c (line_no * line) in
        let c2 = demand_fdip f ~now:fnow c ((line_no + 1) * line) in
        penalties := !penalties + (if c1 > c2 then c1 else c2)
      | None ->
        let hit1 = access_line (line_no * line) in
        let hit2 = access_line ((line_no + 1) * line) in
        if not (hit1 && hit2) then
          penalties := !penalties + config.miss_penalty);
      let window_end = (line_no + 2) * line in
      let branches = ref 0 in
      let stop = ref false in
      while not !stop do
        let size = View.block_size view !idx in
        let cur_addr = View.addr view { View.idx = !idx; off = !off } in
        let space = (window_end - cur_addr) / instr_bytes in
        let remaining = size - !off in
        let take = min remaining space in
        instrs := !instrs + take;
        if take < remaining then begin
          off := !off + take;
          stop := true
        end
        else begin
          let was_branch = View.has_branch view !idx in
          let taken = View.taken view !idx in
          if was_branch then incr branches;
          check_prediction !idx;
          incr idx;
          off := 0;
          if
            taken
            || (was_branch && !branches >= config.max_branches)
            || !idx >= len
          then stop := true
          else if
            View.addr view { View.idx = !idx; off = 0 } >= window_end
          then stop := true
        end
      done;
      (* the fill unit builds a new trace at the missed fetch address *)
      (match trace_cache with
      | Some tc -> Tracecache.fill tc view pos
      | None -> ());
      fdip_advance ()
  done;
  let icache_accesses, icache_misses, icache_victim_hits =
    match icache with
    | None -> (0, 0, 0)
    | Some c ->
      (* one snapshot, not two separate reads *)
      let s = Icache.stats c in
      (s.Icache.s_accesses, s.Icache.s_misses, s.Icache.s_victim_hits)
  in
  let tc_lookups, tc_hits =
    match trace_cache with
    | None -> (0, 0)
    | Some tc -> (Tracecache.lookups tc, Tracecache.hits tc)
  in
  let r =
    {
      instrs = !instrs;
      cycles = !cycles + !penalties;
      fetch_cycles = !cycles;
      seq_cycles = !seq_cycles;
      tc_cycles = !tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups;
      tc_hits;
      taken_branches = View.taken_branches view;
      instrs_between_taken = View.instrs_between_taken view;
      cond_branches = !cond_branches;
      mispredictions =
        (match prediction with
        | Some { pred; _ } -> Predictor.mispredictions pred
        | None -> 0);
      icache_evictions =
        (match icache with Some c -> Icache.evictions c | None -> 0);
      prefetch_issued = (match fdip with Some f -> Fdip.issued f | None -> 0);
      prefetch_completed =
        (match fdip with Some f -> Fdip.completed f | None -> 0);
      prefetch_late = (match fdip with Some f -> Fdip.late f | None -> 0);
      prefetch_useful = (match fdip with Some f -> Fdip.useful f | None -> 0);
    }
  in
  (match metrics with Some reg -> publish reg r | None -> ());
  r
