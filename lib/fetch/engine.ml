module Icache = Stc_cachesim.Icache

module Config = struct
  type t = { max_branches : int; line_bytes : int; miss_penalty : int }

  let default = { max_branches = 3; line_bytes = 32; miss_penalty = 5 }

  let make ?(max_branches = 3) ?(line_bytes = 32) ?(miss_penalty = 5) () =
    { max_branches; line_bytes; miss_penalty }
end

type config = Config.t = {
  max_branches : int;
  line_bytes : int;
  miss_penalty : int;
}

type prediction = { pred : Predictor.t; redirect_penalty : int }

type result = {
  instrs : int;
  cycles : int;
  fetch_cycles : int;
  seq_cycles : int;
  tc_cycles : int;
  icache_accesses : int;
  icache_misses : int;
  icache_victim_hits : int;
  tc_lookups : int;
  tc_hits : int;
  taken_branches : int;
  instrs_between_taken : float;
  cond_branches : int;
  mispredictions : int;
}

let bandwidth r =
  if r.cycles = 0 then 0.0 else float_of_int r.instrs /. float_of_int r.cycles

let miss_rate_pct r =
  if r.instrs = 0 then 0.0
  else 100.0 *. float_of_int r.icache_misses /. float_of_int r.instrs

let result_fields r =
  [
    ("instrs", float_of_int r.instrs);
    ("cycles", float_of_int r.cycles);
    ("fetch_cycles", float_of_int r.fetch_cycles);
    ("seq_cycles", float_of_int r.seq_cycles);
    ("tc_cycles", float_of_int r.tc_cycles);
    ("icache_accesses", float_of_int r.icache_accesses);
    ("icache_misses", float_of_int r.icache_misses);
    ("icache_victim_hits", float_of_int r.icache_victim_hits);
    ("tc_lookups", float_of_int r.tc_lookups);
    ("tc_hits", float_of_int r.tc_hits);
    ("taken_branches", float_of_int r.taken_branches);
    ("instrs_between_taken", r.instrs_between_taken);
    ("cond_branches", float_of_int r.cond_branches);
    ("mispredictions", float_of_int r.mispredictions);
  ]

let publish reg r =
  let module Reg = Stc_obs.Registry in
  let module C = Stc_obs.Metric.Counter in
  let add name v = C.add (Reg.counter reg ("engine." ^ name)) v in
  add "instrs" r.instrs;
  add "cycles" r.cycles;
  add "fetch_cycles" r.fetch_cycles;
  add "seq_cycles" r.seq_cycles;
  add "tc_cycles" r.tc_cycles;
  add "icache_accesses" r.icache_accesses;
  add "icache_misses" r.icache_misses;
  add "icache_victim_hits" r.icache_victim_hits;
  add "tc_lookups" r.tc_lookups;
  add "tc_hits" r.tc_hits;
  add "cond_branches" r.cond_branches;
  add "mispredictions" r.mispredictions;
  C.incr (Reg.counter reg "engine.runs")

(* The packed fast path: one unsafe word read per block, all statistics
   accumulated in local ints and flushed to the caches' shared counters
   at segment boundaries. Cycle accounting is line-for-line the model of
   [run_naive] below; the two must stay result-identical (the equality
   is property-tested and asserted by @perf-smoke). *)
(* Timeline slices are one per replay plus one per consumed segment —
   never per block: at millions of blocks per second even a no-op
   emission call in the inner loop would dominate the engine. *)
let traced ctx name f =
  match Option.bind ctx (fun c -> c.Stc_obs.Run.trace) with
  | None -> f ()
  | Some tr -> Stc_obs.Trace.span tr name f

(* The one engine core, driven by a pull of packed segments whose
   concatenation is the trace. A bounded sliding buffer keeps at least
   [need] words of lookahead ahead of the current index (except at true
   end of stream), where [need] covers the engine's maximal forward
   reach within one fetch cycle:

   - a sequential cycle completes at most [2 * line_bytes / instr_bytes]
     blocks (every block is >= 1 instruction, the window is two lines)
     and then peeks one block past the last completion;
   - a trace-cache build/lookup walks at most [width] completed blocks
     from the cycle's start.

   Refills happen only between fetch cycles, so inner loops never see a
   segment boundary — which is why the streamed replay is bit-identical
   to a whole-trace replay at any segment size. The first segment is
   borrowed (never copied or mutated): a single-segment stream — i.e.
   [run_packed] — runs zero-copy over the caller's image. *)
let run_segments ?ctx ?(config = Config.default) ?icache ?trace_cache
    ?prediction ?resident_hwm ~name pull =
  traced ctx name @@ fun () ->
  let metrics = Option.bind ctx (fun c -> c.Stc_obs.Run.metrics) in
  let tracer = Option.bind ctx (fun c -> c.Stc_obs.Run.trace) in
  let seg_slice_id =
    match tracer with
    | Some tr -> Stc_obs.Trace.intern tr "engine.segment"
    | None -> 0
  in
  let line = config.line_bytes in
  let max_branches = config.max_branches in
  let miss_penalty = config.miss_penalty in
  let instr_bytes = Stc_cfg.Block.instr_bytes in
  let need =
    let tc_width =
      match trace_cache with Some tc -> Tracecache.width tc | None -> 0
    in
    max tc_width (2 * line / instr_bytes) + 2
  in
  let cycles = ref 0 and penalties = ref 0 and instrs = ref 0 in
  let seq_cycles = ref 0 and tc_cycles = ref 0 in
  let cond_branches = ref 0 in
  let ic_accesses = ref 0 and ic_misses = ref 0 and ic_vhits = ref 0 in
  let tc_lookups = ref 0 and tc_hits = ref 0 in
  (* sliding buffer state; [idx] is buffer-local, [dropped] is the count
     of words retired from the buffer, so [dropped + idx] is the global
     trace index *)
  let buf = ref [||] and avail = ref 0 in
  let owned = ref false and eos = ref false in
  let dropped = ref 0 in
  let bview =
    ref (Packed.of_raw ~words:[||] ~len:0 ~total_instrs:0 ~taken_branches:0)
  in
  let sum_instrs = ref 0 and sum_taken = ref 0 in
  let hwm = ref 0 in
  let pulled = ref 0 in
  let idx = ref 0 and off = ref 0 in
  let seg_start =
    ref (match tracer with Some tr -> Stc_obs.Trace.now tr | None -> 0.0)
  in
  let seg_mark = ref 0 in
  let seg_slice () =
    match tracer with
    | None -> ()
    | Some tr ->
      let gpos = !dropped + !idx in
      Stc_obs.Trace.complete ~arg:(gpos - !seg_mark) tr seg_slice_id
        ~start:!seg_start;
      seg_mark := gpos;
      seg_start := Stc_obs.Trace.now tr
  in
  let flush_stats () =
    (match icache with
    | Some c ->
      Icache.add_stats c ~accesses:!ic_accesses ~misses:!ic_misses
        ~victim_hits:!ic_vhits;
      ic_accesses := 0;
      ic_misses := 0;
      ic_vhits := 0
    | None -> ());
    match trace_cache with
    | Some tc ->
      Tracecache.add_stats tc ~lookups:!tc_lookups ~hits:!tc_hits;
      tc_lookups := 0;
      tc_hits := 0
    | None -> ()
  in
  let append p =
    sum_instrs := !sum_instrs + Packed.total_instrs p;
    sum_taken := !sum_taken + Packed.taken_branches p;
    let plen = Packed.length p in
    if (not !owned) && !avail - !idx = 0 then begin
      (* nothing live: borrow the segment's own array, no copy *)
      dropped := !dropped + !idx;
      buf := Packed.raw p;
      idx := 0;
      avail := plen;
      bview := p
    end
    else begin
      (if not !owned then begin
         (* first spill past a borrowed segment: switch to an owned
            buffer holding the live tail plus the new segment *)
         let live = !avail - !idx in
         let nb = Array.make (max (live + plen) (need + plen)) 0 in
         Array.blit !buf !idx nb 0 live;
         dropped := !dropped + !idx;
         buf := nb;
         owned := true;
         avail := live;
         idx := 0
       end
       else begin
         if !idx > 0 then begin
           (* compact the consumed prefix *)
           Array.blit !buf !idx !buf 0 (!avail - !idx);
           dropped := !dropped + !idx;
           avail := !avail - !idx;
           idx := 0
         end;
         if !avail + plen > Array.length !buf then begin
           let nb = Array.make (max (!avail + plen) (need + plen)) 0 in
           Array.blit !buf 0 nb 0 !avail;
           buf := nb
         end
       end);
      Array.blit (Packed.raw p) 0 !buf !avail plen;
      avail := !avail + plen;
      bview :=
        Packed.of_raw ~words:!buf ~len:!avail ~total_instrs:0
          ~taken_branches:0
    end;
    if Array.length !buf > !hwm then hwm := Array.length !buf
  in
  let refill () =
    match pull () with
    | None -> eos := true
    | Some p ->
      if !pulled > 0 then begin
        seg_slice ();
        flush_stats ()
      end;
      incr pulled;
      append p
  in
  (* direction prediction per executed conditional branch, as in the
     naive path; [w] is the block's packed word *)
  let check_prediction w =
    if Packed.w_cond w then begin
      incr cond_branches;
      match prediction with
      | None -> ()
      | Some { pred; redirect_penalty } ->
        let pc = Packed.w_addr w + ((Packed.w_size w - 1) * 4) in
        if
          not
            (Predictor.predict_and_update pred ~pc ~taken:(Packed.w_taken w))
        then penalties := !penalties + redirect_penalty
    end
  in
  let access_line a =
    match icache with
    | None -> true
    | Some c -> (
      incr ic_accesses;
      match Icache.access_uncounted c a with
      | Icache.Hit -> true
      | Icache.Victim_hit ->
        incr ic_vhits;
        true
      | Icache.Miss ->
        incr ic_misses;
        false)
  in
  while (not !eos) || !idx < !avail do
    if (not !eos) && !avail - !idx < need then refill ()
    else begin
      (* one fetch cycle, entirely within the buffered lookahead *)
      let words = !buf in
      let len = !avail in
      let packed = !bview in
      let start_idx = !idx and start_off = !off in
      let tc_hit =
        match trace_cache with
        | None -> None
        | Some tc ->
          incr tc_lookups;
          let r =
            Tracecache.lookup_uncounted tc packed ~idx:start_idx
              ~off:start_off
          in
          (match r with Some _ -> incr tc_hits | None -> ());
          r
      in
      match tc_hit with
      | Some info when info.Tracecache.n_instrs > 0 ->
        incr cycles;
        incr tc_cycles;
        instrs := !instrs + info.Tracecache.n_instrs;
        let stop = info.Tracecache.end_pos.View.idx in
        (* every block whose final instruction lies inside the trace has
           its branch resolved here *)
        for i = !idx to stop - 1 do
          check_prediction (Array.unsafe_get words i)
        done;
        idx := stop;
        off := info.Tracecache.end_pos.View.off
      | Some _ | None ->
        (* sequential cycle *)
        incr cycles;
        incr seq_cycles;
        let a =
          Packed.w_addr (Array.unsafe_get words start_idx)
          + (start_off * instr_bytes)
        in
        let line_no = a / line in
        let hit1 = access_line (line_no * line) in
        let hit2 = access_line ((line_no + 1) * line) in
        if not (hit1 && hit2) then penalties := !penalties + miss_penalty;
        let window_end = (line_no + 2) * line in
        let branches = ref 0 in
        let stop = ref false in
        while not !stop do
          let w = Array.unsafe_get words !idx in
          let size = Packed.w_size w in
          let cur_addr = Packed.w_addr w + (!off * instr_bytes) in
          let space = (window_end - cur_addr) / instr_bytes in
          let remaining = size - !off in
          let take = if remaining <= space then remaining else space in
          instrs := !instrs + take;
          if take < remaining then begin
            off := !off + take;
            stop := true
          end
          else begin
            let was_branch = Packed.w_branch w in
            let taken = Packed.w_taken w in
            if was_branch then incr branches;
            check_prediction w;
            incr idx;
            off := 0;
            if
              taken
              || (was_branch && !branches >= max_branches)
              || !idx >= len
            then stop := true
            else if Packed.w_addr (Array.unsafe_get words !idx) >= window_end
            then stop := true
          end
        done;
        (* the fill unit builds a new trace at the missed fetch address *)
        (match trace_cache with
        | Some tc ->
          Tracecache.fill_packed tc packed ~idx:start_idx ~off:start_off
        | None -> ())
    end
  done;
  if !pulled > 0 then seg_slice ();
  (* flush the locally-batched statistics before anything snapshots the
     caches, so the shared counters end exactly where the per-access
     counting of the naive path would leave them *)
  flush_stats ();
  (match resident_hwm with Some r -> r := !hwm | None -> ());
  let icache_accesses, icache_misses, icache_victim_hits =
    match icache with
    | None -> (0, 0, 0)
    | Some c ->
      let s = Icache.stats c in
      (s.Icache.s_accesses, s.Icache.s_misses, s.Icache.s_victim_hits)
  in
  let r =
    {
      instrs = !instrs;
      cycles = !cycles + !penalties;
      fetch_cycles = !cycles;
      seq_cycles = !seq_cycles;
      tc_cycles = !tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups =
        (match trace_cache with
        | None -> 0
        | Some tc -> Tracecache.lookups tc);
      tc_hits =
        (match trace_cache with None -> 0 | Some tc -> Tracecache.hits tc);
      taken_branches = !sum_taken;
      instrs_between_taken =
        (if !sum_taken = 0 then float_of_int !sum_instrs
         else float_of_int !sum_instrs /. float_of_int !sum_taken);
      cond_branches = !cond_branches;
      mispredictions =
        (match prediction with
        | Some { pred; _ } -> Predictor.mispredictions pred
        | None -> 0);
    }
  in
  (match metrics with Some reg -> publish reg r | None -> ());
  r

let run_packed ?ctx ?config ?icache ?trace_cache ?prediction packed =
  let first = ref (Some packed) in
  run_segments ?ctx ?config ?icache ?trace_cache ?prediction
    ~name:"engine.run_packed" (fun () ->
      let p = !first in
      first := None;
      p)

let run_stream ?ctx ?config ?icache ?trace_cache ?prediction ?resident_hwm
    stream =
  run_segments ?ctx ?config ?icache ?trace_cache ?prediction ?resident_hwm
    ~name:"engine.run_stream" (fun () -> Stream.next stream)

let run ?ctx ?config ?icache ?trace_cache ?prediction view =
  run_packed ?ctx ?config ?icache ?trace_cache ?prediction (View.pack view)

let run_naive ?ctx ?(config = Config.default) ?icache ?trace_cache ?prediction
    view =
  traced ctx "engine.run_naive" @@ fun () ->
  let metrics = Option.bind ctx (fun c -> c.Stc_obs.Run.metrics) in
  let len = View.length view in
  let line = config.line_bytes in
  let instr_bytes = Stc_cfg.Block.instr_bytes in
  let cycles = ref 0 and penalties = ref 0 and instrs = ref 0 in
  let seq_cycles = ref 0 and tc_cycles = ref 0 in
  let cond_branches = ref 0 in
  let idx = ref 0 and off = ref 0 in
  (* Direction prediction applies to every executed conditional branch,
     whether the window came from the sequential engine or the trace
     cache; we account for it per block as the stream advances. *)
  let check_prediction i =
    if View.is_cond view i then begin
      incr cond_branches;
      match prediction with
      | None -> ()
      | Some { pred; redirect_penalty } ->
        let pc =
          View.block_addr view i + ((View.block_size view i - 1) * 4)
        in
        if not (Predictor.predict_and_update pred ~pc ~taken:(View.taken view i))
        then penalties := !penalties + redirect_penalty
    end
  in
  let access_line a =
    match icache with
    | None -> true
    | Some c -> Icache.access c a
  in
  while !idx < len do
    let pos = { View.idx = !idx; off = !off } in
    let tc_hit =
      match trace_cache with
      | None -> None
      | Some tc -> Tracecache.lookup tc view pos
    in
    match tc_hit with
    | Some info when info.Tracecache.n_instrs > 0 ->
      incr cycles;
      incr tc_cycles;
      instrs := !instrs + info.Tracecache.n_instrs;
      let stop = info.Tracecache.end_pos.View.idx in
      (* every block whose final instruction lies inside the trace has its
         branch resolved here *)
      for i = !idx to stop - 1 do
        check_prediction i
      done;
      idx := stop;
      off := info.Tracecache.end_pos.View.off
    | Some _ | None ->
      (* sequential cycle *)
      incr cycles;
      incr seq_cycles;
      let a = View.addr view pos in
      let line_no = a / line in
      let hit1 = access_line (line_no * line) in
      let hit2 = access_line ((line_no + 1) * line) in
      if not (hit1 && hit2) then penalties := !penalties + config.miss_penalty;
      let window_end = (line_no + 2) * line in
      let branches = ref 0 in
      let stop = ref false in
      while not !stop do
        let size = View.block_size view !idx in
        let cur_addr = View.addr view { View.idx = !idx; off = !off } in
        let space = (window_end - cur_addr) / instr_bytes in
        let remaining = size - !off in
        let take = min remaining space in
        instrs := !instrs + take;
        if take < remaining then begin
          off := !off + take;
          stop := true
        end
        else begin
          let was_branch = View.has_branch view !idx in
          let taken = View.taken view !idx in
          if was_branch then incr branches;
          check_prediction !idx;
          incr idx;
          off := 0;
          if
            taken
            || (was_branch && !branches >= config.max_branches)
            || !idx >= len
          then stop := true
          else if
            View.addr view { View.idx = !idx; off = 0 } >= window_end
          then stop := true
        end
      done;
      (* the fill unit builds a new trace at the missed fetch address *)
      (match trace_cache with
      | Some tc -> Tracecache.fill tc view pos
      | None -> ())
  done;
  let icache_accesses, icache_misses, icache_victim_hits =
    match icache with
    | None -> (0, 0, 0)
    | Some c ->
      (* one snapshot, not two separate reads *)
      let s = Icache.stats c in
      (s.Icache.s_accesses, s.Icache.s_misses, s.Icache.s_victim_hits)
  in
  let tc_lookups, tc_hits =
    match trace_cache with
    | None -> (0, 0)
    | Some tc -> (Tracecache.lookups tc, Tracecache.hits tc)
  in
  let r =
    {
      instrs = !instrs;
      cycles = !cycles + !penalties;
      fetch_cycles = !cycles;
      seq_cycles = !seq_cycles;
      tc_cycles = !tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups;
      tc_hits;
      taken_branches = View.taken_branches view;
      instrs_between_taken = View.instrs_between_taken view;
      cond_branches = !cond_branches;
      mispredictions =
        (match prediction with
        | Some { pred; _ } -> Predictor.mispredictions pred
        | None -> 0);
    }
  in
  (match metrics with Some reg -> publish reg r | None -> ());
  r
