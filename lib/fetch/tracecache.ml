type entry = {
  start_addr : int;
  e_instrs : int;
  e_branches : int;
  e_outcomes : int;
}

module Counter = Stc_obs.Metric.Counter

type t = {
  entries : entry option array;
  width : int;
  max_branches : int;
  lookups : Counter.t;
  hits : Counter.t;
}

type trace_info = {
  n_instrs : int;
  n_branches : int;
  outcomes : int;
  end_pos : View.pos;
}

let create ?(entries = 256) ?(width = 16) ?(max_branches = 3) () =
  if not (Stc_util.Bits.is_pow2 entries) then
    invalid_arg "Tracecache.create: entries must be a power of two";
  {
    entries = Array.make entries None;
    width;
    max_branches;
    lookups = Counter.make "lookups";
    hits = Counter.make "hits";
  }

let build_trace_limits view (pos : View.pos) ~width ~max_branches =
  let n = ref 0 and branches = ref 0 and outcomes = ref 0 in
  let idx = ref pos.View.idx and off = ref pos.View.off in
  let len = View.length view in
  let stop = ref false in
  while not !stop do
    if !idx >= len || !n >= width then stop := true
    else begin
      let size = View.block_size view !idx in
      let remaining = size - !off in
      let take = min remaining (width - !n) in
      n := !n + take;
      if !off + take < size then begin
        (* width limit hit mid-block *)
        off := !off + take;
        stop := true
      end
      else begin
        (* block completed *)
        (if View.has_branch view !idx then begin
           if View.taken view !idx then
             outcomes := !outcomes lor (1 lsl !branches);
           incr branches
         end);
        incr idx;
        off := 0;
        if !branches >= max_branches then stop := true
      end
    end
  done;
  {
    n_instrs = !n;
    n_branches = !branches;
    outcomes = !outcomes;
    end_pos = { View.idx = !idx; off = !off };
  }

let build_trace view pos =
  (* default limits of the paper's configuration *)
  build_trace_limits view pos ~width:16 ~max_branches:3

let geometry t = (Array.length t.entries, t.width, t.max_branches)

let index t addr = (addr lsr 2) land (Array.length t.entries - 1)

let lookup t view pos =
  Counter.incr t.lookups;
  let a = View.addr view pos in
  match t.entries.(index t a) with
  | Some e when e.start_addr = a ->
    let actual =
      build_trace_limits view pos ~width:t.width ~max_branches:t.max_branches
    in
    if
      actual.n_instrs = e.e_instrs
      && actual.n_branches = e.e_branches
      && actual.outcomes = e.e_outcomes
    then begin
      Counter.incr t.hits;
      Some actual
    end
    else None
  | Some _ | None -> None

let fill t view pos =
  let a = View.addr view pos in
  let info =
    build_trace_limits view pos ~width:t.width ~max_branches:t.max_branches
  in
  if info.n_instrs > 0 then
    t.entries.(index t a) <-
      Some
        {
          start_addr = a;
          e_instrs = info.n_instrs;
          e_branches = info.n_branches;
          e_outcomes = info.outcomes;
        }

(* ---------- packed-view paths (see Packed): identical trace
   construction and match logic, driven by unsafe word reads, with the
   lookup/hit accounting left to the caller so the engine inner loop
   touches no shared counters. ---------- *)

let build_trace_limits_packed packed ~idx ~off ~width ~max_branches =
  let words = Packed.raw packed in
  let len = Packed.length packed in
  let n = ref 0 and branches = ref 0 and outcomes = ref 0 in
  let idx = ref idx and off = ref off in
  let stop = ref false in
  while not !stop do
    if !idx >= len || !n >= width then stop := true
    else begin
      let w = Array.unsafe_get words !idx in
      let size = Packed.w_size w in
      let remaining = size - !off in
      let take = min remaining (width - !n) in
      n := !n + take;
      if !off + take < size then begin
        (* width limit hit mid-block *)
        off := !off + take;
        stop := true
      end
      else begin
        (* block completed *)
        (if Packed.w_branch w then begin
           if Packed.w_taken w then outcomes := !outcomes lor (1 lsl !branches);
           incr branches
         end);
        incr idx;
        off := 0;
        if !branches >= max_branches then stop := true
      end
    end
  done;
  {
    n_instrs = !n;
    n_branches = !branches;
    outcomes = !outcomes;
    end_pos = { View.idx = !idx; off = !off };
  }

let build_trace_packed packed ~idx ~off =
  build_trace_limits_packed packed ~idx ~off ~width:16 ~max_branches:3

let packed_fetch_addr packed ~idx ~off =
  Packed.w_addr (Array.unsafe_get (Packed.raw packed) idx)
  + (off * Stc_cfg.Block.instr_bytes)

let lookup_uncounted t packed ~idx ~off =
  let a = packed_fetch_addr packed ~idx ~off in
  match t.entries.(index t a) with
  | Some e when e.start_addr = a ->
    let actual =
      build_trace_limits_packed packed ~idx ~off ~width:t.width
        ~max_branches:t.max_branches
    in
    if
      actual.n_instrs = e.e_instrs
      && actual.n_branches = e.e_branches
      && actual.outcomes = e.e_outcomes
    then Some actual
    else None
  | Some _ | None -> None

let fill_packed t packed ~idx ~off =
  let a = packed_fetch_addr packed ~idx ~off in
  let info =
    build_trace_limits_packed packed ~idx ~off ~width:t.width
      ~max_branches:t.max_branches
  in
  if info.n_instrs > 0 then
    t.entries.(index t a) <-
      Some
        {
          start_addr = a;
          e_instrs = info.n_instrs;
          e_branches = info.n_branches;
          e_outcomes = info.outcomes;
        }

let add_stats t ~lookups ~hits =
  Counter.add t.lookups lookups;
  Counter.add t.hits hits

let width t = t.width

let lookups t = Counter.value t.lookups

let hits t = Counter.value t.hits

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "tc.") reg t.lookups;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "tc.") reg t.hits

let reset_stats t =
  Counter.reset t.lookups;
  Counter.reset t.hits
