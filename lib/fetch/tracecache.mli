(** Trace cache (Rotenberg, Bennett & Smith, MICRO 1996), basic scheme:
    a direct-mapped buffer of dynamic instruction sequences of up to
    [width] instructions and [max_branches] branches, indexed by fetch
    address and matched against the (perfectly) predicted branch outcomes.
    On a hit the whole trace is supplied in one cycle; on a miss the
    sequential engine fetches and the fill unit stores the trace that
    starts at the missed address. *)

type t

val create : ?entries:int -> ?width:int -> ?max_branches:int -> unit -> t
(** Defaults: 256 entries, 16-instruction traces, 3 branches — the paper's
    16 KB trace cache. *)

type trace_info = {
  n_instrs : int;
  n_branches : int;
  outcomes : int;  (** Bitmask of taken/not-taken, bit [i] = [i]th branch. *)
  end_pos : View.pos;  (** Stream position right after the trace. *)
}

val build_trace : View.t -> View.pos -> trace_info
(** The trace the fill unit would construct from this stream position:
    greedily take instructions until the width limit, the branch limit, or
    the end of the stream. Deterministic in the position and the stream. *)

val lookup : t -> View.t -> View.pos -> trace_info option
(** Probe with the fetch address at [pos] and the actual (perfectly
    predicted) upcoming outcomes; [Some info] on a hit. *)

val fill : t -> View.t -> View.pos -> unit
(** Insert the trace starting at [pos] (called on the miss path). *)

(** {2 Packed-view paths}

    The same operations over a compiled {!Packed} view. Trace
    construction and hit matching are identical to the [View] versions;
    the difference is that they read unsafe packed words, allocate only
    the returned [trace_info], and — [_uncounted] — leave the
    lookup/hit statistics to the caller, which batches them in locals
    and flushes once with {!add_stats}. This is what
    {!Engine.run_packed} drives. *)

val build_trace_packed : Packed.t -> idx:int -> off:int -> trace_info
(** {!build_trace} over a packed view (paper limits: width 16,
    3 branches). *)

val lookup_uncounted : t -> Packed.t -> idx:int -> off:int -> trace_info option
(** {!lookup} over a packed view, without touching the lookup/hit
    counters. *)

val fill_packed : t -> Packed.t -> idx:int -> off:int -> unit
(** {!fill} over a packed view (fills never count statistics). *)

val add_stats : t -> lookups:int -> hits:int -> unit
(** Batch-add to the statistics counters; every {!lookup_uncounted}
    should eventually be accounted here ([lookups] calls, of which
    [hits] returned [Some]). *)

val width : t -> int
(** Configured trace width in instructions — bounds how far ahead of the
    current index a fill can read, which is what sizes the streaming
    engine's lookahead buffer. *)

val geometry : t -> int * int * int
(** [(entries, width, max_branches)]. Two empty trace caches with equal
    geometry evolve identical contents and hit sequences over the same
    replay, which is what lets the fused replay bank
    ({!Stc_fetch.Engine.Bank}) drive one shared walk for every
    same-geometry trace-cache configuration. *)

val lookups : t -> int

val hits : t -> int

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register the [lookups]/[hits] counters with a metrics registry under
    [prefix ^ "tc."]. *)

val reset_stats : t -> unit
