(** Trace cache (Rotenberg, Bennett & Smith, MICRO 1996), basic scheme:
    a direct-mapped buffer of dynamic instruction sequences of up to
    [width] instructions and [max_branches] branches, indexed by fetch
    address and matched against the (perfectly) predicted branch outcomes.
    On a hit the whole trace is supplied in one cycle; on a miss the
    sequential engine fetches and the fill unit stores the trace that
    starts at the missed address. *)

type t

val create : ?entries:int -> ?width:int -> ?max_branches:int -> unit -> t
(** Defaults: 256 entries, 16-instruction traces, 3 branches — the paper's
    16 KB trace cache. *)

type trace_info = {
  n_instrs : int;
  n_branches : int;
  outcomes : int;  (** Bitmask of taken/not-taken, bit [i] = [i]th branch. *)
  end_pos : View.pos;  (** Stream position right after the trace. *)
}

val build_trace : View.t -> View.pos -> trace_info
(** The trace the fill unit would construct from this stream position:
    greedily take instructions until the width limit, the branch limit, or
    the end of the stream. Deterministic in the position and the stream. *)

val lookup : t -> View.t -> View.pos -> trace_info option
(** Probe with the fetch address at [pos] and the actual (perfectly
    predicted) upcoming outcomes; [Some info] on a hit. *)

val fill : t -> View.t -> View.pos -> unit
(** Insert the trace starting at [pos] (called on the miss path). *)

val lookups : t -> int

val hits : t -> int

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register the [lookups]/[hits] counters with a metrics registry under
    [prefix ^ "tc."]. *)

val reset_stats : t -> unit
