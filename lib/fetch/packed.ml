module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator
module Segment = Stc_trace.Segment
module Source = Stc_trace.Source
module Layout = Stc_layout.Layout

(* One word per trace index:

     bits 0..2   flags (taken / branch-end / cond-end)
     bits 3..21  block size in instructions (19 bits)
     bits 22..62 block byte address under the layout (41 bits)

   so the whole per-block query surface of a View — address, size, both
   terminator flags and the layout-dependent taken bit — is one
   [Array.unsafe_get] plus register shifts, with no Recorder indirection
   and nothing recomputed per query. *)

let taken_bit = 1

let branch_bit = 2

let cond_bit = 4

let size_shift = 3

let addr_shift = 22

let max_size = (1 lsl (addr_shift - size_shift)) - 1

let max_addr = (1 lsl (62 - addr_shift)) - 1

let w_taken w = w land taken_bit <> 0

let w_branch w = w land branch_bit <> 0

let w_cond w = w land cond_bit <> 0

let w_size w = (w lsr size_shift) land max_size

let w_addr w = w lsr addr_shift

type t = {
  words : int array; (* per trace index *)
  len : int;
  total_instrs : int;
  taken_branches : int;
}

(* Per-block-id static words (everything but the per-index taken bit),
   validated once and shared by every segment compiled under the same
   (program, layout). *)
type tables = { base : int array }

let tables_of_arrays ~sizes ~branch_end ~cond_end ~addrs =
  let n = Array.length sizes in
  if
    Array.length branch_end <> n
    || Array.length cond_end <> n
    || Array.length addrs <> n
  then invalid_arg "Packed.tables_of_arrays: table lengths differ";
  for b = 0 to n - 1 do
    if sizes.(b) < 0 || sizes.(b) > max_size then
      invalid_arg "Packed.tables_of_arrays: block size out of range";
    if addrs.(b) < 0 || addrs.(b) > max_addr then
      invalid_arg "Packed.tables_of_arrays: block address out of range"
  done;
  let base = Array.make (max n 1) 0 in
  for b = 0 to n - 1 do
    base.(b) <-
      (addrs.(b) lsl addr_shift)
      lor (sizes.(b) lsl size_shift)
      lor (if branch_end.(b) then branch_bit else 0)
      lor (if cond_end.(b) then cond_bit else 0)
  done;
  { base }

let tables prog layout =
  let blocks = prog.Program.blocks in
  tables_of_arrays
    ~sizes:(Array.map (fun b -> b.Block.size) blocks)
    ~branch_end:
      (Array.map (fun b -> Terminator.has_branch_instr b.Block.term) blocks)
    ~cond_end:
      (Array.map
         (fun b ->
           match b.Block.term with Terminator.Cond _ -> true | _ -> false)
         blocks)
    ~addrs:(Array.init (Array.length blocks) (Layout.address layout))

(* Compile one id segment into [words] starting at [pos]. The taken bit
   of index i depends on the block at index i+1; at the segment tail that
   block lives in the {e next} segment ([next_first]), which is how a
   per-segment compilation stays bit-identical to a whole-trace pass.
   [next_first = None] means true end of trace: the final index counts
   as taken. Returns the segment's (instrs, taken) contribution. *)
let fill_segment tb ~words ~pos seg ~next_first =
  let base = tb.base in
  let len = Segment.length seg in
  let instr_bytes = Block.instr_bytes in
  let instrs = ref 0 and taken_n = ref 0 in
  let put i w next =
    let taken =
      next lsr addr_shift
      <> (w lsr addr_shift) + (((w lsr size_shift) land max_size) * instr_bytes)
    in
    instrs := !instrs + ((w lsr size_shift) land max_size);
    if taken then begin
      incr taken_n;
      Array.unsafe_set words (pos + i) (w lor taken_bit)
    end
    else Array.unsafe_set words (pos + i) w
  in
  for i = 0 to len - 2 do
    let w = Array.unsafe_get base (Segment.unsafe_get seg i) in
    put i w (Array.unsafe_get base (Segment.unsafe_get seg (i + 1)))
  done;
  if len > 0 then begin
    let w = Array.unsafe_get base (Segment.unsafe_get seg (len - 1)) in
    match next_first with
    | Some nb -> put (len - 1) w (Array.unsafe_get base nb)
    | None ->
      (* end of trace: counts as taken *)
      instrs := !instrs + ((w lsr size_shift) land max_size);
      incr taken_n;
      Array.unsafe_set words (pos + len - 1) (w lor taken_bit)
  end;
  (!instrs, !taken_n)

let of_segment tb seg ~next_first =
  let len = Segment.length seg in
  let words = Array.make (max len 1) 0 in
  let instrs, taken = fill_segment tb ~words ~pos:0 seg ~next_first in
  { words; len; total_instrs = instrs; taken_branches = taken }

(* first block id of the first non-empty segment *)
let rec first_of = function
  | [] -> None
  | s :: tl -> if Segment.length s = 0 then first_of tl else Some (Segment.first s)

let compile_tables tb source =
  let segs = ref [] and total = ref 0 in
  let rec drain () =
    match Source.next_segment source with
    | None -> ()
    | Some s ->
      segs := s :: !segs;
      total := !total + Segment.length s;
      drain ()
  in
  drain ();
  let segs = List.rev !segs in
  let len = !total in
  let words = Array.make (max len 1) 0 in
  let instrs = ref 0 and taken_n = ref 0 in
  let rec go pos = function
    | [] -> ()
    | s :: tl ->
      let i, k = fill_segment tb ~words ~pos s ~next_first:(first_of tl) in
      instrs := !instrs + i;
      taken_n := !taken_n + k;
      go (pos + Segment.length s) tl
  in
  go 0 segs;
  { words; len; total_instrs = !instrs; taken_branches = !taken_n }

let compile prog layout source = compile_tables (tables prog layout) source

let of_raw ~words ~len ~total_instrs ~taken_branches =
  if len < 0 || len > Array.length words then
    invalid_arg "Packed.of_raw: len out of range";
  if total_instrs < 0 || taken_branches < 0 || taken_branches > len then
    invalid_arg "Packed.of_raw: totals out of range";
  { words; len; total_instrs; taken_branches }

let length t = t.len

let raw t = t.words

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Packed: index out of bounds"

let word t i =
  check t i;
  t.words.(i)

let block_addr t i = w_addr (word t i)

let block_size t i = w_size (word t i)

let taken t i = w_taken (word t i)

let has_branch t i = w_branch (word t i)

let is_cond t i = w_cond (word t i)

let addr t ~idx ~off = block_addr t idx + (off * Block.instr_bytes)

let total_instrs t = t.total_instrs

let taken_branches t = t.taken_branches

let instrs_between_taken t =
  if t.taken_branches = 0 then float_of_int t.total_instrs
  else float_of_int t.total_instrs /. float_of_int t.taken_branches

let memory_words t = Array.length t.words
