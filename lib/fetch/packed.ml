module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder
module Layout = Stc_layout.Layout

(* One word per trace index:

     bits 0..2   flags (taken / branch-end / cond-end)
     bits 3..21  block size in instructions (19 bits)
     bits 22..62 block byte address under the layout (41 bits)

   so the whole per-block query surface of a View — address, size, both
   terminator flags and the layout-dependent taken bit — is one
   [Array.unsafe_get] plus register shifts, with no Recorder indirection
   and nothing recomputed per query. *)

let taken_bit = 1

let branch_bit = 2

let cond_bit = 4

let size_shift = 3

let addr_shift = 22

let max_size = (1 lsl (addr_shift - size_shift)) - 1

let max_addr = (1 lsl (62 - addr_shift)) - 1

let w_taken w = w land taken_bit <> 0

let w_branch w = w land branch_bit <> 0

let w_cond w = w land cond_bit <> 0

let w_size w = (w lsr size_shift) land max_size

let w_addr w = w lsr addr_shift

type t = {
  words : int array; (* per trace index *)
  len : int;
  total_instrs : int;
  taken_branches : int;
}

let of_tables ~sizes ~branch_end ~cond_end ~addrs rec_ =
  let n = Array.length sizes in
  if
    Array.length branch_end <> n
    || Array.length cond_end <> n
    || Array.length addrs <> n
  then invalid_arg "Packed.of_tables: table lengths differ";
  for b = 0 to n - 1 do
    if sizes.(b) < 0 || sizes.(b) > max_size then
      invalid_arg "Packed.of_tables: block size out of range";
    if addrs.(b) < 0 || addrs.(b) > max_addr then
      invalid_arg "Packed.of_tables: block address out of range"
  done;
  (* per-block static word, missing only the per-index taken bit *)
  let base = Array.make n 0 in
  for b = 0 to n - 1 do
    base.(b) <-
      (addrs.(b) lsl addr_shift)
      lor (sizes.(b) lsl size_shift)
      lor (if branch_end.(b) then branch_bit else 0)
      lor (if cond_end.(b) then cond_bit else 0)
  done;
  let len = Recorder.length rec_ in
  let ids = Recorder.raw_ids rec_ in
  let words = Array.make (max len 1) 0 in
  let instrs = ref 0 and taken_n = ref 0 in
  let instr_bytes = Block.instr_bytes in
  for i = 0 to len - 1 do
    let b = Array.unsafe_get ids i in
    let w = Array.unsafe_get base b in
    (* the transition i -> i+1 is taken when the next block does not
       start where this one ends; the final index counts as taken *)
    let taken =
      i + 1 >= len
      ||
      let next = Array.unsafe_get base (Array.unsafe_get ids (i + 1)) in
      next lsr addr_shift
      <> (w lsr addr_shift) + (((w lsr size_shift) land max_size) * instr_bytes)
    in
    instrs := !instrs + ((w lsr size_shift) land max_size);
    if taken then begin
      incr taken_n;
      Array.unsafe_set words i (w lor taken_bit)
    end
    else Array.unsafe_set words i w
  done;
  { words; len; total_instrs = !instrs; taken_branches = !taken_n }

let compile prog layout rec_ =
  let blocks = prog.Program.blocks in
  of_tables
    ~sizes:(Array.map (fun b -> b.Block.size) blocks)
    ~branch_end:
      (Array.map (fun b -> Terminator.has_branch_instr b.Block.term) blocks)
    ~cond_end:
      (Array.map
         (fun b ->
           match b.Block.term with Terminator.Cond _ -> true | _ -> false)
         blocks)
    ~addrs:(Array.init (Array.length blocks) (Layout.address layout))
    rec_

let of_raw ~words ~len ~total_instrs ~taken_branches =
  if len < 0 || len > Array.length words then
    invalid_arg "Packed.of_raw: len out of range";
  if total_instrs < 0 || taken_branches < 0 || taken_branches > len then
    invalid_arg "Packed.of_raw: totals out of range";
  { words; len; total_instrs; taken_branches }

let length t = t.len

let raw t = t.words

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Packed: index out of bounds"

let word t i =
  check t i;
  t.words.(i)

let block_addr t i = w_addr (word t i)

let block_size t i = w_size (word t i)

let taken t i = w_taken (word t i)

let has_branch t i = w_branch (word t i)

let is_cond t i = w_cond (word t i)

let addr t ~idx ~off = block_addr t idx + (off * Block.instr_bytes)

let total_instrs t = t.total_instrs

let taken_branches t = t.taken_branches

let instrs_between_taken t =
  if t.taken_branches = 0 then float_of_int t.total_instrs
  else float_of_int t.total_instrs /. float_of_int t.taken_branches

let memory_words t = Array.length t.words
