(** Fetch-directed instruction prefetching (FDIP, Asheim et al.): a
    decoupled frontend runs ahead of the fetch engine filling a bounded
    fetch target queue (FTQ); a prefetch engine walks the FTQ issuing
    line prefetches into L1i under an in-flight (MSHR) bound with a
    configurable prefetch-to-use latency. Under the paper's
    perfect-prediction fetch model, the run-ahead path is the replayed
    trace itself.

    Each simulated fetch cycle drives {!begin_cycle}, then the cycle's
    {!demand} probes, then {!advance} — in that order, identically in
    every evaluation mode, so results are byte-identical across solo,
    streamed, naive and fused replay at any [--jobs]. FDIP never alters
    SEQ.3 cycle boundaries: it only changes i-cache contents and
    penalty charges. *)

type config = private {
  ftq_depth : int;  (** fetch targets buffered ahead of fetch *)
  mshrs : int;  (** max prefetches in flight *)
  degree : int;  (** max prefetches issued per cycle *)
  latency : int;  (** cycles from issue to fill *)
}

val config :
  ?ftq_depth:int -> ?mshrs:int -> ?degree:int -> ?latency:int -> unit -> config
(** Validated constructor. Defaults: [ftq_depth = 8], [mshrs = 8],
    [degree = 2], [latency = 3]. *)

val default : config

type t

val create : config -> Stc_cachesim.Icache.t -> t
(** A fresh frontend prefetching into the given L1i. *)

val begin_cycle : t -> now:int -> unit
(** Land every in-flight prefetch whose ready cycle is [<= now] in L1i
    (in issue order). Call first in each fetch cycle, with [now] = the
    cycle being fetched (the post-increment cycle count). *)

val demand : t -> now:int -> miss_penalty:int -> int -> Stc_cachesim.Icache.outcome * int
(** [demand t ~now ~miss_penalty addr] is the demand probe of one
    line-aligned address: the outcome for the caller's statistics and
    this line's cycle charge — 0 on a hit or victim hit,
    [miss_penalty] on a miss, and [min remaining_latency miss_penalty]
    when the line is still in flight (a {e late} prefetch: the fill
    lands immediately, the demand then hits, but it is reported as a
    miss and not counted useful). SEQ.3 charges the maximum of its two
    line charges per cycle, reproducing the historical one-penalty-if-
    either-line-misses rule when no prefetches are live. *)

val advance : t -> now:int -> nth:(int -> int option) -> unit
(** Walk the FTQ: [nth k] is the base address of the [k]-th fetch
    target ahead of the cycle-start position ([None] past the end of
    the stream), for [k < ftq_depth]. For each target's SEQ.3 line pair,
    issue a prefetch unless the line is resident ({!Stc_cachesim.Icache.mem})
    or already in flight, stopping at [degree] issues per cycle and
    [mshrs] in flight. Call last in each fetch cycle, with the same
    [now] as {!begin_cycle} and [nth] anchored at the {e cycle-start}
    block index. *)

val issued : t -> int

val completed : t -> int
(** Fills that landed (on time or late); issues still in flight at end
    of run are issued-but-never-completed. *)

val late : t -> int
(** Demands that caught their line still in flight. *)

val useful : t -> int
(** Demand hits on a prefetched line no demand had touched yet. *)

val in_flight : t -> int

val occupancy_hwm : t -> int
(** High-water mark of observed FTQ occupancy; [<= ftq_depth] always. *)

val inflight_hwm : t -> int
(** High-water mark of in-flight prefetches; [<= mshrs] always. *)
