(** A basic-block trace seen through a code layout: the dynamic
    instruction stream the naive reference engine consumes with random
    access. {!create} drains a {!Stc_trace.Source} and materializes the
    ids — the View is deliberately the non-streaming path (the oracle
    the streamed engine is property-tested against).

    Positions are (trace index, instruction offset inside that block).
    Whether a transition is a {e taken} branch is a property of the layout:
    it is taken exactly when the next block does not start where the
    current one ends. *)

type t

type pos = { idx : int; off : int }

val create :
  Stc_cfg.Program.t -> Stc_layout.Layout.t -> Stc_trace.Source.t -> t
(** Drains the source (single-shot — mint a fresh source per view). *)

val length : t -> int
(** Number of blocks in the trace. *)

val block_size : t -> int -> int
(** Instructions in the block at trace index [idx]. *)

val has_branch : t -> int -> bool
(** Whether that block ends with a branch instruction. *)

val is_cond : t -> int -> bool
(** Whether that block ends with a {e conditional} branch (the only kind
    whose direction needs predicting; unconditional transfers, calls and
    returns are BTB/return-stack material). *)

val block_addr : t -> int -> int
(** Byte address of the block at trace index [idx] under the layout. *)

val addr : t -> pos -> int
(** Byte address of the instruction at [pos]. *)

val taken : t -> int -> bool
(** [taken t idx]: the transition from trace index [idx] to [idx + 1] is
    non-sequential under the layout. The last index counts as taken. *)

val total_instrs : t -> int

val taken_branches : t -> int
(** Total taken transitions — denominato of the paper's "instructions
    executed between taken branches". *)

val instrs_between_taken : t -> float

val pack : t -> Packed.t
(** Compile this view into its flat {!Packed} form (one pass over the
    trace). The packed view answers every accessor above identically;
    {!Engine.run} packs internally, so call this only to compile once
    and reuse across several runs. *)
