(** The SEQ.3 sequential fetch engine of Rotenberg et al., as configured in
    Section 7.1 of the paper, optionally fronted by a {!Tracecache}:

    - each cycle it accesses two consecutive i-cache lines and supplies
      instructions from the fetch address up to the first taken branch, a
      maximum of [max_branches] branches, or the end of the two-line
      window (16 instructions when aligned), whichever comes first;
    - branch prediction is perfect, so the next fetch address is always
      the address of the next dynamic instruction;
    - an i-cache miss on either line adds a fixed [miss_penalty]; a trace
      cache hit supplies its whole trace in one cycle with no i-cache
      access. *)

(** Engine parameters. {!Config.make} is the only constructor; every
    argument defaults to the paper's Section 7.1 value. The record is
    [private] — fields are readable (the artifact store fingerprints
    them) but new combinations only come from [make], so a future
    parameter can be added without revisiting construction sites. *)
module Config : sig
  type t = private {
    max_branches : int;
    line_bytes : int;
    miss_penalty : int;
    fdip : Fdip.config option;
        (** Decoupled-frontend prefetching ({!Fdip}); [None] (the
            default) is the paper's machine, bit-identical to the
            pre-FDIP engine. Live only when the run also has an
            i-cache. *)
  }

  val default : t
  (** 3 branches, 32-byte lines (8 instructions each), 5-cycle penalty,
      no prefetching. *)

  val make :
    ?max_branches:int ->
    ?line_bytes:int ->
    ?miss_penalty:int ->
    ?fdip:Fdip.config ->
    unit ->
    t
  (** Override any subset of {!default}. *)
end

type config = Config.t

type prediction = {
  pred : Predictor.t;
  redirect_penalty : int;
      (** Cycles lost per mispredicted conditional-branch direction. *)
}

type result = {
  instrs : int;  (** Instructions supplied. *)
  cycles : int;  (** Fetch cycles including miss penalties. *)
  fetch_cycles : int;  (** Cycles excluding penalties. *)
  seq_cycles : int;  (** Fetch cycles served by the sequential engine. *)
  tc_cycles : int;  (** Fetch cycles served by the trace cache. *)
  icache_accesses : int;
  icache_misses : int;
  icache_victim_hits : int;
      (** Lines found in the victim buffer (0 without [~victim_lines]). *)
  tc_lookups : int;
  tc_hits : int;
  taken_branches : int;
  instrs_between_taken : float;
  cond_branches : int;
  mispredictions : int;
  icache_evictions : int;
      (** Valid lines evicted under a non-LRU replacement policy (0 on
          the historical LRU paths; see
          {!Stc_cachesim.Icache.evictions}). *)
  prefetch_issued : int;  (** FDIP prefetches issued (0 without FDIP). *)
  prefetch_completed : int;  (** Prefetch fills that landed. *)
  prefetch_late : int;  (** Demands that caught their line in flight. *)
  prefetch_useful : int;  (** Demand hits on untouched prefetched lines. *)
}

val bandwidth : result -> float
(** Instructions per cycle. *)

val result_fields : result -> (string * float) list
(** Every field of a result as a [(name, value)] list, in declaration
    order — the surface differential checkers ({!Stc_check}) compare
    field by field so a divergence names the counter that drifted. *)

val miss_rate_pct : result -> float
(** I-cache misses per 100 instructions executed (the unit of Table 3). *)

val publish : Stc_obs.Registry.t -> result -> unit
(** Accumulate a result into the registry's [engine.*] counters and tick
    [engine.runs] — exactly what {!run} does internally when its context
    carries metrics. Exposed so a cached replay (an artifact-store hit
    that skips the simulation) can register the identical totals as the
    run it stands in for. *)

val run :
  ?ctx:Stc_obs.Run.ctx ->
  ?config:config ->
  ?icache:Stc_cachesim.Icache.t ->
  ?trace_cache:Tracecache.t ->
  ?prediction:prediction ->
  View.t ->
  result
(** Simulate the whole stream: [run view] is a complete call —
    [?config] defaults to {!Config.default}. [?icache = None] models the
    Ideal (perfect) instruction cache: no misses, no penalties. Without
    [?prediction], branch prediction is perfect, as in the paper; with
    it, every mispredicted conditional-branch direction costs
    [redirect_penalty] cycles. The caches' state and statistics are
    updated in place (pass fresh ones per experiment). Of [?ctx] only
    [metrics] is read: the run's result is accumulated into the
    registry's [engine.*] counters (totals across every run sharing the
    registry).

    [run] compiles the view into its {!Packed} form and dispatches to
    {!run_packed}; to replay the same (layout × trace) several times,
    compile once with {!View.pack} and call {!run_packed} directly. *)

val run_packed :
  ?ctx:Stc_obs.Run.ctx ->
  ?config:config ->
  ?icache:Stc_cachesim.Icache.t ->
  ?trace_cache:Tracecache.t ->
  ?prediction:prediction ->
  Packed.t ->
  result
(** The allocation-free fast path: same simulation, same results, driven
    by one unsafe packed-word read per block, with cache/trace-cache
    statistics batched in locals and flushed to the shared counters once
    at the end (so counter values, {!Stc_cachesim.Icache.stats}
    snapshots and metric exports are identical to the naive path's).
    Internally this is {!run_stream} over a single borrowed segment —
    the image is never copied. *)

val run_stream :
  ?ctx:Stc_obs.Run.ctx ->
  ?config:config ->
  ?icache:Stc_cachesim.Icache.t ->
  ?trace_cache:Tracecache.t ->
  ?prediction:prediction ->
  ?resident_hwm:int ref ->
  Stream.t ->
  result
(** The streaming path: consume packed segments incrementally through a
    bounded sliding buffer that always holds enough lookahead for one
    fetch cycle (two i-cache lines of sequential blocks, or one
    trace-cache build, whichever is larger). Results, cache statistics
    and metric exports are bit-identical to {!run_packed} over the
    concatenated image at {e any} segment size (property-tested), while
    peak residency stays O(largest segment + lookahead) — measured into
    [resident_hwm] (high-water mark of the buffer, in words) when given.
    Statistics are flushed to the shared cache counters at every segment
    boundary, and with tracing on each consumed segment emits one
    [engine.segment] slice whose argument is the blocks consumed. *)

(** Fused replay: a bank of independent per-config engine states (each
    the exact state a solo {!run_packed} would carry — i-cache with
    optional victim buffer, trace cache, SEQ.3 cycle-grouping cursor)
    advanced block-by-block from a {e single} sweep over the trace, so
    N configurations over the same layout decode and pull each packed
    word once instead of N times.

    Per-slot results are bit-identical to running each spec alone
    through {!run_packed} / {!run_stream} — including every cache
    statistic and published [engine.*] counter. The identity rests on
    two structural facts, both enforced by {!Stc_check}'s fused
    differential, the QCheck fused properties and the golden harness:
    SEQ.3 cycle boundaries never depend on i-cache outcomes (misses add
    penalties; they cannot change what a cycle fetches), and empty
    trace caches of equal geometry evolve identical contents over the
    same walk. Slots sharing [(line_bytes, max_branches, trace-cache
    geometry)] therefore advance one shared walk (a {e cohort}); the
    rest step independently over the same sliding window.

    As with the solo engines, pass fresh caches per spec: the bank owns
    their state for the duration of the run, and a non-lead member's
    trace-cache statistics are synthesized from the cohort's (its entry
    array is never filled — correct because nothing observes trace-cache
    contents, only counters). *)
module Bank : sig
  type spec = {
    config : Config.t;
    icache : Stc_cachesim.Icache.t option;
    trace_cache : Tracecache.t option;
    prediction : prediction option;
  }

  val spec :
    ?config:Config.t ->
    ?icache:Stc_cachesim.Icache.t ->
    ?trace_cache:Tracecache.t ->
    ?prediction:prediction ->
    unit ->
    spec
  (** Same defaults as {!run_packed}'s optional arguments. *)

  val run_packed :
    ?ctx:Stc_obs.Run.ctx ->
    ?stride_words:int ->
    spec array ->
    Packed.t ->
    result array
  (** One sweep over a materialized packed image; [result.(i)] is
      bit-identical to [run_packed] of [specs.(i)] alone. The image is
      borrowed, never copied. [stride_words] (default 16384) bounds how
      far any engine state may run ahead of the laggard, keeping the
      words being re-walked cache-resident; it affects wall clock only,
      never results. An empty spec array returns [[||]] without pulling
      the trace. With tracing on, each sweep emits one [engine.fused]
      slice whose argument is the number of fused cells. Of [?ctx],
      [metrics] accumulates every slot's result into the registry's
      [engine.*] counters in input order. *)

  val run_stream :
    ?ctx:Stc_obs.Run.ctx ->
    ?stride_words:int ->
    ?resident_hwm:int ref ->
    spec array ->
    Stream.t ->
    result array
  (** The same sweep over a segment stream through one shared bounded
      sliding window (the stream is pulled once for the whole bank):
      bit-identical to {!run_packed} over the concatenated image at any
      segment size, with peak residency O(largest segment + lookahead)
      measured into [resident_hwm] (words) when given — the window
      compacts below the slowest engine state's position. *)
end

val run_naive :
  ?ctx:Stc_obs.Run.ctx ->
  ?config:config ->
  ?icache:Stc_cachesim.Icache.t ->
  ?trace_cache:Tracecache.t ->
  ?prediction:prediction ->
  View.t ->
  result
(** The pre-packing reference implementation, querying the {!View} per
    block (bounds-checked, recomputing [taken], counting every cache
    access on the shared counters). Kept as the semantic baseline:
    equality with {!run_packed} is property-tested, and
    [bench/main.exe fetch --naive] exercises it to measure the packed
    speedup. *)
