(** Packed trace images: one immutable int word per trace index.

    A packed image is the engines' unit of consumption. It is produced
    either for a whole trace ({!compile}, the materialized path) or per
    {!Stc_trace.Segment} ({!of_segment}, the streamed path — see
    {!Stream}); both compile from the same validated per-block
    {!tables}, and a concatenation of per-segment images is bit-identical
    to the whole-trace image because the one cross-index dependency (the
    taken bit looks one block ahead) is supplied explicitly at segment
    boundaries via [next_first].

    Word layout: bits 0–2 flags (taken / branch-end / conditional-end),
    bits 3–21 block size in instructions (up to 2^19-1), bits 22–62
    block byte address (up to 2 TB). The structure is immutable after
    compilation and safe to share read-only across domains; {!Stc_core}'s
    experiment grids compile one per distinct layout and share it between
    all cells that replay that layout. *)

type t

type tables
(** Per-block-id static words — everything but the per-index taken bit —
    validated once per (program, layout) and shared by every segment
    compiled under it. *)

val tables : Stc_cfg.Program.t -> Stc_layout.Layout.t -> tables
(** Build and validate the per-block tables for a program under a
    layout. Raises [Invalid_argument] if any block size or address
    exceeds the packed word's field widths. *)

val tables_of_arrays :
  sizes:int array ->
  branch_end:bool array ->
  cond_end:bool array ->
  addrs:int array ->
  tables
(** Same, from pre-extracted per-block-id arrays (the {!View} path, so a
    view and its packed form share exactly the same inputs). *)

val compile :
  Stc_cfg.Program.t -> Stc_layout.Layout.t -> Stc_trace.Source.t -> t
(** Drain the source and compile the whole trace into one image — the
    materialized path. Equivalent to [compile_tables (tables p l) src]. *)

val compile_tables : tables -> Stc_trace.Source.t -> t
(** {!compile} with prebuilt tables (amortizes table validation when
    several traces compile under one layout). Drains the source. *)

val of_segment : tables -> Stc_trace.Segment.t -> next_first:int option -> t
(** Compile one segment into a standalone image whose stream totals
    cover just that segment. [next_first] is the first block id of the
    {e next} segment ([None] at true end of trace) and decides the final
    index's taken bit — the invariant that makes streamed replay
    bit-identical to materialized replay. *)

val of_raw :
  words:int array ->
  len:int ->
  total_instrs:int ->
  taken_branches:int ->
  t
(** Rebuild a compiled image from its components — the artifact store's
    deserialization path and the engine's sliding-buffer views. Only
    basic range checks are performed; the words are trusted to be a
    faithful copy of previously compiled words. The array is not
    copied. *)

val length : t -> int
(** Number of blocks in the image. *)

(** {2 The hot-loop surface}

    [raw t] is the word array itself (never mutate it; indices
    [>= length t] are padding). Decode with the [w_*] accessors. This is
    what {!Engine}'s packed loops and the packed {!Tracecache} paths
    iterate over. *)

val raw : t -> int array

val w_addr : int -> int
(** Block byte address under the layout. *)

val w_size : int -> int
(** Block size in instructions. *)

val w_taken : int -> bool
(** The transition to the next trace index is non-sequential under the
    layout (the last index counts as taken). *)

val w_branch : int -> bool
(** The block ends with a branch instruction. *)

val w_cond : int -> bool
(** The block ends with a conditional branch. *)

(** {2 Checked per-index accessors}

    Same answers as the [View] functions of the same name; used by tests
    and non-hot callers. *)

val word : t -> int -> int

val block_addr : t -> int -> int

val block_size : t -> int -> int

val taken : t -> int -> bool

val has_branch : t -> int -> bool

val is_cond : t -> int -> bool

val addr : t -> idx:int -> off:int -> int
(** Byte address of instruction [off] of the block at trace index
    [idx]. *)

(** {2 Stream totals} — precomputed during compilation. *)

val total_instrs : t -> int

val taken_branches : t -> int

val instrs_between_taken : t -> float

val memory_words : t -> int
(** Size of the compiled representation in words (one per trace index);
    lets grid planners reason about cache residency. *)
