(** A (layout × recorded trace) pair compiled, once, into a flat
    immutable representation the fetch engines can replay with zero
    allocation and no per-query recomputation.

    {!View} answers every per-block question by indirecting through the
    [Recorder] (a bounds-checked lookup) into per-block-id tables, and
    recomputes the layout-dependent [taken] bit from two addresses on
    every query. Compiling packs the answers for each {e trace index}
    into one integer word — block address, size, branch-end /
    conditional-end flags and the precomputed taken bit — so the engine
    inner loop is a single [Array.unsafe_get] plus shifts per block, and
    the stream totals fall out of the same single compilation pass.

    The structure is immutable after {!compile} and safe to share
    read-only across domains; {!Stc_core}'s experiment grids compile one
    per distinct layout and share it between all cells that replay that
    layout. *)

type t

val compile :
  Stc_cfg.Program.t -> Stc_layout.Layout.t -> Stc_trace.Recorder.t -> t
(** One pass over the recorded trace. Raises [Invalid_argument] if a
    block size or address does not fit the packed word (sizes up to
    2^19-1 instructions, addresses up to 2 TB — far beyond any real
    program). *)

val of_tables :
  sizes:int array ->
  branch_end:bool array ->
  cond_end:bool array ->
  addrs:int array ->
  Stc_trace.Recorder.t ->
  t
(** Compile from per-block-id tables (all indexed by block id) instead
    of a program + layout; this is what {!View.pack} uses so a view and
    its packed form share exactly the same inputs. *)

val of_raw :
  words:int array ->
  len:int ->
  total_instrs:int ->
  taken_branches:int ->
  t
(** Rebuild a compiled image from its components — the artifact store's
    deserialization path, inverse of reading {!raw}/{!length} and the
    stream totals. Only basic range checks are performed; the words are
    trusted to be a faithful copy of a previously compiled image. The
    array is not copied. *)

val length : t -> int
(** Number of blocks in the trace. *)

(** {2 The hot-loop surface}

    [raw t] is the word array itself (never mutate it); decode with the
    [w_*] accessors. This is what {!Engine.run_packed} and the packed
    {!Tracecache} paths iterate over. *)

val raw : t -> int array

val w_addr : int -> int
(** Block byte address under the layout. *)

val w_size : int -> int
(** Block size in instructions. *)

val w_taken : int -> bool
(** The transition to the next trace index is non-sequential under the
    layout (the last index counts as taken). *)

val w_branch : int -> bool
(** The block ends with a branch instruction. *)

val w_cond : int -> bool
(** The block ends with a conditional branch. *)

(** {2 Checked per-index accessors}

    Same answers as the [View] functions of the same name; used by tests
    and non-hot callers. *)

val word : t -> int -> int

val block_addr : t -> int -> int

val block_size : t -> int -> int

val taken : t -> int -> bool

val has_branch : t -> int -> bool

val is_cond : t -> int -> bool

val addr : t -> idx:int -> off:int -> int
(** Byte address of instruction [off] of the block at trace index
    [idx]. *)

(** {2 Stream totals} — precomputed during compilation. *)

val total_instrs : t -> int

val taken_branches : t -> int

val instrs_between_taken : t -> float

val memory_words : t -> int
(** Size of the compiled representation in words (one per trace index);
    lets grid planners reason about cache residency. *)
