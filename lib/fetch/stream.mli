(** A pull-based stream of {!Packed} segment images — the fetch-layer
    face of {!Stc_trace.Source}.

    {!create} compiles each pulled id segment against prebuilt
    {!Packed.tables}, holding exactly one segment in flight so the
    successor's first block id can seed the boundary taken bit
    ([Packed.of_segment ~next_first]). Consumed by {!Engine.run_stream},
    whose bounded sliding buffer makes the replay bit-identical to the
    materialized {!Engine.run_packed} at any segment size. *)

type t

val create : Packed.tables -> Stc_trace.Source.t -> t
(** Compile-on-pull over an id source. Peak residency is one id segment
    plus the packed images currently held by the consumer. *)

val of_packed : Packed.t -> t
(** A single-segment stream: yields the image once, then [None]. *)

val of_fun : (unit -> Packed.t option) -> t
(** Wrap a raw pull function (tests). Must yield consecutive packed
    segments whose concatenation is a valid whole-trace image, then
    [None] forever. *)

val next : t -> Packed.t option
