type kind = Always_taken | Bimodal of int | Gshare of int * int

type t = {
  kind : kind;
  table : int array; (* 2-bit saturating counters *)
  mask : int;
  history_mask : int;
  mutable history : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create kind =
  let size, hist_bits =
    match kind with
    | Always_taken -> (1, 0)
    | Bimodal n -> (n, 0)
    | Gshare (n, h) -> (n, h)
  in
  if not (Stc_util.Bits.is_pow2 size) then
    invalid_arg "Predictor.create: table size must be a power of two";
  {
    kind;
    table = Array.make size 2 (* weakly taken *);
    mask = size - 1;
    history_mask = (1 lsl hist_bits) - 1;
    history = 0;
    predictions = 0;
    mispredictions = 0;
  }

let index t ~pc =
  match t.kind with
  | Always_taken -> 0
  | Bimodal _ -> (pc lsr 2) land t.mask
  | Gshare _ -> ((pc lsr 2) lxor t.history) land t.mask

let predict_and_update t ~pc ~taken =
  t.predictions <- t.predictions + 1;
  let correct =
    match t.kind with
    | Always_taken -> taken
    | Bimodal _ | Gshare _ ->
      let i = index t ~pc in
      let predicted = t.table.(i) >= 2 in
      (if taken then t.table.(i) <- min 3 (t.table.(i) + 1)
       else t.table.(i) <- max 0 (t.table.(i) - 1));
      t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.history_mask;
      predicted = taken
  in
  if not correct then t.mispredictions <- t.mispredictions + 1;
  correct

let predictions t = t.predictions

let mispredictions t = t.mispredictions

let accuracy_pct t =
  if t.predictions = 0 then 100.0
  else
    100.0
    *. float_of_int (t.predictions - t.mispredictions)
    /. float_of_int t.predictions
