module Icache = Stc_cachesim.Icache

(* Fetch-directed instruction prefetching (Asheim et al.): a decoupled
   frontend runs ahead of the fetch engine filling a bounded fetch
   target queue (FTQ), and a prefetch engine walks the FTQ issuing line
   prefetches into L1i under an in-flight (MSHR) bound with a
   configurable prefetch-to-use latency.

   Under the paper's perfect-prediction fetch model the run-ahead path
   is the trace itself, so the FTQ holds the next [ftq_depth] fetch
   targets of the replay. Each simulated fetch cycle drives three
   steps, in this order, identically in every evaluation mode (solo
   segments, naive reference, fused bank, oracle):

     1. [begin_cycle]  — prefetches whose latency elapsed land in L1i;
     2. [demand]       — the cycle's demand line probes (sequential
                         cycles only), each returning its outcome and a
                         cycle charge;
     3. [advance]      — the FTQ walk issues new prefetches for the
                         blocks starting at the cycle-start position.

   FDIP never alters SEQ.3 cycle boundaries — it only changes i-cache
   contents and penalty charges — which is what lets the fused bank
   share one walk across FDIP-on and FDIP-off members of a cohort. *)

type config = { ftq_depth : int; mshrs : int; degree : int; latency : int }

let config ?(ftq_depth = 8) ?(mshrs = 8) ?(degree = 2) ?(latency = 3) () =
  if ftq_depth < 1 then invalid_arg "Fdip.config: ftq_depth must be >= 1";
  if mshrs < 1 then invalid_arg "Fdip.config: mshrs must be >= 1";
  if degree < 1 then invalid_arg "Fdip.config: degree must be >= 1";
  if latency < 0 then invalid_arg "Fdip.config: latency must be >= 0";
  { ftq_depth; mshrs; degree; latency }

let default = config ()

type t = {
  cfg : config;
  ic : Icache.t;
  line : int;
  (* in-flight prefetches in issue order: line-aligned byte address and
     the cycle the fill becomes visible; [n] live entries *)
  lines : int array;
  ready : int array;
  mutable n : int;
  mutable issued : int;
  mutable completed : int;
  mutable late : int;
  mutable useful : int;
  mutable occ_hwm : int;
  mutable inflight_hwm : int;
}

let create cfg ic =
  {
    cfg;
    ic;
    line = Icache.line_bytes ic;
    lines = Array.make cfg.mshrs 0;
    ready = Array.make cfg.mshrs 0;
    n = 0;
    issued = 0;
    completed = 0;
    late = 0;
    useful = 0;
    occ_hwm = 0;
    inflight_hwm = 0;
  }

let issued t = t.issued

let completed t = t.completed

let late t = t.late

let useful t = t.useful

let in_flight t = t.n

let occupancy_hwm t = t.occ_hwm

let inflight_hwm t = t.inflight_hwm

(* shift-compact so the remaining entries keep issue order — the oracle
   mirrors this with an ordered association list *)
let remove t i =
  for j = i to t.n - 2 do
    t.lines.(j) <- t.lines.(j + 1);
    t.ready.(j) <- t.ready.(j + 1)
  done;
  t.n <- t.n - 1

let find_inflight t a =
  let r = ref (-1) in
  for i = 0 to t.n - 1 do
    if t.lines.(i) = a then r := i
  done;
  !r

let begin_cycle t ~now =
  let i = ref 0 in
  while !i < t.n do
    if t.ready.(!i) <= now then begin
      Icache.fill_prefetch t.ic t.lines.(!i);
      t.completed <- t.completed + 1;
      remove t !i
    end
    else incr i
  done

let demand t ~now ~miss_penalty a =
  let k = find_inflight t a in
  if k >= 0 then begin
    (* in flight: the MSHR intercepts the demand; the fill lands now
       and the cycle is charged only the remaining latency (capped at
       the full miss penalty). A late prefetch is not a useful one. *)
    let remain = t.ready.(k) - now in
    remove t k;
    Icache.fill_prefetch t.ic a;
    t.completed <- t.completed + 1;
    t.late <- t.late + 1;
    ignore (Icache.access_demand t.ic a);
    let charge =
      if remain <= 0 then 0
      else if remain > miss_penalty then miss_penalty
      else remain
    in
    (Icache.Miss, charge)
  end
  else
    match Icache.access_demand t.ic a with
    | Icache.Hit, was_pref ->
      if was_pref then t.useful <- t.useful + 1;
      (Icache.Hit, 0)
    | Icache.Victim_hit, _ -> (Icache.Victim_hit, 0)
    | Icache.Miss, _ -> (Icache.Miss, miss_penalty)

let issue t ~now budget a =
  if
    !budget > 0
    && t.n < t.cfg.mshrs
    && (not (Icache.mem t.ic a))
    && find_inflight t a < 0
  then begin
    t.lines.(t.n) <- a;
    t.ready.(t.n) <- now + t.cfg.latency;
    t.n <- t.n + 1;
    t.issued <- t.issued + 1;
    decr budget;
    if t.n > t.inflight_hwm then t.inflight_hwm <- t.n
  end

let advance t ~now ~nth =
  let budget = ref t.cfg.degree in
  let occ = ref 0 in
  let k = ref 0 in
  let stop = ref false in
  while (not !stop) && !k < t.cfg.ftq_depth do
    match nth !k with
    | None -> stop := true
    | Some addr ->
      incr occ;
      (* each fetch target covers the SEQ.3 line pair of its block *)
      let l0 = addr / t.line * t.line in
      issue t ~now budget l0;
      issue t ~now budget (l0 + t.line);
      incr k
  done;
  if !occ > t.occ_hwm then t.occ_hwm <- !occ
