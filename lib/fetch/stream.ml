module Segment = Stc_trace.Segment
module Source = Stc_trace.Source

type t = { next : unit -> Packed.t option }

let next t = t.next ()

let of_fun f = { next = f }

let of_packed p =
  let pending = ref (Some p) in
  {
    next =
      (fun () ->
        match !pending with
        | None -> None
        | some ->
          pending := None;
          some);
  }

let create tables source =
  (* Hold one id segment in flight and peek the successor's first block
     id before compiling, so the boundary taken bit matches the
     whole-trace compilation. Empty segments are skipped here — they
     carry no ids and would otherwise break the lookahead. *)
  let rec pull_nonempty () =
    match Source.next_segment source with
    | Some s when Segment.length s = 0 -> pull_nonempty ()
    | x -> x
  in
  let pending = ref (pull_nonempty ()) in
  let next () =
    match !pending with
    | None -> None
    | Some seg ->
      let succ = pull_nonempty () in
      pending := succ;
      let next_first =
        match succ with None -> None | Some s -> Some (Segment.first s)
      in
      Some (Packed.of_segment tables seg ~next_first)
  in
  { next }
