(** Branch direction predictors.

    The paper uses perfect prediction throughout "to examine the
    performance limit of the examined techniques, avoiding interference
    due to branch and target mispredictions". These predictors let the
    reproduction quantify that interference: the fetch engine can charge a
    redirect penalty for every mispredicted conditional-branch direction.

    Prediction here is about the {e direction} (taken / not taken) of the
    branch ending a basic block under a given layout; unconditional
    transfers, calls and returns are considered always predicted (BTB +
    return-address stack). *)

type kind =
  | Always_taken
  | Bimodal of int  (** 2-bit counters; the int is the table size (pow 2). *)
  | Gshare of int * int  (** table size, history bits. *)

type t

val create : kind -> t

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** [predict_and_update t ~pc ~taken] returns whether the prediction was
    correct, and trains the predictor with the outcome. *)

val predictions : t -> int

val mispredictions : t -> int

val accuracy_pct : t -> float
