module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator
module Source = Stc_trace.Source
module Layout = Stc_layout.Layout

type t = {
  ids : int array; (* the materialized trace, one block id per index *)
  sizes : int array; (* per block id *)
  branch_end : bool array;
  cond_end : bool array;
  addrs : int array; (* per block id *)
  mutable cached_totals : (int * int) option;
}

type pos = { idx : int; off : int }

let create prog layout source =
  {
    ids = Source.to_array source;
    sizes = Array.map (fun b -> b.Block.size) prog.Program.blocks;
    branch_end =
      Array.map
        (fun b -> Terminator.has_branch_instr b.Block.term)
        prog.Program.blocks;
    cond_end =
      Array.map
        (fun b ->
          match b.Block.term with Terminator.Cond _ -> true | _ -> false)
        prog.Program.blocks;
    addrs = Array.init (Array.length prog.Program.blocks) (Layout.address layout);
    cached_totals = None;
  }

let length t = Array.length t.ids

let bid t idx = t.ids.(idx)

let block_size t idx = t.sizes.(bid t idx)

let has_branch t idx = t.branch_end.(bid t idx)

let is_cond t idx = t.cond_end.(bid t idx)

let block_addr t idx = t.addrs.(bid t idx)

let addr t p = block_addr t p.idx + (p.off * Block.instr_bytes)

let taken t idx =
  if idx + 1 >= length t then true
  else
    let b = bid t idx in
    t.addrs.(bid t (idx + 1))
    <> t.addrs.(b) + (t.sizes.(b) * Block.instr_bytes)

let totals t =
  match t.cached_totals with
  | Some (i, k) -> (i, k)
  | None ->
    let instrs = ref 0 and taken_n = ref 0 in
    for idx = 0 to length t - 1 do
      instrs := !instrs + block_size t idx;
      if taken t idx then incr taken_n
    done;
    t.cached_totals <- Some (!instrs, !taken_n);
    (!instrs, !taken_n)

let total_instrs t = fst (totals t)

let taken_branches t = snd (totals t)

let instrs_between_taken t =
  let i, k = totals t in
  if k = 0 then float_of_int i else float_of_int i /. float_of_int k

let pack t =
  Packed.compile_tables
    (Packed.tables_of_arrays ~sizes:t.sizes ~branch_end:t.branch_end
       ~cond_end:t.cond_end ~addrs:t.addrs)
    (Source.of_array t.ids)
