open Stc_db
module S = Stc_dbdata.Schema

let all = List.init 17 (fun i -> i + 1)

let training_set = [ 3; 4; 5; 6; 9 ]

let test_set = [ 2; 3; 4; 6; 11; 12; 13; 14; 15; 17 ]

let c x = Expr.Col x

let k v = Expr.Const v

let date = S.date

(* revenue = extendedprice * (100 - discount) / 100, in cents *)
let revenue ~ext ~disc =
  Expr.Div (Expr.Mul (c ext, Expr.Sub (k 100, c disc)), k 100)

(* A date-range scan: a B-tree range index scan when the database has one,
   otherwise a sequential scan with the range as a residual qual. *)
let date_scan db ~table ~col_name ~col ~lo ~hi ~quals =
  let index = table ^ "." ^ col_name in
  if Database.has_index db index then
    Plan.Index_scan { table; index; key = Plan.Key_range (Some lo, Some hi); quals }
  else
    Plan.Seq_scan { table; quals = Expr.col_between col lo hi :: quals }

let idx_scan table col_name key quals =
  Plan.Index_scan { table; index = table ^ "." ^ col_name; key; quals }

let seq table quals = Plan.Seq_scan { table; quals }

(* ---- the 17 queries ---- *)

let q1 _db =
  let scan = seq "lineitem" [ Expr.Le (c S.L.shipdate, k (date 1998 9 1)) ] in
  Plan.Group
    {
      child =
        Plan.Sort
          {
            child = scan;
            cols = [ (S.L.returnflag, false); (S.L.linestatus, false) ];
          };
      cols = [ S.L.returnflag; S.L.linestatus ];
      aggs =
        [
          Plan.Sum (c S.L.quantity);
          Plan.Sum (c S.L.extendedprice);
          Plan.Sum (revenue ~ext:S.L.extendedprice ~disc:S.L.discount);
          Plan.Avg (c S.L.quantity);
          Plan.Count;
        ];
    }

let q2 _db =
  (* minimum-cost supplier for parts of a given size *)
  let part = seq "part" [ Expr.Eq (c S.P.size, k 15) ] in
  let nl1 =
    Plan.Nest_loop
      {
        outer = part;
        inner = idx_scan "partsupp" "ps_partkey" (Plan.Key_outer_eq S.P.partkey) [];
        quals = [];
      }
  in
  (* part 0-5, partsupp 6-9 *)
  let nl2 =
    Plan.Nest_loop
      {
        outer = nl1;
        inner = idx_scan "supplier" "s_suppkey" (Plan.Key_outer_eq (6 + S.PS.suppkey)) [];
        quals = [];
      }
  in
  (* + supplier 10-12 *)
  Plan.Result
    {
      child =
        Plan.Limit
          {
            child =
              Plan.Sort { child = nl2; cols = [ (6 + S.PS.supplycost, false); (0, false) ] };
            limit = 10;
          };
      exprs = [ c 0; c (6 + S.PS.supplycost); c 10; c 12 ];
    }

let q3 _db =
  let d = date 1995 3 15 in
  let hj1 =
    Plan.Hash_join
      {
        outer = seq "orders" [ Expr.Lt (c S.O.orderdate, k d) ];
        inner = seq "customer" [ Expr.Eq (c S.C.mktsegment, k 1) ];
        outer_col = S.O.custkey;
        inner_col = S.C.custkey;
        quals = [];
      }
  in
  (* orders 0-4, customer 5-8 *)
  let hj2 =
    Plan.Hash_join
      {
        outer = seq "lineitem" [ Expr.Gt (c S.L.shipdate, k d) ];
        inner = hj1;
        outer_col = S.L.orderkey;
        inner_col = 0;
        quals = [];
      }
  in
  (* lineitem 0-14, orders 15-19, customer 20-23 *)
  let grouped =
    Plan.Group
      {
        child = Plan.Sort { child = hj2; cols = [ (0, false) ] };
        cols = [ 0; 15 + S.O.orderdate; 15 + S.O.shippriority ];
        aggs = [ Plan.Sum (revenue ~ext:S.L.extendedprice ~disc:S.L.discount) ];
      }
  in
  Plan.Limit
    {
      child = Plan.Sort { child = grouped; cols = [ (3, true); (0, false) ] };
      limit = 10;
    }

let q4 db =
  let d = date 1993 7 1 in
  let orders =
    date_scan db ~table:"orders" ~col_name:"o_orderdate" ~col:S.O.orderdate
      ~lo:d ~hi:(d + 89) ~quals:[]
  in
  let exists_line =
    Plan.Limit
      {
        child =
          idx_scan "lineitem" "l_orderkey" (Plan.Key_outer_eq S.O.orderkey)
            [ Expr.Lt (c S.L.commitdate, c S.L.receiptdate) ];
        limit = 1;
      }
  in
  let nl = Plan.Nest_loop { outer = orders; inner = exists_line; quals = [] } in
  Plan.Group
    {
      child = Plan.Sort { child = nl; cols = [ (S.O.orderpriority, false) ] };
      cols = [ S.O.orderpriority ];
      aggs = [ Plan.Count ];
    }

let q5 _db =
  let hj_nr =
    Plan.Hash_join
      {
        outer = seq "nation" [];
        inner = seq "region" [ Expr.Eq (c S.R.name, k 2) (* ASIA *) ];
        outer_col = S.N.regionkey;
        inner_col = S.R.regionkey;
        quals = [];
      }
  in
  (* nation 0-2, region 3-4 *)
  let hj_c =
    Plan.Hash_join
      {
        outer = seq "customer" [];
        inner = hj_nr;
        outer_col = S.C.nationkey;
        inner_col = 0;
        quals = [];
      }
  in
  (* customer 0-3, nation 4-6, region 7-8 *)
  let d = date 1994 1 1 in
  let nl_o =
    Plan.Nest_loop
      {
        outer = hj_c;
        inner =
          idx_scan "orders" "o_custkey" (Plan.Key_outer_eq 0)
            [ Expr.col_between S.O.orderdate d (d + 359) ];
        quals = [];
      }
  in
  (* + orders 9-13 *)
  let nl_l =
    Plan.Nest_loop
      {
        outer = nl_o;
        inner = idx_scan "lineitem" "l_orderkey" (Plan.Key_outer_eq 9) [];
        quals = [];
      }
  in
  (* + lineitem 14-28 *)
  let nl_s =
    Plan.Nest_loop
      {
        outer = nl_l;
        inner =
          idx_scan "supplier" "s_suppkey" (Plan.Key_outer_eq (14 + S.L.suppkey)) [];
        quals = [ Expr.Eq (c (29 + S.S.nationkey), c 4) ];
      }
  in
  (* + supplier 29-31 *)
  Plan.Group
    {
      child = Plan.Sort { child = nl_s; cols = [ (5, false) ] };
      cols = [ 5 ] (* n_name *);
      aggs =
        [ Plan.Sum (revenue ~ext:(14 + S.L.extendedprice) ~disc:(14 + S.L.discount)) ];
    }

let q6 db =
  let d = date 1994 1 1 in
  let scan =
    date_scan db ~table:"lineitem" ~col_name:"l_shipdate" ~col:S.L.shipdate
      ~lo:d ~hi:(d + 359)
      ~quals:
        [
          Expr.col_between S.L.discount 5 7;
          Expr.Lt (c S.L.quantity, k 24);
        ]
  in
  Plan.Agg
    {
      child = scan;
      aggs = [ Plan.Sum (Expr.Div (Expr.Mul (c S.L.extendedprice, c S.L.discount), k 100)) ];
    }

let q7 _db =
  let hj_sn =
    Plan.Hash_join
      {
        outer = seq "supplier" [];
        inner = seq "nation" [ Expr.In_list (c S.N.nationkey, [ 6; 7 ]) ];
        outer_col = S.S.nationkey;
        inner_col = S.N.nationkey;
        quals = [];
      }
  in
  (* supplier 0-2, nation 3-5 *)
  let hj_l =
    Plan.Hash_join
      {
        outer =
          seq "lineitem"
            [ Expr.col_between S.L.shipdate (date 1995 1 1) (date 1996 12 30) ];
        inner = hj_sn;
        outer_col = S.L.suppkey;
        inner_col = 0;
        quals = [];
      }
  in
  (* lineitem 0-14, supplier 15-17, nation 18-20 *)
  let nl_o =
    Plan.Nest_loop
      {
        outer = hj_l;
        inner = idx_scan "orders" "o_orderkey" (Plan.Key_outer_eq 0) [];
        quals = [];
      }
  in
  (* + orders 21-25 *)
  let nl_c =
    Plan.Nest_loop
      {
        outer = nl_o;
        inner =
          idx_scan "customer" "c_custkey" (Plan.Key_outer_eq (21 + S.O.custkey))
            [ Expr.In_list (c S.C.nationkey, [ 6; 7 ]) ];
        quals = [ Expr.Ne (c 18, c (26 + S.C.nationkey)) ];
      }
  in
  (* + customer 26-29 *)
  let projected =
    Plan.Result
      {
        child = nl_c;
        exprs =
          [
            c 18;
            c (26 + S.C.nationkey);
            Expr.Div (c S.L.shipdate, k 360);
            revenue ~ext:S.L.extendedprice ~disc:S.L.discount;
          ];
      }
  in
  Plan.Group
    {
      child =
        Plan.Sort
          { child = projected; cols = [ (0, false); (1, false); (2, false) ] };
      cols = [ 0; 1; 2 ];
      aggs = [ Plan.Sum (c 3) ];
    }

let q8 _db =
  let nl_pl =
    Plan.Nest_loop
      {
        outer = seq "part" [ Expr.Eq (c S.P.typ, k 10) ];
        inner = idx_scan "lineitem" "l_partkey" (Plan.Key_outer_eq S.P.partkey) [];
        quals = [];
      }
  in
  (* part 0-5, lineitem 6-20 *)
  let nl_o =
    Plan.Nest_loop
      {
        outer = nl_pl;
        inner =
          idx_scan "orders" "o_orderkey" (Plan.Key_outer_eq (6 + S.L.orderkey))
            [ Expr.col_between S.O.orderdate (date 1995 1 1) (date 1996 12 30) ];
        quals = [];
      }
  in
  (* + orders 21-25 *)
  let nl_c =
    Plan.Nest_loop
      {
        outer = nl_o;
        inner =
          idx_scan "customer" "c_custkey" (Plan.Key_outer_eq (21 + S.O.custkey)) [];
        quals = [];
      }
  in
  (* + customer 26-29 *)
  let rev = revenue ~ext:(6 + S.L.extendedprice) ~disc:(6 + S.L.discount) in
  let projected =
    Plan.Result
      {
        child = nl_c;
        exprs =
          [
            Expr.Div (c (21 + S.O.orderdate), k 360);
            rev;
            Expr.Mul (rev, Expr.Eq (c (26 + S.C.nationkey), k 2) (* BRAZIL *));
          ];
      }
  in
  Plan.Group
    {
      child = Plan.Sort { child = projected; cols = [ (0, false) ] };
      cols = [ 0 ];
      aggs = [ Plan.Sum (c 2); Plan.Sum (c 1) ];
    }

let q9 _db =
  let nl_pl =
    Plan.Nest_loop
      {
        outer = seq "part" [ Expr.Lt (c S.P.typ, k 15) ];
        inner = idx_scan "lineitem" "l_partkey" (Plan.Key_outer_eq S.P.partkey) [];
        quals = [];
      }
  in
  (* part 0-5, lineitem 6-20 *)
  let nl_ps =
    Plan.Nest_loop
      {
        outer = nl_pl;
        inner = idx_scan "partsupp" "ps_partkey" (Plan.Key_outer_eq 0) [];
        quals = [ Expr.Eq (c (21 + S.PS.suppkey), c (6 + S.L.suppkey)) ];
      }
  in
  (* + partsupp 21-24 *)
  let nl_s =
    Plan.Nest_loop
      {
        outer = nl_ps;
        inner =
          idx_scan "supplier" "s_suppkey" (Plan.Key_outer_eq (6 + S.L.suppkey)) [];
        quals = [];
      }
  in
  (* + supplier 25-27 *)
  let nl_o =
    Plan.Nest_loop
      {
        outer = nl_s;
        inner =
          idx_scan "orders" "o_orderkey" (Plan.Key_outer_eq (6 + S.L.orderkey)) [];
        quals = [];
      }
  in
  (* + orders 28-32 *)
  let projected =
    Plan.Result
      {
        child = nl_o;
        exprs =
          [
            c (25 + S.S.nationkey);
            Expr.Div (c (28 + S.O.orderdate), k 360);
            Expr.Sub
              ( revenue ~ext:(6 + S.L.extendedprice) ~disc:(6 + S.L.discount),
                Expr.Mul (c (21 + S.PS.supplycost), c (6 + S.L.quantity)) );
          ];
      }
  in
  Plan.Group
    {
      child =
        Plan.Sort { child = projected; cols = [ (0, false); (1, false) ] };
      cols = [ 0; 1 ];
      aggs = [ Plan.Sum (c 2) ];
    }

let q10 db =
  let d = date 1993 10 1 in
  let orders =
    date_scan db ~table:"orders" ~col_name:"o_orderdate" ~col:S.O.orderdate
      ~lo:d ~hi:(d + 89) ~quals:[]
  in
  let nl_l =
    Plan.Nest_loop
      {
        outer = orders;
        inner =
          idx_scan "lineitem" "l_orderkey" (Plan.Key_outer_eq S.O.orderkey)
            [ Expr.Eq (c S.L.returnflag, k 2) (* R *) ];
        quals = [];
      }
  in
  (* orders 0-4, lineitem 5-19 *)
  let nl_c =
    Plan.Nest_loop
      {
        outer = nl_l;
        inner = idx_scan "customer" "c_custkey" (Plan.Key_outer_eq S.O.custkey) [];
        quals = [];
      }
  in
  (* + customer 20-23 *)
  let projected =
    Plan.Result
      {
        child = nl_c;
        exprs =
          [
            c 20;
            revenue ~ext:(5 + S.L.extendedprice) ~disc:(5 + S.L.discount);
            c (20 + S.C.acctbal);
          ];
      }
  in
  let grouped =
    Plan.Group
      {
        child = Plan.Sort { child = projected; cols = [ (0, false) ] };
        cols = [ 0 ];
        aggs = [ Plan.Sum (c 1) ];
      }
  in
  Plan.Limit
    {
      child = Plan.Sort { child = grouped; cols = [ (1, true); (0, false) ] };
      limit = 20;
    }

let q11 _db =
  let hj_sn =
    Plan.Hash_join
      {
        outer = seq "supplier" [];
        inner = seq "nation" [ Expr.Eq (c S.N.name, k 7) (* GERMANY *) ];
        outer_col = S.S.nationkey;
        inner_col = S.N.nationkey;
        quals = [];
      }
  in
  let hj_ps =
    Plan.Hash_join
      {
        outer = seq "partsupp" [];
        inner = hj_sn;
        outer_col = S.PS.suppkey;
        inner_col = 0;
        quals = [];
      }
  in
  (* partsupp 0-3, supplier 4-6, nation 7-9 *)
  let projected =
    Plan.Result
      {
        child = hj_ps;
        exprs = [ c S.PS.partkey; Expr.Mul (c S.PS.supplycost, c S.PS.availqty) ];
      }
  in
  let grouped =
    Plan.Group
      {
        child = Plan.Sort { child = projected; cols = [ (0, false) ] };
        cols = [ 0 ];
        aggs = [ Plan.Sum (c 1) ];
      }
  in
  Plan.Limit
    {
      child = Plan.Sort { child = grouped; cols = [ (1, true); (0, false) ] };
      limit = 20;
    }

let q12 db =
  let d = date 1994 1 1 in
  let scan =
    date_scan db ~table:"lineitem" ~col_name:"l_shipdate" ~col:S.L.shipdate
      ~lo:(d - 120) ~hi:(d + 359)
      ~quals:
        [
          Expr.In_list (c S.L.shipmode, [ 2; 5 ] (* MAIL, SHIP *));
          Expr.col_between S.L.receiptdate d (d + 359);
          Expr.Lt (c S.L.commitdate, c S.L.receiptdate);
          Expr.Lt (c S.L.shipdate, c S.L.commitdate);
        ]
  in
  let nl =
    Plan.Nest_loop
      {
        outer = scan;
        inner = idx_scan "orders" "o_orderkey" (Plan.Key_outer_eq S.L.orderkey) [];
        quals = [];
      }
  in
  (* lineitem 0-14, orders 15-19 *)
  let high =
    Expr.Or
      ( Expr.Eq (c (15 + S.O.orderpriority), k 0),
        Expr.Eq (c (15 + S.O.orderpriority), k 1) )
  in
  let projected =
    Plan.Result
      { child = nl; exprs = [ c S.L.shipmode; high; Expr.Not high ] }
  in
  Plan.Group
    {
      child = Plan.Sort { child = projected; cols = [ (0, false) ] };
      cols = [ 0 ];
      aggs = [ Plan.Sum (c 1); Plan.Sum (c 2) ];
    }

let q13 _db =
  let hj =
    Plan.Hash_join
      {
        outer = seq "orders" [];
        inner = seq "customer" [];
        outer_col = S.O.custkey;
        inner_col = S.C.custkey;
        quals = [];
      }
  in
  let grouped =
    Plan.Group
      {
        child = Plan.Sort { child = hj; cols = [ (S.O.custkey, false) ] };
        cols = [ S.O.custkey ];
        aggs = [ Plan.Count ];
      }
  in
  Plan.Limit
    {
      child = Plan.Sort { child = grouped; cols = [ (1, true); (0, false) ] };
      limit = 30;
    }

let q14 db =
  let d = date 1995 9 1 in
  let scan =
    date_scan db ~table:"lineitem" ~col_name:"l_shipdate" ~col:S.L.shipdate
      ~lo:d ~hi:(d + 29) ~quals:[]
  in
  let nl =
    Plan.Nest_loop
      {
        outer = scan;
        inner = idx_scan "part" "p_partkey" (Plan.Key_outer_eq S.L.partkey) [];
        quals = [];
      }
  in
  (* lineitem 0-14, part 15-20 *)
  let rev = revenue ~ext:S.L.extendedprice ~disc:S.L.discount in
  let projected =
    Plan.Result
      {
        child = nl;
        exprs = [ Expr.Mul (rev, Expr.Lt (c (15 + S.P.typ), k 25)); rev ];
      }
  in
  Plan.Agg { child = projected; aggs = [ Plan.Sum (c 0); Plan.Sum (c 1) ] }

let q15 db =
  let d = date 1996 1 1 in
  let scan =
    date_scan db ~table:"lineitem" ~col_name:"l_shipdate" ~col:S.L.shipdate
      ~lo:d ~hi:(d + 89) ~quals:[]
  in
  let grouped =
    Plan.Group
      {
        child = Plan.Sort { child = scan; cols = [ (S.L.suppkey, false) ] };
        cols = [ S.L.suppkey ];
        aggs = [ Plan.Sum (revenue ~ext:S.L.extendedprice ~disc:S.L.discount) ];
      }
  in
  let top =
    Plan.Limit
      {
        child = Plan.Sort { child = grouped; cols = [ (1, true); (0, false) ] };
        limit = 1;
      }
  in
  let nl =
    Plan.Nest_loop
      {
        outer = top;
        inner = idx_scan "supplier" "s_suppkey" (Plan.Key_outer_eq 0) [];
        quals = [];
      }
  in
  (* [suppkey; rev] 0-1, supplier 2-4 *)
  Plan.Result { child = nl; exprs = [ c 2; c 1 ] }

let q16 _db =
  let part =
    seq "part"
      [
        Expr.Ne (c S.P.brand, k 5);
        Expr.In_list (c S.P.size, [ 1; 4; 9; 14; 19; 23; 36; 45 ]);
      ]
  in
  let nl =
    Plan.Nest_loop
      {
        outer = part;
        inner = idx_scan "partsupp" "ps_partkey" (Plan.Key_outer_eq S.P.partkey) [];
        quals = [];
      }
  in
  (* part 0-5, partsupp 6-9 *)
  let projected =
    Plan.Result
      { child = nl; exprs = [ c S.P.brand; c S.P.typ; c S.P.size; c (6 + S.PS.suppkey) ] }
  in
  Plan.Group
    {
      child =
        Plan.Sort
          {
            child = projected;
            cols = [ (0, false); (1, false); (2, false); (3, false) ];
          };
      cols = [ 0; 1; 2 ];
      aggs = [ Plan.Count ];
    }

let q17 _db =
  let part =
    seq "part" [ Expr.Eq (c S.P.brand, k 12); Expr.Eq (c S.P.container, k 7) ]
  in
  let nl =
    Plan.Nest_loop
      {
        outer = part;
        inner =
          idx_scan "lineitem" "l_partkey" (Plan.Key_outer_eq S.P.partkey)
            [ Expr.Lt (c S.L.quantity, k 10) ];
        quals = [];
      }
  in
  let agg =
    Plan.Agg { child = nl; aggs = [ Plan.Sum (c (6 + S.L.extendedprice)) ] }
  in
  Plan.Result { child = agg; exprs = [ Expr.Div (c 0, k 7) ] }

let plan db q =
  match q with
  | 1 -> q1 db
  | 2 -> q2 db
  | 3 -> q3 db
  | 4 -> q4 db
  | 5 -> q5 db
  | 6 -> q6 db
  | 7 -> q7 db
  | 8 -> q8 db
  | 9 -> q9 db
  | 10 -> q10 db
  | 11 -> q11 db
  | 12 -> q12 db
  | 13 -> q13 db
  | 14 -> q14 db
  | 15 -> q15 db
  | 16 -> q16 db
  | 17 -> q17 db
  | _ -> invalid_arg "Queries.plan: query number must be in 1..17"
