(** An OLTP-style workload — the paper's Section 8 names OLTP as the next
    target for the technique. Short, index-driven read transactions over
    the same database: order status (order + its lines), stock check
    (part's suppliers), customer summary (customer + recent orders). Each
    transaction is parsed/planned and run to completion, so the
    instruction stream interleaves many small executor invocations — the
    antithesis of the long DSS scans. *)

type txn =
  | Order_status of int  (** order key *)
  | Stock_check of int  (** part key *)
  | Customer_summary of int  (** customer key *)

val plan : txn -> Stc_db.Plan.t

val mix : Stc_db.Database.t -> seed:int64 -> n:int -> txn list
(** A random transaction mix (45 % order status, 35 % stock check, 20 %
    customer summary) with keys drawn uniformly from the loaded data. *)

val record :
  kernel:Stc_synth.Kernel.t ->
  walker_seed:int64 ->
  db:Stc_db.Database.t ->
  txns:txn list ->
  Stc_trace.Recorder.t
(** Trace the given transactions (buffer pool reset first; one recorder
    mark per transaction). *)
