open Stc_db
module S = Stc_dbdata.Schema
module Rng = Stc_util.Rng
module Recorder = Stc_trace.Recorder

type txn = Order_status of int | Stock_check of int | Customer_summary of int

let c x = Expr.Col x

let idx table col key quals =
  Plan.Index_scan { table; index = table ^ "." ^ col; key; quals }

let plan = function
  | Order_status okey ->
    (* the order and all its lines *)
    let orders = idx "orders" "o_orderkey" (Plan.Key_const_eq okey) [] in
    let nl =
      Plan.Nest_loop
        {
          outer = orders;
          inner = idx "lineitem" "l_orderkey" (Plan.Key_outer_eq S.O.orderkey) [];
          quals = [];
        }
    in
    (* orders 0-4, lineitem 5-19 *)
    Plan.Result
      {
        child = nl;
        exprs =
          [ c 0; c (5 + S.L.linenumber); c (5 + S.L.quantity); c (5 + S.L.shipdate) ];
      }
  | Stock_check pkey ->
    let ps = idx "partsupp" "ps_partkey" (Plan.Key_const_eq pkey) [] in
    let nl =
      Plan.Nest_loop
        {
          outer = ps;
          inner = idx "supplier" "s_suppkey" (Plan.Key_outer_eq S.PS.suppkey) [];
          quals = [];
        }
    in
    (* partsupp 0-3, supplier 4-6 *)
    Plan.Result
      { child = nl; exprs = [ c 0; c 1; c S.PS.availqty; c (4 + S.S.acctbal) ] }
  | Customer_summary ckey ->
    let cust = idx "customer" "c_custkey" (Plan.Key_const_eq ckey) [] in
    let nl =
      Plan.Nest_loop
        {
          outer = cust;
          inner = idx "orders" "o_custkey" (Plan.Key_outer_eq S.C.custkey) [];
          quals = [];
        }
    in
    (* customer 0-3, orders 4-8 *)
    Plan.Limit
      {
        child =
          Plan.Result
            { child = nl; exprs = [ c 0; c (4 + S.O.orderkey); c (4 + S.O.orderdate) ] };
        limit = 10;
      }

let mix db ~seed ~n =
  let rng = Rng.create seed in
  let orders = Heap.n_rows (Database.heap db "orders") in
  let parts = Heap.n_rows (Database.heap db "part") in
  let customers = Heap.n_rows (Database.heap db "customer") in
  List.init n (fun _ ->
      let r = Rng.float rng 1.0 in
      if r < 0.45 then Order_status (1 + Rng.int rng orders)
      else if r < 0.80 then Stock_check (1 + Rng.int rng parts)
      else Customer_summary (1 + Rng.int rng customers))

let txn_name = function
  | Order_status k -> Printf.sprintf "order_status(%d)" k
  | Stock_check k -> Printf.sprintf "stock_check(%d)" k
  | Customer_summary k -> Printf.sprintf "customer_summary(%d)" k

let record ~kernel ~walker_seed ~db ~txns =
  Stc_db.Bufmgr.reset (Database.bufmgr db);
  let recorder = Recorder.create () in
  let walker =
    Stc_synth.Kernel.make_walker kernel ~seed:walker_seed
      ~sink:(Recorder.sink recorder)
  in
  Stc_trace.Probe.with_walker walker (fun () ->
      List.iter
        (fun txn ->
          Recorder.mark recorder (txn_name txn);
          Stc_synth.Kernel.query_setup kernel walker;
          ignore (Exec.run db (plan txn)))
        txns);
  recorder
