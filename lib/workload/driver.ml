module Kernel = Stc_synth.Kernel
module Walker = Stc_trace.Walker
module Probe = Stc_trace.Probe
module Recorder = Stc_trace.Recorder

type job = { db_label : string; db : Stc_db.Database.t; query : int }

let jobs ~dbs ~queries =
  List.concat_map
    (fun (db_label, db) ->
      List.map (fun query -> { db_label; db; query }) queries)
    dbs

let job_name j = Printf.sprintf "%s/Q%d" j.db_label j.query

let run_traced ~kernel ~walker ?(on_boundary = fun _ -> ()) jobs =
  Probe.with_walker walker @@ fun () ->
  List.iter
    (fun job ->
      on_boundary job;
      Kernel.query_setup kernel walker;
      let plan = Queries.plan job.db job.query in
      ignore (Stc_db.Exec.run job.db plan))
    jobs

let record ?metrics ?(prefix = "") ?progress ~kernel ~walker_seed ~dbs
    ~queries () =
  (* start from a cold, reproducible buffer pool *)
  List.iter (fun (_, db) -> Stc_db.Bufmgr.reset (Stc_db.Database.bufmgr db)) dbs;
  let recorder = Recorder.create () in
  let sink =
    match progress with
    | None -> Recorder.sink recorder
    | Some p ->
      fun bid ->
        Recorder.sink recorder bid;
        Stc_obs.Progress.step p
  in
  let walker = Kernel.make_walker kernel ~seed:walker_seed ~sink in
  (match metrics with
  | Some reg ->
    Walker.attach_metrics walker reg ~prefix;
    Recorder.attach_metrics recorder reg ~prefix
  | None -> ());
  run_traced ~kernel ~walker
    ~on_boundary:(fun j -> Recorder.mark recorder (job_name j))
    (jobs ~dbs ~queries);
  (match progress with Some p -> Stc_obs.Progress.finish p | None -> ());
  recorder
