(** Hand-written execution plans for the 17 read-only TPC-D queries
    (simplified to our schema, preserving each query's plan {e shape}:
    which operators run, which indexes are used, join orders).

    Plans adapt to the database variant: range predicates use B-tree index
    scans on the B-tree database and sequential scans with residual quals
    on the Hash database, as Section 3 / Section 7 of the paper implies. *)

val plan : Stc_db.Database.t -> int -> Stc_db.Plan.t
(** [plan db q] for [q] in 1..17. Raises [Invalid_argument] otherwise. *)

val all : int list
(** [1; ...; 17]. *)

val training_set : int list
(** Queries 3, 4, 5, 6, 9 — profiled on the B-tree database only. *)

val test_set : int list
(** Queries 2, 3, 4, 6, 11, 12, 13, 14, 15, 17 — run on both databases. *)
