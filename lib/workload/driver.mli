(** Workload driver: run query sets over database variants under an
    installed trace walker, with the per-query parse/optimize auto-walk the
    paper's setup implies ("all queries were run to completion"). *)

type job = { db_label : string; db : Stc_db.Database.t; query : int }

val jobs :
  dbs:(string * Stc_db.Database.t) list -> queries:int list -> job list
(** Cartesian product, databases outermost. *)

val run_traced :
  kernel:Stc_synth.Kernel.t ->
  walker:Stc_trace.Walker.t ->
  ?on_boundary:(job -> unit) ->
  job list ->
  unit
(** Execute every job to completion under the walker: per job, walk the
    parser and optimizer, then run the plan through the instrumented
    executor. [on_boundary] fires before each job (e.g. to place recorder
    marks and reset profile adjacency). *)

val record :
  ?metrics:Stc_obs.Registry.t ->
  ?prefix:string ->
  ?progress:Stc_obs.Progress.t ->
  kernel:Stc_synth.Kernel.t ->
  walker_seed:int64 ->
  dbs:(string * Stc_db.Database.t) list ->
  queries:int list ->
  unit ->
  Stc_trace.Recorder.t
(** Convenience: record the whole block trace of a query set, with one
    mark per job named ["<db>/Q<n>"]. Buffer pools are reset first, so the
    same inputs always produce the same trace. With [?metrics], the
    walker's and recorder's counters are registered under
    [prefix ^ "walker."] / [prefix ^ "trace."]; with [?progress], the
    reporter is stepped once per recorded block and finished at the
    end. *)

val job_name : job -> string
