(** A trivial, pure plan interpreter over the generated tables — the
    correctness oracle for the instrumented executor. It shares no code
    with the engine (its own expression evaluator, joins by
    list-comprehension), but reproduces the engine's tuple ordering so
    results are comparable list-for-list. *)

type t

val of_data : Stc_dbdata.Datagen.t -> t

val run : t -> Stc_db.Plan.t -> int array list
