module S = Stc_dbdata.Schema
module Plan = Stc_db.Plan
module Expr = Stc_db.Expr

type t = { tables : (string * int array array) list }

let of_data data =
  { tables = List.map (fun tb -> (tb.S.name, Stc_dbdata.Datagen.table data tb.S.name)) S.all }

let table t name = List.assoc name t.tables

let b2i b = if b then 1 else 0

(* Pure expression evaluation, mirroring Stc_db.Expr.eval semantics. *)
let rec eval e (tu : int array) =
  match e with
  | Expr.Col i -> tu.(i)
  | Expr.Const v -> v
  | Expr.Add (l, r) -> eval l tu + eval r tu
  | Expr.Sub (l, r) -> eval l tu - eval r tu
  | Expr.Mul (l, r) -> eval l tu * eval r tu
  | Expr.Div (l, r) ->
    let rv = eval r tu in
    if rv = 0 then 0 else eval l tu / rv
  | Expr.Eq (l, r) -> b2i (eval l tu = eval r tu)
  | Expr.Ne (l, r) -> b2i (eval l tu <> eval r tu)
  | Expr.Lt (l, r) -> b2i (eval l tu < eval r tu)
  | Expr.Le (l, r) -> b2i (eval l tu <= eval r tu)
  | Expr.Gt (l, r) -> b2i (eval l tu > eval r tu)
  | Expr.Ge (l, r) -> b2i (eval l tu >= eval r tu)
  | Expr.And (l, r) -> b2i (eval l tu <> 0 && eval r tu <> 0)
  | Expr.Or (l, r) -> b2i (eval l tu <> 0 || eval r tu <> 0)
  | Expr.Not s -> b2i (eval s tu = 0)
  | Expr.In_list (s, vs) -> b2i (List.mem (eval s tu) vs)

let quals_pass quals tu = List.for_all (fun q -> eval q tu <> 0) quals

let index_column index =
  match String.index_opt index '.' with
  | Some i ->
    let tbl = String.sub index 0 i in
    let col = String.sub index (i + 1) (String.length index - i - 1) in
    (tbl, S.column (S.find tbl) col)
  | None -> invalid_arg "Oracle: bad index name"

let concat = Stc_db.Tuple.concat

let agg_expr = function
  | Plan.Count -> Expr.Const 1
  | Plan.Sum e | Plan.Min e | Plan.Max e | Plan.Avg e -> e

let finalize spec values =
  match spec with
  | Plan.Count -> List.length values
  | Plan.Sum _ -> List.fold_left ( + ) 0 values
  | Plan.Min _ -> List.fold_left min max_int values
  | Plan.Max _ -> List.fold_left max min_int values
  | Plan.Avg _ ->
    if values = [] then 0
    else List.fold_left ( + ) 0 values / List.length values

(* Stable group-by over an already-sorted stream. *)
let group_sorted cols aggs rows =
  let key tu = List.map (fun c -> tu.(c)) cols in
  let rec go acc current = function
    | [] -> (
      match current with
      | None -> List.rev acc
      | Some (k, members) -> List.rev ((k, List.rev members) :: acc))
    | tu :: rest -> (
      match current with
      | Some (k, members) when key tu = k -> go acc (Some (k, tu :: members)) rest
      | Some (k, members) -> go ((k, List.rev members) :: acc) (Some (key tu, [ tu ])) rest
      | None -> go acc (Some (key tu, [ tu ])) rest)
  in
  let groups = go [] None rows in
  List.map
    (fun (k, members) ->
      let aggvals =
        List.map
          (fun spec -> finalize spec (List.map (eval (agg_expr spec)) members))
          aggs
      in
      Array.of_list (k @ aggvals))
    groups

let rec run_plan t param (plan : Plan.t) : int array list =
  match plan with
  | Plan.Seq_scan { table = name; quals } ->
    Array.to_list (table t name) |> List.filter (quals_pass quals)
  | Plan.Index_scan { table = name; index; key; quals } ->
    let _, col = index_column index in
    let rows = Array.to_list (table t name) in
    let rows =
      match key with
      | Plan.Key_const_eq v -> List.filter (fun tu -> tu.(col) = v) rows
      | Plan.Key_outer_eq oc -> (
        match param with
        | Some outer -> List.filter (fun tu -> tu.(col) = outer.(oc)) rows
        | None -> invalid_arg "Oracle: parameterized scan without param")
      | Plan.Key_range (lo, hi) ->
        let ok v =
          (match lo with Some l -> v >= l | None -> true)
          && match hi with Some h -> v <= h | None -> true
        in
        (* a B-tree range scan returns key order (ties in heap order) *)
        List.stable_sort
          (fun a b -> compare a.(col) b.(col))
          (List.filter (fun tu -> ok tu.(col)) rows)
    in
    List.filter (quals_pass quals) rows
  | Plan.Nest_loop { outer; inner; quals } ->
    let outers = run_plan t param outer in
    List.concat_map
      (fun ot ->
        run_plan t (Some ot) inner
        |> List.map (concat ot)
        |> List.filter (quals_pass quals))
      outers
  | Plan.Hash_join { outer; inner; outer_col; inner_col; quals } ->
    let inners = run_plan t param inner in
    let outers = run_plan t param outer in
    List.concat_map
      (fun ot ->
        (* Hashtbl.find_all returns most-recently-added first, i.e. the
           reverse of the build order. *)
        List.rev
          (List.filter (fun it -> it.(inner_col) = ot.(outer_col)) inners)
        |> List.map (concat ot)
        |> List.filter (quals_pass quals))
      outers
  | Plan.Merge_join { outer; inner; outer_col; inner_col; quals } ->
    let inners = run_plan t param inner in
    let outers = run_plan t param outer in
    List.concat_map
      (fun ot ->
        List.filter (fun it -> it.(inner_col) = ot.(outer_col)) inners
        |> List.map (concat ot)
        |> List.filter (quals_pass quals))
      outers
  | Plan.Sort { child; cols } ->
    let rows = run_plan t param child in
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (c, desc) :: rest ->
          let d = compare a.(c) b.(c) in
          let d = if desc then -d else d in
          if d <> 0 then d else go rest
      in
      go cols
    in
    List.stable_sort cmp rows
  | Plan.Agg { child; aggs } ->
    let rows = run_plan t param child in
    [
      Array.of_list
        (List.map
           (fun spec -> finalize spec (List.map (eval (agg_expr spec)) rows))
           aggs);
    ]
  | Plan.Group { child; cols; aggs } ->
    group_sorted cols aggs (run_plan t param child)
  | Plan.Limit { child; limit } ->
    let rows = run_plan t param child in
    List.filteri (fun i _ -> i < limit) rows
  | Plan.Material { child } -> run_plan t param child
  | Plan.Result { child; exprs } ->
    run_plan t param child
    |> List.map (fun tu -> Array.of_list (List.map (fun e -> eval e tu) exprs))

let run t plan = run_plan t None plan
