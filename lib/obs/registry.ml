type clock = unit -> float

type node = {
  node_name : string;
  mutable calls : int;
  mutable seconds : float;
  mutable children_rev : node list;
}

type entry =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type t = {
  clock : clock;
  index : (string, entry) Hashtbl.t;
  root : node;
  mutable stack : node list;  (* innermost open span first; [] = root *)
  mutable events_rev : (string * (string * Json.t) list) list;
}

let create ?(clock = Unix.gettimeofday) () =
  {
    clock;
    index = Hashtbl.create 64;
    root = { node_name = ""; calls = 0; seconds = 0.0; children_rev = [] };
    stack = [];
    events_rev = [];
  }

(* ---------- metrics ---------- *)

let register t name entry =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Stc_obs.Registry: duplicate metric %S" name);
  Hashtbl.replace t.index name entry

let counter t name =
  match Hashtbl.find_opt t.index name with
  | Some (Counter c) -> c
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Stc_obs.Registry: %S is not a counter" name)
  | None ->
    let c = Metric.Counter.make name in
    Hashtbl.replace t.index name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.index name with
  | Some (Gauge g) -> g
  | Some _ ->
    invalid_arg (Printf.sprintf "Stc_obs.Registry: %S is not a gauge" name)
  | None ->
    let g = Metric.Gauge.make name in
    Hashtbl.replace t.index name (Gauge g);
    g

let histogram ?max_value t name =
  match Hashtbl.find_opt t.index name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Stc_obs.Registry: %S is not a histogram" name)
  | None ->
    let h = Metric.Histogram.make ?max_value name in
    Hashtbl.replace t.index name (Histogram h);
    h

let attach_counter ?(prefix = "") t c =
  register t (prefix ^ Metric.Counter.name c) (Counter c)

let attach_gauge ?(prefix = "") t g =
  register t (prefix ^ Metric.Gauge.name g) (Gauge g)

let attach_histogram ?(prefix = "") t h =
  register t (prefix ^ Metric.Histogram.name h) (Histogram h)

(* ---------- spans ---------- *)

module Span = struct
  type info = { path : string; depth : int; calls : int; seconds : float }
end

let span t name f =
  let parent = match t.stack with [] -> t.root | n :: _ -> n in
  let node =
    match
      List.find_opt (fun n -> String.equal n.node_name name) parent.children_rev
    with
    | Some n -> n
    | None ->
      let n = { node_name = name; calls = 0; seconds = 0.0; children_rev = [] } in
      parent.children_rev <- n :: parent.children_rev;
      n
  in
  node.calls <- node.calls + 1;
  t.stack <- node :: t.stack;
  let t0 = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      node.seconds <- node.seconds +. (t.clock () -. t0);
      match t.stack with
      | top :: rest when top == node -> t.stack <- rest
      | _ -> () (* unbalanced exit via an outer exception; leave as-is *))
    f

(* ---------- events ---------- *)

let event t ~kind fields = t.events_rev <- (kind, fields) :: t.events_rev

(* ---------- merge ---------- *)

let merge ~into src =
  if into == src then
    invalid_arg "Stc_obs.Registry.merge: cannot merge a registry into itself";
  (* metrics: counters sum, gauges take the source's (last-write-wins
     across a merge sequence), histograms union their buckets. Re-adding
     a bucket's weight at its lower bound is exact because buckets are
     geometric: every value of [lo, hi) lands back in the same bucket. *)
  Hashtbl.iter
    (fun name entry ->
      match entry with
      | Counter c ->
        let dst =
          match Hashtbl.find_opt into.index name with
          | Some (Counter d) -> d
          | Some _ ->
            invalid_arg
              (Printf.sprintf "Stc_obs.Registry.merge: %S is not a counter"
                 name)
          | None ->
            let d = Metric.Counter.make name in
            Hashtbl.replace into.index name (Counter d);
            d
        in
        Metric.Counter.add dst (Metric.Counter.value c)
      | Gauge g ->
        let dst =
          match Hashtbl.find_opt into.index name with
          | Some (Gauge d) -> d
          | Some _ ->
            invalid_arg
              (Printf.sprintf "Stc_obs.Registry.merge: %S is not a gauge" name)
          | None ->
            let d = Metric.Gauge.make name in
            Hashtbl.replace into.index name (Gauge d);
            d
        in
        Metric.Gauge.set dst (Metric.Gauge.value g)
      | Histogram h ->
        let dst =
          match Hashtbl.find_opt into.index name with
          | Some (Histogram d) -> d
          | Some _ ->
            invalid_arg
              (Printf.sprintf "Stc_obs.Registry.merge: %S is not a histogram"
                 name)
          | None ->
            let d = Metric.Histogram.make name in
            Hashtbl.replace into.index name (Histogram d);
            d
        in
        List.iter
          (fun (lo, _, w) -> Metric.Histogram.add dst ~weight:w lo)
          (Metric.Histogram.buckets h))
    src.index;
  (* spans: sum calls and seconds node-wise, grafting unknown subtrees
     under the destination's root in the source's first-call order *)
  let rec merge_node dst_parent src_node =
    let dst_node =
      match
        List.find_opt
          (fun n -> String.equal n.node_name src_node.node_name)
          dst_parent.children_rev
      with
      | Some n -> n
      | None ->
        let n =
          {
            node_name = src_node.node_name;
            calls = 0;
            seconds = 0.0;
            children_rev = [];
          }
        in
        dst_parent.children_rev <- n :: dst_parent.children_rev;
        n
    in
    dst_node.calls <- dst_node.calls + src_node.calls;
    dst_node.seconds <- dst_node.seconds +. src_node.seconds;
    List.iter (merge_node dst_node) (List.rev src_node.children_rev)
  in
  List.iter (merge_node into.root) (List.rev src.root.children_rev);
  (* events: append the source's, preserving insertion order *)
  into.events_rev <- src.events_rev @ into.events_rev

(* ---------- snapshots ---------- *)

let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters t =
  Hashtbl.fold
    (fun name e acc ->
      match e with
      | Counter c -> (name, Metric.Counter.value c) :: acc
      | _ -> acc)
    t.index []
  |> by_name

let gauges t =
  Hashtbl.fold
    (fun name e acc ->
      match e with Gauge g -> (name, Metric.Gauge.value g) :: acc | _ -> acc)
    t.index []
  |> by_name

let histograms t =
  Hashtbl.fold
    (fun name e acc ->
      match e with Histogram h -> (name, h) :: acc | _ -> acc)
    t.index []
  |> by_name

let spans t =
  let rec walk prefix depth node acc =
    let path =
      if prefix = "" then node.node_name else prefix ^ "/" ^ node.node_name
    in
    let acc =
      { Span.path; depth; calls = node.calls; seconds = node.seconds } :: acc
    in
    List.fold_left
      (fun acc child -> walk path (depth + 1) child acc)
      acc
      (List.rev node.children_rev)
  in
  List.fold_left
    (fun acc child -> walk "" 0 child acc)
    []
    (List.rev t.root.children_rev)
  |> List.rev

let events t = List.rev t.events_rev
