let str_field name r =
  match Json.member name r with Some (Json.Str s) -> Some s | _ -> None

let record_type r = Option.value ~default:"?" (str_field "type" r)

(* Ignore-prefix filtering, applied before keying so both files number the
   surviving repeats identically. *)
let ignored ~ignores r =
  ignores <> []
  &&
  let tag =
    match record_type r with
    | "counter" | "gauge" | "histo" -> str_field "name" r
    | "event" -> str_field "kind" r
    | _ -> None
  in
  match tag with
  | None -> false
  | Some t -> List.exists (fun p -> String.starts_with ~prefix:p t) ignores

(* Identifying key per record; numbered suffix disambiguates repeats
   (events of the same kind are paired in emission order). *)
let keys records =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun r ->
      let base =
        match record_type r with
        | "meta" -> None
        | "counter" | "gauge" | "histo" ->
          Some ("metric:" ^ Option.value ~default:"?" (str_field "name" r))
        | "span" ->
          Some ("span:" ^ Option.value ~default:"?" (str_field "path" r))
        | "event" ->
          Some ("event:" ^ Option.value ~default:"?" (str_field "kind" r))
        | t -> Some ("unknown:" ^ t)
      in
      match base with
      | None -> None
      | Some base ->
        let n = Option.value ~default:0 (Hashtbl.find_opt seen base) in
        Hashtbl.replace seen base (n + 1);
        Some ((base, n), r))
    records

let close_enough tolerance a b =
  a = b
  || abs_float (a -. b) <= tolerance *. Float.max (abs_float a) (abs_float b)

let rec compare_json ~tolerance ~ignore_seconds ~optional ~report path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    let names =
      List.map fst fa
      @ List.filter (fun k -> not (List.mem_assoc k fa)) (List.map fst fb)
    in
    List.iter
      (fun k ->
        if not (ignore_seconds && k = "seconds") then
          match (List.assoc_opt k fa, List.assoc_opt k fb) with
          | Some va, Some vb ->
            compare_json ~tolerance ~ignore_seconds ~optional ~report
              (path ^ "." ^ k) va vb
          (* optional fields (histo quantiles, added in export schema 3)
             only count as drift when both sides carry them *)
          | Some _, None when not (List.mem k optional) ->
            report (Printf.sprintf "%s: only in A" (path ^ "." ^ k))
          | None, Some _ when not (List.mem k optional) ->
            report (Printf.sprintf "%s: only in B" (path ^ "." ^ k))
          | _ -> ())
      names
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then
      report
        (Printf.sprintf "%s: lengths differ (%d vs %d)" path (List.length la)
           (List.length lb))
    else
      List.iteri
        (fun i (va, vb) ->
          compare_json ~tolerance ~ignore_seconds ~optional ~report
            (Printf.sprintf "%s[%d]" path i)
            va vb)
        (List.combine la lb)
  | a, b -> (
    match (Json.to_float a, Json.to_float b) with
    | Some fa, Some fb ->
      if not (close_enough tolerance fa fb) then
        report (Printf.sprintf "%s: %g vs %g" path fa fb)
    | _ ->
      if a <> b then
        report
          (Printf.sprintf "%s: %s vs %s" path (Json.to_string a)
             (Json.to_string b)))

let diff_records ?(tolerance = 0.0) ?(ignores = []) ~a_label ~b_label ra rb =
  let drift = ref [] in
  let report msg = drift := msg :: !drift in
  let load records =
    keys (List.filter (fun r -> not (ignored ~ignores r)) records)
  in
  let a = load ra and b = load rb in
  let tbl_b = Hashtbl.create 256 in
  List.iter (fun (k, r) -> Hashtbl.replace tbl_b k r) b;
  List.iter
    (fun ((base, n), ra) ->
      match Hashtbl.find_opt tbl_b (base, n) with
      | None -> report (Printf.sprintf "%s#%d: only in %s" base n a_label)
      | Some rb ->
        let ignore_seconds = record_type ra = "span" in
        let optional =
          if record_type ra = "histo" then [ "p50"; "p90"; "p99" ] else []
        in
        compare_json ~tolerance ~ignore_seconds ~optional ~report
          (Printf.sprintf "%s#%d" base n)
          ra rb)
    a;
  let tbl_a = Hashtbl.create 256 in
  List.iter (fun (k, r) -> Hashtbl.replace tbl_a k r) a;
  List.iter
    (fun ((base, n), _) ->
      if not (Hashtbl.mem tbl_a (base, n)) then
        report (Printf.sprintf "%s#%d: only in %s" base n b_label))
    b;
  (List.rev !drift, List.length a)

let load_file path =
  match
    let ic = open_in path in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    doc
  with
  | exception Sys_error e -> Error e
  | doc -> (
    match Json.lines doc with
    | exception Failure e -> Error (Printf.sprintf "%s: %s" path e)
    | [] -> Error (Printf.sprintf "%s: no records (empty or truncated export)" path)
    | records -> Ok records)
