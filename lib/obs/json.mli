(** A minimal JSON value type with a serializer and a parser, covering
    exactly the subset the metrics exporter produces (objects, arrays,
    strings, 63-bit ints, doubles, booleans, null). Kept here so that the
    exporter, [tools/metrics_diff] and the tests need no external JSON
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats are printed with the shortest
    ["%g"] precision that round-trips; non-finite floats become [null]. *)

val of_string : string -> t
(** Parse one JSON value. Raises [Failure] with a position message on
    malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or when the value is not an object. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a float. *)

val lines : string -> t list
(** Parse a JSONL document: one value per non-empty line. *)
