module Tbl = Stc_util.Tbl
module Stats = Stc_util.Stats

(* 2: `table34.cell`/`ablation.cell` events emit `"cfa_kb":null` (not -1)
   for layouts without a Conflict-Free Area.
   3: histo records carry p50/p90/p99 summary fields (bucket lower
   bounds, so they stay exact across shard merges); Diff treats them as
   optional, so schema-2 exports still compare clean. *)
let schema_version = 3

(* ---------- JSONL ---------- *)

(* Quantile summaries over the geometric buckets: each bucket's lower
   bound stands in for its values, so the result is one of the bucket
   bounds — deterministic, and invariant under shard merging (which
   unions buckets weight-for-weight). [null] on an empty histogram. *)
let histo_quantiles h =
  match Metric.Histogram.buckets h with
  | [] -> [ ("p50", Json.Null); ("p90", Json.Null); ("p99", Json.Null) ]
  | bks ->
    let pairs = Array.of_list (List.map (fun (lo, _, w) -> (lo, w)) bks) in
    let q p = Json.Float (Stats.weighted_percentile pairs p) in
    [ ("p50", q 0.5); ("p90", q 0.9); ("p99", q 0.99) ]

let records t =
  let meta = Json.Obj [ ("type", Str "meta"); ("schema", Int schema_version) ] in
  let counters =
    List.map
      (fun (name, v) ->
        Json.Obj [ ("type", Str "counter"); ("name", Str name); ("value", Int v) ])
      (Registry.counters t)
  in
  let gauges =
    List.map
      (fun (name, v) ->
        Json.Obj [ ("type", Str "gauge"); ("name", Str name); ("value", Float v) ])
      (Registry.gauges t)
  in
  let histos =
    List.map
      (fun (name, h) ->
        Json.Obj
          ([
             ("type", Json.Str "histo");
             ("name", Json.Str name);
             ("total", Json.Int (Metric.Histogram.total h));
           ]
          @ histo_quantiles h
          @ [
              ( "buckets",
                Json.List
                  (List.map
                     (fun (lo, hi, w) ->
                       Json.List [ Json.Int lo; Json.Int hi; Json.Int w ])
                     (Metric.Histogram.buckets h)) );
            ]))
      (Registry.histograms t)
  in
  let spans =
    List.map
      (fun (i : Registry.Span.info) ->
        Json.Obj
          [
            ("type", Str "span");
            ("path", Str i.Registry.Span.path);
            ("depth", Int i.Registry.Span.depth);
            ("calls", Int i.Registry.Span.calls);
            ("seconds", Float i.Registry.Span.seconds);
          ])
      (Registry.spans t)
  in
  let events =
    List.map
      (fun (kind, fields) ->
        Json.Obj ((("type", Json.Str "event") :: ("kind", Str kind) :: fields)))
      (Registry.events t)
  in
  (meta :: counters) @ gauges @ histos @ spans @ events

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Json.to_string r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

(* ---------- text summary ---------- *)

let fsec s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else Printf.sprintf "%.1fms" (s *. 1000.0)

let add_section buf title = Buffer.add_string buf ("-- " ^ title ^ " --\n")

let summary t =
  let buf = Buffer.create 1024 in
  let counters = Registry.counters t and gauges = Registry.gauges t in
  if counters <> [] || gauges <> [] then begin
    add_section buf "metrics";
    let tbl = Tbl.create ~headers:[ ("name", Tbl.Left); ("value", Tbl.Right) ] in
    List.iter
      (fun (name, v) -> Tbl.add_row tbl [ name; string_of_int v ])
      counters;
    List.iter
      (fun (name, v) -> Tbl.add_row tbl [ name; Printf.sprintf "%g" v ])
      gauges;
    Buffer.add_string buf (Tbl.render tbl);
    Buffer.add_char buf '\n'
  end;
  let histos = Registry.histograms t in
  if histos <> [] then begin
    add_section buf "histograms";
    let tbl =
      Tbl.create
        ~headers:
          [
            ("name", Tbl.Left);
            ("total", Tbl.Right);
            ("p50", Tbl.Right);
            ("p99", Tbl.Right);
            ("buckets", Tbl.Left);
          ]
    in
    List.iter
      (fun (name, h) ->
        let bks = Metric.Histogram.buckets h in
        let shape =
          String.concat " "
            (List.map (fun (lo, _, w) -> Printf.sprintf "%d:%d" lo w) bks)
        in
        let q p =
          match bks with
          | [] -> "-"
          | _ ->
            let pairs =
              Array.of_list (List.map (fun (lo, _, w) -> (lo, w)) bks)
            in
            Printf.sprintf "%g" (Stats.weighted_percentile pairs p)
        in
        Tbl.add_row tbl
          [ name; string_of_int (Metric.Histogram.total h); q 0.5; q 0.99; shape ])
      histos;
    Buffer.add_string buf (Tbl.render tbl);
    Buffer.add_char buf '\n'
  end;
  let spans = Registry.spans t in
  if spans <> [] then begin
    add_section buf "spans";
    let tbl =
      Tbl.create
        ~headers:
          [ ("phase", Tbl.Left); ("calls", Tbl.Right); ("wall", Tbl.Right) ]
    in
    List.iter
      (fun (i : Registry.Span.info) ->
        let indent = String.make (2 * i.Registry.Span.depth) ' ' in
        Tbl.add_row tbl
          [
            indent ^ Filename.basename i.Registry.Span.path;
            string_of_int i.Registry.Span.calls;
            fsec i.Registry.Span.seconds;
          ])
      spans;
    Buffer.add_string buf (Tbl.render tbl);
    Buffer.add_char buf '\n'
  end;
  let events = Registry.events t in
  if events <> [] then begin
    add_section buf "events";
    (* group by kind, keeping first-seen order *)
    let kinds = ref [] in
    List.iter
      (fun (kind, fields) ->
        match List.assoc_opt kind !kinds with
        | Some l -> l := fields :: !l
        | None -> kinds := !kinds @ [ (kind, ref [ fields ]) ])
      events;
    let tbl =
      Tbl.create
        ~headers:
          [
            ("kind", Tbl.Left);
            ("n", Tbl.Right);
            ("field", Tbl.Left);
            ("median", Tbl.Right);
            ("geomean", Tbl.Right);
          ]
    in
    List.iter
      (fun (kind, cells) ->
        let cells = List.rev !cells in
        let n = List.length cells in
        (* numeric fields, in the order they appear in the first cell *)
        let field_names =
          match cells with
          | [] -> []
          | first :: _ ->
            List.filter_map
              (fun (k, v) ->
                match Json.to_float v with Some _ -> Some k | None -> None)
              first
        in
        if field_names = [] then
          Tbl.add_row tbl [ kind; string_of_int n; "-"; "-"; "-" ]
        else
          List.iteri
            (fun i field ->
              let vals =
                List.filter_map
                  (fun fields ->
                    Option.bind (List.assoc_opt field fields) Json.to_float)
                  cells
              in
              let vals = Array.of_list vals in
              let median =
                if Array.length vals = 0 then "-"
                else Printf.sprintf "%.3g" (Stats.median vals)
              in
              let geomean =
                if
                  Array.length vals = 0
                  || Array.exists (fun v -> v <= 0.0) vals
                then "-"
                else Printf.sprintf "%.3g" (Stats.geomean vals)
              in
              Tbl.add_row tbl
                [
                  (if i = 0 then kind else "");
                  (if i = 0 then string_of_int n else "");
                  field;
                  median;
                  geomean;
                ])
            field_names)
      !kinds;
    Buffer.add_string buf (Tbl.render tbl);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let print_summary t = print_string (summary t)
