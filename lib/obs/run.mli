(** The run context: one value carrying everything an entry point needs
    to know about {e how} to run — observability sinks, seeding, and
    parallelism — so that APIs take a single [?ctx] instead of growing a
    [?metrics]/[?progress]/[?seed]/[?jobs] optional each.

    [Stc_core.Run] re-exports this module; library users normally write

    {[
      let ctx =
        Run.default
        |> Run.with_metrics registry
        |> Run.with_seed 1
        |> Run.with_jobs 4
      in
      let pl = Pipeline.run ~ctx () in
      let rows = Experiments.simulate ~ctx pl in ...
    ]}

    The record is transparent: [{ ctx with jobs = 1 }] is fine too. *)

type ctx = {
  metrics : Registry.t option;
      (** Registry collecting counters/spans/events; [None] = don't. *)
  progress : bool;  (** Report rate/ETA lines on stderr. *)
  seed : int option;
      (** Master seed; entry points that build randomized state derive
          their sub-seeds from it (see {!Stc_core.Pipeline.seeded}). *)
  jobs : int;
      (** Parallelism for grid phases: domains used by {!Stc_par.Pool}.
          [1] = the exact serial path, never spawning a domain. *)
  store : string option;
      (** Artifact-store directory ({!Stc_store}): entry points consult
          it before recomputing traces, layouts, packed images and
          simulation results, and write what they computed back. [None]
          = always recompute. The type is a path, not a store handle, so
          that this module stays below [lib/store] in the dependency
          order; consumers open a handle with [Stc_store.of_ctx]. *)
  trace : Trace.t option;
      (** Timeline tracer ({!Trace}): entry points emit per-phase,
          per-cell and per-replay slices into it, and {!Stc_par.Pool}
          records chunk dispatch when handed the same tracer. [None]
          (the default) disables tracing at the cost of one branch per
          instrumentation site. *)
}

val default : ctx
(** [{ metrics = None; progress = false; seed = None; jobs = 1;
    store = None; trace = None }] — observe nothing, derive nothing, run
    serially, recompute everything. *)

(** {2 Builders} *)

val with_metrics : Registry.t -> ctx -> ctx

val with_progress : bool -> ctx -> ctx

val with_seed : int -> ctx -> ctx

val with_jobs : int -> ctx -> ctx
(** Clamped to at least 1. *)

val with_store : string -> ctx -> ctx
(** Cache artifacts under the given directory (created on first use). *)

val with_trace : Trace.t -> ctx -> ctx
(** Record timeline events into the given tracer. *)

(** {2 Helpers for ctx-threading code} *)

val span : ctx -> string -> (unit -> 'a) -> 'a
(** {!Registry.span} when metrics are on, a {!Trace.span} slice when
    tracing is on (both when both), plain call otherwise. *)

val event : ctx -> kind:string -> (string * Json.t) list -> unit
(** {!Registry.event} when metrics are on, dropped otherwise. *)

val reporter :
  ctx -> ?interval:int -> ?total:int -> label:string -> unit -> Progress.t option
(** A {!Progress} reporter when [ctx.progress], [None] otherwise. *)
