(** A cheap progress reporter for multi-million-event phases (trace
    recording, grid simulation), replacing bare [Printf ... %!] lines.

    [step] is a counter increment plus one comparison; a report line
    (rate, and ETA when a total is known) is emitted only every
    [interval] events, so it is safe on hot paths. Reports go through an
    [emit] function (default: carriage-return overwriting on stderr) and
    never into the metrics registry — they are transient UI, not data. *)

type t

val create :
  ?interval:int ->
  ?total:int ->
  ?clock:Registry.clock ->
  ?emit:(string -> unit) ->
  label:string ->
  unit ->
  t
(** Defaults: [interval = 1_000_000] events between reports, no known
    total (rate only, no ETA), wall clock, emit to stderr. *)

val step : t -> unit
(** Count one event. *)

val add : t -> int -> unit
(** Count [n] events at once (reports at most once per call). *)

val count : t -> int

val finish : t -> unit
(** Emit a final summary line and stop reporting. With a known total the
    line is [label: N/TOTAL (100%) in T (R/s)] — always rendered, even
    when the last counted events never crossed a report interval (the
    parallel atomic-drain pattern ends this way). Without a total it is
    [label: N events in T (R/s)]. Idempotent. *)
