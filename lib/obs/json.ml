type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- serialization ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  (* shortest %g rendering that round-trips, so identical doubles always
     serialize identically (metrics_diff relies on this) *)
  let s12 = Printf.sprintf "%.12g" v in
  let s = if float_of_string s12 = v then s12 else Printf.sprintf "%.17g" v in
  (* "1e+06" and "1.5" are valid JSON; a bare mantissa like "2" is not
     distinguishable from an int, which is fine for our schema *)
  s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
    if Float.is_finite v then Buffer.add_string buf (float_repr v)
    else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type state = { s : string; mutable pos : int }

let fail st msg = failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg st.pos)

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.equal (String.sub st.s st.pos n) word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents buf
    else if c = '\\' then begin
      (if st.pos >= String.length st.s then fail st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then fail st "short \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
         in
         (* exporter only emits \u00xx control escapes; decode the
            latin-1 range and replace anything wider *)
         if code < 0x100 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_char buf '?'
       | _ -> fail st "bad escape");
      go ()
    end
    else begin
      Buffer.add_char buf c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some v -> Float v
    | None -> fail st "bad number"
  else
    match int_of_string_opt tok with
    | Some v -> Int v
    | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields_loop ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items_loop ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some _ -> fail st "unexpected character"
  | None -> fail st "unexpected end of input"

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float v -> Some v
  | _ -> None

let lines doc =
  String.split_on_char '\n' doc
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else Some (of_string line))
