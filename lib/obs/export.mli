(** Serializing a finished {!Registry} — to JSONL for machine consumption
    (the [BENCH_*.json]-style perf-trajectory artifacts, diffed by
    [tools/metrics_diff]) and to an aligned text summary for humans.

    JSONL schema, one object per line, in this order:
    - [{"type":"meta","schema":3}] — 2 made cell events use [null] (not
      [-1]) for the missing [cfa_kb] of CFA-less layouts; 3 added the
      histo quantile fields
    - [{"type":"counter","name":N,"value":I}] — sorted by name
    - [{"type":"gauge","name":N,"value":F}] — sorted by name
    - [{"type":"histo","name":N,"total":I,"p50":F,"p90":F,"p99":F,
      "buckets":[[lo,hi,w],...]}] — the quantiles are bucket lower
      bounds ({!Stc_util.Stats.weighted_percentile}), exact under shard
      merges, [null] when the histogram is empty; {!Diff} treats them as
      optional so schema-2 exports still compare clean
    - [{"type":"span","path":P,"depth":D,"calls":I,"seconds":F}] —
      pre-order; [seconds] is wall-clock and thus non-deterministic
      (comparison tools must ignore it)
    - [{"type":"event","kind":K, ...fields]] — insertion order *)

val schema_version : int

val to_jsonl : Registry.t -> string
(** The whole registry as a JSONL document (trailing newline included). *)

val write_file : Registry.t -> string -> unit
(** [write_file t path] writes {!to_jsonl} to [path]. *)

val summary : Registry.t -> string
(** Aligned-text rendering: counters/gauges tables, histogram shapes, the
    span tree with per-phase wall-clock, and per event kind the count plus
    median/geomean of each numeric field ({!Stc_util.Stats.median},
    {!Stc_util.Stats.geomean}). *)

val print_summary : Registry.t -> unit
