(** Serializing a finished {!Registry} — to JSONL for machine consumption
    (the [BENCH_*.json]-style perf-trajectory artifacts, diffed by
    [tools/metrics_diff]) and to an aligned text summary for humans.

    JSONL schema, one object per line, in this order:
    - [{"type":"meta","schema":2}] — 2 since cell events use
      [null] (not [-1]) for the missing [cfa_kb] of CFA-less layouts
    - [{"type":"counter","name":N,"value":I}] — sorted by name
    - [{"type":"gauge","name":N,"value":F}] — sorted by name
    - [{"type":"histo","name":N,"total":I,"buckets":[[lo,hi,w],...]}]
    - [{"type":"span","path":P,"depth":D,"calls":I,"seconds":F}] —
      pre-order; [seconds] is wall-clock and thus non-deterministic
      (comparison tools must ignore it)
    - [{"type":"event","kind":K, ...fields]] — insertion order *)

val schema_version : int

val to_jsonl : Registry.t -> string
(** The whole registry as a JSONL document (trailing newline included). *)

val write_file : Registry.t -> string -> unit
(** [write_file t path] writes {!to_jsonl} to [path]. *)

val summary : Registry.t -> string
(** Aligned-text rendering: counters/gauges tables, histogram shapes, the
    span tree with per-phase wall-clock, and per event kind the count plus
    median/geomean of each numeric field ({!Stc_util.Stats.median},
    {!Stc_util.Stats.geomean}). *)

val print_summary : Registry.t -> unit
