(** Metric handles: named counters, gauges, and log2-bucketed histograms.

    A handle is a free-standing mutable cell, cheap enough to sit on the
    simulator's innermost loops: updating one is a single unboxed field
    write, with no allocation and no table lookup. Modules own their
    handles directly (pre-interned at construction time) and optionally
    attach them to a {!Registry} for export. *)

module Counter : sig
  type t

  val make : string -> t
  (** A fresh counter starting at 0. The name is the default export name
      (a registry may prefix it, see {!Registry.attach_counter}). *)

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int

  val reset : t -> unit

  val name : t -> string
end

module Gauge : sig
  type t

  val make : string -> t
  (** A fresh gauge starting at 0. *)

  val set : t -> float -> unit

  val value : t -> float

  val name : t -> string
end

module Histogram : sig
  type t
  (** A named wrapper over {!Stc_util.Histo}: geometric buckets
      [[0,1) [1,2) [2,4) ...], weighted adds. *)

  val make : ?max_value:int -> string -> t

  val add : t -> ?weight:int -> int -> unit

  val total : t -> int

  val mass_below : t -> int -> float

  val buckets : t -> (int * int * int) list
  (** Non-empty [(lo, hi, weight)] buckets, ascending; see
      {!Stc_util.Histo.buckets}. *)

  val name : t -> string
end
