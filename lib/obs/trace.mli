(** A low-overhead, per-domain structured event tracer.

    Where {!Registry} spans aggregate (total seconds per phase, summed
    over calls and domains), [Trace] keeps the {e timeline}: every
    begin/end/instant/counter event is recorded with its timestamp on
    the domain that emitted it, and the whole run serializes to Chrome
    [trace_event] JSON — open the file in {{:https://ui.perfetto.dev}
    Perfetto} or [chrome://tracing] to see per-domain tracks, or feed it
    to [tools/trace_report] for a terminal summary.

    Concurrency and cost model:

    - Each domain writes into its own preallocated ring buffer (parallel
      arrays, fixed capacity), obtained through domain-local storage on
      its first event. Emission is a few array stores and one clock
      read: no allocation, no lock.
    - Names are interned to ints; pass pre-interned ids ({!intern} once,
      {!begin_}/{!end_} per event) on hot paths. {!span} interns its
      string argument each call (one hashtable lookup after the first) —
      fine for per-cell or per-phase slices, not for per-block loops.
    - A full buffer drops further events on that domain (counted in
      {!dropped}) rather than growing or blocking.
    - Timestamps are clamped monotone per domain, so every exported
      track is well-ordered even if the wall clock steps.

    Disabled tracing is represented by absence: the [ctx.trace] field
    ({!Run.ctx}) is an option, and instrumentation sites match on it —
    [None] costs one branch and produces zero events. *)

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [create ()] makes an empty tracer. [capacity] is per-domain events
    (default 65536); [clock] defaults to [Unix.gettimeofday]. The
    creation instant is the trace epoch: all timestamps are relative to
    it. *)

(** {2 Emission} *)

val intern : t -> string -> int
(** Map a name to its id, allocating one on first sight. Thread-safe. *)

val begin_ : t -> int -> unit
(** Open a slice (Chrome [ph:"B"]) on the calling domain. Slices on one
    domain must nest. *)

val end_ : ?arg:int -> t -> int -> unit
(** Close the innermost slice ([ph:"E"]). [arg] attaches a
    [{"bytes":arg}] payload to the event. *)

val with_span : t -> int -> (unit -> 'a) -> 'a
(** [with_span t id f] brackets [f] with {!begin_}/{!end_} (end emitted
    on exception too). *)

val span : t -> string -> (unit -> 'a) -> 'a
(** {!with_span} with lazy interning of the name. *)

val instant : t -> int -> unit
(** A zero-duration, thread-scoped marker ([ph:"i"]). *)

val counter : t -> int -> int -> unit
(** [counter t id v]: sample value [v] of counter [id] ([ph:"C"]);
    Perfetto renders these as a stepped graph per name. *)

val complete : ?arg:int -> t -> int -> start:float -> unit
(** [complete t id ~start] emits one self-contained slice ([ph:"X"])
    spanning [start] (a {!now} stamp taken earlier on this domain) to
    now — for slices whose name is only known at the end (e.g. store
    hit vs. miss). *)

val now : t -> float
(** Seconds since the trace epoch, for later use with {!complete}. *)

(** {2 Introspection and export} *)

val events : t -> int
(** Events recorded across all domains (drops excluded). *)

val dropped : t -> int
(** Events dropped to full buffers across all domains. *)

val to_json : t -> Json.t
(** The whole trace as a Chrome [trace_event] JSON array: per domain one
    [thread_name] metadata record, then its events in emission order
    with microsecond [ts] relative to the epoch, [pid] 0 and [tid] = the
    domain id. *)

val to_string : t -> string

val write_file : t -> string -> unit
(** {!to_string} plus trailing newline, written to a path. *)
