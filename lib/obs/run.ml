type ctx = {
  metrics : Registry.t option;
  progress : bool;
  seed : int option;
  jobs : int;
  store : string option;
  trace : Trace.t option;
}

let default =
  {
    metrics = None;
    progress = false;
    seed = None;
    jobs = 1;
    store = None;
    trace = None;
  }

let with_metrics reg ctx = { ctx with metrics = Some reg }

let with_progress progress ctx = { ctx with progress }

let with_seed seed ctx = { ctx with seed = Some seed }

let with_jobs jobs ctx = { ctx with jobs = max 1 jobs }

let with_store dir ctx = { ctx with store = Some dir }

let with_trace tr ctx = { ctx with trace = Some tr }

(* A [Run.span] is both an aggregate (registry span tree) and a timeline
   slice (trace), so instrumenting a phase once serves both exports. *)
let span ctx name f =
  let f =
    match ctx.trace with
    | Some tr -> fun () -> Trace.span tr name f
    | None -> f
  in
  match ctx.metrics with Some reg -> Registry.span reg name f | None -> f ()

let event ctx ~kind fields =
  match ctx.metrics with
  | Some reg -> Registry.event reg ~kind fields
  | None -> ()

let reporter ctx ?interval ?total ~label () =
  if ctx.progress then Some (Progress.create ?interval ?total ~label ())
  else None
