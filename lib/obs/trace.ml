(* Per-domain structured event tracer with Chrome trace_event export.

   Every domain that emits through a tracer gets its own preallocated
   ring of parallel arrays (kind byte / interned name id / timestamp /
   integer arg / duration), obtained once through a domain-local-storage
   key, so the hot path is a bounds check plus five array stores — no
   allocation, no locking, no contention with other domains.  Names are
   interned up front (or lazily through {!span}, which amortizes to one
   hashtable lookup); the mutex around the intern table and the buffer
   list is only ever taken on the first event of a domain and on intern,
   never per event.

   Timestamps come from one clock read per event, clamped to be
   monotone per buffer: [Unix.gettimeofday] can step backwards under
   NTP, and a Perfetto track with a backwards [ts] renders garbage, so
   each buffer remembers the last stamp it issued.  Buffers never grow:
   when one fills, further events on that domain are dropped and
   counted, which keeps a runaway instrumentation site from turning the
   tracer into the bottleneck it is meant to find. *)

type kind = Begin | End | Instant | Counter | Complete

let kind_byte = function
  | Begin -> 'B'
  | End -> 'E'
  | Instant -> 'i'
  | Counter -> 'C'
  | Complete -> 'X'

(* [a] is the counter value for [Counter], an optional byte/size arg for
   [End]/[Complete] ([no_arg] = absent), unused otherwise. *)
let no_arg = min_int

type buf = {
  dom : int;  (* Domain id: the exported [tid] *)
  cap : int;
  mutable n : int;
  mutable dropped : int;
  kinds : Bytes.t;
  names : int array;
  ts : float array;  (* seconds since the tracer's epoch *)
  args : int array;
  durs : float array;
  mutable last_ts : float;
}

type t = {
  clock : unit -> float;
  epoch : float;
  capacity : int;
  m : Mutex.t;  (* guards [bufs], [intern_tbl], [names_rev] *)
  mutable bufs : buf list;
  intern_tbl : (string, int) Hashtbl.t;
  mutable names_rev : string list;  (* id = position from the end *)
  mutable n_names : int;
  key : buf option Domain.DLS.key;
}

let create ?(capacity = 1 lsl 16) ?clock () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    clock;
    epoch = clock ();
    capacity;
    m = Mutex.create ();
    bufs = [];
    intern_tbl = Hashtbl.create 64;
    names_rev = [];
    n_names = 0;
    key = Domain.DLS.new_key (fun () -> None);
  }

let intern t name =
  Mutex.lock t.m;
  let id =
    match Hashtbl.find_opt t.intern_tbl name with
    | Some id -> id
    | None ->
      let id = t.n_names in
      Hashtbl.replace t.intern_tbl name id;
      t.names_rev <- name :: t.names_rev;
      t.n_names <- id + 1;
      id
  in
  Mutex.unlock t.m;
  id

let buf_for t =
  match Domain.DLS.get t.key with
  | Some b -> b
  | None ->
    let b =
      {
        dom = (Domain.self () :> int);
        cap = t.capacity;
        n = 0;
        dropped = 0;
        kinds = Bytes.create t.capacity;
        names = Array.make t.capacity 0;
        ts = Array.make t.capacity 0.0;
        args = Array.make t.capacity no_arg;
        durs = Array.make t.capacity 0.0;
        last_ts = 0.0;
      }
    in
    Domain.DLS.set t.key (Some b);
    Mutex.lock t.m;
    t.bufs <- b :: t.bufs;
    Mutex.unlock t.m;
    b

let now t = t.clock () -. t.epoch

let emit t kind name ~arg ~dur ts =
  let b = buf_for t in
  if b.n >= b.cap then b.dropped <- b.dropped + 1
  else begin
    let ts = if ts < b.last_ts then b.last_ts else ts in
    b.last_ts <- ts;
    let i = b.n in
    Bytes.unsafe_set b.kinds i (kind_byte kind);
    b.names.(i) <- name;
    b.ts.(i) <- ts;
    b.args.(i) <- arg;
    b.durs.(i) <- dur;
    b.n <- i + 1
  end

let begin_ t name = emit t Begin name ~arg:no_arg ~dur:0.0 (now t)

let end_ ?(arg = no_arg) t name = emit t End name ~arg ~dur:0.0 (now t)

let instant t name = emit t Instant name ~arg:no_arg ~dur:0.0 (now t)

let counter t name v = emit t Counter name ~arg:v ~dur:0.0 (now t)

let complete ?(arg = no_arg) t name ~start =
  let stop = now t in
  let start = if start < 0.0 then 0.0 else if start > stop then stop else start in
  emit t Complete name ~arg ~dur:(stop -. start) start

let with_span t name f =
  begin_ t name;
  Fun.protect ~finally:(fun () -> end_ t name) f

let span t name f = with_span t (intern t name) f

let events t =
  Mutex.lock t.m;
  let n = List.fold_left (fun acc b -> acc + b.n) 0 t.bufs in
  Mutex.unlock t.m;
  n

let dropped t =
  Mutex.lock t.m;
  let n = List.fold_left (fun acc b -> acc + b.dropped) 0 t.bufs in
  Mutex.unlock t.m;
  n

(* ---------- Chrome trace_event serialization ---------- *)

(* The "JSON array format": a bare array of event objects, which both
   Perfetto and chrome://tracing accept (and which, unlike the object
   form, can never be mistaken for a partial document: truncation fails
   to parse). [ts]/[dur] are microseconds. One [thread_name] metadata
   record precedes each domain's events so tracks are labeled. *)

let usec s = Json.Float (s *. 1e6)

let to_json t =
  Mutex.lock t.m;
  (* snapshot each buffer's length under the lock: a domain still
     emitting concurrently only ever grows [n] past the snapshot *)
  let bufs =
    List.map (fun b -> (b, b.n)) (List.sort (fun a b -> compare a.dom b.dom) t.bufs)
  in
  let names = Array.of_list (List.rev t.names_rev) in
  Mutex.unlock t.m;
  let pid = ("pid", Json.Int 0) in
  let events =
    List.concat_map
      (fun (b, b_n) ->
        let tid = ("tid", Json.Int b.dom) in
        let meta =
          Json.Obj
            [
              ("name", Str "thread_name");
              ("ph", Str "M");
              pid;
              tid;
              ( "args",
                Obj [ ("name", Str (Printf.sprintf "domain-%d" b.dom)) ] );
            ]
        in
        let evs =
          List.init b_n (fun i ->
              let name = ("name", Json.Str names.(b.names.(i))) in
              let cat = ("cat", Json.Str "stc") in
              let ts = ("ts", usec b.ts.(i)) in
              let arg_fields label =
                if b.args.(i) = no_arg then []
                else [ ("args", Json.Obj [ (label, Json.Int b.args.(i)) ]) ]
              in
              match Bytes.get b.kinds i with
              | 'B' -> Json.Obj [ name; cat; ("ph", Str "B"); ts; pid; tid ]
              | 'E' ->
                Json.Obj
                  ([ name; cat; ("ph", Str "E"); ts; pid; tid ]
                  @ arg_fields "bytes")
              | 'i' ->
                Json.Obj
                  [ name; cat; ("ph", Str "i"); ("s", Str "t"); ts; pid; tid ]
              | 'C' ->
                Json.Obj
                  [
                    name;
                    cat;
                    ("ph", Str "C");
                    ts;
                    pid;
                    tid;
                    ("args", Obj [ ("value", Int b.args.(i)) ]);
                  ]
              | 'X' ->
                Json.Obj
                  ([
                     name;
                     cat;
                     ("ph", Str "X");
                     ts;
                     ("dur", usec b.durs.(i));
                     pid;
                     tid;
                   ]
                  @ arg_fields "bytes")
              | _ -> assert false)
        in
        meta :: evs)
      bufs
  in
  Json.List events

let to_string t = Json.to_string (to_json t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
