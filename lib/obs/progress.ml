type t = {
  label : string;
  interval : int;
  total : int option;
  clock : Registry.clock;
  emit : string -> unit;
  start : float;
  mutable n : int;
  mutable next_report : int;
  mutable finished : bool;
}

let default_emit line =
  Printf.eprintf "\r%s%!" line

let create ?(interval = 1_000_000) ?total ?clock ?(emit = default_emit) ~label
    () =
  if interval <= 0 then invalid_arg "Progress.create: interval must be > 0";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    label;
    interval;
    total;
    clock;
    emit;
    start = clock ();
    n = 0;
    next_report = interval;
    finished = false;
  }

let rate t =
  let dt = t.clock () -. t.start in
  if dt <= 0.0 then 0.0 else float_of_int t.n /. dt

let fcount n =
  if n >= 10_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.0fK" (float_of_int n /. 1e3)
  else string_of_int n

let report t =
  let r = rate t in
  let line =
    match t.total with
    | Some total when total > 0 && r > 0.0 ->
      let eta = float_of_int (max 0 (total - t.n)) /. r in
      Printf.sprintf "%s: %s/%s (%.0f%%) %s/s ETA %.0fs" t.label (fcount t.n)
        (fcount total)
        (100.0 *. float_of_int t.n /. float_of_int total)
        (fcount (int_of_float r))
        eta
    | _ ->
      Printf.sprintf "%s: %s events, %s/s" t.label (fcount t.n)
        (fcount (int_of_float r))
  in
  t.emit line

let bump t k =
  t.n <- t.n + k;
  if t.n >= t.next_report && not t.finished then begin
    t.next_report <- t.n - (t.n mod t.interval) + t.interval;
    report t
  end

let step t = bump t 1

let add t n = if n > 0 then bump t n

let count t = t.n

(* The final line always renders, whatever the interval left pending:
   under the parallel atomic-drain pattern the last ticks land after the
   caller's final periodic report, so without this the bar would end
   short of 100%. *)
let finish t =
  if not t.finished then begin
    let dt = t.clock () -. t.start in
    let r = fcount (int_of_float (rate t)) in
    let line =
      match t.total with
      | Some total when total > 0 ->
        Printf.sprintf "%s: %s/%s (%.0f%%) in %.1fs (%s/s)" t.label
          (fcount t.n) (fcount total)
          (100.0 *. float_of_int t.n /. float_of_int total)
          dt r
      | _ ->
        Printf.sprintf "%s: %s events in %.1fs (%s/s)" t.label (fcount t.n) dt
          r
    in
    t.emit (line ^ "\n");
    t.finished <- true
  end
