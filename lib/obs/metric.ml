module Counter = struct
  type t = { name : string; mutable value : int }

  let make name = { name; value = 0 }

  let incr c = c.value <- c.value + 1

  let add c n = c.value <- c.value + n

  let value c = c.value

  let reset c = c.value <- 0

  let name c = c.name
end

module Gauge = struct
  type t = { name : string; mutable value : float }

  let make name = { name; value = 0.0 }

  let set g v = g.value <- v

  let value g = g.value

  let name g = g.name
end

module Histogram = struct
  type t = { name : string; histo : Stc_util.Histo.t }

  let make ?max_value name =
    { name; histo = Stc_util.Histo.create ?max_value () }

  let add h ?weight v = Stc_util.Histo.add h.histo ?weight v

  let total h = Stc_util.Histo.total h.histo

  let mass_below h v = Stc_util.Histo.mass_below h.histo v

  let buckets h = Stc_util.Histo.buckets h.histo

  let name h = h.name
end
