(** The metrics registry: the single object a run threads through the
    pipeline to collect everything observable about it.

    A registry holds
    - named metric handles ({!Metric.Counter}, {!Metric.Gauge},
      {!Metric.Histogram}), either interned here ({!counter} etc.) or
      created by a module and attached under a prefix ({!attach_counter});
    - a tree of hierarchical timing {e spans} ({!span}) accumulating
      wall-clock seconds and call counts per phase;
    - an ordered log of structured {e events} ({!event}) — one record per
      experiment cell, exported verbatim to JSONL.

    All names are flat strings; dotted segments ([icache.misses],
    [training.walker.blocks]) are a convention, not a structure. Metric
    names must be unique within a registry.

    A registry reaches entry points inside a {!Run.ctx}
    ([Run.with_metrics reg Run.default]). A registry is not
    thread-safe: parallel grids give each task its own shard and
    {!merge} them after the join. *)

type t

type clock = unit -> float
(** Seconds, from an arbitrary origin. Only differences are used. *)

val create : ?clock:clock -> unit -> t
(** The default clock is [Unix.gettimeofday]. Tests substitute a fake
    clock to make span timings deterministic. *)

(** {2 Metrics} *)

val counter : t -> string -> Metric.Counter.t
(** Intern: returns the existing handle when [name] is already a counter
    of this registry, otherwise registers a fresh one. Raises
    [Invalid_argument] when the name is taken by another metric kind. *)

val gauge : t -> string -> Metric.Gauge.t

val histogram : ?max_value:int -> t -> string -> Metric.Histogram.t

val attach_counter : ?prefix:string -> t -> Metric.Counter.t -> unit
(** Register an existing handle for export under [prefix ^ name].
    Raises [Invalid_argument] on a duplicate export name. *)

val attach_gauge : ?prefix:string -> t -> Metric.Gauge.t -> unit

val attach_histogram : ?prefix:string -> t -> Metric.Histogram.t -> unit

(** {2 Spans} *)

module Span : sig
  type info = {
    path : string;  (** Slash-joined names from the root, e.g. [a/b]. *)
    depth : int;
    calls : int;
    seconds : float;  (** Cumulative wall-clock over all calls. *)
  }
end

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a child span [name] of the current
    span, accumulating its wall-clock time and call count. Nested calls
    build a tree; repeated calls with the same name at the same nesting
    level accumulate into one node. Exception-safe. *)

(** {2 Events} *)

val event : t -> kind:string -> (string * Json.t) list -> unit
(** Append a structured record; exported in insertion order. *)

(** {2 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds one registry into another — the join step for
    per-task registry shards filled by parallel workers
    ({!Stc_par.Pool}): counters are {e summed}, gauges take the source's
    value ({e last write wins} over a sequence of merges), histograms
    {e union} their buckets (exactly — buckets are geometric, so weight
    re-added at a bucket's lower bound lands in the same bucket), span
    nodes sum calls and seconds path-wise, and events are {e appended}
    in the source's insertion order. Merging shards in task-index order
    therefore reproduces the exact event log of a serial run. [src] is
    not modified. Raises [Invalid_argument] when a name is carried by
    different metric kinds in the two registries, or when [into == src]. *)

(** {2 Snapshots} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val histograms : t -> (string * Metric.Histogram.t) list

val spans : t -> Span.info list
(** Pre-order walk of the span tree (children in first-call order). *)

val events : t -> (string * (string * Json.t) list) list
(** [(kind, fields)] in insertion order. *)
