(** Comparing two metrics JSONL exports (the {!Export} schema) record by
    record — the library core shared by [tools/metrics_diff] and the
    golden-regression harness ([tools/golden]).

    Records are paired by an identifying key (metric name, span path, or
    event kind, with a per-key occurrence number so repeated events pair
    in emission order). Span ["seconds"] fields are never compared (wall
    clock is not deterministic); any metric whose name — or event whose
    kind — starts with an ignore prefix is dropped from {e both} sides
    before pairing, so occurrence numbering stays aligned. Tolerance is
    relative; the default [0.] demands exact equality, which is what two
    same-seed runs must achieve. *)

val diff_records :
  ?tolerance:float ->
  ?ignores:string list ->
  a_label:string ->
  b_label:string ->
  Json.t list ->
  Json.t list ->
  string list * int
(** [diff_records ~a_label ~b_label a b] is [(drift, compared)]: one
    human-readable line per drifting value or unpaired record (labels
    name the sides in those messages), and the number of records of [a]
    that survived the ignore filter. No drift = empty list. *)

val load_file : string -> (Json.t list, string) result
(** Read and parse one JSONL export. [Error] — not an empty record list —
    when the file is missing or unreadable, fails to parse, or contains
    {e zero} records: an empty input can only green-light a vacuous
    comparison, so callers are forced to treat it as a hard failure. *)
