(** A versioned, content-addressed on-disk cache for pipeline artifacts.

    The paper's methodology is two-phase — record a workload trace once,
    then replay it against many layouts and cache geometries — so almost
    everything the pipeline computes is a pure function of a describable
    input set. This store persists those computations between runs:
    recorded traces ({!Stc_trace.Recorder}), layouts
    ({!Stc_layout.Layout}), packed trace images ({!Stc_fetch.Packed})
    and per-simulation engine results ({!Stc_fetch.Engine.result}).

    {2 Addressing}

    An entry lives at [dir/<kind>/<key>.bin]. The key is a 64-bit
    {!Stc_util.Fnv} hash ({!Key.of_parts}) of everything that determines
    the artifact — for content-derived artifacts the {!Fp} fingerprints
    of the inputs (program skeleton, layout addresses, trace ids), for
    recorded traces the workload spec and seeds. Code changes that alter
    an artifact's {e meaning} without changing its inputs are handled by
    the per-kind format version: bump it and old entries fall out as
    version mismatches.

    {2 Format and failure model}

    Each file is [magic "STCA" · container version · kind · format
    version · payload length · payload · CRC-32 of the payload], written
    to a temp file and renamed into place (concurrent writers of the
    same key both produce valid files; last rename wins). Reads never
    crash the run: a missing entry is a plain miss; a version mismatch,
    bad magic, truncation or checksum failure is a miss plus a
    [store.warning] event in the registry (and, for damage, the
    [store.corrupt] counter); {!cached} then recomputes and rewrites the
    entry. Only genuinely anomalous states warn — a cold cache is
    silent, so a cold and a warm run export identical event streams.

    {2 Observability}

    A handle opened with [~metrics] interns [store.hits], [store.misses],
    [store.writes], [store.corrupt], [store.bytes_read] and
    [store.bytes_written] counters in the registry. These are the one
    intentional difference between cold and warm exports; [metrics_diff
    --ignore store.] compares everything else. *)

exception Corrupt of string
(** Raised by decoders on malformed payload bytes; {!load} and {!cached}
    catch it and fall back to recomputation. Client code only sees it if
    it calls an [Artifact.decode] directly. *)

(** Store keys: a 64-bit FNV-1a hash rendered as 16 hex digits. *)
module Key : sig
  type t

  val of_parts : string list -> t
  (** Hash the parts with their lengths, so part boundaries matter:
      [of_parts ["ab"; "c"]] differs from [of_parts ["a"; "bc"]]. *)

  val hex : t -> string

  val of_hex : string -> t
  (** Reconstruct a key from its {!hex} rendering (as scanned from an
      entry file name) — keys {e are} their hex form, so this is total. *)
end

type t
(** An open store handle: a directory plus the counters above. Handles
    are cheap to open; parallel grid cells open one per cell against
    their own registry shard so the merged totals stay deterministic. *)

val open_ : ?metrics:Stc_obs.Registry.t -> ?trace:Stc_obs.Trace.t -> string -> t
(** Create the directory (and parents) if needed. With [~metrics] the
    [store.*] counters and the [store.read_us]/[store.write_us] latency
    histograms (microseconds, log2 buckets) register there; with
    [~trace] every lookup and write emits a timeline slice —
    [store.hit]/[store.miss]/[store.write] — carrying the payload size
    as its [bytes] argument. *)

val of_ctx : Stc_obs.Run.ctx -> t option
(** [Some (open_ ?metrics:ctx.metrics ?trace:ctx.trace dir)] when
    [ctx.store] is [Some dir]. *)

val dir : t -> string

(** {2 Raw container access}

    Typed artifacts below are the normal API; these two are the
    container layer itself (and the test surface for corruption
    handling). *)

val read : t -> kind:string -> version:int -> Key.t -> string option
(** The payload, if a well-formed entry of that kind and version exists.
    Counts a hit or a miss; warns on damage or version mismatch as
    described above. *)

val write : t -> kind:string -> version:int -> Key.t -> string -> unit
(** Atomic temp-file-then-rename write. A filesystem error (permissions,
    disk full) warns and returns — the computation's result is still in
    hand, so a broken cache never fails a run. *)

(** {2 Typed artifacts}

    Each artifact module fixes a [kind] string and a format [version],
    and offers [load] (consult), [save] (record) and [cached] (consult,
    else compute and record — on [None] stores, just compute). [encode]
    and [decode] are the bare codecs: [decode (encode x)] reconstructs
    [x] and is property-tested; [decode] raises {!Corrupt} on malformed
    bytes. *)

module Trace : sig
  val version : int

  val encode : Stc_trace.Recorder.t -> string

  val decode : string -> Stc_trace.Recorder.t

  val load : t -> key:Key.t -> Stc_trace.Recorder.t option

  val save : t -> key:Key.t -> Stc_trace.Recorder.t -> unit

  val cached :
    t option -> key:Key.t -> (unit -> Stc_trace.Recorder.t) -> Stc_trace.Recorder.t
end

(** Chunked traces: one manifest entry ([trace-man]) plus one CRC-checked
    container per segment ([trace-seg]), for traces that should replay
    warm through a {!Stc_trace.Source} without being fully resident.

    [save] writes segments first and the manifest last (a crash mid-save
    is a plain miss), skipping segments that already read back intact —
    so re-saving over a damaged entry rewrites only the broken segments.
    [source] validates every segment eagerly (read, CRC, content hash
    against the manifest; O(one segment) resident) and returns [None] on
    any damage, then serves lazy per-segment pulls. *)
module Chunked : sig
  val manifest_kind : string

  val segment_kind : string

  val version : int

  val default_segment_blocks : int
  (** [Stc_trace.Source.default_segment_blocks]. *)

  type manifest = {
    m_total_blocks : int;
    m_segment_blocks : int;  (** Segment size the entry was saved with. *)
    m_seg_lens : int array;
    m_marks : (string * int) list;
    m_ids_hash : int64;  (** {!Stc_trace.Recorder.hash} of the ids. *)
  }

  val seg_key : Key.t -> int -> Key.t
  (** Key of the [i]th segment of the chunked entry at [key]. *)

  val decode_manifest : string -> manifest
  (** Raises {!Corrupt} on malformed bytes ([tools/store_inspect]'s way
      into manifest entries it finds by scanning). *)

  val decode_segment : base:int -> string -> Stc_trace.Segment.t
  (** Raises {!Corrupt} on malformed bytes. *)

  val save : ?segment_blocks:int -> t -> key:Key.t -> Stc_trace.Recorder.t -> unit

  val load_manifest : t -> key:Key.t -> manifest option

  val source : t -> key:Key.t -> (manifest * Stc_trace.Source.t) option
  (** [None] if the manifest is absent or any segment is damaged or
      drifted (after eager validation of all of them). The returned
      source re-reads segments lazily, one per pull; if a concurrent
      writer destroys a segment between validation and its pull, the
      pull raises {!Corrupt} rather than silently truncating the
      trace. *)

  val load : t -> key:Key.t -> Stc_trace.Recorder.t option
  (** Materialize the whole trace (the warm path for consumers that need
      a {!Stc_trace.Recorder}); [None] under exactly the same conditions
      as {!source}. *)

  val cached :
    ?segment_blocks:int ->
    t option ->
    key:Key.t ->
    (unit -> Stc_trace.Recorder.t) ->
    Stc_trace.Recorder.t
end

module Layout : sig
  val version : int

  val encode : Stc_layout.Layout.t -> string

  val decode : string -> Stc_layout.Layout.t

  val load : t -> key:Key.t -> Stc_layout.Layout.t option

  val save : t -> key:Key.t -> Stc_layout.Layout.t -> unit

  val cached :
    t option ->
    key:Key.t ->
    (unit -> Stc_layout.Layout.t) ->
    Stc_layout.Layout.t
end

module Packed : sig
  val version : int

  val max_persist_words : int
  (** Images above this size (4M trace indices ≈ 32 MB on disk) are not
      persisted by [save]/[cached]: at that scale re-reading the bytes
      costs about as much as recompiling from the (much smaller) trace
      artifact, so the disk space buys nothing. [load] still accepts
      any size. *)

  val encode : Stc_fetch.Packed.t -> string

  val decode : string -> Stc_fetch.Packed.t

  val load : t -> key:Key.t -> Stc_fetch.Packed.t option

  val save : t -> key:Key.t -> Stc_fetch.Packed.t -> unit

  val cached :
    t option -> key:Key.t -> (unit -> Stc_fetch.Packed.t) -> Stc_fetch.Packed.t
end

module Result : sig
  val version : int

  val encode : Stc_fetch.Engine.result -> string

  val decode : string -> Stc_fetch.Engine.result

  val load : t -> key:Key.t -> Stc_fetch.Engine.result option

  val save : t -> key:Key.t -> Stc_fetch.Engine.result -> unit

  val cached :
    t option ->
    key:Key.t ->
    (unit -> Stc_fetch.Engine.result) ->
    Stc_fetch.Engine.result
end

(** {2 Content fingerprints}

    Hex strings for {!Key.of_parts}, hashing exactly the content a
    downstream computation reads — so a key built from them is valid no
    matter which code path produced the inputs (the recorded pipeline, an
    inlined program, an OLTP trace...). *)
module Fp : sig
  val program : Stc_cfg.Program.t -> string
  (** Full static structure: per procedure the name, subsystem and block
      span; per block the size and terminator (with successors). *)

  val layout : Stc_layout.Layout.t -> string
  (** The address array only — two layouts that place every block
      identically share downstream artifacts regardless of name. *)

  val layout_algo : algo:string -> Stc_layout.Algo.params -> string
  (** A layout-construction key part: the algorithm identity (its
      registry slug) plus every field of its parameter record, so two
      algorithms fed the same profile — or one algorithm at two grid
      points — can never collide on a cached layout artifact. *)

  val trace : Stc_trace.Recorder.t -> string
  (** The recorded ids ({!Stc_trace.Recorder.hash}) plus the marks. *)

  val engine_config : Stc_fetch.Engine.config -> string
  (** Every engine parameter, the FDIP block included when present; a
      [fdip = None] config hashes exactly as it did before the field
      existed, so pre-FDIP keys are stable. *)

  val int_array : int array -> string
  (** Length-prefixed FNV of an int array — e.g. a TRRIP temperature
      table entering a cell key. *)
end

(** {2 Statistics and inspection} *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  bytes_read : int;
  bytes_written : int;
}

val stats : t -> stats
(** Snapshot of this handle's counters. When the handle shares a
    registry with others (via [~metrics]), the interned counters are
    shared too, so this reports registry-lifetime totals. *)

type entry = {
  e_path : string;
  e_kind : string;  (** "?" when the header is unreadable. *)
  e_key : string;  (** From the file name. *)
  e_version : int;  (** -1 when the header is unreadable. *)
  e_payload_bytes : int;
  e_ok : bool;
  e_reason : string option;  (** Why [e_ok] is false. *)
}

val payload_of_file : string -> string option
(** The payload of one well-formed entry file (any kind and version),
    without a handle and without counting; [None] on damage.
    [tools/store_inspect] pairs this with {!Chunked.decode_manifest} to
    describe the chunked entries it finds by scanning. *)

val inspect_file : string -> entry
(** Parse one entry file and verify its checksum, without a handle and
    without counting. Never raises. *)

val scan : string -> entry list
(** Every [*.bin] under the store directory's kind subdirectories, in
    sorted order ([tools/store_inspect] is a thin printer over this).
    An unreadable or missing directory yields []. *)
