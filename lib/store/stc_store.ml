module Fnv = Stc_util.Fnv
module Crc32 = Stc_util.Crc32
module Registry = Stc_obs.Registry
module Counter = Stc_obs.Metric.Counter
module Histogram = Stc_obs.Metric.Histogram
module Tracer = Stc_obs.Trace
module Json = Stc_obs.Json
module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder
module Engine = Stc_fetch.Engine

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

module Key = struct
  type t = string

  let of_parts parts =
    List.fold_left
      (fun h p -> Fnv.string (Fnv.int h (String.length p)) p)
      Fnv.empty parts
    |> Fnv.to_hex

  let hex k = k
end

(* ------------------------------------------------------------------ *)
(* Binary payload codecs: LEB128 varints for the (non-negative) ints
   that dominate every artifact, raw little-endian words for the rest.
   [Dec] raises {!Corrupt} on any malformed input, including trailing
   bytes, so a CRC-valid payload from a buggy or foreign writer still
   degrades to a recomputation. *)

module Enc = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    u8 b v;
    u8 b (v lsr 8);
    u8 b (v lsr 16);
    u8 b (v lsr 24)

  let varint b v =
    if v < 0 then invalid_arg "Stc_store.Enc.varint: negative";
    let rec go v =
      if v < 0x80 then u8 b v
      else begin
        u8 b (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let i64 b v =
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  let float b v = i64 b (Int64.bits_of_float v)

  let str b s =
    varint b (String.length s);
    Buffer.add_string b s
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let make s = { s; pos = 0 }

  let u8 d =
    if d.pos >= String.length d.s then corrupt "unexpected end of payload";
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u32 d =
    let a = u8 d in
    let b = u8 d in
    let c = u8 d in
    let e = u8 d in
    a lor (b lsl 8) lor (c lsl 16) lor (e lsl 24)

  let varint d =
    let rec go shift acc =
      if shift > 62 then corrupt "varint too long";
      let byte = u8 d in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let v = go 0 0 in
    if v < 0 then corrupt "varint out of range";
    v

  let i64 d =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 d)) (8 * i))
    done;
    !v

  let float d = Int64.float_of_bits (i64 d)

  let str d =
    let n = varint d in
    if d.pos + n > String.length d.s then corrupt "string runs past payload";
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let finish d =
    if d.pos <> String.length d.s then
      corrupt "%d trailing bytes" (String.length d.s - d.pos)
end

(* ------------------------------------------------------------------ *)
(* The on-disk container. *)

let magic = "STCA"

let container_version = 1

type t = {
  dir : string;
  metrics : Registry.t option;
  hits : Counter.t;
  misses : Counter.t;
  writes : Counter.t;
  corrupt_c : Counter.t;
  bytes_read : Counter.t;
  bytes_written : Counter.t;
  read_us : Histogram.t;  (* lookup+decode latency, microseconds *)
  write_us : Histogram.t;
  tracer : Tracer.t option;
  tr_hit : int;  (* interned slice names; 0 when [tracer = None] *)
  tr_miss : int;
  tr_write : int;
}

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?metrics ?trace dirname =
  mkdir_p dirname;
  let c name =
    match metrics with
    | Some reg -> Registry.counter reg ("store." ^ name)
    | None -> Counter.make ("store." ^ name)
  in
  let h name =
    match metrics with
    | Some reg -> Registry.histogram reg ("store." ^ name)
    | None -> Histogram.make ("store." ^ name)
  in
  let tr_hit, tr_miss, tr_write =
    match trace with
    | None -> (0, 0, 0)
    | Some tr ->
        ( Tracer.intern tr "store.hit",
          Tracer.intern tr "store.miss",
          Tracer.intern tr "store.write" )
  in
  {
    dir = dirname;
    metrics;
    hits = c "hits";
    misses = c "misses";
    writes = c "writes";
    corrupt_c = c "corrupt";
    bytes_read = c "bytes_read";
    bytes_written = c "bytes_written";
    read_us = h "read_us";
    write_us = h "write_us";
    tracer = trace;
    tr_hit;
    tr_miss;
    tr_write;
  }

let of_ctx ctx =
  match ctx.Stc_obs.Run.store with
  | None -> None
  | Some d ->
      Some
        (open_ ?metrics:ctx.Stc_obs.Run.metrics ?trace:ctx.Stc_obs.Run.trace d)

let warning t ~kind ~key ~reason =
  match t.metrics with
  | None -> ()
  | Some reg ->
      Registry.event reg ~kind:"store.warning"
        [
          ("artifact", Json.Str kind);
          ("key", Json.Str (Key.hex key));
          ("reason", Json.Str reason);
        ]

let entry_path t ~kind key =
  Filename.concat (Filename.concat t.dir kind) (Key.hex key ^ ".bin")

(* Parse a whole entry file. [Error (`Damage reason)] is physical
   corruption (counts on [store.corrupt]); [Error (`Stale reason)] is a
   well-formed entry from another format generation. *)
let parse_entry contents =
  let n = String.length contents in
  let header_err reason = Error (`Damage reason) in
  if n < String.length magic + 1 then header_err "truncated header"
  else if String.sub contents 0 (String.length magic) <> magic then
    header_err "bad magic"
  else
    let d = Dec.make contents in
    d.Dec.pos <- String.length magic;
    match
      let cv = Dec.u8 d in
      let kind = Dec.str d in
      let version = Dec.u32 d in
      let payload_len = Dec.u32 d in
      (cv, kind, version, payload_len)
    with
    | exception Corrupt reason -> header_err reason
    | cv, kind, version, payload_len ->
        if cv <> container_version then
          Error (`Stale (Printf.sprintf "container version %d" cv))
        else
          let pos = d.Dec.pos in
          if payload_len < 0 || pos + payload_len + 4 <> n then
            header_err "payload length mismatch"
          else
            let crc_stored =
              d.Dec.pos <- pos + payload_len;
              Dec.u32 d
            in
            if Crc32.sub contents ~pos ~len:payload_len <> crc_stored then
              header_err "checksum mismatch"
            else Ok (kind, version, String.sub contents pos payload_len)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Some contents
  | exception Sys_error _ -> None

type outcome =
  | Hit of string
  | Miss
  | Stale of string
  | Damaged of string

let lookup t ~kind ~version key =
  let path = entry_path t ~kind key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | None -> Stale "unreadable file"
    | Some contents -> (
        match parse_entry contents with
        | Error (`Damage reason) -> Damaged reason
        | Error (`Stale reason) -> Stale reason
        | Ok (k, v, payload) ->
            if k <> kind then
              Damaged (Printf.sprintf "kind %S in a %S entry" k kind)
            else if v <> version then
              Stale (Printf.sprintf "format version %d, want %d" v version)
            else Hit payload)

let count_hit t payload =
  Counter.incr t.hits;
  Counter.add t.bytes_read (String.length payload)

let count_non_hit t ~kind ~key = function
  | Hit _ -> assert false
  | Miss -> Counter.incr t.misses
  | Stale reason ->
      Counter.incr t.misses;
      warning t ~kind ~key ~reason
  | Damaged reason ->
      Counter.incr t.misses;
      Counter.incr t.corrupt_c;
      warning t ~kind ~key ~reason

(* Latency + timeline bookkeeping around one lookup (or write). The
   slice name is picked at the end, when the outcome is known, so hits
   and misses get distinct Perfetto tracks; [bytes] rides along as the
   slice's argument. Two clock reads per operation — noise next to the
   file I/O being measured. *)
let op_start t =
  ( Unix.gettimeofday (),
    match t.tracer with Some tr -> Tracer.now tr | None -> 0.0 )

let op_finish t histo slice ~bytes (t0, ts) =
  Histogram.add histo (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  match t.tracer with
  | None -> ()
  | Some tr -> Tracer.complete ~arg:bytes tr slice ~start:ts

let read t ~kind ~version key =
  let clk = op_start t in
  match lookup t ~kind ~version key with
  | Hit payload ->
      count_hit t payload;
      op_finish t t.read_us t.tr_hit ~bytes:(String.length payload) clk;
      Some payload
  | other ->
      count_non_hit t ~kind ~key other;
      op_finish t t.read_us t.tr_miss ~bytes:0 clk;
      None

let tmp_counter = Atomic.make 0

let write t ~kind ~version key payload =
  let clk = op_start t in
  Fun.protect ~finally:(fun () ->
      op_finish t t.write_us t.tr_write ~bytes:(String.length payload) clk)
  @@ fun () ->
  let path = entry_path t ~kind key in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Enc.u8 b container_version;
  Enc.str b kind;
  Enc.u32 b version;
  Enc.u32 b (String.length payload);
  Buffer.add_string b payload;
  Enc.u32 b (Crc32.string payload);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    mkdir_p (Filename.dirname path);
    Out_channel.with_open_bin tmp (fun oc -> Buffer.output_buffer oc b);
    Sys.rename tmp path
  with
  | () ->
      Counter.incr t.writes;
      Counter.add t.bytes_written (String.length payload)
  | exception Sys_error reason ->
      (try Sys.remove tmp with Sys_error _ -> ());
      warning t ~kind ~key ~reason
  | exception Unix.Unix_error (e, _, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      warning t ~kind ~key ~reason:(Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Typed artifacts. *)

(* Typed load: on a CRC-valid payload the decoder rejects, count the
   entry as damaged, not as a hit. *)
let load_with t ~kind ~version ~decode key =
  let clk = op_start t in
  match lookup t ~kind ~version key with
  | Hit payload -> (
      match decode payload with
      | v ->
          count_hit t payload;
          op_finish t t.read_us t.tr_hit ~bytes:(String.length payload) clk;
          Some v
      | exception Corrupt reason ->
          count_non_hit t ~kind ~key (Damaged reason);
          op_finish t t.read_us t.tr_miss ~bytes:0 clk;
          None)
  | other ->
      count_non_hit t ~kind ~key other;
      op_finish t t.read_us t.tr_miss ~bytes:0 clk;
      None

let cached_with ~load ~save store ~key compute =
  match store with
  | None -> compute ()
  | Some t -> (
      match load t ~key with
      | Some v -> v
      | None ->
          let v = compute () in
          save t ~key v;
          v)

module Trace = struct
  let kind = "trace"

  let version = 1

  let encode r =
    let b = Buffer.create 4096 in
    let n = Recorder.length r in
    let ids = Recorder.raw_ids r in
    Enc.varint b n;
    for i = 0 to n - 1 do
      Enc.varint b ids.(i)
    done;
    let marks = Recorder.marks r in
    Enc.varint b (List.length marks);
    List.iter
      (fun (name, pos) ->
        Enc.str b name;
        Enc.varint b pos)
      marks;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let n = Dec.varint d in
    let ids = Array.init n (fun _ -> Dec.varint d) in
    let n_marks = Dec.varint d in
    let marks =
      List.init n_marks (fun _ ->
          let name = Dec.str d in
          let pos = Dec.varint d in
          (name, pos))
    in
    Dec.finish d;
    Recorder.of_ids ids ~marks

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key r = write t ~kind ~version key (encode r)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

module Layout = struct
  let kind = "layout"

  let version = 1

  let encode (l : Stc_layout.Layout.t) =
    let b = Buffer.create 1024 in
    Enc.str b l.Stc_layout.Layout.name;
    let addr = l.Stc_layout.Layout.addr in
    Enc.varint b (Array.length addr);
    Array.iter (Enc.varint b) addr;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let name = Dec.str d in
    let n = Dec.varint d in
    let addr = Array.init n (fun _ -> Dec.varint d) in
    Dec.finish d;
    { Stc_layout.Layout.name; addr }

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key l = write t ~kind ~version key (encode l)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

module Packed = struct
  let kind = "packed"

  let version = 1

  let max_persist_words = 4_000_000

  let encode p =
    let b = Buffer.create 4096 in
    let len = Stc_fetch.Packed.length p in
    let words = Stc_fetch.Packed.raw p in
    Enc.varint b len;
    for i = 0 to len - 1 do
      Enc.varint b words.(i)
    done;
    Enc.varint b (Stc_fetch.Packed.total_instrs p);
    Enc.varint b (Stc_fetch.Packed.taken_branches p);
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let len = Dec.varint d in
    let words = Array.make (max len 1) 0 in
    for i = 0 to len - 1 do
      words.(i) <- Dec.varint d
    done;
    let total_instrs = Dec.varint d in
    let taken_branches = Dec.varint d in
    Dec.finish d;
    match Stc_fetch.Packed.of_raw ~words ~len ~total_instrs ~taken_branches with
    | p -> p
    | exception Invalid_argument m -> corrupt "%s" m

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key p =
    if Stc_fetch.Packed.memory_words p <= max_persist_words then
      write t ~kind ~version key (encode p)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

module Result = struct
  let kind = "result"

  let version = 1

  let encode (r : Engine.result) =
    let b = Buffer.create 128 in
    Enc.varint b r.Engine.instrs;
    Enc.varint b r.Engine.cycles;
    Enc.varint b r.Engine.fetch_cycles;
    Enc.varint b r.Engine.seq_cycles;
    Enc.varint b r.Engine.tc_cycles;
    Enc.varint b r.Engine.icache_accesses;
    Enc.varint b r.Engine.icache_misses;
    Enc.varint b r.Engine.icache_victim_hits;
    Enc.varint b r.Engine.tc_lookups;
    Enc.varint b r.Engine.tc_hits;
    Enc.varint b r.Engine.taken_branches;
    Enc.float b r.Engine.instrs_between_taken;
    Enc.varint b r.Engine.cond_branches;
    Enc.varint b r.Engine.mispredictions;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let instrs = Dec.varint d in
    let cycles = Dec.varint d in
    let fetch_cycles = Dec.varint d in
    let seq_cycles = Dec.varint d in
    let tc_cycles = Dec.varint d in
    let icache_accesses = Dec.varint d in
    let icache_misses = Dec.varint d in
    let icache_victim_hits = Dec.varint d in
    let tc_lookups = Dec.varint d in
    let tc_hits = Dec.varint d in
    let taken_branches = Dec.varint d in
    let instrs_between_taken = Dec.float d in
    let cond_branches = Dec.varint d in
    let mispredictions = Dec.varint d in
    Dec.finish d;
    {
      Engine.instrs;
      cycles;
      fetch_cycles;
      seq_cycles;
      tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups;
      tc_hits;
      taken_branches;
      instrs_between_taken;
      cond_branches;
      mispredictions;
    }

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key r = write t ~kind ~version key (encode r)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

(* ------------------------------------------------------------------ *)
(* Content fingerprints. *)

module Fp = struct
  let program (p : Program.t) =
    let h = ref Fnv.empty in
    let add v = h := Fnv.int !h v in
    let adds s = h := Fnv.string (Fnv.int !h (String.length s)) s in
    add (Array.length p.Program.procs);
    Array.iter
      (fun (pr : Proc.t) ->
        add pr.Proc.pid;
        adds pr.Proc.name;
        adds (Proc.subsystem_name pr.Proc.subsystem);
        add pr.Proc.entry;
        add (Array.length pr.Proc.blocks);
        Array.iter add pr.Proc.blocks)
      p.Program.procs;
    add (Array.length p.Program.blocks);
    Array.iter
      (fun (b : Block.t) ->
        add b.Block.id;
        add b.Block.size;
        match b.Block.term with
        | Terminator.Fall x ->
            add 0;
            add x
        | Terminator.Jump x ->
            add 1;
            add x
        | Terminator.Cond { taken; fallthru } ->
            add 2;
            add taken;
            add fallthru
        | Terminator.Call { callee; next } ->
            add 3;
            add callee;
            add next
        | Terminator.Icall { callees; next } ->
            add 4;
            add (Array.length callees);
            Array.iter add callees;
            add next
        | Terminator.Ret -> add 5)
      p.Program.blocks;
    Fnv.to_hex !h

  let layout (l : Stc_layout.Layout.t) =
    let addr = l.Stc_layout.Layout.addr in
    Fnv.to_hex (Fnv.ints (Fnv.int Fnv.empty (Array.length addr)) addr)

  let trace r =
    let h = Fnv.int64 Fnv.empty (Recorder.hash r) in
    let h =
      List.fold_left
        (fun h (name, pos) ->
          Fnv.int (Fnv.string (Fnv.int h (String.length name)) name) pos)
        h (Recorder.marks r)
    in
    Fnv.to_hex h

  let engine_config (c : Engine.config) =
    Fnv.empty
    |> Fun.flip Fnv.int c.Engine.Config.max_branches
    |> Fun.flip Fnv.int c.Engine.Config.line_bytes
    |> Fun.flip Fnv.int c.Engine.Config.miss_penalty
    |> Fnv.to_hex
end

(* ------------------------------------------------------------------ *)
(* Statistics and inspection. *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  bytes_read : int;
  bytes_written : int;
}

let stats (t : t) =
  {
    hits = Counter.value t.hits;
    misses = Counter.value t.misses;
    writes = Counter.value t.writes;
    corrupt = Counter.value t.corrupt_c;
    bytes_read = Counter.value t.bytes_read;
    bytes_written = Counter.value t.bytes_written;
  }

type entry = {
  e_path : string;
  e_kind : string;
  e_key : string;
  e_version : int;
  e_payload_bytes : int;
  e_ok : bool;
  e_reason : string option;
}

let inspect_file path =
  let e_key = Filename.remove_extension (Filename.basename path) in
  let broken reason =
    {
      e_path = path;
      e_kind = "?";
      e_key;
      e_version = -1;
      e_payload_bytes = 0;
      e_ok = false;
      e_reason = Some reason;
    }
  in
  match read_file path with
  | None -> broken "unreadable file"
  | Some contents -> (
      match parse_entry contents with
      | Error (`Damage reason) | Error (`Stale reason) -> broken reason
      | Ok (kind, version, payload) ->
          {
            e_path = path;
            e_kind = kind;
            e_key;
            e_version = version;
            e_payload_bytes = String.length payload;
            e_ok = true;
            e_reason = None;
          })

let scan dirname =
  let readdir d = match Sys.readdir d with a -> a | exception Sys_error _ -> [||] in
  let kinds =
    readdir dirname
    |> Array.to_list
    |> List.filter (fun k ->
           match Sys.is_directory (Filename.concat dirname k) with
           | b -> b
           | exception Sys_error _ -> false)
  in
  kinds
  |> List.concat_map (fun k ->
         let kd = Filename.concat dirname k in
         readdir kd
         |> Array.to_list
         |> List.filter (fun f -> Filename.check_suffix f ".bin")
         |> List.map (fun f -> Filename.concat kd f))
  |> List.sort String.compare
  |> List.map inspect_file
