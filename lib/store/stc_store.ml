module Fnv = Stc_util.Fnv
module Crc32 = Stc_util.Crc32
module Registry = Stc_obs.Registry
module Counter = Stc_obs.Metric.Counter
module Histogram = Stc_obs.Metric.Histogram
module Tracer = Stc_obs.Trace
module Json = Stc_obs.Json
module Program = Stc_cfg.Program
module Proc = Stc_cfg.Proc
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator
module Recorder = Stc_trace.Recorder
module Segment = Stc_trace.Segment
module Source = Stc_trace.Source
module Engine = Stc_fetch.Engine

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

module Key = struct
  type t = string

  let of_parts parts =
    List.fold_left
      (fun h p -> Fnv.string (Fnv.int h (String.length p)) p)
      Fnv.empty parts
    |> Fnv.to_hex

  let hex k = k

  (* Keys are their hex rendering, so reconstructing one from a scanned
     file name is the identity. *)
  let of_hex h = h
end

(* ------------------------------------------------------------------ *)
(* Binary payload codecs: LEB128 varints for the (non-negative) ints
   that dominate every artifact, raw little-endian words for the rest.
   [Dec] raises {!Corrupt} on any malformed input, including trailing
   bytes, so a CRC-valid payload from a buggy or foreign writer still
   degrades to a recomputation. *)

module Enc = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    u8 b v;
    u8 b (v lsr 8);
    u8 b (v lsr 16);
    u8 b (v lsr 24)

  let varint b v =
    if v < 0 then invalid_arg "Stc_store.Enc.varint: negative";
    let rec go v =
      if v < 0x80 then u8 b v
      else begin
        u8 b (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let i64 b v =
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  let float b v = i64 b (Int64.bits_of_float v)

  let str b s =
    varint b (String.length s);
    Buffer.add_string b s
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let make s = { s; pos = 0 }

  let u8 d =
    if d.pos >= String.length d.s then corrupt "unexpected end of payload";
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u32 d =
    let a = u8 d in
    let b = u8 d in
    let c = u8 d in
    let e = u8 d in
    a lor (b lsl 8) lor (c lsl 16) lor (e lsl 24)

  let varint d =
    let rec go shift acc =
      if shift > 62 then corrupt "varint too long";
      let byte = u8 d in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
    in
    let v = go 0 0 in
    if v < 0 then corrupt "varint out of range";
    v

  let i64 d =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 d)) (8 * i))
    done;
    !v

  let float d = Int64.float_of_bits (i64 d)

  let str d =
    let n = varint d in
    if d.pos + n > String.length d.s then corrupt "string runs past payload";
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let finish d =
    if d.pos <> String.length d.s then
      corrupt "%d trailing bytes" (String.length d.s - d.pos)
end

(* ------------------------------------------------------------------ *)
(* The on-disk container. *)

let magic = "STCA"

let container_version = 1

type t = {
  dir : string;
  metrics : Registry.t option;
  hits : Counter.t;
  misses : Counter.t;
  writes : Counter.t;
  corrupt_c : Counter.t;
  bytes_read : Counter.t;
  bytes_written : Counter.t;
  read_us : Histogram.t;  (* lookup+decode latency, microseconds *)
  write_us : Histogram.t;
  tracer : Tracer.t option;
  tr_hit : int;  (* interned slice names; 0 when [tracer = None] *)
  tr_miss : int;
  tr_write : int;
}

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?metrics ?trace dirname =
  mkdir_p dirname;
  let c name =
    match metrics with
    | Some reg -> Registry.counter reg ("store." ^ name)
    | None -> Counter.make ("store." ^ name)
  in
  let h name =
    match metrics with
    | Some reg -> Registry.histogram reg ("store." ^ name)
    | None -> Histogram.make ("store." ^ name)
  in
  let tr_hit, tr_miss, tr_write =
    match trace with
    | None -> (0, 0, 0)
    | Some tr ->
        ( Tracer.intern tr "store.hit",
          Tracer.intern tr "store.miss",
          Tracer.intern tr "store.write" )
  in
  {
    dir = dirname;
    metrics;
    hits = c "hits";
    misses = c "misses";
    writes = c "writes";
    corrupt_c = c "corrupt";
    bytes_read = c "bytes_read";
    bytes_written = c "bytes_written";
    read_us = h "read_us";
    write_us = h "write_us";
    tracer = trace;
    tr_hit;
    tr_miss;
    tr_write;
  }

let of_ctx ctx =
  match ctx.Stc_obs.Run.store with
  | None -> None
  | Some d ->
      Some
        (open_ ?metrics:ctx.Stc_obs.Run.metrics ?trace:ctx.Stc_obs.Run.trace d)

let warning t ~kind ~key ~reason =
  match t.metrics with
  | None -> ()
  | Some reg ->
      Registry.event reg ~kind:"store.warning"
        [
          ("artifact", Json.Str kind);
          ("key", Json.Str (Key.hex key));
          ("reason", Json.Str reason);
        ]

let entry_path t ~kind key =
  Filename.concat (Filename.concat t.dir kind) (Key.hex key ^ ".bin")

(* Parse a whole entry file. [Error (`Damage reason)] is physical
   corruption (counts on [store.corrupt]); [Error (`Stale reason)] is a
   well-formed entry from another format generation. *)
let parse_entry contents =
  let n = String.length contents in
  let header_err reason = Error (`Damage reason) in
  if n < String.length magic + 1 then header_err "truncated header"
  else if String.sub contents 0 (String.length magic) <> magic then
    header_err "bad magic"
  else
    let d = Dec.make contents in
    d.Dec.pos <- String.length magic;
    match
      let cv = Dec.u8 d in
      let kind = Dec.str d in
      let version = Dec.u32 d in
      let payload_len = Dec.u32 d in
      (cv, kind, version, payload_len)
    with
    | exception Corrupt reason -> header_err reason
    | cv, kind, version, payload_len ->
        if cv <> container_version then
          Error (`Stale (Printf.sprintf "container version %d" cv))
        else
          let pos = d.Dec.pos in
          if payload_len < 0 || pos + payload_len + 4 <> n then
            header_err "payload length mismatch"
          else
            let crc_stored =
              d.Dec.pos <- pos + payload_len;
              Dec.u32 d
            in
            if Crc32.sub contents ~pos ~len:payload_len <> crc_stored then
              header_err "checksum mismatch"
            else Ok (kind, version, String.sub contents pos payload_len)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Some contents
  | exception Sys_error _ -> None

type outcome =
  | Hit of string
  | Miss
  | Stale of string
  | Damaged of string

let lookup t ~kind ~version key =
  let path = entry_path t ~kind key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | None -> Stale "unreadable file"
    | Some contents -> (
        match parse_entry contents with
        | Error (`Damage reason) -> Damaged reason
        | Error (`Stale reason) -> Stale reason
        | Ok (k, v, payload) ->
            if k <> kind then
              Damaged (Printf.sprintf "kind %S in a %S entry" k kind)
            else if v <> version then
              Stale (Printf.sprintf "format version %d, want %d" v version)
            else Hit payload)

let count_hit t payload =
  Counter.incr t.hits;
  Counter.add t.bytes_read (String.length payload)

let count_non_hit t ~kind ~key = function
  | Hit _ -> assert false
  | Miss -> Counter.incr t.misses
  | Stale reason ->
      Counter.incr t.misses;
      warning t ~kind ~key ~reason
  | Damaged reason ->
      Counter.incr t.misses;
      Counter.incr t.corrupt_c;
      warning t ~kind ~key ~reason

(* Latency + timeline bookkeeping around one lookup (or write). The
   slice name is picked at the end, when the outcome is known, so hits
   and misses get distinct Perfetto tracks; [bytes] rides along as the
   slice's argument. Two clock reads per operation — noise next to the
   file I/O being measured. *)
let op_start t =
  ( Unix.gettimeofday (),
    match t.tracer with Some tr -> Tracer.now tr | None -> 0.0 )

let op_finish t histo slice ~bytes (t0, ts) =
  Histogram.add histo (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  match t.tracer with
  | None -> ()
  | Some tr -> Tracer.complete ~arg:bytes tr slice ~start:ts

let read t ~kind ~version key =
  let clk = op_start t in
  match lookup t ~kind ~version key with
  | Hit payload ->
      count_hit t payload;
      op_finish t t.read_us t.tr_hit ~bytes:(String.length payload) clk;
      Some payload
  | other ->
      count_non_hit t ~kind ~key other;
      op_finish t t.read_us t.tr_miss ~bytes:0 clk;
      None

let tmp_counter = Atomic.make 0

let write t ~kind ~version key payload =
  let clk = op_start t in
  Fun.protect ~finally:(fun () ->
      op_finish t t.write_us t.tr_write ~bytes:(String.length payload) clk)
  @@ fun () ->
  let path = entry_path t ~kind key in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Enc.u8 b container_version;
  Enc.str b kind;
  Enc.u32 b version;
  Enc.u32 b (String.length payload);
  Buffer.add_string b payload;
  Enc.u32 b (Crc32.string payload);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    mkdir_p (Filename.dirname path);
    Out_channel.with_open_bin tmp (fun oc -> Buffer.output_buffer oc b);
    Sys.rename tmp path
  with
  | () ->
      Counter.incr t.writes;
      Counter.add t.bytes_written (String.length payload)
  | exception Sys_error reason ->
      (try Sys.remove tmp with Sys_error _ -> ());
      warning t ~kind ~key ~reason
  | exception Unix.Unix_error (e, _, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      warning t ~kind ~key ~reason:(Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Typed artifacts. *)

(* Typed load: on a CRC-valid payload the decoder rejects, count the
   entry as damaged, not as a hit. *)
let load_with t ~kind ~version ~decode key =
  let clk = op_start t in
  match lookup t ~kind ~version key with
  | Hit payload -> (
      match decode payload with
      | v ->
          count_hit t payload;
          op_finish t t.read_us t.tr_hit ~bytes:(String.length payload) clk;
          Some v
      | exception Corrupt reason ->
          count_non_hit t ~kind ~key (Damaged reason);
          op_finish t t.read_us t.tr_miss ~bytes:0 clk;
          None)
  | other ->
      count_non_hit t ~kind ~key other;
      op_finish t t.read_us t.tr_miss ~bytes:0 clk;
      None

let cached_with ~load ~save store ~key compute =
  match store with
  | None -> compute ()
  | Some t -> (
      match load t ~key with
      | Some v -> v
      | None ->
          let v = compute () in
          save t ~key v;
          v)

module Trace = struct
  let kind = "trace"

  let version = 1

  let encode r =
    let b = Buffer.create 4096 in
    let n = Recorder.length r in
    Enc.varint b n;
    for i = 0 to n - 1 do
      Enc.varint b (Recorder.get r i)
    done;
    let marks = Recorder.marks r in
    Enc.varint b (List.length marks);
    List.iter
      (fun (name, pos) ->
        Enc.str b name;
        Enc.varint b pos)
      marks;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let n = Dec.varint d in
    let ids = Array.init n (fun _ -> Dec.varint d) in
    let n_marks = Dec.varint d in
    let marks =
      List.init n_marks (fun _ ->
          let name = Dec.str d in
          let pos = Dec.varint d in
          (name, pos))
    in
    Dec.finish d;
    Recorder.of_ids ids ~marks

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key r = write t ~kind ~version key (encode r)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

(* Chunked traces: a manifest record plus one CRC-checked container per
   segment, so huge traces replay warm through a {!Source} without ever
   being fully resident, and damage is repaired at segment granularity
   (a re-[save] rewrites only the segments that fail to read back). *)
module Chunked = struct
  let manifest_kind = "trace-man"

  let segment_kind = "trace-seg"

  let version = 1

  let default_segment_blocks = Source.default_segment_blocks

  type manifest = {
    m_total_blocks : int;
    m_segment_blocks : int;
    m_seg_lens : int array;
    m_marks : (string * int) list;
    m_ids_hash : int64;  (* Recorder.hash of the concatenated ids *)
  }

  let seg_key key i =
    Key.of_parts [ segment_kind; Key.hex key; string_of_int i ]

  let encode_manifest m =
    let b = Buffer.create 256 in
    Enc.varint b m.m_total_blocks;
    Enc.varint b m.m_segment_blocks;
    Enc.varint b (Array.length m.m_seg_lens);
    Array.iter (Enc.varint b) m.m_seg_lens;
    Enc.varint b (List.length m.m_marks);
    List.iter
      (fun (name, pos) ->
        Enc.str b name;
        Enc.varint b pos)
      m.m_marks;
    Enc.i64 b m.m_ids_hash;
    Buffer.contents b

  let decode_manifest payload =
    let d = Dec.make payload in
    let m_total_blocks = Dec.varint d in
    let m_segment_blocks = Dec.varint d in
    let n_segs = Dec.varint d in
    let m_seg_lens = Array.init n_segs (fun _ -> Dec.varint d) in
    let n_marks = Dec.varint d in
    let m_marks =
      List.init n_marks (fun _ ->
          let name = Dec.str d in
          let pos = Dec.varint d in
          (name, pos))
    in
    let m_ids_hash = Dec.i64 d in
    Dec.finish d;
    if Array.fold_left ( + ) 0 m_seg_lens <> m_total_blocks then
      corrupt "segment lengths do not sum to the total";
    { m_total_blocks; m_segment_blocks; m_seg_lens; m_marks; m_ids_hash }

  let encode_segment seg =
    let n = Segment.length seg in
    let b = Buffer.create ((n * 2) + 8) in
    Enc.varint b n;
    for i = 0 to n - 1 do
      Enc.varint b (Segment.get seg i)
    done;
    Buffer.contents b

  let decode_segment ~base payload =
    let d = Dec.make payload in
    let n = Dec.varint d in
    let ids = Segment.alloc n in
    for i = 0 to n - 1 do
      Bigarray.Array1.set ids i (Dec.varint d)
    done;
    Dec.finish d;
    Segment.make ids ~base

  let load_manifest t ~key =
    load_with t ~kind:manifest_kind ~version ~decode:decode_manifest key

  let load_segment t ~key ~base =
    load_with t ~kind:segment_kind ~version ~decode:(decode_segment ~base) key

  let save ?(segment_blocks = default_segment_blocks) t ~key r =
    if segment_blocks <= 0 then
      invalid_arg "Chunked.save: segment_blocks must be positive";
    let len = Recorder.length r in
    let n_segs = (len + segment_blocks - 1) / segment_blocks in
    let m_seg_lens = Array.make n_segs 0 in
    (* segments first, manifest last: a crash mid-save leaves segments
       without a manifest (a plain miss), never a manifest pointing at
       absent segments *)
    for i = 0 to n_segs - 1 do
      let base = i * segment_blocks in
      let blocks = min segment_blocks (len - base) in
      m_seg_lens.(i) <- blocks;
      let sk = seg_key key i in
      let fresh = Recorder.segment r ~base ~blocks in
      let intact =
        match load_segment t ~key:sk ~base with
        | Some old when Segment.length old = blocks ->
          let rec eq j =
            j >= blocks
            || (Segment.get old j = Segment.get fresh j && eq (j + 1))
          in
          eq 0
        | Some _ | None -> false
      in
      if not intact then
        write t ~kind:segment_kind ~version sk (encode_segment fresh)
    done;
    let m =
      {
        m_total_blocks = len;
        m_segment_blocks = segment_blocks;
        m_seg_lens;
        m_marks = Recorder.marks r;
        m_ids_hash = Recorder.hash r;
      }
    in
    write t ~kind:manifest_kind ~version key (encode_manifest m)

  let source t ~key =
    match load_manifest t ~key with
    | None -> None
    | Some m ->
      let n_segs = Array.length m.m_seg_lens in
      (* Eagerly read and CRC-check every segment once (decoded segments
         are dropped immediately, so residency stays one segment), and
         fold the content hash so a damaged or foreign segment degrades
         to a recompute here rather than failing mid-replay. *)
      let ok = ref true in
      let base = ref 0 in
      let h = ref Fnv.empty in
      for i = 0 to n_segs - 1 do
        if !ok then begin
          match load_segment t ~key:(seg_key key i) ~base:!base with
          | Some s when Segment.length s = m.m_seg_lens.(i) ->
            for j = 0 to Segment.length s - 1 do
              h := Fnv.int !h (Segment.unsafe_get s j)
            done;
            base := !base + m.m_seg_lens.(i)
          | Some _ | None -> ok := false
        end
      done;
      if (not !ok) || !base <> m.m_total_blocks || !h <> m.m_ids_hash then begin
        if !ok then
          warning t ~kind:manifest_kind ~key ~reason:"segment content drift";
        None
      end
      else begin
        let i = ref 0 and pos = ref 0 in
        let src =
          Source.make ~total_blocks:m.m_total_blocks (fun () ->
              if !i >= n_segs then None
              else begin
                let sk = seg_key key !i in
                let b = !pos in
                let ln = m.m_seg_lens.(!i) in
                incr i;
                pos := !pos + ln;
                match load_segment t ~key:sk ~base:b with
                | Some s when Segment.length s = ln -> Some s
                | Some _ | None ->
                  (* validated moments ago; only a concurrent writer can
                     get here, and truncating silently would corrupt
                     results *)
                  corrupt "chunked segment %d vanished mid-replay" !i
              end)
        in
        Some (m, src)
      end

  let load t ~key =
    match source t ~key with
    | None -> None
    | Some (m, src) -> (
      match Source.to_array src with
      | ids -> Some (Recorder.of_ids ids ~marks:m.m_marks)
      | exception Corrupt reason ->
        warning t ~kind:manifest_kind ~key ~reason;
        None)

  let cached ?segment_blocks store ~key f =
    cached_with ~load
      ~save:(fun t ~key r -> save ?segment_blocks t ~key r)
      store ~key f
end

module Layout = struct
  let kind = "layout"

  let version = 1

  let encode (l : Stc_layout.Layout.t) =
    let b = Buffer.create 1024 in
    Enc.str b l.Stc_layout.Layout.name;
    let addr = l.Stc_layout.Layout.addr in
    Enc.varint b (Array.length addr);
    Array.iter (Enc.varint b) addr;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let name = Dec.str d in
    let n = Dec.varint d in
    let addr = Array.init n (fun _ -> Dec.varint d) in
    Dec.finish d;
    { Stc_layout.Layout.name; addr }

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key l = write t ~kind ~version key (encode l)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

module Packed = struct
  let kind = "packed"

  let version = 1

  let max_persist_words = 4_000_000

  let encode p =
    let b = Buffer.create 4096 in
    let len = Stc_fetch.Packed.length p in
    let words = Stc_fetch.Packed.raw p in
    Enc.varint b len;
    for i = 0 to len - 1 do
      Enc.varint b words.(i)
    done;
    Enc.varint b (Stc_fetch.Packed.total_instrs p);
    Enc.varint b (Stc_fetch.Packed.taken_branches p);
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let len = Dec.varint d in
    let words = Array.make (max len 1) 0 in
    for i = 0 to len - 1 do
      words.(i) <- Dec.varint d
    done;
    let total_instrs = Dec.varint d in
    let taken_branches = Dec.varint d in
    Dec.finish d;
    match Stc_fetch.Packed.of_raw ~words ~len ~total_instrs ~taken_branches with
    | p -> p
    | exception Invalid_argument m -> corrupt "%s" m

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key p =
    if Stc_fetch.Packed.memory_words p <= max_persist_words then
      write t ~kind ~version key (encode p)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

module Result = struct
  let kind = "result"

  (* v2 appends the replacement/prefetch family; v1 entries decode as
     Stale and re-simulate, never as silently-zeroed results *)
  let version = 2

  let encode (r : Engine.result) =
    let b = Buffer.create 128 in
    Enc.varint b r.Engine.instrs;
    Enc.varint b r.Engine.cycles;
    Enc.varint b r.Engine.fetch_cycles;
    Enc.varint b r.Engine.seq_cycles;
    Enc.varint b r.Engine.tc_cycles;
    Enc.varint b r.Engine.icache_accesses;
    Enc.varint b r.Engine.icache_misses;
    Enc.varint b r.Engine.icache_victim_hits;
    Enc.varint b r.Engine.tc_lookups;
    Enc.varint b r.Engine.tc_hits;
    Enc.varint b r.Engine.taken_branches;
    Enc.float b r.Engine.instrs_between_taken;
    Enc.varint b r.Engine.cond_branches;
    Enc.varint b r.Engine.mispredictions;
    Enc.varint b r.Engine.icache_evictions;
    Enc.varint b r.Engine.prefetch_issued;
    Enc.varint b r.Engine.prefetch_completed;
    Enc.varint b r.Engine.prefetch_late;
    Enc.varint b r.Engine.prefetch_useful;
    Buffer.contents b

  let decode payload =
    let d = Dec.make payload in
    let instrs = Dec.varint d in
    let cycles = Dec.varint d in
    let fetch_cycles = Dec.varint d in
    let seq_cycles = Dec.varint d in
    let tc_cycles = Dec.varint d in
    let icache_accesses = Dec.varint d in
    let icache_misses = Dec.varint d in
    let icache_victim_hits = Dec.varint d in
    let tc_lookups = Dec.varint d in
    let tc_hits = Dec.varint d in
    let taken_branches = Dec.varint d in
    let instrs_between_taken = Dec.float d in
    let cond_branches = Dec.varint d in
    let mispredictions = Dec.varint d in
    let icache_evictions = Dec.varint d in
    let prefetch_issued = Dec.varint d in
    let prefetch_completed = Dec.varint d in
    let prefetch_late = Dec.varint d in
    let prefetch_useful = Dec.varint d in
    Dec.finish d;
    {
      Engine.instrs;
      cycles;
      fetch_cycles;
      seq_cycles;
      tc_cycles;
      icache_accesses;
      icache_misses;
      icache_victim_hits;
      tc_lookups;
      tc_hits;
      taken_branches;
      instrs_between_taken;
      cond_branches;
      mispredictions;
      icache_evictions;
      prefetch_issued;
      prefetch_completed;
      prefetch_late;
      prefetch_useful;
    }

  let load t ~key = load_with t ~kind ~version ~decode key

  let save t ~key r = write t ~kind ~version key (encode r)

  let cached store ~key f = cached_with ~load ~save store ~key f
end

(* ------------------------------------------------------------------ *)
(* Content fingerprints. *)

module Fp = struct
  let program (p : Program.t) =
    let h = ref Fnv.empty in
    let add v = h := Fnv.int !h v in
    let adds s = h := Fnv.string (Fnv.int !h (String.length s)) s in
    add (Array.length p.Program.procs);
    Array.iter
      (fun (pr : Proc.t) ->
        add pr.Proc.pid;
        adds pr.Proc.name;
        adds (Proc.subsystem_name pr.Proc.subsystem);
        add pr.Proc.entry;
        add (Array.length pr.Proc.blocks);
        Array.iter add pr.Proc.blocks)
      p.Program.procs;
    add (Array.length p.Program.blocks);
    Array.iter
      (fun (b : Block.t) ->
        add b.Block.id;
        add b.Block.size;
        match b.Block.term with
        | Terminator.Fall x ->
            add 0;
            add x
        | Terminator.Jump x ->
            add 1;
            add x
        | Terminator.Cond { taken; fallthru } ->
            add 2;
            add taken;
            add fallthru
        | Terminator.Call { callee; next } ->
            add 3;
            add callee;
            add next
        | Terminator.Icall { callees; next } ->
            add 4;
            add (Array.length callees);
            Array.iter add callees;
            add next
        | Terminator.Ret -> add 5)
      p.Program.blocks;
    Fnv.to_hex !h

  let layout (l : Stc_layout.Layout.t) =
    let addr = l.Stc_layout.Layout.addr in
    Fnv.to_hex (Fnv.ints (Fnv.int Fnv.empty (Array.length addr)) addr)

  (* The algorithm identity AND its full parameter record: two registered
     algorithms given identical profiles — or one algorithm at two grid
     points — can never collide on a cached layout artifact. *)
  let layout_algo ~algo (p : Stc_layout.Algo.params) =
    let h = Fnv.string (Fnv.int Fnv.empty (String.length algo)) algo in
    let h = Fnv.int h p.Stc_layout.Algo.seq.Stc_layout.Seqbuild.exec_threshold in
    let h =
      Fnv.int64 h
        (Int64.bits_of_float p.Stc_layout.Algo.seq.Stc_layout.Seqbuild.branch_threshold)
    in
    let h = Fnv.int h p.Stc_layout.Algo.cache_bytes in
    let h = Fnv.int h p.Stc_layout.Algo.cfa_bytes in
    Fnv.to_hex h

  let trace r =
    let h = Fnv.int64 Fnv.empty (Recorder.hash r) in
    let h =
      List.fold_left
        (fun h (name, pos) ->
          Fnv.int (Fnv.string (Fnv.int h (String.length name)) name) pos)
        h (Recorder.marks r)
    in
    Fnv.to_hex h

  let engine_config (c : Engine.config) =
    let h =
      Fnv.empty
      |> Fun.flip Fnv.int c.Engine.Config.max_branches
      |> Fun.flip Fnv.int c.Engine.Config.line_bytes
      |> Fun.flip Fnv.int c.Engine.Config.miss_penalty
    in
    (* folded only when present, so every pre-FDIP key is unchanged *)
    let h =
      match c.Engine.Config.fdip with
      | None -> h
      | Some f ->
        Fnv.int h 1
        |> Fun.flip Fnv.int f.Stc_fetch.Fdip.ftq_depth
        |> Fun.flip Fnv.int f.Stc_fetch.Fdip.mshrs
        |> Fun.flip Fnv.int f.Stc_fetch.Fdip.degree
        |> Fun.flip Fnv.int f.Stc_fetch.Fdip.latency
    in
    Fnv.to_hex h

  let int_array (a : int array) =
    Fnv.to_hex (Fnv.ints (Fnv.int Fnv.empty (Array.length a)) a)
end

(* ------------------------------------------------------------------ *)
(* Statistics and inspection. *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  corrupt : int;
  bytes_read : int;
  bytes_written : int;
}

let stats (t : t) =
  {
    hits = Counter.value t.hits;
    misses = Counter.value t.misses;
    writes = Counter.value t.writes;
    corrupt = Counter.value t.corrupt_c;
    bytes_read = Counter.value t.bytes_read;
    bytes_written = Counter.value t.bytes_written;
  }

type entry = {
  e_path : string;
  e_kind : string;
  e_key : string;
  e_version : int;
  e_payload_bytes : int;
  e_ok : bool;
  e_reason : string option;
}

let inspect_file path =
  let e_key = Filename.remove_extension (Filename.basename path) in
  let broken reason =
    {
      e_path = path;
      e_kind = "?";
      e_key;
      e_version = -1;
      e_payload_bytes = 0;
      e_ok = false;
      e_reason = Some reason;
    }
  in
  match read_file path with
  | None -> broken "unreadable file"
  | Some contents -> (
      match parse_entry contents with
      | Error (`Damage reason) | Error (`Stale reason) -> broken reason
      | Ok (kind, version, payload) ->
          {
            e_path = path;
            e_kind = kind;
            e_key;
            e_version = version;
            e_payload_bytes = String.length payload;
            e_ok = true;
            e_reason = None;
          })

let payload_of_file path =
  match read_file path with
  | None -> None
  | Some contents -> (
      match parse_entry contents with
      | Error _ -> None
      | Ok (_kind, _version, payload) -> Some payload)

let scan dirname =
  let readdir d = match Sys.readdir d with a -> a | exception Sys_error _ -> [||] in
  let kinds =
    readdir dirname
    |> Array.to_list
    |> List.filter (fun k ->
           match Sys.is_directory (Filename.concat dirname k) with
           | b -> b
           | exception Sys_error _ -> false)
  in
  kinds
  |> List.concat_map (fun k ->
         let kd = Filename.concat dirname k in
         readdir kd
         |> Array.to_list
         |> List.filter (fun f -> Filename.check_suffix f ".bin")
         |> List.map (fun f -> Filename.concat kd f))
  |> List.sort String.compare
  |> List.map inspect_file
