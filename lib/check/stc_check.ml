module Json = Stc_obs.Json
module Run = Stc_core.Run
module Pipeline = Stc_core.Pipeline
module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Profile = Stc_profile.Profile
module Layout = Stc_layout.Layout
module Mapping = Stc_layout.Mapping
module L = Stc_layout
module View = Stc_fetch.View
module Engine = Stc_fetch.Engine
module Real_icache = Stc_cachesim.Icache
module Real_tc = Stc_fetch.Tracecache

(* ------------------------------------------------------------------ *)
(* Layout validators                                                   *)
(* ------------------------------------------------------------------ *)

module Layouts = struct
  type violation =
    | Wrong_block_count of { expected : int; got : int }
    | Unplaced of { block : int; count : int }
    | Misaligned of { block : int; addr : int }
    | Overlap of { block_a : int; block_b : int; addr : int }
    | Plan_not_partition of { block : int; times : int }
    | Cfa_overflow of { block : int; addr : int; limit : int }
    | Cfa_intrusion of { block : int; addr : int; window : int }

  let violation_to_string = function
    | Wrong_block_count { expected; got } ->
      Printf.sprintf "layout covers %d blocks, program has %d" got expected
    | Unplaced { block; count } ->
      Printf.sprintf "executed block %d (count %d) has no valid placement"
        block count
    | Misaligned { block; addr } ->
      Printf.sprintf "block %d at address %d is not instruction-aligned"
        block addr
    | Overlap { block_a; block_b; addr } ->
      Printf.sprintf "blocks %d and %d overlap at address %d" block_a
        block_b addr
    | Plan_not_partition { block; times } ->
      Printf.sprintf "plan mentions block %d %d times (want exactly 1)"
        block times
    | Cfa_overflow { block; addr; limit } ->
      Printf.sprintf "CFA block %d at address %d ends past the CFA (%d bytes)"
        block addr limit
    | Cfa_intrusion { block; addr; window } ->
      Printf.sprintf
        "second-pass block %d at address %d intrudes into the CFA window of \
         logical cache %d"
        block addr window

  let structure prog (layout : Layout.t) =
    let expected = Array.length prog.Program.blocks in
    let got = Array.length layout.Layout.addr in
    if got <> expected then [ Wrong_block_count { expected; got } ]
    else begin
      let vs = ref [] in
      let add v = vs := v :: !vs in
      Array.iteri
        (fun b a ->
          if a < 0 then add (Unplaced { block = b; count = 0 })
          else if a mod Block.instr_bytes <> 0 then
            add (Misaligned { block = b; addr = a }))
        layout.Layout.addr;
      (* non-overlap: sort by address, check adjacent byte ranges *)
      let order = Array.init got (fun b -> b) in
      Array.sort
        (fun a b ->
          compare
            (layout.Layout.addr.(a), a)
            (layout.Layout.addr.(b), b))
        order;
      for i = 0 to got - 2 do
        let a = order.(i) and b = order.(i + 1) in
        let a_end =
          layout.Layout.addr.(a) + Block.byte_size prog.Program.blocks.(a)
        in
        if a_end > layout.Layout.addr.(b) then
          add
            (Overlap
               { block_a = a; block_b = b; addr = layout.Layout.addr.(b) })
      done;
      List.rev !vs
    end

  let coverage profile (layout : Layout.t) =
    let n = Array.length layout.Layout.addr in
    let counts = Profile.counts profile in
    let vs = ref [] in
    Array.iteri
      (fun b count ->
        if count > 0 && (b >= n || layout.Layout.addr.(b) < 0) then
          vs := Unplaced { block = b; count } :: !vs)
      counts;
    List.rev !vs

  let cfa prog (layout : Layout.t) ~cache_bytes ~cfa_bytes
      (plan : Mapping.plan) =
    let n = Array.length prog.Program.blocks in
    if Array.length layout.Layout.addr <> n then
      (* structure already reports this; the per-block checks below
         would index out of bounds *)
      []
    else begin
      let vs = ref [] in
      let add v = vs := v :: !vs in
      (* the three parts must partition the block set *)
      let times = Array.make n 0 in
      let mention b = if b >= 0 && b < n then times.(b) <- times.(b) + 1 in
      List.iter (List.iter (List.iter mention))
        [ plan.Mapping.cfa_seqs; plan.Mapping.other_seqs ];
      List.iter mention plan.Mapping.cold;
      Array.iteri
        (fun b t -> if t <> 1 then add (Plan_not_partition { block = b; times = t }))
        times;
      (* first-pass blocks live wholly inside the CFA *)
      List.iter
        (List.iter (fun b ->
             let a = layout.Layout.addr.(b) in
             if a < 0 || a + Block.byte_size prog.Program.blocks.(b) > cfa_bytes
             then add (Cfa_overflow { block = b; addr = a; limit = cfa_bytes })))
        plan.Mapping.cfa_seqs;
      (* second-pass blocks never touch a CFA window *)
      if cfa_bytes > 0 then
        List.iter
          (List.iter (fun b ->
               let s = layout.Layout.addr.(b) in
               let e = s + Block.byte_size prog.Program.blocks.(b) in
               if s >= 0 then
                 for k = s / cache_bytes to (e - 1) / cache_bytes do
                   let w_start = k * cache_bytes in
                   if max s w_start < min e (w_start + cfa_bytes) then
                     add (Cfa_intrusion { block = b; addr = s; window = k })
                 done))
          plan.Mapping.other_seqs;
      List.rev !vs
    end

  let all ?cfa_plan profile layout =
    let prog = Profile.program profile in
    structure prog layout
    @ coverage profile layout
    @
    match cfa_plan with
    | None -> []
    | Some (plan, cache_bytes, cfa_bytes) ->
      cfa prog layout ~cache_bytes ~cfa_bytes plan
end

(* ------------------------------------------------------------------ *)
(* Reference models                                                    *)
(* ------------------------------------------------------------------ *)

module Oracle = struct
  (* The models below deliberately share neither code nor data layout
     with the simulators they check: recency is an MRU-ordered list, not
     timestamps; the trace cache is an association list, not an array;
     the fetch walker advances one instruction at a time, not one block.
     Outcome equivalence is argued per operation in comments. *)

  module Icache = struct
    type t = {
      assoc : int;
      line_bytes : int;
      n_sets : int;
      victim_cap : int;
      policy : Real_icache.policy;
      sets : int list array;  (* LRU: resident lines per set, MRU first *)
      rsets : (int * int) list array;
          (* RRIP: (line, rrpv) per set, oldest install first *)
      mutable victim : int list;  (* insertion order, MRU first *)
      mutable marks : int list;  (* prefetched-and-not-yet-demanded lines *)
      mutable evictions : int;  (* valid lines replaced (non-LRU only) *)
    }

    let create ?(assoc = 1) ?(line_bytes = 32) ?(victim_lines = 0)
        ?(policy = Real_icache.Lru) ~size_bytes () =
      if assoc < 1 then invalid_arg "Oracle.Icache.create: assoc";
      if line_bytes <= 0 || size_bytes <= 0
         || size_bytes mod (assoc * line_bytes) <> 0
      then invalid_arg "Oracle.Icache.create: geometry";
      {
        assoc;
        line_bytes;
        n_sets = size_bytes / (assoc * line_bytes);
        victim_cap = victim_lines;
        policy;
        sets = Array.make (size_bytes / (assoc * line_bytes)) [];
        rsets = Array.make (size_bytes / (assoc * line_bytes)) [];
        victim = [];
        marks = [];
        evictions = 0;
      }

    let evictions t = t.evictions

    let remove x l = List.filter (fun y -> y <> x) l

    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: tl -> x :: take (n - 1) tl

    (* Probe the victim buffer for [line] exactly as [victim_swap] does:
       the evicted line (if any) replaces the hit slot on a victim hit,
       or an invalid/LRU slot on a victim miss; nothing is inserted when
       the main set had a free way. *)
    let victim_outcome t line evicted =
      if t.victim_cap = 0 then Real_icache.Miss
      else if List.mem line t.victim then begin
        let rest = remove line t.victim in
        t.victim <- (match evicted with Some e -> e :: rest | None -> rest);
        Real_icache.Victim_hit
      end
      else begin
        (match evicted with
        | Some e -> t.victim <- take t.victim_cap (e :: t.victim)
        | None -> ());
        Real_icache.Miss
      end

    (* Insertion RRPV, mirroring [Icache.insert_rrpv]. *)
    let rrip_insert t line =
      match t.policy with
      | Real_icache.Lru -> 0
      | Real_icache.Srrip -> 2
      | Real_icache.Trrip temps ->
        let temp = if line < Array.length temps then temps.(line) else 2 in
        if temp <= 0 then 0 else if temp = 1 then 2 else 3

    (* Install into an RRIP set: reuse a free way if one exists, else age
       every way uniformly until the maximum RRPV reaches 3 and evict the
       oldest-installed way standing there. The real cache breaks RRPV-3
       ties by minimum install stamp and hits never touch stamps, so its
       victim is always the oldest-installed RRPV-3 way — here the list
       is kept in install order (hits rewrite RRPVs in place, installs
       append at the tail), so that victim is the first match. Returns
       the evicted line, if any. *)
    let rrip_install t set line ~rrpv =
      let ways = t.rsets.(set) in
      if List.length ways < t.assoc then begin
        t.rsets.(set) <- ways @ [ (line, rrpv) ];
        None
      end
      else begin
        let m = List.fold_left (fun acc (_, r) -> max acc r) 0 ways in
        let ways = List.map (fun (l, r) -> (l, r + 3 - m)) ways in
        let rec split seen = function
          | (l, 3) :: tl -> (l, List.rev_append seen tl)
          | w :: tl -> split (w :: seen) tl
          | [] -> assert false
        in
        let victim, rest = split [] ways in
        t.rsets.(set) <- rest @ [ (line, rrpv) ];
        t.evictions <- t.evictions + 1;
        t.marks <- remove victim t.marks;
        Some victim
      end

    (* Equivalent to [Stc_cachesim.Icache.access_demand] (and, with the
       returned mark flag ignored, to [access_uncounted]): a hit
       refreshes the replacement state (stamps there, move-to-front
       here under LRU; RRPV := 0 under RRIP) and consumes the line's
       prefetch mark; a miss installs the line over an invalid way if
       one exists (which invalid way is chosen is unobservable) or the
       policy's victim (LRU stamps are unique, so LRU = list tail), and
       the victim buffer receives the evicted line. *)
    let demand t addr =
      let line = addr / t.line_bytes in
      let set = line mod t.n_sets in
      match t.policy with
      | Real_icache.Lru ->
        let ways = t.sets.(set) in
        if List.mem line ways then begin
          t.sets.(set) <- line :: remove line ways;
          let was_pref = List.mem line t.marks in
          t.marks <- remove line t.marks;
          (Real_icache.Hit, was_pref)
        end
        else begin
          let evicted =
            if List.length ways >= t.assoc then
              Some (List.nth ways (t.assoc - 1))
            else None
          in
          t.sets.(set) <- line :: take (t.assoc - 1) ways;
          (match evicted with
          | Some e -> t.marks <- remove e t.marks
          | None -> ());
          (victim_outcome t line evicted, false)
        end
      | Real_icache.Srrip | Real_icache.Trrip _ ->
        let ways = t.rsets.(set) in
        if List.mem_assoc line ways then begin
          t.rsets.(set) <-
            List.map (fun (l, r) -> if l = line then (l, 0) else (l, r)) ways;
          let was_pref = List.mem line t.marks in
          t.marks <- remove line t.marks;
          (Real_icache.Hit, was_pref)
        end
        else begin
          let evicted = rrip_install t set line ~rrpv:(rrip_insert t line) in
          (victim_outcome t line evicted, false)
        end

    let access t addr = fst (demand t addr)

    let mem t addr =
      let line = addr / t.line_bytes in
      let set = line mod t.n_sets in
      match t.policy with
      | Real_icache.Lru -> List.mem line t.sets.(set)
      | Real_icache.Srrip | Real_icache.Trrip _ ->
        List.mem_assoc line t.rsets.(set)

    (* Mirror of [Stc_cachesim.Icache.fill_prefetch]: a no-op when the
       line is resident, else a normal install marked as prefetched —
       MRU under LRU, distant (RRPV 3) under RRIP — with the evicted
       line passing through the victim buffer. Never touches the access
       statistics. *)
    let fill_prefetch t addr =
      let line = addr / t.line_bytes in
      let set = line mod t.n_sets in
      if not (mem t addr) then begin
        (match t.policy with
        | Real_icache.Lru ->
          let ways = t.sets.(set) in
          let evicted =
            if List.length ways >= t.assoc then
              Some (List.nth ways (t.assoc - 1))
            else None
          in
          t.sets.(set) <- line :: take (t.assoc - 1) ways;
          (match evicted with
          | Some e -> t.marks <- remove e t.marks
          | None -> ());
          ignore (victim_outcome t line evicted)
        | Real_icache.Srrip | Real_icache.Trrip _ ->
          let evicted = rrip_install t set line ~rrpv:3 in
          ignore (victim_outcome t line evicted));
        t.marks <- line :: t.marks
      end
  end

  module Tracecache = struct
    type entry = { start_addr : int; n : int; br : int; outs : int }

    type t = {
      entries : int;
      width : int;
      max_branches : int;
      mutable slots : (int * entry) list;  (* index -> entry *)
    }

    let create ?(entries = 256) ?(width = 16) ?(max_branches = 3) () =
      if entries <= 0 then invalid_arg "Oracle.Tracecache.create: entries";
      { entries; width; max_branches; slots = [] }

    let index t addr = addr / 4 mod t.entries

    (* One instruction per recursion step; stops exactly where
       [Tracecache.build_trace_limits] stops (the width check at the
       loop head covers the hit-width-exactly-at-block-end case, where
       the block's branch is still recorded). *)
    let build t view (pos : View.pos) =
      let len = View.length view in
      let rec go n br outs idx off =
        if idx >= len || n >= t.width then (n, br, outs, idx, off)
        else
          let n = n + 1 and off = off + 1 in
          if off < View.block_size view idx then go n br outs idx off
          else
            let br, outs =
              if View.has_branch view idx then
                ( br + 1,
                  if View.taken view idx then outs lor (1 lsl br) else outs )
              else (br, outs)
            in
            if br >= t.max_branches then (n, br, outs, idx + 1, 0)
            else go n br outs (idx + 1) 0
      in
      go 0 0 0 pos.View.idx pos.View.off

    let lookup t view (pos : View.pos) =
      let a = View.addr view pos in
      match List.assoc_opt (index t a) t.slots with
      | Some e when e.start_addr = a ->
        let n, br, outs, eidx, eoff = build t view pos in
        if n = e.n && br = e.br && outs = e.outs then Some (n, eidx, eoff)
        else None
      | Some _ | None -> None

    let fill t view (pos : View.pos) =
      let a = View.addr view pos in
      let n, br, outs, _, _ = build t view pos in
      if n > 0 then begin
        let i = index t a in
        t.slots <-
          (i, { start_addr = a; n; br; outs }) :: List.remove_assoc i t.slots
      end
  end

  (* The SEQ.3 cycle model of Section 7.1, re-derived from the paper:
     per cycle either a whole trace-cache trace, or instructions from
     the fetch address one at a time until a taken branch, the third
     branch, the end of the two-line window or the end of the stream.
     [Engine.run_naive] takes whole blocks per inner step; supplying
     instruction-by-instruction must land on the same boundaries. *)
  let fetch ?(config = Engine.Config.default) ?icache ?trace_cache ?on_access
      view =
    let line = config.Engine.Config.line_bytes in
    let max_branches = config.Engine.Config.max_branches in
    let miss_penalty = config.Engine.Config.miss_penalty in
    let len = View.length view in
    let cycles = ref 0 and penalties = ref 0 and instrs = ref 0 in
    let seq_cycles = ref 0 and tc_cycles = ref 0 in
    let cond_branches = ref 0 in
    let accs = ref 0 and misses = ref 0 and vhits = ref 0 in
    let lookups = ref 0 and tc_hits = ref 0 in
    (* Decoupled-frontend reference model ([Stc_fetch.Fdip] re-derived):
       in-flight prefetches as an ordered (line, ready-cycle) association
       list, driven begin -> demand -> advance each cycle in the same
       order as the real engine. Live only with both an i-cache and an
       FDIP block in the config, exactly like the engine. *)
    let fdip =
      match (config.Engine.Config.fdip, icache) with
      | Some fc, Some c -> Some (fc, c)
      | _ -> None
    in
    let inflight = ref [] in
    let pf_issued = ref 0 and pf_completed = ref 0 in
    let pf_late = ref 0 and pf_useful = ref 0 in
    let fdip_begin now =
      match fdip with
      | None -> ()
      | Some (_, c) ->
        (* land elapsed prefetches in issue order *)
        let rec go acc = function
          | [] -> List.rev acc
          | (a, ready) :: tl ->
            if ready <= now then begin
              Icache.fill_prefetch c a;
              incr pf_completed;
              go acc tl
            end
            else go ((a, ready) :: acc) tl
        in
        inflight := go [] !inflight
    in
    (* One demand line probe under FDIP, returning its cycle charge. A
       line caught in flight lands now, counts as a (late) miss and is
       charged only the remaining latency, capped at the full penalty; a
       hit that consumes a prefetch mark was a useful prefetch. The
       [on_access] hook stays silent here by design: a lockstep
       [access_uncounted] shadow cannot mirror prefetch installs. *)
    let fdip_demand c ~now a =
      incr accs;
      match List.assoc_opt a !inflight with
      | Some ready ->
        inflight := List.remove_assoc a !inflight;
        Icache.fill_prefetch c a;
        incr pf_completed;
        incr pf_late;
        ignore (Icache.demand c a);
        incr misses;
        let remain = ready - now in
        if remain <= 0 then 0
        else if remain > miss_penalty then miss_penalty
        else remain
      | None -> (
        match Icache.demand c a with
        | Real_icache.Hit, was_pref ->
          if was_pref then incr pf_useful;
          0
        | Real_icache.Victim_hit, _ ->
          incr vhits;
          0
        | Real_icache.Miss, _ ->
          incr misses;
          miss_penalty)
    in
    (* Walk the FTQ — the next [ftq_depth] fetch targets starting at the
       cycle-start block — issuing each target's SEQ.3 line pair under
       the degree and MSHR bounds, skipping resident and in-flight
       lines. *)
    let fdip_advance ~now start_idx =
      match fdip with
      | None -> ()
      | Some (fc, c) ->
        let budget = ref fc.Stc_fetch.Fdip.degree in
        let issue a =
          if
            !budget > 0
            && List.length !inflight < fc.Stc_fetch.Fdip.mshrs
            && (not (Icache.mem c a))
            && not (List.mem_assoc a !inflight)
          then begin
            inflight := !inflight @ [ (a, now + fc.Stc_fetch.Fdip.latency) ];
            incr pf_issued;
            decr budget
          end
        in
        let k = ref 0 and stop = ref false in
        while (not !stop) && !k < fc.Stc_fetch.Fdip.ftq_depth do
          let i = start_idx + !k in
          if i >= len then stop := true
          else begin
            let l0 = View.block_addr view i / line * line in
            issue l0;
            issue (l0 + line);
            incr k
          end
        done
    in
    let access a =
      match icache with
      | None -> true
      | Some c ->
        incr accs;
        let o = Icache.access c a in
        (match on_access with Some f -> f ~addr:a o | None -> ());
        (match o with
        | Real_icache.Hit -> true
        | Real_icache.Victim_hit ->
          incr vhits;
          true
        | Real_icache.Miss ->
          incr misses;
          false)
    in
    let idx = ref 0 and off = ref 0 in
    while !idx < len do
      let pos = { View.idx = !idx; off = !off } in
      let start_idx = !idx in
      (* this iteration is fetch cycle !cycles + 1; elapsed prefetches
         land before anything else the cycle does, on both branches *)
      let fnow = !cycles + 1 in
      fdip_begin fnow;
      let hit =
        match trace_cache with
        | None -> None
        | Some tc ->
          incr lookups;
          let r = Tracecache.lookup tc view pos in
          (match r with Some _ -> incr tc_hits | None -> ());
          r
      in
      match hit with
      | Some (n, eidx, eoff) ->
        (* a trace-cache hit supplies the whole trace in one cycle;
           [fill] never stores empty traces, so n > 0 *)
        incr cycles;
        incr tc_cycles;
        instrs := !instrs + n;
        for i = !idx to eidx - 1 do
          if View.is_cond view i then incr cond_branches
        done;
        idx := eidx;
        off := eoff;
        fdip_advance ~now:fnow start_idx
      | None ->
        (* sequential cycle: two consecutive lines, then supply *)
        incr cycles;
        incr seq_cycles;
        let a = View.addr view pos in
        let line_no = a / line in
        (match fdip with
        | Some (_, c) ->
          let c1 = fdip_demand c ~now:fnow (line_no * line) in
          let c2 = fdip_demand c ~now:fnow ((line_no + 1) * line) in
          penalties := !penalties + max c1 c2
        | None ->
          let h1 = access (line_no * line) in
          let h2 = access ((line_no + 1) * line) in
          if not (h1 && h2) then penalties := !penalties + miss_penalty);
        let window_end = (line_no + 2) * line in
        let branches = ref 0 in
        let stop = ref false in
        while not !stop do
          (* invariant: the instruction at (idx, off) exists and lies
             inside the window *)
          incr instrs;
          incr off;
          if !off < View.block_size view !idx then begin
            if View.addr view { View.idx = !idx; off = !off } >= window_end
            then stop := true
          end
          else begin
            let was_branch = View.has_branch view !idx in
            let taken = View.taken view !idx in
            if was_branch then incr branches;
            if View.is_cond view !idx then incr cond_branches;
            incr idx;
            off := 0;
            if
              taken
              || (was_branch && !branches >= max_branches)
              || !idx >= len
            then stop := true
            else if View.addr view { View.idx = !idx; off = 0 } >= window_end
            then stop := true
          end
        done;
        (match trace_cache with
        | Some tc -> Tracecache.fill tc view pos
        | None -> ());
        fdip_advance ~now:fnow start_idx
    done;
    {
      Engine.instrs = !instrs;
      cycles = !cycles + !penalties;
      fetch_cycles = !cycles;
      seq_cycles = !seq_cycles;
      tc_cycles = !tc_cycles;
      icache_accesses = !accs;
      icache_misses = !misses;
      icache_victim_hits = !vhits;
      tc_lookups = !lookups;
      tc_hits = !tc_hits;
      taken_branches = View.taken_branches view;
      instrs_between_taken = View.instrs_between_taken view;
      cond_branches = !cond_branches;
      mispredictions = 0;
      icache_evictions =
        (match icache with Some c -> Icache.evictions c | None -> 0);
      prefetch_issued = !pf_issued;
      prefetch_completed = !pf_completed;
      prefetch_late = !pf_late;
      prefetch_useful = !pf_useful;
    }
end

(* ------------------------------------------------------------------ *)
(* Differential runners                                                *)
(* ------------------------------------------------------------------ *)

type case_policy = P_lru | P_srrip | P_trrip

type cache_case = {
  case_name : string;
  kb : int;
  assoc : int;
  victim_lines : int;
  tc : bool;
  policy : case_policy;
  fdip : Stc_fetch.Fdip.config option;
}

let default_cases =
  [
    {
      case_name = "8kb-direct";
      kb = 8;
      assoc = 1;
      victim_lines = 0;
      tc = false;
      policy = P_lru;
      fdip = None;
    };
    {
      case_name = "8kb-victim16";
      kb = 8;
      assoc = 1;
      victim_lines = 16;
      tc = false;
      policy = P_lru;
      fdip = None;
    };
    {
      case_name = "16kb-2way";
      kb = 16;
      assoc = 2;
      victim_lines = 0;
      tc = false;
      policy = P_lru;
      fdip = None;
    };
    {
      case_name = "16kb-direct-tc";
      kb = 16;
      assoc = 1;
      victim_lines = 0;
      tc = true;
      policy = P_lru;
      fdip = None;
    };
    {
      case_name = "ideal-tc";
      kb = 0;
      assoc = 1;
      victim_lines = 0;
      tc = true;
      policy = P_lru;
      fdip = None;
    };
  ]

let extended_cases =
  let fd = Stc_fetch.Fdip.default in
  [
    {
      case_name = "16kb-4way-srrip";
      kb = 16;
      assoc = 4;
      victim_lines = 0;
      tc = false;
      policy = P_srrip;
      fdip = None;
    };
    {
      case_name = "16kb-4way-trrip";
      kb = 16;
      assoc = 4;
      victim_lines = 0;
      tc = false;
      policy = P_trrip;
      fdip = None;
    };
    {
      case_name = "8kb-direct-fdip";
      kb = 8;
      assoc = 1;
      victim_lines = 0;
      tc = false;
      policy = P_lru;
      fdip = Some fd;
    };
    {
      case_name = "16kb-4way-trrip-fdip";
      kb = 16;
      assoc = 4;
      victim_lines = 0;
      tc = false;
      policy = P_trrip;
      fdip = Some fd;
    };
    {
      case_name = "16kb-fdip-tc";
      kb = 16;
      assoc = 1;
      victim_lines = 0;
      tc = true;
      policy = P_lru;
      fdip = Some fd;
    };
  ]

type mismatch = {
  field : string;
  m_oracle : float;
  m_naive : float;
  m_packed : float;
  m_fused : float;
}

type engine_report = {
  er_layout : string;
  er_case : string;
  er_mismatches : mismatch list;
  er_divergence : string option;
}

let outcome_name = function
  | Real_icache.Hit -> "hit"
  | Real_icache.Victim_hit -> "victim-hit"
  | Real_icache.Miss -> "miss"

let rec combine4 a b c d =
  match (a, b, c, d) with
  | [], [], [], [] -> []
  | (f, va) :: ta, (_, vb) :: tb, (_, vc) :: tc, (_, vd) :: td ->
    (f, va, vb, vc, vd) :: combine4 ta tb tc td
  | _ -> invalid_arg "Stc_check.combine4: field lists differ in length"

let real_policy_of_case ~temperature case =
  match case.policy with
  | P_lru -> Real_icache.Lru
  | P_srrip -> Real_icache.Srrip
  | P_trrip -> Real_icache.Trrip temperature

let real_icache_of_case ?(temperature = [||]) case () =
  if case.kb = 0 then None
  else
    Some
      (Real_icache.create ~assoc:case.assoc ~victim_lines:case.victim_lines
         ~policy:(real_policy_of_case ~temperature case)
         ~size_bytes:(case.kb * 1024) ())

let real_tc_of_case case () = if case.tc then Some (Real_tc.create ()) else None

(* A case with an FDIP block replaces the engine config's; the other
   engine parameters pass through unchanged. *)
let case_config ?config case =
  let base = Option.value config ~default:Engine.Config.default in
  match case.fdip with
  | None -> base
  | Some fc ->
    Engine.Config.make ~max_branches:base.Engine.Config.max_branches
      ~line_bytes:base.Engine.Config.line_bytes
      ~miss_penalty:base.Engine.Config.miss_penalty ~fdip:fc ()

let diff_cases ?config ?(temperature = [||]) ~layout_name view cases =
  let cases = Array.of_list cases in
  let packed = View.pack view in
  (* one fused bank over the whole case list — mixed direct/victim/2-way
     geometries, replacement policies, FDIP frontends, trace caches and
     the ideal slot replay in a single sweep, exactly how Experiments
     fuses a grid's cells *)
  let bank_specs =
    Array.map
      (fun case ->
        Engine.Bank.spec
          ~config:(case_config ?config case)
          ?icache:(real_icache_of_case ~temperature case ())
          ?trace_cache:(real_tc_of_case case ())
          ())
      cases
  in
  let fused = Engine.Bank.run_packed bank_specs packed in
  Array.to_list
    (Array.mapi
       (fun i case ->
         (* lockstep shadow: every oracle i-cache access is replayed into
            a private real cache; the first differing outcome is where
            the two models' state forked. Under FDIP the oracle's demand
            path never fires the hook (a shadow driven by
            [access_uncounted] cannot mirror prefetch installs), so
            those cases rely on the four-way field comparison alone. *)
         let shadow = real_icache_of_case ~temperature case () in
         let divergence = ref None in
         let access_no = ref 0 in
         let on_access ~addr out =
           incr access_no;
           match shadow with
           | None -> ()
           | Some c ->
             let got = Real_icache.access_uncounted c addr in
             if got <> out && !divergence = None then
               divergence :=
                 Some
                   (Printf.sprintf
                      "access #%d (addr 0x%x): oracle %s, icache %s"
                      !access_no addr (outcome_name out) (outcome_name got))
         in
         let cfg = case_config ?config case in
         let oracle_icache =
           if case.kb = 0 then None
           else
             Some
               (Oracle.Icache.create ~assoc:case.assoc
                  ~victim_lines:case.victim_lines
                  ~policy:(real_policy_of_case ~temperature case)
                  ~size_bytes:(case.kb * 1024) ())
         in
         let oracle_tc =
           if case.tc then Some (Oracle.Tracecache.create ()) else None
         in
         let o =
           Oracle.fetch ~config:cfg ?icache:oracle_icache
             ?trace_cache:oracle_tc ~on_access view
         in
         let n =
           Engine.run_naive ~config:cfg
             ?icache:(real_icache_of_case ~temperature case ())
             ?trace_cache:(real_tc_of_case case ())
             view
         in
         let p =
           Engine.run_packed ~config:cfg
             ?icache:(real_icache_of_case ~temperature case ())
             ?trace_cache:(real_tc_of_case case ())
             packed
         in
         let f = fused.(i) in
         let er_mismatches =
           combine4 (Engine.result_fields o) (Engine.result_fields n)
             (Engine.result_fields p) (Engine.result_fields f)
           |> List.filter_map (fun (field, vo, vn, vp, vf) ->
                  if vo = vn && vn = vp && vp = vf then None
                  else
                    Some
                      {
                        field;
                        m_oracle = vo;
                        m_naive = vn;
                        m_packed = vp;
                        m_fused = vf;
                      })
         in
         {
           er_layout = layout_name;
           er_case = case.case_name;
           er_mismatches;
           er_divergence = !divergence;
         })
       cases)

let diff_engines ?config ?temperature ~layout_name view case =
  match diff_cases ?config ?temperature ~layout_name view [ case ] with
  | [ r ] -> r
  | _ -> assert false

let diff_icache_stream ?(accesses = 20_000) ?(policy = Real_icache.Lru) ~seed
    ~assoc ~victim_lines ~size_bytes () =
  let rng = Stc_util.Rng.create (Int64.of_int seed) in
  let real = Real_icache.create ~assoc ~victim_lines ~policy ~size_bytes () in
  let oracle =
    Oracle.Icache.create ~assoc ~victim_lines ~policy ~size_bytes ()
  in
  let divergence = ref None in
  let i = ref 0 in
  while !divergence = None && !i < accesses do
    incr i;
    (* 4× the cache in address span keeps conflicts frequent *)
    let addr = Stc_util.Rng.int rng (size_bytes * 4) / 4 * 4 in
    let a = Real_icache.access_uncounted real addr in
    let b = Oracle.Icache.access oracle addr in
    if a <> b then
      divergence :=
        Some
          (Printf.sprintf "access #%d (addr 0x%x): oracle %s, icache %s" !i
             addr (outcome_name b) (outcome_name a))
  done;
  !divergence

(* ------------------------------------------------------------------ *)
(* The bundle                                                          *)
(* ------------------------------------------------------------------ *)

type layout_report = {
  lr_name : string;
  lr_violations : Layouts.violation list;
}

type report = {
  r_layouts : layout_report list;
  r_engines : engine_report list;
  r_icache : (string * string option) list;
}

let check_cache_bytes = 16 * 1024

let check_cfa_bytes = 4 * 1024

let run_all ?(ctx = Run.default) (pl : Pipeline.t) =
  Run.span ctx "check" @@ fun () ->
  let counter name =
    match ctx.Run.metrics with
    | None -> None
    | Some reg -> Some (Stc_obs.Registry.counter reg name)
  in
  let bump c n =
    match c with
    | None -> ()
    | Some c -> Stc_obs.Metric.Counter.add c n
  in
  let c_layouts = counter "check.layouts"
  and c_violations = counter "check.violations"
  and c_cases = counter "check.engine_cases"
  and c_mismatches = counter "check.engine_mismatches" in
  let profile = pl.Pipeline.profile in
  let prog = pl.Pipeline.program in
  (* every registered layout algorithm at the simulation grid's
     thresholds — a newly registered algorithm is validated here without
     touching this module *)
  let r_layouts =
    Run.span ctx "check-layouts" @@ fun () ->
    let params =
      L.Algo.params ~exec_threshold:50 ~branch_threshold:0.3
        ~cache_bytes:check_cache_bytes ~cfa_bytes:check_cfa_bytes ()
    in
    let subjects =
      List.map
        (fun algo ->
          let plan = L.Algo.plan algo profile params in
          let cfa_bytes = L.Algo.effective_cfa_bytes algo params in
          let layout =
            Mapping.map_plan prog ~name:algo.L.Algo.name
              ~cache_bytes:check_cache_bytes ~cfa_bytes plan
          in
          (algo.L.Algo.name, layout, Some (plan, check_cache_bytes, cfa_bytes)))
        (L.Algo.all ())
    in
    List.map
      (fun (lr_name, layout, cfa_plan) ->
        let lr_violations = Layouts.all ?cfa_plan profile layout in
        bump c_layouts 1;
        bump c_violations (List.length lr_violations);
        Run.event ctx ~kind:"check.layout"
          [
            ("layout", Json.Str lr_name);
            ("violations", Json.Int (List.length lr_violations));
            ( "first",
              match lr_violations with
              | [] -> Json.Null
              | v :: _ -> Json.Str (Layouts.violation_to_string v) );
          ];
        { lr_name; lr_violations })
      subjects
  in
  (* engine differential on the test trace: the original baseline, the
     paper's headline CFA layout and the two imported comparators *)
  let r_engines =
    Run.span ctx "check-engines" @@ fun () ->
    let params =
      L.Algo.params ~exec_threshold:50 ~branch_threshold:0.3
        ~cache_bytes:check_cache_bytes ~cfa_bytes:check_cfa_bytes ()
    in
    let view_of name =
      match L.Algo.find name with
      | Error msg -> invalid_arg msg
      | Ok algo ->
        let layout = L.Algo.layout algo profile params in
        ( algo.L.Algo.name,
          layout,
          View.create prog layout (Pipeline.test_source pl) )
    in
    let views =
      List.map view_of [ "orig"; "ops"; "codestitcher"; "exttsp" ]
    in
    let sizes = Array.map Block.byte_size prog.Program.blocks in
    let counts = Profile.counts profile in
    List.concat_map
      (fun (layout_name, layout, view) ->
        (* the TRRIP cases seed their temperature table from this
           layout's own hotness, exactly as the extended grid does *)
        let temperature =
          Stc_cachesim.Temperature.of_blocks ~line_bytes:32
            ~addrs:layout.Layout.addr ~sizes ~counts
        in
        List.map
          (fun r ->
            bump c_cases 1;
            bump c_mismatches (List.length r.er_mismatches);
            Run.event ctx ~kind:"check.engine"
              [
                ("layout", Json.Str r.er_layout);
                ("case", Json.Str r.er_case);
                ("mismatches", Json.Int (List.length r.er_mismatches));
                ( "divergence",
                  match r.er_divergence with
                  | None -> Json.Null
                  | Some d -> Json.Str d );
              ];
            r)
          (diff_cases ~temperature ~layout_name view
             (default_cases @ extended_cases)))
      views
  in
  (* seeded random-address streams per geometry and policy *)
  let r_icache =
    Run.span ctx "check-icache-stream" @@ fun () ->
    let seed = Option.value ctx.Run.seed ~default:1 in
    (* a deterministic synthetic temperature table covering the whole
       4x address span used by the stream *)
    let trrip_temps kb = Array.init (kb * 1024 * 4 / 32) (fun i -> i mod 3) in
    List.map
      (fun (name, assoc, victim_lines, kb, policy) ->
        ( name,
          diff_icache_stream ~policy ~seed ~assoc ~victim_lines
            ~size_bytes:(kb * 1024) () ))
      [
        ("4kb-direct", 1, 0, 4, Real_icache.Lru);
        ("4kb-direct-victim4", 1, 4, 4, Real_icache.Lru);
        ("8kb-2way-victim8", 2, 8, 8, Real_icache.Lru);
        ("8kb-4way-srrip", 4, 0, 8, Real_icache.Srrip);
        ("8kb-4way-trrip", 4, 0, 8, Real_icache.Trrip (trrip_temps 8));
        ("4kb-2way-srrip-victim4", 2, 4, 4, Real_icache.Srrip);
      ]
  in
  { r_layouts; r_engines; r_icache }

let ok r =
  List.for_all (fun l -> l.lr_violations = []) r.r_layouts
  && List.for_all
       (fun e -> e.er_mismatches = [] && e.er_divergence = None)
       r.r_engines
  && List.for_all (fun (_, d) -> d = None) r.r_icache

let print_report r =
  Printf.printf "Layout validators:\n";
  List.iter
    (fun l ->
      match l.lr_violations with
      | [] -> Printf.printf "  %-6s ok\n" l.lr_name
      | vs ->
        Printf.printf "  %-6s %d violation(s)\n" l.lr_name (List.length vs);
        List.iter
          (fun v -> Printf.printf "    - %s\n" (Layouts.violation_to_string v))
          vs)
    r.r_layouts;
  Printf.printf "Engine differential (oracle vs naive vs packed vs fused):\n";
  List.iter
    (fun e ->
      if e.er_mismatches = [] && e.er_divergence = None then
        Printf.printf "  %-5s %-15s ok\n" e.er_layout e.er_case
      else begin
        Printf.printf "  %-5s %-15s FAIL\n" e.er_layout e.er_case;
        List.iter
          (fun m ->
            Printf.printf
              "    - %s: oracle %.6f, naive %.6f, packed %.6f, fused %.6f\n"
              m.field m.m_oracle m.m_naive m.m_packed m.m_fused)
          e.er_mismatches;
        match e.er_divergence with
        | Some d -> Printf.printf "    - first divergence: %s\n" d
        | None -> ()
      end)
    r.r_engines;
  Printf.printf "I-cache random-stream differential:\n";
  List.iter
    (fun (name, d) ->
      match d with
      | None -> Printf.printf "  %-18s ok\n" name
      | Some msg -> Printf.printf "  %-18s FAIL: %s\n" name msg)
    r.r_icache;
  Printf.printf "check: %s\n" (if ok r then "PASS" else "FAIL")
