(** Differential oracles and validators for the simulation pipeline.

    Everything here answers one question: {e is the optimized
    implementation still computing the thing the paper defines?} Three
    families of checks:

    - {!Layouts} — structural validators over any {!Stc_layout.Layout.t}
      (non-overlap, alignment, coverage of executed blocks) plus
      CFA-containment checks against the {!Stc_layout.Mapping.plan} the
      algorithm intended, so a mapping bug cannot hide behind a
      reconstruction of its own output;
    - {!Oracle} — small, deliberately naive list-based reference models
      of the i-cache, the victim buffer and the trace cache, plus an
      instruction-at-a-time SEQ.3 fetch walker. They share no code with
      [Stc_cachesim] / [Stc_fetch]: arrays, bit masks and batched
      counters on one side, association lists and recursion on the
      other, so a bug must be implemented twice to go unnoticed;
    - the differential runners — replay the same traces through oracle,
      {!Stc_fetch.Engine.run_naive}, {!Stc_fetch.Engine.run_packed} and
      one fused {!Stc_fetch.Engine.Bank} sweep over every case at once,
      and compare field by field, with a lockstep shadow i-cache that
      reports the {e first diverging access} rather than just drifted
      totals.

    {!run_all} bundles all of it over a {!Stc_core.Pipeline.t}; the
    [stc_repro check] subcommand and the [@check-smoke] alias are thin
    wrappers around it. With [ctx.metrics] the checks tick [check.*]
    counters and emit one [check.layout] / [check.engine] event per
    subject. *)

(** {1 Layout validators} *)

module Layouts : sig
  type violation =
    | Wrong_block_count of { expected : int; got : int }
        (** The layout does not assign an address to every block. *)
    | Unplaced of { block : int; count : int }
        (** An executed block (dynamic count [count]) has no valid
            placement (missing or negative address). *)
    | Misaligned of { block : int; addr : int }
        (** Address not a multiple of the instruction size. *)
    | Overlap of { block_a : int; block_b : int; addr : int }
        (** Two blocks' byte ranges intersect (at [addr]). *)
    | Plan_not_partition of { block : int; times : int }
        (** The mapping plan mentions a block [times] ≠ 1 times across
            its three parts. *)
    | Cfa_overflow of { block : int; addr : int; limit : int }
        (** A CFA-sequence block ends past the Conflict-Free Area. *)
    | Cfa_intrusion of { block : int; addr : int; window : int }
        (** A second-pass sequence block intrudes into the CFA window
            of logical cache number [window]. *)

  val violation_to_string : violation -> string

  val structure :
    Stc_cfg.Program.t -> Stc_layout.Layout.t -> violation list
  (** Block count, alignment, non-negative addresses, pairwise
      non-overlap. *)

  val coverage :
    Stc_profile.Profile.t -> Stc_layout.Layout.t -> violation list
  (** Every block the profile executed has a valid placement. *)

  val cfa :
    Stc_cfg.Program.t ->
    Stc_layout.Layout.t ->
    cache_bytes:int ->
    cfa_bytes:int ->
    Stc_layout.Mapping.plan ->
    violation list
  (** The plan partitions the block set; every first-pass (CFA) block
      lies wholly inside [\[0, cfa_bytes)]; no second-pass block touches
      any logical cache's CFA window ([offset mod cache_bytes <
      cfa_bytes]). Cold blocks are exempt — the paper lets only the
      rarely-executed code conflict with the CFA. *)

  val all :
    ?cfa_plan:Stc_layout.Mapping.plan * int * int ->
    Stc_profile.Profile.t ->
    Stc_layout.Layout.t ->
    violation list
  (** {!structure} @ {!coverage} @ (with [?cfa_plan = (plan, cache_bytes,
      cfa_bytes)]) {!cfa}. *)
end

(** {1 Reference models} *)

module Oracle : sig
  (** List-based i-cache with victim buffer and pluggable replacement
      (MRU-ordered ways under LRU, install-ordered [(line, rrpv)] pairs
      under the RRIP family); outcome-equivalent to
      {!Stc_cachesim.Icache} by construction. *)
  module Icache : sig
    type t

    val create :
      ?assoc:int ->
      ?line_bytes:int ->
      ?victim_lines:int ->
      ?policy:Stc_cachesim.Icache.policy ->
      size_bytes:int ->
      unit ->
      t
    (** Same defaults as {!Stc_cachesim.Icache.create}. *)

    val access : t -> int -> Stc_cachesim.Icache.outcome
  end

  (** Association-list trace cache (index → entry), rebuilding traces
      with an instruction-at-a-time recursion. *)
  module Tracecache : sig
    type t

    val create :
      ?entries:int -> ?width:int -> ?max_branches:int -> unit -> t
    (** Same defaults as {!Stc_fetch.Tracecache.create}. *)
  end

  val fetch :
    ?config:Stc_fetch.Engine.config ->
    ?icache:Icache.t ->
    ?trace_cache:Tracecache.t ->
    ?on_access:(addr:int -> Stc_cachesim.Icache.outcome -> unit) ->
    Stc_fetch.View.t ->
    Stc_fetch.Engine.result
  (** The SEQ.3 fetch model re-derived from the paper's description,
      supplying one instruction per step instead of one block per step.
      With an FDIP block in the config (and an i-cache), a shared-nothing
      decoupled-frontend model — an ordered association list of in-flight
      prefetches — runs the same begin/demand/advance cycle protocol as
      {!Stc_fetch.Fdip}. [on_access] observes every i-cache access in
      order (the differential runner hooks a lockstep shadow of the real
      cache here); it stays silent under FDIP, whose demand path a
      lockstep shadow cannot mirror. [mispredictions] is always 0 — the
      oracle models the paper's perfect-prediction configuration. *)
end

(** {1 Differential runners} *)

(** Which replacement policy a case runs; [P_trrip] takes its
    temperature table from [diff_cases]'s [?temperature]. *)
type case_policy = P_lru | P_srrip | P_trrip

type cache_case = {
  case_name : string;
  kb : int;  (** I-cache size in KB; [0] = ideal (no i-cache). *)
  assoc : int;
  victim_lines : int;
  tc : bool;  (** Front the engine with a 256-entry trace cache. *)
  policy : case_policy;
  fdip : Stc_fetch.Fdip.config option;
      (** Run the case with a decoupled-frontend prefetcher. *)
}

val default_cases : cache_case list
(** Five configurations spanning Table 3's hardware space: 8KB direct,
    8KB direct + 16-line victim buffer, 16KB 2-way, 16KB direct + trace
    cache, ideal + trace cache — all LRU, no prefetching (the paper's
    machine). *)

val extended_cases : cache_case list
(** Five configurations exercising the post-paper mechanisms: 16KB
    4-way SRRIP, 16KB 4-way TRRIP, 8KB direct + FDIP, 16KB 4-way TRRIP
    + FDIP, and 16KB direct + FDIP + trace cache. *)

type mismatch = {
  field : string;
  m_oracle : float;
  m_naive : float;
  m_packed : float;
  m_fused : float;
}

type engine_report = {
  er_layout : string;
  er_case : string;
  er_mismatches : mismatch list;
      (** Fields where oracle, naive, packed and fused disagree
          (empty = ok). *)
  er_divergence : string option;
      (** First i-cache access where the oracle's outcome differs from
          the real cache's, if any — pinpoints {e where} state first
          forked, not just that totals drifted. *)
}

val diff_cases :
  ?config:Stc_fetch.Engine.config ->
  ?temperature:int array ->
  layout_name:string ->
  Stc_fetch.View.t ->
  cache_case list ->
  engine_report list
(** Replay the view through {!Oracle.fetch},
    {!Stc_fetch.Engine.run_naive} and {!Stc_fetch.Engine.run_packed}
    per case (fresh caches each; a case's [fdip] block overrides the
    config's; [P_trrip] cases seed both real and oracle caches from
    [?temperature], default empty = all cold), plus {e one}
    {!Stc_fetch.Engine.Bank.run_packed} sweep fusing every case's spec
    — the same mixed-configuration banks Experiments builds — and
    compare every {!Stc_fetch.Engine.result} field four ways. *)

val diff_engines :
  ?config:Stc_fetch.Engine.config ->
  ?temperature:int array ->
  layout_name:string ->
  Stc_fetch.View.t ->
  cache_case ->
  engine_report
(** {!diff_cases} of a single case (its fused bank has one slot). *)

val diff_icache_stream :
  ?accesses:int ->
  ?policy:Stc_cachesim.Icache.policy ->
  seed:int ->
  assoc:int ->
  victim_lines:int ->
  size_bytes:int ->
  unit ->
  string option
(** Drive the oracle and the real i-cache (both under [?policy],
    default LRU) with the same seeded random address stream; [Some msg]
    describes the first diverging access. *)

(** {1 The bundle} *)

type layout_report = {
  lr_name : string;
  lr_violations : Layouts.violation list;
}

type report = {
  r_layouts : layout_report list;
      (** Every {!Stc_layout.Algo} registry entry, in registration
          order. *)
  r_engines : engine_report list;
      (** {!default_cases} @ {!extended_cases} over the orig, ops,
          codestitcher and exttsp layouts. *)
  r_icache : (string * string option) list;
      (** Random-stream i-cache differentials per geometry × policy. *)
}

val run_all : ?ctx:Stc_core.Run.ctx -> Stc_core.Pipeline.t -> report
(** Build every registered layout algorithm from the pipeline's profile
    (16KB cache, 4KB CFA, the simulation grid's thresholds), validate
    each against its own plan; run the four-way engine differential
    ({!diff_cases}) on the test trace over the orig, ops, codestitcher
    and exttsp views, fusing every {!default_cases} and
    {!extended_cases} entry into one bank per view, with each layout's
    TRRIP temperature derived from its own hotness
    ({!Stc_cachesim.Temperature.of_blocks}); run the seeded i-cache
    stream differential across LRU, SRRIP and TRRIP geometries. Of
    [ctx], [metrics] feeds the [check.*] counters and events, [seed]
    seeds the address streams. *)

val ok : report -> bool

val print_report : report -> unit
(** Human-readable summary on stdout (one line per subject, violations
    and divergences spelled out). *)
