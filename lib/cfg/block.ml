type t = { id : int; proc : int; size : int; term : Terminator.t }

let instr_bytes = 4

let byte_size b = b.size * instr_bytes

let kind b = Terminator.kind b.term

let pp ppf b =
  Format.fprintf ppf "b%d(p%d, %d instrs, %a)" b.id b.proc b.size
    Terminator.pp b.term
