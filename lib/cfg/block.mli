(** Basic blocks. *)

type t = {
  id : int;  (** Index into the program's block array. *)
  proc : int;  (** Owning procedure id. *)
  size : int;
      (** Number of instructions, including the terminating branch
          instruction if there is one. Always at least 1. *)
  term : Terminator.t;
}

val instr_bytes : int
(** Bytes per instruction (4, a RISC ISA as on the paper's Alpha). *)

val byte_size : t -> int
(** [size * instr_bytes]. *)

val kind : t -> Terminator.kind

val pp : Format.formatter -> t -> unit
