(** Imperative program construction with forward references.

    The synthetic-kernel generator and the skeleton DSL both need to create
    procedures that call procedures defined later, and blocks that branch
    forward; the builder assigns ids eagerly and lets terminators be filled
    in afterwards. *)

type t

val create : unit -> t

val declare_proc : t -> name:string -> subsystem:Proc.subsystem -> int
(** Reserve a procedure id; the body is supplied later with
    [finish_proc]. Raises if the name was already declared. *)

val pid_of_name : t -> string -> int
(** Id of a declared procedure. Raises [Not_found] if unknown. *)

val new_block : t -> pid:int -> size:int -> int
(** Allocate a block owned by procedure [pid] with a placeholder [Ret]
    terminator; returns its global block id. *)

val set_term : t -> int -> Terminator.t -> unit
(** Set the terminator of a previously allocated block. *)

val set_size : t -> int -> int -> unit
(** Adjust the instruction count of a previously allocated block. *)

val finish_proc : t -> pid:int -> entry:int -> blocks:int array -> unit
(** Define the body of a declared procedure. [blocks.(0)] must be [entry]
    and all blocks must have been allocated for [pid]. *)

val is_finished : t -> pid:int -> bool

val build : t -> Program.t
(** Assemble and validate the program. Raises [Failure] with the validation
    message if the construction is inconsistent or a declared procedure was
    never finished. *)
