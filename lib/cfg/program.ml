type t = { procs : Proc.t array; blocks : Block.t array }

type static_counts = { n_procs : int; n_blocks : int; n_instrs : int }

let static_counts t =
  {
    n_procs = Array.length t.procs;
    n_blocks = Array.length t.blocks;
    n_instrs = Array.fold_left (fun acc b -> acc + b.Block.size) 0 t.blocks;
  }

let proc_of_block t bid = t.procs.(t.blocks.(bid).Block.proc)

let entry_block t ~pid = t.procs.(pid).Proc.entry

let find_proc t name =
  Array.find_opt (fun p -> String.equal p.Proc.name name) t.procs

let validate t =
  let nb = Array.length t.blocks and np = Array.length t.procs in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let check_block_id ctx bid =
    if bid < 0 || bid >= nb then fail "%s: block id %d out of range" ctx bid
  in
  let check_proc_id ctx pid =
    if pid < 0 || pid >= np then fail "%s: proc id %d out of range" ctx pid
  in
  try
    (* block table consistency *)
    Array.iteri
      (fun i b ->
        if b.Block.id <> i then fail "block at index %d has id %d" i b.Block.id;
        if b.Block.size < 1 then fail "block %d has size %d" i b.Block.size;
        check_proc_id (Printf.sprintf "block %d owner" i) b.Block.proc;
        List.iter
          (fun s -> check_block_id (Printf.sprintf "block %d successor" i) s)
          (Terminator.intra_successors b.Block.term);
        match b.Block.term with
        | Terminator.Call { callee; _ } ->
          check_proc_id (Printf.sprintf "block %d callee" i) callee
        | Terminator.Icall { callees; _ } ->
          if Array.length callees = 0 then fail "block %d: empty icall" i;
          Array.iter
            (check_proc_id (Printf.sprintf "block %d icall callee" i))
            callees
        | Terminator.Fall _ | Terminator.Jump _ | Terminator.Cond _
        | Terminator.Ret ->
          ())
      t.blocks;
    (* proc table consistency and unique ownership *)
    let owner = Array.make nb (-1) in
    Array.iteri
      (fun i p ->
        if p.Proc.pid <> i then fail "proc at index %d has pid %d" i p.Proc.pid;
        if Array.length p.Proc.blocks = 0 then fail "proc %d has no blocks" i;
        if p.Proc.blocks.(0) <> p.Proc.entry then
          fail "proc %d: entry %d is not its first block" i p.Proc.entry;
        Array.iter
          (fun bid ->
            check_block_id (Printf.sprintf "proc %d block list" i) bid;
            if owner.(bid) <> -1 then
              fail "block %d owned by both proc %d and proc %d" bid owner.(bid)
                i;
            owner.(bid) <- i;
            if t.blocks.(bid).Block.proc <> i then
              fail "block %d listed in proc %d but records owner %d" bid i
                t.blocks.(bid).Block.proc)
          p.Proc.blocks)
      t.procs;
    Array.iteri
      (fun bid o -> if o = -1 then fail "block %d owned by no procedure" bid)
      owner;
    (* intra-procedure edges stay inside; reachability from entry *)
    Array.iter
      (fun p ->
        let pid = p.Proc.pid in
        let member = Hashtbl.create 16 in
        Array.iter (fun bid -> Hashtbl.replace member bid ()) p.Proc.blocks;
        Array.iter
          (fun bid ->
            List.iter
              (fun s ->
                if not (Hashtbl.mem member s) then
                  fail "proc %d: edge %d -> %d leaves the procedure" pid bid s)
              (Terminator.intra_successors t.blocks.(bid).Block.term))
          p.Proc.blocks;
        let seen = Hashtbl.create 16 in
        let rec dfs bid =
          if not (Hashtbl.mem seen bid) then begin
            Hashtbl.replace seen bid ();
            List.iter dfs
              (Terminator.intra_successors t.blocks.(bid).Block.term)
          end
        in
        dfs p.Proc.entry;
        Array.iter
          (fun bid ->
            if not (Hashtbl.mem seen bid) then
              fail "proc %d (%s): block %d unreachable from entry" pid
                p.Proc.name bid)
          p.Proc.blocks)
      t.procs;
    Ok ()
  with Bad msg -> err "%s" msg

let pp_summary ppf t =
  let c = static_counts t in
  Format.fprintf ppf "program: %d procedures, %d basic blocks, %d instructions"
    c.n_procs c.n_blocks c.n_instrs
