(** A whole static program: the unit the profiler characterizes and the
    layout algorithms reorder. *)

type t = {
  procs : Proc.t array;  (** Indexed by procedure id. *)
  blocks : Block.t array;  (** Indexed by block id. *)
}

type static_counts = {
  n_procs : int;
  n_blocks : int;
  n_instrs : int;
}

val static_counts : t -> static_counts
(** The "Total" column of Table 1. *)

val proc_of_block : t -> int -> Proc.t

val entry_block : t -> pid:int -> int

val find_proc : t -> string -> Proc.t option
(** Lookup by procedure name (linear; intended for setup code and tests). *)

val validate : t -> (unit, string) result
(** Structural well-formedness: ids in range and consistent with array
    positions; every block owned by exactly one procedure; procedure entry
    is its first block; every intra-procedure edge stays inside the
    procedure; [Call]/[Icall] targets are valid procedure ids; every block
    of a procedure is reachable from its entry; block sizes positive. *)

val pp_summary : Format.formatter -> t -> unit
