type pending_proc = {
  name : string;
  subsystem : Proc.subsystem;
  mutable body : (int * int array) option; (* entry, blocks *)
}

type pending_block = {
  owner : int;
  mutable size : int;
  mutable term : Terminator.t;
}

type t = {
  mutable procs : pending_proc array;
  mutable n_procs : int;
  mutable blocks : pending_block array;
  mutable n_blocks : int;
  names : (string, int) Hashtbl.t;
}

let dummy_proc = { name = ""; subsystem = Proc.Other; body = None }

let dummy_block = { owner = -1; size = 1; term = Terminator.Ret }

let create () =
  {
    procs = Array.make 64 dummy_proc;
    n_procs = 0;
    blocks = Array.make 256 dummy_block;
    n_blocks = 0;
    names = Hashtbl.create 64;
  }

let push_proc t p =
  if t.n_procs = Array.length t.procs then begin
    let a = Array.make (2 * t.n_procs) dummy_proc in
    Array.blit t.procs 0 a 0 t.n_procs;
    t.procs <- a
  end;
  t.procs.(t.n_procs) <- p;
  t.n_procs <- t.n_procs + 1;
  t.n_procs - 1

let push_block t b =
  if t.n_blocks = Array.length t.blocks then begin
    let a = Array.make (2 * t.n_blocks) dummy_block in
    Array.blit t.blocks 0 a 0 t.n_blocks;
    t.blocks <- a
  end;
  t.blocks.(t.n_blocks) <- b;
  t.n_blocks <- t.n_blocks + 1;
  t.n_blocks - 1

let declare_proc t ~name ~subsystem =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Builder.declare_proc: duplicate %S" name);
  let pid = push_proc t { name; subsystem; body = None } in
  Hashtbl.replace t.names name pid;
  pid

let pid_of_name t name = Hashtbl.find t.names name

let new_block t ~pid ~size =
  if pid < 0 || pid >= t.n_procs then invalid_arg "Builder.new_block: bad pid";
  push_block t { owner = pid; size; term = Terminator.Ret }

let set_term t bid term =
  if bid < 0 || bid >= t.n_blocks then invalid_arg "Builder.set_term: bad id";
  t.blocks.(bid).term <- term

let set_size t bid size =
  if bid < 0 || bid >= t.n_blocks then invalid_arg "Builder.set_size: bad id";
  t.blocks.(bid).size <- size

let finish_proc t ~pid ~entry ~blocks =
  let p = t.procs.(pid) in
  (match p.body with
  | Some _ ->
    invalid_arg (Printf.sprintf "Builder.finish_proc: %S already finished" p.name)
  | None -> ());
  if Array.length blocks = 0 || blocks.(0) <> entry then
    invalid_arg "Builder.finish_proc: entry must be the first block";
  Array.iter
    (fun bid ->
      if t.blocks.(bid).owner <> pid then
        invalid_arg "Builder.finish_proc: block owned by another procedure")
    blocks;
  p.body <- Some (entry, blocks)

let is_finished t ~pid = t.procs.(pid).body <> None

let build t =
  let procs =
    Array.init t.n_procs (fun pid ->
        let p = t.procs.(pid) in
        match p.body with
        | None -> failwith (Printf.sprintf "Builder.build: %S never finished" p.name)
        | Some (entry, blocks) ->
          { Proc.pid; name = p.name; subsystem = p.subsystem; entry; blocks })
  in
  let blocks =
    Array.init t.n_blocks (fun bid ->
        let b = t.blocks.(bid) in
        { Block.id = bid; proc = b.owner; size = b.size; term = b.term })
  in
  let program = { Program.procs; blocks } in
  match Program.validate program with
  | Ok () -> program
  | Error msg -> failwith ("Builder.build: invalid program: " ^ msg)
