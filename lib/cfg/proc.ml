type subsystem =
  | Parser
  | Optimizer
  | Executor
  | Access_methods
  | Buffer_manager
  | Storage_manager
  | Utility
  | Other

type t = {
  pid : int;
  name : string;
  subsystem : subsystem;
  entry : int;
  blocks : int array;
}

let subsystem_name = function
  | Parser -> "Parser"
  | Optimizer -> "Optimizer"
  | Executor -> "Executor"
  | Access_methods -> "Access Methods"
  | Buffer_manager -> "Buffer Manager"
  | Storage_manager -> "Storage Manager"
  | Utility -> "Utility"
  | Other -> "Other"

let size t ~blocks =
  Array.fold_left (fun acc bid -> acc + blocks.(bid).Block.size) 0 t.blocks

let pp ppf t =
  Format.fprintf ppf "p%d:%s[%s] (%d blocks)" t.pid t.name
    (subsystem_name t.subsystem)
    (Array.length t.blocks)
