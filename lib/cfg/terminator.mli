(** Basic-block terminators.

    Control flow out of a block is fully described by its terminator. Block
    and procedure identifiers are plain [int]s (indices into the program's
    arrays); [Fall] records its successor explicitly because "textually
    next" stops being meaningful once a layout algorithm reorders blocks. *)

type t =
  | Fall of int
      (** No branch instruction at the end of the block; execution
          continues at the given block, which the original code placed
          immediately after. *)
  | Jump of int  (** Unconditional direct branch to a block. *)
  | Cond of { taken : int; fallthru : int }
      (** Conditional branch: [taken] target and textual fall-through. *)
  | Call of { callee : int; next : int }
      (** Direct subroutine call to procedure [callee]; on return,
          execution resumes at block [next]. *)
  | Icall of { callees : int array; next : int }
      (** Indirect call through a function pointer; [callees] lists the
          procedures observed as possible targets. *)
  | Ret  (** Subroutine return. *)

type kind = Fall_through | Branch | Subroutine_call | Subroutine_return
(** The four-way classification of Table 2 of the paper: fall-through
    blocks, branch blocks (conditional or unconditional), subroutine calls
    (including indirect jumps), and returns. *)

val kind : t -> kind

val kind_name : kind -> string

val has_branch_instr : t -> bool
(** Whether the block ends with a branch instruction at all — [false] only
    for [Fall]. Used by the fetch unit's 3-branch limit. *)

val intra_successors : t -> int list
(** Successor {e blocks} within the same procedure ([Call]/[Icall] continue
    at [next] after the callee returns; [Ret] has none). *)

val pp : Format.formatter -> t -> unit
