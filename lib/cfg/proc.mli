(** Procedures: a named entry point owning a contiguous set of blocks. *)

type subsystem =
  | Parser
  | Optimizer
  | Executor
  | Access_methods
  | Buffer_manager
  | Storage_manager
  | Utility
  | Other
      (** The DBMS subsystem the procedure belongs to (Figure 1 of the
          paper). Drives the [ops] seed selection (Executor entry points)
          and per-module reporting. *)

type t = {
  pid : int;
  name : string;
  subsystem : subsystem;
  entry : int;  (** Entry block id. *)
  blocks : int array;
      (** All block ids of this procedure, in original textual order;
          [blocks.(0) = entry]. *)
}

val subsystem_name : subsystem -> string

val size : t -> blocks:Block.t array -> int
(** Total instructions of the procedure. *)

val pp : Format.formatter -> t -> unit
