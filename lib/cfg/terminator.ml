type t =
  | Fall of int
  | Jump of int
  | Cond of { taken : int; fallthru : int }
  | Call of { callee : int; next : int }
  | Icall of { callees : int array; next : int }
  | Ret

type kind = Fall_through | Branch | Subroutine_call | Subroutine_return

let kind = function
  | Fall _ -> Fall_through
  | Jump _ | Cond _ -> Branch
  | Call _ | Icall _ -> Subroutine_call
  | Ret -> Subroutine_return

let kind_name = function
  | Fall_through -> "Fall-through"
  | Branch -> "Branch"
  | Subroutine_call -> "Subroutine call"
  | Subroutine_return -> "Subroutine return"

let has_branch_instr = function Fall _ -> false | _ -> true

let intra_successors = function
  | Fall b | Jump b -> [ b ]
  | Cond { taken; fallthru } -> [ taken; fallthru ]
  | Call { next; _ } | Icall { next; _ } -> [ next ]
  | Ret -> []

let pp ppf = function
  | Fall b -> Format.fprintf ppf "fall %d" b
  | Jump b -> Format.fprintf ppf "jump %d" b
  | Cond { taken; fallthru } -> Format.fprintf ppf "cond %d/%d" taken fallthru
  | Call { callee; next } -> Format.fprintf ppf "call p%d -> %d" callee next
  | Icall { callees; next } ->
    Format.fprintf ppf "icall [%d targets] -> %d" (Array.length callees) next
  | Ret -> Format.fprintf ppf "ret"
