(** Compilation of {!Skeleton} programs to basic blocks plus a small
    bytecode that the {!Walker} interprets.

    Compiling a skeleton allocates the procedure's blocks in textual order
    inside a {!Stc_cfg.Builder} (so the "original" layout is the natural
    compiled order) and produces one [op] array. Walking the ops replays
    exactly the block sequence the routine's control flow dictates:
    [Emit] ops fire unconditionally, [Expect_*] ops pause the walker until
    the instrumented routine reports the outcome (or, for auto-walked
    procedures, are decided by sampling [p_true]). *)

type cond_site = {
  site : string;
  p_true : float;
  mutable then_pc : int;
  mutable else_pc : int;
}

type goto = { mutable target : int }

type op =
  | Emit of int  (** Emit a basic block (it is being executed). *)
  | Expect_cond of cond_site
      (** The preceding emitted block ended with a conditional branch;
          continue at [then_pc] if the condition is true. *)
  | Expect_enter of { site : string; callees : int array }
      (** The preceding block ended with a call; wait for one of [callees]
          to be entered, resume at the next pc after it returns. *)
  | Auto_call of int
      (** Call to a generated procedure: the walker descends immediately. *)
  | Goto of goto
  | Finish  (** The routine's return block has been emitted. *)

type t = {
  pid : int;
  entry : int;  (** Entry block id. *)
  ops : op array;
}

val compile :
  Stc_cfg.Builder.t ->
  pid:int ->
  resolve:(string -> int) ->
  Skeleton.t ->
  t
(** [compile builder ~pid ~resolve skel] allocates blocks for procedure
    [pid], finishes the procedure in [builder], and returns its bytecode.
    [resolve] maps routine names (for [Call]/[Icall]/[Helper]) to procedure
    ids; all callees must already be declared. Raises [Invalid_argument] on
    malformed skeletons (e.g. code after both branches returned). *)
