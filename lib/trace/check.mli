(** Validation that a dynamic block trace is a legal walk of the program's
    CFG — the master invariant connecting the walker, the skeletons and the
    compiled blocks. Used by the test suite and available for debugging. *)

type t

val create : Stc_cfg.Program.t -> t

val step : t -> int -> (unit, string) result
(** Feed the next executed block id. Checks that the transition from the
    previously fed block is legal: an intra-procedure successor, a call to
    the entered procedure's entry block, or a return to the pending call
    continuation. Trace roots (entered with an empty shadow stack) may
    start at any procedure entry. *)

val finish : t -> (unit, string) result
(** Accepts any residual shadow stack (a trace may end mid-routine), but
    reports a malformed internal state. *)

val check_all : Stc_cfg.Program.t -> (((int -> unit) -> unit)[@warning "-3"]) -> (unit, string) result
(** [check_all program iter] runs [step] over every block produced by
    [iter] and then [finish]. *)
