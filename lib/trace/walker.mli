(** The trace walker: a pushdown interpreter over compiled {!Bytecode} that
    converts the probe events of instrumented routines into the dynamic
    basic-block trace, and walks generated (auto) procedures on its own by
    sampling their per-site probabilities.

    This plays the role the paper's binary instrumentation played: the
    output is the exact sequence of basic-block ids executed. *)

exception Desync of string
(** Raised when the event stream does not match the skeleton (an
    instrumentation bug): wrong site name, unexpected event, or a call to a
    routine that is not among the declared targets. *)

type t

val create :
  program:Stc_cfg.Program.t ->
  code:Bytecode.t option array ->
  seed:int64 ->
  sink:(int -> unit) ->
  t
(** [create ~program ~code ~seed ~sink]: [code.(pid)] is the bytecode of
    procedure [pid] ([None] for procedures that are never walked, e.g. cold
    filler). [seed] drives the sampling of auto-walked decision sites.
    Every executed block id is passed to [sink]. *)

val set_sink : t -> (int -> unit) -> unit

val blocks_emitted : t -> int

val instrs_emitted : t -> int

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register the emitted-blocks/instructions counters with a metrics
    registry under [prefix ^ "walker."]. *)

val pid_of_name : t -> string -> int
(** Procedure id by name. Raises [Not_found]. *)

(** {2 Events from instrumented routines} *)

val enter : t -> int -> unit
(** Procedure [pid] was entered — either as a trace root (empty stack) or
    as the callee of the call site the walker is parked at. *)

val cond : t -> string -> bool -> unit
(** Outcome of the pending conditional site. The site name is checked. *)

val leave : t -> unit
(** The current routine returned. *)

val depth : t -> int
(** Current activation-stack depth (0 when idle). *)

val reset : t -> unit
(** Drop all activations (used when an exception unwinds the engine). *)

(** {2 Auto execution} *)

val auto_run : t -> int -> unit
(** [auto_run t pid] walks procedure [pid] (and the helpers it calls)
    purely by sampling; used for generated startup / parser / optimizer
    code. The stack must be empty. *)
