(** Ambient instrumentation API used by the database engine.

    Engine routines are written once, with probes; when no walker is
    installed the probes are (almost) free no-ops, so the same code also
    runs untraced (e.g. against the relational oracle in tests).

    Typical routine:
    {[
      let k_search = Probe.key "BtSearch"

      let search tree key =
        Probe.routine k_search @@ fun () ->
        ...
        if Probe.cond "found" (cmp = 0) then ...
    ]} *)

type key
(** A routine handle; caches the name → pid resolution per installed
    walker. Create once per routine, at module initialization. *)

val key : string -> key

val key_name : key -> string

val with_walker : Walker.t -> (unit -> 'a) -> 'a
(** Install a walker for the duration of [f]. Not reentrant. *)

val active : unit -> bool

val routine : key -> (unit -> 'a) -> 'a
(** Wrap a routine body: signals [enter] before and [leave] after. If the
    body raises, the walker is reset (the trace simply ends mid-routine)
    and the exception propagates. *)

val cond : string -> bool -> bool
(** Report the outcome of the pending conditional site; returns the
    outcome so it can be used directly in an [if]. *)

val walker : unit -> Walker.t option
