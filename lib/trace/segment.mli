(** A bounded, off-heap slice of a basic-block trace.

    Segments are the unit of the streamed trace pipeline: a contiguous
    run of block ids starting at global trace index {!base}, stored in a
    [Bigarray] so the payload lives outside the OCaml heap — a segment
    handed to a pool domain is shared by reference, never copied or
    scanned by the GC, and the recorder can drop its own buffers while
    consumers still hold live segments. *)

type ids = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { ids : ids; base : int }

val alloc : int -> ids
(** An uninitialized off-heap id buffer of the given length (length 0 is
    allowed). *)

val make : ids -> base:int -> t
(** Wrap a filled buffer; [base] is the global trace index of
    [ids.{0}]. *)

val of_array : ?base:int -> int array -> t
(** Copy a heap array into a fresh off-heap segment (tests and adapters;
    the hot producers fill {!alloc}'d buffers directly). *)

val length : t -> int

val base : t -> int
(** Global trace index of the segment's first block. *)

val get : t -> int -> int
(** Block id at {e local} index [i] (bounds-checked). *)

val unsafe_get : t -> int -> int

val first : t -> int
(** [get t 0]; raises [Invalid_argument] on an empty segment. *)

val iter : (int -> unit) -> t -> unit

val blit_to_array : t -> int array -> int -> unit
(** Copy the segment's ids into [dst] starting at the given offset. *)
