(** Recording basic-block traces.

    The Test-set trace is captured once and replayed through every
    (layout × cache × fetch) configuration, exactly like the paper's
    trace-driven methodology. Replay goes through {!Source} (usually
    {!Source.of_recorder}): the recorder's only trace-reading surfaces
    are the bounded {!segment} emitter and the per-index {!get}. *)

type t

val create : unit -> t

val sink : t -> int -> unit
(** The function to install as the walker's sink. *)

val mark : t -> string -> unit
(** Record a named position (e.g. a query boundary) at the current length. *)

val length : t -> int
(** Number of recorded block ids. *)

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register the recorded-blocks/marks counters with a metrics registry
    under [prefix ^ "trace."]. *)

val marks : t -> (string * int) list
(** Marks in recording order with their positions. *)

val get : t -> int -> int
(** Bounds-checked block id at index [i] — the safe point API. *)

val segment : t -> base:int -> blocks:int -> Segment.t
(** The segment emitter: copy up to [blocks] ids starting at global
    index [base] into a fresh off-heap {!Segment} (shorter at the trace
    tail; empty at [base = length]). This is the producer side of
    {!Source.of_recorder} — the copy is the hand-off point after which
    consumers never touch the recorder's growable buffer. *)

val hash : t -> int64
(** {!Stc_util.Fnv} (FNV-1a) over the recorded ids — a cheap fingerprint
    for determinism tests and artifact-store keys. *)

val of_ids : int array -> marks:(string * int) list -> t
(** Reconstitute a recorder from previously captured contents (the
    artifact store's deserialization path): the recorded-blocks counter
    is set to the array length and the marks counter to the list length,
    exactly as if every id had been {!sink}ed and every mark {!mark}ed,
    so {!attach_metrics} exports the same values either way. *)
