(** Recording and replaying basic-block traces.

    The Test-set trace is captured once and replayed through every
    (layout × cache × fetch) configuration, exactly like the paper's
    trace-driven methodology. *)

type t

val create : unit -> t

val sink : t -> int -> unit
(** The function to install as the walker's sink. *)

val mark : t -> string -> unit
(** Record a named position (e.g. a query boundary) at the current length. *)

val length : t -> int
(** Number of recorded block ids. *)

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register the recorded-blocks/marks counters with a metrics registry
    under [prefix ^ "trace."]. *)

val replay : t -> (int -> unit) -> unit
(** Feed every recorded block id, in order, to the consumer. *)

val replay_range : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Replay entries with indices in [\[lo, hi)]. *)

val marks : t -> (string * int) list
(** Marks in recording order with their positions. *)

val get : t -> int -> int
(** Bounds-checked block id at index [i] — the safe API. *)

val unsafe_get : t -> int -> int
(** Unchecked {!get}, for hot replay loops that already know the bound. *)

val raw_ids : t -> int array
(** Read-only view of the underlying storage: the first {!length}
    entries are the recorded block ids. No copy is made, so compiled
    trace representations ({!Stc_fetch.Packed}) can scan millions of
    entries without per-element bounds checks; the reference is
    invalidated by the next {!sink} that grows the store, so do not hold
    it across recording. *)

val hash : t -> int64
(** {!Stc_util.Fnv} (FNV-1a) over the recorded ids — a cheap fingerprint
    for determinism tests and artifact-store keys. *)

val of_ids : int array -> marks:(string * int) list -> t
(** Reconstitute a recorder from previously captured contents (the
    artifact store's deserialization path): the recorded-blocks counter
    is set to the array length and the marks counter to the list length,
    exactly as if every id had been {!sink}ed and every mark {!mark}ed,
    so {!attach_metrics} exports the same values either way. *)
