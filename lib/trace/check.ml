module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator

type t = {
  program : Program.t;
  mutable prev : int option;
  mutable stack : int list; (* pending return continuations (block ids) *)
  mutable error : string option;
}

let create program = { program; prev = None; stack = []; error = None }

let entry_of t pid = t.program.Program.procs.(pid).Stc_cfg.Proc.entry

let legal t a b =
  let blk = t.program.Program.blocks.(a) in
  match blk.Block.term with
  | Terminator.Fall x | Terminator.Jump x ->
    if b = x then Ok () else Error (Printf.sprintf "block %d must go to %d, went to %d" a x b)
  | Terminator.Cond { taken; fallthru } ->
    if b = taken || b = fallthru then Ok ()
    else Error (Printf.sprintf "block %d cond to %d/%d, went to %d" a taken fallthru b)
  | Terminator.Call { callee; next } ->
    if b = entry_of t callee then begin
      t.stack <- next :: t.stack;
      Ok ()
    end
    else Error (Printf.sprintf "block %d calls proc %d (entry %d), went to %d" a callee (entry_of t callee) b)
  | Terminator.Icall { callees; next } ->
    if Array.exists (fun c -> b = entry_of t c) callees then begin
      t.stack <- next :: t.stack;
      Ok ()
    end
    else Error (Printf.sprintf "block %d icall, went to %d which is no target entry" a b)
  | Terminator.Ret -> (
    match t.stack with
    | [] ->
      (* Returning out of a trace root: the next block starts a new root
         and must be a procedure entry. *)
      let p = Program.proc_of_block t.program b in
      if p.Stc_cfg.Proc.entry = b then Ok ()
      else Error (Printf.sprintf "root return: block %d is not a procedure entry" b)
    | next :: rest ->
      t.stack <- rest;
      if b = next then Ok ()
      else Error (Printf.sprintf "block %d returns to %d, went to %d" a next b))

let step t b =
  match t.error with
  | Some e -> Error e
  | None ->
    let r =
      if b < 0 || b >= Array.length t.program.Program.blocks then
        Error (Printf.sprintf "block id %d out of range" b)
      else
        match t.prev with
        | None ->
          (* Trace root: must be a procedure entry. *)
          let p = Program.proc_of_block t.program b in
          if p.Stc_cfg.Proc.entry = b then Ok ()
          else Error (Printf.sprintf "trace starts at non-entry block %d" b)
        | Some a -> legal t a b
    in
    (match r with Ok () -> t.prev <- Some b | Error e -> t.error <- Some e);
    r

let finish t = match t.error with Some e -> Error e | None -> Ok ()

let check_all program iter =
  let t = create program in
  iter (fun b -> ignore (step t b));
  finish t
