type key = { name : string; mutable gen : int; mutable pid : int }

type installed = { w : Walker.t; id : int }

let current : installed option ref = ref None

let generation = ref 0

let key name = { name; gen = -1; pid = -1 }

let key_name k = k.name

let with_walker w f =
  (match !current with
  | Some _ -> invalid_arg "Probe.with_walker: already active"
  | None -> ());
  incr generation;
  current := Some { w; id = !generation };
  Fun.protect ~finally:(fun () -> current := None) f

let active () = !current <> None

let walker () = match !current with Some { w; _ } -> Some w | None -> None

let resolve inst k =
  if k.gen <> inst.id then begin
    k.pid <- Walker.pid_of_name inst.w k.name;
    k.gen <- inst.id
  end;
  k.pid

let routine k f =
  match !current with
  | None -> f ()
  | Some inst ->
    Walker.enter inst.w (resolve inst k);
    let r =
      try f ()
      with e ->
        Walker.reset inst.w;
        raise e
    in
    Walker.leave inst.w;
    r

let cond site v =
  (match !current with
  | None -> ()
  | Some inst -> Walker.cond inst.w site v);
  v
