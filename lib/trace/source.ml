type t = {
  mutable pull : unit -> Segment.t option;
  total_blocks : int option;
}

let none () = None

let make ?total_blocks pull =
  let t = { pull = none; total_blocks } in
  (* latch on the first [None] so a sloppy producer can't resurrect *)
  let guarded () =
    match pull () with
    | Some _ as s -> s
    | None ->
      t.pull <- none;
      None
  in
  t.pull <- guarded;
  t

let next_segment t = t.pull ()

let total_blocks t = t.total_blocks

let default_segment_blocks = 65536

let of_recorder ?(segment_blocks = default_segment_blocks) ?(lo = 0) ?hi rec_ =
  if segment_blocks <= 0 then
    invalid_arg "Source.of_recorder: segment_blocks must be positive";
  let len = Recorder.length rec_ in
  let lo = max 0 lo in
  let hi = match hi with None -> len | Some h -> min h len in
  let total = max 0 (hi - lo) in
  let pos = ref lo in
  make ~total_blocks:total (fun () ->
      if !pos >= hi then None
      else begin
        let n = min segment_blocks (hi - !pos) in
        let seg = Recorder.segment rec_ ~base:!pos ~blocks:n in
        pos := !pos + n;
        (* bases are rebased so index [lo] streams as global index 0: a
           range source is a complete trace in its own right *)
        Some (Segment.make seg.Segment.ids ~base:(Segment.base seg - lo))
      end)

let of_segments segs =
  let total =
    List.fold_left (fun acc s -> acc + Segment.length s) 0 segs
  in
  let rest = ref segs in
  make ~total_blocks:total (fun () ->
      match !rest with
      | [] -> None
      | s :: tl ->
        rest := tl;
        Some s)

let of_array ?(segment_blocks = default_segment_blocks) a =
  if segment_blocks <= 0 then
    invalid_arg "Source.of_array: segment_blocks must be positive";
  let len = Array.length a in
  let pos = ref 0 in
  make ~total_blocks:len (fun () ->
      if !pos >= len then None
      else begin
        let n = min segment_blocks (len - !pos) in
        let ids = Segment.alloc n in
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set ids i (Array.unsafe_get a (!pos + i))
        done;
        let seg = Segment.make ids ~base:!pos in
        pos := !pos + n;
        Some seg
      end)

let iter t f =
  let rec go () =
    match next_segment t with
    | None -> ()
    | Some seg ->
      Segment.iter f seg;
      go ()
  in
  go ()

let to_array t =
  match total_blocks t with
  | Some n ->
    let out = Array.make (max n 1) 0 in
    let pos = ref 0 in
    let rec go () =
      match next_segment t with
      | None -> ()
      | Some seg ->
        Segment.blit_to_array seg out !pos;
        pos := !pos + Segment.length seg;
        go ()
    in
    go ();
    if !pos <> n then invalid_arg "Source.to_array: length lied";
    if n = 0 then [||] else out
  | None ->
    let vec = Stc_util.Vec.create ~capacity:1024 () in
    iter t (Stc_util.Vec.push vec);
    Stc_util.Vec.to_array vec
