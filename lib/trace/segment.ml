type ids = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { ids : ids; base : int }

let alloc n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max n 0)

let make ids ~base =
  if base < 0 then invalid_arg "Segment.make: negative base";
  { ids; base }

let of_array ?(base = 0) a =
  let n = Array.length a in
  let ids = alloc n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set ids i (Array.unsafe_get a i)
  done;
  make ids ~base

let length t = Bigarray.Array1.dim t.ids

let base t = t.base

let get t i =
  if i < 0 || i >= length t then invalid_arg "Segment: index out of bounds";
  Bigarray.Array1.unsafe_get t.ids i

let unsafe_get t i = Bigarray.Array1.unsafe_get t.ids i

let first t = get t 0

let iter f t =
  for i = 0 to length t - 1 do
    f (Bigarray.Array1.unsafe_get t.ids i)
  done

let blit_to_array t dst off =
  let n = length t in
  if off < 0 || off + n > Array.length dst then
    invalid_arg "Segment.blit_to_array: range out of bounds";
  for i = 0 to n - 1 do
    Array.unsafe_set dst (off + i) (Bigarray.Array1.unsafe_get t.ids i)
  done
