module Vec = Stc_util.Vec

type t = { trace : Vec.t; mutable marks_rev : (string * int) list }

let create () = { trace = Vec.create ~capacity:1024 (); marks_rev = [] }

let sink t bid = Vec.push t.trace bid

let mark t name = t.marks_rev <- (name, Vec.length t.trace) :: t.marks_rev

let length t = Vec.length t.trace

let replay t f = Vec.iter f t.trace

let replay_range t ~lo ~hi f =
  for i = lo to min hi (Vec.length t.trace) - 1 do
    f (Vec.unsafe_get t.trace i)
  done

let marks t = List.rev t.marks_rev

let get t i = Vec.get t.trace i

let hash t =
  let h = ref 0xCBF29CE484222325L in
  Vec.iter
    (fun bid ->
      h := Int64.logxor !h (Int64.of_int bid);
      h := Int64.mul !h 0x100000001B3L)
    t.trace;
  !h
