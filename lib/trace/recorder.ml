module Vec = Stc_util.Vec
module Counter = Stc_obs.Metric.Counter

type t = {
  trace : Vec.t;
  mutable marks_rev : (string * int) list;
  blocks : Counter.t;
  n_marks : Counter.t;
}

let create () =
  {
    trace = Vec.create ~capacity:1024 ();
    marks_rev = [];
    blocks = Counter.make "blocks";
    n_marks = Counter.make "marks";
  }

let sink t bid =
  Counter.incr t.blocks;
  Vec.push t.trace bid

let mark t name =
  Counter.incr t.n_marks;
  t.marks_rev <- (name, Vec.length t.trace) :: t.marks_rev

let length t = Vec.length t.trace

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "trace.") reg t.blocks;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "trace.") reg t.n_marks

let replay t f = Vec.iter f t.trace

let replay_range t ~lo ~hi f =
  for i = lo to min hi (Vec.length t.trace) - 1 do
    f (Vec.unsafe_get t.trace i)
  done

let marks t = List.rev t.marks_rev

let get t i = Vec.get t.trace i

let unsafe_get t i = Vec.unsafe_get t.trace i

let raw_ids t = Vec.raw t.trace

let hash t = Stc_util.Fnv.ints ~len:(Vec.length t.trace) Stc_util.Fnv.empty (Vec.raw t.trace)

let of_ids ids ~marks =
  let t =
    {
      trace = Vec.of_array ids;
      marks_rev = List.rev marks;
      blocks = Counter.make "blocks";
      n_marks = Counter.make "marks";
    }
  in
  Counter.add t.blocks (Array.length ids);
  Counter.add t.n_marks (List.length marks);
  t
