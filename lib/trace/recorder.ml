module Vec = Stc_util.Vec
module Counter = Stc_obs.Metric.Counter

type t = {
  trace : Vec.t;
  mutable marks_rev : (string * int) list;
  blocks : Counter.t;
  n_marks : Counter.t;
}

let create () =
  {
    trace = Vec.create ~capacity:1024 ();
    marks_rev = [];
    blocks = Counter.make "blocks";
    n_marks = Counter.make "marks";
  }

let sink t bid =
  Counter.incr t.blocks;
  Vec.push t.trace bid

let mark t name =
  Counter.incr t.n_marks;
  t.marks_rev <- (name, Vec.length t.trace) :: t.marks_rev

let length t = Vec.length t.trace

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "trace.") reg t.blocks;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "trace.") reg t.n_marks

let marks t = List.rev t.marks_rev

let get t i = Vec.get t.trace i

let segment t ~base ~blocks =
  let len = Vec.length t.trace in
  if base < 0 || base > len then invalid_arg "Recorder.segment: base out of range";
  if blocks < 0 then invalid_arg "Recorder.segment: negative block count";
  let n = min blocks (len - base) in
  let ids = Segment.alloc n in
  let raw = Vec.raw t.trace in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set ids i (Array.unsafe_get raw (base + i))
  done;
  Segment.make ids ~base

let hash t = Stc_util.Fnv.ints ~len:(Vec.length t.trace) Stc_util.Fnv.empty (Vec.raw t.trace)

let of_ids ids ~marks =
  let t =
    {
      trace = Vec.of_array ids;
      marks_rev = List.rev marks;
      blocks = Counter.make "blocks";
      n_marks = Counter.make "marks";
    }
  in
  Counter.add t.blocks (Array.length ids);
  Counter.add t.n_marks (List.length marks);
  t
