(** Structured control-flow skeletons for instrumented routines.

    Every routine of the miniature database engine carries a skeleton
    describing the shape of the compiled code the paper would have profiled:
    straight-line runs, conditionals, loops, calls. The skeleton is compiled
    to basic blocks (see {!Bytecode}) and, at run time, the routine's probe
    events steer a walker through those blocks, producing the dynamic
    basic-block trace.

    The same DSL describes the {e generated} helper and filler procedures;
    for those, each decision site carries a probability ([~p]) and the
    walker samples instead of waiting for probe events. *)

type stmt =
  | Straight of int  (** [n] instructions of straight-line code. *)
  | If of { site : string; p_true : float; then_ : stmt list; else_ : stmt list }
  | While of { site : string; p_true : float; body : stmt list }
      (** Top-test loop; the site fires once per test, [true] to iterate. *)
  | Do_while of { site : string; p_true : float; body : stmt list }
      (** Bottom-test loop; the site fires after each iteration, [true] to
          go around again. *)
  | Call of string  (** Direct call to an instrumented routine. *)
  | Icall of { site : string; targets : string list }
      (** Indirect call; the routine actually invoked at run time must be
          one of [targets]. *)
  | Helper of string
      (** Call to a generated (auto-walked) procedure: no probe event; the
          walker descends on its own. *)
  | Return  (** Early return. *)

type t = stmt list

(** Convenience constructors (probabilities default to [nan], meaning the
    site is engine-driven). *)

val straight : int -> stmt

val if_ : ?p:float -> string -> stmt list -> stmt
(** [if_ site body]: conditional with an empty else. *)

val if_else : ?p:float -> string -> stmt list -> stmt list -> stmt

val while_ : ?p:float -> string -> stmt list -> stmt

val do_while : ?p:float -> string -> stmt list -> stmt

val call : string -> stmt

val icall : string -> string list -> stmt

val helper : string -> stmt

val return : stmt

val cond_sites : t -> string list
(** All decision-site names in order of first appearance (conds and
    icalls); duplicates allowed if a site name recurs. *)

val static_instrs : t -> int
(** Instruction count the skeleton will compile to (a lower bound; padding
    of empty blocks may add a few). *)
