(** The one way trace data flows to consumers: a pull-based stream of
    bounded off-heap {!Segment}s.

    Every producer — an in-memory {!Recorder}, the artifact store's
    chunked entries ([Stc_store.Chunked.source]), a synthetic test
    vector — is adapted to this interface, and every consumer (profile
    building, packed compilation, the fetch engines) pulls segments
    through it. A source is single-shot: once {!next_segment} returns
    [None] it stays exhausted; producers that can replay (recorders,
    the store) mint a fresh source per replay.

    Segment boundaries are invisible to consumers' {e results}: replay
    through a source is bit-identical to replay over the materialized
    trace at any segment size (property-tested), while peak residency
    stays O(segments in flight × segment size). *)

type t

val make : ?total_blocks:int -> (unit -> Segment.t option) -> t
(** Wrap a pull function. The function must yield consecutive segments
    with correct {!Segment.base} indices and then [None] forever.
    [total_blocks], when known, sizes progress reports and
    preallocations. *)

val next_segment : t -> Segment.t option
(** Pull the next segment; [None] when the trace is exhausted. *)

val total_blocks : t -> int option

val default_segment_blocks : int
(** Default producer segment size (65536 blocks ≈ 512 KB of ids): large
    enough that per-segment overhead (compile setup, store round-trips)
    is noise, small enough that a handful in flight stay cache- and
    memory-friendly. See EXPERIMENTS.md for how to pick. *)

val of_recorder : ?segment_blocks:int -> ?lo:int -> ?hi:int -> Recorder.t -> t
(** Stream a recorded trace as segments of at most [segment_blocks]
    (default {!default_segment_blocks}), restricted to global indices
    [\[lo, hi)] when given (the full trace otherwise). Segments are
    copied out of the recorder lazily, one per pull. *)

val of_segments : Segment.t list -> t
(** The bounded in-memory adapter: yield exactly these segments, in
    order. The list defines the stream — callers are responsible for
    consecutive bases (as {!of_array} slicing produces). *)

val of_array : ?segment_blocks:int -> int array -> t
(** Slice a plain id array into segments (tests; also {!of_segments}'
    usual feeder). *)

val iter : t -> (int -> unit) -> unit
(** Drain the source, feeding every block id in order to the consumer —
    the streamed replacement for the old [Recorder.replay]. *)

val to_array : t -> int array
(** Drain the source into a heap array (the explicit materialization
    point for consumers that need random access, e.g. the naive
    reference engine's {!Stc_fetch.View}). *)
