module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator

type cond_site = {
  site : string;
  p_true : float;
  mutable then_pc : int;
  mutable else_pc : int;
}

type goto = { mutable target : int }

type op =
  | Emit of int
  | Expect_cond of cond_site
  | Expect_enter of { site : string; callees : int array }
  | Auto_call of int
  | Goto of goto
  | Finish

type t = { pid : int; entry : int; ops : op array }

(* Compilation state. Blocks are allocated lazily: [cur] is the id of the
   block currently being appended to, [cur_size] its instruction count so
   far. Terminators of closed blocks may need forward targets, so closing a
   block returns a setter invoked once the target block exists. *)
type state = {
  builder : Builder.t;
  pid : int;
  mutable ops_rev : op list;
  mutable n_ops : int;
  mutable cur : int option;
  mutable cur_size : int;
  mutable blocks_rev : int list; (* textual order, reversed *)
  mutable cold_rev : int list;
      (* blocks of unlikely arms, deferred to the end of the procedure
         (compilers place error paths out of line) *)
  mutable terminated : bool;
}

let push st op =
  st.ops_rev <- op :: st.ops_rev;
  st.n_ops <- st.n_ops + 1;
  st.n_ops - 1

let open_block st =
  match st.cur with
  | Some bid -> bid
  | None ->
    let bid = Builder.new_block st.builder ~pid:st.pid ~size:1 in
    st.blocks_rev <- bid :: st.blocks_rev;
    ignore (push st (Emit bid));
    st.cur <- Some bid;
    st.cur_size <- 0;
    st.terminated <- false;
    bid

let add_size st n =
  ignore (open_block st);
  st.cur_size <- st.cur_size + n

(* Close the current block; its terminator is supplied later through the
   returned setter (targets are often forward references). *)
let close_block st =
  let bid = open_block st in
  Builder.set_size st.builder bid (max 1 st.cur_size);
  st.cur <- None;
  st.cur_size <- 0;
  fun term -> Builder.set_term st.builder bid term

let check_not_terminated st what =
  if st.terminated then
    invalid_arg
      (Printf.sprintf "Bytecode.compile: %s after a returning construct" what)

let rec compile_stmt st resolve (stmt : Skeleton.stmt) =
  match stmt with
  | Skeleton.Straight n ->
    check_not_terminated st "straight-line code";
    add_size st n
  | Skeleton.Return ->
    check_not_terminated st "return";
    add_size st 1;
    let set = close_block st in
    set Terminator.Ret;
    ignore (push st Finish);
    st.terminated <- true
  | Skeleton.Call name ->
    check_not_terminated st "call";
    compile_call st ~site:name ~callees:[| resolve name |] ~auto:false
  | Skeleton.Icall { site; targets } ->
    check_not_terminated st "icall";
    if targets = [] then invalid_arg "Bytecode.compile: icall with no targets";
    compile_call st ~site ~callees:(Array.of_list (List.map resolve targets))
      ~auto:false
  | Skeleton.Helper name ->
    check_not_terminated st "helper call";
    compile_call st ~site:name ~callees:[| resolve name |] ~auto:true
  | Skeleton.If { site; p_true; then_; else_ } ->
    check_not_terminated st "if";
    add_size st 1;
    let set_cond = close_block st in
    let ec = { site; p_true; then_pc = -1; else_pc = -1 } in
    ignore (push st (Expect_cond ec));
    let patch_cond ~then_pc ~else_pc =
      ec.then_pc <- then_pc;
      ec.else_pc <- else_pc
    in
    let has_else = else_ <> [] in
    (* An unlikely then-arm with no else is placed out of line at the end
       of the procedure (the error-path layout real compilers produce):
       the branch is taken into the arm and the common path falls through
       to the join. *)
    let unlikely =
      (not has_else) && (not (Float.is_nan p_true)) && p_true < 0.45
    in
    let arm_watermark = match st.blocks_rev with [] -> -1 | b :: _ -> b in
    (* then arm; if there is an else (or the arm is moved out of line) it
       must be jumped over / jump back *)
    let then_pc = st.n_ops in
    let then_entry = open_block st in
    compile_stmts st resolve then_;
    let then_terminated = st.terminated in
    let then_goto =
      if then_terminated then None
      else begin
        if has_else || unlikely then add_size st 1;
        let set = close_block st in
        let g = { target = -1 } in
        ignore (push st (Goto g));
        Some (set, g)
      end
    in
    (if unlikely then begin
       (* move the arm's blocks to the cold tail of the procedure *)
       let arm, hot =
         List.partition (fun b -> b > arm_watermark) st.blocks_rev
       in
       st.blocks_rev <- hot;
       st.cold_rev <- arm @ st.cold_rev
     end);
    (* else arm (may be absent) *)
    let else_info =
      match else_ with
      | [] -> None
      | _ ->
        let else_pc = st.n_ops in
        st.terminated <- false;
        let else_entry = open_block st in
        compile_stmts st resolve else_;
        let else_terminated = st.terminated in
        let else_goto =
          if else_terminated then None
          else begin
            let set = close_block st in
            let g = { target = -1 } in
            ignore (push st (Goto g));
            Some (set, g)
          end
        in
        Some (else_pc, else_entry, else_goto, else_terminated)
    in
    st.terminated <- false;
    (match else_info with
    | None ->
      (* No else: the not-entered side of the branch is the join block. *)
      let join_pc = st.n_ops in
      let join = open_block st in
      patch_cond ~then_pc ~else_pc:join_pc;
      (match then_goto with
      | Some (set, g) ->
        set (if unlikely then Terminator.Jump join else Terminator.Fall join);
        g.target <- join_pc
      | None -> ());
      if unlikely then
        set_cond (Terminator.Cond { taken = then_entry; fallthru = join })
      else set_cond (Terminator.Cond { taken = join; fallthru = then_entry })
    | Some (else_pc, else_entry, else_goto, else_terminated) ->
      set_cond (Terminator.Cond { taken = else_entry; fallthru = then_entry });
      patch_cond ~then_pc ~else_pc;
      if then_terminated && else_terminated then st.terminated <- true
      else begin
        let join_pc = st.n_ops in
        let join = open_block st in
        (match then_goto with
        | Some (set, g) ->
          set (Terminator.Jump join);
          g.target <- join_pc
        | None -> ());
        match else_goto with
        | Some (set, g) ->
          set (Terminator.Fall join);
          g.target <- join_pc
        | None -> ()
      end)
  | Skeleton.While { site; p_true; body } ->
    check_not_terminated st "while";
    (* Rotated loop (the guarded do-while an optimizing compiler emits):
       a duplicated entry test falls through into the body, and the test
       at the bottom branches back while the loop continues — a
       one-iteration loop executes no taken branch at all. *)
    add_size st 1;
    let set_pre = close_block st in
    let ec_pre = { site; p_true; then_pc = -1; else_pc = -1 } in
    ignore (push st (Expect_cond ec_pre));
    let body_pc = st.n_ops in
    let body_entry = open_block st in
    compile_stmts st resolve body;
    let bottom_terminated = st.terminated in
    let ec_bottom = { site; p_true; then_pc = body_pc; else_pc = -1 } in
    let set_bottom =
      if bottom_terminated then None
      else begin
        add_size st 1;
        let set = close_block st in
        ignore (push st (Expect_cond ec_bottom));
        Some set
      end
    in
    st.terminated <- false;
    let exit_pc = st.n_ops in
    let exit = open_block st in
    set_pre (Terminator.Cond { taken = exit; fallthru = body_entry });
    ec_pre.then_pc <- body_pc;
    ec_pre.else_pc <- exit_pc;
    (match set_bottom with
    | Some set ->
      set (Terminator.Cond { taken = body_entry; fallthru = exit });
      ec_bottom.else_pc <- exit_pc
    | None -> ())
  | Skeleton.Do_while { site; p_true; body } ->
    check_not_terminated st "do-while";
    let set_pre = close_block st in
    let body_pc = st.n_ops in
    let body_entry = open_block st in
    set_pre (Terminator.Fall body_entry);
    compile_stmts st resolve body;
    if st.terminated then
      invalid_arg "Bytecode.compile: do-while body always returns";
    add_size st 1;
    let set_tail = close_block st in
    let ec = { site; p_true; then_pc = body_pc; else_pc = -1 } in
    ignore (push st (Expect_cond ec));
    let exit_pc = st.n_ops in
    let exit = open_block st in
    set_tail (Terminator.Cond { taken = body_entry; fallthru = exit });
    ec.else_pc <- exit_pc

and compile_call st ~site ~callees ~auto =
  add_size st 1;
  let set = close_block st in
  if auto then begin
    assert (Array.length callees = 1);
    ignore (push st (Auto_call callees.(0)))
  end
  else ignore (push st (Expect_enter { site; callees }));
  let cont = open_block st in
  set
    (if Array.length callees = 1 then
       Terminator.Call { callee = callees.(0); next = cont }
     else Terminator.Icall { callees; next = cont })

and compile_stmts st resolve stmts =
  List.iter (compile_stmt st resolve) stmts

let compile builder ~pid ~resolve (skel : Skeleton.t) =
  let st =
    {
      builder;
      pid;
      ops_rev = [];
      n_ops = 0;
      cur = None;
      cur_size = 0;
      blocks_rev = [];
      cold_rev = [];
      terminated = false;
    }
  in
  let entry = open_block st in
  compile_stmts st resolve skel;
  if not st.terminated then begin
    add_size st 1;
    let set = close_block st in
    set Terminator.Ret;
    ignore (push st Finish)
  end;
  let ops = Array.of_list (List.rev st.ops_rev) in
  let blocks =
    Array.of_list (List.rev st.blocks_rev @ List.rev st.cold_rev)
  in
  Builder.finish_proc builder ~pid ~entry ~blocks;
  { pid; entry; ops }
