type stmt =
  | Straight of int
  | If of { site : string; p_true : float; then_ : stmt list; else_ : stmt list }
  | While of { site : string; p_true : float; body : stmt list }
  | Do_while of { site : string; p_true : float; body : stmt list }
  | Call of string
  | Icall of { site : string; targets : string list }
  | Helper of string
  | Return

type t = stmt list

let straight n = Straight n

let if_ ?(p = nan) site then_ = If { site; p_true = p; then_; else_ = [] }

let if_else ?(p = nan) site then_ else_ = If { site; p_true = p; then_; else_ }

let while_ ?(p = nan) site body = While { site; p_true = p; body }

let do_while ?(p = nan) site body = Do_while { site; p_true = p; body }

let call name = Call name

let icall site targets = Icall { site; targets }

let helper name = Helper name

let return = Return

let rec sites_of_stmt acc = function
  | Straight _ | Call _ | Helper _ | Return -> acc
  | If { site; then_; else_; _ } ->
    let acc = site :: acc in
    let acc = List.fold_left sites_of_stmt acc then_ in
    List.fold_left sites_of_stmt acc else_
  | While { site; body; _ } | Do_while { site; body; _ } ->
    List.fold_left sites_of_stmt (site :: acc) body
  | Icall { site; _ } -> site :: acc

let cond_sites t = List.rev (List.fold_left sites_of_stmt [] t)

let rec instrs_of_stmt acc = function
  | Straight n -> acc + n
  | Call _ | Helper _ | Return -> acc + 1
  | Icall _ -> acc + 1
  | If { then_; else_; _ } ->
    let acc = acc + 1 in
    let acc = List.fold_left instrs_of_stmt acc then_ in
    List.fold_left instrs_of_stmt acc else_
  | While { body; _ } ->
    (* test branch + back jump *)
    List.fold_left instrs_of_stmt (acc + 2) body
  | Do_while { body; _ } -> List.fold_left instrs_of_stmt (acc + 1) body

let static_instrs t = List.fold_left instrs_of_stmt 0 t
