module Program = Stc_cfg.Program
module Counter = Stc_obs.Metric.Counter

exception Desync of string

type frame = { code : Bytecode.t; mutable pc : int }

type t = {
  program : Program.t;
  code : Bytecode.t option array;
  sizes : int array; (* block id -> instruction count *)
  names : (string, int) Hashtbl.t;
  rng : Stc_util.Rng.t;
  mutable sink : int -> unit;
  mutable stack : frame list;
  n_blocks : Counter.t;
  n_instrs : Counter.t;
}

let create ~program ~code ~seed ~sink =
  let names = Hashtbl.create 256 in
  Array.iter
    (fun p -> Hashtbl.replace names p.Stc_cfg.Proc.name p.Stc_cfg.Proc.pid)
    program.Program.procs;
  {
    program;
    code;
    sizes = Array.map (fun b -> b.Stc_cfg.Block.size) program.Program.blocks;
    names;
    rng = Stc_util.Rng.create seed;
    sink;
    stack = [];
    n_blocks = Counter.make "blocks";
    n_instrs = Counter.make "instrs";
  }

let set_sink t sink = t.sink <- sink

let blocks_emitted t = Counter.value t.n_blocks

let instrs_emitted t = Counter.value t.n_instrs

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "walker.") reg t.n_blocks;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "walker.") reg t.n_instrs

let pid_of_name t name = Hashtbl.find t.names name

let depth t = List.length t.stack

let reset t = t.stack <- []

let desync t fmt =
  Format.kasprintf
    (fun s ->
      let ctx =
        match t.stack with
        | [] -> "(no activation)"
        | f :: _ ->
          let p = t.program.Program.procs.(f.code.Bytecode.pid) in
          Printf.sprintf "in %s at pc %d" p.Stc_cfg.Proc.name f.pc
      in
      raise (Desync (s ^ " " ^ ctx)))
    fmt

let emit t bid =
  Counter.incr t.n_blocks;
  Counter.add t.n_instrs (Array.unsafe_get t.sizes bid);
  t.sink bid

let code_of t pid =
  match t.code.(pid) with
  | Some c -> c
  | None ->
    let p = t.program.Program.procs.(pid) in
    raise
      (Desync
         (Printf.sprintf "procedure %s (pid %d) has no bytecode"
            p.Stc_cfg.Proc.name pid))

(* Auto-walk a generated procedure: interpret its bytecode, sampling every
   decision site. [fuel] bounds the total number of ops executed in the
   whole auto activation tree; once exhausted, conditional sites take their
   [else] edge, which always leads forward to [Finish]. *)
let rec auto_walk t ~depth ~fuel pid =
  let code = code_of t pid in
  let ops = code.Bytecode.ops in
  let pc = ref 0 in
  let continue = ref true in
  while !continue do
    decr fuel;
    match ops.(!pc) with
    | Bytecode.Emit bid ->
      emit t bid;
      incr pc
    | Bytecode.Goto { target } -> pc := target
    | Bytecode.Auto_call callee ->
      if depth > 64 then
        raise
          (Desync
             (Printf.sprintf
                "auto-walk depth limit exceeded in procedure %d (cyclic \
                 helper call graph?)"
                pid));
      auto_walk t ~depth:(depth + 1) ~fuel callee;
      incr pc
    | Bytecode.Expect_cond { p_true; then_pc; else_pc; _ } ->
      let take_true = !fuel > 0 && Stc_util.Rng.bernoulli t.rng p_true in
      pc := if take_true then then_pc else else_pc
    | Bytecode.Expect_enter { site; _ } ->
      raise
        (Desync
           (Printf.sprintf
              "auto-walked procedure %d has an engine-driven call site %S" pid
              site))
    | Bytecode.Finish -> continue := false
  done

(* Advance the top frame until it parks at an op that needs an event. *)
let rec advance t =
  match t.stack with
  | [] -> ()
  | frame :: _ ->
    let ops = frame.code.Bytecode.ops in
    (match ops.(frame.pc) with
    | Bytecode.Emit bid ->
      emit t bid;
      frame.pc <- frame.pc + 1;
      advance t
    | Bytecode.Goto { target } ->
      frame.pc <- target;
      advance t
    | Bytecode.Auto_call callee ->
      auto_walk t ~depth:0 ~fuel:(ref 200_000) callee;
      frame.pc <- frame.pc + 1;
      advance t
    | Bytecode.Expect_cond _ | Bytecode.Expect_enter _ | Bytecode.Finish -> ())

let enter t pid =
  (match t.stack with
  | [] -> ()
  | frame :: _ -> (
    match frame.code.Bytecode.ops.(frame.pc) with
    | Bytecode.Expect_enter { site; callees } ->
      if not (Array.exists (fun c -> c = pid) callees) then
        desync t "entered procedure %d, not a declared target of site %S" pid
          site
    | _ -> desync t "unexpected enter of procedure %d" pid));
  let code = code_of t pid in
  t.stack <- { code; pc = 0 } :: t.stack;
  advance t

let cond t site v =
  match t.stack with
  | [] -> desync t "cond %S with no activation" site
  | frame :: _ -> (
    match frame.code.Bytecode.ops.(frame.pc) with
    | Bytecode.Expect_cond { site = expected; then_pc; else_pc; _ } ->
      if not (String.equal expected site) then
        desync t "cond site mismatch: got %S, expected %S" site expected;
      frame.pc <- (if v then then_pc else else_pc);
      advance t
    | _ -> desync t "unexpected cond %S" site)

let leave t =
  match t.stack with
  | [] -> desync t "leave with no activation"
  | frame :: rest -> (
    (match frame.code.Bytecode.ops.(frame.pc) with
    | Bytecode.Finish -> ()
    | _ -> desync t "leave before the routine reached its return block");
    t.stack <- rest;
    match rest with
    | [] -> ()
    | caller :: _ ->
      caller.pc <- caller.pc + 1;
      advance t)

let auto_run t pid =
  if t.stack <> [] then desync t "auto_run with active instrumented stack";
  auto_walk t ~depth:0 ~fuel:(ref 200_000) pid
