module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Proc = Stc_cfg.Proc

type t = {
  procs_total : int;
  procs_executed : int;
  blocks_total : int;
  blocks_executed : int;
  instrs_total : int;
  instrs_executed : int;
}

let compute p =
  let prog = Profile.program p in
  let counts = Profile.counts p in
  let blocks_executed = ref 0 and instrs_executed = ref 0 in
  let proc_touched = Array.make (Array.length prog.Program.procs) false in
  Array.iteri
    (fun bid c ->
      if c > 0 then begin
        incr blocks_executed;
        let b = prog.Program.blocks.(bid) in
        instrs_executed := !instrs_executed + b.Block.size;
        proc_touched.(b.Block.proc) <- true
      end)
    counts;
  let sc = Program.static_counts prog in
  {
    procs_total = sc.Program.n_procs;
    procs_executed =
      Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 proc_touched;
    blocks_total = sc.Program.n_blocks;
    blocks_executed = !blocks_executed;
    instrs_total = sc.Program.n_instrs;
    instrs_executed = !instrs_executed;
  }

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let per_subsystem p =
  let prog = Profile.program p in
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun proc ->
      let executed = Profile.proc_entry_count p proc.Proc.pid > 0 in
      let total, exec =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl proc.Proc.subsystem)
      in
      Hashtbl.replace tbl proc.Proc.subsystem
        (total + 1, if executed then exec + 1 else exec))
    prog.Program.procs;
  Hashtbl.fold (fun k (t, e) acc -> (k, t, e) :: acc) tbl []
  |> List.sort compare
