(** Concentration of dynamic references in few static blocks — Figure 2. *)

type t

val compute : Profile.t -> t

val share_of_top : t -> int -> float
(** [share_of_top t n]: fraction of all dynamic block references captured
    by the [n] most popular static blocks. *)

val blocks_for_share : t -> float -> int
(** Least number of most-popular blocks capturing the given share. *)

val curve : t -> max_blocks:int -> step:int -> (int * float) list
(** Sampled (n, cumulative share) points for plotting Figure 2. *)

val executed_blocks : t -> int
(** Number of static blocks with a non-zero count. *)
