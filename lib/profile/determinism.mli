(** Block-type mix and transition determinism — Table 2 of the paper.

    A block "behaves in a fixed way" when one successor receives at least
    [threshold] of its dynamic out-transitions (the paper's notion of
    "always taken or always not taken" for branches; fall-through blocks,
    calls with a single target and returns are fixed by mechanism — a
    return-address stack makes return targets predictable). *)

type row = {
  kind : Stc_cfg.Terminator.kind;
  static_pct : float;  (** Share among {e executed} static blocks. *)
  dynamic_pct : float;  (** Share of dynamic block executions. *)
  predictable_pct : float;
      (** Share of this kind's dynamic executions coming from blocks that
          behave in a fixed way. *)
}

type t = {
  rows : row list;  (** One row per kind, in Table 2 order. *)
  overall_predictable_pct : float;
      (** Share of all dynamic transitions that are predictable (the
          paper's "overall, 80 % of the basic block transitions"). *)
}

val compute : ?threshold:float -> Profile.t -> t
(** Default [threshold] is 0.9. *)
