module Histo = Stc_util.Histo

type t = {
  sizes : int array;
  member : bool array;
  last : int array; (* instruction index at last execution, -1 if never *)
  histo : Histo.t;
  mutable clock : int; (* instructions executed so far *)
}

let popular_set p ~share =
  let counts = Profile.counts p in
  let n = Array.length counts in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if counts.(a) <> counts.(b) then compare counts.(b) counts.(a)
      else compare a b)
    order;
  let total = Array.fold_left ( + ) 0 counts in
  let target = share *. float_of_int total in
  let member = Array.make n false in
  let acc = ref 0 in
  (try
     Array.iter
       (fun bid ->
         if float_of_int !acc >= target || counts.(bid) = 0 then raise Exit;
         member.(bid) <- true;
         acc := !acc + counts.(bid))
       order
   with Exit -> ());
  member

let create prog ~member =
  let sizes =
    Array.map (fun b -> b.Stc_cfg.Block.size) prog.Stc_cfg.Program.blocks
  in
  {
    sizes;
    member;
    last = Array.make (Array.length sizes) (-1);
    histo = Histo.create ();
    clock = 0;
  }

let sink t bid =
  if Array.unsafe_get t.member bid then begin
    let last = Array.unsafe_get t.last bid in
    if last >= 0 then Histo.add t.histo (t.clock - last);
    Array.unsafe_set t.last bid t.clock
  end;
  t.clock <- t.clock + Array.unsafe_get t.sizes bid

let note_boundary t = Array.fill t.last 0 (Array.length t.last) (-1)

let mass_below t d = Histo.mass_below t.histo d

let samples t = Histo.total t.histo

let histogram t = Histo.buckets t.histo
