type t = { cumulative : float array; executed : int }

let compute p =
  let counts = Array.copy (Profile.counts p) in
  let executed = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
  { cumulative = Stc_util.Stats.cumulative_share counts; executed }

let share_of_top t n =
  let len = Array.length t.cumulative in
  if n <= 0 || len = 0 then 0.0 else t.cumulative.(min n len - 1)

let blocks_for_share t share =
  let len = Array.length t.cumulative in
  let rec go i = if i >= len || t.cumulative.(i) >= share then i + 1 else go (i + 1) in
  if len = 0 then 0 else go 0

let curve t ~max_blocks ~step =
  let rec go n acc =
    if n > max_blocks then List.rev acc
    else go (n + step) ((n, share_of_top t n) :: acc)
  in
  go step []

let executed_blocks t = t.executed
