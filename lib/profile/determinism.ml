module Terminator = Stc_cfg.Terminator
module Block = Stc_cfg.Block
module Program = Stc_cfg.Program

type row = {
  kind : Terminator.kind;
  static_pct : float;
  dynamic_pct : float;
  predictable_pct : float;
}

type t = { rows : row list; overall_predictable_pct : float }

let kinds =
  [
    Terminator.Fall_through;
    Terminator.Branch;
    Terminator.Subroutine_call;
    Terminator.Subroutine_return;
  ]

let index_of_kind = function
  | Terminator.Fall_through -> 0
  | Terminator.Branch -> 1
  | Terminator.Subroutine_call -> 2
  | Terminator.Subroutine_return -> 3

let compute ?(threshold = 0.9) p =
  let prog = Profile.program p in
  let counts = Profile.counts p in
  let static = Array.make 4 0 in
  let dynamic = Array.make 4 0 in
  let fixed_dynamic = Array.make 4 0 in
  Array.iteri
    (fun bid c ->
      if c > 0 then begin
        let blk = prog.Program.blocks.(bid) in
        let k = index_of_kind (Block.kind blk) in
        static.(k) <- static.(k) + 1;
        dynamic.(k) <- dynamic.(k) + c;
        let fixed =
          match blk.Block.term with
          | Terminator.Fall _ | Terminator.Jump _ | Terminator.Call _ ->
            (* single possible target *)
            true
          | Terminator.Ret ->
            (* a return-address stack always knows the target *)
            true
          | Terminator.Cond _ | Terminator.Icall _ -> (
            match Profile.successors p bid with
            | [] -> true
            | (_, top) :: _ as succs ->
              let total =
                List.fold_left (fun acc (_, c') -> acc + c') 0 succs
              in
              float_of_int top >= threshold *. float_of_int total)
        in
        if fixed then fixed_dynamic.(k) <- fixed_dynamic.(k) + c
      end)
    counts;
  let static_total = Array.fold_left ( + ) 0 static in
  let dynamic_total = Array.fold_left ( + ) 0 dynamic in
  let pct part whole =
    if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  let rows =
    List.map
      (fun kind ->
        let k = index_of_kind kind in
        {
          kind;
          static_pct = pct static.(k) static_total;
          dynamic_pct = pct dynamic.(k) dynamic_total;
          predictable_pct = pct fixed_dynamic.(k) dynamic.(k);
        })
      kinds
  in
  {
    rows;
    overall_predictable_pct =
      pct (Array.fold_left ( + ) 0 fixed_dynamic) dynamic_total;
  }
