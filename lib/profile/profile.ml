module Program = Stc_cfg.Program
module Block = Stc_cfg.Block
module Terminator = Stc_cfg.Terminator

type t = {
  prog : Program.t;
  counts : int array;
  sizes : int array;
  edges : (int, int) Hashtbl.t; (* src * n_blocks + dst -> count *)
  n_blocks_static : int;
  mutable prev : int;
  mutable total_blocks : int;
  mutable total_instrs : int;
  mutable succs : (int * int) list array option;
      (* per-block successor lists, built lazily from [edges] *)
}

let create prog =
  let n = Array.length prog.Program.blocks in
  {
    prog;
    counts = Array.make n 0;
    sizes = Array.map (fun b -> b.Block.size) prog.Program.blocks;
    edges = Hashtbl.create 4096;
    n_blocks_static = n;
    prev = -1;
    total_blocks = 0;
    total_instrs = 0;
    succs = None;
  }

let sink t bid =
  t.counts.(bid) <- t.counts.(bid) + 1;
  t.total_blocks <- t.total_blocks + 1;
  t.total_instrs <- t.total_instrs + Array.unsafe_get t.sizes bid;
  if t.prev >= 0 then begin
    let key = (t.prev * t.n_blocks_static) + bid in
    (match Hashtbl.find_opt t.edges key with
    | Some c -> Hashtbl.replace t.edges key (c + 1)
    | None -> Hashtbl.add t.edges key 1);
    t.succs <- None
  end;
  t.prev <- bid

let note_boundary t = t.prev <- -1

let program t = t.prog

let block_count t bid = t.counts.(bid)

let counts t = t.counts

let total_blocks t = t.total_blocks

let total_instrs t = t.total_instrs

let edge_count t ~src ~dst =
  match Hashtbl.find_opt t.edges ((src * t.n_blocks_static) + dst) with
  | Some c -> c
  | None -> 0

let iter_edges t f =
  Hashtbl.iter
    (fun key count ->
      f ~src:(key / t.n_blocks_static) ~dst:(key mod t.n_blocks_static) ~count)
    t.edges

(* Successor lists are materialized once per profile state in a single pass
   over the edge table; [sink] invalidates the cache when a new edge
   appears. *)
let succ_table t =
  match t.succs with
  | Some s -> s
  | None ->
    let s = Array.make t.n_blocks_static [] in
    Hashtbl.iter
      (fun key count ->
        let src = key / t.n_blocks_static
        and dst = key mod t.n_blocks_static in
        s.(src) <- (dst, count) :: s.(src))
      t.edges;
    let by_weight (d1, c1) (d2, c2) =
      if c1 <> c2 then compare c2 c1 else compare d1 d2
    in
    Array.iteri (fun i l -> s.(i) <- List.sort by_weight l) s;
    t.succs <- Some s;
    s

let successors t bid = (succ_table t).(bid)

let out_count t bid = List.fold_left (fun acc (_, c) -> acc + c) 0 (successors t bid)

let proc_entry_count t pid =
  t.counts.(t.prog.Program.procs.(pid).Stc_cfg.Proc.entry)

let call_edges t =
  let acc = Hashtbl.create 256 in
  Array.iter
    (fun blk ->
      let record callee =
        let entry = t.prog.Program.procs.(callee).Stc_cfg.Proc.entry in
        let c = edge_count t ~src:blk.Block.id ~dst:entry in
        if c > 0 then begin
          let key = (blk.Block.proc, callee) in
          let cur = Option.value ~default:0 (Hashtbl.find_opt acc key) in
          Hashtbl.replace acc key (cur + c)
        end
      in
      match blk.Block.term with
      | Terminator.Call { callee; _ } -> record callee
      | Terminator.Icall { callees; _ } -> Array.iter record callees
      | Terminator.Fall _ | Terminator.Jump _ | Terminator.Cond _
      | Terminator.Ret ->
        ())
    t.prog.Program.blocks;
  let l = Hashtbl.fold (fun (p, q) c acc -> (p, q, c) :: acc) acc [] in
  List.sort
    (fun (p1, q1, c1) (p2, q2, c2) ->
      if c1 <> c2 then compare c2 c1 else compare (p1, q1) (p2, q2))
    l

let inject_block t bid ~count =
  t.counts.(bid) <- t.counts.(bid) + count;
  t.total_blocks <- t.total_blocks + count;
  t.total_instrs <- t.total_instrs + (count * t.sizes.(bid))

let inject_edge t ~src ~dst ~count =
  let key = (src * t.n_blocks_static) + dst in
  (match Hashtbl.find_opt t.edges key with
  | Some c -> Hashtbl.replace t.edges key (c + count)
  | None -> Hashtbl.add t.edges key count);
  t.succs <- None
