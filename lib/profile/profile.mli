(** Dynamic execution profiles: per-block execution counts and weighted
    control-flow edges, accumulated from a basic-block trace.

    This is the weighted directed control-flow graph of Section 5 of the
    paper — the single input of every layout algorithm. *)

type t

val create : Stc_cfg.Program.t -> t

val sink : t -> int -> unit
(** Feed the next executed block (install as walker sink, or replay a
    {!Stc_trace.Recorder} through it). Consecutive blocks are counted as an
    edge; the very first block only counts as a node visit. *)

val note_boundary : t -> unit
(** Forget the previous block, so independent trace sections (different
    queries) do not contribute a spurious edge where they abut. *)

val program : t -> Stc_cfg.Program.t

val block_count : t -> int -> int

val counts : t -> int array
(** The per-block execution counts (the live array — do not mutate). *)

val total_blocks : t -> int
(** Total dynamic block executions. *)

val total_instrs : t -> int
(** Total dynamic instructions. *)

val edge_count : t -> src:int -> dst:int -> int

val iter_edges : t -> (src:int -> dst:int -> count:int -> unit) -> unit

val successors : t -> int -> (int * int) list
(** [(dst, count)] pairs observed out of a block, most frequent first;
    ties broken by block id for determinism. *)

val out_count : t -> int -> int
(** Total outgoing edge weight of a block. *)

val proc_entry_count : t -> int -> int
(** Dynamic invocations of a procedure (= executions of its entry block). *)

val call_edges : t -> (int * int * int) list
(** [(caller_pid, callee_pid, count)] for all dynamic call transitions
    (edges from a call-terminated block to a procedure entry), most
    frequent first. *)

(** {2 Direct construction}

    For tests and worked examples (e.g. the Figure 3 graph), a profile can
    be populated with explicit weights instead of consuming a trace. *)

val inject_block : t -> int -> count:int -> unit
(** Add [count] executions to a block. *)

val inject_edge : t -> src:int -> dst:int -> count:int -> unit
(** Add [count] traversals of an edge (does not touch block counts). *)
