(** Static-vs-executed footprint — Table 1 of the paper. *)

type t = {
  procs_total : int;
  procs_executed : int;
  blocks_total : int;
  blocks_executed : int;
  instrs_total : int;
  instrs_executed : int;
      (** Static instructions belonging to executed blocks ("referenced"
          code, not dynamic instruction count). *)
}

val compute : Profile.t -> t

val pct : int -> int -> float
(** [pct part whole] as a percentage. *)

val per_subsystem : Profile.t -> (Stc_cfg.Proc.subsystem * int * int) list
(** [(subsystem, procs_total, procs_executed)] per subsystem. *)
