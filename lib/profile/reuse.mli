(** Temporal reuse distances (Section 4.1): for a chosen set of popular
    blocks, the number of instructions executed between two consecutive
    invocations of the same block. *)

type t

val popular_set : Profile.t -> share:float -> bool array
(** Membership array of the most popular blocks that together capture
    [share] of the dynamic references (the paper uses 0.75). *)

val create : Stc_cfg.Program.t -> member:bool array -> t

val sink : t -> int -> unit
(** Feed the trace (a second replay, after the profile determined the
    popular set). *)

val note_boundary : t -> unit

val mass_below : t -> int -> float
(** [mass_below t d]: probability that a tracked block is re-executed in
    fewer than [d] instructions (the paper reports d = 250 → 33 % and
    d = 100 → 19 %). *)

val samples : t -> int
(** Number of re-invocation intervals recorded. *)

val histogram : t -> (int * int * int) list
(** Raw (lo, hi, weight) buckets. *)
