(* Static per-line temperature hints for the Trrip policy, derived from
   per-block dynamic execution counts (the same hotness signal STC's
   layout algorithms order blocks by).

   A block spanning k lines contributes its count to each of them —
   every executed instruction of the block costs a fetch of its line.
   Lines are then ranked by accumulated weight (ties to the lower line
   number, so the classification is deterministic): the lines covering
   the first half of the total fetch mass are hot (0), those covering
   the next 40% warm (1), everything else cold (2). *)

let hot_num = 1

let hot_den = 2 (* hot: first 1/2 of the mass *)

let warm_num = 9

let warm_den = 10 (* warm: up to 9/10 of the mass *)

let of_blocks ~line_bytes ~addrs ~sizes ~counts =
  if line_bytes <= 0 then invalid_arg "Temperature.of_blocks: line_bytes";
  let n = Array.length addrs in
  if Array.length sizes <> n || Array.length counts <> n then
    invalid_arg "Temperature.of_blocks: array length mismatch";
  (* highest line touched by any placed block *)
  let max_line = ref (-1) in
  for b = 0 to n - 1 do
    if addrs.(b) >= 0 && sizes.(b) > 0 then begin
      let last = (addrs.(b) + sizes.(b) - 1) / line_bytes in
      if last > !max_line then max_line := last
    end
  done;
  if !max_line < 0 then [||]
  else begin
    let weight = Array.make (!max_line + 1) 0 in
    for b = 0 to n - 1 do
      if addrs.(b) >= 0 && sizes.(b) > 0 && counts.(b) > 0 then
        for l = addrs.(b) / line_bytes to (addrs.(b) + sizes.(b) - 1) / line_bytes
        do
          weight.(l) <- weight.(l) + counts.(b)
        done
    done;
    let total = Array.fold_left ( + ) 0 weight in
    let temps = Array.make (!max_line + 1) 2 in
    if total > 0 then begin
      let order = Array.init (!max_line + 1) Fun.id in
      Array.sort
        (fun a b ->
          if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
          else compare a b)
        order;
      let cum = ref 0 in
      Array.iter
        (fun l ->
          let before = !cum in
          cum := !cum + weight.(l);
          if weight.(l) > 0 then
            if before * hot_den < total * hot_num then temps.(l) <- 0
            else if before * warm_den < total * warm_num then temps.(l) <- 1)
        order
    end;
    temps
  end
