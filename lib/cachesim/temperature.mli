(** Static per-line temperature hints for {!Icache.Trrip}, derived from
    per-block dynamic execution counts — the layout hotness signal STC
    already computes, reused as TRRIP's temperature oracle. *)

val of_blocks :
  line_bytes:int ->
  addrs:int array ->
  sizes:int array ->
  counts:int array ->
  int array
(** [of_blocks ~line_bytes ~addrs ~sizes ~counts] maps a placed layout
    (per-block byte address, -1 = unplaced; per-block byte size) and the
    per-block dynamic execution counts to a per-line temperature table
    indexed by line number: 0 hot, 1 warm, 2 cold. A block contributes
    its count to every line it spans. Ranking lines by weight (ties to
    the lower line number), the lines covering the first half of the
    total fetch mass are hot and those covering the next 40% warm;
    zero-weight lines are always cold. Deterministic in its inputs. *)
