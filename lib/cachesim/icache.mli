(** Instruction-cache simulator: direct-mapped or set-associative with a
    pluggable replacement policy (LRU, or the RRIP family), optionally
    backed by a small fully-associative victim cache (Jouppi), as in the
    hardware alternatives of Table 3.

    Addresses are byte addresses; state is updated on every access. *)

type t

type policy =
  | Lru  (** recency stack per set — the paper's machine, the default *)
  | Srrip
      (** static re-reference interval prediction: 2-bit RRPV per way,
          long-interval (2) insertion, hit promotes to 0, victim is a
          way at RRPV 3 after uniform aging (ties to the
          oldest-installed way) *)
  | Trrip of int array
      (** SRRIP with a static per-line temperature hint, indexed by line
          number ([addr / line_bytes]): 0 = hot (insert at RRPV 0),
          1 = warm (insert at 2), anything else — or any line past the
          end of the table — cold (insert at 3). The table is derived
          from the same layout hotness STC computes
          (see {!Temperature}). *)

val create :
  ?assoc:int ->
  ?line_bytes:int ->
  ?victim_lines:int ->
  ?policy:policy ->
  size_bytes:int ->
  unit ->
  t
(** Defaults: direct-mapped ([assoc = 1]), 32-byte lines (8 instructions,
    the SEQ.3 half-width), no victim cache ([victim_lines = 0]), [Lru]
    replacement. [size_bytes] must be a power of two and a multiple of
    [assoc * line_bytes]. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on
    a hit. A victim-cache hit counts as a hit (the line is swapped back
    into the main cache). *)

type outcome = Hit | Victim_hit | Miss

val access_uncounted : t -> int -> outcome
(** {!access}, except the statistics counters are left untouched (cache
    {e state} — tags, replacement state, victim buffer — is still
    updated). Hot replay loops count outcomes in local variables and
    flush once with {!add_stats}, keeping the shared counters off the
    per-line path; [access t a] is exactly
    [access_uncounted t a] + the matching counter bumps. *)

val access_demand : t -> int -> outcome * bool
(** {!access_uncounted} plus prefetch accounting: the [bool] is [true]
    iff the access hit a line installed by {!fill_prefetch} that no
    demand access had touched yet (the prefetch was useful). The mark is
    consumed. This is the demand entry point of the FDIP frontend
    ({!Stc_fetch.Fdip}); without intervening {!fill_prefetch} calls it
    is state-identical to {!access_uncounted}. *)

val mem : t -> int -> bool
(** [mem t addr] is [true] iff the line containing [addr] is resident in
    the main tag array. Pure — no state, statistics or replacement
    update; the victim buffer is not consulted. Used by the prefetcher
    to filter already-resident candidates. *)

val fill_prefetch : t -> int -> unit
(** Install the line containing [addr] as a prefetch: a no-op if already
    resident, else a normal replacement-policy install marked
    prefetched, with a distant RRIP insertion (a wrong prefetch should
    be the first line out) or MRU under LRU. The evicted line passes
    through the victim buffer exactly as on the demand path. Prefetch
    fills never touch the access/miss statistics (they do count
    {!evictions} under RRIP policies). *)

val add_stats : t -> accesses:int -> misses:int -> victim_hits:int -> unit
(** Batch-add to the statistics counters; the flush half of the
    {!access_uncounted} protocol. *)

val plain_direct : t -> bool
(** [true] iff the cache is direct-mapped ([assoc = 1]) with no victim
    buffer and [Lru] replacement — the precondition of {!probe_direct}.
    (Non-LRU policies are excluded because they count {!evictions},
    which the fast probe does not.) *)

val probe_direct : t -> int -> bool
(** Specialized {!access_uncounted} for {!plain_direct} caches: [true]
    on a hit; on a miss the line is installed over the set's single way.
    With one way per set and no victim buffer there is no replacement
    choice, so skipping the LRU clock and stamps is observationally
    identical to {!access_uncounted} (same outcome sequence, same final
    tags) at a fraction of the cost — this is what the fused replay bank
    drives for every plain direct-mapped configuration. Statistics are
    left to the caller, as with {!access_uncounted}. Calling it on a
    set-associative, victim-backed or non-LRU cache would silently
    corrupt the replacement state; don't. *)

val line_bytes : t -> int

val size_bytes : t -> int

val policy : t -> policy

val accesses : t -> int

val misses : t -> int
(** True misses (not satisfied by the cache nor its victim buffer). *)

val victim_hits : t -> int

val evictions : t -> int
(** Valid lines evicted from the main tag array (demand installs and
    prefetch fills). Tracked for the RRIP policies only — always 0
    under [Lru], where the historical paths (including
    {!probe_direct}) do not count it. *)

type stats = { s_accesses : int; s_misses : int; s_victim_hits : int }

val stats : t -> stats
(** One atomic snapshot of all three counters, so callers comparing or
    publishing them mid-simulation never mix values from different
    instants. Prefer this over three separate accessor calls. *)

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register this cache's counters with a metrics registry under
    [prefix ^ "icache."] ([accesses], [misses], [victim_hits]); they keep
    updating in place on every {!access}. Non-LRU caches additionally
    register [evictions] under [prefix ^ "icache.replacement."]; LRU
    caches register exactly the historical three, keeping pre-existing
    exports byte-identical. *)

val reset_stats : t -> unit
(** Zero the statistics counters; cache contents are untouched. *)

val flush : t -> unit
(** Invalidate all contents {e and} reset statistics: [flush] =
    cold cache + {!reset_stats}. *)
