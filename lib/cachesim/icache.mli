(** Instruction-cache simulator: direct-mapped or set-associative with
    LRU, optionally backed by a small fully-associative victim cache
    (Jouppi), as in the hardware alternatives of Table 3.

    Addresses are byte addresses; state is updated on every access. *)

type t

val create :
  ?assoc:int ->
  ?line_bytes:int ->
  ?victim_lines:int ->
  size_bytes:int ->
  unit ->
  t
(** Defaults: direct-mapped ([assoc = 1]), 32-byte lines (8 instructions,
    the SEQ.3 half-width), no victim cache ([victim_lines = 0]).
    [size_bytes] must be a power of two and a multiple of
    [assoc * line_bytes]. *)

val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; returns [true] on
    a hit. A victim-cache hit counts as a hit (the line is swapped back
    into the main cache). *)

type outcome = Hit | Victim_hit | Miss

val access_uncounted : t -> int -> outcome
(** {!access}, except the statistics counters are left untouched (cache
    {e state} — tags, LRU stamps, victim buffer — is still updated).
    Hot replay loops count outcomes in local variables and flush once
    with {!add_stats}, keeping the shared counters off the per-line
    path; [access t a] is exactly
    [access_uncounted t a] + the matching counter bumps. *)

val add_stats : t -> accesses:int -> misses:int -> victim_hits:int -> unit
(** Batch-add to the statistics counters; the flush half of the
    {!access_uncounted} protocol. *)

val plain_direct : t -> bool
(** [true] iff the cache is direct-mapped ([assoc = 1]) with no victim
    buffer — the precondition of {!probe_direct}. *)

val probe_direct : t -> int -> bool
(** Specialized {!access_uncounted} for {!plain_direct} caches: [true]
    on a hit; on a miss the line is installed over the set's single way.
    With one way per set and no victim buffer there is no replacement
    choice, so skipping the LRU clock and stamps is observationally
    identical to {!access_uncounted} (same outcome sequence, same final
    tags) at a fraction of the cost — this is what the fused replay bank
    drives for every plain direct-mapped configuration. Statistics are
    left to the caller, as with {!access_uncounted}. Calling it on a
    set-associative or victim-backed cache would silently corrupt the
    replacement state; don't. *)

val line_bytes : t -> int

val size_bytes : t -> int

val accesses : t -> int

val misses : t -> int
(** True misses (not satisfied by the cache nor its victim buffer). *)

val victim_hits : t -> int

type stats = { s_accesses : int; s_misses : int; s_victim_hits : int }

val stats : t -> stats
(** One atomic snapshot of all three counters, so callers comparing or
    publishing them mid-simulation never mix values from different
    instants. Prefer this over three separate accessor calls. *)

val attach_metrics : t -> Stc_obs.Registry.t -> prefix:string -> unit
(** Register this cache's counters with a metrics registry under
    [prefix ^ "icache."] ([accesses], [misses], [victim_hits]); they keep
    updating in place on every {!access}. *)

val reset_stats : t -> unit
(** Zero the statistics counters; cache contents are untouched. *)

val flush : t -> unit
(** Invalidate all contents {e and} reset statistics: [flush] =
    cold cache + {!reset_stats}. *)
