module Bits = Stc_util.Bits
module Counter = Stc_obs.Metric.Counter

(* Replacement policies. [Lru] is the paper's machine and keeps the exact
   historical code path; the RRIP family (Srrip, and Trrip seeded with a
   static per-line temperature) is the modern-replacement extension.

   RRIP state is a 2-bit re-reference prediction value (RRPV) per way:
   0 = re-reference expected soonest, 3 = longest. A hit resets the
   way's RRPV to 0; a miss victimizes a way at RRPV 3 (aging every way
   uniformly until one reaches 3). Ties among RRPV-3 ways are broken by
   installation age — the oldest-installed way loses — so the stamps
   array doubles as install order under RRIP (hits do not touch it),
   and the list-based oracle in Stc_check can reproduce the choice
   without mirroring way indices. *)
type policy = Lru | Srrip | Trrip of int array

let rrpv_max = 3

type t = {
  assoc : int;
  line_bits : int;
  n_sets : int;
  set_mask : int;
  size : int;
  policy : policy;
  tags : int array; (* set * assoc + way -> line number, -1 invalid *)
  stamps : int array; (* LRU recency / RRIP install stamps, parallel *)
  rrpv : int array; (* RRIP re-reference values, parallel to tags *)
  pref : bool array; (* prefetched-and-not-yet-demanded marks *)
  v_tags : int array; (* victim buffer, -1 invalid *)
  v_stamps : int array;
  mutable clock : int;
  accesses : Counter.t;
  misses : Counter.t;
  victim_hits : Counter.t;
  evictions : Counter.t;
}

type stats = { s_accesses : int; s_misses : int; s_victim_hits : int }

let create ?(assoc = 1) ?(line_bytes = 32) ?(victim_lines = 0) ?(policy = Lru)
    ~size_bytes () =
  if assoc < 1 then invalid_arg "Icache.create: assoc must be >= 1";
  if not (Bits.is_pow2 line_bytes) then
    invalid_arg "Icache.create: line_bytes must be a power of two";
  if size_bytes <= 0 || size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Icache.create: size must be a multiple of assoc * line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if not (Bits.is_pow2 n_sets) then
    invalid_arg "Icache.create: set count must be a power of two";
  (match policy with
  | Trrip temps ->
    Array.iter
      (fun t ->
        if t < 0 then invalid_arg "Icache.create: negative temperature")
      temps
  | Lru | Srrip -> ());
  {
    assoc;
    line_bits = Bits.log2_exact line_bytes;
    n_sets;
    set_mask = n_sets - 1;
    size = size_bytes;
    policy;
    tags = Array.make (n_sets * assoc) (-1);
    stamps = Array.make (n_sets * assoc) 0;
    rrpv = Array.make (n_sets * assoc) 0;
    pref = Array.make (n_sets * assoc) false;
    v_tags = Array.make victim_lines (-1);
    v_stamps = Array.make victim_lines 0;
    clock = 0;
    accesses = Counter.make "accesses";
    misses = Counter.make "misses";
    victim_hits = Counter.make "victim_hits";
    evictions = Counter.make "evictions";
  }

let line_bytes t = 1 lsl t.line_bits

let size_bytes t = t.size

let policy t = t.policy

let accesses t = Counter.value t.accesses

let misses t = Counter.value t.misses

let victim_hits t = Counter.value t.victim_hits

let evictions t = Counter.value t.evictions

let stats t =
  {
    s_accesses = Counter.value t.accesses;
    s_misses = Counter.value t.misses;
    s_victim_hits = Counter.value t.victim_hits;
  }

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg t.accesses;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg t.misses;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg
    t.victim_hits;
  (* only non-LRU policies track evictions, so registering the counter
     conditionally keeps the export of every pre-existing configuration
     byte-identical *)
  match t.policy with
  | Lru -> ()
  | Srrip | Trrip _ ->
    Stc_obs.Registry.attach_counter
      ~prefix:(prefix ^ "icache.replacement.")
      reg t.evictions

let reset_stats t =
  Counter.reset t.accesses;
  Counter.reset t.misses;
  Counter.reset t.victim_hits;
  Counter.reset t.evictions

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.rrpv 0 (Array.length t.rrpv) 0;
  Array.fill t.pref 0 (Array.length t.pref) false;
  Array.fill t.v_tags 0 (Array.length t.v_tags) (-1);
  t.clock <- 0;
  reset_stats t

(* Probe the victim buffer for [line]; on hit, replace that slot with
   [evicted] and return true. On miss, insert [evicted] over the LRU slot
   and return false. *)
let victim_swap t line evicted =
  let n = Array.length t.v_tags in
  if n = 0 then false
  else begin
    let found = ref (-1) in
    for i = 0 to n - 1 do
      if t.v_tags.(i) = line then found := i
    done;
    if !found >= 0 then begin
      t.v_tags.(!found) <- evicted;
      t.v_stamps.(!found) <- t.clock;
      true
    end
    else begin
      let lru = ref 0 in
      for i = 1 to n - 1 do
        if
          t.v_tags.(i) = -1
          || (t.v_tags.(!lru) <> -1 && t.v_stamps.(i) < t.v_stamps.(!lru))
        then lru := i
      done;
      if evicted <> -1 then begin
        t.v_tags.(!lru) <- evicted;
        t.v_stamps.(!lru) <- t.clock
      end;
      false
    end
  end

type outcome = Hit | Victim_hit | Miss

(* Victim-way selection for a full (or partially invalid) set. LRU keeps
   the historical single loop (invalid slot, else minimum stamp); RRIP
   first reuses an invalid way, else ages every way until the maximum
   RRPV reaches 3 and evicts the oldest-installed way standing there. *)
let choose_way t base =
  match t.policy with
  | Lru ->
    let way = ref 0 in
    for w = 1 to t.assoc - 1 do
      if
        t.tags.(base + w) = -1
        || (t.tags.(base + !way) <> -1
            && t.stamps.(base + w) < t.stamps.(base + !way))
      then way := w
    done;
    !way
  | Srrip | Trrip _ ->
    let way = ref (-1) in
    for w = 0 to t.assoc - 1 do
      if t.tags.(base + w) = -1 then way := w
    done;
    if !way >= 0 then !way
    else begin
      let m = ref 0 in
      for w = 0 to t.assoc - 1 do
        if t.rrpv.(base + w) > !m then m := t.rrpv.(base + w)
      done;
      let boost = rrpv_max - !m in
      if boost > 0 then
        for w = 0 to t.assoc - 1 do
          t.rrpv.(base + w) <- t.rrpv.(base + w) + boost
        done;
      for w = 0 to t.assoc - 1 do
        if
          t.rrpv.(base + w) = rrpv_max
          && (!way < 0 || t.stamps.(base + w) < t.stamps.(base + !way))
        then way := w
      done;
      !way
    end

(* RRPV of a freshly demand-installed line: SRRIP predicts a long
   re-reference interval for everything; TRRIP trusts the static
   temperature hint (0 hot -> immediate, 1 warm -> long, colder ->
   distant, as does any line past the end of the temperature table). *)
let insert_rrpv t line =
  match t.policy with
  | Lru -> 0
  | Srrip -> 2
  | Trrip temps ->
    let temp = if line < Array.length temps then temps.(line) else 2 in
    if temp <= 0 then 0 else if temp = 1 then 2 else rrpv_max

let install t base way line ~rrpv =
  let evicted = t.tags.(base + way) in
  (match t.policy with
  | Lru -> ()
  | Srrip | Trrip _ ->
    if evicted <> -1 then Counter.incr t.evictions);
  t.tags.(base + way) <- line;
  t.stamps.(base + way) <- t.clock;
  t.rrpv.(base + way) <- rrpv;
  t.pref.(base + way) <- false;
  evicted

let access_uncounted t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let hit_way = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    (match t.policy with
    | Lru -> t.stamps.(base + !hit_way) <- t.clock
    | Srrip | Trrip _ -> t.rrpv.(base + !hit_way) <- 0);
    t.pref.(base + !hit_way) <- false;
    Hit
  end
  else begin
    let way = choose_way t base in
    let evicted = install t base way line ~rrpv:(insert_rrpv t line) in
    if victim_swap t line evicted then Victim_hit else Miss
  end

(* [access_uncounted] plus prefetch-mark accounting: a hit that consumes
   the way's mark reports [true] (the prefetch was useful). The FDIP
   demand path is the only caller; the mark bookkeeping must mirror
   [access_uncounted] exactly so that a prefetch-free run through either
   entry point leaves identical state. *)
let access_demand t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let hit_way = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    (match t.policy with
    | Lru -> t.stamps.(base + !hit_way) <- t.clock
    | Srrip | Trrip _ -> t.rrpv.(base + !hit_way) <- 0);
    let was_pref = t.pref.(base + !hit_way) in
    t.pref.(base + !hit_way) <- false;
    (Hit, was_pref)
  end
  else begin
    let way = choose_way t base in
    let evicted = install t base way line ~rrpv:(insert_rrpv t line) in
    ((if victim_swap t line evicted then Victim_hit else Miss), false)
  end

let mem t addr =
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let found = ref false in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then found := true
  done;
  !found

(* Install a prefetched line: a no-op if already resident, else a normal
   replacement-policy install marked as prefetched, with a distant RRIP
   insertion (3 — a wrong prefetch should be the first line out). The
   evicted line passes through the victim buffer exactly as on the
   demand path. Prefetch fills never touch the access statistics. *)
let fill_prefetch t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let resident = ref false in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then resident := true
  done;
  if not !resident then begin
    let way = choose_way t base in
    let rrpv = match t.policy with Lru -> 0 | Srrip | Trrip _ -> rrpv_max in
    let evicted = install t base way line ~rrpv in
    t.pref.(base + way) <- true;
    ignore (victim_swap t line evicted)
  end

(* A direct-mapped LRU cache without a victim buffer has one way per set
   and no replacement, victim or eviction-counting decision to make:
   neither [stamps] nor [clock] can influence any future outcome, so a
   probe that skips both is observationally identical to
   [access_uncounted] — same hit/miss sequence, same final tag contents,
   same statistics. The fused replay bank ({!Stc_fetch.Engine.Bank})
   probes many caches per fetch cycle and uses this to keep the common
   Table 3 configuration cheap. Non-LRU policies are excluded: they
   count evictions, which this fast path does not. *)
let plain_direct t =
  t.assoc = 1
  && Array.length t.v_tags = 0
  && match t.policy with Lru -> true | Srrip | Trrip _ -> false

let probe_direct t addr =
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  if Array.unsafe_get t.tags set = line then true
  else begin
    Array.unsafe_set t.tags set line;
    false
  end

let add_stats t ~accesses ~misses ~victim_hits =
  Counter.add t.accesses accesses;
  Counter.add t.misses misses;
  Counter.add t.victim_hits victim_hits

let access t addr =
  Counter.incr t.accesses;
  match access_uncounted t addr with
  | Hit -> true
  | Victim_hit ->
    Counter.incr t.victim_hits;
    true
  | Miss ->
    Counter.incr t.misses;
    false
