module Bits = Stc_util.Bits
module Counter = Stc_obs.Metric.Counter

type t = {
  assoc : int;
  line_bits : int;
  n_sets : int;
  set_mask : int;
  size : int;
  tags : int array; (* set * assoc + way -> line number, -1 invalid *)
  stamps : int array; (* LRU timestamps, parallel to tags *)
  v_tags : int array; (* victim buffer, -1 invalid *)
  v_stamps : int array;
  mutable clock : int;
  accesses : Counter.t;
  misses : Counter.t;
  victim_hits : Counter.t;
}

type stats = { s_accesses : int; s_misses : int; s_victim_hits : int }

let create ?(assoc = 1) ?(line_bytes = 32) ?(victim_lines = 0) ~size_bytes () =
  if assoc < 1 then invalid_arg "Icache.create: assoc must be >= 1";
  if not (Bits.is_pow2 line_bytes) then
    invalid_arg "Icache.create: line_bytes must be a power of two";
  if size_bytes <= 0 || size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Icache.create: size must be a multiple of assoc * line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if not (Bits.is_pow2 n_sets) then
    invalid_arg "Icache.create: set count must be a power of two";
  {
    assoc;
    line_bits = Bits.log2_exact line_bytes;
    n_sets;
    set_mask = n_sets - 1;
    size = size_bytes;
    tags = Array.make (n_sets * assoc) (-1);
    stamps = Array.make (n_sets * assoc) 0;
    v_tags = Array.make victim_lines (-1);
    v_stamps = Array.make victim_lines 0;
    clock = 0;
    accesses = Counter.make "accesses";
    misses = Counter.make "misses";
    victim_hits = Counter.make "victim_hits";
  }

let line_bytes t = 1 lsl t.line_bits

let size_bytes t = t.size

let accesses t = Counter.value t.accesses

let misses t = Counter.value t.misses

let victim_hits t = Counter.value t.victim_hits

let stats t =
  {
    s_accesses = Counter.value t.accesses;
    s_misses = Counter.value t.misses;
    s_victim_hits = Counter.value t.victim_hits;
  }

let attach_metrics t reg ~prefix =
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg t.accesses;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg t.misses;
  Stc_obs.Registry.attach_counter ~prefix:(prefix ^ "icache.") reg t.victim_hits

let reset_stats t =
  Counter.reset t.accesses;
  Counter.reset t.misses;
  Counter.reset t.victim_hits

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.v_tags 0 (Array.length t.v_tags) (-1);
  t.clock <- 0;
  reset_stats t

(* Probe the victim buffer for [line]; on hit, replace that slot with
   [evicted] and return true. On miss, insert [evicted] over the LRU slot
   and return false. *)
let victim_swap t line evicted =
  let n = Array.length t.v_tags in
  if n = 0 then false
  else begin
    let found = ref (-1) in
    for i = 0 to n - 1 do
      if t.v_tags.(i) = line then found := i
    done;
    if !found >= 0 then begin
      t.v_tags.(!found) <- evicted;
      t.v_stamps.(!found) <- t.clock;
      true
    end
    else begin
      let lru = ref 0 in
      for i = 1 to n - 1 do
        if
          t.v_tags.(i) = -1
          || (t.v_tags.(!lru) <> -1 && t.v_stamps.(i) < t.v_stamps.(!lru))
        then lru := i
      done;
      if evicted <> -1 then begin
        t.v_tags.(!lru) <- evicted;
        t.v_stamps.(!lru) <- t.clock
      end;
      false
    end
  end

type outcome = Hit | Victim_hit | Miss

let access_uncounted t addr =
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let base = set * t.assoc in
  let hit_way = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.stamps.(base + !hit_way) <- t.clock;
    Hit
  end
  else begin
    (* choose the victim way: an invalid slot, else LRU *)
    let way = ref 0 in
    for w = 1 to t.assoc - 1 do
      if
        t.tags.(base + w) = -1
        || (t.tags.(base + !way) <> -1
            && t.stamps.(base + w) < t.stamps.(base + !way))
      then way := w
    done;
    let evicted = t.tags.(base + !way) in
    t.tags.(base + !way) <- line;
    t.stamps.(base + !way) <- t.clock;
    if victim_swap t line evicted then Victim_hit else Miss
  end

(* A direct-mapped cache without a victim buffer has one way per set and
   no replacement or victim decision to make: neither [stamps] nor
   [clock] can influence any future outcome, so a probe that skips both
   is observationally identical to [access_uncounted] — same hit/miss
   sequence, same final tag contents, same statistics. The fused replay
   bank ({!Stc_fetch.Engine.Bank}) probes many caches per fetch cycle
   and uses this to keep the common Table 3 configuration cheap. *)
let plain_direct t = t.assoc = 1 && Array.length t.v_tags = 0

let probe_direct t addr =
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  if Array.unsafe_get t.tags set = line then true
  else begin
    Array.unsafe_set t.tags set line;
    false
  end

let add_stats t ~accesses ~misses ~victim_hits =
  Counter.add t.accesses accesses;
  Counter.add t.misses misses;
  Counter.add t.victim_hits victim_hits

let access t addr =
  Counter.incr t.accesses;
  match access_uncounted t addr with
  | Hit -> true
  | Victim_hit ->
    Counter.incr t.victim_hits;
    true
  | Miss ->
    Counter.incr t.misses;
    false
