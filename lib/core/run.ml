include Stc_obs.Run
