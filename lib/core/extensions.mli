(** Experiments beyond the paper's tables, following its Section 8 future
    work: function inlining, OLTP workloads, automatic threshold
    selection, and branch-prediction sensitivity (the paper isolates
    I-fetch with perfect prediction; here the assumption is relaxed).

    Every entry point takes [?ctx] ({!Run.ctx}); with [ctx.metrics] it
    runs inside an [ext-*] timing span and the fetch engine accumulates
    its [engine.*] counters. These studies are serial — [ctx.jobs] is not
    read. *)

(** {2 Function inlining (code expansion)} *)

type inline_row = {
  i_variant : string;  (** "base" or "inlined". *)
  i_layout : string;
  i_miss : float;
  i_ipc : float;
  i_ibt : float;  (** Instructions between taken branches. *)
}

type inline_report = {
  inl_sites : int;
  inl_growth_pct : float;
  inl_rows : inline_row list;
}

val inlining :
  ?ctx:Run.ctx ->
  ?config:Stc_layout.Inline.config ->
  ?cache_kb:int ->
  ?cfa_kb:int ->
  Pipeline.t ->
  inline_report

val print_inlining : inline_report -> unit

(** {2 OLTP workload} *)

type oltp_row = {
  o_layout : string;
  o_miss : float;
  o_ipc : float;
  o_ibt : float;
}

type oltp_report = {
  oltp_trace_blocks : int;
  oltp_rows : oltp_row list;
}

val oltp :
  ?ctx:Run.ctx ->
  ?train_txns:int ->
  ?test_txns:int ->
  ?cache_kb:int ->
  Pipeline.t ->
  oltp_report
(** Train the layouts on one OLTP transaction mix and evaluate on a
    different one (both on the B-tree database). *)

val print_oltp : oltp_report -> unit

(** {2 Branch prediction sensitivity} *)

type prediction_row = {
  p_layout : string;
  p_predictor : string;
  p_accuracy : float;
  p_ipc : float;
}

val prediction :
  ?ctx:Run.ctx -> ?cache_kb:int -> ?cfa_kb:int -> Pipeline.t -> prediction_row list

val print_prediction : prediction_row list -> unit

(** {2 Per-query breakdown} *)

type query_row = {
  q_name : string;  (** e.g. "btree/Q6". *)
  q_blocks : int;
  q_miss_orig : float;
  q_miss_ops : float;
}

val per_query : ?ctx:Run.ctx -> ?cache_kb:int -> Pipeline.t -> query_row list
(** I-cache miss rates per Test query (using the recorder marks), under
    the original and the ops layouts. Caches are cold at each query start
    (pessimistic, but comparable across queries). *)

val print_per_query : query_row list -> unit

(** {2 Fetch unit width (SEQ.1 / SEQ.2 / SEQ.3)} *)

type seqn_row = {
  s_layout : string;
  s_max_branches : int;
  s_ipc : float;
}

val fetch_units : ?ctx:Run.ctx -> ?cache_kb:int -> Pipeline.t -> seqn_row list
(** The Rotenberg et al. sequential-engine family: how many branches a
    fetch block may contain. The paper evaluates SEQ.3; this quantifies
    what the choice is worth on the database workload. *)

val print_fetch_units : seqn_row list -> unit

(** {2 Associativity interaction} *)

type assoc_row = {
  a_layout : string;
  a_assoc : int;
  a_miss : float;
  a_ipc : float;
}

val associativity : ?ctx:Run.ctx -> ?cache_kb:int -> Pipeline.t -> assoc_row list
(** The paper only pits the 2-way cache against software layouts on the
    {e original} code; this measures both dimensions together — how much
    of the layout benefit survives once the cache is associative. *)

val print_associativity : assoc_row list -> unit

(** {2 Automatic threshold selection} *)

val print_tuning : ?ctx:Run.ctx -> ?cache_kb:int -> Pipeline.t -> unit
(** Run {!Tuner.tune} on the Training trace, then evaluate the chosen
    configuration (and the paper's hand-picked defaults) on the Test
    trace. *)
