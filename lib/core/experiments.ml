module P = Stc_profile
module L = Stc_layout
module F = Stc_fetch
module Tbl = Stc_util.Tbl

(* ---------- characterization ---------- *)

let table1 (pl : Pipeline.t) = P.Footprint.compute pl.Pipeline.profile

let print_table1 (fp : P.Footprint.t) =
  let t =
    Tbl.create
      ~headers:
        [ ("", Tbl.Left); ("Total", Tbl.Right); ("Executed", Tbl.Right); ("Percent", Tbl.Right) ]
  in
  let open P.Footprint in
  Tbl.add_row t
    [
      "Procedures";
      string_of_int fp.procs_total;
      string_of_int fp.procs_executed;
      Tbl.fpct (pct fp.procs_executed fp.procs_total) ^ "%";
    ];
  Tbl.add_row t
    [
      "Basic blocks";
      string_of_int fp.blocks_total;
      string_of_int fp.blocks_executed;
      Tbl.fpct (pct fp.blocks_executed fp.blocks_total) ^ "%";
    ];
  Tbl.add_row t
    [
      "Instructions";
      string_of_int fp.instrs_total;
      string_of_int fp.instrs_executed;
      Tbl.fpct (pct fp.instrs_executed fp.instrs_total) ^ "%";
    ];
  print_endline "Table 1. Static program elements and the fraction used.";
  Tbl.print t

let figure2 ?(max_blocks = 3000) ?(step = 250) (pl : Pipeline.t) =
  let pop = P.Popularity.compute pl.Pipeline.profile in
  P.Popularity.curve pop ~max_blocks ~step

let print_figure2 (pl : Pipeline.t) =
  let pop = P.Popularity.compute pl.Pipeline.profile in
  let t =
    Tbl.create ~headers:[ ("Blocks", Tbl.Right); ("Cumulative references", Tbl.Right) ]
  in
  List.iter
    (fun (n, share) ->
      Tbl.add_row t [ string_of_int n; Tbl.fpct (100.0 *. share) ^ "%" ])
    (P.Popularity.curve pop ~max_blocks:3000 ~step:250);
  print_endline
    "Figure 2. Percentage of dynamic basic block references captured by";
  print_endline "the N most popular static blocks.";
  Tbl.print t;
  Printf.printf "90%% of references in %d blocks; 99%% in %d blocks (of %d executed)\n"
    (P.Popularity.blocks_for_share pop 0.90)
    (P.Popularity.blocks_for_share pop 0.99)
    (P.Popularity.executed_blocks pop)

type reuse_stats = {
  tracked_share : float;
  below_100 : float;
  below_250 : float;
  samples : int;
}

let reuse ?(share = 0.75) (pl : Pipeline.t) =
  let member = P.Reuse.popular_set pl.Pipeline.profile ~share in
  let r = P.Reuse.create pl.Pipeline.program ~member in
  Pipeline.replay_training pl (P.Reuse.sink r);
  {
    tracked_share = share;
    below_100 = P.Reuse.mass_below r 100;
    below_250 = P.Reuse.mass_below r 250;
    samples = P.Reuse.samples r;
  }

let print_reuse r =
  Printf.printf
    "Temporal reuse (Section 4.1): of the blocks concentrating %.0f%% of the\n\
     references, re-execution happens within 100 instructions with\n\
     probability %.0f%%, and within 250 instructions with probability %.0f%%\n\
     (%d re-invocation intervals).\n"
    (100.0 *. r.tracked_share)
    (100.0 *. r.below_100)
    (100.0 *. r.below_250)
    r.samples

let table2 (pl : Pipeline.t) = P.Determinism.compute pl.Pipeline.profile

let print_table2 (d : P.Determinism.t) =
  let t =
    Tbl.create
      ~headers:
        [
          ("BB Type", Tbl.Left);
          ("Static", Tbl.Right);
          ("Dynamic", Tbl.Right);
          ("Predictable", Tbl.Right);
        ]
  in
  List.iter
    (fun (r : P.Determinism.row) ->
      Tbl.add_row t
        [
          Stc_cfg.Terminator.kind_name r.P.Determinism.kind;
          Tbl.fpct r.static_pct ^ "%";
          Tbl.fpct r.dynamic_pct ^ "%";
          Tbl.fpct r.predictable_pct ^ "%";
        ])
    d.P.Determinism.rows;
  print_endline "Table 2. Executed basic blocks by type, and fixed behaviour.";
  Tbl.print t;
  Printf.printf "Overall, %.1f%% of the basic block transitions are predictable.\n"
    d.P.Determinism.overall_predictable_pct

(* ---------- simulation ---------- *)

type sim_config = {
  exec_threshold : int;
  branch_threshold : float;
  line_bytes : int;
  miss_penalty : int;
  tc_entries : int;
  grid : (int * int list) list;
}

let default_sim_config =
  {
    exec_threshold = 50;
    branch_threshold = 0.3;
    line_bytes = 32;
    miss_penalty = 5;
    tc_entries = 256;
    grid = [ (8, [ 2; 4; 6 ]); (16, [ 4; 8; 12 ]); (32, [ 4; 8; 16; 24 ]); (64, [ 8; 16; 24 ]) ];
  }

type variant = Direct | Two_way | Victim | Ideal | Trace_cache | Tc_ideal

let variant_name = function
  | Direct -> "direct"
  | Two_way -> "2-way"
  | Victim -> "victim"
  | Ideal -> "ideal"
  | Trace_cache -> "trace-cache"
  | Tc_ideal -> "tc-ideal"

type row = {
  layout : string;
  cache_kb : int;
  cfa_kb : int option;
  variant : variant;
  miss_pct : float;
  bandwidth : float;
  instrs_between_taken : float;
  tc_hit_pct : float;
  assoc : int;
  policy : string;
  prefetch : bool;
  evictions : int;
  pf_issued : int;
  pf_useful : int;
  pf_late : int;
}

let row_to_string r =
  Printf.sprintf "%s cache=%d cfa=%s %s miss=%.6f bw=%.6f ibt=%.6f tc=%.6f"
    r.layout r.cache_kb
    (match r.cfa_kb with Some k -> string_of_int k | None -> "-")
    (variant_name r.variant) r.miss_pct r.bandwidth r.instrs_between_taken
    r.tc_hit_pct

let ext_row_to_string r =
  Printf.sprintf
    "%s cache=%d cfa=%s assoc=%d policy=%s prefetch=%d miss=%.6f bw=%.6f \
     evict=%d pf_issued=%d pf_useful=%d pf_late=%d"
    r.layout r.cache_kb
    (match r.cfa_kb with Some k -> string_of_int k | None -> "-")
    r.assoc r.policy
    (if r.prefetch then 1 else 0)
    r.miss_pct r.bandwidth r.evictions r.pf_issued r.pf_useful r.pf_late

let policy_name = function
  | Stc_cachesim.Icache.Lru -> "lru"
  | Stc_cachesim.Icache.Srrip -> "srrip"
  | Stc_cachesim.Icache.Trrip _ -> "trrip"

(* The cell's i-cache is fresh, so the engine result's counters equal the
   cache's own statistics snapshot; deriving the event fields from the
   result lets a store hit (which never builds the cache) emit the exact
   record a simulation would have. *)
let emit_cell reg ~table (row : row) (r : F.Engine.result) ~has_icache =
  let open Stc_obs.Json in
  let icache_fields =
    if not has_icache then []
    else
      [
        ("icache_accesses", Int r.F.Engine.icache_accesses);
        ("icache_misses", Int r.F.Engine.icache_misses);
        ("icache_victim_hits", Int r.F.Engine.icache_victim_hits);
      ]
  in
  (* present only on non-default replacement/prefetch cells, so every
     pre-existing cell's event record stays byte-identical *)
  let extended_fields =
    if (not row.prefetch) && String.equal row.policy "lru" then []
    else
      [
        ("assoc", Int row.assoc);
        ("policy", Str row.policy);
        ("prefetch", Bool row.prefetch);
        ("evictions", Int row.evictions);
        ("pf_issued", Int row.pf_issued);
        ("pf_useful", Int row.pf_useful);
        ("pf_late", Int row.pf_late);
      ]
  in
  Stc_obs.Registry.event reg ~kind:(table ^ ".cell")
    ([
       ("layout", Str row.layout);
       ("variant", Str (variant_name row.variant));
       ("cache_kb", Int row.cache_kb);
       ("cfa_kb", (match row.cfa_kb with Some k -> Int k | None -> Null));
       ("instrs", Int r.F.Engine.instrs);
       ("cycles", Int r.F.Engine.cycles);
       ("miss_pct", Float row.miss_pct);
       ("bandwidth", Float row.bandwidth);
       ("instrs_between_taken", Float row.instrs_between_taken);
       ("tc_lookups", Int r.F.Engine.tc_lookups);
       ("tc_hits", Int r.F.Engine.tc_hits);
     ]
    @ icache_fields @ extended_fields)

(* A planned simulation: everything one Table 3/4 (or ablation) cell needs,
   closed over a layout built in the serial prefix.  Cells share the
   pipeline's program/profile/trace read-only; the i-cache and trace cache
   are created per cell, so a cell can run on any domain. *)
type cell = {
  c_table : string;
  c_config : sim_config;
  c_layout : L.Layout.t;
  c_variant : variant;
  c_cache_kb : int;
  c_cfa_kb : int option;
  c_streamed : bool;
      (* replay through Engine.run_stream over bounded segments instead
         of a whole compiled image; results are identical by
         construction, so streamed cells share store keys with
         materialized ones *)
  c_assoc : int;
      (* associativity of Direct/Trace_cache variants (the extended grid
         runs them 4-way); 1 = the paper's machine *)
  c_policy : Stc_cachesim.Icache.policy;
  c_fdip : F.Fdip.config option;
}

(* Compiled packed trace views, shared per layout.  Many cells replay the
   same layout (every cache size runs Direct/2-way/Victim/Trace-cache on
   [orig], for instance); compiling the multi-million-block trace once per
   {e layout} instead of once per {e cell} removes the dominant per-cell
   setup cost.  The cache is keyed by layout identity, refcounted with the
   number of cells planned against each layout so a compiled view is
   dropped right after its last cell (peak memory stays a handful of
   layouts, not the whole grid), and mutex-protected so pool domains can
   share it; the compiled arrays themselves are immutable and read-only
   across domains.

   Only the unfused ([~fused:false], i.e. --no-fuse) reference path needs
   this refcounted plan: the fused path re-plans cells into per-layout
   groups, so each group compiles its layout exactly once by
   construction and drops it when the group's sweep returns. *)
module Pcache = struct
  type entry = { mutable packed : F.Packed.t option; mutable remaining : int }

  type t = {
    pl : Pipeline.t;
    m : Mutex.t;
    mutable entries : (L.Layout.t * entry) list; (* assq: layout identity *)
  }

  let of_cells pl cells =
    let t = { pl; m = Mutex.create (); entries = [] } in
    Array.iter
      (fun c ->
        match List.assq_opt c.c_layout t.entries with
        | Some e -> e.remaining <- e.remaining + 1
        | None ->
          t.entries <-
            (c.c_layout, { packed = None; remaining = 1 }) :: t.entries)
      cells;
    t

  let acquire t layout =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) @@ fun () ->
    match List.assq_opt layout t.entries with
    | None ->
      (* not planned through [of_cells]; compile without caching *)
      F.Packed.compile t.pl.Pipeline.program layout (Pipeline.test_source t.pl)
    | Some e -> (
      match e.packed with
      | Some p -> p
      | None ->
        let p =
          F.Packed.compile t.pl.Pipeline.program layout
            (Pipeline.test_source t.pl)
        in
        e.packed <- Some p;
        p)

  let release t layout =
    Mutex.lock t.m;
    (match List.assq_opt layout t.entries with
    | Some e ->
      e.remaining <- e.remaining - 1;
      if e.remaining <= 0 then e.packed <- None
    | None -> ());
    Mutex.unlock t.m
end

(* The cell's engine config: the grid-wide parameters plus the cell's
   own FDIP block (a [None] block fingerprints exactly like the pre-FDIP
   config, keeping every pre-existing store key stable). *)
let cell_engine_config cell =
  let c = cell.c_config in
  F.Engine.Config.make ~line_bytes:c.line_bytes ~miss_penalty:c.miss_penalty
    ?fdip:cell.c_fdip ()

(* What determines a cell's engine result beyond the (program, trace,
   layout, engine-config) fingerprints: the cache geometry implied by the
   variant and the trace-cache size — plus, only when non-default so
   historical keys stay unchanged, the associativity and replacement
   policy of the extended grid. *)
let cell_key ~prog_fp ~trace_fp cell =
  let c = cell.c_config in
  let extended_parts =
    (if cell.c_assoc = 1 then []
     else [ "assoc=" ^ string_of_int cell.c_assoc ])
    @
    match cell.c_policy with
    | Stc_cachesim.Icache.Lru -> []
    | Stc_cachesim.Icache.Srrip -> [ "policy=srrip" ]
    | Stc_cachesim.Icache.Trrip temps ->
      [ "policy=trrip"; Stc_store.Fp.int_array temps ]
  in
  Stc_store.Key.of_parts
    ([
       "experiments-cell";
       prog_fp;
       trace_fp;
       Stc_store.Fp.layout cell.c_layout;
       Stc_store.Fp.engine_config (cell_engine_config cell);
       variant_name cell.c_variant;
       string_of_int cell.c_cache_kb;
       string_of_int c.tc_entries;
     ]
    @ extended_parts)

(* One timeline slice per grid cell, named so trace_report's "slowest
   cells" table reads without cross-referencing: table, layout, cache and
   CFA sizes, variant. *)
let cell_label cell =
  Printf.sprintf "cell:%s %s %dk/%s %s" cell.c_table
    cell.c_layout.L.Layout.name cell.c_cache_kb
    (match cell.c_cfa_kb with Some k -> string_of_int k ^ "k" | None -> "-")
    (variant_name cell.c_variant)

(* The cache geometry a cell's variant implies.  Fresh instances per
   call — the engine owns their state for the replay — so a cell (or a
   fused bank slot) can run on any domain. *)
let cell_caches cell =
  let c = cell.c_config in
  let cache_kb = cell.c_cache_kb in
  let icache =
    match cell.c_variant with
    | Ideal | Tc_ideal -> None
    | Direct | Trace_cache ->
      (* the extended grid varies associativity and policy on these two
         variants; the defaults reproduce the paper's machine exactly *)
      Some
        (Stc_cachesim.Icache.create ~assoc:cell.c_assoc ~policy:cell.c_policy
           ~size_bytes:(cache_kb * 1024) ())
    | Two_way ->
      Some
        (Stc_cachesim.Icache.create ~assoc:2 ~size_bytes:(cache_kb * 1024) ())
    | Victim ->
      Some
        (Stc_cachesim.Icache.create ~victim_lines:16
           ~size_bytes:(cache_kb * 1024) ())
  in
  let trace_cache =
    match cell.c_variant with
    | Trace_cache | Tc_ideal ->
      Some (F.Tracecache.create ~entries:c.tc_entries ())
    | Direct | Two_way | Victim | Ideal -> None
  in
  (icache, trace_cache)

(* Derive a cell's row from its engine result and emit the per-cell
   metrics event — the common tail of the unfused and fused paths. *)
let finish_cell ~metrics cell r =
  let row =
    {
      layout = cell.c_layout.L.Layout.name;
      cache_kb =
        (match cell.c_variant with
        | Ideal | Tc_ideal -> 0
        | _ -> cell.c_cache_kb);
      cfa_kb = cell.c_cfa_kb;
      variant = cell.c_variant;
      miss_pct = F.Engine.miss_rate_pct r;
      bandwidth = F.Engine.bandwidth r;
      instrs_between_taken = r.F.Engine.instrs_between_taken;
      tc_hit_pct =
        (if r.F.Engine.tc_lookups = 0 then 0.0
         else
           100.0 *. float_of_int r.F.Engine.tc_hits
           /. float_of_int r.F.Engine.tc_lookups);
      assoc =
        (match cell.c_variant with Two_way -> 2 | _ -> cell.c_assoc);
      policy = policy_name cell.c_policy;
      prefetch = Option.is_some cell.c_fdip;
      evictions = r.F.Engine.icache_evictions;
      pf_issued = r.F.Engine.prefetch_issued;
      pf_useful = r.F.Engine.prefetch_useful;
      pf_late = r.F.Engine.prefetch_late;
    }
  in
  (match metrics with
  | Some reg ->
    emit_cell reg ~table:cell.c_table row r
      ~has_icache:
        (match cell.c_variant with Ideal | Tc_ideal -> false | _ -> true)
  | None -> ());
  row

let exec_cell_inner ~metrics ~trace ~pcache ~store cell =
  let config = cell_engine_config cell in
  let simulate () =
    let icache, trace_cache = cell_caches cell in
    let ctx =
      let c0 = Run.default in
      let c0 =
        match metrics with Some reg -> Run.with_metrics reg c0 | None -> c0
      in
      match trace with Some tr -> Run.with_trace tr c0 | None -> c0
    in
    if cell.c_streamed then begin
      (* per-cell tables are O(static blocks) — noise next to the replay;
         the trace itself flows through bounded segments, never a whole
         image *)
      let pl = pcache.Pcache.pl in
      let tables = F.Packed.tables pl.Pipeline.program cell.c_layout in
      let stream = F.Stream.create tables (Pipeline.test_source pl) in
      F.Engine.run_stream ~ctx ~config ?icache ?trace_cache stream
    end
    else
      let packed = Pcache.acquire pcache cell.c_layout in
      F.Engine.run_packed ~ctx ~config ?icache ?trace_cache packed
  in
  let r =
    match store with
    | None -> simulate ()
    | Some (dir, prog_fp, trace_fp) -> (
      (* The handle is opened against this cell's registry (a per-cell
         shard under a pool), so store counters merge deterministically
         like every other metric. *)
      let st = Stc_store.open_ ?metrics ?trace dir in
      let key = cell_key ~prog_fp ~trace_fp cell in
      match Stc_store.Result.load st ~key with
      | Some r ->
        (match metrics with
        | Some reg -> F.Engine.publish reg r
        | None -> ());
        r
      | None ->
        let r = simulate () in
        Stc_store.Result.save st ~key r;
        r)
  in
  (* Unconditional (even on a store hit, where [acquire] never ran):
     refcounts were planned per cell, so every cell must tick one off for
     a partially-warm grid to still drop compiled images promptly. *)
  Pcache.release pcache cell.c_layout;
  finish_cell ~metrics cell r

let exec_cell ~metrics ~trace ~pcache ~store cell =
  match trace with
  | None -> exec_cell_inner ~metrics ~trace ~pcache ~store cell
  | Some tr ->
    Stc_obs.Trace.span tr (cell_label cell) (fun () ->
        exec_cell_inner ~metrics ~trace ~pcache ~store cell)

(* ---------- fused execution ----------

   The default path: the planned cells are re-grouped by layout (physical
   identity, first-appearance order) and each group's cold cells replay
   as one {!F.Engine.Bank} sweep — the layout's packed trace is compiled
   (or, streamed, pulled through a single sliding window) once per group
   instead of once per cell.  Everything a cell observes is unchanged:
   its store key, its warm-hit short-circuit (a store-warm cell is
   dropped from the bank before the sweep), its one {!Progress} tick, and
   its registry writes — each cell flushes into its own shard, and shards
   merge into the main registry in cell {e input} order, so rows, metric
   exports and golden snapshots are byte-identical to [--no-fuse] at any
   [--jobs]. *)

type fgroup = { g_layout : L.Layout.t; g_cells : int array (* input indices *) }

let fused_groups cells =
  let acc = ref [] in
  Array.iteri
    (fun i c ->
      match List.assq_opt c.c_layout !acc with
      | Some members -> members := i :: !members
      | None -> acc := !acc @ [ (c.c_layout, ref [ i ]) ])
    cells;
  Array.of_list
    (List.map
       (fun (l, members) ->
         { g_layout = l; g_cells = Array.of_list (List.rev !members) })
       !acc)

let fgroup_label cells g =
  Printf.sprintf "fused:%s %s (%d cells)"
    cells.(g.g_cells.(0)).c_table g.g_layout.L.Layout.name
    (Array.length g.g_cells)

(* Execute one fused group.  Per member cell: its own registry shard
   (under metrics), its own store handle opened against that shard, and
   the exact unfused event order — store probe, engine publish, store
   save, cell row event — so the merged shards reproduce the unfused
   registry exactly.  Returns [(input index, row, shard)] per cell. *)
let exec_fgroup_inner ~metrics ~trace ~store (pl : Pipeline.t) cells ~tick g =
  let idxs = g.g_cells in
  let m = Array.length idxs in
  let shards =
    Array.init m (fun _ ->
        Option.map (fun _ -> Stc_obs.Registry.create ()) metrics)
  in
  let handles =
    match store with
    | None -> Array.make m None
    | Some (dir, _, _) ->
      Array.init m (fun i -> Some (Stc_store.open_ ?metrics:shards.(i) ?trace dir))
  in
  let key_of i =
    match store with
    | Some (_, prog_fp, trace_fp) ->
      cell_key ~prog_fp ~trace_fp cells.(idxs.(i))
    | None -> assert false
  in
  let results = Array.make m None in
  Array.iteri
    (fun i handle ->
      match handle with
      | None -> ()
      | Some st -> (
        match Stc_store.Result.load st ~key:(key_of i) with
        | Some r ->
          (match shards.(i) with
          | Some reg -> F.Engine.publish reg r
          | None -> ());
          results.(i) <- Some r
        | None -> ()))
    handles;
  let cold = ref [] in
  for i = m - 1 downto 0 do
    if Option.is_none results.(i) then cold := i :: !cold
  done;
  let cold = Array.of_list !cold in
  if Array.length cold > 0 then begin
    let specs =
      Array.map
        (fun i ->
          let cell = cells.(idxs.(i)) in
          let icache, trace_cache = cell_caches cell in
          F.Engine.Bank.spec
            ~config:(cell_engine_config cell)
            ?icache ?trace_cache ())
        cold
    in
    (* Trace-only context: each slot's counters go to its shard below,
       in the same per-cell order the unfused path writes them. *)
    let bctx =
      match trace with
      | Some tr -> Run.with_trace tr Run.default
      | None -> Run.default
    in
    let rs =
      if cells.(idxs.(cold.(0))).c_streamed then begin
        let tables = F.Packed.tables pl.Pipeline.program g.g_layout in
        let stream = F.Stream.create tables (Pipeline.test_source pl) in
        F.Engine.Bank.run_stream ~ctx:bctx specs stream
      end
      else
        let packed =
          F.Packed.compile pl.Pipeline.program g.g_layout
            (Pipeline.test_source pl)
        in
        F.Engine.Bank.run_packed ~ctx:bctx specs packed
    in
    Array.iteri
      (fun j i ->
        let r = rs.(j) in
        (match shards.(i) with
        | Some reg -> F.Engine.publish reg r
        | None -> ());
        (match handles.(i) with
        | Some st -> Stc_store.Result.save st ~key:(key_of i) r
        | None -> ());
        results.(i) <- Some r)
      cold
  end;
  Array.init m (fun i ->
      let cell = cells.(idxs.(i)) in
      let r = Option.get results.(i) in
      let row = finish_cell ~metrics:shards.(i) cell r in
      tick ();
      (idxs.(i), row, shards.(i)))

let exec_fgroup ~metrics ~trace ~store pl cells ~tick g =
  match trace with
  | None -> exec_fgroup_inner ~metrics ~trace ~store pl cells ~tick g
  | Some tr ->
    Stc_obs.Trace.span tr (fgroup_label cells g) (fun () ->
        exec_fgroup_inner ~metrics ~trace ~store pl cells ~tick g)

(* Run planned cells.  [~fused:true] (the default) re-plans them into
   per-layout fused groups — one {!F.Engine.Bank} sweep per group — and
   runs groups serially or self-scheduled on a domain pool; every cell
   still records into its own registry shard and shards merge in input
   order, so outputs are byte-identical to the unfused path at any job
   count.  [~fused:false] is the reference path: one engine replay per
   cell ([jobs <= 1]: the exact pre-pool code path, writing straight into
   the caller's registry; otherwise per-cell shards on the pool). *)
let exec_cells ~(ctx : Run.ctx) ~label ~fused (pl : Pipeline.t) cells =
  let cells = Array.of_list cells in
  let n = Array.length cells in
  (* Fingerprint the shared inputs once per grid, not once per cell: the
     test-trace hash walks millions of entries. *)
  let store =
    Option.map
      (fun dir ->
        ( dir,
          Stc_store.Fp.program pl.Pipeline.program,
          Stc_store.Fp.trace pl.Pipeline.test ))
      ctx.Run.store
  in
  let reporter = Run.reporter ctx ~interval:10 ~total:n ~label () in
  let step () =
    match reporter with Some p -> Stc_obs.Progress.step p | None -> ()
  in
  let trace = ctx.Run.trace in
  let rows =
    if fused then begin
      let metrics = ctx.Run.metrics in
      let groups = fused_groups cells in
      let out =
        if ctx.Run.jobs <= 1 then
          Array.map
            (exec_fgroup ~metrics ~trace ~store pl cells ~tick:step)
            groups
        else begin
          (* Same live-progress scheme as the unfused pool path, ticking
             once per cell as its group finalizes it. *)
          let completed = Atomic.make 0 in
          let drained = ref 0 in
          let caller = Domain.self () in
          let drain () =
            let d = Atomic.get completed in
            while !drained < d do
              incr drained;
              step ()
            done
          in
          let tick () =
            Atomic.incr completed;
            if Domain.self () = caller then drain ()
          in
          let out =
            Stc_par.Pool.with_pool ~domains:ctx.Run.jobs ?trace @@ fun pool ->
            Stc_par.Pool.map ~chunk:1 pool
              (exec_fgroup ~metrics ~trace ~store pl cells ~tick)
              groups
          in
          drain ();
          out
        end
      in
      (* Scatter rows back to input positions; merge shards in input
         order so exports match the unfused path byte for byte. *)
      let rows = Array.make n None in
      let shard_at = Array.make n None in
      Array.iter
        (Array.iter (fun (ix, row, shard) ->
             rows.(ix) <- Some row;
             shard_at.(ix) <- shard))
        out;
      (match metrics with
      | Some main ->
        Array.iter
          (function
            | Some s -> Stc_obs.Registry.merge ~into:main s
            | None -> ())
          shard_at
      | None -> ());
      Array.map (function Some r -> r | None -> assert false) rows
    end
    else begin
      let pcache = Pcache.of_cells pl cells in
      if ctx.Run.jobs <= 1 then
        Array.map
          (fun c ->
            let r =
              exec_cell ~metrics:ctx.Run.metrics ~trace ~pcache ~store c
            in
            step ();
            r)
          cells
      else begin
        (* Workers tick [completed] as cells finish; only the calling
           domain — which participates in the pool — drains the tick count
           into the reporter, so the (single-domain) Progress state is
           never shared and the bar advances during the run instead of
           jumping 0 -> 100% after the join.  The post-join drain accounts
           for cells finished by other workers after the caller's last
           one. *)
        let completed = Atomic.make 0 in
        let drained = ref 0 in
        let caller = Domain.self () in
        let drain () =
          let d = Atomic.get completed in
          while !drained < d do
            incr drained;
            step ()
          done
        in
        let out =
          Stc_par.Pool.with_pool ~domains:ctx.Run.jobs ?trace @@ fun pool ->
          Stc_par.Pool.map ~chunk:1 pool
            (fun c ->
              let shard =
                Option.map
                  (fun _ -> Stc_obs.Registry.create ())
                  ctx.Run.metrics
              in
              let r =
                (exec_cell ~metrics:shard ~trace ~pcache ~store c, shard)
              in
              Atomic.incr completed;
              if Domain.self () = caller then drain ();
              r)
            cells
        in
        (match ctx.Run.metrics with
        | Some main ->
          Array.iter
            (fun (_, shard) ->
              match shard with
              | Some s -> Stc_obs.Registry.merge ~into:main s
              | None -> ())
            out
        | None -> ());
        drain ();
        Array.map fst out
      end
    end
  in
  (match reporter with Some p -> Stc_obs.Progress.finish p | None -> ());
  Array.to_list rows

let stc_params (c : sim_config) ~cache_bytes ~cfa_bytes =
  L.Algo.params ~exec_threshold:c.exec_threshold
    ~branch_threshold:c.branch_threshold ~cache_bytes ~cfa_bytes ()

(* ---------- layout-algorithm selection ----------

   Algorithms come from the {!L.Algo} registry: the two fixed baselines
   ([orig], [P&H]) anchor every table, and [?layouts] selects which
   CFA-parameterized algorithms fill the (cache × CFA) grid — default:
   all of them, in registration order. *)

let algo_exn name =
  match L.Algo.find name with Ok a -> a | Error e -> invalid_arg e

let resolve_layouts names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match L.Algo.find name with
      | Error e -> Error e
      | Ok a when not a.L.Algo.uses_cfa ->
        Error
          (Printf.sprintf
             "layout algorithm %S is a fixed baseline (always in the grid); \
              valid --layouts names: %s"
             name
             (String.concat ", "
                (List.filter_map
                   (fun a ->
                     if a.L.Algo.uses_cfa then Some a.L.Algo.name else None)
                   (L.Algo.all ()))))
      | Ok a -> go (a :: acc) rest)
  in
  go [] names

let selected_algos = function
  | None -> List.filter (fun a -> a.L.Algo.uses_cfa) (L.Algo.all ())
  | Some names -> (
    match resolve_layouts names with Ok l -> l | Error e -> invalid_arg e)

(* Store-backed layout construction for the serial planning prefixes.
   Layouts are pure functions of the profile (program + training trace)
   and the (algorithm, params) fingerprint, so those make the key. *)
let layout_cache ~ctx (pl : Pipeline.t) =
  match Stc_store.of_ctx ctx with
  | None -> fun ~algo:_ ~params:_ f -> f ()
  | Some st ->
    let prog_fp = Stc_store.Fp.program pl.Pipeline.program in
    let train_fp = Stc_store.Fp.trace pl.Pipeline.training in
    fun ~algo ~params f ->
      let key =
        Stc_store.Key.of_parts
          [
            "layout";
            prog_fp;
            train_fp;
            Stc_store.Fp.layout_algo ~algo:algo.L.Algo.slug params;
          ]
      in
      Stc_store.Layout.cached (Some st) ~key f

let build_layout ~ctx ~cached_layout profile algo params =
  Run.span ctx ("layout-" ^ algo.L.Algo.slug) (fun () ->
      cached_layout ~algo ~params (fun () -> L.Algo.layout algo profile params))

(* The baselines ignore thresholds and geometry; a fixed params record
   keeps their store keys stable across grid configurations. *)
let baseline_params = L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 ()

(* The serial prefix: build every layout (cheap, and Profile memoizes a
   successor cache that must not be raced) and list the grid's cells in
   the exact order the serial implementation visited them. *)
let plan_simulate ~ctx ~streamed ?layouts config (pl : Pipeline.t) =
  let algos = selected_algos layouts in
  let cached_layout = layout_cache ~ctx pl in
  let profile = pl.Pipeline.profile in
  let build = build_layout ~ctx ~cached_layout profile in
  let orig = build (algo_exn "orig") baseline_params in
  let ph = build (algo_exn "P&H") baseline_params in
  let cells = ref [] in
  let add layout variant ~cache_kb ~cfa_kb =
    cells :=
      {
        c_table = "table34";
        c_config = config;
        c_layout = layout;
        c_variant = variant;
        c_cache_kb = cache_kb;
        c_cfa_kb = cfa_kb;
        c_streamed = streamed;
        c_assoc = 1;
        c_policy = Stc_cachesim.Icache.Lru;
        c_fdip = None;
      }
      :: !cells
  in
  (* ideal (perfect cache) for the fixed layouts *)
  add orig Ideal ~cache_kb:0 ~cfa_kb:None;
  add ph Ideal ~cache_kb:0 ~cfa_kb:None;
  add orig Tc_ideal ~cache_kb:0 ~cfa_kb:None;
  List.iter
    (fun (cache_kb, cfas) ->
      let cache_bytes = cache_kb * 1024 in
      (* layout-independent rows, once per cache size *)
      add orig Direct ~cache_kb ~cfa_kb:None;
      add orig Two_way ~cache_kb ~cfa_kb:None;
      add orig Victim ~cache_kb ~cfa_kb:None;
      add orig Trace_cache ~cache_kb ~cfa_kb:None;
      add ph Direct ~cache_kb ~cfa_kb:None;
      List.iter
        (fun cfa ->
          let cfa_bytes = cfa * 1024 in
          let params = stc_params config ~cache_bytes ~cfa_bytes in
          let built = List.map (fun a -> (a, build a params)) algos in
          let cfa_kb = Some cfa in
          List.iter
            (fun (_, layout) ->
              add layout Direct ~cache_kb ~cfa_kb;
              add layout Ideal ~cache_kb ~cfa_kb)
            built;
          (* software + hardware trace cache, on the headline layout *)
          match
            List.find_opt (fun (a, _) -> a.L.Algo.name = "ops") built
          with
          | Some (_, ops) ->
            add ops Trace_cache ~cache_kb ~cfa_kb;
            add ops Tc_ideal ~cache_kb ~cfa_kb
          | None -> ())
        cfas)
    config.grid;
  List.rev !cells

let simulate ?(ctx = Run.default) ?(config = default_sim_config)
    ?(streamed = false) ?(fused = true) ?layouts pl =
  Run.span ctx "simulate-grid" @@ fun () ->
  exec_cells ~ctx ~label:"simulate" ~fused pl
    (plan_simulate ~ctx ~streamed ?layouts config pl)

(* ---------- extended grid: prefetch × replacement ----------

   The post-paper hardware dimensions, on the paper's layouts: each of
   the first two grid cache sizes (at its first CFA point) runs every
   selected layout 4-way set-associative under {LRU, SRRIP, TRRIP} ×
   {no prefetch, FDIP}.  TRRIP's per-line temperature table is derived
   from the layout's own hotness in the serial prefix
   ({!Stc_cachesim.Temperature.of_blocks}), so every (layout, cache)
   pair carries its matching hint — and the table enters the cell's
   store key by fingerprint. *)

let plan_extended ~ctx ~streamed ?layouts config (pl : Pipeline.t) =
  let algos = selected_algos layouts in
  let cached_layout = layout_cache ~ctx pl in
  let profile = pl.Pipeline.profile in
  let build = build_layout ~ctx ~cached_layout profile in
  let orig = build (algo_exn "orig") baseline_params in
  let sizes =
    Array.map Stc_cfg.Block.byte_size
      pl.Pipeline.program.Stc_cfg.Program.blocks
  in
  let counts = P.Profile.counts profile in
  let temperature layout =
    Stc_cachesim.Temperature.of_blocks ~line_bytes:config.line_bytes
      ~addrs:layout.L.Layout.addr ~sizes ~counts
  in
  let grid =
    match config.grid with a :: b :: _ -> [ a; b ] | short -> short
  in
  let cells = ref [] in
  List.iter
    (fun (cache_kb, cfas) ->
      match cfas with
      | [] -> ()
      | cfa :: _ ->
        let params =
          stc_params config ~cache_bytes:(cache_kb * 1024)
            ~cfa_bytes:(cfa * 1024)
        in
        let built =
          (orig, None)
          :: List.map (fun a -> (build a params, Some cfa)) algos
        in
        List.iter
          (fun (layout, cfa_kb) ->
            let temps = temperature layout in
            List.iter
              (fun policy ->
                List.iter
                  (fun fdip ->
                    cells :=
                      {
                        c_table = "extended";
                        c_config = config;
                        c_layout = layout;
                        c_variant = Direct;
                        c_cache_kb = cache_kb;
                        c_cfa_kb = cfa_kb;
                        c_streamed = streamed;
                        c_assoc = 4;
                        c_policy = policy;
                        c_fdip = fdip;
                      }
                      :: !cells)
                  [ None; Some F.Fdip.default ])
              [
                Stc_cachesim.Icache.Lru;
                Stc_cachesim.Icache.Srrip;
                Stc_cachesim.Icache.Trrip temps;
              ])
          built)
    grid;
  List.rev !cells

let extended ?(ctx = Run.default) ?(config = default_sim_config)
    ?(streamed = false) ?(fused = true) ?layouts pl =
  Run.span ctx "extended-grid" @@ fun () ->
  exec_cells ~ctx ~label:"extended" ~fused pl
    (plan_extended ~ctx ~streamed ?layouts config pl)

let print_extended rows =
  let t =
    Tbl.create
      ~headers:
        [
          ("layout", Tbl.Left);
          ("cache", Tbl.Right);
          ("policy", Tbl.Left);
          ("FDIP", Tbl.Left);
          ("miss %", Tbl.Right);
          ("IPC", Tbl.Right);
          ("evictions", Tbl.Right);
          ("issued", Tbl.Right);
          ("useful", Tbl.Right);
          ("late", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [
          r.layout;
          string_of_int r.cache_kb;
          r.policy;
          (if r.prefetch then "on" else "off");
          Tbl.fmiss r.miss_pct;
          Tbl.f2 r.bandwidth;
          string_of_int r.evictions;
          string_of_int r.pf_issued;
          string_of_int r.pf_useful;
          string_of_int r.pf_late;
        ])
    rows;
  print_endline
    "Extended grid: 4-way i-cache, replacement policy x FDIP prefetching.";
  Tbl.print t;
  (* the headline: does a smarter frontend close the gap a smarter
     layout closes? Compare orig+FDIP against the best layout without
     prefetching, at the smallest extended cache size. *)
  let smallest =
    List.fold_left (fun acc r -> min acc r.cache_kb) max_int rows
  in
  let at_small = List.filter (fun r -> r.cache_kb = smallest) rows in
  let orig_fdip =
    List.find_opt
      (fun r ->
        String.equal r.layout "orig"
        && r.prefetch
        && String.equal r.policy "lru")
      at_small
  and orig_plain =
    List.find_opt
      (fun r ->
        String.equal r.layout "orig"
        && (not r.prefetch)
        && String.equal r.policy "lru")
      at_small
  and best_layout =
    List.filter
      (fun r ->
        (not (String.equal r.layout "orig"))
        && (not r.prefetch)
        && String.equal r.policy "lru")
      at_small
    |> function
    | [] -> None
    | l -> Some (List.fold_left (fun a r -> if r.miss_pct < a.miss_pct then r else a) (List.hd l) l)
  in
  match (orig_plain, orig_fdip, best_layout) with
  | Some p, Some f, Some b ->
    Printf.printf
      "FDIP vs layout (%dKB, 4-way LRU): original code misses %.2f/100 \
       instructions, FDIP cuts that to %.2f; the %s layout reaches %.2f \
       with no prefetch hardware at all.\n"
      smallest p.miss_pct f.miss_pct b.layout b.miss_pct
  | _ -> ()

(* ---------- table rendering ---------- *)

let find rows ~layout ~cache_kb ~cfa_kb ~variant =
  List.find_opt
    (fun r ->
      String.equal r.layout layout
      && r.cache_kb = cache_kb && r.cfa_kb = cfa_kb && r.variant = variant)
    rows

let cell f = function Some r -> f r | None -> "-"

let miss_cell = cell (fun r -> Tbl.fmiss r.miss_pct)

let bw_cell = cell (fun r -> Tbl.f2 r.bandwidth)

let grid_of rows =
  (* recover the grid from the rows *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.cfa_kb with
      | Some cfa when r.variant = Direct ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r.cache_kb) in
        if not (List.mem cfa cur) then
          Hashtbl.replace tbl r.cache_kb (cfa :: cur)
      | _ -> ())
    rows;
  Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) tbl []
  |> List.sort compare

(* The CFA-parameterized layouts actually present, in first-appearance
   (= registry) order — the tables grow a column per selected algorithm
   instead of hard-coding the 1999 contenders. *)
let cfa_layout_names rows =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun r ->
      match r.cfa_kb with
      | Some _ when r.variant = Direct && not (Hashtbl.mem seen r.layout) ->
        Hashtbl.add seen r.layout ();
        Some r.layout
      | _ -> None)
    rows

let print_table3 rows =
  let cfa_names = cfa_layout_names rows in
  let t =
    Tbl.create
      ~headers:
        ([ ("i-cache/CFA", Tbl.Left); ("orig", Tbl.Right); ("P&H", Tbl.Right) ]
        @ List.map (fun n -> (n, Tbl.Right)) cfa_names
        @ [ ("2-way", Tbl.Right); ("victim", Tbl.Right) ])
  in
  let grid = grid_of rows in
  let last_group = List.length grid - 1 in
  List.iteri
    (fun gi (cache_kb, cfas) ->
      List.iteri
        (fun i cfa_kb ->
          let first = i = 0 in
          let fixed layout variant =
            if first then
              miss_cell (find rows ~layout ~cache_kb ~cfa_kb:None ~variant)
            else "-"
          in
          let cfa = Some cfa_kb in
          Tbl.add_row t
            ([
               Printf.sprintf "%d/%d" cache_kb cfa_kb;
               fixed "orig" Direct;
               fixed "P&H" Direct;
             ]
            @ List.map
                (fun layout ->
                  miss_cell
                    (find rows ~layout ~cache_kb ~cfa_kb:cfa ~variant:Direct))
                cfa_names
            @ [ fixed "orig" Two_way; fixed "orig" Victim ]))
        cfas;
      if gi < last_group then Tbl.add_rule t)
    grid;
  print_endline
    "Table 3. Instruction cache misses per 100 instructions executed.";
  Tbl.print t

let print_table4 rows =
  let cfa_names = cfa_layout_names rows in
  let t =
    Tbl.create
      ~headers:
        ([ ("i-cache/CFA", Tbl.Left); ("orig", Tbl.Right); ("P&H", Tbl.Right) ]
        @ List.map (fun n -> (n, Tbl.Right)) cfa_names
        @ [ ("TC 16KB", Tbl.Right); ("TC+ops", Tbl.Right) ])
  in
  (* Ideal line *)
  let ideal layout cfa_kb =
    bw_cell (find rows ~layout ~cache_kb:0 ~cfa_kb ~variant:Ideal)
  in
  let ideal_range layout =
    let vals =
      List.filter_map
        (fun r ->
          if
            String.equal r.layout layout
            && r.variant = Ideal && r.cache_kb = 0 && r.cfa_kb <> None
          then Some r.bandwidth
          else None)
        rows
    in
    match vals with
    | [] -> "-"
    | _ ->
      let lo = List.fold_left min infinity vals
      and hi = List.fold_left max neg_infinity vals in
      if hi -. lo < 0.05 then Tbl.f2 hi
      else Printf.sprintf "%s-%s" (Tbl.f2 lo) (Tbl.f2 hi)
  in
  let tc_ideal_range () =
    let vals =
      List.filter_map
        (fun r ->
          if r.variant = Tc_ideal && String.equal r.layout "ops" then
            Some r.bandwidth
          else None)
        rows
    in
    match vals with
    | [] -> "-"
    | _ -> Tbl.f2 (List.fold_left max neg_infinity vals)
  in
  Tbl.add_row t
    ([ "Ideal"; ideal "orig" None; ideal "P&H" None ]
    @ List.map ideal_range cfa_names
    @ [
        bw_cell
          (find rows ~layout:"orig" ~cache_kb:0 ~cfa_kb:None ~variant:Tc_ideal);
        tc_ideal_range ();
      ]);
  Tbl.add_rule t;
  let grid = grid_of rows in
  let last_group = List.length grid - 1 in
  List.iteri
    (fun gi (cache_kb, cfas) ->
      List.iteri
        (fun i cfa_kb ->
          let first = i = 0 in
          let fixed layout variant =
            if first then
              bw_cell (find rows ~layout ~cache_kb ~cfa_kb:None ~variant)
            else "-"
          in
          let cfa = Some cfa_kb in
          Tbl.add_row t
            ([
               Printf.sprintf "%d/%d" cache_kb cfa_kb;
               fixed "orig" Direct;
               fixed "P&H" Direct;
             ]
            @ List.map
                (fun layout ->
                  bw_cell
                    (find rows ~layout ~cache_kb ~cfa_kb:cfa ~variant:Direct))
                cfa_names
            @ [
                fixed "orig" Trace_cache;
                bw_cell
                  (find rows ~layout:"ops" ~cache_kb ~cfa_kb:cfa
                     ~variant:Trace_cache);
              ]))
        cfas;
      if gi < last_group then Tbl.add_rule t)
    grid;
  print_endline
    "Table 4. Fetch bandwidth (instructions per cycle), 5-cycle miss penalty.";
  Tbl.print t

let print_sequentiality rows =
  let pick layout variant =
    List.find_opt (fun r -> String.equal r.layout layout && r.variant = variant) rows
  in
  match (pick "orig" Ideal, pick "ops" Ideal) with
  | Some o, Some s ->
    Printf.printf
      "Instructions executed between taken branches: %.1f (original code)\n\
       -> %.1f (ops layout), a %.1fx increase.\n"
      o.instrs_between_taken s.instrs_between_taken
      (s.instrs_between_taken /. o.instrs_between_taken)
  | _ -> print_endline "sequentiality: runs not found"

(* ---------- ablation ---------- *)

type ablation_row = {
  a_exec : int;
  a_branch : float;
  a_cfa_kb : int;
  a_miss_pct : float;
  a_bandwidth : float;
}

let ablation_gen ~ctx ?(streamed = false) ?(fused = true) ~cache_kb
    ~exec_thresholds ~branch_thresholds ~cfa_kbs (pl : Pipeline.t) =
  let profile = pl.Pipeline.profile in
  let cached_layout = layout_cache ~ctx pl in
  let ops_algo = algo_exn "ops" in
  (* serial prefix: one ops layout per sweep point *)
  let metas = ref [] and cells = ref [] in
  List.iter
    (fun a_exec ->
      List.iter
        (fun a_branch ->
          List.iter
            (fun a_cfa_kb ->
              let config =
                {
                  default_sim_config with
                  exec_threshold = a_exec;
                  branch_threshold = a_branch;
                }
              in
              let params =
                stc_params config ~cache_bytes:(cache_kb * 1024)
                  ~cfa_bytes:(a_cfa_kb * 1024)
              in
              let ops =
                build_layout ~ctx ~cached_layout profile ops_algo params
              in
              metas := (a_exec, a_branch, a_cfa_kb) :: !metas;
              cells :=
                {
                  c_table = "ablation";
                  c_config = config;
                  c_layout = ops;
                  c_variant = Direct;
                  c_cache_kb = cache_kb;
                  c_cfa_kb = Some a_cfa_kb;
                  c_streamed = streamed;
                  c_assoc = 1;
                  c_policy = Stc_cachesim.Icache.Lru;
                  c_fdip = None;
                }
                :: !cells)
            cfa_kbs)
        branch_thresholds)
    exec_thresholds;
  let rows = exec_cells ~ctx ~label:"ablation" ~fused pl (List.rev !cells) in
  List.map2
    (fun (a_exec, a_branch, a_cfa_kb) (r : row) ->
      {
        a_exec;
        a_branch;
        a_cfa_kb;
        a_miss_pct = r.miss_pct;
        a_bandwidth = r.bandwidth;
      })
    (List.rev !metas) rows

let ablation ?(ctx = Run.default) ?(streamed = false) ?(fused = true)
    ?(cache_kb = 32) ?(exec_thresholds = [ 1; 10; 50; 200; 1000 ])
    ?(branch_thresholds = [ 0.1; 0.3; 0.5 ]) ?(cfa_kbs = [ 4; 8; 16 ])
    (pl : Pipeline.t) =
  ablation_gen ~ctx ~streamed ~fused ~cache_kb ~exec_thresholds
    ~branch_thresholds ~cfa_kbs pl

let ablation_row_to_string r =
  Printf.sprintf "exec=%d branch=%.2f cfa=%d miss=%.6f bw=%.6f" r.a_exec
    r.a_branch r.a_cfa_kb r.a_miss_pct r.a_bandwidth

let print_ablation rows =
  let t =
    Tbl.create
      ~headers:
        [
          ("ExecThresh", Tbl.Right);
          ("BranchThresh", Tbl.Right);
          ("CFA KB", Tbl.Right);
          ("miss %", Tbl.Right);
          ("IPC", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [
          string_of_int r.a_exec;
          Tbl.f2 r.a_branch;
          string_of_int r.a_cfa_kb;
          Tbl.fmiss r.a_miss_pct;
          Tbl.f2 r.a_bandwidth;
        ])
    rows;
  print_endline "Ablation: STC thresholds and CFA size (ops seeds).";
  Tbl.print t
