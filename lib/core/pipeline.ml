module Kernel = Stc_synth.Kernel
module Database = Stc_db.Database
module Recorder = Stc_trace.Recorder
module Profile = Stc_profile.Profile

type config = {
  kernel : Kernel.config;
  sf : float;
  data_seed : int64;
  walker_seed : int64;
  frames : int;
}

let default_config =
  {
    kernel = Kernel.default_config;
    sf = 0.002;
    data_seed = 0x7C0DL;
    walker_seed = 0xD15EA5EL;
    frames = 256;
  }

let quick_config =
  {
    default_config with
    sf = 0.0005;
    kernel =
      {
        Kernel.default_config with
        Kernel.n_l2 = 60;
        n_l3 = 120;
        n_l4 = 60;
        n_parser = 80;
        n_optimizer = 60;
        n_filler = 400;
      };
  }

type t = {
  config : config;
  kernel : Kernel.t;
  program : Stc_cfg.Program.t;
  db_btree : Database.t;
  db_hash : Database.t;
  training : Recorder.t;
  test : Recorder.t;
  profile : Profile.t;
}

let seeded seed (config : config) =
  {
    config with
    data_seed = Int64.of_int seed;
    walker_seed = Int64.of_int (seed + 17);
    kernel = { config.kernel with Kernel.seed = Int64.of_int (seed + 34) };
  }

let run ?(ctx = Run.default) ?(config = default_config) () =
  let config =
    match ctx.Run.seed with Some s -> seeded s config | None -> config
  in
  let metrics = ctx.Run.metrics in
  let span name f = Run.span ctx name f in
  let reporter label = Run.reporter ctx ~label () in
  let kernel = span "kernel-build" (fun () -> Kernel.build ~config:config.kernel ()) in
  let data =
    span "datagen" (fun () ->
        Stc_dbdata.Datagen.generate ~seed:config.data_seed ~sf:config.sf ())
  in
  let db_btree =
    span "db-load" (fun () ->
        Database.load ~frames:config.frames data ~kind:Database.Btree_db)
  in
  let db_hash =
    span "db-load" (fun () ->
        Database.load ~frames:config.frames data ~kind:Database.Hash_db)
  in
  let training =
    span "record-training" (fun () ->
        Stc_workload.Driver.record ?metrics ~prefix:"training."
          ?progress:(reporter "record-training") ~kernel
          ~walker_seed:config.walker_seed
          ~dbs:[ ("btree", db_btree) ]
          ~queries:Stc_workload.Queries.training_set ())
  in
  let test =
    span "record-test" (fun () ->
        Stc_workload.Driver.record ?metrics ~prefix:"test."
          ?progress:(reporter "record-test") ~kernel
          ~walker_seed:(Int64.add config.walker_seed 1L)
          ~dbs:[ ("btree", db_btree); ("hash", db_hash) ]
          ~queries:Stc_workload.Queries.test_set ())
  in
  let profile = Profile.create kernel.Kernel.program in
  span "build-profile" (fun () ->
      Recorder.replay training (Profile.sink profile));
  (match metrics with
  | Some reg ->
    let module Reg = Stc_obs.Registry in
    Stc_obs.Metric.Gauge.set (Reg.gauge reg "pipeline.sf") config.sf;
    Stc_obs.Metric.Gauge.set
      (Reg.gauge reg "pipeline.frames")
      (float_of_int config.frames);
    let sc = Stc_cfg.Program.static_counts kernel.Kernel.program in
    Stc_obs.Metric.Gauge.set
      (Reg.gauge reg "pipeline.static_blocks")
      (float_of_int sc.Stc_cfg.Program.n_blocks)
  | None -> ());
  {
    config;
    kernel;
    program = kernel.Kernel.program;
    db_btree;
    db_hash;
    training;
    test;
    profile;
  }

let run_legacy ?metrics ?(progress = false) ?(config = default_config) () =
  let ctx = { Run.default with Run.metrics; progress } in
  run ~ctx ~config ()

let replay_test t f = Recorder.replay t.test f

let replay_training t f = Recorder.replay t.training f
