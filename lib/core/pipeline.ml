module Kernel = Stc_synth.Kernel
module Database = Stc_db.Database
module Recorder = Stc_trace.Recorder
module Profile = Stc_profile.Profile

type config = {
  kernel : Kernel.config;
  sf : float;
  data_seed : int64;
  walker_seed : int64;
  frames : int;
}

let default_config =
  {
    kernel = Kernel.default_config;
    sf = 0.002;
    data_seed = 0x7C0DL;
    walker_seed = 0xD15EA5EL;
    frames = 256;
  }

let quick_config =
  {
    default_config with
    sf = 0.0005;
    kernel =
      {
        Kernel.default_config with
        Kernel.n_l2 = 60;
        n_l3 = 120;
        n_l4 = 60;
        n_parser = 80;
        n_optimizer = 60;
        n_filler = 400;
      };
  }

type t = {
  config : config;
  kernel : Kernel.t;
  program : Stc_cfg.Program.t;
  db_btree : Database.t;
  db_hash : Database.t;
  training : Recorder.t;
  test : Recorder.t;
  profile : Profile.t;
}

let seeded seed (config : config) =
  {
    config with
    data_seed = Int64.of_int seed;
    walker_seed = Int64.of_int (seed + 17);
    kernel = { config.kernel with Kernel.seed = Int64.of_int (seed + 34) };
  }

let config_fingerprint (config : config) =
  let open Stc_util.Fnv in
  let k = config.kernel in
  let h = int64 empty k.Kernel.seed in
  let h = int h k.Kernel.n_l2 in
  let h = int h k.Kernel.n_l3 in
  let h = int h k.Kernel.n_l4 in
  let h = int h k.Kernel.n_parser in
  let h = int h k.Kernel.n_optimizer in
  let h = int h k.Kernel.n_filler in
  let h = int h k.Kernel.filler_instrs in
  let h = float h config.sf in
  let h = int64 h config.data_seed in
  let h = int64 h config.walker_seed in
  let h = int h config.frames in
  let queries h qs = List.fold_left int (int h (List.length qs)) qs in
  let h = queries h Stc_workload.Queries.training_set in
  let h = queries h Stc_workload.Queries.test_set in
  to_hex h

(* On a trace-artifact hit the walker never runs, so re-register the
   counters a recording would have exported: the walker's block count is
   the trace length and its instruction count follows from the program's
   static block sizes ([Recorder.of_ids] already restored the trace's
   own counters). *)
let attach_warm_metrics reg ~prefix program recorder =
  let n = Recorder.length recorder in
  let blocks = program.Stc_cfg.Program.blocks in
  let instrs = ref 0 in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder recorder)
    (fun bid -> instrs := !instrs + blocks.(bid).Stc_cfg.Block.size);
  let module Reg = Stc_obs.Registry in
  let module Counter = Stc_obs.Metric.Counter in
  Counter.add (Reg.counter reg (prefix ^ "walker.blocks")) n;
  Counter.add (Reg.counter reg (prefix ^ "walker.instrs")) !instrs;
  Recorder.attach_metrics recorder reg ~prefix

let run ?(ctx = Run.default) ?(config = default_config) () =
  let config =
    match ctx.Run.seed with Some s -> seeded s config | None -> config
  in
  let metrics = ctx.Run.metrics in
  let span name f = Run.span ctx name f in
  let reporter label = Run.reporter ctx ~label () in
  let store = Stc_store.of_ctx ctx in
  let kernel = span "kernel-build" (fun () -> Kernel.build ~config:config.kernel ()) in
  let data =
    span "datagen" (fun () ->
        Stc_dbdata.Datagen.generate ~seed:config.data_seed ~sf:config.sf ())
  in
  let db_btree =
    span "db-load" (fun () ->
        Database.load ~frames:config.frames data ~kind:Database.Btree_db)
  in
  let db_hash =
    span "db-load" (fun () ->
        Database.load ~frames:config.frames data ~kind:Database.Hash_db)
  in
  (* Trace keys cover the full config fingerprint plus the built
     program's structure, so a kernel-generator change invalidates
     recorded traces even when the config did not move. *)
  let cfg_fp = config_fingerprint config in
  let prog_fp = Stc_store.Fp.program kernel.Kernel.program in
  let record which ~prefix ~walker_seed ~dbs ~queries =
    span ("record-" ^ which) (fun () ->
        let fresh () =
          Stc_workload.Driver.record ?metrics ~prefix
            ?progress:(reporter ("record-" ^ which))
            ~kernel ~walker_seed ~dbs ~queries ()
        in
        match store with
        | None -> fresh ()
        | Some st -> (
            let key =
              Stc_store.Key.of_parts [ "pipeline-trace"; cfg_fp; prog_fp; which ]
            in
            match Stc_store.Chunked.load st ~key with
            | Some recorder ->
                (match metrics with
                | Some reg ->
                    attach_warm_metrics reg ~prefix kernel.Kernel.program
                      recorder
                | None -> ());
                recorder
            | None ->
                let recorder = fresh () in
                Stc_store.Chunked.save st ~key recorder;
                recorder))
  in
  let training =
    record "training" ~prefix:"training." ~walker_seed:config.walker_seed
      ~dbs:[ ("btree", db_btree) ]
      ~queries:Stc_workload.Queries.training_set
  in
  let test =
    record "test" ~prefix:"test."
      ~walker_seed:(Int64.add config.walker_seed 1L)
      ~dbs:[ ("btree", db_btree); ("hash", db_hash) ]
      ~queries:Stc_workload.Queries.test_set
  in
  let profile = Profile.create kernel.Kernel.program in
  span "build-profile" (fun () ->
      Stc_trace.Source.iter
        (Stc_trace.Source.of_recorder training)
        (Profile.sink profile));
  (match metrics with
  | Some reg ->
    let module Reg = Stc_obs.Registry in
    Stc_obs.Metric.Gauge.set (Reg.gauge reg "pipeline.sf") config.sf;
    Stc_obs.Metric.Gauge.set
      (Reg.gauge reg "pipeline.frames")
      (float_of_int config.frames);
    let sc = Stc_cfg.Program.static_counts kernel.Kernel.program in
    Stc_obs.Metric.Gauge.set
      (Reg.gauge reg "pipeline.static_blocks")
      (float_of_int sc.Stc_cfg.Program.n_blocks)
  | None -> ());
  {
    config;
    kernel;
    program = kernel.Kernel.program;
    db_btree;
    db_hash;
    training;
    test;
    profile;
  }

let test_source ?segment_blocks t =
  Stc_trace.Source.of_recorder ?segment_blocks t.test

let training_source ?segment_blocks t =
  Stc_trace.Source.of_recorder ?segment_blocks t.training

let replay_test t f = Stc_trace.Source.iter (test_source t) f

let replay_training t f = Stc_trace.Source.iter (training_source t) f
