(** The run context every [Stc_core] entry point takes as [?ctx]:
    a re-export of {!Stc_obs.Run} (the type lives in [lib/obs] so that
    lower layers like {!Stc_fetch.Engine} can take the same context
    without depending on [stc_core]).

    {[
      let ctx = Run.default |> Run.with_metrics reg |> Run.with_jobs 4 in
      let pl = Pipeline.run ~ctx () in
      let rows = Experiments.simulate ~ctx pl in ...
    ]} *)

include module type of struct
  include Stc_obs.Run
end
