module L = Stc_layout
module F = Stc_fetch
module P = Stc_profile
module Tbl = Stc_util.Tbl

(* Every extension study funnels its engine runs through here: one
   (program, layout, trace) replay against a fresh [cache_kb] i-cache of
   [assoc] ways. With [ctx.store], the compiled trace image and — for
   prediction-free runs — the whole engine result are consulted in the
   artifact store first. Prediction runs always replay (a stored result
   cannot reconstruct the predictor's accuracy state), which is exactly
   where the cached packed image pays off. *)
let fetch_run ~ctx ?(assoc = 1) ?config program layout trace ~cache_kb
    ?prediction () =
  let config =
    match config with Some c -> c | None -> F.Engine.Config.default
  in
  let icache () =
    Stc_cachesim.Icache.create ~assoc ~size_bytes:(cache_kb * 1024) ()
  in
  match Stc_store.of_ctx ctx with
  | None ->
    F.Engine.run ~ctx ~config ~icache:(icache ()) ?prediction
      (F.View.create program layout (Stc_trace.Source.of_recorder trace))
  | Some st -> (
    let prog_fp = Stc_store.Fp.program program in
    let lay_fp = Stc_store.Fp.layout layout in
    let trace_fp = Stc_store.Fp.trace trace in
    let packed () =
      let key =
        Stc_store.Key.of_parts [ "packed"; prog_fp; lay_fp; trace_fp ]
      in
      Stc_store.Packed.cached (Some st) ~key (fun () ->
          F.Packed.compile program layout (Stc_trace.Source.of_recorder trace))
    in
    match prediction with
    | Some _ ->
      F.Engine.run_packed ~ctx ~config ~icache:(icache ()) ?prediction
        (packed ())
    | None -> (
      let key =
        Stc_store.Key.of_parts
          [
            "engine-result";
            prog_fp;
            lay_fp;
            trace_fp;
            Stc_store.Fp.engine_config config;
            string_of_int assoc;
            string_of_int cache_kb;
          ]
      in
      match Stc_store.Result.load st ~key with
      | Some r ->
        (match ctx.Run.metrics with
        | Some reg -> F.Engine.publish reg r
        | None -> ());
        r
      | None ->
        let r = F.Engine.run_packed ~ctx ~config ~icache:(icache ()) (packed ()) in
        Stc_store.Result.save st ~key r;
        r))

(* ---------- inlining ---------- *)

type inline_row = {
  i_variant : string;
  i_layout : string;
  i_miss : float;
  i_ipc : float;
  i_ibt : float;
}

type inline_report = {
  inl_sites : int;
  inl_growth_pct : float;
  inl_rows : inline_row list;
}

let stc_layout profile ~cache_kb ~cfa_kb ~name ~seeds =
  let params =
    L.Stc.params ~exec_threshold:50 ~branch_threshold:0.3
      ~cache_bytes:(cache_kb * 1024) ~cfa_bytes:(cfa_kb * 1024) ()
  in
  L.Stc.layout profile ~name ~params ~seeds

let inlining ?(ctx = Run.default) ?config ?(cache_kb = 32) ?(cfa_kb = 8)
    (pl : Pipeline.t) =
  Run.span ctx "ext-inlining" @@ fun () ->
  let base_prog = pl.Pipeline.program in
  let tr = L.Inline.transform ?config pl.Pipeline.profile in
  let inl_prog = L.Inline.program tr in
  let inl_profile = L.Inline.remap_profile tr pl.Pipeline.training in
  let inl_test = L.Inline.remap_trace tr pl.Pipeline.test in
  let run variant program layout trace =
    let r = fetch_run ~ctx program layout trace ~cache_kb () in
    {
      i_variant = variant;
      i_layout = layout.L.Layout.name;
      i_miss = F.Engine.miss_rate_pct r;
      i_ipc = F.Engine.bandwidth r;
      i_ibt = r.F.Engine.instrs_between_taken;
    }
  in
  let rows =
    [
      run "base" base_prog (L.Original.layout base_prog) pl.Pipeline.test;
      run "base" base_prog
        (stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb ~name:"ops"
           ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile))
        pl.Pipeline.test;
      run "inlined" inl_prog (L.Original.layout inl_prog) inl_test;
      run "inlined" inl_prog
        (stc_layout inl_profile ~cache_kb ~cfa_kb ~name:"ops"
           ~seeds:(L.Stc.ops_seeds inl_profile))
        inl_test;
    ]
  in
  {
    inl_sites = L.Inline.inlined_sites tr;
    inl_growth_pct = L.Inline.code_growth_pct tr;
    inl_rows = rows;
  }

let print_inlining r =
  Printf.printf
    "Function inlining (Section 8 future work): %d call sites inlined,\n\
     +%.1f%% static code.\n"
    r.inl_sites r.inl_growth_pct;
  let t =
    Tbl.create
      ~headers:
        [
          ("program", Tbl.Left);
          ("layout", Tbl.Left);
          ("miss %", Tbl.Right);
          ("IPC", Tbl.Right);
          ("instrs between taken", Tbl.Right);
        ]
  in
  List.iter
    (fun row ->
      Tbl.add_row t
        [
          row.i_variant;
          row.i_layout;
          Tbl.fmiss row.i_miss;
          Tbl.f2 row.i_ipc;
          Tbl.fpct row.i_ibt;
        ])
    r.inl_rows;
  Tbl.print t

(* ---------- OLTP ---------- *)

type oltp_row = { o_layout : string; o_miss : float; o_ipc : float; o_ibt : float }

type oltp_report = { oltp_trace_blocks : int; oltp_rows : oltp_row list }

let oltp ?(ctx = Run.default) ?(train_txns = 300) ?(test_txns = 600)
    ?(cache_kb = 16) (pl : Pipeline.t) =
  Run.span ctx "ext-oltp" @@ fun () ->
  let kernel = pl.Pipeline.kernel in
  let db = pl.Pipeline.db_btree in
  let train_mix = Stc_workload.Oltp.mix db ~seed:0xB0B1L ~n:train_txns in
  let test_mix = Stc_workload.Oltp.mix db ~seed:0xB0B2L ~n:test_txns in
  let train =
    Stc_workload.Oltp.record ~kernel ~walker_seed:0x01AFL ~db ~txns:train_mix
  in
  let test =
    Stc_workload.Oltp.record ~kernel ~walker_seed:0x02AFL ~db ~txns:test_mix
  in
  let profile = P.Profile.create pl.Pipeline.program in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder train)
    (P.Profile.sink profile);
  let run layout =
    let r = fetch_run ~ctx pl.Pipeline.program layout test ~cache_kb () in
    {
      o_layout = layout.L.Layout.name;
      o_miss = F.Engine.miss_rate_pct r;
      o_ipc = F.Engine.bandwidth r;
      o_ibt = r.F.Engine.instrs_between_taken;
    }
  in
  let ph =
    match L.Algo.find "P&H" with Ok a -> a | Error msg -> invalid_arg msg
  in
  let rows =
    [
      run (L.Original.layout pl.Pipeline.program);
      run
        (L.Algo.layout ph profile
           (L.Algo.params ~cache_bytes:0 ~cfa_bytes:0 ()));
      run
        (stc_layout profile ~cache_kb ~cfa_kb:4 ~name:"auto"
           ~seeds:(L.Stc.auto_seeds profile));
      run
        (stc_layout profile ~cache_kb ~cfa_kb:4 ~name:"ops"
           ~seeds:(L.Stc.ops_seeds profile));
    ]
  in
  { oltp_trace_blocks = Stc_trace.Recorder.length test; oltp_rows = rows }

let print_oltp r =
  Printf.printf
    "OLTP transaction mix (Section 8 future work), %d traced blocks,\n\
     16KB i-cache; layouts trained on a disjoint mix:\n"
    r.oltp_trace_blocks;
  let t =
    Tbl.create
      ~headers:
        [
          ("layout", Tbl.Left);
          ("miss %", Tbl.Right);
          ("IPC", Tbl.Right);
          ("instrs between taken", Tbl.Right);
        ]
  in
  List.iter
    (fun row ->
      Tbl.add_row t
        [ row.o_layout; Tbl.fmiss row.o_miss; Tbl.f2 row.o_ipc; Tbl.fpct row.o_ibt ])
    r.oltp_rows;
  Tbl.print t

(* ---------- branch prediction sensitivity ---------- *)

type prediction_row = {
  p_layout : string;
  p_predictor : string;
  p_accuracy : float;
  p_ipc : float;
}

let prediction ?(ctx = Run.default) ?(cache_kb = 32) ?(cfa_kb = 8)
    (pl : Pipeline.t) =
  Run.span ctx "ext-prediction" @@ fun () ->
  let layouts =
    [
      L.Original.layout pl.Pipeline.program;
      stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb ~name:"ops"
        ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile);
    ]
  in
  let predictors =
    [
      ("perfect", None);
      ("always-taken", Some (F.Predictor.Always_taken));
      ("bimodal-2K", Some (F.Predictor.Bimodal 2048));
      ("gshare-4K/8", Some (F.Predictor.Gshare (4096, 8)));
    ]
  in
  List.concat_map
    (fun layout ->
      List.map
        (fun (pname, kind) ->
          let prediction =
            Option.map
              (fun k ->
                { F.Engine.pred = F.Predictor.create k; redirect_penalty = 3 })
              kind
          in
          let r =
            fetch_run ~ctx pl.Pipeline.program layout pl.Pipeline.test
              ~cache_kb ?prediction ()
          in
          let accuracy =
            match prediction with
            | None -> 100.0
            | Some { F.Engine.pred; _ } -> F.Predictor.accuracy_pct pred
          in
          {
            p_layout = layout.L.Layout.name;
            p_predictor = pname;
            p_accuracy = accuracy;
            p_ipc = F.Engine.bandwidth r;
          })
        predictors)
    layouts

let print_prediction rows =
  print_endline
    "Branch prediction sensitivity (the paper isolates I-fetch with\n\
     perfect prediction; 3-cycle redirect penalty here):";
  let t =
    Tbl.create
      ~headers:
        [
          ("layout", Tbl.Left);
          ("predictor", Tbl.Left);
          ("direction accuracy", Tbl.Right);
          ("IPC", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [ r.p_layout; r.p_predictor; Tbl.fpct r.p_accuracy ^ "%"; Tbl.f2 r.p_ipc ])
    rows;
  Tbl.print t

(* ---------- per-query breakdown ---------- *)

type query_row = {
  q_name : string;
  q_blocks : int;
  q_miss_orig : float;
  q_miss_ops : float;
}

let per_query ?(ctx = Run.default) ?(cache_kb = 16) (pl : Pipeline.t) =
  Run.span ctx "ext-per-query" @@ fun () ->
  let prog = pl.Pipeline.program in
  let orig = L.Original.layout prog in
  let ops =
    stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb:4 ~name:"ops"
      ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile)
  in
  let marks = Stc_trace.Recorder.marks pl.Pipeline.test in
  let total = Stc_trace.Recorder.length pl.Pipeline.test in
  let ranges =
    List.mapi
      (fun i (name, lo) ->
        let hi =
          match List.nth_opt marks (i + 1) with
          | Some (_, next) -> next
          | None -> total
        in
        (name, lo, hi))
      marks
  in
  List.map
    (fun (name, lo, hi) ->
      let miss layout =
        let section = Stc_trace.Recorder.create () in
        Stc_trace.Source.iter
          (Stc_trace.Source.of_recorder ~lo ~hi pl.Pipeline.test)
          (Stc_trace.Recorder.sink section);
        F.Engine.miss_rate_pct
          (fetch_run ~ctx prog layout section ~cache_kb ())
      in
      { q_name = name; q_blocks = hi - lo; q_miss_orig = miss orig; q_miss_ops = miss ops })
    ranges

let print_per_query rows =
  print_endline "Per-query i-cache miss rates (16KB, cold start per query):";
  let t =
    Tbl.create
      ~headers:
        [
          ("query", Tbl.Left);
          ("blocks", Tbl.Right);
          ("orig miss %", Tbl.Right);
          ("ops miss %", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [
          r.q_name;
          string_of_int r.q_blocks;
          Tbl.fmiss r.q_miss_orig;
          Tbl.fmiss r.q_miss_ops;
        ])
    rows;
  Tbl.print t

(* ---------- fetch unit family ---------- *)

type seqn_row = { s_layout : string; s_max_branches : int; s_ipc : float }

let fetch_units ?(ctx = Run.default) ?(cache_kb = 16) (pl : Pipeline.t) =
  Run.span ctx "ext-fetch-units" @@ fun () ->
  let prog = pl.Pipeline.program in
  let layouts =
    [
      L.Original.layout prog;
      stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb:4 ~name:"ops"
        ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile);
    ]
  in
  List.concat_map
    (fun layout ->
      List.map
        (fun s_max_branches ->
          let config = F.Engine.Config.make ~max_branches:s_max_branches () in
          let r =
            fetch_run ~ctx ~config prog layout pl.Pipeline.test ~cache_kb ()
          in
          { s_layout = layout.L.Layout.name; s_max_branches; s_ipc = F.Engine.bandwidth r })
        [ 1; 2; 3 ])
    layouts

let print_fetch_units rows =
  print_endline
    "Sequential fetch-engine family (SEQ.n = up to n branches per fetch):";
  let t =
    Tbl.create
      ~headers:
        [ ("layout", Tbl.Left); ("SEQ.1", Tbl.Right); ("SEQ.2", Tbl.Right); ("SEQ.3", Tbl.Right) ]
  in
  List.iter
    (fun layout ->
      let get n =
        match
          List.find_opt
            (fun r -> r.s_layout = layout && r.s_max_branches = n)
            rows
        with
        | Some r -> Tbl.f2 r.s_ipc
        | None -> "-"
      in
      Tbl.add_row t [ layout; get 1; get 2; get 3 ])
    [ "orig"; "ops" ];
  Tbl.print t

(* ---------- associativity interaction ---------- *)

type assoc_row = { a_layout : string; a_assoc : int; a_miss : float; a_ipc : float }

let associativity ?(ctx = Run.default) ?(cache_kb = 16) (pl : Pipeline.t) =
  Run.span ctx "ext-associativity" @@ fun () ->
  let prog = pl.Pipeline.program in
  let layouts =
    [
      L.Original.layout prog;
      stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb:4 ~name:"ops"
        ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile);
    ]
  in
  List.concat_map
    (fun layout ->
      List.map
        (fun a_assoc ->
          let r =
            fetch_run ~ctx ~assoc:a_assoc prog layout pl.Pipeline.test
              ~cache_kb ()
          in
          {
            a_layout = layout.L.Layout.name;
            a_assoc;
            a_miss = F.Engine.miss_rate_pct r;
            a_ipc = F.Engine.bandwidth r;
          })
        [ 1; 2; 4 ])
    layouts

let print_associativity rows =
  print_endline
    "Layout x associativity (16KB): how much of the software layout's\n\
     benefit survives a set-associative cache:";
  let t =
    Tbl.create
      ~headers:
        [
          ("layout", Tbl.Left);
          ("assoc", Tbl.Right);
          ("miss %", Tbl.Right);
          ("IPC", Tbl.Right);
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [ r.a_layout; string_of_int r.a_assoc; Tbl.fmiss r.a_miss; Tbl.f2 r.a_ipc ])
    rows;
  Tbl.print t

(* ---------- tuning ---------- *)

let print_tuning ?(ctx = Run.default) ?(cache_kb = 32) (pl : Pipeline.t) =
  Run.span ctx "ext-tuning" @@ fun () ->
  let outcome = Tuner.tune ~ctx ~cache_kb pl in
  let c = outcome.Tuner.chosen in
  Printf.printf
    "Automatic threshold selection (%d candidates, scored on Training):\n\
     chosen: seeds=%s ExecThresh=%d BranchThresh=%.2f CFA=%dKB\n\
     (training bandwidth %.2f IPC)\n"
    outcome.Tuner.evaluated
    (match c.Tuner.t_seeds with `Auto -> "auto" | `Ops -> "ops")
    c.Tuner.t_exec c.Tuner.t_branch c.Tuner.t_cfa_kb
    outcome.Tuner.train_bandwidth;
  (* held-out evaluation *)
  let eval name layout =
    let r =
      fetch_run ~ctx pl.Pipeline.program layout pl.Pipeline.test ~cache_kb ()
    in
    Printf.printf "  %-24s %5.2f IPC, %5.2f miss%% on Test\n" name
      (F.Engine.bandwidth r) (F.Engine.miss_rate_pct r)
  in
  eval "tuned" (Tuner.layout_of pl ~cache_kb c);
  eval "hand-picked (ops 50/0.3)"
    (stc_layout pl.Pipeline.profile ~cache_kb ~cfa_kb:8 ~name:"ops"
       ~seeds:(L.Stc.ops_seeds pl.Pipeline.profile));
  eval "original" (L.Original.layout pl.Pipeline.program)
