(** Automatic selection of the STC parameters — the paper's Section 8
    plans to "automatize the process of selecting the thresholds and the
    seeds while obtaining results closer to the knowledge-based
    selection".

    The tuner grid-searches the Exec Threshold, Branch Threshold and CFA
    size, scoring each candidate by fetch bandwidth on the {e Training}
    trace (never the Test trace — the evaluation stays held out), with
    both seed selections in the race. *)

type candidate = {
  t_exec : int;
  t_branch : float;
  t_cfa_kb : int;
  t_seeds : [ `Auto | `Ops ];
}

type outcome = {
  chosen : candidate;
  train_bandwidth : float;
  evaluated : int;  (** Number of candidates scored. *)
}

val default_space : candidate list
(** 2 seed selections × exec {10, 50, 250} × branch {0.1, 0.4} ×
    CFA {4, 8, 16} KB. *)

val tune :
  ?ctx:Run.ctx -> ?cache_kb:int -> ?space:candidate list -> Pipeline.t -> outcome
(** Score every candidate at the given cache size (default 32 KB) on the
    Training trace and return the best (first-seen wins ties). Layout
    construction is a serial prefix; candidates are then scored on
    [ctx.jobs] domains. Scoring never writes to [ctx.metrics], so the
    exported registry is identical at any job count. *)

val layout_of :
  Pipeline.t -> cache_kb:int -> candidate -> Stc_layout.Layout.t
(** Materialize a candidate as a layout (for evaluating it on Test). *)
