(** The trace-building worked example of Figure 3.

    The figure in the paper is partially garbled in the available text, so
    this graph is a faithful reconstruction of every behaviour the paper's
    prose describes: starting from seed A1 the greedy builder follows the
    most likely edge out of each block, producing the main trace
    A1 → … → A8; the transition to B1 is discarded by the Branch
    Threshold (and B1's weight keeps it below the Exec Threshold); the
    rejected-but-hot transition A2 → A5 is noted and later starts a
    secondary trace; and A6 starts nothing because its weight is below the
    Exec Threshold. Thresholds as in the paper: ExecThresh 4,
    BranchThresh 0.4. *)

val graph :
  unit -> Stc_cfg.Program.t * Stc_profile.Profile.t * int list
(** The weighted graph and the seed list ([A1]). *)

val label : int -> string
(** Human-readable block names ("A1" … "A8", "B1"). *)

val expected_sequences : string list list
(** What {!Stc_layout.Seqbuild.build} must produce on this graph at the
    paper's thresholds: [[A1..A8]; [A5]]. *)
