module L = Stc_layout
module F = Stc_fetch

type candidate = {
  t_exec : int;
  t_branch : float;
  t_cfa_kb : int;
  t_seeds : [ `Auto | `Ops ];
}

type outcome = { chosen : candidate; train_bandwidth : float; evaluated : int }

let default_space =
  List.concat_map
    (fun t_seeds ->
      List.concat_map
        (fun t_exec ->
          List.concat_map
            (fun t_branch ->
              List.map
                (fun t_cfa_kb -> { t_exec; t_branch; t_cfa_kb; t_seeds })
                [ 4; 8; 16 ])
            [ 0.1; 0.4 ])
        [ 10; 50; 250 ])
    [ `Auto; `Ops ]

let layout_of (pl : Pipeline.t) ~cache_kb c =
  let profile = pl.Pipeline.profile in
  let params =
    L.Stc.params ~exec_threshold:c.t_exec ~branch_threshold:c.t_branch
      ~cache_bytes:(cache_kb * 1024) ~cfa_bytes:(c.t_cfa_kb * 1024) ()
  in
  let seeds =
    match c.t_seeds with
    | `Auto -> L.Stc.auto_seeds profile
    | `Ops -> L.Stc.ops_seeds profile
  in
  let name =
    Printf.sprintf "tuned(%s,%d,%.2f,%dK)"
      (match c.t_seeds with `Auto -> "auto" | `Ops -> "ops")
      c.t_exec c.t_branch c.t_cfa_kb
  in
  L.Stc.layout profile ~name ~params ~seeds

let tune ?(ctx = Run.default) ?(cache_kb = 32) ?(space = default_space)
    (pl : Pipeline.t) =
  if space = [] then invalid_arg "Tuner.tune: empty candidate space";
  let candidates = Array.of_list space in
  (* The store handle carries no registry on purpose (matching the
     no-registry scoring below): candidate-space artifacts must not
     perturb the exported [store.*] counters or warning events, and a
     metrics-free handle is also safe to share across scoring domains. *)
  let store = Option.map (fun dir -> Stc_store.open_ dir) ctx.Run.store in
  let fps =
    Option.map
      (fun _ ->
        ( Stc_store.Fp.program pl.Pipeline.program,
          Stc_store.Fp.trace pl.Pipeline.training ))
      store
  in
  (* serial prefix: layout construction shares the profile's memo caches *)
  let build c =
    match (store, fps) with
    | Some st, Some (prog_fp, train_fp) ->
      let key =
        Stc_store.Key.of_parts
          [
            "layout";
            prog_fp;
            train_fp;
            (match c.t_seeds with `Auto -> "stc-auto" | `Ops -> "stc-ops");
            string_of_int c.t_exec;
            string_of_float c.t_branch;
            string_of_int (cache_kb * 1024);
            string_of_int (c.t_cfa_kb * 1024);
            (* the tuner names its layouts after the candidate, so they
               must not alias the plain "auto"/"ops" layout entries *)
            "tuned";
          ]
      in
      Stc_store.Layout.cached (Some st) ~key (fun () ->
          layout_of pl ~cache_kb c)
    | _ -> layout_of pl ~cache_kb c
  in
  let layouts = Array.map build candidates in
  (* Scoring passes no registry even when [ctx.metrics] is set, so the
     exported engine counters do not depend on the candidate space or on
     [ctx.jobs] — only the winner's held-out evaluation is recorded (by
     the caller). *)
  let score layout =
    let fresh () =
      let view =
        F.View.create pl.Pipeline.program layout (Pipeline.training_source pl)
      in
      let icache =
        Stc_cachesim.Icache.create ~size_bytes:(cache_kb * 1024) ()
      in
      F.Engine.run ~icache view
    in
    let r =
      match (store, fps) with
      | Some st, Some (prog_fp, train_fp) ->
        let key =
          Stc_store.Key.of_parts
            [
              "engine-result";
              prog_fp;
              Stc_store.Fp.layout layout;
              train_fp;
              Stc_store.Fp.engine_config F.Engine.Config.default;
              "1";
              string_of_int cache_kb;
            ]
        in
        Stc_store.Result.cached (Some st) ~key fresh
      | _ -> fresh ()
    in
    F.Engine.bandwidth r
  in
  let scores =
    if ctx.Run.jobs <= 1 then Array.map score layouts
    else
      Stc_par.Pool.with_pool ~domains:ctx.Run.jobs @@ fun pool ->
      Stc_par.Pool.map ~chunk:1 pool score layouts
  in
  (* first-seen candidate wins ties, as in the serial fold *)
  let best = ref 0 in
  Array.iteri (fun i bw -> if bw > scores.(!best) then best := i) scores;
  {
    chosen = candidates.(!best);
    train_bandwidth = scores.(!best);
    evaluated = Array.length candidates;
  }
