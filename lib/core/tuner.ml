module L = Stc_layout
module F = Stc_fetch

type candidate = {
  t_exec : int;
  t_branch : float;
  t_cfa_kb : int;
  t_seeds : [ `Auto | `Ops ];
}

type outcome = { chosen : candidate; train_bandwidth : float; evaluated : int }

let default_space =
  List.concat_map
    (fun t_seeds ->
      List.concat_map
        (fun t_exec ->
          List.concat_map
            (fun t_branch ->
              List.map
                (fun t_cfa_kb -> { t_exec; t_branch; t_cfa_kb; t_seeds })
                [ 4; 8; 16 ])
            [ 0.1; 0.4 ])
        [ 10; 50; 250 ])
    [ `Auto; `Ops ]

let layout_of (pl : Pipeline.t) ~cache_kb c =
  let profile = pl.Pipeline.profile in
  let params =
    L.Stc.params ~exec_threshold:c.t_exec ~branch_threshold:c.t_branch
      ~cache_bytes:(cache_kb * 1024) ~cfa_bytes:(c.t_cfa_kb * 1024) ()
  in
  let seeds =
    match c.t_seeds with
    | `Auto -> L.Stc.auto_seeds profile
    | `Ops -> L.Stc.ops_seeds profile
  in
  let name =
    Printf.sprintf "tuned(%s,%d,%.2f,%dK)"
      (match c.t_seeds with `Auto -> "auto" | `Ops -> "ops")
      c.t_exec c.t_branch c.t_cfa_kb
  in
  L.Stc.layout profile ~name ~params ~seeds

let tune ?(cache_kb = 32) ?(space = default_space) (pl : Pipeline.t) =
  if space = [] then invalid_arg "Tuner.tune: empty candidate space";
  let score c =
    let layout = layout_of pl ~cache_kb c in
    let view =
      F.View.create pl.Pipeline.program layout pl.Pipeline.training
    in
    let icache =
      Stc_cachesim.Icache.create ~size_bytes:(cache_kb * 1024) ()
    in
    F.Engine.bandwidth (F.Engine.run ~icache F.Engine.default_config view)
  in
  let best =
    List.fold_left
      (fun acc c ->
        let bw = score c in
        match acc with
        | Some (_, best_bw) when best_bw >= bw -> acc
        | _ -> Some (c, bw))
      None space
  in
  match best with
  | Some (chosen, train_bandwidth) ->
    { chosen; train_bandwidth; evaluated = List.length space }
  | None -> assert false
