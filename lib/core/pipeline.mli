(** The end-to-end experimental setup of the paper, in one value:

    - the synthetic database kernel (program + walkable code);
    - the TPC-D data at a scale factor, loaded into the B-tree-indexed and
      the Hash-indexed databases (Section 3);
    - the {e Training} trace (queries 3, 4, 5, 6, 9 on the B-tree
      database) and the profile built from it (Section 4);
    - the {e Test} trace (queries 2, 3, 4, 6, 11, 12, 13, 14, 15, 17 on
      both databases, run to completion — Section 7). *)

type config = {
  kernel : Stc_synth.Kernel.config;
  sf : float;  (** TPC-D scale factor (the paper used 0.1 ≙ 100 MB). *)
  data_seed : int64;
  walker_seed : int64;
  frames : int;  (** Buffer-pool frames per database. *)
}

val default_config : config
(** Scale factor 0.002 — a multi-million-instruction test trace. *)

val quick_config : config
(** A reduced kernel and scale factor 0.0005, for tests and examples. *)

type t = {
  config : config;
  kernel : Stc_synth.Kernel.t;
  program : Stc_cfg.Program.t;
  db_btree : Stc_db.Database.t;
  db_hash : Stc_db.Database.t;
  training : Stc_trace.Recorder.t;
  test : Stc_trace.Recorder.t;
  profile : Stc_profile.Profile.t;  (** Built from the Training trace. *)
}

val seeded : int -> config -> config
(** [seeded s config] derives every stream seed from the single integer
    [s]: data generation uses [s], the query walker [s + 17], kernel
    construction [s + 34] (distinct offsets so the streams never
    coincide). This is what {!run} applies when [ctx.seed] is set. *)

val config_fingerprint : config -> string
(** Hex hash of every field that determines the recorded traces — kernel
    shape and seed, scale factor, data/walker seeds, buffer frames, and
    the training/test query sets. Artifact-store trace keys combine this
    with the built program's {!Stc_store.Fp.program} fingerprint. *)

val run : ?ctx:Run.ctx -> ?config:config -> unit -> t
(** Build everything. With [ctx.metrics], each phase (kernel build, data
    generation, database load, trace recording, profile build) runs inside
    a timing span, and the walker/recorder counters are registered under
    [training.*] / [test.*]. With [ctx.progress], trace recording reports
    rate on stderr. With [ctx.seed], [config] is first passed through
    {!seeded}. [ctx.jobs] is not read here — the pipeline is inherently
    sequential; pass the same [ctx] on to {!Experiments.simulate}.

    With [ctx.store], the training and test recordings are consulted in
    the artifact store before being re-walked (as chunked entries —
    {!Stc_store.Chunked} — one manifest plus per-segment containers),
    and saved after a fresh recording. A store hit re-registers the
    walker/trace counters with the values a recording would have
    produced, so cold and warm runs export identical metrics; kernel
    build, data generation and database loading always run (databases
    are mutable inputs to later stages, and their load cost is small
    next to trace recording). *)

val test_source : ?segment_blocks:int -> t -> Stc_trace.Source.t
(** A fresh segment source over the Test trace (single-shot; mint one
    per replay). [segment_blocks] defaults to
    {!Stc_trace.Source.default_segment_blocks}. *)

val training_source : ?segment_blocks:int -> t -> Stc_trace.Source.t
(** Same over the Training trace. *)

val replay_test : t -> (int -> unit) -> unit
(** [Source.iter (test_source t)] — convenience wrapper over the source
    API for block-at-a-time consumers. *)

val replay_training : t -> (int -> unit) -> unit
(** Same over the Training trace. *)
