module Builder = Stc_cfg.Builder
module Terminator = Stc_cfg.Terminator
module Profile = Stc_profile.Profile

let names = [| "A1"; "A2"; "A3"; "A4"; "A5"; "A6"; "A7"; "A8"; "B1" |]

let label bid = if bid >= 0 && bid < Array.length names then names.(bid) else Printf.sprintf "b%d" bid

let graph () =
  let b = Builder.create () in
  let p = Builder.declare_proc b ~name:"figure3" ~subsystem:Stc_cfg.Proc.Executor in
  let blk size = Builder.new_block b ~pid:p ~size in
  let a1 = blk 4 and a2 = blk 3 and a3 = blk 5 and a4 = blk 3 in
  let a5 = blk 4 and a6 = blk 2 and a7 = blk 3 and a8 = blk 4 in
  let b1 = blk 3 in
  Builder.set_term b a1 (Terminator.Fall a2);
  Builder.set_term b a2 (Terminator.Cond { taken = a5; fallthru = a3 });
  Builder.set_term b a3 (Terminator.Fall a4);
  Builder.set_term b a4 (Terminator.Cond { taken = a6; fallthru = a7 });
  Builder.set_term b a5 (Terminator.Jump a7);
  Builder.set_term b a6 (Terminator.Fall a7);
  Builder.set_term b a7 (Terminator.Cond { taken = b1; fallthru = a8 });
  Builder.set_term b a8 Terminator.Ret;
  Builder.set_term b b1 (Terminator.Jump a8);
  Builder.finish_proc b ~pid:p ~entry:a1
    ~blocks:[| a1; a2; a3; a4; a5; a6; a7; a8; b1 |];
  let program = Builder.build b in
  let profile = Profile.create program in
  let node bid count = Profile.inject_block profile bid ~count in
  let edge src dst count = Profile.inject_edge profile ~src ~dst ~count in
  node a1 10;
  node a2 10;
  node a3 6;
  node a4 6;
  node a5 4;
  node a6 1;
  node a7 10;
  node a8 10;
  node b1 1;
  edge a1 a2 10;
  edge a2 a3 6;
  edge a2 a5 4;
  edge a3 a4 6;
  edge a4 a7 5;
  edge a4 a6 1;
  edge a5 a7 4;
  edge a6 a7 1;
  edge a7 a8 9;
  edge a7 b1 1;
  edge b1 a8 1;
  (program, profile, [ a1 ])

let expected_sequences =
  [ [ "A1"; "A2"; "A3"; "A4"; "A7"; "A8" ]; [ "A5" ] ]
